// Reference-driven symbolic simplification on the reduced uA741: the cost
// of closing the paper's loop end to end (prune -> reference -> enumerate
// -> certify), and the two determinism/efficiency probes the service
// advertises:
//   * plan reuse: ranking trials replay ONE symbolic LU plan; the fresh
//     factorization count stays orders of magnitude below the eval count;
//   * kernel ratio: the batched replay kernel vs the scalar oracle on the
//     same run (results are bit-identical, only the wall clock moves).
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json);
//        --threads <N> (default 8), --error-budget <E> (default 0.01).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/simplify.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json", "threads", "error-budget"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  const int threads = args.get_int("threads", 8);
  const double budget = args.get_double("error-budget", 0.01);
  std::map<std::string, double> json_metrics;
  std::printf("=== Symbolic simplification: reduced uA741, %.3g budget, %d threads ===\n\n",
              budget, threads);

  symref::circuits::Ua741Options reduced;
  reduced.base_resistance = false;
  reduced.substrate_caps = false;
  const auto amp = symref::circuits::ua741(reduced);
  const auto spec = symref::mna::TransferSpec::voltage_gain("inp", "vo");

  symref::refgen::SimplifyOptions options;
  options.error_budget = budget;
  options.f_start_hz = 10.0;
  options.f_stop_hz = 1e3;
  options.band_points = 9;
  options.engine.threads = threads;

  symref::support::TextTable table;
  table.set_header({"kernel", "enumerated", "kept", "max rel err", "evals", "fresh",
                    "seconds", "terms/s"});
  double seconds_by_kernel[2] = {};
  for (const bool batched : {false, true}) {
    options.engine.kernel = batched ? symref::sparse::ReplayKernel::kBatched
                                    : symref::sparse::ReplayKernel::kScalar;
    const auto result = symref::refgen::simplify_transfer(amp, spec, options);
    seconds_by_kernel[batched ? 1 : 0] = result.seconds;
    const double terms_per_sec =
        result.seconds > 0.0 ? static_cast<double>(result.enumerated_terms) / result.seconds
                             : 0.0;
    table.add_row({batched ? "batched" : "scalar",
                   std::to_string(result.enumerated_terms),
                   std::to_string(result.kept_terms),
                   symref::support::format_sci(result.certificate.max_relative_error, 3),
                   std::to_string(result.term_evals),
                   std::to_string(result.ranking_fresh_factorizations),
                   symref::support::format_sci(result.seconds, 3),
                   symref::support::format_sci(terms_per_sec, 3)});
    const std::string prefix = batched ? "simplify_batched_" : "simplify_scalar_";
    json_metrics[prefix + "seconds"] = result.seconds;
    json_metrics[prefix + "terms_per_sec"] = terms_per_sec;
    if (batched) {
      json_metrics["simplify_enumerated_terms"] = static_cast<double>(result.enumerated_terms);
      json_metrics["simplify_kept_terms"] = static_cast<double>(result.kept_terms);
      json_metrics["simplify_max_rel_error"] = result.certificate.max_relative_error;
      json_metrics["simplify_term_evals"] = static_cast<double>(result.term_evals);
      // The plan-reuse probe: fresh factorizations beyond the baseline's own
      // (pivot-stability fallbacks only; 0 when every trial replayed).
      json_metrics["simplify_fresh_factor_count"] =
          static_cast<double>(result.ranking_fresh_factorizations);
    }
  }
  std::printf("%s\n", table.str().c_str());
  if (seconds_by_kernel[1] > 0.0) {
    const double ratio = seconds_by_kernel[0] / seconds_by_kernel[1];
    json_metrics["simplify_scalar_over_batched"] = ratio;
    std::printf("scalar/batched wall-clock ratio: %.2f (identical bits either way)\n", ratio);
  }
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
