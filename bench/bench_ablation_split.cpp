// Ablation A2: simultaneous frequency+conductance scaling (eq. (13)) vs
// putting the whole tilt into the frequency factor alone.
//
// Paper §3.2: "simultaneous scaling of both frequency and conductance ...
// is used to avoid using too large (>~1e18) frequency or conductance scale
// factors", which would amplify the evaluation error of N and D at the
// interpolation points. The table reports the largest scale factor each
// policy needed and the worst sample-evaluation noise it caused.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

struct Row {
  const char* label;
  const char* key;
  symref::refgen::AdaptiveResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::map<std::string, double> json_metrics;
  std::printf("=== Ablation A2: eq. (13) simultaneous scaling vs single-factor ===\n\n");

  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::refgen::AdaptiveOptions simultaneous;
  symref::refgen::AdaptiveOptions frequency_only;
  frequency_only.simultaneous_scaling = false;

  Row rows[] = {
      {"f and g split (eq. 13)", "split",
       symref::refgen::generate_reference(ua, spec, simultaneous)},
      {"f only", "fonly", symref::refgen::generate_reference(ua, spec, frequency_only)},
  };

  symref::support::TextTable table;
  table.set_header({"policy", "complete", "iterations", "max f", "max 1/g",
                    "worst eval noise (den, rel)"});
  for (const Row& row : rows) {
    double max_f = 0.0;
    double max_inv_g = 0.0;
    double worst_noise = 0.0;
    for (const auto& it : row.result.iterations) {
      // Only the productive iterations matter — the zero-tail probes at the
      // end escalate the scale factors on purpose and deliver nothing.
      if (it.den_new_coefficients == 0 && it.num_new_coefficients == 0) continue;
      max_f = std::max(max_f, it.f_scale);
      max_inv_g = std::max(max_inv_g, 1.0 / it.g_scale);
      if (!it.den_region.max_value.is_zero() && !it.den_evaluation_noise.is_zero()) {
        worst_noise = std::max(
            worst_noise,
            (it.den_evaluation_noise / it.den_region.max_value).to_double());
      }
    }
    table.add_row({
        row.label,
        row.result.complete ? "yes" : row.result.termination,
        std::to_string(row.result.iterations.size()),
        symref::support::format_sci(max_f, 3),
        symref::support::format_sci(max_inv_g, 3),
        symref::support::format_sci(worst_noise, 3),
    });
    const std::string prefix = std::string("ablation_") + row.key + "_";
    json_metrics[prefix + "iterations"] = static_cast<double>(row.result.iterations.size());
    json_metrics[prefix + "max_f"] = max_f;
    json_metrics[prefix + "worst_eval_noise"] = worst_noise;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: the single-factor policy needs far larger frequency factors\n");
  std::printf("(paper: beyond ~1e18), inflating the evaluation-error share of the floor.\n");
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
