// Warm-handle economics of the api::Service facade on the µA741.
//
// A long-lived server compiles a circuit once and then answers many
// requests against the handle. This bench measures what that buys:
//
//   cold      — fresh Service: parse the netlist, canonicalize, build the
//               NodalSystem, then serve the request (what every caller paid
//               per query before the facade existed);
//   warm      — second identical request on the same handle (response-cache
//               hit: the idempotent-server path);
//   warm-miss — different engine options on the same handle (response cache
//               misses, but the compiled circuit and the spec's evaluator
//               plan are reused — only the engine iterations re-run).
//
// Acceptance row: api_refgen_warm_speedup (warm vs cold) must be >= 3.
//
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "api/service.h"
#include "circuits/ua741.h"
#include "netlist/writer.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/timer.h"

namespace {

std::map<std::string, double> json_metrics;

const std::string& ua741_netlist() {
  static const std::string text =
      symref::netlist::write_netlist(symref::circuits::ua741());
  return text;
}

symref::api::RefgenRequest refgen_request() {
  return {symref::circuits::ua741_gain_spec(), {}};
}

symref::api::SweepRequest sweep_request() {
  symref::api::SweepRequest request;
  request.spec = symref::circuits::ua741_gain_spec();
  request.f_start_hz = 1.0;
  request.f_stop_hz = 1e8;
  request.points_per_decade = 20;
  return request;
}

void measure_refgen() {
  // Cold: the whole pipeline, netlist text to reference.
  symref::support::Timer cold_timer;
  const symref::api::Service cold_service;
  const auto cold_handle = cold_service.compile_netlist(ua741_netlist());
  if (!cold_handle.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", cold_handle.status().to_string().c_str());
    return;
  }
  const auto cold = cold_service.refgen(cold_handle.value(), refgen_request());
  const double cold_ms = cold_timer.millis();
  if (!cold.ok()) {
    std::fprintf(stderr, "cold refgen failed: %s\n", cold.status().to_string().c_str());
    return;
  }

  // Warm: identical request on the same handle (response-cache hit).
  symref::support::Timer warm_timer;
  const auto warm = cold_service.refgen(cold_handle.value(), refgen_request());
  const double warm_ms = warm_timer.millis();

  // Warm miss: same handle + spec, different sigma — the response cache
  // misses but the handle's compiled circuit and evaluator plan are reused.
  symref::api::RefgenRequest miss = refgen_request();
  miss.options.sigma = 7;
  symref::support::Timer miss_timer;
  const auto warm_miss = cold_service.refgen(cold_handle.value(), miss);
  const double miss_ms = miss_timer.millis();

  std::printf("=== api::Service µA741 refgen: cold vs warm handle ===\n\n");
  std::printf("cold (compile + request):      %8.3f ms\n", cold_ms);
  std::printf("warm (cache hit):              %8.3f ms  (%.0fx)\n", warm_ms,
              cold_ms / warm_ms);
  std::printf("warm miss (plan reuse only):   %8.3f ms  (%.1fx)\n\n", miss_ms,
              cold_ms / miss_ms);
  json_metrics["api_refgen_cold_ms"] = cold_ms;
  json_metrics["api_refgen_warm_ms"] = warm_ms;
  json_metrics["api_refgen_warm_speedup"] = cold_ms / warm_ms;
  json_metrics["api_refgen_warm_miss_ms"] = miss_ms;
  json_metrics["api_refgen_warm_hit"] = warm.ok() && warm.value().from_cache ? 1.0 : 0.0;
  json_metrics["api_refgen_warm_miss_recomputed"] =
      warm_miss.ok() && !warm_miss.value().from_cache ? 1.0 : 0.0;
}

void measure_sweep() {
  symref::support::Timer cold_timer;
  const symref::api::Service service;
  const auto handle = service.compile_netlist(ua741_netlist());
  if (!handle.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", handle.status().to_string().c_str());
    return;
  }
  const auto cold = service.sweep(handle.value(), sweep_request());
  const double cold_ms = cold_timer.millis();
  if (!cold.ok()) {
    std::fprintf(stderr, "cold sweep failed: %s\n", cold.status().to_string().c_str());
    return;
  }

  symref::support::Timer warm_timer;
  const auto warm = service.sweep(handle.value(), sweep_request());
  const double warm_ms = warm_timer.millis();

  // Different grid on the same handle: response cache misses, but the
  // spec's simulator replays its factorization plan per point.
  symref::api::SweepRequest other = sweep_request();
  other.points_per_decade = 19;
  symref::support::Timer replan_timer;
  const auto replan = service.sweep(handle.value(), other);
  const double replan_ms = replan_timer.millis();

  std::printf("=== api::Service µA741 sweep (%zu points): cold vs warm handle ===\n\n",
              cold.value().points.size());
  std::printf("cold (compile + sweep):        %8.3f ms\n", cold_ms);
  std::printf("warm (cache hit):              %8.3f ms  (%.0fx)\n", warm_ms,
              cold_ms / warm_ms);
  std::printf("new grid (plan replay):        %8.3f ms  (%.1fx)\n\n", replan_ms,
              cold_ms / replan_ms);
  json_metrics["api_sweep_cold_ms"] = cold_ms;
  json_metrics["api_sweep_warm_ms"] = warm_ms;
  json_metrics["api_sweep_warm_speedup"] = cold_ms / warm_ms;
  json_metrics["api_sweep_new_grid_ms"] = replan_ms;
  json_metrics["api_sweep_warm_hit"] = warm.ok() && warm.value().from_cache ? 1.0 : 0.0;
  (void)replan;
}

void BM_ApiRefgenCold(benchmark::State& state) {
  for (auto _ : state) {
    const symref::api::Service service;
    const auto handle = service.compile_netlist(ua741_netlist());
    auto response = service.refgen(handle.value(), refgen_request());
    benchmark::DoNotOptimize(response.ok());
  }
}
BENCHMARK(BM_ApiRefgenCold)->Unit(benchmark::kMillisecond);

void BM_ApiRefgenWarm(benchmark::State& state) {
  const symref::api::Service service;
  const auto handle = service.compile_netlist(ua741_netlist());
  (void)service.refgen(handle.value(), refgen_request());
  for (auto _ : state) {
    auto response = service.refgen(handle.value(), refgen_request());
    benchmark::DoNotOptimize(response.ok());
  }
}
BENCHMARK(BM_ApiRefgenWarm)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  measure_refgen();
  measure_sweep();
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
