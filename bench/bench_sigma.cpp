// Ablation A6: demanded significant digits (sigma) vs. work and accuracy.
//
// sigma sets the validity window per interpolation to (13 - sigma) decades
// (eq. (12)): higher sigma means more trustworthy coefficients but narrower
// windows, hence more interpolations. The paper fixes sigma = 6; this table
// shows the trade-off on the µA741 and validates each run's accuracy via
// the Fig. 2 Bode comparison.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "refgen/validate.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::map<std::string, double> json_metrics;
  std::printf("=== Ablation A6: significant digits sigma vs work/accuracy (uA741) ===\n\n");

  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::support::TextTable table;
  table.set_header({"sigma", "window [decades]", "complete", "iterations", "LU evals",
                    "max Bode error [dB]"});
  for (const int sigma : {3, 4, 6, 8, 10}) {
    symref::refgen::AdaptiveOptions options;
    options.sigma = sigma;
    const auto result = symref::refgen::generate_reference(ua, spec, options);
    double bode_error = -1.0;
    if (result.complete) {
      bode_error = symref::refgen::compare_bode(result.reference, ua, spec, 1.0, 100e6, 3)
                       .max_magnitude_error_db;
    }
    table.add_row({
        std::to_string(sigma),
        std::to_string(13 - sigma),
        result.complete ? "yes" : result.termination,
        std::to_string(result.iterations.size()),
        std::to_string(result.total_evaluations),
        result.complete ? symref::support::format_sci(bode_error, 3) : "-",
    });
    if (sigma == 6) {
      json_metrics["sigma6_iterations"] = static_cast<double>(result.iterations.size());
      json_metrics["sigma6_evaluations"] = result.total_evaluations;
      json_metrics["sigma6_bode_error_db"] = bode_error;
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: the paper's sigma = 6 balances window width (7 decades) against\n");
  std::printf("coefficient quality; sigma >= 10 narrows windows to 3 decades and the\n");
  std::printf("iteration count grows accordingly.\n");
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
