// Ablation A1: the tuning factor r of eqs. (14)/(15).
//
// r controls how far each new scaling pushes the next valid region past the
// previous one: r < 0 increases region overlap (safer, more iterations),
// r > 0 reduces it (faster, risks gaps that need eq. (16) repairs). The
// paper introduces r but does not study it; this table does.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::map<std::string, double> json_metrics;
  std::printf("=== Ablation A1: tuning factor r in eq. (14)/(15), uA741 ===\n\n");

  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::support::TextTable table;
  table.set_header({"r", "complete", "iterations", "gap repairs", "LU evals",
                    "worst overlap mismatch"});
  for (const double r : {-4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0}) {
    symref::refgen::AdaptiveOptions options;
    options.tuning_r = r;
    const auto result = symref::refgen::generate_reference(ua, spec, options);
    int gap_repairs = 0;
    double worst_mismatch = 0.0;
    for (const auto& it : result.iterations) {
      if (it.purpose == symref::refgen::IterationPurpose::GapRepair) ++gap_repairs;
      worst_mismatch = std::max(worst_mismatch, it.max_overlap_mismatch);
    }
    table.add_row({
        symref::support::format_sci(r, 2),
        result.complete ? "yes" : result.termination,
        std::to_string(result.iterations.size()),
        std::to_string(gap_repairs),
        std::to_string(result.total_evaluations),
        symref::support::format_sci(worst_mismatch, 3),
    });
    if (r == 0.0) {
      json_metrics["ablation_r0_iterations"] = static_cast<double>(result.iterations.size());
      json_metrics["ablation_r0_evaluations"] = result.total_evaluations;
      json_metrics["ablation_r0_complete"] = result.complete ? 1.0 : 0.0;
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: moderate r trades overlap for iteration count; the default r=0\n");
  std::printf("(adjacent regions touch) completes with no gap repairs on this circuit.\n");
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
