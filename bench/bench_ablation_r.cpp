// Ablation A1: the tuning factor r of eqs. (14)/(15).
//
// r controls how far each new scaling pushes the next valid region past the
// previous one: r < 0 increases region overlap (safer, more iterations),
// r > 0 reduces it (faster, risks gaps that need eq. (16) repairs). The
// paper introduces r but does not study it; this table does.
#include <cstdio>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "support/table.h"

int main() {
  std::printf("=== Ablation A1: tuning factor r in eq. (14)/(15), uA741 ===\n\n");

  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::support::TextTable table;
  table.set_header({"r", "complete", "iterations", "gap repairs", "LU evals",
                    "worst overlap mismatch"});
  for (const double r : {-4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0}) {
    symref::refgen::AdaptiveOptions options;
    options.tuning_r = r;
    const auto result = symref::refgen::generate_reference(ua, spec, options);
    int gap_repairs = 0;
    double worst_mismatch = 0.0;
    for (const auto& it : result.iterations) {
      if (it.purpose == symref::refgen::IterationPurpose::GapRepair) ++gap_repairs;
      worst_mismatch = std::max(worst_mismatch, it.max_overlap_mismatch);
    }
    table.add_row({
        symref::support::format_sci(r, 2),
        result.complete ? "yes" : result.termination,
        std::to_string(result.iterations.size()),
        std::to_string(gap_repairs),
        std::to_string(result.total_evaluations),
        symref::support::format_sci(worst_mismatch, 3),
    });
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: moderate r trades overlap for iteration count; the default r=0\n");
  std::printf("(adjacent regions touch) completes with no gap repairs on this circuit.\n");
  return 0;
}
