// Quantifies the paper's §2.2 error model: the recovered-coefficient noise
// floor of unit-circle interpolation sits at ~1e-13 * max_i |p_i| in
// 16-digit arithmetic.
//
// Synthetic polynomials with a controlled coefficient spread are sampled
// exactly and recovered through the IDFT; the table reports the worst
// recovery error of the *zero* coefficients (pure noise) relative to the
// largest coefficient — the quantity the paper pins at ~1e-13.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <cmath>
#include <complex>
#include <map>
#include <string>
#include <vector>

#include "numeric/dft.h"
#include "numeric/polynomial.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/random.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::map<std::string, double> json_metrics;
  std::printf("=== §2.2: round-off floor of unit-circle interpolation ===\n\n");

  symref::support::Rng rng(7);
  symref::support::TextTable table;
  table.set_header({"spread [decades]", "degree", "K", "noise floor / max", "paper model"});

  for (const double spread : {0.0, 3.0, 6.0, 9.0, 12.0}) {
    const int degree = 9;
    const int K = 16;  // deliberate overestimate: indices 10..15 are zeros
    std::vector<double> coeffs(static_cast<std::size_t>(degree) + 1);
    double max_coeff = 0.0;
    for (int i = 0; i <= degree; ++i) {
      // log-linear decay over `spread` decades, alternating sign.
      const double magnitude = std::pow(10.0, -spread * i / degree);
      coeffs[static_cast<std::size_t>(i)] = (i % 2 ? -1.0 : 1.0) * magnitude;
      max_coeff = std::max(max_coeff, magnitude);
    }
    const symref::numeric::Polynomial<double> poly{std::move(coeffs)};

    const auto points = symref::numeric::unit_circle_points(K);
    std::vector<std::complex<double>> samples(points.size());
    for (std::size_t k = 0; k < points.size(); ++k) samples[k] = poly.eval(points[k]);
    const auto recovered = symref::numeric::coefficients_from_unit_circle_samples(samples);

    double worst_noise = 0.0;
    for (int i = degree + 1; i < K; ++i) {
      worst_noise = std::max(worst_noise, std::abs(recovered[static_cast<std::size_t>(i)]));
    }
    table.add_row({
        symref::support::format_sci(spread, 2),
        std::to_string(degree),
        std::to_string(K),
        symref::support::format_sci(worst_noise / max_coeff, 3),
        "~1e-13 .. 1e-16",
    });
    if (spread == 12.0) json_metrics["error_floor_spread12_rel"] = worst_noise / max_coeff;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Consequence (paper): any true coefficient more than ~13 decades below the\n");
  std::printf("largest one is unrecoverable at one scaling; with sigma=6 demanded digits\n");
  std::printf("the usable window per interpolation is ~7 decades.\n");
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
