// Reproduces paper Fig. 2: Bode diagrams (magnitude and phase) of the
// µA741 open-loop voltage gain from (1) the interpolated coefficients and
// (2) an "electrical simulator" — here a direct complex-MNA AC analysis,
// which is what a SPICE AC sweep computes. The paper shows "perfect
// matching"; the columns below should agree to fractions of a millidecibel.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "refgen/validate.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::printf("=== Fig. 2: uA741 Bode diagram, interpolated vs electrical simulator ===\n\n");

  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  const auto result = symref::refgen::generate_reference(ua, spec);
  std::printf("reference generation: %s, %zu iterations, %d evaluations\n\n",
              result.termination.c_str(), result.iterations.size(),
              result.total_evaluations);

  const auto comparison =
      symref::refgen::compare_bode(result.reference, ua, spec, 1.0, 100e6, 4);

  symref::support::TextTable table;
  table.set_header({"freq [Hz]", "interp |H| [dB]", "simulator |H| [dB]", "interp phase",
                    "simulator phase"});
  for (const auto& p : comparison.points) {
    table.add_row({
        symref::support::format_sci(p.frequency_hz, 3),
        symref::support::format_sci(p.interpolated_db, 6),
        symref::support::format_sci(p.simulated_db, 6),
        symref::support::format_sci(p.interpolated_phase_deg, 6),
        symref::support::format_sci(p.simulated_phase_deg, 6),
    });
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("max |magnitude error| : %.3e dB   (paper: 'perfect matching')\n",
              comparison.max_magnitude_error_db);
  std::printf("max |phase error|     : %.3e deg\n", comparison.max_phase_error_deg);
  std::printf("DC gain               : %.1f dB (classic 741: ~100 dB)\n",
              comparison.points.front().simulated_db);
  const std::map<std::string, double> json_metrics = {
      {"fig2_max_magnitude_error_db", comparison.max_magnitude_error_db},
      {"fig2_max_phase_error_deg", comparison.max_phase_error_deg},
      {"fig2_evaluations", static_cast<double>(result.total_evaluations)},
  };
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
