// Reproduces paper Table 3: the remaining µA741 denominator coefficients
// from the third (and any later) adaptive interpolation, completing the set
// started in Table 2, plus the full assembled coefficient list.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "refgen/naive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::printf("=== Table 3: uA741 denominator, remaining interpolations ===\n\n");

  const auto ua = symref::circuits::ua741();
  const auto result =
      symref::refgen::generate_reference(ua, symref::circuits::ua741_gain_spec());
  const int den_degree = result.denominator_degree;

  int shown = 0;
  for (const auto& it : result.iterations) {
    if (it.den_new_coefficients == 0) continue;
    if (shown++ < 2) continue;  // Table 2 covered the first two productive runs
    std::printf("--- interpolation %d (%s, f=%.6g, g=%.6g, %d points%s) ---\n", it.index,
                symref::refgen::purpose_name(it.purpose), it.f_scale, it.g_scale,
                it.points, it.deflated ? ", deflated" : "");
    symref::support::TextTable table;
    table.set_header({"s^i", "Normalized", "Denormalized", ""});
    for (std::size_t i = 0; i < it.den_normalized.size(); ++i) {
      const int index = static_cast<int>(i) + it.den_shift;
      const auto normalized = it.den_normalized[i].real();
      const auto denormalized = symref::refgen::denormalize_coefficient(
          normalized, index, den_degree, it.f_scale, it.g_scale);
      table.add_row({
          "s^" + std::to_string(index),
          normalized.to_string(6),
          denormalized.to_string(6),
          it.den_region.contains(static_cast<int>(i)) ? "*" : " ",
      });
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("--- assembled denominator (every coefficient, denormalized) ---\n");
  symref::support::TextTable table;
  table.set_header({"s^i", "coefficient", "status", "found in iteration"});
  const auto& den = result.reference.denominator();
  for (int i = 0; i <= den.order_bound(); ++i) {
    const auto& c = den.at(i);
    const char* status =
        c.status == symref::refgen::CoefficientStatus::Interpolated
            ? "ok"
            : (c.status == symref::refgen::CoefficientStatus::ZeroTail ? "negligible"
                                                                       : "unknown");
    table.add_row({"s^" + std::to_string(i), c.value.to_string(6), status,
                   c.iteration >= 0 ? std::to_string(c.iteration) : "-"});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("paper shape: 49 coefficients spanning 1e-90 .. 1e-522 across 3 regions;\n");
  std::printf("this model:  %d coefficients, %.0f decades of total spread\n",
              den.order_bound() + 1,
              den.at(0).value.log10_abs() -
                  den.at(den.effective_order()).value.log10_abs());
  const std::map<std::string, double> json_metrics = {
      {"table3_den_coefficients", static_cast<double>(den.order_bound() + 1)},
      {"table3_decades_spread", den.at(0).value.log10_abs() -
                                    den.at(den.effective_order()).value.log10_abs()},
  };
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
