// Reproduces paper Table 1: transfer-function coefficients of the
// positive-feedback OTA's differential voltage gain.
//
//   (a) interpolation points on the raw unit circle (no scaling): almost all
//       coefficients drown in round-off noise;
//   (b) a frequency scale factor of 1e9: the coefficients up to the true
//       order rise above the error level (marked "*" like the paper's
//       shading); everything else remains garbage.
//
// The paper's polynomial-order estimate for this circuit is 9 (capacitor
// count), so both interpolations use 10 points.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ota.h"
#include "interp/region.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "refgen/naive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

using symref::refgen::BaselineResult;

void print_table(const char* title, const BaselineResult& result) {
  std::printf("%s\n", title);
  std::printf("  f = %.4g, g = %.4g, %d points, %d evaluations\n", result.f_scale,
              result.g_scale, result.points, result.evaluations);
  std::printf("  valid region (numerator):   %s\n",
              result.numerator_region.to_string().c_str());
  std::printf("  valid region (denominator): %s\n",
              result.denominator_region.to_string().c_str());

  symref::support::TextTable table;
  table.set_header({"s^i", "Numerator (normalized)", "", "Denominator (normalized)", ""});
  for (std::size_t i = 0; i < result.denominator_normalized.size(); ++i) {
    const auto& num = result.numerator_normalized[i];
    const auto& den = result.denominator_normalized[i];
    table.add_row({
        "s^" + std::to_string(i),
        num.to_string(5),
        result.numerator_region.contains(static_cast<int>(i)) ? "*" : " ",
        den.to_string(5),
        result.denominator_region.contains(static_cast<int>(i)) ? "*" : " ",
    });
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::printf("=== Table 1: OTA differential voltage gain coefficients ===\n");
  std::printf("(paper: Garcia-Vargas et al., DATE 1997; '*' = above error level,\n");
  std::printf(" the paper's shaded cells)\n\n");

  const auto ota = symref::netlist::canonicalize(symref::circuits::ota_fig1());
  const symref::mna::NodalSystem system(ota);
  const auto spec = symref::circuits::ota_fig1_gain_spec();

  symref::refgen::BaselineOptions options;
  options.points = symref::circuits::kOtaFig1OrderEstimate + 1;
  // Evaluate all points independently, as the paper did (no conjugate
  // shortcut), so the round-off behaviour mirrors Table 1a.
  options.conjugate_symmetry = false;

  const BaselineResult naive =
      symref::refgen::naive_interpolation(system, spec, options);
  print_table("--- (a) unit circle, no scaling ---", naive);

  const BaselineResult scaled = symref::refgen::fixed_scale_interpolation(
      system, spec, /*f=*/1e9, /*g=*/1.0, options);
  print_table("--- (b) frequency scale factor 1e9 ---", scaled);

  std::printf("Shape check vs the paper:\n");
  std::printf("  unscaled valid denominator coefficients : %d (paper: ~1-2 of 10)\n",
              naive.denominator_region.width());
  std::printf("  scaled   valid denominator coefficients : %d (paper: low-order block)\n",
              scaled.denominator_region.width());
  const std::map<std::string, double> json_metrics = {
      {"table1_unscaled_den_width", static_cast<double>(naive.denominator_region.width())},
      {"table1_scaled_den_width", static_cast<double>(scaled.denominator_region.width())},
  };
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
