// Served-protocol economics: what the async job layer costs and sustains.
//
// The daemon's serving loop is JobManager::submit -> worker -> api::Service
// -> done. This bench measures that loop on the µA741:
//
//   submit->done latency — one job end to end on an idle manager, cold
//     (first request on the handle), warm-miss (plan reuse, distinct
//     options), and warm (response-cache hit: the idempotent-server path);
//   throughput — N distinct refgen jobs (response cache off, so every job
//     runs the engine) at 1/2/8 workers, reported as jobs per second.
//
// Acceptance rows (BENCH_refgen.json):
//   server_submit_done_warm_ms, server_jobs_per_sec_w1/w2/w8
//
// The dev container is single-core, so w2/w8 show ~1x; on real cores the
// jobs are shared-nothing and scale like the batch path.
//
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/jobs.h"
#include "api/service.h"
#include "circuits/ua741.h"
#include "netlist/writer.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/timer.h"

namespace {

std::map<std::string, double> json_metrics;

const std::string& ua741_netlist() {
  static const std::string text =
      symref::netlist::write_netlist(symref::circuits::ua741());
  return text;
}

symref::api::AnyRequest refgen_request(int sigma) {
  symref::api::AnyRequest request;
  request.type = symref::api::AnyRequest::Type::kRefgen;
  request.refgen.spec = symref::circuits::ua741_gain_spec();
  request.refgen.options.sigma = sigma;
  return request;
}

/// Submit one job, wait for it, return the wall time in ms (-1 on failure).
double submit_done_ms(symref::api::JobManager& jobs, const symref::api::CircuitHandle& handle,
                      const symref::api::AnyRequest& request) {
  symref::support::Timer timer;
  const symref::api::JobId id = jobs.submit(handle, request);
  const auto outcome = jobs.wait(id);
  const double ms = timer.millis();
  if (!outcome.ok() || !outcome.value().status.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 (outcome.ok() ? outcome.value().status : outcome.status()).to_string().c_str());
    return -1.0;
  }
  return ms;
}

void measure_latency() {
  const symref::api::Service service;
  const auto compiled = service.compile_netlist(ua741_netlist());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return;
  }
  symref::api::JobManager jobs(service, /*workers=*/1);

  const double cold_ms = submit_done_ms(jobs, compiled.value(), refgen_request(6));
  // Same spec, different sigma: response cache misses, evaluator plan warm.
  const double miss_ms = submit_done_ms(jobs, compiled.value(), refgen_request(7));
  // Identical request: response-cache hit through the whole job machinery.
  const double warm_ms = submit_done_ms(jobs, compiled.value(), refgen_request(6));
  if (cold_ms < 0 || miss_ms < 0 || warm_ms < 0) return;

  std::printf("=== JobManager µA741 refgen: submit -> done latency ===\n\n");
  std::printf("cold (first request):          %8.3f ms\n", cold_ms);
  std::printf("warm miss (plan reuse only):   %8.3f ms  (%.1fx)\n", miss_ms,
              cold_ms / miss_ms);
  std::printf("warm (response-cache hit):     %8.3f ms  (%.0fx)\n\n", warm_ms,
              cold_ms / warm_ms);
  json_metrics["server_submit_done_cold_ms"] = cold_ms;
  json_metrics["server_submit_done_warm_miss_ms"] = miss_ms;
  json_metrics["server_submit_done_warm_ms"] = warm_ms;
}

void measure_throughput() {
  constexpr int kJobs = 24;
  std::printf("=== JobManager µA741 refgen: jobs/sec at 1/2/8 workers ===\n\n");
  for (const int workers : {1, 2, 8}) {
    // Response caching off: every job runs the engine (the sustained-load
    // case, not the memoized one). Distinct sigmas defeat any replay of
    // identical work while keeping per-job cost comparable.
    symref::api::ServiceOptions options;
    options.cache_responses = false;
    const symref::api::Service service(options);
    const auto compiled = service.compile_netlist(ua741_netlist());
    if (!compiled.ok()) return;
    symref::api::JobManager jobs(service, workers);
    // Warm the handle's spec entry once so the measured jobs compare plan
    // replays, not one cold outlier.
    (void)jobs.wait(jobs.submit(compiled.value(), refgen_request(6)));

    symref::support::Timer timer;
    std::vector<symref::api::JobId> ids;
    ids.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      ids.push_back(jobs.submit(compiled.value(), refgen_request(6 + (i % 3))));
    }
    bool ok = true;
    for (const symref::api::JobId id : ids) {
      const auto outcome = jobs.wait(id);
      ok = ok && outcome.ok() && outcome.value().status.ok();
    }
    const double seconds = timer.seconds();
    if (!ok) {
      std::fprintf(stderr, "throughput run failed at %d workers\n", workers);
      return;
    }
    const double jobs_per_sec = kJobs / seconds;
    std::printf("workers=%d:  %6.1f jobs/sec  (%d jobs in %.1f ms)\n", workers,
                jobs_per_sec, kJobs, seconds * 1e3);
    json_metrics["server_jobs_per_sec_w" + std::to_string(workers)] = jobs_per_sec;
  }
  std::printf("\n");
}

void BM_SubmitDoneWarm(benchmark::State& state) {
  const symref::api::Service service;
  const auto compiled = service.compile_netlist(ua741_netlist());
  symref::api::JobManager jobs(service, 1);
  (void)jobs.wait(jobs.submit(compiled.value(), refgen_request(6)));
  for (auto _ : state) {
    const auto outcome = jobs.wait(jobs.submit(compiled.value(), refgen_request(6)));
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_SubmitDoneWarm)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  measure_latency();
  measure_throughput();
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
