// Reproduces paper Table 2: denominator coefficients of the µA741's voltage
// gain across the adaptive algorithm's first interpolations.
//
//   (a) first interpolation — scale factors from the element-value means;
//       a contiguous low-order block of coefficients is valid;
//   (b) second interpolation — scale factors from eq. (13)/(14); the valid
//       region shifts upward with minimal overlap.
//
// Absolute values differ from the paper (its device parameters are not
// published); the structure — region locations, widths, normalized
// magnitudes around 1e+100, denormalized values spanning hundreds of
// decades — is the reproduction target.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "refgen/naive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

using symref::refgen::AdaptiveResult;
using symref::refgen::IterationRecord;

void print_iteration(const char* title, const IterationRecord& it, int den_degree) {
  std::printf("%s\n", title);
  std::printf("  purpose=%s  f=%.6g  g=%.6g  q=%.6g  points=%d%s\n",
              symref::refgen::purpose_name(it.purpose), it.f_scale, it.g_scale, it.q,
              it.points, it.deflated ? "  (deflated, eq. 17)" : "");
  std::printf("  valid region: %s (shift %d)\n", it.den_region.to_string().c_str(),
              it.den_shift);
  symref::support::TextTable table;
  table.set_header({"s^i", "Normalized", "Denormalized", ""});
  for (std::size_t i = 0; i < it.den_normalized.size(); ++i) {
    const int index = static_cast<int>(i) + it.den_shift;
    const auto normalized = it.den_normalized[i].real();
    const auto denormalized = symref::refgen::denormalize_coefficient(
        normalized, index, den_degree, it.f_scale, it.g_scale);
    table.add_row({
        "s^" + std::to_string(index),
        normalized.to_string(6),
        denormalized.to_string(6),
        it.den_region.contains(static_cast<int>(i)) ? "*" : " ",
    });
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::printf("=== Table 2: uA741 voltage-gain denominator, adaptive iterations ===\n");
  std::printf("('*' = inside the valid region / the paper's shaded cells)\n\n");

  const auto ua = symref::circuits::ua741();
  const AdaptiveResult result =
      symref::refgen::generate_reference(ua, symref::circuits::ua741_gain_spec());
  std::printf("engine: %s, %zu iterations, %d LU evaluations, %.1f ms\n\n",
              result.termination.c_str(), result.iterations.size(),
              result.total_evaluations, result.seconds * 1e3);

  const int den_degree = result.denominator_degree;

  int shown = 0;
  for (const auto& it : result.iterations) {
    if (it.den_new_coefficients == 0) continue;
    const std::string title =
        "--- (" + std::string(1, static_cast<char>('a' + shown)) + ") interpolation " +
        std::to_string(it.index) + " ---";
    print_iteration(title.c_str(), it, den_degree);
    if (++shown == 2) break;  // Table 2 shows the first two
  }

  std::printf("paper shape: first region p0..p12 of 49, second p13..p30;\n");
  std::printf("this model:  see regions above (order bound %d)\n",
              result.reference.denominator().order_bound());
  const std::map<std::string, double> json_metrics = {
      {"table2_iterations", static_cast<double>(result.iterations.size())},
      {"table2_evaluations", static_cast<double>(result.total_evaluations)},
      {"table2_ms", result.seconds * 1e3},
  };
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
