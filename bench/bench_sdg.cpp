// Ablation A5: SDG term generation under eq. (3) error control.
//
// This is the paper's *motivation*: SDG generates symbolic terms in
// decreasing magnitude until the accumulated sum reproduces the numerical
// reference within eps_k. The table shows, for the OTA's determinant
// coefficients, how many terms each eps needs — the whole point of having
// an accurate reference is that this stopping rule becomes trustworthy.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <cstdio>

#include <map>
#include <string>

#include "circuits/ota.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"
#include "symbolic/det.h"
#include "symbolic/sdg.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  std::map<std::string, double> json_metrics;
  std::printf("=== Ablation A5: SDG term counts vs eq. (3) epsilon (OTA) ===\n\n");

  const auto ota = symref::circuits::ota_fig1();
  const auto canonical = symref::netlist::canonicalize(ota);
  const symref::symbolic::SymbolicNodalMatrix matrix(canonical);

  // Numerical references from the paper's engine (transimpedance: the
  // denominator IS the determinant the SDG expands).
  const auto spec = symref::mna::TransferSpec::transimpedance("inp", "vo", "inn");
  const auto reference = symref::refgen::generate_reference(ota, spec);
  std::printf("reference: %s\n\n", reference.termination.c_str());

  // Full expansions for ground truth term counts.
  const auto det = symref::symbolic::symbolic_determinant(matrix);
  std::size_t total_terms[8] = {};
  for (const auto& term : det.terms()) {
    if (term.s_power < 8) ++total_terms[term.s_power];
  }

  symref::support::TextTable table;
  table.set_header({"coefficient", "total terms", "eps=1e-1", "eps=1e-3", "eps=1e-6",
                    "exact sum"});
  const auto& den = reference.reference.denominator();
  for (int k = 0; k <= den.order_bound(); ++k) {
    if (!den.at(k).known() || den.at(k).value.is_zero()) continue;
    std::vector<std::string> row = {"s^" + std::to_string(k),
                                    std::to_string(total_terms[k])};
    for (const double eps : {1e-1, 1e-3, 1e-6}) {
      symref::symbolic::SdgOptions options;
      options.epsilon = eps;
      const auto result =
          symref::symbolic::generate_determinant_terms(matrix, k, den.at(k).value, options);
      row.push_back(std::to_string(result.generated()) +
                    (result.met ? "" : " (!" + result.termination + ")"));
      if (eps == 1e-3) {
        json_metrics["sdg_terms_eps1e3_s" + std::to_string(k)] =
            static_cast<double>(result.generated());
      }
    }
    symref::symbolic::SdgOptions exact;
    exact.epsilon = 0.0;
    const auto full =
        symref::symbolic::generate_determinant_terms(matrix, k, den.at(k).value, exact);
    row.push_back(symref::support::format_sci(
        symref::numeric::relative_difference(full.accumulated, den.at(k).value), 2));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Reading: a handful of dominant terms reproduces each coefficient to 10%%;\n");
  std::printf("the exhausted stream matches the interpolated reference (last column ~ the\n");
  std::printf("engine's own accuracy), closing the SDG <-> reference loop end to end.\n");
  json_metrics["sdg_reference_complete"] = reference.complete ? 1.0 : 0.0;
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n", json_path.c_str());
  }
  return 0;
}
