// Parameter-sweep economics on the µA741: plan-reused per-sample cost vs
// the cold compile+refgen a caller would pay without the sweep engine.
//
// The workload is the acceptance scenario: a 256-sample Monte-Carlo study
// over the compensation capacitor and output load of the bundled µA741,
// probing the transfer function on a small log grid per sample. The whole
// study replays ONE symbolic factorization plan (fresh_factorizations == 1
// is asserted into the metrics), so the per-sample cost is a handful of
// refactor+solve replays instead of a full parse/canonicalize/plan/engine
// pipeline.
//
// Acceptance row: param_sweep_speedup_vs_cold (cold compile+refgen per
// sample vs plan-reused per sample) must be >= 5.
//
// Emitted rows (BENCH_refgen.json via --json <path>):
//   param_sweep_cold_compile_refgen_ms   cold pipeline, one sample's worth
//   param_sweep_warm_sample_us           plan-reused cost per sample
//   param_sweep_speedup_vs_cold          ratio of the two
//   param_sweep_fresh_factorizations     plan probe (1 = full replay)
//   param_sweep_samples_per_s_t<N>       throughput at 1/2/8 lanes
//   param_sweep_bit_identical_t<N>       1 when t<N> == t1 bit-for-bit
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "api/service.h"
#include "circuits/ua741.h"
#include "netlist/writer.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/timer.h"

namespace {

std::map<std::string, double> json_metrics;

/// The bundled µA741 with compensation/load lifted to .param symbols
/// (nominals reproduce circuits::ua741() exactly) — the same construction
/// as tests/mna/param_sweep_test.cpp.
const std::string& parameterized_ua741() {
  static const std::string text = [] {
    std::istringstream in(symref::netlist::write_netlist(symref::circuits::ua741()));
    std::ostringstream out;
    out << ".param ccomp=30p rload=2k\n";
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("cc ", 0) == 0) {
        out << line.substr(0, line.rfind(' ')) << " {ccomp}\n";
      } else if (line.rfind("rl ", 0) == 0) {
        out << line.substr(0, line.rfind(' ')) << " {rload}\n";
      } else {
        out << line << '\n';
      }
    }
    return out.str();
  }();
  return text;
}

symref::api::ParamSweepRequest mc_request(int threads) {
  symref::api::ParamSweepRequest request;
  request.spec = symref::circuits::ua741_gain_spec();
  request.mode = symref::api::ParamSweepRequest::Mode::kMonteCarlo;
  request.dists = {{"ccomp", 30e-12, 0.1, symref::mna::ParamDist::Kind::kGaussian},
                   {"rload", 2e3, 0.05, symref::mna::ParamDist::Kind::kGaussian}};
  request.samples = 256;
  request.seed = 20260727;
  request.f_start_hz = 1.0;
  request.f_stop_hz = 1e6;
  request.points_per_decade = 1;
  request.threads = threads;
  return request;
}

void measure() {
  using symref::api::Service;
  using symref::support::Timer;

  // Cold: what one parameter sample costs without the sweep engine —
  // recompile the netlist text and run a fresh reference generation.
  Timer cold_timer;
  double cold_ms = 0.0;
  {
    const Service cold_service;
    const auto handle = cold_service.compile_netlist(parameterized_ua741());
    if (!handle.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", handle.status().to_string().c_str());
      return;
    }
    const auto reference =
        cold_service.refgen(handle.value(), {symref::circuits::ua741_gain_spec(), {}});
    cold_ms = cold_timer.millis();
    if (!reference.ok()) {
      std::fprintf(stderr, "cold refgen failed: %s\n",
                   reference.status().to_string().c_str());
      return;
    }
  }

  const Service service;
  const auto compiled = service.compile_netlist(parameterized_ua741());
  if (!compiled.ok()) return;
  const symref::api::CircuitHandle handle = compiled.value();

  std::printf("=== µA741 256-sample Monte-Carlo parameter sweep ===\n\n");
  std::printf("cold compile+refgen (per-sample without sweeps): %8.3f ms\n\n", cold_ms);
  json_metrics["param_sweep_cold_compile_refgen_ms"] = cold_ms;

  const symref::api::ParamSweepResponse* serial = nullptr;
  symref::api::Result<symref::api::ParamSweepResponse> kept(symref::api::Status::error(
      symref::api::StatusCode::kInternal, "not run"));
  for (const int threads : {1, 2, 8}) {
    // Fresh service per thread count: no response-cache shortcuts.
    const Service fresh_service;
    const auto fresh_handle = fresh_service.compile_netlist(parameterized_ua741());
    Timer timer;
    auto response = fresh_service.param_sweep(fresh_handle.value(), mc_request(threads));
    const double ms = timer.millis();
    if (!response.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n", response.status().to_string().c_str());
      return;
    }
    const auto& result = response.value().result;
    const double samples_per_s = 256.0 / (ms / 1e3);
    const double sample_us = ms * 1e3 / 256.0;
    std::printf(
        "t%-2d  %8.3f ms total  %7.2f us/sample  %9.0f samples/s  (%llu fresh "
        "factorization%s)\n",
        threads, ms, sample_us, samples_per_s,
        static_cast<unsigned long long>(result.fresh_factorizations),
        result.fresh_factorizations == 1 ? "" : "s");
    char key[64];
    std::snprintf(key, sizeof(key), "param_sweep_samples_per_s_t%d", threads);
    json_metrics[key] = samples_per_s;
    if (threads == 1) {
      json_metrics["param_sweep_warm_sample_us"] = sample_us;
      json_metrics["param_sweep_speedup_vs_cold"] = cold_ms * 1e3 / sample_us;
      json_metrics["param_sweep_fresh_factorizations"] =
          static_cast<double>(result.fresh_factorizations);
      kept = std::move(response);
      serial = &kept.value();
    } else {
      bool identical = serial != nullptr &&
                       serial->result.response.size() == result.response.size();
      if (identical) {
        for (std::size_t i = 0; i < result.response.size(); ++i) {
          if (serial->result.response[i] != result.response[i]) {
            identical = false;
            break;
          }
        }
      }
      std::snprintf(key, sizeof(key), "param_sweep_bit_identical_t%d", threads);
      json_metrics[key] = identical ? 1.0 : 0.0;
    }
  }
  std::printf("\nplan-reused sample vs cold compile+refgen: %.0fx\n\n",
              json_metrics["param_sweep_speedup_vs_cold"]);
}

void BM_ParamSweepMc256(benchmark::State& state) {
  const symref::api::Service service;
  const auto handle = service.compile_netlist(parameterized_ua741());
  auto request = mc_request(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Vary the seed so the response cache never serves the request.
    ++request.seed;
    auto response = service.param_sweep(handle.value(), request);
    benchmark::DoNotOptimize(response.ok());
  }
}
BENCHMARK(BM_ParamSweepMc256)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  measure();
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
