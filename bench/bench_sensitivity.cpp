// Ablation A7: adjoint sensitivity screening for SBG.
//
// The brute-force SBG candidate scan re-simulates the circuit once per
// element per greedy round; the adjoint method ranks ALL elements with two
// extra solves per frequency. This bench measures both the agreement (same
// prune set) and the cost difference on the µA741.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "circuits/ua741.h"
#include "mna/sensitivity.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"
#include "symbolic/sbg.h"

namespace {

void print_agreement(const std::string& json_path) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  const auto reference = symref::refgen::generate_reference(ua, spec);

  std::printf("=== Ablation A7: adjoint screening for SBG (uA741) ===\n\n");

  // Raw sensitivity ranking on the canonical twin.
  const auto canonical = symref::netlist::canonicalize(ua);
  symref::support::Timer rank_timer;
  const auto band = symref::mna::band_sensitivities(canonical, spec, 10.0, 1e6, 1);
  const double rank_ms = rank_timer.millis();

  int negligible = 0;
  for (const auto& s : band) {
    if (std::abs(s.normalized) < 5e-4) ++negligible;
  }
  std::printf("adjoint ranking: %zu elements in %.2f ms; %d below 5e-4 influence\n\n",
              band.size(), rank_ms, negligible);

  // Run both policies on the canonical twin (screening needs the
  // homogeneous form; the element set maps 1:1 through canonicalization).
  symref::symbolic::SbgOptions options;
  options.epsilon = 0.05;
  options.f_start_hz = 10.0;
  options.f_stop_hz = 1e6;
  options.points_per_decade = 1;
  options.max_removals = 20;

  symref::support::Timer brute_timer;
  const auto brute = symref::symbolic::simplify_before_generation(
      canonical, spec, reference.reference, options);
  const double brute_ms = brute_timer.millis();

  options.sensitivity_screening = true;
  symref::support::Timer screened_timer;
  const auto screened = symref::symbolic::simplify_before_generation(
      canonical, spec, reference.reference, options);
  const double screened_ms = screened_timer.millis();

  symref::support::TextTable table;
  table.set_header({"policy", "removed", "time [ms]"});
  table.add_row({"brute force", std::to_string(brute.actions.size()),
                 symref::support::format_sci(brute_ms, 4)});
  table.add_row({"adjoint-screened", std::to_string(screened.actions.size()),
                 symref::support::format_sci(screened_ms, 4)});
  std::printf("%s\n", table.str().c_str());

  int agree = 0;
  const std::size_t common = std::min(brute.actions.size(), screened.actions.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (brute.actions[i].element == screened.actions[i].element) ++agree;
  }
  std::printf("prune-sequence agreement: %d of %zu actions identical\n\n", agree, common);
  const std::map<std::string, double> json_metrics = {
      {"sensitivity_rank_ms", rank_ms},
      {"sbg_brute_ms", brute_ms},
      {"sbg_screened_ms", screened_ms},
      {"sbg_prune_agreement", common == 0 ? 1.0 : static_cast<double>(agree) /
                                                      static_cast<double>(common)},
  };
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  std::printf("Reading: the adjoint ranking itself is ~1000x cheaper than one greedy SBG\n");
  std::printf("round, and screening provably never changes the prune sequence. On the 741\n");
  std::printf("only a minority of elements exceed the exclusion threshold, so end-to-end\n");
  std::printf("wall clock is parity — the ranking's real use is standalone influence\n");
  std::printf("analysis (see mna/sensitivity.h) and aggressive screening thresholds.\n");
}

void BM_AdjointBandRanking(benchmark::State& state) {
  const auto canonical = symref::netlist::canonicalize(symref::circuits::ua741());
  const auto spec = symref::circuits::ua741_gain_spec();
  for (auto _ : state) {
    auto band = symref::mna::band_sensitivities(canonical, spec, 10.0, 1e6, 1);
    benchmark::DoNotOptimize(band.size());
  }
}
BENCHMARK(BM_AdjointBandRanking)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  print_agreement(args.get("json", symref::support::kBenchJsonPath));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
