// Reproduces the paper's §3.3 CPU-time experiment: per-iteration cost of the
// adaptive algorithm on the µA741, with and without the eq. (17) deflation.
//
// Paper (SPARC Station 10): 3.9 s per iteration without the reduction;
// 3.9 s / 2.3 s / 0.9 s for the three iterations with it. Absolute times are
// hardware-bound; the reproduction target is the *decline* driven by the
// shrinking interpolation point count (the work per iteration is
// points x LU cost). google-benchmark timings of the full run follow.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "circuits/ua741.h"
#include "refgen/adaptive.h"
#include "support/table.h"

namespace {

void print_iteration_costs() {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::refgen::AdaptiveOptions with_deflation;
  symref::refgen::AdaptiveOptions without_deflation;
  without_deflation.use_deflation = false;

  const auto deflated = symref::refgen::generate_reference(ua, spec, with_deflation);
  const auto plain = symref::refgen::generate_reference(ua, spec, without_deflation);

  std::printf("=== §3.3: per-iteration cost, eq. (17) deflation on/off ===\n\n");
  symref::support::TextTable table;
  table.set_header({"iteration", "points (defl.)", "time [ms] (defl.)", "points (plain)",
                    "time [ms] (plain)"});
  const std::size_t rows = std::max(deflated.iterations.size(), plain.iterations.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell_points = [&](const symref::refgen::AdaptiveResult& r) {
      return i < r.iterations.size() ? std::to_string(r.iterations[i].points)
                                     : std::string("-");
    };
    auto cell_time = [&](const symref::refgen::AdaptiveResult& r) {
      return i < r.iterations.size()
                 ? symref::support::format_sci(r.iterations[i].seconds * 1e3, 3)
                 : std::string("-");
    };
    table.add_row({std::to_string(i), cell_points(deflated), cell_time(deflated),
                   cell_points(plain), cell_time(plain)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("totals: deflated %d evaluations in %.1f ms; plain %d evaluations in %.1f ms\n",
              deflated.total_evaluations, deflated.seconds * 1e3, plain.total_evaluations,
              plain.seconds * 1e3);
  std::printf("paper:  3.9/2.3/0.9 s per productive iteration (deflated) vs 3.9 s flat\n\n");
}

void BM_Ua741ReferenceDeflated(benchmark::State& state) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ua, spec);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
}
BENCHMARK(BM_Ua741ReferenceDeflated)->Unit(benchmark::kMillisecond);

void BM_Ua741ReferencePlain(benchmark::State& state) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  symref::refgen::AdaptiveOptions options;
  options.use_deflation = false;
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ua, spec, options);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
}
BENCHMARK(BM_Ua741ReferencePlain)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_iteration_costs();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
