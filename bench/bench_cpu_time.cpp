// Reproduces the paper's §3.3 CPU-time experiment: per-iteration cost of the
// adaptive algorithm on the µA741, with and without the eq. (17) deflation.
//
// Paper (SPARC Station 10): 3.9 s per iteration without the reduction;
// 3.9 s / 2.3 s / 0.9 s for the three iterations with it. Absolute times are
// hardware-bound; the reproduction target is the *decline* driven by the
// shrinking interpolation point count (the work per iteration is
// points x LU cost). google-benchmark timings of the full run follow.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "circuits/ua741.h"
#include "mna/ac.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

/// Headline numbers merged into BENCH_refgen.json for cross-PR tracking.
std::map<std::string, double> json_metrics;

// Cached frequency sweep (one factorization plan for the whole Bode run)
// against the per-point path (fresh simulator, fresh factorization each
// point) — the repeated-evaluation workload the symbolic/numeric LU split
// and pattern-cached assembly target.
void measure_bode_sweep() {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  const double f_start = 1.0;
  const double f_stop = 1e8;
  const int per_decade = 20;

  const symref::mna::AcSimulator cached_sim(ua);
  symref::support::Timer cached_timer;
  const auto sweep = cached_sim.bode(spec, f_start, f_stop, per_decade);
  const double cached_ms = cached_timer.millis();

  symref::support::Timer per_point_timer;
  for (const auto& point : sweep) {
    const symref::mna::AcSimulator fresh(ua);
    const auto value = fresh.transfer(spec, point.frequency_hz);
    benchmark::DoNotOptimize(value);
  }
  const double per_point_ms = per_point_timer.millis();

  std::printf("=== µA741 Bode sweep, %zu points ===\n\n", sweep.size());
  std::printf("cached sweep (plan reuse):     %8.2f ms\n", cached_ms);
  std::printf("per-point factorization:       %8.2f ms  (%.1fx slower)\n\n", per_point_ms,
              per_point_ms / cached_ms);
  json_metrics["ua741_bode_points"] = static_cast<double>(sweep.size());
  json_metrics["ua741_bode_cached_ms"] = cached_ms;
  json_metrics["ua741_bode_per_point_ms"] = per_point_ms;
}

void print_iteration_costs() {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::refgen::AdaptiveOptions with_deflation;
  symref::refgen::AdaptiveOptions without_deflation;
  without_deflation.use_deflation = false;

  const auto deflated = symref::refgen::generate_reference(ua, spec, with_deflation);
  const auto plain = symref::refgen::generate_reference(ua, spec, without_deflation);

  std::printf("=== §3.3: per-iteration cost, eq. (17) deflation on/off ===\n\n");
  symref::support::TextTable table;
  table.set_header({"iteration", "points (defl.)", "time [ms] (defl.)", "points (plain)",
                    "time [ms] (plain)"});
  const std::size_t rows = std::max(deflated.iterations.size(), plain.iterations.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell_points = [&](const symref::refgen::AdaptiveResult& r) {
      return i < r.iterations.size() ? std::to_string(r.iterations[i].points)
                                     : std::string("-");
    };
    auto cell_time = [&](const symref::refgen::AdaptiveResult& r) {
      return i < r.iterations.size()
                 ? symref::support::format_sci(r.iterations[i].seconds * 1e3, 3)
                 : std::string("-");
    };
    table.add_row({std::to_string(i), cell_points(deflated), cell_time(deflated),
                   cell_points(plain), cell_time(plain)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("totals: deflated %d evaluations in %.1f ms; plain %d evaluations in %.1f ms\n",
              deflated.total_evaluations, deflated.seconds * 1e3, plain.total_evaluations,
              plain.seconds * 1e3);
  std::printf("paper:  3.9/2.3/0.9 s per productive iteration (deflated) vs 3.9 s flat\n\n");
  json_metrics["ua741_refgen_deflated_ms"] = deflated.seconds * 1e3;
  json_metrics["ua741_refgen_deflated_evaluations"] = deflated.total_evaluations;
  json_metrics["ua741_refgen_plain_ms"] = plain.seconds * 1e3;
  json_metrics["ua741_refgen_plain_evaluations"] = plain.total_evaluations;
}

void BM_Ua741ReferenceDeflated(benchmark::State& state) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ua, spec);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
}
BENCHMARK(BM_Ua741ReferenceDeflated)->Unit(benchmark::kMillisecond);

void BM_Ua741ReferencePlain(benchmark::State& state) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  symref::refgen::AdaptiveOptions options;
  options.use_deflation = false;
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ua, spec, options);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
}
BENCHMARK(BM_Ua741ReferencePlain)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_iteration_costs();
  measure_bode_sweep();
  if (!symref::support::merge_bench_json(symref::support::kBenchJsonPath, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", symref::support::kBenchJsonPath);
  } else {
    std::printf("metrics merged into %s\n\n", symref::support::kBenchJsonPath);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
