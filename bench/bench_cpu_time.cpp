// Reproduces the paper's §3.3 CPU-time experiment: per-iteration cost of the
// adaptive algorithm on the µA741, with and without the eq. (17) deflation.
//
// Paper (SPARC Station 10): 3.9 s per iteration without the reduction;
// 3.9 s / 2.3 s / 0.9 s for the three iterations with it. Absolute times are
// hardware-bound; the reproduction target is the *decline* driven by the
// shrinking interpolation point count (the work per iteration is
// points x LU cost). google-benchmark timings of the full run follow.
//
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json);
// --threads N additionally sweeps the adaptive run and the Bode sweep at
// 1, 2, 4, ... up to N lanes, checks the results are bit-identical to the
// serial path, and emits one metrics row per thread count.
#include <benchmark/benchmark.h>

#include <complex>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "circuits/ua741.h"
#include "mna/ac.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using symref::support::thread_ladder;

/// Headline numbers merged into the --json file for cross-PR tracking.
std::map<std::string, double> json_metrics;

// Cached frequency sweep (one factorization plan for the whole Bode run)
// against the per-point path (fresh simulator, fresh factorization each
// point) — the repeated-evaluation workload the symbolic/numeric LU split
// and pattern-cached assembly target. With --threads > 1 the same sweep is
// repeated over the thread ladder; every run must be bit-identical to the
// one-lane sweep (independent plan replays + ordered reduction).
void measure_bode_sweep(int max_threads) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  const double f_start = 1.0;
  const double f_stop = 1e8;
  const int per_decade = 20;

  const symref::mna::AcSimulator cached_sim(ua);
  symref::support::Timer cached_timer;
  const auto sweep = cached_sim.bode(spec, f_start, f_stop, per_decade);
  const double cached_ms = cached_timer.millis();

  symref::support::Timer per_point_timer;
  for (const auto& point : sweep) {
    const symref::mna::AcSimulator fresh(ua);
    const auto value = fresh.transfer(spec, point.frequency_hz);
    benchmark::DoNotOptimize(value);
  }
  const double per_point_ms = per_point_timer.millis();

  std::printf("=== µA741 Bode sweep, %zu points ===\n\n", sweep.size());
  std::printf("cached sweep (plan reuse):     %8.2f ms\n", cached_ms);
  std::printf("per-point factorization:       %8.2f ms  (%.1fx slower)\n\n", per_point_ms,
              per_point_ms / cached_ms);
  json_metrics["ua741_bode_points"] = static_cast<double>(sweep.size());
  json_metrics["ua741_bode_cached_ms"] = cached_ms;
  json_metrics["ua741_bode_per_point_ms"] = per_point_ms;

  if (max_threads <= 1) return;
  std::printf("--- parallel sweep, %zu points ---\n", sweep.size());
  bool all_identical = true;
  for (const int threads : thread_ladder(max_threads)) {
    const symref::mna::AcSimulator sim(ua);
    symref::support::Timer timer;
    const auto parallel = sim.bode(spec, f_start, f_stop, per_decade, threads);
    const double ms = timer.millis();
    bool identical = parallel.size() == sweep.size();
    for (std::size_t i = 0; identical && i < sweep.size(); ++i) {
      identical = parallel[i].value == sweep[i].value &&
                  parallel[i].phase_deg == sweep[i].phase_deg;
    }
    all_identical = all_identical && identical;
    std::printf("threads=%2d: %8.2f ms  (%.2fx vs 1 thread)  bit-identical: %s\n", threads,
                ms, cached_ms / ms, identical ? "yes" : "NO");
    json_metrics["ua741_bode_cached_ms_t" + std::to_string(threads)] = ms;
  }
  json_metrics["ua741_bode_parallel_bit_identical"] = all_identical ? 1.0 : 0.0;
  std::printf("\n");
}

void print_iteration_costs(int max_threads) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();

  symref::refgen::AdaptiveOptions with_deflation;
  symref::refgen::AdaptiveOptions without_deflation;
  without_deflation.use_deflation = false;

  const auto deflated = symref::refgen::generate_reference(ua, spec, with_deflation);
  const auto plain = symref::refgen::generate_reference(ua, spec, without_deflation);

  std::printf("=== §3.3: per-iteration cost, eq. (17) deflation on/off ===\n\n");
  symref::support::TextTable table;
  table.set_header({"iteration", "points (defl.)", "time [ms] (defl.)", "points (plain)",
                    "time [ms] (plain)"});
  const std::size_t rows = std::max(deflated.iterations.size(), plain.iterations.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell_points = [&](const symref::refgen::AdaptiveResult& r) {
      return i < r.iterations.size() ? std::to_string(r.iterations[i].points)
                                     : std::string("-");
    };
    auto cell_time = [&](const symref::refgen::AdaptiveResult& r) {
      return i < r.iterations.size()
                 ? symref::support::format_sci(r.iterations[i].seconds * 1e3, 3)
                 : std::string("-");
    };
    table.add_row({std::to_string(i), cell_points(deflated), cell_time(deflated),
                   cell_points(plain), cell_time(plain)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("totals: deflated %d evaluations in %.1f ms; plain %d evaluations in %.1f ms\n",
              deflated.total_evaluations, deflated.seconds * 1e3, plain.total_evaluations,
              plain.seconds * 1e3);
  std::printf("paper:  3.9/2.3/0.9 s per productive iteration (deflated) vs 3.9 s flat\n\n");
  json_metrics["ua741_refgen_deflated_ms"] = deflated.seconds * 1e3;
  json_metrics["ua741_refgen_deflated_evaluations"] = deflated.total_evaluations;
  json_metrics["ua741_refgen_plain_ms"] = plain.seconds * 1e3;
  json_metrics["ua741_refgen_plain_evaluations"] = plain.total_evaluations;

  if (max_threads <= 1) return;
  // Same adaptive run across the thread ladder; coefficients must come out
  // bit-identical to the one-lane run at every thread count (independent
  // replays of the per-iteration baseline plan, ordered reductions).
  std::printf("--- parallel adaptive run (deflated) ---\n");
  bool all_identical = true;
  for (const int threads : thread_ladder(max_threads)) {
    symref::refgen::AdaptiveOptions options;
    options.threads = threads;
    symref::support::Timer timer;
    const auto result = symref::refgen::generate_reference(ua, spec, options);
    const double ms = timer.millis();
    bool identical = result.total_evaluations == deflated.total_evaluations &&
                     result.iterations.size() == deflated.iterations.size();
    auto same_poly = [&](const symref::refgen::PolynomialReference& a,
                         const symref::refgen::PolynomialReference& b) {
      for (int i = 0; i <= a.order_bound(); ++i) {
        if (!(a.at(i).value == b.at(i).value)) return false;
      }
      return true;
    };
    identical = identical &&
                same_poly(result.reference.numerator(), deflated.reference.numerator()) &&
                same_poly(result.reference.denominator(), deflated.reference.denominator());
    all_identical = all_identical && identical;
    std::printf("threads=%2d: %8.2f ms  (%.2fx vs 1 thread)  bit-identical: %s\n", threads,
                ms, (deflated.seconds * 1e3) / ms, identical ? "yes" : "NO");
    json_metrics["ua741_refgen_deflated_ms_t" + std::to_string(threads)] = ms;
  }
  json_metrics["ua741_refgen_parallel_bit_identical"] = all_identical ? 1.0 : 0.0;
  std::printf("\n");
}

void BM_Ua741ReferenceDeflated(benchmark::State& state) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ua, spec);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
}
BENCHMARK(BM_Ua741ReferenceDeflated)->Unit(benchmark::kMillisecond);

void BM_Ua741ReferencePlain(benchmark::State& state) {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  symref::refgen::AdaptiveOptions options;
  options.use_deflation = false;
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ua, spec, options);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
}
BENCHMARK(BM_Ua741ReferencePlain)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json", "threads"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  const int max_threads = args.get_int("threads", 1);
  print_iteration_costs(max_threads);
  measure_bode_sweep(max_threads);
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
