// Plan-replay economics of transient time stepping on the µA741 deck: a
// constant-step run factors three times (bias + consistent init + the one
// step bucket) and replays the bucket plan for every remaining step. The
// headline number is that replay stepping vs the same run with every replay
// refused (each step forced through a fresh factorization, via the lu_pivot
// fault site) — the speedup the bucket contract buys.
//
// Emitted rows (BENCH_refgen.json via --json <path>):
//   transient_ua741_1024_steps_ms      41-node deck, 1024 trapezoidal steps
//   transient_ua741_us_per_step        per-step replay cost
//   transient_fresh_factorizations     plan probe (3 = bias + init + bucket)
//   transient_fresh_per_step_ms        same run, every replay refused
//   transient_replay_speedup_vs_fresh  ratio of the two
//   transient_rectifier_1000_steps_ms  Newton-per-step nonlinear stepping
//   transient_rectifier_newton_iters   total Newton iterations of that run
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "netlist/parser.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/fault_injection.h"
#include "support/timer.h"
#include "transient/transient.h"

namespace {

std::map<std::string, double> json_metrics;

const std::string& ua741_text() {
  static const std::string text = [] {
    const std::string path = std::string(SYMREF_SOURCE_DIR) + "/tools/data/ua741.cir";
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }();
  return text;
}

/// µA741 deck driven by a 1 mV, 1 kHz sine at inp — the FFT suite's
/// steady-state workload, truncated to a benchmark-sized window.
symref::netlist::Circuit driven_ua741() {
  symref::netlist::Circuit c = symref::netlist::parse_netlist(ua741_text());
  c.add_vsource("vin", "inp", "0", 0.0);
  symref::netlist::Element* vin = c.mutable_element("vin");
  vin->waveform.kind = symref::netlist::WaveformKind::kSin;
  vin->waveform.v2 = 1e-3;
  vin->waveform.frequency = 1e3;
  return c;
}

symref::transient::TransientOptions fixed_step(double tstop, double tstep) {
  symref::transient::TransientOptions o;
  o.tstop = tstop;
  o.tstep = tstep;
  o.adaptive = false;
  return o;
}

constexpr const char* kRectifierNetlist =
    "* half-wave rectifier\n"
    ".model dfast d is=1e-14 n=1\n"
    "vin in 0 dc 0 sin(0 5 1k)\n"
    "r1 in out 1k\n"
    "d1 out 0 dfast\n"
    ".end\n";

void measure() {
  using symref::support::Timer;

  const symref::netlist::Circuit deck = driven_ua741();
  constexpr int kSteps = 1024;
  const symref::transient::TransientOptions options =
      fixed_step(16.0 / 1e3, 16.0 / 1e3 / kSteps);  // 16 periods, 64 pts each

  std::printf("=== µA741 transient: %d trapezoidal steps, one bucket plan ===\n\n", kSteps);

  // Replay stepping: best of a few runs to shake out first-touch noise.
  double replay_ms = 1e300;
  symref::transient::TransientResult result;
  for (int rep = 0; rep < 5; ++rep) {
    Timer timer;
    result = symref::transient::solve_transient(deck, options);
    const double ms = timer.millis();
    if (ms < replay_ms) replay_ms = ms;
  }
  if (result.fresh_factorizations != 3) {
    std::fprintf(stderr, "expected 3 fresh factorizations, saw %llu\n",
                 static_cast<unsigned long long>(result.fresh_factorizations));
  }

  // The same run with every bucket replay refused: each step (and each
  // init/bias iterate) pays a full fresh factorization — the cost replay
  // stepping avoids.
  symref::support::FaultInjector::instance().configure("lu_pivot:1");
  double fresh_ms = 1e300;
  symref::transient::TransientResult fresh;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    fresh = symref::transient::solve_transient(deck, options);
    const double ms = timer.millis();
    if (ms < fresh_ms) fresh_ms = ms;
  }
  symref::support::FaultInjector::instance().reset();

  std::printf("replay stepping (bucket plan):  %8.3f ms  (%d steps, %llu fresh "
              "factorizations, %.2f us/step)\n",
              replay_ms, result.steps,
              static_cast<unsigned long long>(result.fresh_factorizations),
              1e3 * replay_ms / result.steps);
  std::printf("fresh factor per step (forced): %8.3f ms  (%llu fresh factorizations)\n",
              fresh_ms, static_cast<unsigned long long>(fresh.fresh_factorizations));
  std::printf("replay vs fresh:                %8.2fx\n\n", fresh_ms / replay_ms);

  json_metrics["transient_ua741_1024_steps_ms"] = replay_ms;
  json_metrics["transient_ua741_us_per_step"] = 1e3 * replay_ms / result.steps;
  json_metrics["transient_fresh_factorizations"] =
      static_cast<double>(result.fresh_factorizations);
  json_metrics["transient_fresh_per_step_ms"] = fresh_ms;
  json_metrics["transient_replay_speedup_vs_fresh"] = fresh_ms / replay_ms;

  // Newton-per-step on a nonlinear deck: every iterate of every step is a
  // replay of the same bucket plan.
  const symref::netlist::Circuit rectifier =
      symref::netlist::parse_netlist(kRectifierNetlist);
  double rectifier_ms = 1e300;
  symref::transient::TransientResult rect;
  for (int rep = 0; rep < 5; ++rep) {
    Timer timer;
    rect = symref::transient::solve_transient(rectifier, fixed_step(2e-3, 2e-6));
    const double ms = timer.millis();
    if (ms < rectifier_ms) rectifier_ms = ms;
  }
  std::printf("rectifier (Newton per step):    %8.3f ms  (%d steps, %d Newton "
              "iterations)\n\n",
              rectifier_ms, rect.steps, rect.newton_iterations);
  json_metrics["transient_rectifier_1000_steps_ms"] = rectifier_ms;
  json_metrics["transient_rectifier_newton_iters"] =
      static_cast<double>(rect.newton_iterations);
}

void BM_TransientReplaySteps(benchmark::State& state) {
  const symref::netlist::Circuit deck = driven_ua741();
  const symref::transient::TransientOptions options =
      fixed_step(16.0 / 1e3, 16.0 / 1e3 / 1024);
  for (auto _ : state) {
    const symref::transient::TransientResult r =
        symref::transient::solve_transient(deck, options);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_TransientReplaySteps)->Unit(benchmark::kMillisecond);

void BM_TransientRectifier(benchmark::State& state) {
  const symref::netlist::Circuit deck = symref::netlist::parse_netlist(kRectifierNetlist);
  for (auto _ : state) {
    const symref::transient::TransientResult r =
        symref::transient::solve_transient(deck, fixed_step(2e-3, 2e-6));
    benchmark::DoNotOptimize(r.newton_iterations);
  }
}
BENCHMARK(BM_TransientRectifier)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  measure();
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
