// Ablation A4: scalability of the reference generator with circuit size.
//
// RC ladders of increasing order n: the engine needs O(n) interpolation
// points per iteration and a sparse LU per point (the ladder factors with
// zero fill), so total work should grow roughly as n^2 with a small number
// of iterations independent of n. google-benchmark timings per size follow
// the summary table.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json);
// --threads N re-runs the ladder-128 generation across 1, 2, 4, ... N lanes
// and emits one metrics row per thread count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using symref::support::thread_ladder;

void print_summary(const std::string& json_path, int max_threads) {
  std::map<std::string, double> json_metrics;
  std::printf("=== Ablation A4: adaptive reference generation vs ladder size ===\n\n");
  symref::support::TextTable table;
  table.set_header({"n (order)", "iterations", "LU evaluations", "time [ms]", "complete"});
  for (const int n : {4, 8, 16, 32, 64, 128}) {
    const auto ladder = symref::circuits::rc_ladder(n);
    const auto spec = symref::circuits::rc_ladder_spec(n);
    const auto result = symref::refgen::generate_reference(ladder, spec);
    table.add_row({
        std::to_string(n),
        std::to_string(result.iterations.size()),
        std::to_string(result.total_evaluations),
        symref::support::format_sci(result.seconds * 1e3, 3),
        result.complete ? "yes" : result.termination,
    });
    const std::string prefix = "ladder" + std::to_string(n) + "_refgen_";
    json_metrics[prefix + "ms"] = result.seconds * 1e3;
    json_metrics[prefix + "evaluations"] = result.total_evaluations;
  }
  std::printf("%s\n", table.str().c_str());

  // Per-interpolation-point kernel: assemble + factor/refactor + solve on
  // the µA741 matrix (the innermost repeated-evaluation hot path).
  {
    const auto ua = symref::circuits::ua741();
    const auto canonical = symref::netlist::canonicalize(ua);
    const symref::mna::NodalSystem system(canonical);
    const symref::mna::CofactorEvaluator evaluator(system,
                                                   symref::circuits::ua741_gain_spec());
    const std::complex<double> s(0.30901699437494745, 0.9510565162951535);
    constexpr int kWarmup = 50;
    constexpr int kSamples = 2000;
    for (int i = 0; i < kWarmup; ++i) {
      auto sample = evaluator.evaluate(s, 2.7e10, 283.0);
      benchmark::DoNotOptimize(sample.denominator);
    }
    symref::support::Timer timer;
    for (int i = 0; i < kSamples; ++i) {
      auto sample = evaluator.evaluate(s, 2.7e10, 283.0);
      benchmark::DoNotOptimize(sample.denominator);
    }
    const double micros = timer.seconds() * 1e6 / kSamples;
    std::printf("µA741 evaluate() kernel: %.2f us/point (%d samples)\n\n", micros, kSamples);
    json_metrics["ua741_evaluate_us"] = micros;
  }

  if (max_threads > 1) {
    // Largest ladder across the thread ladder: the per-iteration point
    // batches grow with n, so this is the best-scaling refgen workload.
    std::printf("--- ladder-128 reference generation, parallel ---\n");
    const auto ladder = symref::circuits::rc_ladder(128);
    const auto spec = symref::circuits::rc_ladder_spec(128);
    for (const int threads : thread_ladder(max_threads)) {
      symref::refgen::AdaptiveOptions options;
      options.threads = threads;
      symref::support::Timer timer;
      const auto result = symref::refgen::generate_reference(ladder, spec, options);
      const double ms = timer.millis();
      std::printf("threads=%2d: %8.2f ms (%d evaluations)\n", threads, ms,
                  result.total_evaluations);
      json_metrics["ladder128_refgen_ms_t" + std::to_string(threads)] = ms;
    }
    std::printf("\n");
  }

  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
}

void BM_LadderReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto ladder = symref::circuits::rc_ladder(n);
  const auto spec = symref::circuits::rc_ladder_spec(n);
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ladder, spec);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LadderReference)->RangeMultiplier(2)->Range(4, 128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Ua741SparseLuPerPoint(benchmark::State& state) {
  // The per-interpolation-point kernel: factor + solve on the 741 matrix.
  const auto ua = symref::circuits::ua741();
  const auto canonical = symref::netlist::canonicalize(ua);
  const symref::mna::NodalSystem system(canonical);
  const symref::mna::CofactorEvaluator evaluator(system,
                                                 symref::circuits::ua741_gain_spec());
  const std::complex<double> s(0.30901699437494745, 0.9510565162951535);
  for (auto _ : state) {
    auto sample = evaluator.evaluate(s, 2.7e10, 283.0);
    benchmark::DoNotOptimize(sample.denominator);
  }
}
BENCHMARK(BM_Ua741SparseLuPerPoint)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json", "threads"});
  print_summary(args.get("json", symref::support::kBenchJsonPath),
                args.get_int("threads", 1));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
