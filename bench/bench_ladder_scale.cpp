// Ablation A4: scalability of the reference generator with circuit size.
//
// RC ladders of increasing order n: the engine needs O(n) interpolation
// points per iteration and a sparse LU per point (the ladder factors with
// zero fill), so total work should grow roughly as n^2 with a small number
// of iterations independent of n. google-benchmark timings per size follow
// the summary table.
// Flags: --json <path> selects the metrics file (default BENCH_refgen.json);
// --threads N re-runs the largest-ladder generation across 1, 2, 4, ... N
// lanes and emits one metrics row per thread count; --max-stages N raises
// the top of the refgen size axis beyond the default 128 (powers of two up
// to N).
//
// A second section benchmarks the replay kernels themselves (scalar vs
// batched SoA, see sparse/batched.h) on the large-size axis — ladder-1024,
// ladder-4096 and RC grid meshes (genuine fill-in, multi-step supernodes) —
// and records the samples_per_sec_per_core headline metric plus the
// batched-over-scalar speedup per circuit.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using symref::support::thread_ladder;

/// Sustained single-thread replay throughput of one kernel on one circuit:
/// repeated evaluate_batch() over a fixed probe-point set (the engine's
/// inner loop with the adaptive logic stripped away). The first batch warms
/// the caches and establishes the factorization plan before timing starts.
double replay_samples_per_sec(const symref::mna::CofactorEvaluator& evaluator,
                              const std::vector<std::complex<double>>& points,
                              double f_scale, symref::sparse::ReplayKernel kernel) {
  auto warm = evaluator.evaluate_batch(points, f_scale, 1.0, nullptr, kernel);
  benchmark::DoNotOptimize(warm.data());
  symref::support::Timer timer;
  std::size_t samples = 0;
  while (timer.seconds() < 0.2) {
    auto batch = evaluator.evaluate_batch(points, f_scale, 1.0, nullptr, kernel);
    benchmark::DoNotOptimize(batch.data());
    samples += batch.size();
  }
  return static_cast<double>(samples) / timer.seconds();
}

void print_kernel_throughput(std::map<std::string, double>& json_metrics) {
  std::printf("--- replay kernel throughput (single thread) ---\n");
  struct Row {
    const char* tag;
    symref::netlist::Circuit circuit;
    symref::mna::TransferSpec spec;
    int points;
  };
  std::vector<Row> rows;
  rows.push_back({"ladder1024", symref::circuits::rc_ladder(1024),
                  symref::circuits::rc_ladder_spec(1024), 256});
  rows.push_back({"ladder4096", symref::circuits::rc_ladder(4096),
                  symref::circuits::rc_ladder_spec(4096), 64});
  rows.push_back({"grid_mesh16", symref::circuits::grid_mesh(16, 16),
                  symref::circuits::grid_mesh_spec(16, 16), 256});
  rows.push_back({"grid_mesh32", symref::circuits::grid_mesh(32, 32),
                  symref::circuits::grid_mesh_spec(32, 32), 128});

  symref::support::TextTable table;
  table.set_header(
      {"circuit", "dim", "supernodes", "scalar [samp/s]", "batched [samp/s]", "speedup"});
  for (Row& row : rows) {
    const auto canonical = symref::netlist::canonicalize(row.circuit);
    const symref::mna::NodalSystem system(canonical);
    const symref::mna::CofactorEvaluator evaluator(system, row.spec);
    // Probe points on the upper unit semicircle (the engine's scaled domain);
    // all circuits here use R=1k/C=1n, so 1/(RC) re-centres s*C against G.
    const double f_scale = 1e6;
    std::vector<std::complex<double>> points(static_cast<std::size_t>(row.points));
    for (int k = 0; k < row.points; ++k) {
      const double theta = 3.141592653589793 * (k + 0.5) / row.points;
      points[static_cast<std::size_t>(k)] = {std::cos(theta), std::sin(theta)};
    }
    const double scalar = replay_samples_per_sec(evaluator, points, f_scale,
                                                 symref::sparse::ReplayKernel::kScalar);
    const double batched = replay_samples_per_sec(evaluator, points, f_scale,
                                                  symref::sparse::ReplayKernel::kBatched);
    const double speedup = scalar > 0.0 ? batched / scalar : 0.0;
    table.add_row({row.tag, std::to_string(system.dim()),
                   std::to_string(evaluator.supernode_count()),
                   symref::support::format_sci(scalar, 3), symref::support::format_sci(batched, 3),
                   symref::support::format_sci(speedup, 3)});
    const std::string prefix = std::string(row.tag) + "_";
    json_metrics[prefix + "scalar_samples_per_sec_per_core"] = scalar;
    json_metrics[prefix + "batched_samples_per_sec_per_core"] = batched;
    json_metrics[prefix + "batched_speedup"] = speedup;
  }
  std::printf("%s\n", table.str().c_str());
  // Headline metric: batched throughput on the ladder-1024 size axis.
  json_metrics["samples_per_sec_per_core"] =
      json_metrics["ladder1024_batched_samples_per_sec_per_core"];
}

void print_summary(const std::string& json_path, int max_threads, int max_stages) {
  std::map<std::string, double> json_metrics;
  std::printf("=== Ablation A4: adaptive reference generation vs ladder size ===\n\n");
  std::vector<int> sizes;
  for (int n = 4; n <= std::max(4, max_stages); n *= 2) sizes.push_back(n);
  symref::support::TextTable table;
  table.set_header({"n (order)", "iterations", "LU evaluations", "time [ms]", "complete"});
  for (const int n : sizes) {
    const auto ladder = symref::circuits::rc_ladder(n);
    const auto spec = symref::circuits::rc_ladder_spec(n);
    const auto result = symref::refgen::generate_reference(ladder, spec);
    table.add_row({
        std::to_string(n),
        std::to_string(result.iterations.size()),
        std::to_string(result.total_evaluations),
        symref::support::format_sci(result.seconds * 1e3, 3),
        result.complete ? "yes" : result.termination,
    });
    const std::string prefix = "ladder" + std::to_string(n) + "_refgen_";
    json_metrics[prefix + "ms"] = result.seconds * 1e3;
    json_metrics[prefix + "evaluations"] = result.total_evaluations;
  }
  std::printf("%s\n", table.str().c_str());

  // Per-interpolation-point kernel: assemble + factor/refactor + solve on
  // the µA741 matrix (the innermost repeated-evaluation hot path).
  {
    const auto ua = symref::circuits::ua741();
    const auto canonical = symref::netlist::canonicalize(ua);
    const symref::mna::NodalSystem system(canonical);
    const symref::mna::CofactorEvaluator evaluator(system,
                                                   symref::circuits::ua741_gain_spec());
    const std::complex<double> s(0.30901699437494745, 0.9510565162951535);
    constexpr int kWarmup = 50;
    constexpr int kSamples = 2000;
    for (int i = 0; i < kWarmup; ++i) {
      auto sample = evaluator.evaluate(s, 2.7e10, 283.0);
      benchmark::DoNotOptimize(sample.denominator);
    }
    symref::support::Timer timer;
    for (int i = 0; i < kSamples; ++i) {
      auto sample = evaluator.evaluate(s, 2.7e10, 283.0);
      benchmark::DoNotOptimize(sample.denominator);
    }
    const double micros = timer.seconds() * 1e6 / kSamples;
    std::printf("µA741 evaluate() kernel: %.2f us/point (%d samples)\n\n", micros, kSamples);
    json_metrics["ua741_evaluate_us"] = micros;
  }

  if (max_threads > 1) {
    // Largest ladder across the thread ladder: the per-iteration point
    // batches grow with n, so this is the best-scaling refgen workload.
    const int top = sizes.back();
    std::printf("--- ladder-%d reference generation, parallel ---\n", top);
    const auto ladder = symref::circuits::rc_ladder(top);
    const auto spec = symref::circuits::rc_ladder_spec(top);
    for (const int threads : thread_ladder(max_threads)) {
      symref::refgen::AdaptiveOptions options;
      options.threads = threads;
      symref::support::Timer timer;
      const auto result = symref::refgen::generate_reference(ladder, spec, options);
      const double ms = timer.millis();
      std::printf("threads=%2d: %8.2f ms (%d evaluations)\n", threads, ms,
                  result.total_evaluations);
      json_metrics["ladder" + std::to_string(top) + "_refgen_ms_t" + std::to_string(threads)] =
          ms;
    }
    std::printf("\n");
  }

  print_kernel_throughput(json_metrics);

  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
}

void BM_LadderReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto ladder = symref::circuits::rc_ladder(n);
  const auto spec = symref::circuits::rc_ladder_spec(n);
  for (auto _ : state) {
    auto result = symref::refgen::generate_reference(ladder, spec);
    benchmark::DoNotOptimize(result.total_evaluations);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LadderReference)->RangeMultiplier(2)->Range(4, 128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_Ua741SparseLuPerPoint(benchmark::State& state) {
  // The per-interpolation-point kernel: factor + solve on the 741 matrix.
  const auto ua = symref::circuits::ua741();
  const auto canonical = symref::netlist::canonicalize(ua);
  const symref::mna::NodalSystem system(canonical);
  const symref::mna::CofactorEvaluator evaluator(system,
                                                 symref::circuits::ua741_gain_spec());
  const std::complex<double> s(0.30901699437494745, 0.9510565162951535);
  for (auto _ : state) {
    auto sample = evaluator.evaluate(s, 2.7e10, 283.0);
    benchmark::DoNotOptimize(sample.denominator);
  }
}
BENCHMARK(BM_Ua741SparseLuPerPoint)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json", "threads", "max-stages"});
  print_summary(args.get("json", symref::support::kBenchJsonPath), args.get_int("threads", 1),
                args.get_int("max-stages", 128));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
