// Newton .op economics on the transistor-level µA741 deck: the cold bias
// solve (symbolic analysis + first factorization + the full homotopy) vs
// the plan-reused re-solve a parameter-sweep sample pays.
//
// The workload is the acceptance scenario: tools/data/ua741_npn.cir, a
// 24-junction bias problem whose every Newton iteration after the first
// replays ONE shared factorization plan. A re-solve on a warm OpSolver
// (what run_param_sweep's lanes do per sample) skips even that first
// factorization — the whole solve is rebind+refactor replays.
//
// Emitted rows (BENCH_refgen.json via --json <path>):
//   op_cold_solve_ms            fresh OpSolver: plan recorded + homotopy
//   op_replay_solve_ms          warm OpSolver: every iterate replays the plan
//   op_speedup_replay_vs_cold   ratio of the two
//   op_newton_iterations        cold-solve iteration count (homotopy total)
//   op_fresh_factorizations     plan probe (1 = one shared plan end to end)
//   op_compile_linearized_ms    api compile: bias + linearize + canonicalize
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "api/service.h"
#include "dc/newton.h"
#include "netlist/parser.h"
#include "support/bench_json.h"
#include "support/cli.h"
#include "support/timer.h"

namespace {

std::map<std::string, double> json_metrics;

const std::string& deck_text() {
  static const std::string text = [] {
    const std::string path =
        std::string(SYMREF_SOURCE_DIR) + "/tools/data/ua741_npn.cir";
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }();
  return text;
}

void measure() {
  using symref::support::Timer;

  const symref::netlist::Circuit deck = symref::netlist::parse_netlist(deck_text());
  if (!deck.has_devices()) {
    std::fprintf(stderr, "deck did not parse with devices\n");
    return;
  }

  std::printf("=== µA741 transistor-level .op (24 junctions) ===\n\n");

  // Cold: a fresh solver records the Jacobian plan on iteration one and
  // replays it for the rest of the homotopy. Best of a few runs to shake
  // out first-touch noise.
  double cold_ms = 1e300;
  symref::dc::OpResult cold;
  for (int rep = 0; rep < 5; ++rep) {
    symref::dc::OpSolver solver;
    Timer timer;
    cold = solver.solve(deck);
    const double ms = timer.millis();
    if (ms < cold_ms) cold_ms = ms;
  }

  // Replay: the same solver re-biases the same pattern — what every
  // parameter-sweep sample costs after the baseline solve.
  symref::dc::OpSolver warm;
  (void)warm.solve(deck);
  double replay_ms = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    Timer timer;
    const symref::dc::OpResult again = warm.solve(deck);
    const double ms = timer.millis();
    if (ms < replay_ms) replay_ms = ms;
    if (again.fresh_factorizations != 0) {
      std::fprintf(stderr, "warm re-solve took a fresh factorization\n");
    }
  }

  std::printf("cold solve (plan recorded):   %8.3f ms  (%d Newton iterations, "
              "%llu fresh factorization%s)\n",
              cold_ms, cold.newton_iterations,
              static_cast<unsigned long long>(cold.fresh_factorizations),
              cold.fresh_factorizations == 1 ? "" : "s");
  std::printf("replayed re-solve (warm plan): %8.3f ms\n", replay_ms);
  std::printf("replay vs cold:                %8.2fx\n\n", cold_ms / replay_ms);

  json_metrics["op_cold_solve_ms"] = cold_ms;
  json_metrics["op_replay_solve_ms"] = replay_ms;
  json_metrics["op_speedup_replay_vs_cold"] = cold_ms / replay_ms;
  json_metrics["op_newton_iterations"] = static_cast<double>(cold.newton_iterations);
  json_metrics["op_fresh_factorizations"] =
      static_cast<double>(cold.fresh_factorizations);

  // The api-level cost a caller actually pays: compile = parse + bias +
  // linearize + canonicalize + nodal system, after which every AC-family
  // request runs on the small-signal circuit.
  const symref::api::Service service;
  Timer compile_timer;
  const auto handle = service.compile_netlist(deck_text());
  const double compile_ms = compile_timer.millis();
  if (!handle.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", handle.status().to_string().c_str());
    return;
  }
  std::printf("api compile (bias + linearized AC ready): %8.3f ms\n\n", compile_ms);
  json_metrics["op_compile_linearized_ms"] = compile_ms;
}

void BM_OpColdSolve(benchmark::State& state) {
  const symref::netlist::Circuit deck = symref::netlist::parse_netlist(deck_text());
  for (auto _ : state) {
    symref::dc::OpSolver solver;
    const symref::dc::OpResult op = solver.solve(deck);
    benchmark::DoNotOptimize(op.newton_iterations);
  }
}
BENCHMARK(BM_OpColdSolve)->Unit(benchmark::kMillisecond);

void BM_OpReplaySolve(benchmark::State& state) {
  const symref::netlist::Circuit deck = symref::netlist::parse_netlist(deck_text());
  symref::dc::OpSolver solver;
  (void)solver.solve(deck);
  for (auto _ : state) {
    const symref::dc::OpResult op = solver.solve(deck);
    benchmark::DoNotOptimize(op.newton_iterations);
  }
}
BENCHMARK(BM_OpReplaySolve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"json"});
  const std::string json_path = args.get("json", symref::support::kBenchJsonPath);
  measure();
  if (!symref::support::merge_bench_json(json_path, json_metrics)) {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  } else {
    std::printf("metrics merged into %s\n\n", json_path.c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
