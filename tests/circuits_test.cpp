// Benchmark-circuit sanity: every builder must produce a well-posed circuit
// whose reference generation completes and matches AC analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/filters.h"
#include "circuits/ladder.h"
#include "circuits/mos_ota.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "mna/ac.h"
#include "refgen/adaptive.h"
#include "refgen/validate.h"

namespace symref::circuits {
namespace {

TEST(Circuits, OtaFig1HasNinePaperCapacitors) {
  const auto ota = ota_fig1();
  EXPECT_EQ(ota.count(netlist::ElementKind::Capacitor),
            static_cast<std::size_t>(kOtaFig1OrderEstimate));
  EXPECT_EQ(ota.count(netlist::ElementKind::Vccs), 3u);  // gm1, gmf, gm2
}

TEST(Circuits, Ua741Options) {
  Ua741Options lean;
  lean.base_resistance = false;
  lean.substrate_caps = false;
  lean.load_capacitance = 0.0;
  const auto compact = ua741(lean);
  const auto full = ua741();
  EXPECT_LT(compact.unknown_count(), full.unknown_count());
  EXPECT_LT(compact.count(netlist::ElementKind::Capacitor),
            full.count(netlist::ElementKind::Capacitor));
  // Both must still produce the classic response.
  const mna::AcSimulator sim(compact);
  EXPECT_GT(mna::magnitude_db(sim.transfer(ua741_gain_spec(), 1.0)), 80.0);
}

TEST(Circuits, TwoStageMillerOtaBehaves) {
  const auto ota = two_stage_miller_ota();
  const auto spec = two_stage_miller_ota_spec();
  const mna::AcSimulator sim(ota);
  const double dc = mna::magnitude_db(sim.transfer(spec, 1.0));
  EXPECT_GT(dc, 40.0);  // two intrinsic-gain stages
  // Single dominant pole: gain drops ~20 dB/decade after the corner.
  const double g1k = mna::magnitude_db(sim.transfer(spec, 1e3));
  const double g10k = mna::magnitude_db(sim.transfer(spec, 1e4));
  if (g1k < dc - 5.0) {
    EXPECT_NEAR(g1k - g10k, 20.0, 6.0);
  }
}

TEST(Circuits, TwoStageMillerOtaReference) {
  const auto ota = two_stage_miller_ota();
  const auto spec = two_stage_miller_ota_spec();
  const auto result = refgen::generate_reference(ota, spec);
  ASSERT_TRUE(result.complete) << result.termination;
  const auto bode = refgen::compare_bode(result.reference, ota, spec, 1.0, 1e9, 3);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-4);
}

TEST(Circuits, MillerNullingResistorAddsNode) {
  MosOtaOptions with_rz;
  with_rz.nulling_resistance = 5e3;
  const auto rz = two_stage_miller_ota(with_rz);
  const auto plain = two_stage_miller_ota();
  EXPECT_EQ(rz.unknown_count(), plain.unknown_count() + 1);
  EXPECT_NE(rz.find_element("rz"), nullptr);
  // The reference pipeline still completes with the extra RHP-zero control.
  const auto result = refgen::generate_reference(rz, two_stage_miller_ota_spec());
  EXPECT_TRUE(result.complete) << result.termination;
}

TEST(Circuits, FoldedCascodeOtaBehaves) {
  const auto ota = folded_cascode_ota();
  const auto spec = folded_cascode_ota_spec();
  const mna::AcSimulator sim(ota);
  const double dc = mna::magnitude_db(sim.transfer(spec, 1.0));
  EXPECT_GT(dc, 40.0);  // cascoded output: high single-stage gain
  const auto result = refgen::generate_reference(ota, spec);
  ASSERT_TRUE(result.complete) << result.termination;
  const auto bode = refgen::compare_bode(result.reference, ota, spec, 1.0, 1e9, 3);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-4);
}

TEST(Circuits, GmCChainStageCount) {
  const auto chain = gm_c_chain(5);
  EXPECT_EQ(chain.count(netlist::ElementKind::Capacitor), 5u);
  EXPECT_EQ(chain.count(netlist::ElementKind::Vccs), 5u);
  EXPECT_THROW(gm_c_chain(0), std::invalid_argument);
}

TEST(Circuits, RandomRcIsConnectedAndGrounded) {
  support::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const auto c = random_rc(rng);
    // Every random net must be solvable at DC (spanning-tree resistors).
    const mna::AcSimulator sim(c);
    const auto spec = mna::TransferSpec::transimpedance("n1", "n1");
    const auto z = sim.transfer(spec, 1.0);
    EXPECT_TRUE(std::isfinite(z.real())) << trial;
    EXPECT_GT(std::abs(z), 0.0) << trial;
  }
}

TEST(Circuits, LadderValidation) {
  EXPECT_THROW(rc_ladder(0), std::invalid_argument);
  const auto ladder = rc_ladder(3, 2e3, 4e-12);
  EXPECT_DOUBLE_EQ(ladder.find_element("r2")->value, 2e3);
  EXPECT_DOUBLE_EQ(ladder.find_element("c3")->value, 4e-12);
}

}  // namespace
}  // namespace symref::circuits
