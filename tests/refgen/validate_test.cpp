// Bode comparison utilities (Fig. 2 machinery).
#include "refgen/validate.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "refgen/adaptive.h"

namespace symref::refgen {
namespace {

TEST(Validate, LadderBodeMatches) {
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const auto spec = circuits::rc_ladder_spec(4);
  const AdaptiveResult result = generate_reference(ladder, spec);
  ASSERT_TRUE(result.complete);
  const BodeComparison cmp = compare_bode(result.reference, ladder, spec, 1e2, 1e8, 5);
  ASSERT_GT(cmp.points.size(), 10u);
  EXPECT_LT(cmp.max_magnitude_error_db, 1e-8);
  EXPECT_LT(cmp.max_phase_error_deg, 1e-6);
  // Sanity of the data itself: DC gain ~0 dB, high-frequency rolloff.
  EXPECT_NEAR(cmp.points.front().simulated_db, 0.0, 0.1);
  EXPECT_LT(cmp.points.back().simulated_db, -60.0);
}

TEST(Validate, DetectsDeliberateCorruption) {
  const netlist::Circuit ladder = circuits::rc_ladder(3);
  const auto spec = circuits::rc_ladder_spec(3);
  AdaptiveResult result = generate_reference(ladder, spec);
  ASSERT_TRUE(result.complete);
  // Corrupt one coefficient by 10%: the comparison must light up.
  auto& c1 = result.reference.denominator().at(1);
  c1.value = c1.value * numeric::ScaledDouble(1.1);
  const BodeComparison cmp = compare_bode(result.reference, ladder, spec, 1e2, 1e8, 5);
  EXPECT_GT(cmp.max_magnitude_error_db, 0.1);
}

TEST(Validate, RelativeTransferErrorSmallEverywhere) {
  const netlist::Circuit ladder = circuits::rc_ladder(5);
  const auto spec = circuits::rc_ladder_spec(5);
  const AdaptiveResult result = generate_reference(ladder, spec);
  ASSERT_TRUE(result.complete);
  for (const double w : {1e3, 1e5, 1e7, 1e9}) {
    EXPECT_LT(relative_transfer_error(result.reference, ladder, spec, {0.0, w}), 1e-7)
        << w;
    EXPECT_LT(relative_transfer_error(result.reference, ladder, spec, {-w, w}), 1e-7)
        << w;
  }
}

TEST(Validate, PhaseComparisonHandlesWrapOffsets) {
  // Construct two identical references; phase error must be ~0 even where
  // the absolute phase passes through +/-180.
  const netlist::Circuit ladder = circuits::rc_ladder(6);
  const auto spec = circuits::rc_ladder_spec(6);
  const AdaptiveResult result = generate_reference(ladder, spec);
  ASSERT_TRUE(result.complete);
  const BodeComparison cmp = compare_bode(result.reference, ladder, spec, 1e2, 1e9, 4);
  EXPECT_LT(cmp.max_phase_error_deg, 1e-5);
}

}  // namespace
}  // namespace symref::refgen
