// The adaptive scaling engine — the paper's core algorithm.
#include "refgen/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/filters.h"
#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "refgen/validate.h"
#include "symbolic/det.h"

namespace symref::refgen {
namespace {

using numeric::ScaledDouble;

/// Exact symbolic oracle: denominator coefficients of the transimpedance of
/// a small canonical circuit (D = full determinant).
numeric::Polynomial<ScaledDouble> oracle_determinant(const netlist::Circuit& canonical) {
  const symbolic::SymbolicNodalMatrix matrix(canonical);
  return symbolic_determinant(matrix).coefficients(matrix.symbols());
}

TEST(Adaptive, LadderCoefficientsMatchSymbolicOracle) {
  for (const int n : {2, 3, 5, 7}) {
    const netlist::Circuit ladder = circuits::rc_ladder(n);
    const netlist::Circuit canonical = netlist::canonicalize(ladder);
    const auto spec =
        mna::TransferSpec::transimpedance("in", "n" + std::to_string(n));
    const AdaptiveResult result = generate_reference(ladder, spec);
    ASSERT_TRUE(result.complete) << "n=" << n << " " << result.termination;

    const auto oracle = oracle_determinant(canonical);
    const auto& den = result.reference.denominator();
    ASSERT_EQ(den.order_bound(), n) << n;
    for (int i = 0; i <= n; ++i) {
      EXPECT_LT(numeric::relative_difference(den.at(i).value,
                                             oracle.coeff(static_cast<std::size_t>(i))),
                1e-6)
          << "n=" << n << " coeff " << i;
    }
  }
}

TEST(Adaptive, OtaAgainstSymbolicOracle) {
  const netlist::Circuit ota = circuits::ota_fig1();
  const netlist::Circuit canonical = netlist::canonicalize(ota);
  const symbolic::SymbolicNodalMatrix matrix(canonical);
  const auto transfer = symbolic_transfer(matrix, circuits::ota_fig1_gain_spec());
  const auto num_oracle = transfer.numerator.coefficients(matrix.symbols());
  const auto den_oracle = transfer.denominator.coefficients(matrix.symbols());

  const AdaptiveResult result =
      generate_reference(ota, circuits::ota_fig1_gain_spec());
  ASSERT_TRUE(result.complete) << result.termination;

  for (int i = 0; i <= result.reference.denominator().order_bound(); ++i) {
    const auto& c = result.reference.denominator().at(i);
    const ScaledDouble expected = den_oracle.coeff(static_cast<std::size_t>(i));
    if (c.status == CoefficientStatus::ZeroTail) {
      // Declared negligible: the oracle value must indeed be ~0 relative to
      // the largest coefficient's scale at any observable window.
      if (!expected.is_zero() && !den_oracle.coeff(0).is_zero()) {
        // allow structurally-zero or deeply negligible
        EXPECT_LT(expected.abs().log10_abs() - den_oracle.coeff(0).abs().log10_abs(),
                  200.0);
      }
      continue;
    }
    EXPECT_LT(numeric::relative_difference(c.value, expected), 1e-5) << "den " << i;
  }
  for (int i = 0; i <= result.reference.numerator().order_bound(); ++i) {
    const auto& c = result.reference.numerator().at(i);
    if (c.status != CoefficientStatus::Interpolated) continue;
    EXPECT_LT(numeric::relative_difference(c.value,
                                           num_oracle.coeff(static_cast<std::size_t>(i))),
              1e-5)
        << "num " << i;
  }
}

TEST(Adaptive, InitialScaleHeuristicIsInverseMean) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3, 2e3, 5e-12));
  const mna::NodalSystem system(ladder);
  const AdaptiveScalingEngine engine(system, circuits::rc_ladder_spec(3));
  const auto [f, g] = engine.initial_scales();
  EXPECT_NEAR(f, 1.0 / 5e-12, 1e-3 / 5e-12);
  EXPECT_NEAR(g, 2e3 / 1.0, 1.0);  // mean conductance = 1/2k -> g = 2k
}

TEST(Adaptive, InitialScaleOverrides) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const mna::NodalSystem system(ladder);
  AdaptiveOptions options;
  options.initial_f = 123.0;
  options.initial_g = 7.0;
  const AdaptiveScalingEngine engine(system, circuits::rc_ladder_spec(3), options);
  const auto [f, g] = engine.initial_scales();
  EXPECT_DOUBLE_EQ(f, 123.0);
  EXPECT_DOUBLE_EQ(g, 7.0);
}

TEST(Adaptive, Ua741CompletesWithPaperLikeSchedule) {
  const netlist::Circuit ua = circuits::ua741();
  const AdaptiveResult result = generate_reference(ua, circuits::ua741_gain_spec());
  ASSERT_TRUE(result.complete) << result.termination;

  // Shape of the paper's Table 2/3 story: several interpolations, each
  // exposing a contiguous region; the denominator needs >= 3 productive ones.
  int productive = 0;
  for (const auto& it : result.iterations) {
    if (it.den_new_coefficients > 0) ++productive;
  }
  EXPECT_GE(productive, 3);
  EXPECT_LE(static_cast<int>(result.iterations.size()), 20);

  // §3.3: deflation must shrink the interpolation point count as the
  // low-order run completes.
  int min_points = result.iterations.front().points;
  for (const auto& it : result.iterations) min_points = std::min(min_points, it.points);
  EXPECT_LT(min_points, result.iterations.front().points / 2);

  // Overlap re-computations agreed.
  for (const auto& it : result.iterations) {
    if (it.max_overlap_mismatch > 0.0) EXPECT_LT(it.max_overlap_mismatch, 1e-3);
  }

  // The reference reproduces the simulator's Bode plot (Fig. 2).
  const BodeComparison bode =
      compare_bode(result.reference, ua, circuits::ua741_gain_spec(), 1.0, 100e6, 3);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-3);
  EXPECT_LT(bode.max_phase_error_deg, 1e-2);
}

TEST(Adaptive, Ua741CoefficientSpreadIsPaperLike) {
  // The whole point of the paper: consecutive denominator coefficients are
  // 1e6-1e12 apart and span hundreds of decades in total.
  const netlist::Circuit ua = circuits::ua741();
  const AdaptiveResult result = generate_reference(ua, circuits::ua741_gain_spec());
  ASSERT_TRUE(result.complete);
  const auto& den = result.reference.denominator();
  const int top = den.effective_order();
  ASSERT_GE(top, 30);
  const double total_span =
      den.at(0).value.log10_abs() - den.at(top).value.log10_abs();
  EXPECT_GT(std::fabs(total_span), 200.0);
}

TEST(Adaptive, DeflationOffStillCompletes) {
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions options;
  options.use_deflation = false;
  const AdaptiveResult result =
      generate_reference(ua, circuits::ua741_gain_spec(), options);
  ASSERT_TRUE(result.complete) << result.termination;
  // Without eq. (17) every iteration pays the full point count (modulo the
  // +1..+3 near-pole retries).
  const int base = result.iterations.front().points;
  for (const auto& it : result.iterations) {
    EXPECT_GE(it.points, base - 3);
    EXPECT_LE(it.points, base + 3);
    EXPECT_FALSE(it.deflated);
  }
}

TEST(Adaptive, DeflationOnAndOffAgree) {
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions off;
  off.use_deflation = false;
  const AdaptiveResult with_deflation =
      generate_reference(ua, circuits::ua741_gain_spec());
  const AdaptiveResult without =
      generate_reference(ua, circuits::ua741_gain_spec(), off);
  ASSERT_TRUE(with_deflation.complete);
  ASSERT_TRUE(without.complete);
  const auto& a = with_deflation.reference.denominator();
  const auto& b = without.reference.denominator();
  for (int i = 0; i <= std::min(a.order_bound(), b.order_bound()); ++i) {
    if (a.at(i).status != CoefficientStatus::Interpolated) continue;
    if (b.at(i).status != CoefficientStatus::Interpolated) continue;
    EXPECT_LT(numeric::relative_difference(a.at(i).value, b.at(i).value), 1e-4) << i;
  }
}

TEST(Adaptive, SingleFactorScalingInflatesScaleFactors) {
  // §3.2: without simultaneous f/g scaling the factors blow past ~1e18.
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions single;
  single.simultaneous_scaling = false;
  const AdaptiveResult result =
      generate_reference(ua, circuits::ua741_gain_spec(), single);
  double max_factor = 0.0;
  for (const auto& it : result.iterations) {
    max_factor = std::max({max_factor, it.f_scale, 1.0 / it.g_scale});
  }
  const AdaptiveResult simultaneous = generate_reference(ua, circuits::ua741_gain_spec());
  double max_factor_sim = 0.0;
  for (const auto& it : simultaneous.iterations) {
    max_factor_sim = std::max({max_factor_sim, it.f_scale, 1.0 / it.g_scale});
  }
  EXPECT_GT(max_factor, max_factor_sim);
}

TEST(Adaptive, ZeroTailDetectedOnOverestimatedOrder) {
  // The OTA's capacitor-element estimate (9) far exceeds the true order;
  // the engine must complete by declaring the impossible coefficients zero
  // rather than hunting forever.
  const netlist::Circuit ota = circuits::ota_fig1();
  const AdaptiveResult result =
      generate_reference(ota, circuits::ota_fig1_gain_spec());
  ASSERT_TRUE(result.complete);
  EXPECT_LT(result.reference.denominator().effective_order(),
            circuits::kOtaFig1OrderEstimate);
}

TEST(Adaptive, GmCChainWideSpread) {
  // Element values spread over 6 decades force several regions.
  const netlist::Circuit chain = circuits::gm_c_chain(10, 6.0);
  const auto spec = circuits::gm_c_chain_spec(10);
  const AdaptiveResult result = generate_reference(chain, spec);
  ASSERT_TRUE(result.complete) << result.termination;
  const BodeComparison bode = compare_bode(result.reference, chain, spec, 1e3, 1e9, 3);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-3);
}

TEST(Adaptive, GeometricMeanHeuristicAlsoWorks) {
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions options;
  options.geometric_mean_heuristic = true;
  const AdaptiveResult result =
      generate_reference(ua, circuits::ua741_gain_spec(), options);
  EXPECT_TRUE(result.complete) << result.termination;
}


TEST(Adaptive, ConjugateSymmetryOffStillCompletes) {
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions options;
  options.conjugate_symmetry = false;
  const AdaptiveResult result =
      generate_reference(ua, circuits::ua741_gain_spec(), options);
  ASSERT_TRUE(result.complete) << result.termination;
  // Without the halving, roughly twice the evaluations per iteration.
  const AdaptiveResult halved = generate_reference(ua, circuits::ua741_gain_spec());
  EXPECT_GT(result.total_evaluations, halved.total_evaluations * 3 / 2);
  // Coefficients agree across the two evaluation schedules.
  const auto& a = result.reference.denominator();
  const auto& b = halved.reference.denominator();
  for (int i = 0; i <= std::min(a.order_bound(), b.order_bound()); ++i) {
    if (a.at(i).status != CoefficientStatus::Interpolated) continue;
    if (b.at(i).status != CoefficientStatus::Interpolated) continue;
    EXPECT_LT(numeric::relative_difference(a.at(i).value, b.at(i).value), 1e-4) << i;
  }
}

TEST(Adaptive, NoiseDecadesOptionNarrowsWindows) {
  // Pretending the arithmetic has only 10 clean digits narrows every
  // validity window; completion must survive with more iterations.
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions conservative;
  conservative.noise_decades = 10.0;
  const AdaptiveResult result =
      generate_reference(ua, circuits::ua741_gain_spec(), conservative);
  ASSERT_TRUE(result.complete) << result.termination;
  const AdaptiveResult standard = generate_reference(ua, circuits::ua741_gain_spec());
  int widest_conservative = 0;
  for (const auto& it : result.iterations) {
    widest_conservative = std::max(widest_conservative, it.den_region.width());
  }
  int widest_standard = 0;
  for (const auto& it : standard.iterations) {
    widest_standard = std::max(widest_standard, it.den_region.width());
  }
  EXPECT_LT(widest_conservative, widest_standard);
}

TEST(Adaptive, RecordsCarryProvenance) {
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const AdaptiveResult result = generate_reference(ladder, circuits::rc_ladder_spec(4));
  ASSERT_TRUE(result.complete);
  const auto& den = result.reference.denominator();
  for (int i = 0; i <= den.order_bound(); ++i) {
    const auto& c = den.at(i);
    if (c.status != CoefficientStatus::Interpolated) continue;
    ASSERT_GE(c.iteration, 0) << i;
    ASSERT_LT(c.iteration, static_cast<int>(result.iterations.size())) << i;
    // The producing iteration's region must cover this index (in residual
    // space) and the accuracy estimate must be a sane relative error.
    EXPECT_GT(c.relative_accuracy, 0.0) << i;
    EXPECT_LE(c.relative_accuracy, 1.0) << i;
    const auto& record = result.iterations[static_cast<std::size_t>(c.iteration)];
    EXPECT_TRUE(record.den_region.contains(i - record.den_shift)) << i;
  }
  EXPECT_EQ(result.denominator_degree, 5 - 1);  // dim(in,n1..n4) - 1
}

// Tuning factor sweep (eq. (14) r parameter): the engine must complete for
// a band of r values around 0; larger |r| changes the iteration count.
class TuningFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(TuningFactorSweep, Ua741CompletesForTuningFactor) {
  const netlist::Circuit ua = circuits::ua741();
  AdaptiveOptions options;
  options.tuning_r = GetParam();
  const AdaptiveResult result =
      generate_reference(ua, circuits::ua741_gain_spec(), options);
  EXPECT_TRUE(result.complete) << "r=" << GetParam() << " " << result.termination;
}

INSTANTIATE_TEST_SUITE_P(TuningR, TuningFactorSweep,
                         ::testing::Values(-4.0, -2.0, -1.0, 0.0, 1.0, 2.0));

// Ladder-size sweep: exact completion and correct effective order for
// every n (property-style check of the whole pipeline).
class LadderSweep : public ::testing::TestWithParam<int> {};

TEST_P(LadderSweep, CompletesWithExactOrder) {
  const int n = GetParam();
  const netlist::Circuit ladder = circuits::rc_ladder(n);
  const auto spec = circuits::rc_ladder_spec(n);
  const AdaptiveResult result = generate_reference(ladder, spec);
  ASSERT_TRUE(result.complete) << result.termination;
  EXPECT_EQ(result.reference.denominator().effective_order(), n);
  // Validation against the simulator at an arbitrary complex point.
  const double err = relative_transfer_error(result.reference, ladder, spec,
                                             {1e4, 2.0 * M_PI * 3e5});
  EXPECT_LT(err, 1e-6) << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LadderSweep, ::testing::Values(1, 2, 4, 6, 10, 16, 25));

}  // namespace
}  // namespace symref::refgen
