// Reference serialization round-trips.
#include "refgen/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "refgen/adaptive.h"

namespace symref::refgen {
namespace {

void expect_equal_references(const NumericalReference& a, const NumericalReference& b) {
  ASSERT_EQ(a.numerator().order_bound(), b.numerator().order_bound());
  ASSERT_EQ(a.denominator().order_bound(), b.denominator().order_bound());
  for (int i = 0; i <= a.denominator().order_bound(); ++i) {
    const Coefficient& ca = a.denominator().at(i);
    const Coefficient& cb = b.denominator().at(i);
    EXPECT_EQ(ca.value, cb.value) << i;  // bit-exact via %a round-trip
    EXPECT_EQ(ca.status, cb.status) << i;
    EXPECT_DOUBLE_EQ(ca.relative_accuracy, cb.relative_accuracy) << i;
  }
  for (int i = 0; i <= a.numerator().order_bound(); ++i) {
    EXPECT_EQ(a.numerator().at(i).value, b.numerator().at(i).value) << i;
  }
}

TEST(ReferenceIo, LadderRoundTripBitExact) {
  const auto ladder = circuits::rc_ladder(4);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(4));
  ASSERT_TRUE(result.complete);
  const std::string text = write_reference(result.reference);
  const NumericalReference back = read_reference(text);
  expect_equal_references(result.reference, back);
}

TEST(ReferenceIo, Ua741RoundTripWithExtendedRange) {
  // Coefficients far below double range must survive the text round-trip.
  const auto ua = circuits::ua741();
  const auto result = generate_reference(ua, circuits::ua741_gain_spec());
  ASSERT_TRUE(result.complete);
  const std::string text = write_reference(result.reference);
  const NumericalReference back = read_reference(text);
  expect_equal_references(result.reference, back);
  // Spot check an extreme exponent really made it through.
  const int top = result.reference.denominator().effective_order();
  EXPECT_LT(back.denominator().at(top).value.log10_abs(), -300.0);
}

TEST(ReferenceIo, HeaderValidation) {
  EXPECT_THROW(read_reference(std::string("bogus v1\n")), std::runtime_error);
  EXPECT_THROW(read_reference(std::string("symref-reference v2\n")), std::runtime_error);
  EXPECT_THROW(read_reference(std::string("")), std::runtime_error);
}

TEST(ReferenceIo, TruncatedInputRejected) {
  const auto ladder = circuits::rc_ladder(2);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(2));
  std::string text = write_reference(result.reference);
  text.resize(text.size() / 2);
  EXPECT_THROW(read_reference(text), std::runtime_error);
}

TEST(ReferenceIo, MissingEndRejected) {
  const auto ladder = circuits::rc_ladder(2);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(2));
  std::string text = write_reference(result.reference);
  const auto pos = text.rfind("end");
  text.erase(pos);
  EXPECT_THROW(read_reference(text), std::runtime_error);
}

TEST(ReferenceIo, StatusTokensPreserved) {
  // The ladder numerator has zero-tail entries; they must survive as 'zero'.
  const auto ladder = circuits::rc_ladder(3);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(3));
  const NumericalReference back = read_reference(write_reference(result.reference));
  bool saw_zero_tail = false;
  for (int i = 0; i <= back.numerator().order_bound(); ++i) {
    if (back.numerator().at(i).status == CoefficientStatus::ZeroTail) saw_zero_tail = true;
  }
  EXPECT_TRUE(saw_zero_tail);
}

}  // namespace
}  // namespace symref::refgen
