// Reference serialization round-trips.
#include "refgen/io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "refgen/adaptive.h"

namespace symref::refgen {
namespace {

void expect_equal_references(const NumericalReference& a, const NumericalReference& b) {
  ASSERT_EQ(a.numerator().order_bound(), b.numerator().order_bound());
  ASSERT_EQ(a.denominator().order_bound(), b.denominator().order_bound());
  for (int i = 0; i <= a.denominator().order_bound(); ++i) {
    const Coefficient& ca = a.denominator().at(i);
    const Coefficient& cb = b.denominator().at(i);
    EXPECT_EQ(ca.value, cb.value) << i;  // bit-exact via %a round-trip
    EXPECT_EQ(ca.status, cb.status) << i;
    EXPECT_DOUBLE_EQ(ca.relative_accuracy, cb.relative_accuracy) << i;
  }
  for (int i = 0; i <= a.numerator().order_bound(); ++i) {
    EXPECT_EQ(a.numerator().at(i).value, b.numerator().at(i).value) << i;
  }
}

TEST(ReferenceIo, LadderRoundTripBitExact) {
  const auto ladder = circuits::rc_ladder(4);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(4));
  ASSERT_TRUE(result.complete);
  const std::string text = write_reference(result.reference);
  const NumericalReference back = read_reference(text);
  expect_equal_references(result.reference, back);
}

TEST(ReferenceIo, Ua741RoundTripWithExtendedRange) {
  // Coefficients far below double range must survive the text round-trip.
  const auto ua = circuits::ua741();
  const auto result = generate_reference(ua, circuits::ua741_gain_spec());
  ASSERT_TRUE(result.complete);
  const std::string text = write_reference(result.reference);
  const NumericalReference back = read_reference(text);
  expect_equal_references(result.reference, back);
  // Spot check an extreme exponent really made it through.
  const int top = result.reference.denominator().effective_order();
  EXPECT_LT(back.denominator().at(top).value.log10_abs(), -300.0);
}

TEST(ReferenceIo, HeaderValidation) {
  EXPECT_THROW(read_reference(std::string("bogus v2\n")), std::runtime_error);
  EXPECT_THROW(read_reference(std::string("symref-reference v3\n")), std::runtime_error);
  EXPECT_THROW(read_reference(std::string("")), std::runtime_error);
}

TEST(ReferenceIo, LegacyV1DecimalAccuracyAccepted) {
  // v1 wrote the accuracy as %.17g; the v2 reader must still parse it.
  const std::string v1 =
      "symref-reference v1\n"
      "numerator 0\n0 0x1p+0 0 interpolated 1.25e-07\n"
      "denominator 0\n0 0x1p+0 0 interpolated 1\nend\n";
  const NumericalReference back = read_reference(v1);
  EXPECT_DOUBLE_EQ(back.numerator().at(0).relative_accuracy, 1.25e-07);
}

TEST(ReferenceIo, TruncatedInputRejected) {
  const auto ladder = circuits::rc_ladder(2);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(2));
  std::string text = write_reference(result.reference);
  text.resize(text.size() / 2);
  EXPECT_THROW(read_reference(text), std::runtime_error);
}

TEST(ReferenceIo, MissingEndRejected) {
  const auto ladder = circuits::rc_ladder(2);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(2));
  std::string text = write_reference(result.reference);
  const auto pos = text.rfind("end");
  text.erase(pos);
  EXPECT_THROW(read_reference(text), std::runtime_error);
}

TEST(ReferenceIo, EdgeCaseDoublesRoundTripBitExact) {
  // Values whose mantissa/exponent or accuracy sit at the edges of IEEE
  // double: far outside double range (to_double saturates), subnormal
  // accuracies, and inf/nan accuracies. All must survive the hex-float
  // (%a) round-trip bit-for-bit.
  PolynomialReference num(4);
  num.at(0).value = numeric::ScaledDouble::from_mantissa_exp(1.5, 1'000'000);
  num.at(0).status = CoefficientStatus::Interpolated;
  num.at(0).relative_accuracy = 5e-324;  // smallest subnormal double
  num.at(1).value = numeric::ScaledDouble::from_mantissa_exp(-1.9999999999999998, -999'999);
  num.at(1).status = CoefficientStatus::Interpolated;
  num.at(1).relative_accuracy = std::numeric_limits<double>::infinity();
  num.at(2).value = numeric::ScaledDouble(0.0);
  num.at(2).status = CoefficientStatus::ZeroTail;
  num.at(2).relative_accuracy = std::numeric_limits<double>::quiet_NaN();
  num.at(3).value = numeric::ScaledDouble(std::numeric_limits<double>::denorm_min());
  num.at(3).status = CoefficientStatus::Interpolated;
  num.at(3).relative_accuracy = 0x1.fffffffffffffp-1022;  // largest subnormal tier
  // Index 4 stays Unknown.
  PolynomialReference den(0);
  den.at(0).value = numeric::ScaledDouble(-std::numeric_limits<double>::max());
  den.at(0).status = CoefficientStatus::Interpolated;

  const NumericalReference reference(num, den);
  const NumericalReference back = read_reference(write_reference(reference));
  for (int i = 0; i <= 4; ++i) {
    EXPECT_EQ(back.numerator().at(i).value, reference.numerator().at(i).value) << i;
    EXPECT_EQ(back.numerator().at(i).status, reference.numerator().at(i).status) << i;
  }
  EXPECT_EQ(back.numerator().at(0).relative_accuracy, 5e-324);
  EXPECT_TRUE(std::isinf(back.numerator().at(1).relative_accuracy));
  EXPECT_TRUE(std::isnan(back.numerator().at(2).relative_accuracy));
  EXPECT_EQ(back.numerator().at(3).relative_accuracy, 0x1.fffffffffffffp-1022);
  EXPECT_EQ(back.denominator().at(0).value, reference.denominator().at(0).value);
}

TEST(ReferenceIo, EveryTruncationPrefixRejected) {
  const auto ladder = circuits::rc_ladder(2);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(2));
  const std::string text = write_reference(result.reference);
  // Cut after every line boundary: no prefix may parse (the format ends
  // with an explicit 'end' marker precisely so truncation is detectable).
  for (std::size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    if (pos + 1 == text.size()) break;  // the full document parses
    EXPECT_THROW(read_reference(text.substr(0, pos + 1)), std::runtime_error) << pos;
  }
}

TEST(ReferenceIo, CorruptTokensRejected) {
  const auto make = [](const char* coefficient_line) {
    return std::string("symref-reference v1\nnumerator 0\n") + coefficient_line +
           "denominator 0\n0 0x1p+0 0 interpolated 0x1p-20\nend\n";
  };
  // Baseline sanity: a well-formed document parses.
  EXPECT_NO_THROW(read_reference(make("0 0x1p+0 0 interpolated 0x1p-20\n")));
  // Non-finite mantissa (a ScaledDouble mantissa is finite by invariant).
  EXPECT_THROW(read_reference(make("0 inf 0 interpolated 0x1p-20\n")), std::runtime_error);
  EXPECT_THROW(read_reference(make("0 nan 0 interpolated 0x1p-20\n")), std::runtime_error);
  // Garbage tokens.
  EXPECT_THROW(read_reference(make("0 xyz 0 interpolated 0x1p-20\n")), std::runtime_error);
  EXPECT_THROW(read_reference(make("0 0x1p+0 huge interpolated 0x1p-20\n")),
               std::runtime_error);
  EXPECT_THROW(read_reference(make("0 0x1p+0 0 sideways 0x1p-20\n")), std::runtime_error);
  EXPECT_THROW(read_reference(make("0 0x1p+0 0 interpolated junk\n")), std::runtime_error);
  // Wrong coefficient index.
  EXPECT_THROW(read_reference(make("7 0x1p+0 0 interpolated 0x1p-20\n")),
               std::runtime_error);
  // Implausible order bound must be rejected before any allocation.
  EXPECT_THROW(read_reference(std::string("symref-reference v1\nnumerator 2000000000\n")),
               std::runtime_error);
}

TEST(ReferenceIo, StatusTokensPreserved) {
  // The ladder numerator has zero-tail entries; they must survive as 'zero'.
  const auto ladder = circuits::rc_ladder(3);
  const auto result = generate_reference(ladder, circuits::rc_ladder_spec(3));
  const NumericalReference back = read_reference(write_reference(result.reference));
  bool saw_zero_tail = false;
  for (int i = 0; i <= back.numerator().order_bound(); ++i) {
    if (back.numerator().at(i).status == CoefficientStatus::ZeroTail) saw_zero_tail = true;
  }
  EXPECT_TRUE(saw_zero_tail);
}

}  // namespace
}  // namespace symref::refgen
