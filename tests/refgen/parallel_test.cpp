// Determinism of the parallel evaluation layer: the thread count must never
// change a result. Samples are independent replays of one shared symbolic
// plan and every reduction runs in index order, so 1, 2 and 8 lanes must
// produce bit-identical coefficients, iteration schedules and sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "mna/ac.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "refgen/batch.h"
#include "support/thread_pool.h"

namespace symref::refgen {
namespace {

/// Exact (mantissa + exponent) equality of every coefficient slot, plus the
/// bookkeeping that drives the scaling schedule.
void expect_references_identical(const NumericalReference& a, const NumericalReference& b) {
  auto expect_poly = [](const PolynomialReference& x, const PolynomialReference& y) {
    ASSERT_EQ(x.order_bound(), y.order_bound());
    for (int i = 0; i <= x.order_bound(); ++i) {
      EXPECT_TRUE(x.at(i).value == y.at(i).value) << "coefficient " << i;
      EXPECT_EQ(x.at(i).status, y.at(i).status) << "coefficient " << i;
      EXPECT_EQ(x.at(i).iteration, y.at(i).iteration) << "coefficient " << i;
      EXPECT_DOUBLE_EQ(x.at(i).relative_accuracy, y.at(i).relative_accuracy)
          << "coefficient " << i;
    }
  };
  expect_poly(a.numerator(), b.numerator());
  expect_poly(a.denominator(), b.denominator());
}

void expect_runs_identical(const AdaptiveResult& a, const AdaptiveResult& b) {
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_EQ(a.total_evaluations, b.total_evaluations);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].points, b.iterations[i].points) << "iteration " << i;
    EXPECT_EQ(a.iterations[i].evaluations, b.iterations[i].evaluations) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.iterations[i].f_scale, b.iterations[i].f_scale) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.iterations[i].g_scale, b.iterations[i].g_scale) << "iteration " << i;
  }
  expect_references_identical(a.reference, b.reference);
}

AdaptiveResult run_with_threads(const netlist::Circuit& circuit, const mna::TransferSpec& spec,
                                int threads) {
  AdaptiveOptions options;
  options.threads = threads;
  return generate_reference(circuit, spec, options);
}

TEST(ParallelRefgen, Ua741CoefficientsBitIdenticalAcrossThreadCounts) {
  const auto ua = circuits::ua741();
  const auto spec = circuits::ua741_gain_spec();
  const AdaptiveResult serial = run_with_threads(ua, spec, 1);
  ASSERT_TRUE(serial.complete);
  expect_runs_identical(serial, run_with_threads(ua, spec, 2));
  expect_runs_identical(serial, run_with_threads(ua, spec, 8));
}

TEST(ParallelRefgen, Ladder128CoefficientsBitIdenticalAcrossThreadCounts) {
  const auto ladder = circuits::rc_ladder(128);
  const auto spec = circuits::rc_ladder_spec(128);
  const AdaptiveResult serial = run_with_threads(ladder, spec, 1);
  expect_runs_identical(serial, run_with_threads(ladder, spec, 2));
  expect_runs_identical(serial, run_with_threads(ladder, spec, 8));
}

TEST(ParallelRefgen, EvaluateBatchMatchesPooledEvaluateBatch) {
  // The pooled batch must agree bit-for-bit with the pool-free batch (which
  // is the literal serial loop over evaluate_in).
  const auto canonical = netlist::canonicalize(circuits::ua741());
  const mna::NodalSystem system(canonical);
  const mna::CofactorEvaluator evaluator(system, circuits::ua741_gain_spec());

  std::vector<std::complex<double>> points;
  for (int k = 0; k < 33; ++k) {
    const double angle = 2.0 * 3.14159265358979323846 * k / 64.0;
    points.emplace_back(std::cos(angle), std::sin(angle));
  }
  const auto serial = evaluator.evaluate_batch(points, 2.7e10, 283.0, nullptr);

  const mna::CofactorEvaluator pooled_evaluator(system, circuits::ua741_gain_spec());
  support::ThreadPool pool(8);
  const auto pooled = pooled_evaluator.evaluate_batch(points, 2.7e10, 283.0, &pool);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << i;
    ASSERT_TRUE(pooled[i].ok) << i;
    EXPECT_TRUE(serial[i].numerator == pooled[i].numerator) << i;
    EXPECT_TRUE(serial[i].denominator == pooled[i].denominator) << i;
    EXPECT_DOUBLE_EQ(serial[i].numerator_error, pooled[i].numerator_error) << i;
    EXPECT_DOUBLE_EQ(serial[i].denominator_error, pooled[i].denominator_error) << i;
  }
}

TEST(ParallelRefgen, EvaluateBatchMatchesSerialEvaluateLoop) {
  // No pivot degradation across these points, so the batch path (baseline
  // plan + independent replays) walks the exact FP sequence of the classic
  // evaluate() loop.
  const auto canonical = netlist::canonicalize(circuits::rc_ladder(32));
  const mna::NodalSystem system(canonical);
  const auto spec = circuits::rc_ladder_spec(32);
  const mna::CofactorEvaluator loop_evaluator(system, spec);
  const mna::CofactorEvaluator batch_evaluator(system, spec);

  std::vector<std::complex<double>> points;
  for (int k = 0; k < 17; ++k) {
    const double angle = 2.0 * 3.14159265358979323846 * k / 32.0;
    points.emplace_back(std::cos(angle), std::sin(angle));
  }
  const double f = 1e9;
  const double g = 1e-3;
  const auto batch = batch_evaluator.evaluate_batch(points, f, g, nullptr);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto sample = loop_evaluator.evaluate(points[i], f, g);
    ASSERT_TRUE(sample.ok) << i;
    ASSERT_TRUE(batch[i].ok) << i;
    EXPECT_TRUE(sample.numerator == batch[i].numerator) << i;
    EXPECT_TRUE(sample.denominator == batch[i].denominator) << i;
  }
}

TEST(ParallelRefgen, SingularFirstPointDoesNotCondemnTheBatch) {
  // Single RC to ground: Y(s) = g + s*c is singular exactly at s = -1 (unit
  // magnitude, so it is a legal sample point). A batch starting there must
  // still evaluate the healthy points via per-point fresh factorizations.
  netlist::Circuit circuit;
  circuit.add_resistor("r1", "a", "0", 1.0);
  circuit.add_capacitor("c1", "a", "0", 1.0);
  const auto canonical = netlist::canonicalize(circuit);
  const mna::NodalSystem system(canonical);
  const auto spec = mna::TransferSpec::transimpedance("a", "a");
  const mna::CofactorEvaluator evaluator(system, spec);

  const std::vector<std::complex<double>> points{{-1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const auto samples = evaluator.evaluate_batch(points, 1.0, 1.0, nullptr);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_FALSE(samples[0].ok);
  EXPECT_TRUE(samples[1].ok);
  EXPECT_TRUE(samples[2].ok);

  support::ThreadPool pool(4);
  const mna::CofactorEvaluator pooled(system, spec);
  const auto parallel = pooled.evaluate_batch(points, 1.0, 1.0, &pool);
  ASSERT_EQ(parallel.size(), 3u);
  EXPECT_FALSE(parallel[0].ok);
  EXPECT_TRUE(parallel[1].ok);
  EXPECT_TRUE(parallel[1].denominator == samples[1].denominator);
  EXPECT_TRUE(parallel[2].denominator == samples[2].denominator);
}

TEST(BatchRunner, ResultsInJobOrderAndIdenticalToStandalone) {
  std::vector<BatchJob> jobs;
  for (const int n : {4, 8, 16, 32}) {
    BatchJob job;
    job.circuit = circuits::rc_ladder(n);
    job.spec = circuits::rc_ladder_spec(n);
    job.label = "ladder-" + std::to_string(n);
    jobs.push_back(job);
  }
  BatchJob ua;
  ua.circuit = circuits::ua741();
  ua.spec = circuits::ua741_gain_spec();
  ua.label = "ua741";
  jobs.push_back(ua);

  const BatchRunner runner(8);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status.to_string();
    EXPECT_EQ(results[i].label, jobs[i].label);
    const AdaptiveResult standalone =
        generate_reference(jobs[i].circuit, jobs[i].spec, jobs[i].options);
    expect_runs_identical(standalone, results[i].result);
  }
}

TEST(BatchRunner, BadJobDoesNotPoisonTheBatch) {
  std::vector<BatchJob> jobs;
  BatchJob good;
  good.circuit = circuits::rc_ladder(4);
  good.spec = circuits::rc_ladder_spec(4);
  good.label = "good";
  jobs.push_back(good);
  BatchJob bad;
  bad.circuit = circuits::rc_ladder(4);
  bad.spec = mna::TransferSpec::voltage_gain("no_such_node", "out");
  bad.label = "bad";
  jobs.push_back(bad);

  const BatchRunner runner(2);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  // The bad spec carries the same machine-readable code a single
  // api::Service request would report.
  EXPECT_EQ(results[1].status.code(), api::StatusCode::kInvalidSpec);
  EXPECT_FALSE(results[1].status.message().empty());
}

}  // namespace
}  // namespace symref::refgen
