// Baseline interpolators — the paper's Table 1 phenomenology.
#include "refgen/naive.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "netlist/canonical.h"

namespace symref::refgen {
namespace {

using numeric::ScaledDouble;

TEST(Denormalize, InverseOfNormalize) {
  const ScaledDouble value = ScaledDouble(3.7) * ScaledDouble::exp10i(-150);
  for (const int index : {0, 3, 17}) {
    const ScaledDouble normalized = normalize_coefficient(value, index, 40, 1e9, 1e-3);
    const ScaledDouble back = denormalize_coefficient(normalized, index, 40, 1e9, 1e-3);
    EXPECT_LT(numeric::relative_difference(value, back), 1e-12) << index;
  }
}

TEST(Denormalize, PaperEq11Exponents) {
  // p'_i = p_i * f^i * g^(M-i): for p=1, f=1e9, g=1e-3, M=10, i=4:
  // p' = 1e36 * 1e-18 = 1e18.
  const ScaledDouble normalized = normalize_coefficient(ScaledDouble(1.0), 4, 10, 1e9, 1e-3);
  EXPECT_NEAR(normalized.log10_abs(), 18.0, 1e-9);
}

TEST(Naive, UnitCircleOnIntegratedCircuitDrownsInRoundOff) {
  // Table 1a: without scaling, the valid region of an integrated circuit's
  // transfer polynomial contains only the very lowest coefficients.
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const mna::NodalSystem system(ota);
  BaselineOptions options;
  options.points = circuits::kOtaFig1OrderEstimate + 1;  // the paper's estimate
  // Evaluate every point independently, as the paper did — the conjugate
  // pairs then carry independent round-off and the imaginary parts no
  // longer cancel by construction.
  options.conjugate_symmetry = false;
  const BaselineResult result =
      naive_interpolation(system, circuits::ota_fig1_gain_spec(), options);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.points, 10);
  // With conductances ~1e-5 and capacitors ~1e-13, consecutive coefficients
  // are ~8 decades apart: at most 1-2 denominator coefficients survive.
  EXPECT_LE(result.denominator_region.width(), 2);
  // The paper's Table 1a point: the coefficients outside the valid region
  // are NOT zero — they are round-off garbage that would mislead anyone
  // reading them as real values. (The paper also shows large imaginary
  // parts; here the conjugate-point evaluations round exactly symmetrically
  // so the garbage lands in the real parts — see EXPERIMENTS.md.)
  int nonzero_garbage = 0;
  for (int i = 0; i < static_cast<int>(result.denominator_normalized.size()); ++i) {
    if (result.denominator_region.contains(i)) continue;
    const auto& c = result.denominator_normalized[static_cast<std::size_t>(i)];
    if (c.real().is_zero()) continue;
    ++nonzero_garbage;
    // Garbage sits below the error floor — that is what flags it.
    EXPECT_LT(c.real().abs().log10_abs(),
              result.denominator_region.error_floor.log10_abs() + 1.0)
        << i;
  }
  EXPECT_GE(nonzero_garbage, 4);
}

TEST(Naive, FrequencyScalingExposesMoreCoefficients) {
  // Table 1b: a 1e9-ish frequency scale factor widens the valid region.
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const mna::NodalSystem system(ota);
  BaselineOptions options;
  options.points = circuits::kOtaFig1OrderEstimate + 1;
  const BaselineResult unscaled =
      naive_interpolation(system, circuits::ota_fig1_gain_spec(), options);
  const BaselineResult scaled = fixed_scale_interpolation(
      system, circuits::ota_fig1_gain_spec(), /*f=*/1e9, /*g=*/1.0, options);
  ASSERT_TRUE(scaled.ok);
  EXPECT_GT(scaled.denominator_region.width(), unscaled.denominator_region.width());
  EXPECT_GT(scaled.numerator_region.width(), unscaled.numerator_region.width());
}

TEST(Naive, DenormalizationConsistentAcrossScalings) {
  // Coefficients inside BOTH valid regions must denormalize to the same
  // values — the cross-check §3.1 proposes.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(4));
  const mna::NodalSystem system(ladder);
  const auto spec = circuits::rc_ladder_spec(4);
  const BaselineResult a = fixed_scale_interpolation(system, spec, 1e6, 1e3, {});
  const BaselineResult b = fixed_scale_interpolation(system, spec, 3e6, 0.5e3, {});
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  for (int i = 0; i <= 4; ++i) {
    if (!a.denominator_region.contains(i) || !b.denominator_region.contains(i)) continue;
    EXPECT_LT(numeric::relative_difference(
                  a.denominator_denormalized[static_cast<std::size_t>(i)],
                  b.denominator_denormalized[static_cast<std::size_t>(i)]),
              1e-6)
        << i;
  }
}

TEST(Naive, LadderWellScaledByConstruction) {
  // A ladder with R=1, C=1 has all-1-ish coefficients: the naive unit
  // circle works perfectly and every coefficient is valid.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(5, 1.0, 1.0));
  const mna::NodalSystem system(ladder);
  const BaselineResult result =
      naive_interpolation(system, circuits::rc_ladder_spec(5), {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.denominator_region.begin, 0);
  EXPECT_EQ(result.denominator_region.end, result.points - 1);
}

TEST(Naive, ConjugateSymmetryHalvesEvaluations) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(6));
  const mna::NodalSystem system(ladder);
  BaselineOptions sym;
  BaselineOptions full;
  full.conjugate_symmetry = false;
  const auto spec = circuits::rc_ladder_spec(6);
  const BaselineResult with_sym = fixed_scale_interpolation(system, spec, 1e6, 1e3, sym);
  const BaselineResult without = fixed_scale_interpolation(system, spec, 1e6, 1e3, full);
  EXPECT_LT(with_sym.evaluations, without.evaluations);
  // Agreement is only meaningful for coefficients above the round-off
  // floor — compare inside the intersection of the valid regions.
  for (int i = 0; i < static_cast<int>(with_sym.denominator_denormalized.size()); ++i) {
    if (!with_sym.denominator_region.contains(i) || !without.denominator_region.contains(i)) {
      continue;
    }
    EXPECT_LT(numeric::relative_difference(
                  with_sym.denominator_denormalized[static_cast<std::size_t>(i)],
                  without.denominator_denormalized[static_cast<std::size_t>(i)]),
              1e-9)
        << i;
  }
}

}  // namespace
}  // namespace symref::refgen
