// Reference-driven symbolic simplification, end to end: the certificate a
// simplify run returns must be reproducible by an INDEPENDENT re-evaluation
// of the returned terms against an independently replayed baseline — the
// certificate is a proof, not a self-report.
#include "refgen/simplify.h"

#include <gtest/gtest.h>

#include <complex>
#include <map>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "numeric/scaled.h"
#include "symbolic/errors.h"

namespace symref::refgen {
namespace {

using numeric::ScaledComplex;
using numeric::ScaledDouble;

circuits::Ua741Options reduced_ua741_options() {
  // The monomial-sparse variant (no base resistances, no substrate caps):
  // dim 22, 109 elements — the largest model whose transfer function stays
  // sparsely representable in the monomial term basis at a 1% budget.
  circuits::Ua741Options options;
  options.base_resistance = false;
  options.substrate_caps = false;
  return options;
}

/// Sum the returned terms into per-power coefficients and evaluate the
/// model polynomial at s = jw in scaled arithmetic (term values span
/// hundreds of decades on the ua741; plain doubles would underflow).
ScaledComplex evaluate_terms(const std::vector<SimplifiedTerm>& terms, double omega) {
  std::map<int, ScaledDouble> coefficients;
  for (const SimplifiedTerm& term : terms) {
    auto [it, inserted] = coefficients.emplace(term.s_power, term.value);
    if (!inserted) it->second += term.value;
  }
  ScaledComplex sum;
  for (const auto& [power, value] : coefficients) {
    ScaledComplex s_power(1.0);
    for (int k = 0; k < power; ++k) s_power *= ScaledComplex(std::complex<double>(0.0, omega));
    sum += ScaledComplex(value) * s_power;
  }
  return sum;
}

/// Max relative error of the returned model over the certificate's band,
/// measured against a fresh evaluator on the ORIGINAL circuit — nothing
/// from the simplify run is reused.
double independent_max_error(const netlist::Circuit& circuit, const mna::TransferSpec& spec,
                             const SimplifyResult& result) {
  const netlist::Circuit canonical = netlist::canonicalize(circuit);
  const mna::NodalSystem system(canonical);
  const mna::CofactorEvaluator evaluator(system, spec);
  double worst = 0.0;
  for (std::size_t i = 0; i < result.certificate.frequencies_hz.size(); ++i) {
    const double omega = 2.0 * 3.14159265358979323846 * result.certificate.frequencies_hz[i];
    const auto sample = evaluator.evaluate(std::complex<double>(0.0, omega), 1.0, 1.0);
    EXPECT_TRUE(sample.ok) << "baseline evaluation failed at point " << i;
    const ScaledComplex exact =
        ScaledComplex(sample.numerator) / ScaledComplex(sample.denominator);
    const ScaledComplex model = evaluate_terms(result.numerator_terms, omega) /
                                evaluate_terms(result.denominator_terms, omega);
    const double error = numeric::ratio_abs((model - exact).abs(), exact.abs());
    worst = error > worst ? error : worst;
    // The certificate must be what an independent re-evaluation reproduces.
    EXPECT_NEAR(error, result.certificate.relative_error[i],
                1e-6 * (1.0 + result.certificate.relative_error[i]))
        << "certificate point " << i << " does not reproduce";
  }
  return worst;
}

TEST(Simplify, RcLadderCertificateReproducesIndependently) {
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const mna::TransferSpec spec = circuits::rc_ladder_spec(4);
  SimplifyOptions options;
  options.error_budget = 0.01;
  options.f_start_hz = 1e3;
  options.f_stop_hz = 1e6;
  options.band_points = 9;
  const SimplifyResult result = simplify_transfer(ladder, spec, options);
  EXPECT_LE(result.certificate.max_relative_error, options.error_budget);
  EXPECT_GT(result.enumerated_terms, 0u);
  EXPECT_LE(result.kept_terms, result.enumerated_terms);
  EXPECT_LE(independent_max_error(ladder, spec, result), options.error_budget);
}

TEST(Simplify, Ua741OnePercentBudgetCertifies) {
  // The acceptance scenario: a 1% budget over the 10 Hz..1 kHz open-loop
  // band returns a strictly smaller term set whose re-evaluated response
  // stays within budget — certified here by an independent re-evaluation.
  const netlist::Circuit amp = circuits::ua741(reduced_ua741_options());
  const mna::TransferSpec spec = mna::TransferSpec::voltage_gain("inp", "vo");
  SimplifyOptions options;
  options.error_budget = 0.01;
  options.f_start_hz = 10.0;
  options.f_stop_hz = 1e3;
  options.band_points = 9;
  options.engine.threads = 8;
  const SimplifyResult result = simplify_transfer(amp, spec, options);

  EXPECT_LE(result.certificate.max_relative_error, options.error_budget);
  EXPECT_LT(result.kept_terms, result.enumerated_terms);  // strictly smaller
  EXPECT_GT(result.terms_dropped, 0u);
  EXPECT_FALSE(result.prune_actions.empty());
  EXPECT_LT(result.reduced_elements, result.original_elements);
  // Plan-reuse probe: ranking runs through pinned replay of the one shared
  // symbolic plan; only the rare pivot-stability fallback factors fresh.
  EXPECT_GT(result.term_evals, 0u);
  EXPECT_LT(result.ranking_fresh_factorizations * 50, result.term_evals);

  EXPECT_LE(independent_max_error(amp, spec, result), options.error_budget);
}

TEST(Simplify, Ua741BitIdenticalAcrossThreadsAndKernels) {
  const netlist::Circuit amp = circuits::ua741(reduced_ua741_options());
  const mna::TransferSpec spec = mna::TransferSpec::voltage_gain("inp", "vo");
  SimplifyOptions base;
  base.error_budget = 0.05;  // loose budget keeps the 4-way matrix fast
  base.f_start_hz = 10.0;
  base.f_stop_hz = 1e3;
  base.band_points = 5;

  std::vector<SimplifyResult> results;
  for (const int threads : {1, 8}) {
    for (const bool batched : {false, true}) {
      SimplifyOptions options = base;
      options.engine.threads = threads;
      options.engine.kernel =
          batched ? sparse::ReplayKernel::kBatched : sparse::ReplayKernel::kScalar;
      results.push_back(simplify_transfer(amp, spec, options));
    }
  }
  const SimplifyResult& first = results.front();
  EXPECT_LE(first.certificate.max_relative_error, base.error_budget);
  for (std::size_t r = 1; r < results.size(); ++r) {
    const SimplifyResult& other = results[r];
    EXPECT_EQ(first.numerator_expression, other.numerator_expression) << r;
    EXPECT_EQ(first.denominator_expression, other.denominator_expression) << r;
    EXPECT_EQ(first.enumerated_terms, other.enumerated_terms) << r;
    EXPECT_EQ(first.kept_terms, other.kept_terms) << r;
    ASSERT_EQ(first.prune_actions.size(), other.prune_actions.size()) << r;
    for (std::size_t i = 0; i < first.prune_actions.size(); ++i) {
      EXPECT_EQ(first.prune_actions[i].element, other.prune_actions[i].element);
      EXPECT_EQ(first.prune_actions[i].op, other.prune_actions[i].op);
    }
    ASSERT_EQ(first.certificate.relative_error.size(), other.certificate.relative_error.size());
    for (std::size_t i = 0; i < first.certificate.relative_error.size(); ++i) {
      // Bitwise, not approximately: the oracle contract promises identical
      // results at every thread count and kernel.
      EXPECT_EQ(first.certificate.relative_error[i], other.certificate.relative_error[i])
          << "config " << r << " point " << i;
    }
    ASSERT_EQ(first.numerator_terms.size(), other.numerator_terms.size()) << r;
    ASSERT_EQ(first.denominator_terms.size(), other.denominator_terms.size()) << r;
    for (std::size_t i = 0; i < first.numerator_terms.size(); ++i) {
      EXPECT_EQ(first.numerator_terms[i].value.mantissa(),
                other.numerator_terms[i].value.mantissa());
      EXPECT_EQ(first.numerator_terms[i].value.exponent2(),
                other.numerator_terms[i].value.exponent2());
    }
  }
}

TEST(Simplify, DifferentialSpecThrowsNonAdmissible) {
  const netlist::Circuit ota = circuits::ota_fig1();
  EXPECT_THROW(simplify_transfer(ota, circuits::ota_fig1_gain_spec()),
               symbolic::NonAdmissibleError);
}

TEST(Simplify, UncertifiableCapsThrowTermEnumeration) {
  // One term per coefficient cannot reach a 1e-6 budget on a 4-stage
  // ladder: the enumeration must refuse with the typed error instead of
  // returning an uncertified result.
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  SimplifyOptions options;
  options.error_budget = 1e-6;
  options.f_start_hz = 1e3;
  options.f_stop_hz = 1e6;
  options.band_points = 5;
  options.prune = false;
  options.max_terms_per_coefficient = 1;
  EXPECT_THROW(simplify_transfer(ladder, circuits::rc_ladder_spec(4), options),
               symbolic::TermEnumerationError);
}

}  // namespace
}  // namespace symref::refgen
