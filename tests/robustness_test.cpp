// Parameterized robustness sweeps: the engine must complete and validate
// across circuit families x element-value decades x engine settings.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "mna/ac.h"
#include "refgen/adaptive.h"
#include "refgen/validate.h"

namespace symref {
namespace {

// --- Ladder value grid: R and C swept over 6 decades each ------------------

class LadderValueGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LadderValueGrid, ExactOrderAndBodeAcrossDecades) {
  const auto [resistance, capacitance] = GetParam();
  const int n = 5;
  const netlist::Circuit ladder = circuits::rc_ladder(n, resistance, capacitance);
  const auto spec = circuits::rc_ladder_spec(n);
  const refgen::AdaptiveResult result = refgen::generate_reference(ladder, spec);
  ASSERT_TRUE(result.complete) << "R=" << resistance << " C=" << capacitance << " "
                               << result.termination;
  EXPECT_EQ(result.reference.denominator().effective_order(), n);
  // Validate around the ladder's corner frequency, wherever the values put it.
  const double f0 = 1.0 / (2.0 * M_PI * resistance * capacitance);
  const refgen::BodeComparison bode =
      refgen::compare_bode(result.reference, ladder, spec, f0 / 100, f0 * 100, 3);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-6)
      << "R=" << resistance << " C=" << capacitance;
}

INSTANTIATE_TEST_SUITE_P(
    Decades, LadderValueGrid,
    ::testing::Combine(::testing::Values(1.0, 1e3, 1e6),
                       ::testing::Values(1e-12, 1e-9, 1e-6)));

// --- Engine settings grid on the OTA ---------------------------------------

struct EngineSetting {
  int sigma;
  bool deflation;
  bool symmetry;
};

class EngineSettingsGrid : public ::testing::TestWithParam<EngineSetting> {};

TEST_P(EngineSettingsGrid, OtaCompletesAndValidates) {
  const EngineSetting setting = GetParam();
  refgen::AdaptiveOptions options;
  options.sigma = setting.sigma;
  options.use_deflation = setting.deflation;
  options.conjugate_symmetry = setting.symmetry;
  const netlist::Circuit ota = circuits::ota_fig1();
  const auto spec = circuits::ota_fig1_gain_spec();
  const refgen::AdaptiveResult result = refgen::generate_reference(ota, spec, options);
  ASSERT_TRUE(result.complete)
      << "sigma=" << setting.sigma << " deflation=" << setting.deflation
      << " symmetry=" << setting.symmetry << " -> " << result.termination;
  const refgen::BodeComparison bode =
      refgen::compare_bode(result.reference, ota, spec, 1e3, 1e10, 3);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Settings, EngineSettingsGrid,
                         ::testing::Values(EngineSetting{4, true, true},
                                           EngineSetting{6, true, true},
                                           EngineSetting{8, true, true},
                                           EngineSetting{6, false, true},
                                           EngineSetting{6, true, false},
                                           EngineSetting{6, false, false}));

// --- gm-C chain spread sweep ------------------------------------------------

class SpreadSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpreadSweep, GmCChainAcrossSpreads) {
  const double decades = GetParam();
  const int stages = 8;
  const netlist::Circuit chain = circuits::gm_c_chain(stages, decades);
  const auto spec = circuits::gm_c_chain_spec(stages);
  const refgen::AdaptiveResult result = refgen::generate_reference(chain, spec);
  ASSERT_TRUE(result.complete) << "spread=" << decades << " " << result.termination;
  const double err =
      refgen::relative_transfer_error(result.reference, chain, spec, {0.0, 1e6});
  EXPECT_LT(err, 1e-4) << decades;
}

INSTANTIATE_TEST_SUITE_P(SpreadDecades, SpreadSweep,
                         ::testing::Values(0.0, 2.0, 4.0, 6.0, 8.0));

// --- 741 variants -------------------------------------------------------------

class Ua741Variants : public ::testing::TestWithParam<int> {};

TEST_P(Ua741Variants, AllModelFidelityLevelsComplete) {
  circuits::Ua741Options options;
  switch (GetParam()) {
    case 0:  // full model
      break;
    case 1:
      options.base_resistance = false;
      break;
    case 2:
      options.substrate_caps = false;
      break;
    case 3:
      options.base_resistance = false;
      options.substrate_caps = false;
      options.load_capacitance = 0.0;
      break;
    default:
      break;
  }
  const netlist::Circuit ua = circuits::ua741(options);
  const auto spec = circuits::ua741_gain_spec();
  const refgen::AdaptiveResult result = refgen::generate_reference(ua, spec);
  ASSERT_TRUE(result.complete) << "variant " << GetParam() << " " << result.termination;
  const refgen::BodeComparison bode =
      refgen::compare_bode(result.reference, ua, spec, 1.0, 1e7, 2);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-2) << "variant " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Models, Ua741Variants, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace symref
