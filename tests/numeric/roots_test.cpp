// Aberth-Ehrlich root finding on extended-range coefficients.
#include "numeric/roots.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace symref::numeric {
namespace {

void expect_contains_root(const RootResult& result, std::complex<double> root, double tol) {
  double best = 1e300;
  for (const auto& r : result.roots) best = std::min(best, std::abs(r - root));
  EXPECT_LT(best, tol) << "missing root " << root.real() << "+j" << root.imag();
}

TEST(Roots, Quadratic) {
  // (s+1)(s+2) = 2 + 3s + s^2
  const Polynomial<double> p({2.0, 3.0, 1.0});
  const RootResult result = find_roots(p);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.roots.size(), 2u);
  expect_contains_root(result, {-1.0, 0.0}, 1e-9);
  expect_contains_root(result, {-2.0, 0.0}, 1e-9);
}

TEST(Roots, ComplexPair) {
  // s^2 + 2s + 5 -> roots -1 +/- 2j.
  const Polynomial<double> p({5.0, 2.0, 1.0});
  const RootResult result = find_roots(p);
  ASSERT_TRUE(result.converged);
  expect_contains_root(result, {-1.0, 2.0}, 1e-9);
  expect_contains_root(result, {-1.0, -2.0}, 1e-9);
}

TEST(Roots, WidelySpreadPoles) {
  // Circuit-like pole spread: (1 + s/1e2)(1 + s/1e6)(1 + s/1e9). The
  // variable-scaling inside the finder balances the 1e-17-spread
  // coefficients without losing the small root.
  const double p1 = 1e2, p2 = 1e6, p3 = 1e9;
  Polynomial<double> p({1.0, 1 / p1 + 1 / p2 + 1 / p3,
                        1 / (p1 * p2) + 1 / (p1 * p3) + 1 / (p2 * p3),
                        1 / (p1 * p2 * p3)});
  const RootResult result = find_roots(p);
  ASSERT_TRUE(result.converged);
  expect_contains_root(result, {-p1, 0.0}, p1 * 1e-6);
  expect_contains_root(result, {-p2, 0.0}, p2 * 1e-6);
  expect_contains_root(result, {-p3, 0.0}, p3 * 1e-6);
}

TEST(Roots, OriginRootsFromLeadingZeros) {
  // s^2 * (s + 3): coefficients {0, 0, 3, 1}.
  const Polynomial<double> p({0.0, 0.0, 3.0, 1.0});
  const RootResult result = find_roots(p);
  ASSERT_EQ(result.roots.size(), 3u);
  // Sorted by magnitude: the two origin roots come first.
  EXPECT_EQ(result.roots[0], std::complex<double>(0.0, 0.0));
  EXPECT_EQ(result.roots[1], std::complex<double>(0.0, 0.0));
  expect_contains_root(result, {-3.0, 0.0}, 1e-9);
}

TEST(Roots, ScaledCoefficientsBeyondDoubleRange) {
  // p(s) = (1 + s/1e3)^2 multiplied by 1e-400: coefficients are not
  // representable as double, roots are unchanged.
  Polynomial<ScaledDouble> p;
  const ScaledDouble scale = ScaledDouble::exp10i(-400);
  p.set_coeff(0, scale);
  p.set_coeff(1, scale * ScaledDouble(2e-3));
  p.set_coeff(2, scale * ScaledDouble(1e-6));
  const RootResult result = find_roots(p);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.roots.size(), 2u);
  expect_contains_root(result, {-1e3, 0.0}, 1e-3);
}

TEST(Roots, DegenerateInputs) {
  EXPECT_TRUE(find_roots(Polynomial<double>{}).roots.empty());
  EXPECT_TRUE(find_roots(Polynomial<double>({5.0})).roots.empty());
  const RootResult linear = find_roots(Polynomial<double>({4.0, 2.0}));
  ASSERT_EQ(linear.roots.size(), 1u);
  expect_contains_root(linear, {-2.0, 0.0}, 1e-10);
}

}  // namespace
}  // namespace symref::numeric
