// Statistics helpers behind the first-scale heuristic (§3.2).
#include "numeric/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace symref::numeric {
namespace {

TEST(Stats, Mean) {
  const std::vector<double> v{1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1e-12, 1e-10};  // typical capacitor decade spread
  EXPECT_NEAR(geometric_mean(v), 1e-11, 1e-16);
  const std::vector<double> with_zero{0.0, 4.0, 9.0};
  EXPECT_NEAR(geometric_mean(with_zero), 6.0, 1e-12);  // zeros skipped
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{0.0}), 0.0);
}

TEST(Stats, GeometricMeanUsesMagnitudes) {
  const std::vector<double> v{-4.0, 9.0};
  EXPECT_NEAR(geometric_mean(v), 6.0, 1e-12);
}

TEST(Stats, MaxAbs) {
  const std::vector<double> v{-7.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(max_abs(v), 7.0);
  EXPECT_DOUBLE_EQ(max_abs({}), 0.0);
}

TEST(Stats, MinAbsNonzero) {
  const std::vector<double> v{0.0, -2.0, 5.0};
  EXPECT_DOUBLE_EQ(min_abs_nonzero(v), 2.0);
  EXPECT_DOUBLE_EQ(min_abs_nonzero(std::vector<double>{0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace symref::numeric
