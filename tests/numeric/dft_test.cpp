// DFT / IDFT and the unit-circle coefficient recovery (paper eq. (5)).
#include "numeric/dft.h"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "numeric/kahan.h"
#include "numeric/polynomial.h"
#include "support/random.h"

namespace symref::numeric {
namespace {

using Complex = std::complex<double>;

TEST(UnitCircle, PointsLieOnCircleAndStartAtOne) {
  const auto points = unit_circle_points(8);
  ASSERT_EQ(points.size(), 8u);
  EXPECT_LT(std::abs(points[0] - Complex(1.0, 0.0)), 1e-15);
  for (const Complex& p : points) {
    EXPECT_NEAR(std::abs(p), 1.0, 1e-15);
  }
  // Conjugate symmetry: s_k == conj(s_{K-k}).
  for (std::size_t k = 1; k < points.size(); ++k) {
    EXPECT_LT(std::abs(points[k] - std::conj(points[8 - k])), 1e-15);
  }
}

TEST(Dft, RoundTripIdentity) {
  support::Rng rng(7);
  for (const std::size_t size : {1u, 2u, 3u, 5u, 8u, 12u, 16u, 17u, 49u}) {
    std::vector<Complex> data(size);
    for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto back = idft(dft(data));
    ASSERT_EQ(back.size(), size);
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_LT(std::abs(back[i] - data[i]), 1e-12) << "size " << size << " idx " << i;
    }
  }
}

TEST(Dft, FftAgreesWithDirectTransform) {
  // 16 is a power of two (FFT path); compare against a 17-point direct
  // transform restricted... instead: compute the 16-point transform with the
  // direct formula by hand.
  support::Rng rng(8);
  std::vector<Complex> data(16);
  for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto fast = dft(data);
  for (std::size_t k = 0; k < data.size(); ++k) {
    KahanSum<Complex> sum;
    for (std::size_t j = 0; j < data.size(); ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(j * k) / 16.0;
      sum.add(data[j] * Complex(std::cos(angle), std::sin(angle)));
    }
    EXPECT_LT(std::abs(fast[k] - sum.value()), 1e-11) << k;
  }
}

TEST(Dft, RecoversPolynomialCoefficients) {
  // The core interpolation identity: sample P on the unit circle, recover
  // its coefficients (paper eq. (5)).
  support::Rng rng(9);
  for (const int degree : {0, 1, 3, 7, 9, 14}) {
    std::vector<double> coeffs(static_cast<std::size_t>(degree) + 1);
    for (auto& c : coeffs) c = rng.uniform(-2.0, 2.0);
    const Polynomial<double> p{std::vector<double>(coeffs)};
    const std::size_t K = static_cast<std::size_t>(degree) + 1;
    const auto points = unit_circle_points(K);
    std::vector<Complex> samples(K);
    for (std::size_t k = 0; k < K; ++k) samples[k] = p.eval(points[k]);
    const auto recovered = coefficients_from_unit_circle_samples(samples);
    for (std::size_t i = 0; i < K; ++i) {
      EXPECT_NEAR(recovered[i].real(), p.coeff(i), 1e-12) << "deg " << degree << " i " << i;
      EXPECT_NEAR(recovered[i].imag(), 0.0, 1e-12);
    }
  }
}

TEST(Dft, OverestimatedOrderGivesZeroHighCoefficients) {
  // K larger than degree+1: coefficients above the degree must vanish
  // (paper eq. (6)) — up to round-off, which is the paper's whole point.
  const Polynomial<double> p({1.0, 2.0, 3.0});
  const std::size_t K = 10;
  const auto points = unit_circle_points(K);
  std::vector<Complex> samples(K);
  for (std::size_t k = 0; k < K; ++k) samples[k] = p.eval(points[k]);
  const auto recovered = coefficients_from_unit_circle_samples(samples);
  for (std::size_t i = 3; i < K; ++i) {
    EXPECT_LT(std::abs(recovered[i]), 1e-13) << i;
  }
}

TEST(DftScaled, MatchesDoublePathInRange) {
  support::Rng rng(10);
  const std::size_t K = 9;
  std::vector<Complex> plain(K);
  std::vector<ScaledComplex> scaled(K);
  for (std::size_t i = 0; i < K; ++i) {
    plain[i] = {rng.uniform(-3, 3), rng.uniform(-3, 3)};
    scaled[i] = ScaledComplex(plain[i]);
  }
  const auto expected = coefficients_from_unit_circle_samples(plain);
  const auto actual = coefficients_from_unit_circle_samples(scaled);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < K; ++i) {
    EXPECT_LT(std::abs(actual[i].to_complex() - expected[i]), 1e-13) << i;
  }
}

TEST(DftScaled, HandlesSamplesBeyondDoubleRange) {
  // P(s) = a0 + a1 s with coefficients near 1e400: samples overflow IEEE
  // double, but the common-exponent path recovers them exactly.
  const ScaledDouble a0 = ScaledDouble(1.5) * ScaledDouble::exp10i(400);
  const ScaledDouble a1 = ScaledDouble(-2.5) * ScaledDouble::exp10i(399);
  const std::size_t K = 4;
  const auto points = unit_circle_points(K);
  std::vector<ScaledComplex> samples(K);
  for (std::size_t k = 0; k < K; ++k) {
    samples[k] = ScaledComplex(a0) + ScaledComplex(a1) * ScaledComplex(points[k]);
  }
  const auto recovered = coefficients_from_unit_circle_samples(samples);
  EXPECT_NEAR((recovered[0].real() / a0).to_double(), 1.0, 1e-12);
  EXPECT_NEAR((recovered[1].real() / a1).to_double(), 1.0, 1e-12);
  EXPECT_LT(recovered[2].abs().log10_abs(), 400.0 - 13.0);
  EXPECT_LT(recovered[3].abs().log10_abs(), 400.0 - 13.0);
}

TEST(DftScaled, WidelySpreadSamplesKeepOnlyDominantPrecision) {
  // A sample 400 decades below the peak cannot influence the transform —
  // documents the round-off model of §2.2.
  std::vector<ScaledComplex> samples(4, ScaledComplex(ScaledDouble::exp10i(100)));
  samples[2] = ScaledComplex(ScaledDouble::exp10i(-300));
  const auto recovered = coefficients_from_unit_circle_samples(samples);
  // Coefficient 0 is the mean of samples: 3/4 * 1e100 + tiny.
  EXPECT_NEAR(recovered[0].real().log10_abs(), 100.0 + std::log10(0.75), 1e-9);
}

TEST(DftScaled, AllZeroSamples) {
  const std::vector<ScaledComplex> samples(5);
  const auto recovered = coefficients_from_unit_circle_samples(samples);
  ASSERT_EQ(recovered.size(), 5u);
  for (const auto& c : recovered) EXPECT_TRUE(c.is_zero());
}

TEST(Dft, DegenerateSizes) {
  EXPECT_TRUE(dft({}).empty());
  EXPECT_TRUE(idft({}).empty());
  const std::vector<Complex> one{{3.0, -1.0}};
  EXPECT_LT(std::abs(dft(one)[0] - one[0]), 1e-15);
  EXPECT_LT(std::abs(idft(one)[0] - one[0]), 1e-15);
  EXPECT_EQ(unit_circle_points(1).size(), 1u);
}

TEST(Dft, ParsevalEnergyConserved) {
  support::Rng rng(77);
  std::vector<Complex> x(12);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto X = dft(x);
  double ex = 0.0;
  double eX = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : X) eX += std::norm(v);
  EXPECT_NEAR(eX, ex * 12.0, 1e-10);  // Parseval with unnormalized forward
}

TEST(Kahan, CompensatedSummationBeatsNaive) {
  // Summing 1 + 1e-16 * 10^7 terms: naive double accumulates to 1.0 + eps
  // garbage; Kahan keeps the exact value 1 + 1e-9 to full precision.
  KahanSum<double> kahan;
  double naive = 0.0;
  kahan.add(1.0);
  naive += 1.0;
  for (int i = 0; i < 10000000; ++i) {
    kahan.add(1e-16);
    naive += 1e-16;
  }
  const double expected = 1.0 + 1e-9;
  EXPECT_NEAR(kahan.value(), expected, 1e-18);
  EXPECT_GT(std::fabs(naive - expected), 1e-12);  // naive visibly wrong
}

}  // namespace
}  // namespace symref::numeric
