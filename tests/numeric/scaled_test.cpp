// ScaledDouble / ScaledComplex: extended-exponent arithmetic.
#include "numeric/scaled.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "support/random.h"

namespace symref::numeric {
namespace {

TEST(ScaledDouble, DefaultIsZero) {
  ScaledDouble z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_double(), 0.0);
}

TEST(ScaledDouble, NormalizationInvariant) {
  for (const double v : {1.0, -1.0, 0.5, 3.75, -1234.5, 1e-300, -1e300, 7e-12}) {
    const ScaledDouble s(v);
    EXPECT_GE(std::fabs(s.mantissa()), 1.0) << v;
    EXPECT_LT(std::fabs(s.mantissa()), 2.0) << v;
    EXPECT_DOUBLE_EQ(s.to_double(), v);
  }
}

TEST(ScaledDouble, NegativeZeroCanonicalized) {
  const ScaledDouble a(1.0);
  const ScaledDouble diff = a - a;
  EXPECT_TRUE(diff.is_zero());
  EXPECT_EQ(diff, ScaledDouble(0.0));
}

TEST(ScaledDouble, MultiplicationMatchesDoubleInRange) {
  support::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.sign() * rng.log_uniform(1e-20, 1e20);
    const double b = rng.sign() * rng.log_uniform(1e-20, 1e20);
    const ScaledDouble result = ScaledDouble(a) * ScaledDouble(b);
    EXPECT_NEAR(result.to_double(), a * b, std::fabs(a * b) * 1e-15);
  }
}

TEST(ScaledDouble, AdditionMatchesDoubleInRange) {
  support::Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.sign() * rng.log_uniform(1e-5, 1e5);
    const double b = rng.sign() * rng.log_uniform(1e-5, 1e5);
    const ScaledDouble result = ScaledDouble(a) + ScaledDouble(b);
    EXPECT_NEAR(result.to_double(), a + b, (std::fabs(a) + std::fabs(b)) * 1e-15);
  }
}

TEST(ScaledDouble, DivisionMatchesDoubleInRange) {
  support::Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.sign() * rng.log_uniform(1e-10, 1e10);
    const double b = rng.sign() * rng.log_uniform(1e-10, 1e10);
    const ScaledDouble result = ScaledDouble(a) / ScaledDouble(b);
    EXPECT_NEAR(result.to_double(), a / b, std::fabs(a / b) * 1e-15);
  }
}

TEST(ScaledDouble, ProductsFarBeyondDoubleRange) {
  // (1e9)^48 * (1e-9)^48 == 1 exactly in the scaled domain; each factor
  // alone is 1e432 / 1e-432, far outside IEEE double.
  const ScaledDouble big = ScaledDouble::pow(ScaledDouble(1e9), 48);
  const ScaledDouble small = ScaledDouble::pow(ScaledDouble(1e-9), 48);
  EXPECT_NEAR(big.log10_abs(), 432.0, 1e-9);
  EXPECT_NEAR(small.log10_abs(), -432.0, 1e-9);
  const ScaledDouble unity = big * small;
  EXPECT_NEAR(unity.to_double(), 1.0, 1e-12);
}

TEST(ScaledDouble, PaperMagnitudes) {
  // Table 3 of the paper reaches -1.1215e-522; such values must round-trip
  // through the scaled representation.
  const ScaledDouble tiny = ScaledDouble(-1.1215) * ScaledDouble::exp10i(-522);
  EXPECT_NEAR(tiny.log10_abs(), -522.0 + std::log10(1.1215), 1e-9);
  EXPECT_EQ(tiny.sign(), -1);
  EXPECT_EQ(tiny.decimal_exponent(), -522);
  EXPECT_EQ(tiny.to_double(), 0.0);  // underflows a plain double
}

TEST(ScaledDouble, AdditionAlignsDistantExponents) {
  const ScaledDouble big = ScaledDouble::exp10i(100);
  const ScaledDouble small = ScaledDouble::exp10i(-100);
  const ScaledDouble sum = big + small;
  EXPECT_NEAR((sum / big).to_double(), 1.0, 1e-15);  // small vanishes
  const ScaledDouble near = ScaledDouble::exp10i(100) * ScaledDouble(1e-10);
  const ScaledDouble sum2 = big + near;
  EXPECT_NEAR((sum2 / big).to_double(), 1.0 + 1e-10, 1e-14);
}

TEST(ScaledDouble, ComparisonOrdering) {
  const ScaledDouble values[] = {
      ScaledDouble(-3.0) * ScaledDouble::exp10i(50), ScaledDouble(-1.0),
      ScaledDouble(0.0), ScaledDouble::exp10i(-200), ScaledDouble(2.0),
      ScaledDouble::exp10i(300)};
  for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(values[i], values[i + 1]) << i;
    EXPECT_GT(values[i + 1], values[i]) << i;
    EXPECT_LE(values[i], values[i + 1]) << i;
    EXPECT_GE(values[i + 1], values[i + 1]) << i;
  }
}

TEST(ScaledDouble, PowNegativeExponent) {
  const ScaledDouble inv = ScaledDouble::pow(ScaledDouble(10.0), -3);
  EXPECT_NEAR(inv.to_double(), 1e-3, 1e-18);
  EXPECT_NEAR(ScaledDouble::pow(ScaledDouble(2.0), 0).to_double(), 1.0, 0.0);
}

TEST(ScaledDouble, Exp10iMatchesPow10) {
  for (int k = -300; k <= 300; k += 37) {
    EXPECT_NEAR(ScaledDouble::exp10i(k).log10_abs(), static_cast<double>(k), 1e-9) << k;
  }
}

TEST(ScaledDouble, ToStringFormatsLikeThePaper) {
  const ScaledDouble value = ScaledDouble(-1.28095) * ScaledDouble::exp10i(124);
  EXPECT_EQ(value.to_string(6), "-1.28095e+124");
  EXPECT_EQ(ScaledDouble(0.0).to_string(), "0");
  const ScaledDouble tiny = ScaledDouble(2.23949) * ScaledDouble::exp10i(-329);
  EXPECT_EQ(tiny.to_string(6), "2.23949e-329");
}

TEST(ScaledDouble, ToStringRoundingEdge) {
  // 9.99999999 with few digits must carry into the next decade.
  const ScaledDouble value(9.99999999);
  EXPECT_EQ(value.to_string(3), "1.00e+1");
}

TEST(ScaledDouble, RatioAndRelativeDifference) {
  const ScaledDouble a(3.0);
  const ScaledDouble b(-6.0);
  EXPECT_NEAR(ratio_abs(a, b), 0.5, 1e-15);
  EXPECT_NEAR(relative_difference(a, ScaledDouble(3.0 * (1 + 1e-9))), 1e-9, 1e-12);
  EXPECT_EQ(relative_difference(ScaledDouble(0.0), ScaledDouble(0.0)), 0.0);
  EXPECT_EQ(ratio_abs(a, ScaledDouble(0.0)), HUGE_VAL);
}

TEST(ScaledComplex, ConstructionAndParts) {
  const ScaledComplex z(std::complex<double>(3.0, -4.0));
  EXPECT_NEAR(z.real().to_double(), 3.0, 1e-15);
  EXPECT_NEAR(z.imag().to_double(), -4.0, 1e-15);
  EXPECT_NEAR(z.abs().to_double(), 5.0, 1e-14);
  EXPECT_NEAR(z.conj().imag().to_double(), 4.0, 1e-15);
}

TEST(ScaledComplex, NormalizationInvariant) {
  const ScaledComplex z(std::complex<double>(1e-200, -3e-200));
  const double peak = std::max(std::fabs(z.mantissa().real()), std::fabs(z.mantissa().imag()));
  EXPECT_GE(peak, 1.0);
  EXPECT_LT(peak, 2.0);
  EXPECT_NEAR(z.real().to_double(), 1e-200, 1e-213);
}

TEST(ScaledComplex, ArithmeticMatchesComplexInRange) {
  support::Rng rng(45);
  for (int i = 0; i < 200; ++i) {
    const std::complex<double> a(rng.uniform(-10, 10), rng.uniform(-10, 10));
    const std::complex<double> b(rng.uniform(-10, 10), rng.uniform(-10, 10));
    if (std::abs(b) < 1e-6) continue;
    EXPECT_LT(std::abs((ScaledComplex(a) * ScaledComplex(b)).to_complex() - a * b), 1e-13);
    EXPECT_LT(std::abs((ScaledComplex(a) + ScaledComplex(b)).to_complex() - (a + b)), 1e-13);
    EXPECT_LT(std::abs((ScaledComplex(a) - ScaledComplex(b)).to_complex() - (a - b)), 1e-13);
    EXPECT_LT(std::abs((ScaledComplex(a) / ScaledComplex(b)).to_complex() - a / b), 1e-12);
  }
}

TEST(ScaledComplex, ProductChainBeyondDoubleRange) {
  // Multiply 200 factors of magnitude 1e10: |result| = 1e2000.
  ScaledComplex product(std::complex<double>(1.0, 0.0));
  for (int i = 0; i < 200; ++i) {
    product *= ScaledComplex(std::complex<double>(0.0, 1e10));
  }
  EXPECT_NEAR(product.abs().log10_abs(), 2000.0, 1e-6);
  // i^200 = (i^4)^50 = 1: result should be purely real positive.
  EXPECT_NEAR(product.imag().to_double() == 0.0 ? 0.0 : 1.0, 0.0, 1e-9);
  EXPECT_GT(product.real().sign(), 0);
}

TEST(ScaledComplex, FromScaledDouble) {
  const ScaledDouble huge = ScaledDouble::exp10i(1000);
  const ScaledComplex z(huge);
  EXPECT_NEAR(z.real().log10_abs(), 1000.0, 1e-9);
  EXPECT_TRUE(z.imag().is_zero());
}

TEST(ScaledDouble, MixedSignComparisons) {
  const ScaledDouble neg_huge = ScaledDouble(-1.0) * ScaledDouble::exp10i(300);
  const ScaledDouble neg_tiny = ScaledDouble(-1.0) * ScaledDouble::exp10i(-300);
  const ScaledDouble pos_tiny = ScaledDouble::exp10i(-300);
  EXPECT_LT(neg_huge, neg_tiny);
  EXPECT_LT(neg_tiny, ScaledDouble(0.0));
  EXPECT_LT(ScaledDouble(0.0), pos_tiny);
  EXPECT_LT(neg_huge, pos_tiny);
}

TEST(ScaledDouble, DecimalExponentBoundaries) {
  EXPECT_EQ(ScaledDouble(1.0).decimal_exponent(), 0);
  EXPECT_EQ(ScaledDouble(9.99).decimal_exponent(), 0);
  EXPECT_EQ(ScaledDouble(10.0).decimal_exponent(), 1);
  EXPECT_EQ(ScaledDouble(0.1).decimal_exponent(), -1);
}

TEST(ScaledDouble, SubtractionOfNearEqual) {
  // Catastrophic cancellation still yields the exact double difference.
  const double a = 1.0 + 1e-12;
  const ScaledDouble diff = ScaledDouble(a) - ScaledDouble(1.0);
  EXPECT_NEAR(diff.to_double(), a - 1.0, 1e-27);
}

TEST(ScaledComplex, DivisionBySmallMagnitude) {
  const ScaledComplex num(std::complex<double>(1.0, 1.0));
  const ScaledComplex den = ScaledComplex(ScaledDouble::exp10i(-400));
  const ScaledComplex q = num / den;
  EXPECT_NEAR(q.abs().log10_abs(), 400.0 + std::log10(std::sqrt(2.0)), 1e-9);
}

TEST(ScaledComplex, ToStringShowsBothParts) {
  const ScaledComplex z(std::complex<double>(-2.5, 3.5));
  const std::string text = z.to_string(3);
  EXPECT_NE(text.find("-2.50"), std::string::npos);
  EXPECT_NE(text.find("j3.50"), std::string::npos);
}

// Property sweep: round-trip via mantissa/exponent for many magnitudes.
class ScaledDoubleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ScaledDoubleRoundTrip, MantissaExponentRoundTrip) {
  const int decade = GetParam();
  const ScaledDouble value = ScaledDouble(1.7) * ScaledDouble::exp10i(decade);
  const ScaledDouble rebuilt =
      ScaledDouble::from_mantissa_exp(value.mantissa(), value.exponent2());
  EXPECT_EQ(value, rebuilt);
  EXPECT_NEAR(value.log10_abs() - std::log10(1.7), static_cast<double>(decade), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Decades, ScaledDoubleRoundTrip,
                         ::testing::Values(-522, -300, -100, -10, -1, 0, 1, 10, 100, 300,
                                           522, 1000, -1000));

}  // namespace
}  // namespace symref::numeric
