// Polynomial<T>: arithmetic, evaluation, scaling transforms.
#include "numeric/polynomial.h"

#include <gtest/gtest.h>

#include <complex>

namespace symref::numeric {
namespace {

TEST(Polynomial, DegreeAndTrim) {
  Polynomial<double> p({1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(p.degree(), 1);
  EXPECT_EQ(p.coeff(0), 1.0);
  EXPECT_EQ(p.coeff(5), 0.0);
  EXPECT_TRUE(Polynomial<double>{}.is_zero());
  EXPECT_EQ(Polynomial<double>{}.degree(), -1);
}

TEST(Polynomial, SetCoeffGrows) {
  Polynomial<double> p;
  p.set_coeff(3, 5.0);
  EXPECT_EQ(p.degree(), 3);
  EXPECT_EQ(p.coeff(3), 5.0);
  p.set_coeff(3, 0.0);
  EXPECT_TRUE(p.is_zero());
}

TEST(Polynomial, HornerEvaluation) {
  const Polynomial<double> p({1.0, -2.0, 3.0});  // 1 - 2s + 3s^2
  EXPECT_DOUBLE_EQ(p.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.eval(2.0), 1.0 - 4.0 + 12.0);
  const std::complex<double> s(0.0, 1.0);
  const std::complex<double> expected =
      1.0 - 2.0 * s + 3.0 * s * s;  // 1 - 3 - 2i
  EXPECT_LT(std::abs(p.eval(s) - expected), 1e-15);
}

TEST(Polynomial, Addition) {
  const Polynomial<double> a({1.0, 2.0});
  const Polynomial<double> b({0.0, -2.0, 4.0});
  const Polynomial<double> sum = a + b;
  EXPECT_EQ(sum.degree(), 2);
  EXPECT_EQ(sum.coeff(0), 1.0);
  EXPECT_EQ(sum.coeff(1), 0.0);
  EXPECT_EQ(sum.coeff(2), 4.0);
}

TEST(Polynomial, CancellationTrims) {
  const Polynomial<double> a({1.0, 2.0, 3.0});
  const Polynomial<double> b({0.0, 0.0, 3.0});
  EXPECT_EQ((a - b).degree(), 1);
}

TEST(Polynomial, Multiplication) {
  const Polynomial<double> a({1.0, 1.0});   // 1 + s
  const Polynomial<double> b({1.0, -1.0});  // 1 - s
  const Polynomial<double> prod = a * b;    // 1 - s^2
  EXPECT_EQ(prod.degree(), 2);
  EXPECT_EQ(prod.coeff(0), 1.0);
  EXPECT_EQ(prod.coeff(1), 0.0);
  EXPECT_EQ(prod.coeff(2), -1.0);
  EXPECT_TRUE((a * Polynomial<double>{}).is_zero());
}

TEST(Polynomial, ScaleVariable) {
  // p(s) = 1 + s + s^2, p(2t) = 1 + 2t + 4t^2.
  const Polynomial<double> p({1.0, 1.0, 1.0});
  const Polynomial<double> q = p.scale_variable(2.0);
  EXPECT_EQ(q.coeff(0), 1.0);
  EXPECT_EQ(q.coeff(1), 2.0);
  EXPECT_EQ(q.coeff(2), 4.0);
}

TEST(Polynomial, ShiftUp) {
  const Polynomial<double> p({3.0, 4.0});
  const Polynomial<double> q = p.shift_up(2);  // 3s^2 + 4s^3
  EXPECT_EQ(q.degree(), 3);
  EXPECT_EQ(q.coeff(0), 0.0);
  EXPECT_EQ(q.coeff(2), 3.0);
  EXPECT_EQ(q.coeff(3), 4.0);
}

TEST(Polynomial, Derivative) {
  const Polynomial<double> p({5.0, 3.0, 2.0, 1.0});
  const Polynomial<double> d = p.derivative();
  EXPECT_EQ(d.coeff(0), 3.0);
  EXPECT_EQ(d.coeff(1), 4.0);
  EXPECT_EQ(d.coeff(2), 3.0);
  EXPECT_TRUE(Polynomial<double>({7.0}).derivative().is_zero());
}

TEST(Polynomial, ScaledConversionRoundTrip) {
  const Polynomial<double> p({1e-30, -2e10, 3.5});
  const Polynomial<ScaledDouble> s = to_scaled(p);
  const Polynomial<double> back = to_double(s);
  EXPECT_EQ(back.degree(), 2);
  for (int i = 0; i <= 2; ++i) {
    EXPECT_DOUBLE_EQ(back.coeff(static_cast<std::size_t>(i)),
                     p.coeff(static_cast<std::size_t>(i)));
  }
}

TEST(Polynomial, EvalScaledAvoidsOverflow) {
  // Coefficients like the paper's denormalized values: p0 = 1e-90,
  // p1 = 1e-100; at s = j*1e9 the term p1*s is 1e-91 — representable, but a
  // naive double Horner on the raw coefficients would underflow p1 first.
  Polynomial<ScaledDouble> p;
  p.set_coeff(0, ScaledDouble(1.0) * ScaledDouble::exp10i(-90));
  p.set_coeff(1, ScaledDouble(1.0) * ScaledDouble::exp10i(-100));
  const ScaledComplex value = eval_scaled(p, std::complex<double>(0.0, 1e9));
  EXPECT_NEAR(value.real().log10_abs(), -90.0, 1e-6);
  EXPECT_NEAR(value.imag().log10_abs(), -91.0, 1e-6);
}

TEST(Polynomial, EvalScaledFarBeyondDoubleRange) {
  // P(s) = 1e-500 * s^2 evaluated at |s| = 1e100: result 1e-300.
  Polynomial<ScaledDouble> p;
  p.set_coeff(2, ScaledDouble(1.0) * ScaledDouble::exp10i(-500));
  const ScaledComplex value = eval_scaled(p, std::complex<double>(1e100, 0.0));
  EXPECT_NEAR(value.real().log10_abs(), -300.0, 1e-6);
}

TEST(Polynomial, ScaledArithmetic) {
  Polynomial<ScaledDouble> a;
  a.set_coeff(0, ScaledDouble(1.0));
  a.set_coeff(1, ScaledDouble::exp10i(-200));
  Polynomial<ScaledDouble> b = a;
  const Polynomial<ScaledDouble> sum = a + b;
  EXPECT_NEAR(sum.coeff(1).log10_abs(), -200.0 + std::log10(2.0), 1e-9);
  const Polynomial<ScaledDouble> prod = a * b;
  EXPECT_NEAR(prod.coeff(2).log10_abs(), -400.0, 1e-9);
}

TEST(Polynomial, ComplexCoefficients) {
  using C = std::complex<double>;
  const Polynomial<C> p({C(1, 1), C(0, -2)});
  const C value = p.eval(C(2.0, 0.0));
  EXPECT_LT(std::abs(value - (C(1, 1) + C(0, -2) * 2.0)), 1e-15);
  const Polynomial<C> sq = p * p;
  EXPECT_EQ(sq.degree(), 2);
  EXPECT_LT(std::abs(sq.coeff(2) - C(0, -2) * C(0, -2)), 1e-15);
}

TEST(Polynomial, ScaledShiftAndScaleVariable) {
  Polynomial<ScaledDouble> p;
  p.set_coeff(0, ScaledDouble(2.0));
  p.set_coeff(1, ScaledDouble(3.0));
  const auto shifted = p.shift_up(2);
  EXPECT_EQ(shifted.degree(), 3);
  EXPECT_NEAR(shifted.coeff(2).to_double(), 2.0, 1e-15);
  const auto scaled = p.scale_variable(ScaledDouble(10.0));
  EXPECT_NEAR(scaled.coeff(1).to_double(), 30.0, 1e-12);
}

TEST(Polynomial, EvalScaledAtZeroAndRealAxis) {
  Polynomial<ScaledDouble> p;
  p.set_coeff(0, ScaledDouble(5.0));
  p.set_coeff(2, ScaledDouble(-1.0));
  EXPECT_NEAR(eval_scaled(p, {0.0, 0.0}).real().to_double(), 5.0, 1e-15);
  EXPECT_NEAR(eval_scaled(p, {2.0, 0.0}).real().to_double(), 1.0, 1e-14);
}

}  // namespace
}  // namespace symref::numeric
