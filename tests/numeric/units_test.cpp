// Engineering-notation parsing/printing.
#include "numeric/units.h"

#include <gtest/gtest.h>

namespace symref::numeric {
namespace {

TEST(Units, PlainNumbers) {
  EXPECT_DOUBLE_EQ(*parse_engineering("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_engineering("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*parse_engineering("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(*parse_engineering("4.7E3"), 4.7e3);
}

TEST(Units, Suffixes) {
  EXPECT_DOUBLE_EQ(*parse_engineering("30p"), 30e-12);
  EXPECT_DOUBLE_EQ(*parse_engineering("2.2k"), 2.2e3);
  EXPECT_DOUBLE_EQ(*parse_engineering("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(*parse_engineering("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(*parse_engineering("10u"), 10e-6);
  EXPECT_DOUBLE_EQ(*parse_engineering("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(*parse_engineering("3f"), 3e-15);
  EXPECT_DOUBLE_EQ(*parse_engineering("2g"), 2e9);
  EXPECT_DOUBLE_EQ(*parse_engineering("1t"), 1e12);
  EXPECT_DOUBLE_EQ(*parse_engineering("7m"), 7e-3);
}

TEST(Units, MilliVersusMega) {
  // "m" is milli; mega needs "meg" — the classic SPICE gotcha.
  EXPECT_DOUBLE_EQ(*parse_engineering("1m"), 1e-3);
  EXPECT_DOUBLE_EQ(*parse_engineering("1meg"), 1e6);
}

TEST(Units, TrailingUnitNamesIgnored) {
  EXPECT_DOUBLE_EQ(*parse_engineering("30pF"), 30e-12);
  EXPECT_DOUBLE_EQ(*parse_engineering("2.2kohm"), 2.2e3);
  EXPECT_DOUBLE_EQ(*parse_engineering("5ohm"), 5.0);  // 'o' unknown -> 1.0
}

TEST(Units, Rejections) {
  EXPECT_FALSE(parse_engineering("").has_value());
  EXPECT_FALSE(parse_engineering("abc").has_value());
  EXPECT_FALSE(parse_engineering("k12").has_value());
}

TEST(Units, FormattingPicksSuffix) {
  EXPECT_EQ(format_engineering(30e-12), "30p");
  EXPECT_EQ(format_engineering(2.2e3), "2.2k");
  EXPECT_EQ(format_engineering(0.0), "0");
  EXPECT_EQ(format_engineering(1e6), "1meg");
}

TEST(Units, FormatParseRoundTrip) {
  for (const double value : {1e-15, 33e-12, 4.7e-9, 1e-6, 2.2e-3, 1.0, 47.0, 3.3e3, 1e6,
                             2.5e9, 1e12}) {
    const auto parsed = parse_engineering(format_engineering(value, 9));
    ASSERT_TRUE(parsed.has_value()) << value;
    EXPECT_NEAR(*parsed, value, value * 1e-6) << value;
  }
}

}  // namespace
}  // namespace symref::numeric
