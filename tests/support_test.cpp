// Support utilities: tables, CLI parsing, RNG determinism, logging.
#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.h"
#include "support/log.h"
#include "support/random.h"
#include "support/table.h"
#include "support/timer.h"

namespace symref::support {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.set_header({"a", "long-header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide-cell", "x", "y"});
  const std::string out = table.str();
  // Header separator present, all rows same length.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  int lines = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
  EXPECT_NE(out.find("long-header"), std::string::npos);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NoHeaderWorks) {
  TextTable table;
  table.add_row({"x", "y"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.str().find("x | y"), std::string::npos);
}

TEST(FormatSci, SignificantDigits) {
  EXPECT_EQ(format_sci(1234.5, 3), "1.23e+03");
  EXPECT_EQ(format_sci(-1.28095e124, 6), "-1.28095e+124");
}

TEST(CliArgs, FlagsAndPositional) {
  const char* argv[] = {"prog", "--alpha=3.5", "--flag", "file.cir", "--name=x"};
  const CliArgs args(5, argv);
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
  EXPECT_EQ(args.get("name"), "x");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file.cir");
}

TEST(CliArgs, BadNumberFallsBack) {
  const char* argv[] = {"prog", "--x=abc"};
  const CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 7.0), 7.0);
}

TEST(CliArgs, DeclaredValueFlagConsumesNextArgument) {
  const char* argv[] = {"prog", "--json", "out.json", "--threads", "8", "--flag", "pos"};
  const CliArgs args(7, argv, {"json", "threads"});
  EXPECT_EQ(args.get("json"), "out.json");
  EXPECT_EQ(args.get_int("threads", 1), 8);
  EXPECT_TRUE(args.has("flag"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(CliArgs, UndeclaredFlagStaysBoolean) {
  // Without the declaration, `--flag value` keeps `value` positional, and
  // the `--json=x` form works with or without the declaration.
  const char* argv[] = {"prog", "--flag", "value", "--json=x"};
  const CliArgs args(4, argv);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag", ""), "");
  EXPECT_EQ(args.get("json"), "x");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "value");
}

TEST(CliArgs, ValueFlagWithMissingValueFallsBack) {
  const char* argv[] = {"prog", "--json"};
  const CliArgs args(2, argv, {"json"});
  EXPECT_TRUE(args.has("json"));
  EXPECT_EQ(args.get("json", "default.json"), "default.json");
}

TEST(CliArgs, ValueFlagDoesNotSwallowFollowingFlag) {
  // `--json --threads 8`: the forgotten path must not eat `--threads`.
  const char* argv[] = {"prog", "--json", "--threads", "8"};
  const CliArgs args(4, argv, {"json", "threads"});
  EXPECT_EQ(args.get("json"), "");
  EXPECT_EQ(args.get_int("threads", 1), 8);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    const double lu = rng.log_uniform(1e-12, 1e-3);
    EXPECT_GE(lu, 1e-12 * 0.999);
    EXPECT_LE(lu, 1e-3 * 1.001);
    const auto idx = rng.uniform_index(7);
    EXPECT_LT(idx, 7u);
  }
}

TEST(Rng, SignIsBalanced) {
  Rng rng(9);
  int positive = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.sign() > 0) ++positive;
  }
  EXPECT_GT(positive, 4500);
  EXPECT_LT(positive, 5500);
}

TEST(Log, LevelFiltering) {
  std::ostringstream sink;
  set_log_stream(&sink);
  const LogLevel previous = log_level();
  set_log_level(LogLevel::Warn);
  SYMREF_INFO("hidden " << 1);
  SYMREF_WARN("visible " << 2);
  set_log_level(previous);
  set_log_stream(nullptr);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible 2"), std::string::npos);
  EXPECT_NE(sink.str().find("[warn]"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  // Busy-wait a tiny amount; just verify monotonic non-negative behaviour.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.seconds(), 0.0);
  const double before = timer.seconds();
  timer.reset();
  EXPECT_LE(timer.seconds(), before + 1.0);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace symref::support
