// Unit-circle sampling, conjugate symmetry, deflation (eq. (17)).
#include "interp/interpolator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "numeric/dft.h"
#include "numeric/polynomial.h"
#include "support/random.h"

namespace symref::interp {
namespace {

using numeric::Polynomial;
using numeric::ScaledComplex;
using numeric::ScaledDouble;
using Complex = std::complex<double>;

TEST(Sampler, EvaluationCountWithSymmetry) {
  EXPECT_EQ(UnitCircleSampler(10, true).evaluation_points().size(), 6u);
  EXPECT_EQ(UnitCircleSampler(9, true).evaluation_points().size(), 5u);
  EXPECT_EQ(UnitCircleSampler(10, false).evaluation_points().size(), 10u);
  EXPECT_EQ(UnitCircleSampler(1, true).evaluation_points().size(), 1u);
  EXPECT_THROW(UnitCircleSampler(0), std::invalid_argument);
}

TEST(Sampler, ExpandReconstructsConjugatePoints) {
  // For a real-coefficient polynomial the expanded full set must equal
  // direct evaluation at all K points.
  support::Rng rng(11);
  for (const int K : {4, 5, 9, 10}) {
    std::vector<double> coeffs(static_cast<std::size_t>(K));
    for (auto& c : coeffs) c = rng.uniform(-1, 1);
    const Polynomial<double> p{std::vector<double>(coeffs)};

    const UnitCircleSampler sampler(K, true);
    std::vector<ScaledComplex> unique;
    for (const Complex& s : sampler.evaluation_points()) {
      unique.push_back(ScaledComplex(p.eval(s)));
    }
    const auto full = sampler.expand(unique);
    const auto points = numeric::unit_circle_points(static_cast<std::size_t>(K));
    ASSERT_EQ(full.size(), points.size());
    for (std::size_t k = 0; k < points.size(); ++k) {
      EXPECT_LT(std::abs(full[k].to_complex() - p.eval(points[k])), 1e-12)
          << "K " << K << " k " << k;
    }
  }
}

TEST(Sampler, SymmetricInterpolationRecoversCoefficients) {
  support::Rng rng(12);
  const int K = 11;
  std::vector<double> coeffs(static_cast<std::size_t>(K));
  for (auto& c : coeffs) c = rng.uniform(-5, 5);
  const Polynomial<double> p{std::vector<double>(coeffs)};
  const UnitCircleSampler sampler(K, true);
  std::vector<ScaledComplex> unique;
  for (const Complex& s : sampler.evaluation_points()) {
    unique.push_back(ScaledComplex(p.eval(s)));
  }
  const auto recovered = coefficients_from_samples(sampler.expand(unique));
  for (int i = 0; i < K; ++i) {
    EXPECT_NEAR(recovered[static_cast<std::size_t>(i)].real().to_double(),
                p.coeff(static_cast<std::size_t>(i)), 1e-11)
        << i;
  }
}

TEST(RealMagnitudes, TakesAbsoluteRealPart) {
  std::vector<ScaledComplex> values = {ScaledComplex(Complex(-3.0, 100.0)),
                                       ScaledComplex(Complex(2.0, -1.0))};
  const auto magnitudes = real_magnitudes(values);
  EXPECT_NEAR(magnitudes[0].to_double(), 3.0, 1e-15);
  EXPECT_NEAR(magnitudes[1].to_double(), 2.0, 1e-15);
}

TEST(Deflation, SubtractKnownLowCoefficients) {
  // P(s) = 2 + 3s + 5s^2 + 7s^3; knowing p0, p1, the residual after
  // deflation by s^2 is 5 + 7s.
  const Polynomial<double> p({2.0, 3.0, 5.0, 7.0});
  const std::vector<KnownCoefficient> known = {{0, ScaledDouble(2.0)},
                                               {1, ScaledDouble(3.0)}};
  const int K = 2;  // residual degree 1 -> two points suffice (eq. (17))
  const auto points = numeric::unit_circle_points(K);
  std::vector<ScaledComplex> samples;
  for (const Complex& s : points) {
    samples.push_back(deflate_sample(ScaledComplex(p.eval(s)), s, known, 2));
  }
  const auto recovered = numeric::coefficients_from_unit_circle_samples(samples);
  EXPECT_NEAR(recovered[0].real().to_double(), 5.0, 1e-12);
  EXPECT_NEAR(recovered[1].real().to_double(), 7.0, 1e-12);
}

TEST(Deflation, SubtractKnownHighCoefficients) {
  // Knowing p2, p3 of the same polynomial: residual (no shift) is 2 + 3s,
  // interpolated with 2 points.
  const Polynomial<double> p({2.0, 3.0, 5.0, 7.0});
  const std::vector<KnownCoefficient> known = {{2, ScaledDouble(5.0)},
                                               {3, ScaledDouble(7.0)}};
  const auto points = numeric::unit_circle_points(2);
  std::vector<ScaledComplex> samples;
  for (const Complex& s : points) {
    samples.push_back(deflate_sample(ScaledComplex(p.eval(s)), s, known, 0));
  }
  const auto recovered = numeric::coefficients_from_unit_circle_samples(samples);
  EXPECT_NEAR(recovered[0].real().to_double(), 2.0, 1e-12);
  EXPECT_NEAR(recovered[1].real().to_double(), 3.0, 1e-12);
}

TEST(Deflation, MiddleWindowBothSides) {
  // Know p0 and p3; seek p1, p2 with a two-point interpolation.
  const Polynomial<double> p({2.0, 3.0, 5.0, 7.0});
  const std::vector<KnownCoefficient> known = {{0, ScaledDouble(2.0)},
                                               {3, ScaledDouble(7.0)}};
  const auto points = numeric::unit_circle_points(2);
  std::vector<ScaledComplex> samples;
  for (const Complex& s : points) {
    samples.push_back(deflate_sample(ScaledComplex(p.eval(s)), s, known, 1));
  }
  const auto recovered = numeric::coefficients_from_unit_circle_samples(samples);
  EXPECT_NEAR(recovered[0].real().to_double(), 3.0, 1e-12);
  EXPECT_NEAR(recovered[1].real().to_double(), 5.0, 1e-12);
}

TEST(Deflation, PreservesConjugateSymmetry) {
  // Deflated samples of a real polynomial still satisfy
  // R(conj s) = conj R(s), so the sampler's expand() stays valid.
  const Polynomial<double> p({1.0, -2.0, 4.0, -8.0, 16.0});
  const std::vector<KnownCoefficient> known = {{0, ScaledDouble(1.0)},
                                               {4, ScaledDouble(16.0)}};
  const auto points = numeric::unit_circle_points(6);
  for (std::size_t k = 1; k < 3; ++k) {
    const auto a = deflate_sample(ScaledComplex(p.eval(points[k])), points[k], known, 1);
    const auto b = deflate_sample(ScaledComplex(p.eval(points[6 - k])), points[6 - k],
                                  known, 1);
    EXPECT_LT(std::abs(a.conj().to_complex() - b.to_complex()), 1e-12) << k;
  }
}

TEST(Deflation, ExtendedRangeKnowns) {
  // Known coefficients far outside double range still subtract exactly.
  Polynomial<ScaledDouble> p;
  p.set_coeff(0, ScaledDouble(1.0) * ScaledDouble::exp10i(500));
  p.set_coeff(1, ScaledDouble(3.0));
  const std::vector<KnownCoefficient> known = {
      {0, ScaledDouble(1.0) * ScaledDouble::exp10i(500)}};
  const auto points = numeric::unit_circle_points(1);
  const ScaledComplex sample = numeric::eval_scaled(p, points[0]);
  const ScaledComplex residual = deflate_sample(sample, points[0], known, 1);
  // Residual should be p1 = 3 — but the sample itself already rounded the
  // +3 away against the 1e500 term (16-digit mantissa), so the deflated
  // value is either exactly 0 or leftover noise ~1e484. Either way it does
  // NOT recover p1 — precisely the effect the engine's noise accounting
  // guards against.
  EXPECT_TRUE(residual.is_zero() || residual.abs().log10_abs() > 480.0);
  EXPECT_FALSE(!residual.is_zero() && std::fabs(residual.abs().to_double() - 3.0) < 1.0);
}

}  // namespace
}  // namespace symref::interp
