// Valid-region extraction (paper eq. (12)).
#include "interp/region.h"

#include <gtest/gtest.h>

#include <vector>

namespace symref::interp {
namespace {

using numeric::ScaledDouble;

std::vector<ScaledDouble> profile_from_decades(const std::vector<double>& decades) {
  std::vector<ScaledDouble> out;
  out.reserve(decades.size());
  for (const double d : decades) {
    out.push_back(ScaledDouble(1.0) * ScaledDouble::exp10i(static_cast<std::int64_t>(d)));
  }
  return out;
}

TEST(Region, PeakAndContiguousSpan) {
  // Profile decades: 0, -2, -4, [peak 3], -1, -9, -20. sigma=6 -> window 7
  // decades below the peak (floor 10^-4): indices 0..4 qualify around the
  // peak; index 5 at -9 stops the span.
  const auto magnitudes = profile_from_decades({0, -2, -4, 3, -1, -9, -20});
  const ValidRegion region = find_valid_region(magnitudes, {6, 13.0, {}});
  EXPECT_EQ(region.max_index, 3);
  EXPECT_NEAR(region.max_value.log10_abs(), 3.0, 1e-9);
  EXPECT_NEAR(region.error_floor.log10_abs(), 3.0 - 7.0, 1e-9);
  EXPECT_EQ(region.begin, 0);
  EXPECT_EQ(region.end, 4);
  EXPECT_EQ(region.width(), 5);
  EXPECT_TRUE(region.contains(2));
  EXPECT_FALSE(region.contains(5));
}

TEST(Region, ContiguityStopsAtGapEvenIfLaterValuesQualify) {
  // index 2 dips below the floor; index 3 is loud again but outside the
  // contiguous span.
  const auto magnitudes = profile_from_decades({10, 9, -20, 8});
  const ValidRegion region = find_valid_region(magnitudes, {6, 13.0, {}});
  EXPECT_EQ(region.max_index, 0);
  EXPECT_EQ(region.begin, 0);
  EXPECT_EQ(region.end, 1);
}

TEST(Region, SigmaControlsWindowWidth) {
  const auto magnitudes = profile_from_decades({0, -3, -6, -9, -12});
  // sigma=6: floor = -7 -> indices 0,1,2.
  EXPECT_EQ(find_valid_region(magnitudes, {6, 13.0, {}}).end, 2);
  // sigma=3: floor = -10 -> indices 0..3.
  EXPECT_EQ(find_valid_region(magnitudes, {3, 13.0, {}}).end, 3);
  // sigma=12: floor = -1 -> only the peak.
  EXPECT_EQ(find_valid_region(magnitudes, {12, 13.0, {}}).width(), 1);
}

TEST(Region, AllZeroProfile) {
  const std::vector<ScaledDouble> zeros(5);
  const ValidRegion region = find_valid_region(zeros);
  EXPECT_TRUE(region.empty());
  EXPECT_TRUE(region.max_value.is_zero());
}

TEST(Region, EmptyInput) {
  const ValidRegion region = find_valid_region({});
  EXPECT_TRUE(region.empty());
  EXPECT_EQ(region.max_index, -1);
}

TEST(Region, ExternalNoiseRaisesFloor) {
  const auto magnitudes = profile_from_decades({0, -3, -6, -9});
  RegionOptions options;
  options.sigma = 6;
  // Noise at 1e-8: floor becomes 1e-8 * 1e6 = 1e-2 -> only index 0 valid.
  options.external_noise = ScaledDouble(1.0) * ScaledDouble::exp10i(-8);
  const ValidRegion region = find_valid_region(magnitudes, options);
  EXPECT_EQ(region.begin, 0);
  EXPECT_EQ(region.end, 0);
  EXPECT_NEAR(region.error_floor.log10_abs(), -2.0, 1e-9);
}

TEST(Region, ExternalNoiseCanBuryEverything) {
  const auto magnitudes = profile_from_decades({-20, -21});
  RegionOptions options;
  options.external_noise = ScaledDouble(1.0) * ScaledDouble::exp10i(-10);
  const ValidRegion region = find_valid_region(magnitudes, options);
  EXPECT_TRUE(region.empty());
}

TEST(Region, ToStringReadable) {
  const auto magnitudes = profile_from_decades({0, 5, 0});
  const ValidRegion region = find_valid_region(magnitudes);
  EXPECT_NE(region.to_string().find("p1"), std::string::npos);
  EXPECT_EQ(find_valid_region({}).to_string(), "[empty]");
}

TEST(Region, IndicesAboveFloorIgnoresContiguity) {
  const auto magnitudes = profile_from_decades({10, 9, -20, 8});
  const auto indices = indices_above_floor(magnitudes, {6, 13.0, {}});
  ASSERT_EQ(indices.size(), 3u);
  EXPECT_EQ(indices[0], 0);
  EXPECT_EQ(indices[1], 1);
  EXPECT_EQ(indices[2], 3);
}

TEST(Region, PaperExampleFloorArithmetic) {
  // §3.2: max 1.28095e+124 with 6 digits -> floor 1.28095e+117.
  std::vector<ScaledDouble> magnitudes = {
      ScaledDouble(1.28095) * ScaledDouble::exp10i(124),
      ScaledDouble(2.13624) * ScaledDouble::exp10i(118),
      ScaledDouble(8.7689) * ScaledDouble::exp10i(116),
  };
  const ValidRegion region = find_valid_region(magnitudes, {6, 13.0, {}});
  EXPECT_NEAR(region.error_floor.log10_abs(), 124.0 + std::log10(1.28095) - 7.0, 1e-9);
  EXPECT_TRUE(region.contains(1));   // 2.1e118 above 1.3e117
  EXPECT_FALSE(region.contains(2));  // 8.8e116 below
}

}  // namespace
}  // namespace symref::interp
