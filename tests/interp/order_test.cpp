// Topological order bounds (§2.1: "an upper estimate on K must be done").
#include "interp/order.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "netlist/canonical.h"

namespace symref::interp {
namespace {

TEST(OrderBound, LadderIsExact) {
  for (const int n : {1, 3, 7, 12}) {
    const netlist::Circuit ladder = circuits::rc_ladder(n);
    EXPECT_EQ(capacitor_element_bound(ladder), n);
    EXPECT_EQ(capacitor_rank_bound(ladder), n);
    EXPECT_EQ(denominator_order_bound(netlist::canonicalize(ladder)), n);
  }
}

TEST(OrderBound, CapacitorLoopReducesRank) {
  // Three capacitors in a triangle: element bound 3, rank 2 (one loop).
  netlist::Circuit c;
  c.add_capacitor("c1", "a", "b", 1e-12);
  c.add_capacitor("c2", "b", "c", 1e-12);
  c.add_capacitor("c3", "c", "a", 1e-12);
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_resistor("r2", "b", "0", 1e3);
  c.add_resistor("r3", "c", "0", 1e3);
  EXPECT_EQ(capacitor_element_bound(c), 3);
  EXPECT_EQ(capacitor_rank_bound(c), 2);
}

TEST(OrderBound, GroundedCapLoopThroughGround) {
  // Two grounded caps plus one bridging cap: a loop through ground.
  netlist::Circuit c;
  c.add_capacitor("c1", "a", "0", 1e-12);
  c.add_capacitor("c2", "b", "0", 1e-12);
  c.add_capacitor("c3", "a", "b", 1e-12);
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_EQ(capacitor_element_bound(c), 3);
  EXPECT_EQ(capacitor_rank_bound(c), 2);
}

TEST(OrderBound, SelfLoopCapacitorIgnored) {
  netlist::Circuit c;
  const int a = c.node("a");
  netlist::Element e;
  e.kind = netlist::ElementKind::Capacitor;
  e.name = "cself";
  e.node_pos = a;
  e.node_neg = a;
  e.value = 1e-12;
  c.add(std::move(e));
  EXPECT_EQ(capacitor_element_bound(c), 0);
  EXPECT_EQ(capacitor_rank_bound(c), 0);
}

TEST(OrderBound, OtaFig1ElementCountIsPaperEstimate) {
  // The paper's "upper estimate on the polynomial order ... is 9" for the
  // Fig. 1 OTA — the capacitor element count.
  const netlist::Circuit ota = circuits::ota_fig1();
  EXPECT_EQ(capacitor_element_bound(ota), circuits::kOtaFig1OrderEstimate);
  // The rank/dimension-aware bound is tighter — this is exactly why most
  // coefficients in Table 1a are round-off garbage.
  EXPECT_LT(denominator_order_bound(netlist::canonicalize(ota)),
            circuits::kOtaFig1OrderEstimate);
}

TEST(OrderBound, Ua741IsLarge) {
  const netlist::Circuit ua = circuits::ua741();
  EXPECT_GE(capacitor_element_bound(ua), 50);
  const int bound = denominator_order_bound(netlist::canonicalize(ua));
  EXPECT_GE(bound, 35);  // the paper's example has ~48 denominator coefficients
  EXPECT_LE(bound, 60);
}

TEST(OrderBound, DimensionCapsTheBound) {
  // Many caps on two nodes: rank <= 2 regardless of element count.
  netlist::Circuit c;
  for (int i = 0; i < 6; ++i) {
    c.add_capacitor("c" + std::to_string(i), "a", i % 2 ? "b" : "0", 1e-12);
  }
  c.add_resistor("r1", "a", "b", 1e3);
  EXPECT_EQ(capacitor_rank_bound(c), 2);
  EXPECT_EQ(denominator_order_bound(c), 2);
}

}  // namespace
}  // namespace symref::interp
