// Structural degree bounds via bipartite assignment.
#include "interp/structure.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "netlist/canonical.h"
#include "symbolic/det.h"

namespace symref::interp {
namespace {

TEST(Structure, RcLadderDegrees) {
  // Ladder n: det degree is exactly n. The true lowest nonzero power is 1
  // (det(G) == 0: no conductive path to ground), but that cancellation is
  // identical-by-symbol-repetition — invisible to entry-generic matchings,
  // so min_degree reports the sound lower bound 0.
  for (const int n : {2, 3, 5}) {
    const auto ladder = netlist::canonicalize(circuits::rc_ladder(n));
    const StructuralDegrees degrees = structural_determinant_degrees(ladder);
    EXPECT_FALSE(degrees.singular) << n;
    EXPECT_EQ(degrees.max_degree, n) << n;
    EXPECT_EQ(degrees.min_degree, 0) << n;
  }
}

TEST(Structure, GroundedDividerHasFullConductivePath) {
  netlist::Circuit c;
  c.add_conductance("g1", "a", "0", 1e-3);
  c.add_conductance("g2", "a", "b", 1e-3);
  c.add_conductance("g3", "b", "0", 1e-3);
  c.add_capacitor("c1", "b", "0", 1e-12);
  const StructuralDegrees degrees = structural_determinant_degrees(c);
  EXPECT_FALSE(degrees.singular);
  EXPECT_EQ(degrees.min_degree, 0);  // all-conductance matching exists
  EXPECT_EQ(degrees.max_degree, 1);  // one capacitor available
}

TEST(Structure, MatchesSymbolicExpansionOnSmallCircuits) {
  // Ground truth: the symbolic determinant's lowest/highest nonzero powers.
  for (const int n : {2, 3, 4}) {
    const auto ladder = netlist::canonicalize(circuits::rc_ladder(n));
    const symbolic::SymbolicNodalMatrix matrix(ladder);
    const auto poly =
        symbolic_determinant(matrix).coefficients(matrix.symbols());
    int lowest = -1;
    for (int k = 0; k <= poly.degree(); ++k) {
      if (!poly.coeff(static_cast<std::size_t>(k)).is_zero()) {
        lowest = k;
        break;
      }
    }
    const StructuralDegrees degrees = structural_determinant_degrees(ladder);
    EXPECT_EQ(degrees.max_degree, poly.degree()) << n;
    // The min bound is sound (never above the true lowest power) but not
    // tight here: the ladder's det(G) vanishes by symbol repetition.
    EXPECT_LE(degrees.min_degree, lowest) << n;
  }
}

TEST(Structure, OtaDegrees) {
  const auto ota = netlist::canonicalize(circuits::ota_fig1());
  const symbolic::SymbolicNodalMatrix matrix(ota);
  const auto poly = symbolic_determinant(matrix).coefficients(matrix.symbols());
  const StructuralDegrees degrees = structural_determinant_degrees(ota);
  EXPECT_FALSE(degrees.singular);
  EXPECT_EQ(degrees.max_degree, poly.degree());
  // The OTA's determinant has p0 = p1 = 0 structurally (cap-only input rows).
  EXPECT_EQ(degrees.min_degree, 2);
  EXPECT_TRUE(poly.coeff(0).is_zero());
  EXPECT_TRUE(poly.coeff(1).is_zero());
  EXPECT_FALSE(poly.coeff(2).is_zero());
}

TEST(Structure, SingularWhenNodeIsolated) {
  // A node touched only as a VCCS control has an empty matrix row: no
  // perfect matching -> det identically zero.
  netlist::Circuit c;
  c.add_vccs("gm1", "out", "0", "in", "0", 1e-3);
  c.add_conductance("gl", "out", "0", 1e-3);
  const StructuralDegrees degrees = structural_determinant_degrees(c);
  EXPECT_TRUE(degrees.singular);
}

TEST(Structure, Ua741BoundsTighterThanCapacitorRank) {
  const auto ua = netlist::canonicalize(circuits::ua741());
  const StructuralDegrees degrees = structural_determinant_degrees(ua);
  EXPECT_FALSE(degrees.singular);
  // The adaptive engine finds the true denominator order 38 (voltage-gain
  // cofactors differ from det by at most one degree); the structural bound
  // must bracket it and beat the naive capacitor count (55).
  EXPECT_LE(degrees.max_degree, 41);
  EXPECT_GE(degrees.max_degree, 38);
  EXPECT_EQ(degrees.min_degree, 0);  // resistive DC path everywhere
}

TEST(Structure, RejectsNonCanonical) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_THROW(structural_determinant_degrees(c), std::invalid_argument);
}

TEST(Structure, EmptyCircuit) {
  netlist::Circuit c;
  const StructuralDegrees degrees = structural_determinant_degrees(c);
  EXPECT_FALSE(degrees.singular);
  EXPECT_EQ(degrees.min_degree, 0);
  EXPECT_EQ(degrees.max_degree, 0);
}

}  // namespace
}  // namespace symref::interp
