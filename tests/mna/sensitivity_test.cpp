// Adjoint sensitivities vs finite differences.
#include "mna/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "mna/ac.h"
#include "netlist/canonical.h"

namespace symref::mna {
namespace {

using Complex = std::complex<double>;

/// Central finite difference of the normalized sensitivity y dH/dy / H.
Complex finite_difference(const netlist::Circuit& circuit, const TransferSpec& spec,
                          const std::string& element, double frequency) {
  const double h = 1e-6;
  netlist::Circuit up = circuit;
  netlist::Circuit down = circuit;
  // Scale the element value by (1 +/- h).
  auto scale_element = [&](netlist::Circuit& target, double factor) {
    const netlist::Element* e = target.find_element(element);
    if (e == nullptr) return false;
    netlist::Element copy = *e;
    copy.value *= factor;
    target.remove_element(element);
    target.add(copy);
    return true;
  };
  if (!scale_element(up, 1.0 + h) || !scale_element(down, 1.0 - h)) {
    ADD_FAILURE() << "element not found: " << element;
    return {};
  }
  const Complex h_up = AcSimulator(up).transfer(spec, frequency);
  const Complex h_down = AcSimulator(down).transfer(spec, frequency);
  const Complex h_mid = AcSimulator(circuit).transfer(spec, frequency);
  return (h_up - h_down) / (2.0 * h) / h_mid;
}

TEST(Sensitivity, MatchesFiniteDifferenceOnLadder) {
  const auto ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const auto spec = circuits::rc_ladder_spec(3);
  const double freq = 2e5;
  const auto sensitivities = ac_sensitivities(ladder, spec, freq);
  ASSERT_EQ(sensitivities.size(), ladder.element_count());
  for (const auto& s : sensitivities) {
    const Complex fd = finite_difference(ladder, spec, s.element, freq);
    EXPECT_LT(std::abs(s.normalized - fd), 1e-4 * std::max(1.0, std::abs(fd)))
        << s.element;
  }
}

TEST(Sensitivity, MatchesFiniteDifferenceOnOta) {
  // Includes VCCS elements and a gm-driven (control-only) input node, which
  // exercises the drive-admittance path.
  const auto ota = netlist::canonicalize(circuits::ota_fig1());
  const auto spec = circuits::ota_fig1_gain_spec();
  const double freq = 1e6;
  const auto sensitivities = ac_sensitivities(ota, spec, freq);
  int checked = 0;
  for (const auto& s : sensitivities) {
    if (std::abs(s.normalized) < 1e-9) continue;  // FD would be noise-bound
    const Complex fd = finite_difference(ota, spec, s.element, freq);
    EXPECT_LT(std::abs(s.normalized - fd), 2e-4 * std::max(1.0, std::abs(fd)))
        << s.element;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(Sensitivity, RcPoleKnownAnalytically) {
  // One-pole RC: H = 1/(1 + sRC). Normalized sensitivity to C is
  // -sRC/(1+sRC); at the corner frequency its magnitude is 1/sqrt(2).
  netlist::Circuit c;
  c.add_conductance("g1", "in", "out", 1e-3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const auto spec = TransferSpec::voltage_gain("in", "out");
  const double f0 = 1e-3 / (2.0 * M_PI * 1e-9);  // w0 = G/C
  const auto sensitivities = ac_sensitivities(c, spec, f0);
  for (const auto& s : sensitivities) {
    if (s.element == "c1") {
      EXPECT_NEAR(std::abs(s.normalized), 1.0 / std::sqrt(2.0), 1e-9);
    }
    if (s.element == "g1") {
      // G appears in both numerator and denominator: S_g = +sRC/(1+sRC).
      EXPECT_NEAR(std::abs(s.normalized), 1.0 / std::sqrt(2.0), 1e-9);
    }
  }
}

TEST(Sensitivity, BandScreeningFindsNegligibleElements) {
  // The divider-with-parasitics from the SBG tests: the parasitic branches
  // must rank at the bottom across the whole band.
  netlist::Circuit c;
  c.add_conductance("g1", "in", "out", 1e-3);
  c.add_conductance("g2", "out", "0", 1e-3);
  c.add_conductance("gpar", "in", "out", 1e-9);
  c.add_capacitor("cpar", "out", "0", 1e-18);
  c.add_capacitor("cmain", "out", "0", 1e-9);
  const auto spec = TransferSpec::voltage_gain("in", "out");
  const auto band = band_sensitivities(c, spec, 1e2, 1e7, 2);
  double par_worst = 0.0;
  double main_best = 1e300;
  for (const auto& s : band) {
    if (s.element == "gpar" || s.element == "cpar") {
      par_worst = std::max(par_worst, std::abs(s.normalized));
    }
    if (s.element == "g1" || s.element == "g2" || s.element == "cmain") {
      main_best = std::min(main_best, std::abs(s.normalized));
    }
  }
  EXPECT_LT(par_worst, 1e-5);
  EXPECT_GT(main_best, 1e-2);
}

TEST(Sensitivity, RejectsNonCanonical) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_THROW(ac_sensitivities(c, TransferSpec::voltage_gain("a", "a", "0"), 1e3),
               std::invalid_argument);
}

}  // namespace
}  // namespace symref::mna
