// Plan-reusing parameter sweeps (grid + Monte-Carlo) over netlist .params.
#include "mna/param_sweep.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <sstream>
#include <string>

#include "circuits/ua741.h"
#include "netlist/writer.h"
#include "support/cancellation.h"

namespace symref::mna {
namespace {

constexpr double kPi = 3.14159265358979323846;

// --- Sample plans -----------------------------------------------------------

TEST(ParamSamplePlan, GridIsACartesianProductFirstAxisSlowest) {
  const ParamSamplePlan plan =
      grid_samples({{"a", 1.0, 3.0, 3, false}, {"b", 10.0, 20.0, 2, false}});
  ASSERT_EQ(plan.sample_count(), 6u);
  ASSERT_EQ(plan.names.size(), 2u);
  const double expected[6][2] = {{1, 10}, {1, 20}, {2, 10}, {2, 20}, {3, 10}, {3, 20}};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(plan.values[i * 2 + 0], expected[i][0]) << "sample " << i;
    EXPECT_DOUBLE_EQ(plan.values[i * 2 + 1], expected[i][1]) << "sample " << i;
  }
}

TEST(ParamSamplePlan, GridLogSpacing) {
  const ParamSamplePlan plan = grid_samples({{"r", 1.0, 100.0, 3, true}});
  ASSERT_EQ(plan.sample_count(), 3u);
  EXPECT_DOUBLE_EQ(plan.values[0], 1.0);
  EXPECT_NEAR(plan.values[1], 10.0, 1e-9);
  EXPECT_NEAR(plan.values[2], 100.0, 1e-9);
}

TEST(ParamSamplePlan, GridSinglePointAxisUsesFrom) {
  const ParamSamplePlan plan = grid_samples({{"r", 5.0, 99.0, 1, false}});
  ASSERT_EQ(plan.sample_count(), 1u);
  EXPECT_DOUBLE_EQ(plan.values[0], 5.0);
}

TEST(ParamSamplePlan, GridValidation) {
  EXPECT_THROW((void)grid_samples({}), std::invalid_argument);
  EXPECT_THROW((void)grid_samples({{"", 1, 2, 2, false}}), std::invalid_argument);
  EXPECT_THROW((void)grid_samples({{"a", 1, 2, 0, false}}), std::invalid_argument);
  EXPECT_THROW((void)grid_samples({{"a", -1, 2, 2, true}}), std::invalid_argument);
  EXPECT_THROW((void)grid_samples({{"a", 1, 2, 2, false}, {"a", 1, 2, 2, false}}),
               std::invalid_argument);
  EXPECT_THROW((void)grid_samples({{"a", 1, 2, 2000, false}, {"b", 1, 2, 2000, false}}),
               std::invalid_argument);  // > 2^20 points
}

TEST(ParamSamplePlan, MonteCarloIsDeterministicInSeedAlone) {
  const std::vector<ParamDist> dists = {{"g", 1e-3, 0.05, ParamDist::Kind::kGaussian},
                                        {"c", 1e-12, 0.1, ParamDist::Kind::kUniform}};
  const ParamSamplePlan a = monte_carlo_samples(dists, 32, 42);
  const ParamSamplePlan b = monte_carlo_samples(dists, 32, 42);
  EXPECT_EQ(a.values, b.values);  // bit-identical
  const ParamSamplePlan c = monte_carlo_samples(dists, 32, 43);
  EXPECT_NE(a.values, c.values);
  // A longer run with the same seed starts with the same draws: samples are
  // counter-indexed, not stream-dependent.
  const ParamSamplePlan d = monte_carlo_samples(dists, 64, 42);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i], d.values[i]);
  }
}

TEST(ParamSamplePlan, MonteCarloDrawsSpreadAroundTheNominal) {
  const ParamSamplePlan plan =
      monte_carlo_samples({{"r", 1e3, 0.05, ParamDist::Kind::kGaussian}}, 512, 7);
  double sum = 0.0;
  double lo = 1e308;
  double hi = -1e308;
  for (const double v : plan.values) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(sum / 512.0, 1e3, 1e3 * 0.05 * 0.2);  // mean within sigma/5
  EXPECT_LT(lo, 1e3 * 0.97);
  EXPECT_GT(hi, 1e3 * 1.03);
}

TEST(ParamSamplePlan, MonteCarloUniformStaysInRange) {
  const ParamSamplePlan plan =
      monte_carlo_samples({{"r", 100.0, 0.1, ParamDist::Kind::kUniform}}, 256, 3);
  for (const double v : plan.values) {
    EXPECT_GE(v, 90.0 - 1e-9);
    EXPECT_LE(v, 110.0 + 1e-9);
  }
}

TEST(ParamSamplePlan, MonteCarloValidation) {
  EXPECT_THROW((void)monte_carlo_samples({}, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)monte_carlo_samples({{"r", 1.0, 0.1}}, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)monte_carlo_samples({{"r", 1.0, -0.1}}, 4, 0), std::invalid_argument);
}

// --- The sweep engine -------------------------------------------------------

constexpr const char* kRcNetlist = R"(
.param r=1k c=1n
R1 in out {r}
C1 out 0 {c}
.end
)";

TransferSpec rc_spec() {
  TransferSpec spec;
  spec.in_pos = "in";
  spec.out_pos = "out";
  return spec;
}

TEST(ParamSweep, RcLowpassMatchesTheAnalyticTransfer) {
  const netlist::NetlistTemplate tpl = netlist::parse_netlist_template(kRcNetlist);
  ParamSweepOptions options;
  options.spec = rc_spec();
  options.f_start_hz = 1e3;
  options.f_stop_hz = 1e6;
  options.points_per_decade = 3;
  const ParamSamplePlan plan = grid_samples({{"r", 500.0, 2000.0, 4, false}});

  const ParamSweepResult result = run_param_sweep(tpl, plan, options);
  ASSERT_EQ(result.names.size(), 1u);
  ASSERT_EQ(result.ok.size(), 4u);
  const std::size_t points = result.frequencies_hz.size();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(result.ok[i]);
    const double r = result.values[i];
    for (std::size_t k = 0; k < points; ++k) {
      const std::complex<double> s(0.0, 2.0 * kPi * result.frequencies_hz[k]);
      const std::complex<double> expected = 1.0 / (1.0 + s * r * 1e-9);
      const std::complex<double> got = result.response[i * points + k];
      EXPECT_NEAR(std::abs(got - expected), 0.0, 1e-9 * std::abs(expected))
          << "sample " << i << " point " << k;
    }
  }
  // Same structure at every sample: the baseline plan serves all of them.
  EXPECT_EQ(result.fresh_factorizations, 1u);
}

TEST(ParamSweep, UnknownParameterRejected) {
  const netlist::NetlistTemplate tpl = netlist::parse_netlist_template(kRcNetlist);
  ParamSweepOptions options;
  options.spec = rc_spec();
  EXPECT_THROW(
      (void)run_param_sweep(tpl, grid_samples({{"nope", 1, 2, 2, false}}), options),
      std::invalid_argument);
}

TEST(ParamSweep, SampleElaborationFailuresSurfaceAsParseErrors) {
  // r reaches 0 -> the {1/r}-style expression in the netlist divides by zero.
  const netlist::NetlistTemplate tpl = netlist::parse_netlist_template(
      ".param r=1k\nR1 in out {r}\nRd out 0 {1/(r/1k - 2)}\nC1 out 0 1n\n");
  ParamSweepOptions options;
  options.spec = rc_spec();
  const ParamSamplePlan plan = grid_samples({{"r", 2000.0, 2000.0, 1, false}});
  EXPECT_THROW((void)run_param_sweep(tpl, plan, options), netlist::ParseError);
}

TEST(ParamSweep, CancellationStopsTheSweep) {
  const netlist::NetlistTemplate tpl = netlist::parse_netlist_template(kRcNetlist);
  support::CancellationSource source;
  source.cancel();
  ParamSweepOptions options;
  options.spec = rc_spec();
  options.cancel = source.token();
  EXPECT_THROW((void)run_param_sweep(tpl, grid_samples({{"r", 1, 2, 4, false}}), options),
               support::CancelledError);
}

// --- µA741 Monte-Carlo: one symbolic plan, bit-identical at any thread count

/// The bundled µA741 with its compensation capacitor lifted to a .param
/// (the circuits::ua741() values are the nominals).
std::string parameterized_ua741() {
  const std::string flat = netlist::write_netlist(circuits::ua741());
  std::istringstream in(flat);
  std::ostringstream out;
  out << ".param ccomp=30p rload=2k\n";
  std::string line;
  bool replaced_cc = false;
  bool replaced_rl = false;
  while (std::getline(in, line)) {
    if (line.rfind("cc ", 0) == 0) {
      out << line.substr(0, line.rfind(' ')) << " {ccomp}\n";
      replaced_cc = true;
    } else if (line.rfind("rl ", 0) == 0) {
      out << line.substr(0, line.rfind(' ')) << " {rload}\n";
      replaced_rl = true;
    } else {
      out << line << '\n';
    }
  }
  EXPECT_TRUE(replaced_cc && replaced_rl) << "writer format changed?";
  return out.str();
}

TEST(ParamSweep, Ua741MonteCarloReusesOneSymbolicPlan) {
  const netlist::NetlistTemplate tpl =
      netlist::parse_netlist_template(parameterized_ua741());
  ParamSweepOptions options;
  options.spec = circuits::ua741_gain_spec();
  options.f_start_hz = 1.0;
  options.f_stop_hz = 1e6;
  options.points_per_decade = 1;
  const ParamSamplePlan plan = monte_carlo_samples(
      {{"ccomp", 30e-12, 0.1, ParamDist::Kind::kGaussian},
       {"rload", 2e3, 0.05, ParamDist::Kind::kGaussian}},
      256, 20260727);

  const ParamSweepResult result = run_param_sweep(tpl, plan, options);
  ASSERT_EQ(result.ok.size(), 256u);
  for (std::size_t i = 0; i < result.ok.size(); ++i) {
    EXPECT_TRUE(result.ok[i]) << "sample " << i;
  }
  // THE acceptance probe: 256 samples x 7 probe points ran on exactly one
  // Markowitz factorization — everything else was a plan replay.
  EXPECT_EQ(result.fresh_factorizations, 1u);
}

TEST(ParamSweep, Ua741MonteCarloBitIdenticalAcrossThreadCounts) {
  const netlist::NetlistTemplate tpl =
      netlist::parse_netlist_template(parameterized_ua741());
  ParamSweepOptions options;
  options.spec = circuits::ua741_gain_spec();
  options.f_start_hz = 1.0;
  options.f_stop_hz = 1e5;
  options.points_per_decade = 1;
  const ParamSamplePlan plan = monte_carlo_samples(
      {{"ccomp", 30e-12, 0.1, ParamDist::Kind::kGaussian}}, 64, 7);

  options.threads = 1;
  const ParamSweepResult serial = run_param_sweep(tpl, plan, options);
  for (const int threads : {2, 8}) {
    options.threads = threads;
    const ParamSweepResult parallel = run_param_sweep(tpl, plan, options);
    ASSERT_EQ(parallel.response.size(), serial.response.size());
    for (std::size_t i = 0; i < serial.response.size(); ++i) {
      // Bit-equality, not tolerance: identical plan, identical replays.
      EXPECT_EQ(serial.response[i].real(), parallel.response[i].real())
          << "threads=" << threads << " index " << i;
      EXPECT_EQ(serial.response[i].imag(), parallel.response[i].imag())
          << "threads=" << threads << " index " << i;
    }
    EXPECT_EQ(serial.values, parallel.values);
    EXPECT_EQ(serial.fresh_factorizations, parallel.fresh_factorizations);
  }
}

}  // namespace
}  // namespace symref::mna
