// Homogeneous nodal system and the cofactor evaluator (paper eqs. (7)-(11)).
#include "mna/nodal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "mna/ac.h"
#include "netlist/canonical.h"
#include "sparse/dense.h"
#include "sparse/lu.h"

namespace symref::mna {
namespace {

using Complex = std::complex<double>;

TEST(NodalSystem, RejectsNonCanonical) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_THROW(NodalSystem{c}, std::invalid_argument);
}

TEST(NodalSystem, DimensionAndCapCount) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(4));
  const NodalSystem system(ladder);
  EXPECT_EQ(system.dim(), 5);  // in + 4 stage nodes
  EXPECT_EQ(system.capacitor_count(), 4);
  EXPECT_EQ(system.order_bound(), 4);
}

TEST(NodalSystem, MatrixMatchesManualStamp) {
  netlist::Circuit c;
  c.add_conductance("g1", "a", "b", 1e-3);
  c.add_capacitor("c1", "b", "0", 1e-9);
  c.add_vccs("gm", "b", "0", "a", "0", 2e-3);
  const NodalSystem system(c);
  const Complex s(0.0, 1e6);
  const auto compressed = system.matrix(s, 1.0, 1.0).compress();
  const int ra = *system.row_of_node("a");
  const int rb = *system.row_of_node("b");
  EXPECT_EQ(compressed.at(ra, ra), Complex(1e-3, 0.0));
  EXPECT_EQ(compressed.at(ra, rb), Complex(-1e-3, 0.0));
  // (b,b): conductance of g1 + sC; (b,a): -g1 + gm.
  EXPECT_LT(std::abs(compressed.at(rb, rb) - (Complex(1e-3) + s * 1e-9)), 1e-18);
  EXPECT_EQ(compressed.at(rb, ra), Complex(-1e-3 + 2e-3, 0.0));
}

TEST(NodalSystem, ScalingMultipliesElementValues) {
  netlist::Circuit c;
  c.add_conductance("g1", "a", "0", 1e-3);
  c.add_capacitor("c1", "a", "0", 1e-12);
  const NodalSystem system(c);
  const double f = 1e9, g = 1e3;
  const auto scaled = system.matrix(Complex(0.0, 1.0), f, g).compress();
  const int ra = *system.row_of_node("a");
  EXPECT_LT(std::abs(scaled.at(ra, ra) - Complex(1e-3 * g, 1e-12 * f)), 1e-15);
}

TEST(NodalSystem, PatternedAssemblyMatchesTripletPath) {
  // The pattern-cached assembly must produce exactly the matrix the triplet
  // path builds (same layout, same values) at any sample point.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(6));
  const NodalSystem system(ladder);
  sparse::PatternedMatrix pattern(system.dim(), system.stamps());
  const double f = 2.7e9;
  const double g = 133.0;
  for (const Complex s : {Complex(0.31, 0.95), Complex(-0.7, 0.7), Complex(0.99, -0.14)}) {
    const sparse::CompressedMatrix& cached = pattern.assemble(s, f, g);
    const sparse::CompressedMatrix fresh = system.matrix(s, f, g).compress();
    ASSERT_EQ(cached.dim, fresh.dim);
    ASSERT_EQ(cached.row_start, fresh.row_start);
    ASSERT_EQ(cached.cols, fresh.cols);
    for (std::size_t k = 0; k < fresh.values.size(); ++k) {
      EXPECT_EQ(cached.values[k], fresh.values[k]) << k;
    }
  }
}

TEST(CofactorEvaluator, RepeatedEvaluationMatchesFreshEvaluator) {
  // The evaluator reuses its factorization plan across points; every sample
  // must agree with a cold evaluator to working precision.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(5));
  const NodalSystem system(ladder);
  const auto spec = TransferSpec::transimpedance("in", "n5");
  const CofactorEvaluator warm(system, spec);
  for (const Complex s : {Complex(0.31, 0.95), Complex(-0.7, 0.7), Complex(0.99, -0.14)}) {
    const auto cached = warm.evaluate(s, 2e9, 50.0);
    const CofactorEvaluator cold(system, spec);
    const auto fresh = cold.evaluate(s, 2e9, 50.0);
    ASSERT_TRUE(cached.ok);
    ASSERT_TRUE(fresh.ok);
    const auto num_difference = (cached.numerator - fresh.numerator).abs();
    const auto den_difference = (cached.denominator - fresh.denominator).abs();
    EXPECT_LT((num_difference / fresh.numerator.abs()).to_double(), 1e-12);
    EXPECT_LT((den_difference / fresh.denominator.abs()).to_double(), 1e-12);
  }
}

TEST(CofactorEvaluator, TransimpedanceDenominatorIsDeterminant) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const NodalSystem system(ladder);
  const auto spec = TransferSpec::transimpedance("in", "n3");
  const CofactorEvaluator evaluator(system, spec);
  EXPECT_EQ(evaluator.denominator_degree(), system.dim());
  EXPECT_EQ(evaluator.numerator_degree(), system.dim() - 1);

  const Complex s(0.3, 0.7);
  const auto sample = evaluator.evaluate(s, 1.0, 1.0);
  ASSERT_TRUE(sample.ok);
  sparse::DenseLu dense;
  ASSERT_TRUE(dense.factor(system.matrix(s, 1.0, 1.0)));
  const Complex det = dense.determinant().to_complex();
  EXPECT_LT(std::abs(sample.denominator.to_complex() - det), 1e-9 * std::abs(det));
}

TEST(CofactorEvaluator, VoltageGainMatchesAcSimulator) {
  // N/D from the cofactor formulation must equal the full-MNA transfer of
  // the original circuit (with its V-source input) at any s.
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const netlist::Circuit canonical = netlist::canonicalize(ladder);
  const NodalSystem system(canonical);
  const auto spec = circuits::rc_ladder_spec(4);
  const CofactorEvaluator evaluator(system, spec);
  const AcSimulator sim(ladder);
  for (const Complex s : {Complex(0.0, 1e5), Complex(1e4, 2e5), Complex(-3e4, 1e6)}) {
    const auto sample = evaluator.evaluate(s, 1.0, 1.0);
    ASSERT_TRUE(sample.ok);
    const Complex h_cof = (sample.numerator / sample.denominator).to_complex();
    const Complex h_sim = sim.transfer_s(spec, s);
    EXPECT_LT(std::abs(h_cof - h_sim), 1e-9 * std::abs(h_sim));
  }
}

TEST(CofactorEvaluator, DifferentialGainOnOta) {
  const netlist::Circuit ota = circuits::ota_fig1();
  const netlist::Circuit canonical = netlist::canonicalize(ota);
  const NodalSystem system(canonical);
  const auto spec = circuits::ota_fig1_gain_spec();
  const CofactorEvaluator evaluator(system, spec);
  const AcSimulator sim(ota);
  const Complex s(0.0, 2.0 * M_PI * 1e5);
  const auto sample = evaluator.evaluate(s, 1.0, 1.0);
  ASSERT_TRUE(sample.ok);
  const Complex h_cof = (sample.numerator / sample.denominator).to_complex();
  const Complex h_sim = sim.transfer_s(spec, s);
  EXPECT_LT(std::abs(h_cof - h_sim), 1e-8 * std::abs(h_sim));
}

TEST(CofactorEvaluator, HomogeneousScalingRelation) {
  // Paper eq. (11): with element scaling c->f*c, g->g*g, the sampled
  // polynomial values obey D'(s) = sum p_i f^i g^(M-i) s^i. Check against
  // the unscaled samples via a third-degree ladder whose coefficients we can
  // recover by interpolation at 4 points... simpler: verify the determinant
  // relation D'(s) = g^M * D(f/g * s) for the pure-nodal matrix.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const NodalSystem system(ladder);
  const auto spec = TransferSpec::transimpedance("in", "n3");
  const CofactorEvaluator evaluator(system, spec);

  const double f = 1e7, g = 1e2;
  const Complex s(0.4, 0.9);
  const auto scaled = evaluator.evaluate(s, f, g);
  // D'(s) = det(g*G + s f*C) = g^M det(G + (f/g) s C) = g^M D((f/g) s).
  const auto unscaled = evaluator.evaluate(s * (f / g), 1.0, 1.0);
  ASSERT_TRUE(scaled.ok);
  ASSERT_TRUE(unscaled.ok);
  const auto g_power =
      numeric::ScaledDouble::pow(numeric::ScaledDouble(g), system.dim());
  const auto expected = unscaled.denominator * numeric::ScaledComplex(g_power);
  const auto difference = (scaled.denominator - expected).abs();
  EXPECT_LT((difference / expected.abs()).to_double(), 1e-9);
}

TEST(CofactorEvaluator, RejectsDegenerateInputPair) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(2));
  const NodalSystem system(ladder);
  EXPECT_THROW(CofactorEvaluator(system, TransferSpec::voltage_gain("in", "n1", "in")),
               std::invalid_argument);
}

TEST(CofactorEvaluator, RejectsUnknownNode) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(2));
  const NodalSystem system(ladder);
  EXPECT_THROW(CofactorEvaluator(system, TransferSpec::voltage_gain("in", "bogus")),
               std::invalid_argument);
}

}  // namespace
}  // namespace symref::mna
