// AC simulator: analytic transfer functions, sweeps, phase unwrapping.
#include "mna/ac.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuits/filters.h"
#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "mna/errors.h"

namespace symref::mna {
namespace {

TEST(AcSimulator, RcLowpassMatchesAnalytic) {
  netlist::Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const AcSimulator sim(c);
  const auto spec = TransferSpec::voltage_gain("in", "out");
  for (const double freq : {1e3, 1e5, 1.59e5, 1e6, 1e8}) {
    const std::complex<double> s(0.0, 2.0 * M_PI * freq);
    const std::complex<double> expected = 1.0 / (1.0 + s * 1e3 * 1e-9);
    EXPECT_LT(std::abs(sim.transfer(spec, freq) - expected), 1e-12 * std::abs(expected))
        << freq;
  }
}

TEST(AcSimulator, DifferentialDrive) {
  // Symmetric divider driven differentially: out = (v+ - v-)/2 midpoint.
  netlist::Circuit c;
  c.add_resistor("r1", "p", "mid", 1e3);
  c.add_resistor("r2", "mid", "n", 1e3);
  c.add_resistor("r3", "mid", "0", 1e6);
  const AcSimulator sim(c);
  const auto spec = TransferSpec::voltage_gain("p", "mid", "n", "0");
  const std::complex<double> h = sim.transfer(spec, 1e3);
  EXPECT_NEAR(h.real(), 0.0, 1e-3);  // midpoint of +-0.5 V is ~0
}

TEST(AcSimulator, TransimpedanceSpec) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 2e3);
  const AcSimulator sim(c);
  const auto spec = TransferSpec::transimpedance("a", "a");
  EXPECT_NEAR(std::abs(sim.transfer(spec, 1.0)), 2e3, 1e-9);
}

TEST(AcSimulator, SallenKeyAnalytic) {
  const double r1 = 10e3, r2 = 10e3, c1 = 10e-9, c2 = 1e-9;
  const netlist::Circuit sk = circuits::sallen_key(r1, r2, c1, c2);
  const AcSimulator sim(sk);
  const auto spec = circuits::sallen_key_spec();
  for (const double freq : {1e2, 1e3, 5e3, 1e4, 1e5}) {
    const std::complex<double> s(0.0, 2.0 * M_PI * freq);
    const std::complex<double> expected =
        1.0 / (1.0 + s * c2 * (r1 + r2) + s * s * r1 * r2 * c1 * c2);
    EXPECT_LT(std::abs(sim.transfer(spec, freq) - expected), 1e-9 * std::abs(expected))
        << freq;
  }
}

TEST(AcSimulator, TowThomasLowpassPeakNearF0) {
  const netlist::Circuit tt = circuits::tow_thomas(10e3, 5.0, 1.0);
  const AcSimulator sim(tt);
  const auto spec = circuits::tow_thomas_lowpass_spec();
  const double g_dc = std::abs(sim.transfer(spec, 10.0));
  const double g_f0 = std::abs(sim.transfer(spec, 10e3));
  const double g_hi = std::abs(sim.transfer(spec, 1e6));
  EXPECT_NEAR(g_dc, 1.0, 1e-2);        // unity DC gain
  EXPECT_NEAR(g_f0 / g_dc, 5.0, 0.1);  // Q-fold peaking at f0
  EXPECT_LT(g_hi, 1e-2);               // -40 dB/dec rolloff
}

TEST(AcSimulator, LogFrequencyGrid) {
  const auto grid = log_frequency_grid(1.0, 1e6, 2);
  EXPECT_GE(grid.size(), 13u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_NEAR(grid.back(), 1e6, 1e-6);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
  EXPECT_THROW(log_frequency_grid(0.0, 1e3, 2), std::invalid_argument);
  EXPECT_THROW(log_frequency_grid(1e3, 1e2, 2), std::invalid_argument);
}

TEST(AcSimulator, BodePhaseUnwrapped) {
  // 5-stage RC ladder: total phase approaches -450 deg; unwrapping must not
  // fold it back into (-180, 180].
  const netlist::Circuit ladder = circuits::rc_ladder(5, 1e3, 1e-9);
  const AcSimulator sim(ladder);
  const auto bode = sim.bode(circuits::rc_ladder_spec(5), 1e2, 1e9, 5);
  EXPECT_LT(bode.back().phase_deg, -300.0);
  for (std::size_t i = 1; i < bode.size(); ++i) {
    EXPECT_LT(std::fabs(bode[i].phase_deg - bode[i - 1].phase_deg), 180.0) << i;
  }
}

TEST(AcSimulator, BodeSweepBitIdenticalToPerPointFactorization) {
  // The cached sweep replays the first point's factorization plan at every
  // later frequency; the replay executes the same operation sequence as a
  // full factorization, so the sweep must match per-point factorization
  // (a fresh simulator per point, i.e. the uncached path) bit for bit.
  const netlist::Circuit ladder = circuits::rc_ladder(8);
  const auto spec = circuits::rc_ladder_spec(8);
  const AcSimulator sim(ladder);
  const auto sweep = sim.bode(spec, 1e2, 1e8, 5);
  ASSERT_GE(sweep.size(), 2u);
  for (const BodePoint& point : sweep) {
    const AcSimulator fresh(ladder);  // cold cache: full factorization
    const std::complex<double> reference = fresh.transfer(spec, point.frequency_hz);
    EXPECT_EQ(point.value, reference) << point.frequency_hz;
  }
}

TEST(AcSimulator, BodeSweepBitIdenticalAcrossThreadCounts) {
  // Every point is an independent replay of the first point's plan (with a
  // throwaway re-factorization if its pivots degrade), and the dB/phase
  // reduction runs in frequency order on the caller — so the thread count
  // must not change a single bit. The µA741 sweep here is the acceptance
  // workload (161 points across 1 Hz .. 100 MHz at 20 points/decade).
  const netlist::Circuit ua = circuits::ua741();
  const auto spec = circuits::ua741_gain_spec();
  const AcSimulator serial_sim(ua);
  const auto serial = serial_sim.bode(spec, 1.0, 1e8, 20, /*threads=*/1);
  EXPECT_EQ(serial.size(), 161u);
  for (const int threads : {2, 8}) {
    const AcSimulator sim(ua);
    const auto parallel = sim.bode(spec, 1.0, 1e8, 20, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].value, serial[i].value) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(parallel[i].magnitude_db, serial[i].magnitude_db)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(parallel[i].phase_deg, serial[i].phase_deg)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(AcSimulator, ParallelSweepReusableAndCacheCoherent) {
  // A parallel sweep must leave the per-spec cache in a state where single
  // point queries and further sweeps still work and agree with cold-cache
  // results.
  const netlist::Circuit ladder = circuits::rc_ladder(8);
  const auto spec = circuits::rc_ladder_spec(8);
  const AcSimulator sim(ladder);
  const auto first = sim.bode(spec, 1e2, 1e8, 5, 4);
  const auto h = sim.transfer(spec, 12345.0);
  const AcSimulator fresh(ladder);
  EXPECT_EQ(h, fresh.transfer(spec, 12345.0));
  const auto second = sim.bode(spec, 1e2, 1e8, 5, 2);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].value, second[i].value) << i;
  }
}

TEST(AcSimulator, SpecChangeInvalidatesSweepCache) {
  // Alternating specs on one simulator must match fresh-simulator results.
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const AcSimulator sim(ladder);
  const auto gain = circuits::rc_ladder_spec(4);
  const auto trans = TransferSpec::transimpedance("in", "n4");
  for (const double f : {1e3, 1e5, 1e7}) {
    const auto h_gain = sim.transfer(gain, f);
    const auto h_trans = sim.transfer(trans, f);
    const AcSimulator fresh_gain(ladder);
    const AcSimulator fresh_trans(ladder);
    EXPECT_EQ(h_gain, fresh_gain.transfer(gain, f)) << f;
    EXPECT_EQ(h_trans, fresh_trans.transfer(trans, f)) << f;
  }
}

TEST(AcSimulator, MagnitudeDbSaturatesAtZero) {
  EXPECT_DOUBLE_EQ(magnitude_db({0.0, 0.0}), -400.0);
  EXPECT_NEAR(magnitude_db({10.0, 0.0}), 20.0, 1e-12);
  EXPECT_NEAR(phase_deg({0.0, 1.0}), 90.0, 1e-12);
}

TEST(AcSimulator, UnknownNodeThrowsSpecError) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 1.0);
  const AcSimulator sim(c);
  // The typed exception is what the api boundary maps to kInvalidSpec.
  EXPECT_THROW(sim.transfer(TransferSpec::voltage_gain("a", "missing"), 1.0), SpecError);
}

}  // namespace
}  // namespace symref::mna
