// Full MNA assembler: stamps, auxiliary branches, excitation.
#include "mna/assembler.h"

#include <gtest/gtest.h>

#include <complex>

#include "sparse/lu.h"

namespace symref::mna {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> solve(const netlist::Circuit& circuit, Complex s) {
  const MnaAssembler assembler(circuit);
  sparse::SparseLu lu;
  EXPECT_TRUE(lu.factor(assembler.matrix(s)));
  std::vector<Complex> x = assembler.excitation();
  lu.solve(x);
  return x;
}

TEST(Assembler, ResistiveDivider) {
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 10.0);
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_resistor("r2", "out", "0", 1e3);
  const MnaAssembler assembler(c);
  EXPECT_EQ(assembler.dim(), 3);  // two nodes + one branch current
  const auto x = solve(c, Complex(0.0, 0.0));
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("out"))].real(), 5.0, 1e-12);
  // Branch current: 10V across 2k = 5 mA, flowing out of the source's + node.
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.branch_index("v1"))].real(), -5e-3,
              1e-12);
}

TEST(Assembler, CurrentSourceExcitation) {
  netlist::Circuit c;
  c.add_isource("i1", "0", "a", 1e-3);  // pushes current into node a
  c.add_resistor("r1", "a", "0", 2e3);
  const MnaAssembler assembler(c);
  const auto x = solve(c, Complex(0.0, 0.0));
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("a"))].real(), 2.0, 1e-12);
}

TEST(Assembler, RcLowpassAtCornerFrequency) {
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const MnaAssembler assembler(c);
  const double w0 = 1.0 / (1e3 * 1e-9);
  const auto x = solve(c, Complex(0.0, w0));
  const Complex vout = x[static_cast<std::size_t>(*assembler.node_index("out"))];
  EXPECT_NEAR(std::abs(vout), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::arg(vout), -M_PI / 4.0, 1e-12);
}

TEST(Assembler, InductorBranch) {
  // RL divider: v(out)/v(in) = sL/(R+sL); at w = R/L magnitude 1/sqrt(2).
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_resistor("r1", "in", "out", 100.0);
  c.add_inductor("l1", "out", "0", 1e-3);
  const MnaAssembler assembler(c);
  EXPECT_TRUE(assembler.branch_index("l1").has_value());
  const auto x = solve(c, Complex(0.0, 100.0 / 1e-3));
  EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(*assembler.node_index("out"))]),
              1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Assembler, VccsStampSign) {
  // SPICE convention: G out 0 in 0 gm draws gm*v(in) OUT of node `out`.
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_vccs("g1", "out", "0", "in", "0", 1e-3);
  c.add_resistor("rl", "out", "0", 1e3);
  const MnaAssembler assembler(c);
  const auto x = solve(c, Complex(0.0, 0.0));
  // KCL at out: gm*v(in) + v(out)/RL = 0 -> v(out) = -1.
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("out"))].real(), -1.0, 1e-12);
}

TEST(Assembler, VcvsGain) {
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_vcvs("e1", "out", "0", "in", "0", 7.5);
  c.add_resistor("rl", "out", "0", 1e3);
  const MnaAssembler assembler(c);
  const auto x = solve(c, Complex(0.0, 0.0));
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("out"))].real(), 7.5, 1e-12);
}

TEST(Assembler, CccsMirrorsBranchCurrent) {
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_resistor("r1", "in", "0", 1e3);  // i(v1) = -1 mA (out of + terminal)
  c.add_cccs("f1", "out", "0", "v1", 2.0);
  c.add_resistor("rl", "out", "0", 1e3);
  const MnaAssembler assembler(c);
  const auto x = solve(c, Complex(0.0, 0.0));
  // i(f1) = 2 * i(v1) = -2 mA drawn from out -> v(out) = +2.
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("out"))].real(), 2.0, 1e-12);
}

TEST(Assembler, CcvsTransresistance) {
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_resistor("r1", "in", "0", 1e3);
  c.add_ccvs("h1", "out", "0", "v1", 500.0);
  c.add_resistor("rl", "out", "0", 1e3);
  const MnaAssembler assembler(c);
  const auto x = solve(c, Complex(0.0, 0.0));
  // v(out) = 500 * i(v1) = 500 * (-1 mA) = -0.5 V.
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("out"))].real(), -0.5, 1e-12);
}

TEST(Assembler, IdealOpampInverter) {
  netlist::Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_resistor("r1", "in", "x", 1e3);
  c.add_resistor("r2", "x", "out", 2e3);
  c.add_opamp("a1", "out", "0", "x");  // + input grounded, - input at x
  const MnaAssembler assembler(c);
  const auto x = solve(c, Complex(0.0, 0.0));
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("out"))].real(), -2.0, 1e-12);
  EXPECT_NEAR(x[static_cast<std::size_t>(*assembler.node_index("x"))].real(), 0.0, 1e-12);
}

TEST(Assembler, FloatingNodesExcluded) {
  netlist::Circuit c;
  c.node("unused");
  c.add_resistor("r1", "a", "0", 1e3);
  const MnaAssembler assembler(c);
  EXPECT_EQ(assembler.dim(), 1);
  EXPECT_FALSE(assembler.node_index("unused").has_value());
}

TEST(Assembler, CccsWithoutBranchThrows) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_cccs("f1", "b", "0", "r1", 2.0);
  c.add_resistor("r2", "b", "0", 1e3);
  const MnaAssembler assembler(c);
  EXPECT_THROW(assembler.matrix({0.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace symref::mna
