// support::WorkQueue: FIFO task execution on persistent workers.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace symref::support {
namespace {

TEST(WorkQueue, DestructorDiscardsUnstartedTasksWithoutHanging) {
  std::atomic<int> started{0};
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  {
    WorkQueue queue(1);
    EXPECT_EQ(queue.workers(), 1);
    // Occupy the only worker until released, then pile up pending tasks.
    EXPECT_TRUE(queue.post([&] {
      started.fetch_add(1);
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    }));
    while (started.load() == 0) std::this_thread::yield();
    for (int i = 0; i < 10; ++i) queue.post([&] { started.fetch_add(1); });
    {
      const std::lock_guard<std::mutex> lock(mutex);
      release = true;
    }
    cv.notify_all();
  }  // ~WorkQueue: discards the (still mostly) pending tasks, joins cleanly
  // The blocked task ran; the pile-up was discarded except for whatever the
  // worker managed to pop between release and the destructor's stop flag.
  EXPECT_GE(started.load(), 1);
  EXPECT_LE(started.load(), 11);
}

TEST(WorkQueue, DrainsWhenCallerWaits) {
  // Declared before the queue: the queue's destructor joins its workers
  // while these are still alive (a worker can be inside cv.notify_all()).
  std::atomic<int> count{0};
  std::mutex mutex;
  std::condition_variable cv;
  WorkQueue queue(3);
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    queue.post([&] {
      if (count.fetch_add(1) + 1 == kTasks) {
        const std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return count.load() == kTasks; }));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, TasksRunOffTheCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id worker;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  WorkQueue queue(1);  // after the cv: joined before the cv is destroyed
  queue.post([&] {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      worker = std::this_thread::get_id();
      done = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return done; }));
  EXPECT_NE(worker, caller);
}

TEST(WorkQueue, DefaultWorkerCountIsHardware) {
  WorkQueue queue;
  EXPECT_EQ(queue.workers(), ThreadPool::hardware_threads());
}

TEST(WorkQueue, BoundedQueueShedsLoadWhenFull) {
  std::atomic<int> ran{0};
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  WorkQueue queue(1, /*max_pending=*/2);
  EXPECT_EQ(queue.max_pending(), 2u);
  // Occupy the worker so subsequent posts stay pending.
  std::atomic<bool> blocked{false};
  ASSERT_EQ(queue.try_post([&] {
              blocked.store(true);
              std::unique_lock<std::mutex> lock(mutex);
              cv.wait(lock, [&] { return release; });
              ran.fetch_add(1);
            }),
            WorkQueue::PostResult::kAccepted);
  while (!blocked.load()) std::this_thread::yield();
  // Two fit the bound; the third is shed.
  EXPECT_EQ(queue.try_post([&] { ran.fetch_add(1); }), WorkQueue::PostResult::kAccepted);
  EXPECT_EQ(queue.try_post([&] { ran.fetch_add(1); }), WorkQueue::PostResult::kAccepted);
  EXPECT_EQ(queue.try_post([&] { ran.fetch_add(1); }), WorkQueue::PostResult::kFull);
  EXPECT_FALSE(queue.post([&] { ran.fetch_add(1); }));
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  // Accepted tasks drain; shed ones never run.
  while (ran.load() < 3) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 3);
}

TEST(WorkQueue, UnboundedByDefault) {
  WorkQueue queue(1);
  EXPECT_EQ(queue.max_pending(), 0u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.try_post([&] { ran.fetch_add(1); }), WorkQueue::PostResult::kAccepted);
  }
  while (ran.load() < 100) std::this_thread::yield();
}

}  // namespace
}  // namespace symref::support
