// support::LruCache: recency order, eviction accounting, unbounded mode.
#include "support/lru_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace symref::support {
namespace {

TEST(LruCache, FindMissesThenHitsAfterInsert) {
  LruCache<std::string, int> cache(4);
  EXPECT_EQ(cache.find("a"), nullptr);
  EXPECT_EQ(cache.insert("a", 1), 0u);
  ASSERT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(*cache.find("a"), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);
  cache.insert("a", 1);
  cache.insert("b", 2);
  // Touch "a": "b" becomes the eviction candidate.
  ASSERT_NE(cache.find("a"), nullptr);
  EXPECT_EQ(cache.insert("c", 3), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
}

TEST(LruCache, OverwriteDoesNotEvict) {
  LruCache<std::string, int> cache(2);
  cache.insert("a", 1);
  cache.insert("b", 2);
  EXPECT_EQ(cache.insert("a", 10), 0u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.find("a"), 10);
  // "b" was least recently used before the overwrite touched "a".
  EXPECT_EQ(cache.insert("c", 3), 1u);
  EXPECT_EQ(cache.find("b"), nullptr);
}

TEST(LruCache, ZeroCapacityIsUnbounded) {
  LruCache<int, int> cache(0);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(cache.insert(i, i), 0u);
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_NE(cache.find(0), nullptr);
}

}  // namespace
}  // namespace symref::support
