// support::FaultInjector: deterministic, configurable fault-site registry.
//
// The injector is process-global, so every test restores the disarmed state
// before and after itself.
#include "support/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace symref::support {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, DisarmedSitesNeverFail) {
  EXPECT_FALSE(fault("lu_pivot"));
  EXPECT_FALSE(fault("no_such_site"));
  EXPECT_TRUE(FaultInjector::instance().stats().empty());
}

TEST_F(FaultInjectorTest, ProbabilityOneAlwaysFails) {
  ASSERT_TRUE(FaultInjector::instance().configure("lu_pivot:1"));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(fault("lu_pivot"));
  // Only the armed site fails; others stay untouched.
  EXPECT_FALSE(fault("json_parse"));
}

TEST_F(FaultInjectorTest, ProbabilityZeroNeverFails) {
  ASSERT_TRUE(FaultInjector::instance().configure("lu_pivot:0"));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(fault("lu_pivot"));
}

TEST_F(FaultInjectorTest, SameSeedReproducesTheSameFaultSequence) {
  FaultInjector& injector = FaultInjector::instance();
  const auto draw_sequence = [&](const std::string& spec) {
    EXPECT_TRUE(injector.configure(spec));
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) fired.push_back(fault("socket_io"));
    return fired;
  };
  const std::vector<bool> first = draw_sequence("socket_io:0.3:42");
  const std::vector<bool> second = draw_sequence("socket_io:0.3:42");
  EXPECT_EQ(first, second);
  // A different seed decorrelates (with 200 draws at p=0.3, identical
  // sequences from independent streams are practically impossible).
  const std::vector<bool> other = draw_sequence("socket_io:0.3:43");
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectorTest, StatsCountQueriesAndInjections) {
  FaultInjector& injector = FaultInjector::instance();
  ASSERT_TRUE(injector.configure("work_queue:1,json_parse:0"));
  for (int i = 0; i < 7; ++i) (void)fault("work_queue");
  for (int i = 0; i < 3; ++i) (void)fault("json_parse");
  const std::vector<FaultInjector::SiteStats> stats = injector.stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const FaultInjector::SiteStats& site : stats) {
    if (site.site == "work_queue") {
      EXPECT_EQ(site.queries, 7u);
      EXPECT_EQ(site.injected, 7u);
      EXPECT_DOUBLE_EQ(site.probability, 1.0);
    } else {
      EXPECT_EQ(site.site, "json_parse");
      EXPECT_EQ(site.queries, 3u);
      EXPECT_EQ(site.injected, 0u);
    }
  }
}

TEST_F(FaultInjectorTest, ApproximatesTheConfiguredRate) {
  ASSERT_TRUE(FaultInjector::instance().configure("store_io:0.25:7"));
  int fired = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) fired += fault("store_io") ? 1 : 0;
  // 0.25 +- generous slack; deterministic, so this can never flake.
  EXPECT_GT(fired, kDraws / 8);
  EXPECT_LT(fired, kDraws / 2);
}

TEST_F(FaultInjectorTest, RejectsMalformedSpecsAndKeepsTheOldConfig) {
  FaultInjector& injector = FaultInjector::instance();
  ASSERT_TRUE(injector.configure("lu_alloc:1"));
  std::string error;
  EXPECT_FALSE(injector.configure("lu_alloc", &error));       // missing prob
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(injector.configure("lu_alloc:2", &error));     // prob > 1
  EXPECT_FALSE(injector.configure("lu_alloc:-0.5", &error));  // prob < 0
  EXPECT_FALSE(injector.configure("lu_alloc:x", &error));     // not a number
  EXPECT_FALSE(injector.configure(":0.5", &error));           // empty site
  EXPECT_FALSE(injector.configure("a:0.5:1:9", &error));      // extra field
  // The original configuration survived every rejected spec.
  EXPECT_TRUE(fault("lu_alloc"));
}

TEST_F(FaultInjectorTest, EmptySpecAndResetDisarm) {
  FaultInjector& injector = FaultInjector::instance();
  ASSERT_TRUE(injector.configure("lu_pivot:1"));
  EXPECT_TRUE(fault("lu_pivot"));
  ASSERT_TRUE(injector.configure(""));
  EXPECT_FALSE(fault("lu_pivot"));

  ASSERT_TRUE(injector.configure("lu_pivot:1"));
  injector.reset();
  EXPECT_FALSE(fault("lu_pivot"));
  EXPECT_TRUE(injector.stats().empty());
}

}  // namespace
}  // namespace symref::support
