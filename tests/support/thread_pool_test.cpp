// ThreadPool: coverage, chunking, lanes, exceptions, determinism contract.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace symref::support {
namespace {

TEST(ThreadPool, SizeIncludesCaller) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
  ThreadPool hardware(0);
  EXPECT_GE(hardware.size(), 1);
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (const std::size_t count : {std::size_t{1}, std::size_t{7}, std::size_t{100},
                                    std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_for(count, [&](std::size_t begin, std::size_t end, int lane) {
        ASSERT_GE(lane, 0);
        ASSERT_LT(lane, pool.size());
        ASSERT_LT(begin, end);
        ASSERT_LE(end, count);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " count=" << count
                                     << " index=" << i;
      }
    }
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, IndexedWritesAreDeterministic) {
  // The determinism contract: outputs written by index do not depend on the
  // thread count. (Each slot's value depends only on its index here; real
  // workloads arrange the same property via per-lane state.)
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(512);
    pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = 1.0 / (1.0 + static_cast<double>(i));
      }
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  long long total = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<long long> partial(64, 0);
    pool.parallel_for(partial.size(), [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t i = begin; i < end; ++i) partial[i] = static_cast<long long>(i);
    });
    total += std::accumulate(partial.begin(), partial.end(), 0LL);
  }
  EXPECT_EQ(total, 50LL * (63 * 64 / 2));
}

TEST(ThreadPool, FirstExceptionPropagates) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t begin, std::size_t end, int) {
                            for (std::size_t i = begin; i < end; ++i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }
                          }),
        std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> hits{0};
    pool.parallel_for(10, [&](std::size_t begin, std::size_t end, int) {
      hits += static_cast<int>(end - begin);
    });
    EXPECT_EQ(hits.load(), 10);
  }
}

}  // namespace
}  // namespace symref::support
