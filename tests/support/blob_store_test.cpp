// support::BlobStore: crash-safe content-addressed persistence.
#include "support/blob_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "support/fault_injection.h"

namespace symref::support {
namespace {

namespace fs = std::filesystem;

class BlobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().reset();
    dir_ = fs::path(::testing::TempDir()) /
           ("blob_store_" + std::string(
                                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(BlobStoreTest, RoundTripsAndCreatesTheDirectory) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.ok()) << store.error();
  const std::string payload = "{\"type\":\"refgen\"}\nwith\nnewlines\x01and bytes";
  EXPECT_TRUE(store.put("abc123", payload));
  const auto got = store.get("abc123");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  const BlobStore::Stats stats = store.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(BlobStoreTest, MissOnAbsentKey) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store.get("never-written").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(BlobStoreTest, SurvivesReopenFromAnotherInstance) {
  {
    BlobStore store(dir_.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.put("key-1", "persisted across instances"));
  }
  BlobStore reopened(dir_.string());
  ASSERT_TRUE(reopened.ok());
  const auto got = reopened.get("key-1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "persisted across instances");
}

TEST_F(BlobStoreTest, OverwriteReplacesThePayload) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.put("k", "old"));
  ASSERT_TRUE(store.put("k", "new and longer"));
  const auto got = store.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "new and longer");
}

TEST_F(BlobStoreTest, CorruptPayloadIsQuarantinedAndRecomputable) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.put("victim", "pristine payload"));
  // Flip a payload byte on disk, past the header line.
  {
    std::fstream file(dir_ / "victim", std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file);
    std::string header;
    std::getline(file, header);
    const auto payload_start = file.tellg();
    file.seekp(payload_start);
    file.put('X');
  }
  EXPECT_FALSE(store.get("victim").has_value());
  EXPECT_EQ(store.stats().corrupt_quarantined, 1u);
  // Quarantined for postmortem, original name free for recompute.
  EXPECT_TRUE(fs::exists(dir_ / "victim.corrupt"));
  EXPECT_FALSE(fs::exists(dir_ / "victim"));
  EXPECT_TRUE(store.put("victim", "recomputed"));
  const auto got = store.get("victim");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "recomputed");
}

TEST_F(BlobStoreTest, TruncatedEntryIsQuarantined) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.put("short", "a payload that will be cut"));
  fs::resize_file(dir_ / "short", fs::file_size(dir_ / "short") - 5);
  EXPECT_FALSE(store.get("short").has_value());
  EXPECT_EQ(store.stats().corrupt_quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir_ / "short.corrupt"));
}

TEST_F(BlobStoreTest, GarbageHeaderIsQuarantined) {
  BlobStore store(dir_.string());
  {
    std::ofstream file(dir_ / "garbage", std::ios::binary);
    file << "not a refstore entry at all";
  }
  EXPECT_FALSE(store.get("garbage").has_value());
  EXPECT_EQ(store.stats().corrupt_quarantined, 1u);
}

TEST_F(BlobStoreTest, NoStrayTempFilesAfterWrites) {
  BlobStore store(dir_.string());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.put("k" + std::to_string(i), std::string(1000, 'x')));
  }
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().rfind(".tmp", 0), std::string::npos)
        << "stray temp file: " << entry.path();
  }
}

TEST_F(BlobStoreTest, RejectsBadKeys) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store.put("", "x"));
  EXPECT_FALSE(store.put(".hidden", "x"));
  EXPECT_FALSE(store.put("a/b", "x"));
  EXPECT_FALSE(store.put("a b", "x"));
  EXPECT_FALSE(store.get("a/b").has_value());
}

TEST_F(BlobStoreTest, UnusableDirectoryDegradesToPassThrough) {
  // A regular file where the directory should be.
  const fs::path blocker = fs::path(::testing::TempDir()) / "blob_store_blocker";
  {
    std::ofstream file(blocker);
    file << "in the way";
  }
  BlobStore store(blocker.string());
  EXPECT_FALSE(store.ok());
  EXPECT_FALSE(store.error().empty());
  EXPECT_FALSE(store.put("k", "x"));
  EXPECT_FALSE(store.get("k").has_value());
  fs::remove(blocker);
}

TEST_F(BlobStoreTest, InjectedStoreIoFaultFailsPutAndMissesGet) {
  BlobStore store(dir_.string());
  ASSERT_TRUE(store.put("k", "payload"));
  ASSERT_TRUE(FaultInjector::instance().configure("store_io:1"));
  EXPECT_FALSE(store.put("k2", "lost"));
  EXPECT_FALSE(store.get("k").has_value());
  FaultInjector::instance().reset();
  // The store is fully usable again once the fault clears.
  const auto got = store.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload");
}

TEST(BlobStoreHash, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(hex64(0xcbf29ce484222325ull), "cbf29ce484222325");
  EXPECT_EQ(hex64(0x1ull), "0000000000000001");
}

}  // namespace
}  // namespace symref::support
