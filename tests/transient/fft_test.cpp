// FFT cross-validation: the time-domain and frequency-domain engines must
// agree. A steady-state sinusoidal transient of the µA741 small-signal deck
// is pushed through numeric::dft, and the drive-frequency bin's magnitude
// and phase are compared against mna::AcSimulator::transfer at the same
// frequency — two completely independent evaluation paths (companion-model
// time stepping vs complex phasor solve) meeting on one number.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <fstream>
#include <sstream>
#include <string>

#include "mna/ac.h"
#include "netlist/parser.h"
#include "numeric/dft.h"
#include "transient/transient.h"

namespace symref::transient {
namespace {

constexpr double kPi = 3.141592653589793238462643;

netlist::Circuit load_ua741() {
  const std::string path = std::string(SYMREF_SOURCE_DIR) + "/tools/data/ua741.cir";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing deck: " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return netlist::parse_netlist(text.str());
}

/// Phasor of `wave` at the drive frequency from the last full period of
/// `samples_per_period` uniform points: X_1 / (K/2), valid when the window
/// start is an exact multiple of the period.
std::complex<double> drive_bin_phasor(const std::vector<double>& wave,
                                      std::size_t samples_per_period) {
  std::vector<std::complex<double>> window(samples_per_period);
  // wave holds N + 1 points (t = 0 included), so the last full period that
  // STARTS on a period boundary is [N - spp, N) — not the trailing spp
  // points, which would rotate the bin phase by one sample (omega h).
  const std::size_t start = wave.size() - 1 - samples_per_period;
  for (std::size_t j = 0; j < samples_per_period; ++j) window[j] = wave[start + j];
  const std::vector<std::complex<double>> spectrum = numeric::dft(window);
  return spectrum[1] / (static_cast<double>(samples_per_period) / 2.0);
}

TEST(TransientFft, Ua741SteadyStateMatchesTheAcTransferAtTheDriveFrequency) {
  // AC reference: ideal voltage drive at inp, H(f) = V(vo) / V(inp).
  const netlist::Circuit ac_circuit = load_ua741();
  mna::AcSimulator simulator(ac_circuit);
  const double f_drive = 1e3;
  const std::complex<double> h_ac =
      simulator.transfer(mna::TransferSpec::voltage_gain("inp", "vo"), f_drive);

  // Time-domain run: the same deck with a 1 mV sine source driving inp.
  // 170 periods outlasts the dominant-pole startup transient (tau ~ 32 ms,
  // e^{-0.17 s / tau} ~ 5e-3); 64 steps per period keeps the trapezoidal
  // frequency warp at (omega h)^2 / 12 ~ 8e-4.
  netlist::Circuit c = load_ua741();
  const double amplitude = 1e-3;
  c.add_vsource("vin", "inp", "0", 0.0);
  netlist::Element* vin = c.mutable_element("vin");
  vin->waveform.kind = netlist::WaveformKind::kSin;
  vin->waveform.v2 = amplitude;
  vin->waveform.frequency = f_drive;

  constexpr std::size_t kPeriods = 170;
  constexpr std::size_t kSamplesPerPeriod = 64;
  TransientOptions o;
  o.method = Method::kTrapezoidal;
  o.tstop = static_cast<double>(kPeriods) / f_drive;
  o.tstep = 1.0 / (f_drive * static_cast<double>(kSamplesPerPeriod));
  o.adaptive = false;
  const TransientResult r = solve_transient(c, o);
  ASSERT_EQ(r.steps, static_cast<int>(kPeriods * kSamplesPerPeriod));

  // The window starts on a period boundary, so the bin phasor needs no
  // start-time rotation. The drive vin = A sin(wt) has phasor -jA (cosine
  // convention), and the output bin divided by it is the measured transfer.
  const std::complex<double> p_out =
      drive_bin_phasor(r.waveform_of("vo"), kSamplesPerPeriod);
  const std::complex<double> p_in(0.0, -amplitude);
  const std::complex<double> h_tran = p_out / p_in;

  // Magnitude within 2 %, phase within 1 degree: the residual startup
  // transient (~0.5 %) plus the trapezoidal warp (~0.1 %) sit well inside.
  EXPECT_NEAR(std::abs(h_tran) / std::abs(h_ac), 1.0, 0.02)
      << "|H_tran| = " << std::abs(h_tran) << ", |H_ac| = " << std::abs(h_ac);
  double phase_delta_deg =
      (std::arg(h_tran) - std::arg(h_ac)) * 180.0 / kPi;
  while (phase_delta_deg > 180.0) phase_delta_deg -= 360.0;
  while (phase_delta_deg < -180.0) phase_delta_deg += 360.0;
  EXPECT_NEAR(phase_delta_deg, 0.0, 1.0);

  // Sanity on the reference itself: with inn floating the single-ended
  // drive sees the deck's ~5 Hz dominant pole and a mid-band zero that
  // flattens the 1 kHz response near |H| ~ 7 (verified against the AC
  // engine's Bode sweep).
  EXPECT_GT(std::abs(h_ac), 1.0);
  EXPECT_LT(std::abs(h_ac), 100.0);

  // Plan-replay economics on a real deck: 10,880 steps, one step bucket,
  // three fresh factorizations total (bias + init + bucket).
  EXPECT_EQ(r.step_size_buckets, 1);
  EXPECT_LE(r.fresh_factorizations, 3u);
}

TEST(TransientFft, HarmonicsOfALinearCircuitStayAtTheNoiseFloor) {
  // A linear network cannot generate harmonics: every non-drive bin of the
  // steady-state window must sit orders of magnitude below the drive bin.
  netlist::Circuit c = load_ua741();
  c.add_vsource("vin", "inp", "0", 0.0);
  netlist::Element* vin = c.mutable_element("vin");
  vin->waveform.kind = netlist::WaveformKind::kSin;
  vin->waveform.v2 = 1e-3;
  vin->waveform.frequency = 1e3;

  constexpr std::size_t kSamplesPerPeriod = 64;
  TransientOptions o;
  o.tstop = 170.0 / 1e3;
  o.tstep = 1.0 / (1e3 * kSamplesPerPeriod);
  o.adaptive = false;
  const TransientResult r = solve_transient(c, o);

  const std::vector<double> wave = r.waveform_of("vo");
  std::vector<std::complex<double>> window(kSamplesPerPeriod);
  const std::size_t start = wave.size() - 1 - kSamplesPerPeriod;
  for (std::size_t j = 0; j < kSamplesPerPeriod; ++j) window[j] = wave[start + j];
  const std::vector<std::complex<double>> spectrum = numeric::dft(window);

  const double drive_mag = std::abs(spectrum[1]);
  ASSERT_GT(drive_mag, 0.0);
  for (std::size_t k = 2; k <= kSamplesPerPeriod / 2; ++k) {
    // The residual startup transient leaks a little into every bin; 1 % of
    // the fundamental is already far below any real harmonic distortion.
    EXPECT_LT(std::abs(spectrum[k]), 0.01 * drive_mag) << "bin " << k;
  }
}

}  // namespace
}  // namespace symref::transient
