// Transient integrator vs closed-form circuit theory: first-order RC/RL
// step responses, the three damping regimes of a series RLC, and a diode
// rectifier checked against a per-point scalar Newton solution of the diode
// equation. These are the golden references the integrator has to hit — any
// companion-model sign error, history-rollover bug or step-control defect
// shows up here as a tolerance violation, not a subtle drift.
#include "transient/transient.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "devices/models.h"
#include "netlist/parser.h"

namespace symref::transient {
namespace {

constexpr double kPi = 3.141592653589793238462643;

TransientOptions fixed_step(double tstop, double tstep, Method m = Method::kTrapezoidal) {
  TransientOptions o;
  o.tstop = tstop;
  o.tstep = tstep;
  o.adaptive = false;
  o.method = m;
  return o;
}

/// Largest |simulated - reference| over the run, skipping the first
/// `skip` points (methods with a startup step settle after a few points).
double max_error(const TransientResult& r, const std::string& node,
                 double (*reference)(double), std::size_t skip = 0) {
  const std::vector<double> wave = r.waveform_of(node);
  double worst = 0.0;
  for (std::size_t k = skip; k < r.times.size(); ++k) {
    worst = std::max(worst, std::fabs(wave[k] - reference(r.times[k])));
  }
  return worst;
}

// --- RC step response ------------------------------------------------------
//
// 10 V source, R = 1k, C = 1u starting from v(0) = 0 via .ic:
// v(t) = 10 * (1 - exp(-t / RC)), tau = 1 ms. The .ic formulation keeps the
// source constant, so there is no t = 0 discontinuity and the trapezoidal
// rule's O(h^2) accuracy applies from the very first step.

constexpr double kRcTau = 1e-3;

double rc_reference(double t) { return 10.0 * (1.0 - std::exp(-t / kRcTau)); }

netlist::Circuit rc_circuit() {
  return netlist::parse_netlist(
      "* rc step\n"
      "vin in 0 dc 10\n"
      "r1 in out 1k\n"
      "c1 out 0 1u\n"
      ".ic v(out)=0\n"
      ".end\n");
}

TEST(TransientAnalytic, RcChargesWithTheExactExponential) {
  const netlist::Circuit c = rc_circuit();
  const TransientResult r = solve_transient(c, fixed_step(5e-3, 5e-6));
  ASSERT_EQ(r.steps, 1000);
  ASSERT_EQ(r.times.size(), 1001u);
  EXPECT_EQ(r.times.front(), 0.0);
  EXPECT_EQ(r.times.back(), 5e-3);
  // .ic pinned the start; the end is 5 tau from it.
  EXPECT_NEAR(r.waveform_of("out").front(), 0.0, 1e-12);
  // Trapezoidal LTE: h/tau = 5e-3 per step -> global error ~ (h/tau)^2 / 12.
  EXPECT_LT(max_error(r, "out", rc_reference), 10.0 * 3e-6);
  EXPECT_EQ(r.lte_rejections, 0);
  EXPECT_EQ(r.newton_iterations, 0) << "linear circuit must not run Newton";
}

TEST(TransientAnalytic, RcBdf1ConvergesAtFirstOrder) {
  const netlist::Circuit c = rc_circuit();
  const TransientResult coarse =
      solve_transient(c, fixed_step(5e-3, 2e-5, Method::kBdf1));
  const TransientResult fine =
      solve_transient(c, fixed_step(5e-3, 1e-5, Method::kBdf1));
  const double e_coarse = max_error(coarse, "out", rc_reference);
  const double e_fine = max_error(fine, "out", rc_reference);
  // First order: halving h should roughly halve the error.
  EXPECT_GT(e_coarse, 1e-4);
  EXPECT_NEAR(e_coarse / e_fine, 2.0, 0.3);
}

TEST(TransientAnalytic, RcBdf2ConvergesAtSecondOrder) {
  const netlist::Circuit c = rc_circuit();
  const TransientResult coarse =
      solve_transient(c, fixed_step(5e-3, 2e-5, Method::kBdf2));
  const TransientResult fine =
      solve_transient(c, fixed_step(5e-3, 1e-5, Method::kBdf2));
  const double e_coarse = max_error(coarse, "out", rc_reference, 4);
  const double e_fine = max_error(fine, "out", rc_reference, 4);
  // Second order: halving h should cut the error by about four.
  EXPECT_NEAR(e_coarse / e_fine, 4.0, 0.8);
}

TEST(TransientAnalytic, RcAdaptiveMatchesTheExponentialAndReportsBuckets) {
  const netlist::Circuit c = rc_circuit();
  TransientOptions o;
  o.tstop = 5e-3;
  o.tstep = 5e-5;  // h_ref; LTE control may subdivide dyadically
  o.adaptive = true;
  const TransientResult r = solve_transient(c, o);
  EXPECT_LT(max_error(r, "out", rc_reference), 10.0 * 2e-3);
  EXPECT_GE(r.step_size_buckets, 1);
  // Every bucket was recorded exactly once, plus the t = 0 bias plan and the
  // consistent-initialization plan.
  EXPECT_EQ(r.fresh_factorizations, static_cast<std::uint64_t>(r.step_size_buckets) + 2u);
}

// --- RL step response ------------------------------------------------------
//
// A 1 V step (PULSE with a fast but finite edge) into R = 100 in series with
// L = 10 mH: i(t) = (1 / R) * (1 - exp(-t R / L)), tau = 0.1 ms. The edge is
// resolved by the steps themselves (rise = one step), so only the first few
// points carry the O(h) edge error; it decays with exp(-t / tau).

TEST(TransientAnalytic, RlCurrentRisesWithTheExactExponential) {
  const netlist::Circuit c = netlist::parse_netlist(
      "* rl step\n"
      "vin in 0 dc 0 pulse(0 1 0 1u 1u 1 2)\n"
      "r1 in mid 100\n"
      "l1 mid 0 10m\n"
      ".end\n");
  const TransientResult r = solve_transient(c, fixed_step(5e-4, 1e-6));
  ASSERT_EQ(r.branch_names.size(), 2u);  // vin and l1 carry branch currents
  // The inductor current is the branch unknown; compare from 10 points in
  // (the PULSE edge finishes at t = 1 us, plus the startup transient of the
  // discrete edge).
  const auto it = std::find(r.branch_names.begin(), r.branch_names.end(), "l1");
  ASSERT_NE(it, r.branch_names.end());
  const std::size_t branch =
      r.node_names.size() + static_cast<std::size_t>(it - r.branch_names.begin());
  double worst = 0.0;
  for (std::size_t k = 10; k < r.times.size(); ++k) {
    const double t = r.times[k];
    // Reference shifted by half the edge time (the ramp's centroid).
    const double ref = (1.0 / 100.0) * (1.0 - std::exp(-(t - 0.5e-6) * 100.0 / 10e-3));
    worst = std::max(worst, std::fabs(r.states[k][branch] - ref));
  }
  EXPECT_LT(worst, 1e-2 * (1.0 / 100.0));
}

// --- Series RLC: the three damping regimes ---------------------------------
//
// A capacitor charged to v(0) = 1 V discharging through a series R-L loop:
//   L C v'' + R C v' + v = 0,  v(0) = 1,  v'(0) = -i_L(0)/C = 0.
// With L = 1 mH and C = 1 uF: omega0 = 1 / sqrt(LC) ~ 31.6 krad/s and the
// critical resistance R = 2 sqrt(L / C) = 63.25 ohms.

constexpr double kRlcL = 1e-3;
constexpr double kRlcC = 1e-6;

netlist::Circuit rlc_circuit(double r_ohms) {
  netlist::Circuit c;
  c.add_capacitor("c1", "top", "0", kRlcC);
  c.add_resistor("r1", "top", "mid", r_ohms);
  c.add_inductor("l1", "mid", "0", kRlcL);
  c.set_initial_condition("top", 1.0);
  return c;
}

double rlc_reference(double r_ohms, double t) {
  const double alpha = r_ohms / (2.0 * kRlcL);
  const double omega0 = 1.0 / std::sqrt(kRlcL * kRlcC);
  const double disc = alpha * alpha - omega0 * omega0;
  if (std::fabs(disc) < 1e-9 * omega0 * omega0) {
    // Critically damped: v = (1 + alpha t) e^{-alpha t}.
    return (1.0 + alpha * t) * std::exp(-alpha * t);
  }
  if (disc < 0.0) {
    // Underdamped: v = e^{-alpha t} (cos wd t + (alpha / wd) sin wd t).
    const double wd = std::sqrt(-disc);
    return std::exp(-alpha * t) * (std::cos(wd * t) + (alpha / wd) * std::sin(wd * t));
  }
  // Overdamped: v = (s2 e^{s1 t} - s1 e^{s2 t}) / (s2 - s1).
  const double root = std::sqrt(disc);
  const double s1 = -alpha + root;
  const double s2 = -alpha - root;
  return (s2 * std::exp(s1 * t) - s1 * std::exp(s2 * t)) / (s2 - s1);
}

void check_rlc(double r_ohms, double tolerance) {
  const netlist::Circuit c = rlc_circuit(r_ohms);
  // ~632 steps per natural period: comfortably inside trap's accuracy range.
  const TransientResult r = solve_transient(c, fixed_step(1e-3, 1e-6));
  const std::vector<double> wave = r.waveform_of("top");
  double worst = 0.0;
  for (std::size_t k = 0; k < r.times.size(); ++k) {
    worst = std::max(worst, std::fabs(wave[k] - rlc_reference(r_ohms, r.times[k])));
  }
  EXPECT_LT(worst, tolerance) << "R = " << r_ohms;
}

TEST(TransientAnalytic, RlcUnderdampedRingsWithTheExactEnvelope) {
  check_rlc(10.0, 2e-3);  // Q ~ 3.2: several visible ring cycles
}

TEST(TransientAnalytic, RlcOverdampedDecaysBiexponentially) {
  check_rlc(400.0, 1e-3);
}

TEST(TransientAnalytic, RlcCriticallyDampedMatchesThePolynomialEnvelope) {
  check_rlc(2.0 * std::sqrt(kRlcL / kRlcC), 1e-3);
}

TEST(TransientAnalytic, RlcEnergyIsDissipatedMonotonically) {
  // Physics sanity independent of the closed form: the total stored energy
  // (C v^2 + L i^2) / 2 must never grow in the source-free circuit.
  const netlist::Circuit c = rlc_circuit(10.0);
  const TransientResult r = solve_transient(c, fixed_step(1e-3, 1e-6));
  const std::vector<double> v = r.waveform_of("top");
  const auto it = std::find(r.branch_names.begin(), r.branch_names.end(), "l1");
  ASSERT_NE(it, r.branch_names.end());
  const std::size_t branch =
      r.node_names.size() + static_cast<std::size_t>(it - r.branch_names.begin());
  double previous = 0.5 * kRlcC * v[0] * v[0];
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    const double i_l = r.states[k][branch];
    const double energy = 0.5 * kRlcC * v[k] * v[k] + 0.5 * kRlcL * i_l * i_l;
    EXPECT_LE(energy, previous * (1.0 + 1e-9)) << "at t = " << r.times[k];
    previous = energy;
  }
}

// --- Diode rectifier -------------------------------------------------------
//
// vin -> R -> diode -> ground driven by a 5 V sine. The circuit is
// memoryless, so the exact output at each time point solves the scalar
// equation (vin - vd) / R = Is (e^{vd / nVt} - 1) + gmin vd — the same model
// the engine stamps, solved here independently per point by bisection.

double rectifier_reference(double vin, double r_ohms, const netlist::DeviceModel& m,
                           double gmin) {
  const double n_vt = m.n * devices::kThermalVoltage;
  auto residual = [&](double vd) {
    return (vin - vd) / r_ohms - m.is * (devices::guarded_exp(vd / n_vt).f - 1.0) - gmin * vd;
  };
  double lo = -10.0;
  double hi = 10.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (residual(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TEST(TransientAnalytic, DiodeRectifierTracksThePerPointNewtonSolution) {
  const netlist::Circuit c = netlist::parse_netlist(
      "* half-wave rectifier\n"
      ".model dfast d is=1e-14 n=1\n"
      "vin in 0 dc 0 sin(0 5 1k)\n"
      "r1 in out 1k\n"
      "d1 out 0 dfast\n"
      ".end\n");
  TransientOptions o = fixed_step(2e-3, 2e-6);  // two cycles, 500 pts/cycle
  const TransientResult r = solve_transient(c, o);
  ASSERT_FALSE(c.devices().empty());
  const netlist::DeviceModel& model = c.devices()[0].model;
  const std::vector<double> wave = r.waveform_of("out");
  double worst = 0.0;
  for (std::size_t k = 0; k < r.times.size(); ++k) {
    const double vin = 5.0 * std::sin(2.0 * kPi * 1e3 * r.times[k]);
    worst = std::max(worst, std::fabs(wave[k] - rectifier_reference(vin, 1e3, model, o.gmin)));
  }
  // Memoryless circuit: the only error is Newton's own tolerance.
  EXPECT_LT(worst, 1e-5);
  EXPECT_GT(r.newton_iterations, 0);
  // Forward peak clamps near a junction drop; reverse peak pulls out to
  // nearly -5 V across the off diode... but through R the node follows vin.
  const double peak = *std::max_element(wave.begin(), wave.end());
  EXPECT_GT(peak, 0.5);
  EXPECT_LT(peak, 0.8);
}

TEST(TransientAnalytic, PeakDetectorHoldsChargeAcrossReverseHalfCycles) {
  // Adding a hold capacitor turns the rectifier into a peak detector: after
  // the first crest, out stays near the peak while vin swings negative (the
  // diode blocks the discharge; only the bleed resistor droops it).
  const netlist::Circuit c = netlist::parse_netlist(
      "* peak detector\n"
      ".model dfast d is=1e-14 n=1\n"
      "vin in 0 dc 0 sin(0 5 1k)\n"
      "rs in a 10\n"
      "d1 a out dfast\n"
      "c1 out 0 1u\n"
      "rbleed out 0 100k\n"
      ".end\n");
  const TransientResult r = solve_transient(c, fixed_step(2.5e-3, 1e-6));
  const std::vector<double> wave = r.waveform_of("out");
  // Sample at t = 0.75 ms (deep in the negative half-cycle): the detector
  // must still hold most of the ~4.4 V crest (tau_bleed = 100 ms >> 1 ms).
  std::size_t k_hold = 0;
  for (std::size_t k = 0; k < r.times.size(); ++k) {
    if (r.times[k] <= 0.75e-3) k_hold = k;
  }
  EXPECT_GT(wave[k_hold], 4.0);
  // And it must never exceed the crest of the drive.
  EXPECT_LT(*std::max_element(wave.begin(), wave.end()), 5.0);
}

}  // namespace
}  // namespace symref::transient
