// Plan-replay economics of the transient engine, and its determinism under
// concurrency knobs and injected faults.
//
// The contract under test: every time step is a rebind + refactor replay of
// one plan per step-size bucket, so a constant-step run performs exactly
// three fresh factorizations (DC bias + consistent-init micro-step + the one
// bucket) no matter how many steps it takes; adaptive runs account every
// fresh factorization to a bucket (fresh == buckets + 2); the serialized
// response is byte-identical at any thread count; and refused replays
// (REFGEN_FAULT=lu_pivot / newton_step) fall back to fresh factorizations
// that re-select the same pivots — slower, bit-identical waveforms.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/serialize.h"
#include "api/service.h"
#include "netlist/parser.h"
#include "support/fault_injection.h"
#include "transient/transient.h"

namespace symref {
namespace {

constexpr const char* kRcNetlist =
    "* rc step\n"
    "vin in 0 dc 10\n"
    "r1 in out 1k\n"
    "c1 out 0 1u\n"
    ".ic v(out)=0\n"
    ".end\n";

constexpr const char* kRectifierNetlist =
    "* half-wave rectifier\n"
    ".model dfast d is=1e-14 n=1\n"
    "vin in 0 dc 0 sin(0 5 1k)\n"
    "r1 in out 1k\n"
    "d1 out 0 dfast\n"
    ".end\n";

transient::TransientOptions fixed_step(double tstop, double tstep) {
  transient::TransientOptions o;
  o.tstop = tstop;
  o.tstep = tstep;
  o.adaptive = false;
  return o;
}

/// Bitwise waveform comparison: the replay contract is exact equality of
/// every state value, not closeness.
void expect_states_identical(const transient::TransientResult& a,
                             const transient::TransientResult& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  ASSERT_EQ(a.states.size(), b.states.size());
  for (std::size_t k = 0; k < a.states.size(); ++k) {
    ASSERT_EQ(a.states[k].size(), b.states[k].size()) << "point " << k;
    EXPECT_EQ(a.times[k], b.times[k]) << "point " << k;
    for (std::size_t i = 0; i < a.states[k].size(); ++i) {
      EXPECT_EQ(a.states[k][i], b.states[k][i])
          << "point " << k << ", unknown " << i;
    }
  }
}

std::uint64_t injected_count(const char* site) {
  for (const auto& stats : support::FaultInjector::instance().stats()) {
    if (stats.site == site) return stats.injected;
  }
  return 0;
}

/// Process-global injector: every test starts and ends disarmed.
class TransientReplayTest : public ::testing::Test {
 protected:
  void SetUp() override { support::FaultInjector::instance().reset(); }
  void TearDown() override { support::FaultInjector::instance().reset(); }
};

// --- Plan-replay accounting ------------------------------------------------

TEST_F(TransientReplayTest, ThousandStepConstantRunReusesOnePlan) {
  const netlist::Circuit c = netlist::parse_netlist(kRcNetlist);
  const transient::TransientResult r =
      transient::solve_transient(c, fixed_step(1e-3, 1e-6));
  ASSERT_EQ(r.steps, 1000);
  EXPECT_EQ(r.step_size_buckets, 1);
  // Bias plan + consistent-init plan + one bucket plan; 999 of the 1000
  // steps are pure replays.
  EXPECT_EQ(r.fresh_factorizations, 3u);
  EXPECT_EQ(r.lte_rejections, 0);
}

TEST_F(TransientReplayTest, NonlinearConstantRunStillFactorsOncePerBucket) {
  // Newton re-stamps the Jacobian every iterate, but the pattern is fixed:
  // every iterate after the bucket's first factorization is a replay.
  const netlist::Circuit c = netlist::parse_netlist(kRectifierNetlist);
  const transient::TransientResult r =
      transient::solve_transient(c, fixed_step(2e-3, 2e-6));
  ASSERT_EQ(r.steps, 1000);
  EXPECT_GT(r.newton_iterations, r.steps);
  EXPECT_EQ(r.step_size_buckets, 1);
  // A memoryless circuit skips the consistent-initialization micro-step, so
  // the budget is bias + one bucket (vs bias + init + bucket for reactive
  // circuits).
  EXPECT_EQ(r.fresh_factorizations, 2u);
}

TEST_F(TransientReplayTest, AdaptiveRunAccountsEveryFreshFactorizationToABucket) {
  netlist::Circuit c;
  c.add_capacitor("c1", "top", "0", 1e-6);
  c.add_resistor("r1", "top", "mid", 10.0);
  c.add_inductor("l1", "mid", "0", 1e-3);
  c.set_initial_condition("top", 1.0);
  transient::TransientOptions o;
  o.tstop = 1e-3;
  o.tstep = 1e-5;
  o.adaptive = true;
  const transient::TransientResult r = transient::solve_transient(c, o);
  EXPECT_GE(r.step_size_buckets, 1);
  // Dyadic step buckets: each is planned exactly once, and nothing else
  // factors fresh beyond the bias and consistent-init plans.
  EXPECT_EQ(r.fresh_factorizations,
            static_cast<std::uint64_t>(r.step_size_buckets) + 2u);
}

// --- Determinism across execution knobs ------------------------------------

/// Response JSON with wall-clock fields removed — everything else must be
/// bit-identical across runs.
api::Json strip_timing(const api::Json& value) {
  if (!value.is_object()) return value;
  api::Json out = api::Json::object();
  for (const auto& [key, member] : value.members()) {
    if (key == "seconds" || key == "engine_seconds") continue;
    out.set(key, strip_timing(member));
  }
  return out;
}

TEST_F(TransientReplayTest, SerializedResponseIsByteIdenticalAcrossThreadCounts) {
  const api::Service service;
  std::string baseline;
  for (const int threads : {1, 2, 8}) {
    auto compiled = service.compile_netlist(kRectifierNetlist);
    ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();
    api::TransientRequest request;
    request.tstop = 1e-3;
    request.tstep = 2e-6;
    request.adaptive = false;
    request.threads = threads;
    auto response = service.transient(compiled.value(), request);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_FALSE(response.value().from_cache);
    const std::string text = strip_timing(api::to_json(response.value())).dump();
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline) << "threads = " << threads;
    }
  }
}

// --- Fault ride-out ---------------------------------------------------------

TEST_F(TransientReplayTest, LuPivotFaultsRideOutBitIdentically) {
  const netlist::Circuit c = netlist::parse_netlist(kRcNetlist);
  const transient::TransientResult clean =
      transient::solve_transient(c, fixed_step(1e-3, 1e-6));

  // Every plan replay refused: each step falls back to a fresh
  // factorization, which re-selects the same pivots — the waveform must be
  // bit-identical, only the factorization count grows.
  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_pivot:1"));
  const transient::TransientResult faulty =
      transient::solve_transient(c, fixed_step(1e-3, 1e-6));
  EXPECT_GT(injected_count("lu_pivot"), 0u);
  EXPECT_GT(faulty.fresh_factorizations, clean.fresh_factorizations);
  EXPECT_FALSE(faulty.degraded);
  expect_states_identical(clean, faulty);
}

TEST_F(TransientReplayTest, NewtonStepFaultsRideOutBitIdentically) {
  const netlist::Circuit c = netlist::parse_netlist(kRectifierNetlist);
  const transient::TransientResult clean =
      transient::solve_transient(c, fixed_step(1e-3, 2e-6));

  ASSERT_TRUE(support::FaultInjector::instance().configure("newton_step:1"));
  const transient::TransientResult faulty =
      transient::solve_transient(c, fixed_step(1e-3, 2e-6));
  EXPECT_GT(injected_count("newton_step"), 0u);
  EXPECT_GT(faulty.fresh_factorizations, clean.fresh_factorizations);
  EXPECT_FALSE(faulty.degraded);
  EXPECT_EQ(faulty.newton_iterations, clean.newton_iterations);
  expect_states_identical(clean, faulty);
}

TEST_F(TransientReplayTest, IntermittentPivotFaultsAreRiddenOutDeterministically) {
  // Half the replays refused with a fixed seed: chaos that reproduces.
  const netlist::Circuit c = netlist::parse_netlist(kRcNetlist);
  const transient::TransientResult clean =
      transient::solve_transient(c, fixed_step(1e-3, 1e-6));
  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_pivot:0.5:11"));
  const transient::TransientResult faulty =
      transient::solve_transient(c, fixed_step(1e-3, 1e-6));
  EXPECT_GT(faulty.fresh_factorizations, clean.fresh_factorizations);
  EXPECT_LT(faulty.fresh_factorizations, static_cast<std::uint64_t>(faulty.steps));
  expect_states_identical(clean, faulty);
}

TEST_F(TransientReplayTest, FaultedServiceResponseSerializesTheSameWaveform) {
  // End-to-end: the wire payload's point array survives a full lu_pivot
  // blackout unchanged (telemetry rows may differ; the waveform may not).
  const api::Service service;
  api::TransientRequest request;
  request.tstop = 1e-3;
  request.tstep = 1e-6;
  request.adaptive = false;

  auto clean_handle = service.compile_netlist(kRcNetlist);
  ASSERT_TRUE(clean_handle.ok());
  auto clean = service.transient(clean_handle.value(), request);
  ASSERT_TRUE(clean.ok()) << clean.status().to_string();

  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_pivot:1"));
  auto faulty_handle = service.compile_netlist(kRcNetlist);
  ASSERT_TRUE(faulty_handle.ok());
  auto faulty = service.transient(faulty_handle.value(), request);
  ASSERT_TRUE(faulty.ok()) << faulty.status().to_string();

  const api::Json clean_json = api::to_json(clean.value());
  const api::Json faulty_json = api::to_json(faulty.value());
  ASSERT_NE(clean_json.find("points"), nullptr);
  ASSERT_NE(faulty_json.find("points"), nullptr);
  EXPECT_EQ(clean_json.find("points")->dump(), faulty_json.find("points")->dump());

  // Caches stay healthy once the fault clears: repeat is a cache hit.
  support::FaultInjector::instance().reset();
  auto repeat = service.transient(faulty_handle.value(), request);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().from_cache);
}

}  // namespace
}  // namespace symref
