// End-to-end pipelines across every module boundary.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/filters.h"
#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "mna/ac.h"
#include "netlist/canonical.h"
#include "netlist/parser.h"
#include "netlist/writer.h"
#include "numeric/roots.h"
#include "refgen/adaptive.h"
#include "refgen/io.h"
#include "refgen/validate.h"
#include "symbolic/sbg.h"
#include "symbolic/sdg.h"

namespace symref {
namespace {

TEST(Integration, NetlistTextToReference) {
  // Parse a textual netlist, generate the reference, validate the Bode plot.
  const auto circuit = netlist::parse_netlist(R"(
.title three-pole amplifier model
G1 x 0 in 0 1m
R1 x 0 10k
C1 x 0 10p
G2 y 0 x 0 1m
R2 y 0 10k
C2 y 0 2p
G3 out 0 y 0 1m
R3 out 0 1k
C3 out 0 100p
)");
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult result = refgen::generate_reference(circuit, spec);
  ASSERT_TRUE(result.complete) << result.termination;
  const refgen::BodeComparison bode =
      refgen::compare_bode(result.reference, circuit, spec, 1e2, 1e9, 4);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-6);
  // DC gain: (1m*10k)^2 * 1m*1k = 100. But the spec input node floats
  // without a driver in the cofactor formulation? No: 'in' only controls G1.
  EXPECT_NEAR(std::abs(result.reference.transfer_at_hz(1.0)), 100.0, 1e-3);
}

TEST(Integration, ReferencePolesMatchAcRolloff) {
  // Roots of the interpolated denominator = circuit poles; validate the
  // dominant pole against the -3 dB point seen by the AC simulator.
  netlist::Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult result = refgen::generate_reference(c, spec);
  ASSERT_TRUE(result.complete);
  const auto roots =
      numeric::find_roots(result.reference.denominator().polynomial());
  ASSERT_TRUE(roots.converged);
  ASSERT_EQ(roots.roots.size(), 1u);
  EXPECT_NEAR(roots.roots[0].real(), -1.0 / (1e3 * 1e-9), 1e-3 / (1e3 * 1e-9));
}

TEST(Integration, TowThomasPolesFromReference) {
  // The biquad's w0 and Q are readable off the interpolated denominator.
  const double f0 = 10e3, quality = 2.0;
  const netlist::Circuit tt = circuits::tow_thomas(f0, quality, 1.0);
  const auto spec = circuits::tow_thomas_lowpass_spec();
  const refgen::AdaptiveResult result = refgen::generate_reference(tt, spec);
  ASSERT_TRUE(result.complete) << result.termination;

  // Denominator ~ 1 + s/(w0 Q) + s^2/w0^2 (up to scale): recover w0 from
  // the quadratic factor's roots.
  const auto roots = numeric::find_roots(result.reference.denominator().polynomial());
  ASSERT_TRUE(roots.converged);
  double best_w0 = 0.0;
  for (const auto& root : roots.roots) {
    if (std::abs(root.imag()) > 1.0) {  // the resonant pair
      best_w0 = std::abs(root);
      break;
    }
  }
  EXPECT_NEAR(best_w0, 2.0 * M_PI * f0, 2.0 * M_PI * f0 * 0.02);
}

TEST(Integration, WriterRoundTripPreservesReference) {
  // write -> parse -> regenerate: coefficients identical.
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const auto spec = circuits::rc_ladder_spec(4);
  const auto original = refgen::generate_reference(ladder, spec);
  const netlist::Circuit reparsed = netlist::parse_netlist(netlist::write_netlist(ladder));
  const auto regenerated = refgen::generate_reference(reparsed, spec);
  ASSERT_TRUE(original.complete);
  ASSERT_TRUE(regenerated.complete);
  for (int i = 0; i <= 4; ++i) {
    EXPECT_LT(numeric::relative_difference(original.reference.denominator().at(i).value,
                                           regenerated.reference.denominator().at(i).value),
              1e-9)
        << i;
  }
}

TEST(Integration, Ua741SbgPrunesAndKeepsBode) {
  // Full pipeline on the paper's flagship example: reference -> SBG -> the
  // simplified amplifier still matches within the error budget in-band.
  const netlist::Circuit ua = circuits::ua741();
  const auto spec = circuits::ua741_gain_spec();
  const refgen::AdaptiveResult reference = refgen::generate_reference(ua, spec);
  ASSERT_TRUE(reference.complete);

  symbolic::SbgOptions options;
  options.epsilon = 0.05;
  options.f_start_hz = 10.0;
  options.f_stop_hz = 1e6;
  options.points_per_decade = 1;
  options.max_removals = 25;  // keep the test fast
  const symbolic::SbgResult simplified =
      symbolic::simplify_before_generation(ua, spec, reference.reference, options);
  EXPECT_GE(simplified.actions.size(), 10u);

  const mna::AcSimulator sim(simplified.simplified);
  for (const double f : {10.0, 1e3, 1e5}) {
    const auto h_ref = reference.reference.transfer_at_hz(f);
    const auto h_simple = sim.transfer(spec, f);
    EXPECT_LT(std::abs(h_simple - h_ref) / std::abs(h_ref), 0.10) << f;
  }
}

TEST(Integration, SdgOnLadderWithEngineReference) {
  // SDG consumes the engine's reference for its stop rule, then the emitted
  // expression evaluates back to the reference within epsilon.
  const netlist::Circuit ladder = circuits::rc_ladder(3);
  const netlist::Circuit canonical = netlist::canonicalize(ladder);
  const auto spec = mna::TransferSpec::transimpedance("in", "n3");
  const refgen::AdaptiveResult reference = refgen::generate_reference(ladder, spec);
  ASSERT_TRUE(reference.complete);

  const symbolic::SymbolicNodalMatrix matrix(canonical);
  for (int k = 0; k <= 3; ++k) {
    symbolic::SdgOptions options;
    options.epsilon = 1e-3;
    const auto result = symbolic::generate_determinant_terms(
        matrix, k, reference.reference.denominator().at(k).value, options);
    EXPECT_TRUE(result.met) << "k=" << k << " " << result.termination;
  }
}

TEST(Integration, CanonicalizedFilterReferenceMatchesOriginalSimulation) {
  // Opamps + VCVS go through canonicalization; the reference generated from
  // the canonical twin must reproduce the ORIGINAL circuit's response.
  const netlist::Circuit sk = circuits::sallen_key();
  const auto spec = circuits::sallen_key_spec();
  const refgen::AdaptiveResult result = refgen::generate_reference(sk, spec);
  ASSERT_TRUE(result.complete);
  // The big-G VCVS model's error grows with frequency (the finite output
  // impedance lets C1 feed through); in-band and around the corner the
  // match must be tight. Deep in the stopband (> ~10 f0) the documented
  // O(w C1 / Gbig) deviation dominates.
  const refgen::BodeComparison in_band =
      refgen::compare_bode(result.reference, sk, spec, 1e2, 1e5, 4);
  EXPECT_LT(in_band.max_magnitude_error_db, 0.05);
  const refgen::BodeComparison stopband =
      refgen::compare_bode(result.reference, sk, spec, 1e5, 1e6, 4);
  EXPECT_LT(stopband.max_magnitude_error_db, 1.0);
}

TEST(Integration, RandomRcNetworksSweep) {
  support::Rng rng(2024);
  int completed = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const netlist::Circuit c = circuits::random_rc(rng);
    const auto spec = mna::TransferSpec::transimpedance("n1", "n2");
    const refgen::AdaptiveResult result = refgen::generate_reference(c, spec);
    if (!result.complete) continue;  // some random nets have pathological TFs
    ++completed;
    const double err =
        refgen::relative_transfer_error(result.reference, c, spec, {0.0, 1e5});
    EXPECT_LT(err, 1e-4) << "trial " << trial;
  }
  EXPECT_GE(completed, 6);
}


TEST(Integration, RlcBandpassThroughGyrator) {
  // The inductor path: L -> gyrator-C inside canonicalization, then the full
  // reference pipeline. The interpolated response must match the original
  // RLC circuit (simulated with a true inductor branch in MNA).
  const double f0 = 1e6, q = 5.0;
  const netlist::Circuit rlc = circuits::rlc_bandpass(f0, q);
  const auto spec = circuits::rlc_bandpass_spec();
  const refgen::AdaptiveResult result = refgen::generate_reference(rlc, spec);
  ASSERT_TRUE(result.complete) << result.termination;

  const refgen::BodeComparison bode =
      refgen::compare_bode(result.reference, rlc, spec, f0 / 100, f0 * 100, 6);
  EXPECT_LT(bode.max_magnitude_error_db, 1e-3);

  // Bandpass physics: unity at f0, rolloff on both sides.
  const mna::AcSimulator sim(rlc);
  EXPECT_NEAR(std::abs(sim.transfer(spec, f0)), 1.0, 0.01);
  EXPECT_LT(std::abs(sim.transfer(spec, f0 / 50)), 0.2);
  EXPECT_LT(std::abs(sim.transfer(spec, f0 * 50)), 0.2);

  // The denominator order is 2 (one L through the gyrator + one C).
  EXPECT_EQ(result.reference.denominator().effective_order(), 2);
}

TEST(Integration, MonteCarloElementSpread) {
  // Robustness: random log-uniform element values over wide ranges; the
  // engine must either complete with a validated reference or terminate
  // with an explicit diagnosis — never return complete-but-wrong.
  support::Rng rng(31337);
  int completed = 0;
  for (int trial = 0; trial < 12; ++trial) {
    netlist::Circuit c;
    const int stages = 2 + static_cast<int>(rng.uniform_index(3));
    std::string previous = "in";
    for (int i = 1; i <= stages; ++i) {
      const std::string node = "n" + std::to_string(i);
      c.add_resistor("r" + std::to_string(i), previous, node,
                     rng.log_uniform(1e1, 1e7));
      c.add_capacitor("c" + std::to_string(i), node, "0",
                      rng.log_uniform(1e-15, 1e-7));
      previous = node;
    }
    const auto spec = mna::TransferSpec::voltage_gain(
        "in", "n" + std::to_string(stages));
    const refgen::AdaptiveResult result = refgen::generate_reference(c, spec);
    if (!result.complete) continue;
    ++completed;
    const double err =
        refgen::relative_transfer_error(result.reference, c, spec, {0.0, 1e5});
    EXPECT_LT(err, 1e-4) << "trial " << trial;
  }
  EXPECT_GE(completed, 10);
}

TEST(Integration, FloatingCircuitDiagnosedNotCrashed) {
  // A circuit with no ground connection at all: the nodal system is
  // singular at every point; the engine must terminate with a diagnosis.
  netlist::Circuit c;
  c.add_resistor("r1", "a", "b", 1e3);
  c.add_capacitor("c1", "a", "b", 1e-9);
  const auto spec = mna::TransferSpec::transimpedance("a", "b");
  const refgen::AdaptiveResult result = refgen::generate_reference(c, spec);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.termination, "singular_system");
}

TEST(Integration, MaxIterationsGuardsRunaway) {
  // An absurdly small iteration budget must terminate cleanly.
  const netlist::Circuit ua = circuits::ua741();
  refgen::AdaptiveOptions options;
  options.max_iterations = 2;
  const refgen::AdaptiveResult result =
      refgen::generate_reference(ua, circuits::ua741_gain_spec(), options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.termination, "max_iterations");
  EXPECT_EQ(result.iterations.size(), 2u);
  // Partial results are still delivered: some coefficients known.
  EXPECT_GT(result.reference.denominator().known_count(), 0);
}

TEST(Integration, ReferencesSurviveSerializationInPipeline) {
  // reference -> serialize -> parse -> SBG consumes the parsed copy.
  const netlist::Circuit c = circuits::rc_ladder(3);
  const auto spec = circuits::rc_ladder_spec(3);
  const auto result = refgen::generate_reference(c, spec);
  ASSERT_TRUE(result.complete);
  const auto reparsed =
      refgen::read_reference(refgen::write_reference(result.reference));
  symbolic::SbgOptions options;
  options.epsilon = 0.01;
  options.f_start_hz = 1e3;
  options.f_stop_hz = 1e6;
  const auto simplified = symbolic::simplify_before_generation(c, spec, reparsed, options);
  EXPECT_EQ(simplified.remaining_elements, simplified.original_elements);  // lean already
}

}  // namespace
}  // namespace symref
