// Newton-Raphson DC operating-point solver: analytic small circuits,
// plan-reuse accounting, homotopy, and linearization.
#include "dc/newton.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dc/linearize.h"
#include "devices/models.h"
#include "mna/errors.h"
#include "netlist/parser.h"

namespace symref::dc {
namespace {

constexpr double kVt = devices::kThermalVoltage;

netlist::DeviceModel diode_model(double is = 1e-14) {
  netlist::DeviceModel m;
  m.is = is;
  return m;
}

// --- Linear circuits -------------------------------------------------------

TEST(Newton, LinearDividerSolvesDirectly) {
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 10.0;
  c.add_resistor("r1", "in", "mid", 1e3);
  c.add_resistor("r2", "mid", "0", 3e3);

  const OpResult op = solve_op(c);
  EXPECT_NEAR(op.voltage_of("in"), 10.0, 1e-9);
  EXPECT_NEAR(op.voltage_of("mid"), 7.5, 1e-9);
  // Branch current of the source: 10 V over 4k, flowing out of `in`.
  ASSERT_EQ(op.branch_names.size(), 1u);
  EXPECT_EQ(op.branch_names[0], "vin");
  EXPECT_NEAR(op.branch_currents[0], -10.0 / 4e3, 1e-12);
  EXPECT_EQ(op.gmin_steps, 0);
  EXPECT_EQ(op.source_steps, 0);
  EXPECT_EQ(op.fresh_factorizations, 1u);
}

TEST(Newton, CapacitorIsOpenInductorIsShort) {
  netlist::Circuit c;
  c.add_vsource("v1", "a", "0", 1.0).dc_value = 5.0;
  c.add_inductor("l1", "a", "b", 1e-3);
  c.add_resistor("r1", "b", "0", 1e3);
  c.add_capacitor("c1", "b", "0", 1e-6);  // open: no effect on the DC point

  const OpResult op = solve_op(c);
  EXPECT_NEAR(op.voltage_of("b"), 5.0, 1e-9);  // inductor shorts a to b
}

TEST(Newton, EmptyCircuitYieldsEmptyResult) {
  netlist::Circuit c;
  const OpResult op = solve_op(c);
  EXPECT_TRUE(op.node_names.empty());
  EXPECT_EQ(op.newton_iterations, 0);
}

TEST(Newton, FloatingNodeIsSingular) {
  netlist::Circuit c;
  c.add_vsource("v1", "a", "0", 1.0).dc_value = 1.0;
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_capacitor("c1", "b", "c", 1e-9);  // b, c have no DC path at all
  EXPECT_THROW(solve_op(c), mna::SingularSystemError);
}

// --- Diode -----------------------------------------------------------------

TEST(Newton, DiodeResistorMatchesAnalyticSolution) {
  // 5 V -> 1 kOhm -> diode -> ground. Newton solution must satisfy
  // (5 - vd)/R = is*(exp(vd/vt) - 1) to the solver tolerance.
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", diode_model());

  const OpResult op = solve_op(c);
  const double vd = op.voltage_of("d");
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
  const double i_r = (5.0 - vd) / 1e3;
  const double i_d = 1e-14 * (std::exp(vd / kVt) - 1.0);
  EXPECT_NEAR(i_r, i_d, 1e-9 * i_r + 1e-12);

  ASSERT_EQ(op.devices.size(), 1u);
  EXPECT_EQ(op.devices[0].name, "d1");
  EXPECT_NEAR(op.devices[0].value("id"), i_r, 1e-9 * i_r + 1e-12);
  EXPECT_NEAR(op.devices[0].value("vd"), vd, 1e-12);
}

TEST(Newton, ReverseBiasedDiodeCarriesOnlyLeakage) {
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = -5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", diode_model());

  const OpResult op = solve_op(c);
  EXPECT_NEAR(op.voltage_of("d"), -5.0, 1e-6);  // leakage drop only
  EXPECT_LT(std::fabs(op.devices[0].value("id")), 1e-10);
}

TEST(Newton, DiodePolarityFlipsTheJunction) {
  // polarity -1 turns the same card into a cathode-up diode: forward
  // conduction now happens with the anode node NEGATIVE.
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = -5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", diode_model(), -1);

  const OpResult op = solve_op(c);
  const double vd = op.voltage_of("d");
  EXPECT_GT(vd, -0.8);
  EXPECT_LT(vd, -0.4);
  // Terminal-frame current is negative (flows cathode -> anode).
  EXPECT_LT(op.devices[0].value("id"), 0.0);
}

TEST(Newton, NewtonReplaysOneSymbolicPlan) {
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", diode_model());

  OpSolver solver;
  const OpResult op = solver.solve(c);
  EXPECT_GE(op.newton_iterations, 3);
  // All iterations replayed the single fresh factorization.
  EXPECT_EQ(solver.fresh_factor_count(), 1u);
  EXPECT_EQ(op.fresh_factorizations, 1u);
  EXPECT_FALSE(op.degraded);

  // A second solve on the same solver reuses the plan outright: zero new
  // fresh factorizations even for the first iteration.
  const OpResult again = solver.solve(c);
  EXPECT_EQ(solver.fresh_factor_count(), 1u);
  EXPECT_EQ(again.fresh_factorizations, 0u);

  // A structurally different circuit forces exactly one new factorization.
  netlist::Circuit c2;
  c2.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c2.add_resistor("r1", "in", "d", 1e3);
  c2.add_resistor("r2", "d", "x", 1e3);
  c2.add_diode("d1", "x", "0", diode_model());
  (void)solver.solve(c2);
  EXPECT_EQ(solver.fresh_factor_count(), 2u);
}

// --- BJT -------------------------------------------------------------------

TEST(Newton, NpnCommonEmitterBias) {
  // Ideal-beta current mirror arithmetic: ib = (5 - vbe)/rb, ic = bf*ib.
  netlist::DeviceModel m;
  m.is = 1e-15;
  m.bf = 100.0;
  netlist::Circuit c;
  c.add_vsource("vcc", "vcc", "0", 1.0).dc_value = 5.0;
  c.add_resistor("rb", "vcc", "b", 430e3);
  c.add_resistor("rc", "vcc", "c", 2e3);
  c.add_bjt("q1", "c", "b", "0", m);

  const OpResult op = solve_op(c);
  const double vbe = op.voltage_of("b");
  EXPECT_GT(vbe, 0.5);
  EXPECT_LT(vbe, 0.8);
  const double ib = (5.0 - vbe) / 430e3;
  const double ic = op.devices[0].value("ic");
  // Active region (vbc < 0): ic = bf * ib to high accuracy.
  EXPECT_LT(op.devices[0].value("vbc"), 0.0);
  EXPECT_NEAR(ic, 100.0 * ib, 1e-6 * ic);
  EXPECT_NEAR(op.voltage_of("c"), 5.0 - 2e3 * ic, 1e-6);
  // gm = ic/vt from the op table.
  EXPECT_NEAR(op.devices[0].value("gm"), ic / kVt, 1e-9 * ic / kVt);
}

TEST(Newton, PnpMirrorsTheNpnBias) {
  netlist::DeviceModel m;
  m.is = 1e-15;
  m.bf = 100.0;
  netlist::Circuit c;
  c.add_vsource("vee", "vee", "0", 1.0).dc_value = -5.0;
  c.add_resistor("rb", "vee", "b", 430e3);
  c.add_resistor("rc", "vee", "c", 2e3);
  c.add_bjt("q1", "c", "b", "0", m, -1);

  const OpResult op = solve_op(c);
  // Mirror image of the npn case: all voltages and currents negated.
  EXPECT_GT(op.voltage_of("b"), -0.8);
  EXPECT_LT(op.voltage_of("b"), -0.5);
  const double ic = op.devices[0].value("ic");
  EXPECT_LT(ic, 0.0);  // terminal current flows out of the collector
  const double ib = (-5.0 - op.voltage_of("b")) / 430e3;
  EXPECT_NEAR(ic, 100.0 * ib, 1e-6 * std::fabs(ic));
  EXPECT_GT(op.devices[0].value("gm"), 0.0);  // small-signal magnitudes stay positive
}

TEST(Newton, SaturatedBjtConverges) {
  // Base overdriven, collector starved: the device lands in saturation
  // (both junctions forward) and Newton still converges.
  netlist::DeviceModel m;
  m.is = 1e-15;
  m.bf = 100.0;
  netlist::Circuit c;
  c.add_vsource("vcc", "vcc", "0", 1.0).dc_value = 5.0;
  c.add_resistor("rb", "vcc", "b", 10e3);
  c.add_resistor("rc", "vcc", "c", 100e3);
  c.add_bjt("q1", "c", "b", "0", m);

  const OpResult op = solve_op(c);
  EXPECT_GT(op.devices[0].value("vbc"), 0.0);  // saturation
  EXPECT_GT(op.voltage_of("c"), 0.0);
  EXPECT_LT(op.voltage_of("c"), 0.3);
}

// --- MOS -------------------------------------------------------------------

TEST(Newton, NmosSaturationBias) {
  netlist::DeviceModel m;
  m.kp = 200e-6;
  m.vto = 1.0;
  netlist::Circuit c;
  c.add_vsource("vdd", "vdd", "0", 1.0).dc_value = 5.0;
  c.add_vsource("vg", "g", "0", 1.0).dc_value = 2.0;
  c.add_resistor("rd", "vdd", "d", 10e3);
  c.add_mos("m1", "d", "g", "0", m);

  const OpResult op = solve_op(c);
  // Saturation: id = kp/2 * (vgs-vto)^2 = 100e-6 * 1 = 100 uA.
  const double id = op.devices[0].value("id");
  EXPECT_NEAR(id, 100e-6, 1e-9);
  EXPECT_NEAR(op.voltage_of("d"), 5.0 - 10e3 * id, 1e-6);
  EXPECT_NEAR(op.devices[0].value("gm"), 200e-6, 1e-9);
}

TEST(Newton, NmosTriodeBias) {
  netlist::DeviceModel m;
  m.kp = 1e-3;
  m.vto = 1.0;
  netlist::Circuit c;
  c.add_vsource("vdd", "vdd", "0", 1.0).dc_value = 5.0;
  c.add_vsource("vg", "g", "0", 1.0).dc_value = 5.0;
  c.add_resistor("rd", "vdd", "d", 10e3);
  c.add_mos("m1", "d", "g", "0", m);

  const OpResult op = solve_op(c);
  const double vds = op.voltage_of("d");
  EXPECT_LT(vds, 4.0 - 1e-3);  // triode: vds < vgs - vto
  const double id = op.devices[0].value("id");
  EXPECT_NEAR(id, 1e-3 * ((5.0 - 1.0) * vds - 0.5 * vds * vds), 1e-9);
  EXPECT_NEAR(id, (5.0 - vds) / 10e3, 1e-9);
}

TEST(Newton, PmosSaturationBias) {
  netlist::DeviceModel m;
  m.kp = 200e-6;
  m.vto = 1.0;  // model-frame threshold; terminal-frame vto is -1 V
  netlist::Circuit c;
  c.add_vsource("vss", "vss", "0", 1.0).dc_value = -5.0;
  c.add_vsource("vg", "g", "0", 1.0).dc_value = -2.0;
  c.add_resistor("rd", "vss", "d", 10e3);
  c.add_mos("m1", "d", "g", "0", m, -1);

  const OpResult op = solve_op(c);
  EXPECT_NEAR(op.devices[0].value("id"), -100e-6, 1e-9);
  EXPECT_NEAR(op.voltage_of("d"), -5.0 + 10e3 * 100e-6, 1e-6);
}

// --- Telemetry and options -------------------------------------------------

TEST(Newton, CancellationThrows) {
  support::CancellationSource source;
  source.cancel();
  OpOptions options;
  options.cancel = source.token();

  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c.add_resistor("r1", "in", "0", 1e3);
  EXPECT_THROW(solve_op(c, options), support::CancelledError);
}

TEST(Newton, NoConvergenceIsTyped) {
  // An impossible tolerance exhausts the whole homotopy ladder.
  OpOptions options;
  options.max_iterations = 1;
  options.source_steps = 2;
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", diode_model());
  try {
    solve_op(c, options);
    FAIL() << "expected NoConvergenceError";
  } catch (const NoConvergenceError& error) {
    EXPECT_NE(std::string(error.what()).find("no convergence"), std::string::npos);
  }
}

TEST(Newton, ResidualIsTiny) {
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", diode_model());
  const OpResult op = solve_op(c);
  EXPECT_LT(op.max_residual, 1e-9);
}

// --- Parser integration ----------------------------------------------------

TEST(Newton, DeviceDeckParsesAndSolves) {
  const netlist::Circuit c = netlist::parse_netlist(R"(
.model nd d is=1e-14
V1 in 0 dc 5
R1 in d 1k
D1 d 0 nd
)");
  ASSERT_TRUE(c.has_devices());
  EXPECT_EQ(c.find_element("V1")->dc_value, 5.0);
  EXPECT_EQ(c.find_element("V1")->value, 1.0);  // AC magnitude untouched by `dc`
  const OpResult op = solve_op(c);
  EXPECT_GT(op.voltage_of("d"), 0.4);
}

// --- Linearization ---------------------------------------------------------

TEST(Linearize, DiodeBecomesConductanceAndCapacitor) {
  netlist::DeviceModel m = diode_model();
  m.tt = 1e-9;
  m.cj = 1e-12;
  netlist::Circuit c;
  c.add_vsource("vin", "in", "0", 1.0).dc_value = 5.0;
  c.add_resistor("r1", "in", "d", 1e3);
  c.add_diode("d1", "d", "0", m);

  const OpResult op = solve_op(c);
  const netlist::Circuit lin = linearize_at(c, op);
  EXPECT_FALSE(lin.has_devices());
  // The DC source became a short: `in` merged into ground, so the resistor
  // now runs from ground to d.
  const netlist::Element* r1 = lin.find_element("r1");
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(std::min(r1->node_pos, r1->node_neg), 0);
  // Device expansion at the bias point.
  const netlist::Element* gd = lin.find_element("d1.gd");
  ASSERT_NE(gd, nullptr);
  const double id = op.devices[0].value("id");
  EXPECT_NEAR(gd->value, id / kVt, 1e-6 * gd->value);
  const netlist::Element* cd = lin.find_element("d1.cd");
  ASSERT_NE(cd, nullptr);
  EXPECT_NEAR(cd->value, 1e-9 * gd->value + 1e-12, 1e-18);
}

TEST(Linearize, BjtExpandsThroughFromBias) {
  netlist::DeviceModel m;
  m.is = 1e-15;
  m.bf = 120.0;
  m.vaf = 80.0;
  m.tf = 0.4e-9;
  m.cje = 1e-12;
  m.cjc = 0.6e-12;
  netlist::Circuit c;
  c.add_vsource("vcc", "vcc", "0", 1.0).dc_value = 5.0;
  c.add_resistor("rb", "vcc", "b", 430e3);
  c.add_resistor("rc", "vcc", "c", 2e3);
  c.add_bjt("q1", "c", "b", "0", m);

  const OpResult op = solve_op(c);
  const netlist::Circuit lin = linearize_at(c, op);

  // Bit-identical to a hand-built expansion from the same solved current.
  const double ic = op.devices[0].value("ic");
  const netlist::BjtParams p =
      netlist::BjtParams::from_bias(ic, 120.0, 80.0, 0.4e-9, 1e-12, 0.6e-12);
  EXPECT_EQ(lin.find_element("q1.gm")->value, p.gm);
  EXPECT_EQ(lin.find_element("q1.rpi")->value, p.beta / p.gm);
  EXPECT_EQ(lin.find_element("q1.ro")->value, p.ro);
  EXPECT_EQ(lin.find_element("q1.cpi")->value, p.cpi);
  EXPECT_EQ(lin.find_element("q1.cmu")->value, p.cmu);
}

TEST(Linearize, SensedSourceSurvivesAsZeroMagnitudeShort) {
  netlist::Circuit c;
  c.add_vsource("vs", "a", "b", 1.0).dc_value = 0.0;  // current-sense element
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_vsource("vin", "in", "b", 1.0).dc_value = 1.0;
  c.add_resistor("r2", "in", "0", 1e3);
  c.add_cccs("f1", "out", "0", "vs", 2.0);
  c.add_resistor("rl", "out", "0", 1e3);
  c.add_diode("d1", "out", "0", diode_model());

  const netlist::Circuit lin = linearize(c);
  const netlist::Element* vs = lin.find_element("vs");
  ASSERT_NE(vs, nullptr);          // sensed source kept...
  EXPECT_EQ(vs->value, 0.0);       // ...as a pure short
  EXPECT_EQ(lin.find_element("vin"), nullptr);  // unsensed source merged away
}

}  // namespace
}  // namespace symref::dc
