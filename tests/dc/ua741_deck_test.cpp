// Transistor-level µA741 deck (tools/data/ua741_npn.cir): the .op solver
// must converge on the real 24-junction bias problem through ONE shared
// factorization plan, land on the textbook collector currents, and the
// auto-linearized small-signal circuit must reproduce the hand-built
// circuits::ua741() reference element by element and across the Bode sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <fstream>
#include <sstream>
#include <string>

#include "circuits/ua741.h"
#include "dc/linearize.h"
#include "dc/newton.h"
#include "mna/ac.h"
#include "netlist/parser.h"

namespace symref::dc {
namespace {

netlist::Circuit load_deck() {
  const std::string path = std::string(SYMREF_SOURCE_DIR) + "/tools/data/ua741_npn.cir";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing deck: " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return netlist::parse_netlist(text.str());
}

struct BiasTarget {
  const char* device;
  double ic;
};

// The textbook currents circuits::ua741() is built from; the deck's
// bias-trim sources pin the Newton solution onto exactly these.
constexpr BiasTarget kTargets[] = {
    {"q1", 9.5e-6},   {"q2", 9.5e-6},  {"q3", 9.5e-6},   {"q4", 9.5e-6},
    {"q5", 9.5e-6},   {"q6", 9.5e-6},  {"q7", 10e-6},    {"q8", 19e-6},
    {"q9", 19e-6},    {"q10", 19e-6},  {"q11", 730e-6},  {"q12", 730e-6},
    {"q13a", 180e-6}, {"q13b", 550e-6}, {"q14", 180e-6}, {"q16", 16e-6},
    {"q17", 550e-6},  {"q18", 165e-6}, {"q20", 180e-6},
};

TEST(Ua741Deck, OpConvergesOntoTextbookBias) {
  const auto deck = load_deck();
  ASSERT_EQ(deck.devices().size(), std::size(kTargets));

  const OpResult op = solve_op(deck);
  EXPECT_GT(op.newton_iterations, 1);
  EXPECT_LT(op.max_residual, 1e-9);

  // Rails and the diode-connected mirror anchors.
  EXPECT_NEAR(op.voltage_of("vcc"), 15.0, 1e-12);
  EXPECT_NEAR(op.voltage_of("vee"), -15.0, 1e-12);
  EXPECT_NEAR(op.voltage_of("c8"), 14.35, 1e-6);
  EXPECT_NEAR(op.voltage_of("b11"), -14.35, 1e-6);
  EXPECT_NEAR(op.voltage_of("vo"), 0.0, 1e-6);

  for (std::size_t i = 0; i < std::size(kTargets); ++i) {
    const OpDeviceInfo& info = op.devices[i];
    EXPECT_EQ(info.name, kTargets[i].device);
    const double ic = std::abs(info.value("ic"));
    EXPECT_NEAR(ic, kTargets[i].ic, 1e-8 * kTargets[i].ic) << info.name;
  }
}

TEST(Ua741Deck, NewtonReplaysOneSharedPlan) {
  const auto deck = load_deck();
  OpSolver solver;
  const OpResult first = solver.solve(deck);
  // The whole homotopy — every Newton iteration of every stage — replays
  // the single symbolic factorization recorded on iteration one.
  EXPECT_EQ(solver.fresh_factor_count(), 1u);
  EXPECT_EQ(first.fresh_factorizations, 1u);
  EXPECT_FALSE(first.degraded);

  // A second solve (a parameter-sweep sample) replays the same plan too.
  const OpResult second = solver.solve(deck);
  EXPECT_EQ(solver.fresh_factor_count(), 1u);
  EXPECT_EQ(second.fresh_factorizations, 0u);
}

TEST(Ua741Deck, LinearizationMatchesHandBuiltElementByElement) {
  const auto deck = load_deck();
  const netlist::Circuit linear = linearize(deck);
  const netlist::Circuit reference = circuits::ua741();

  ASSERT_EQ(linear.elements().size(), reference.elements().size());
  for (const netlist::Element& want : reference.elements()) {
    const netlist::Element* got = linear.find_element(want.name);
    ASSERT_NE(got, nullptr) << want.name;
    EXPECT_EQ(got->kind, want.kind) << want.name;
    EXPECT_EQ(linear.node_name(got->node_pos), reference.node_name(want.node_pos)) << want.name;
    EXPECT_EQ(linear.node_name(got->node_neg), reference.node_name(want.node_neg)) << want.name;
    // Values come through devices::bjt_small_signal -> BjtParams::from_bias
    // at the SOLVED currents, which sit within Newton tolerance of the
    // textbook currents the reference was built from.
    EXPECT_NEAR(got->value, want.value, 1e-8 * std::abs(want.value)) << want.name;
  }
}

TEST(Ua741Deck, AutoLinearizedAcMatchesReferenceAcrossTheSweep) {
  const auto deck = load_deck();
  const netlist::Circuit linear = linearize(deck);
  const netlist::Circuit reference = circuits::ua741();
  const mna::AcSimulator sim(linear);
  const mna::AcSimulator ref(reference);
  const mna::TransferSpec spec = circuits::ua741_gain_spec();

  for (const double f : {1.0, 1e2, 1e4, 1e6, 1e8}) {
    const std::complex<double> h = sim.transfer(spec, f);
    const std::complex<double> r = ref.transfer(spec, f);
    EXPECT_LT(std::abs(h - r), 1e-7 * std::abs(r)) << "f = " << f;
  }
  // And the headline number: >100 dB of open-loop DC gain.
  EXPECT_GT(mna::magnitude_db(sim.transfer(spec, 1.0)), 100.0);
}

TEST(Ua741Deck, LinearizedSweepIsBitIdenticalAcrossThreadCounts) {
  const auto deck = load_deck();
  const netlist::Circuit linear = linearize(deck);
  const mna::AcSimulator sim(linear);
  const mna::TransferSpec spec = circuits::ua741_gain_spec();

  const auto serial = sim.bode(spec, 1.0, 1e8, 3, /*threads=*/1);
  const auto parallel = sim.bode(spec, 1.0, 1e8, 3, /*threads=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].value.real(), parallel[i].value.real());
    EXPECT_EQ(serial[i].value.imag(), parallel[i].value.imag());
  }
}

}  // namespace
}  // namespace symref::dc
