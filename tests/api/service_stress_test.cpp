// The documented Service thread-safety contract, under load: many threads
// hammering one handle (same and different specs) and many handles
// concurrently, with every response bit-identical to the serial path; plus
// the bounded response cache (LRU eviction + CacheStats counters).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/serialize.h"
#include "api/service.h"
#include "circuits/ladder.h"
#include "numeric/scaled.h"

namespace symref::api {
namespace {

constexpr int kStages = 8;

netlist::Circuit stress_circuit() { return circuits::rc_ladder(kStages); }

/// The two specs the stress mixes on one handle: across the ladder and to
/// its midpoint.
mna::TransferSpec spec_full() { return circuits::rc_ladder_spec(kStages); }
mna::TransferSpec spec_mid() { return mna::TransferSpec::voltage_gain("in", "n4"); }

/// Canonical fingerprint of a response: the serialized reference (hex-float
/// mantissas make the comparison bit-exact).
std::string fingerprint(const RefgenResponse& response) {
  return to_json(response.result.reference).dump();
}

/// Serial baseline: each request computed cold on its own fresh handle —
/// exactly what a lone caller would get.
std::string serial_refgen(const mna::TransferSpec& spec) {
  const Service service;
  const auto handle = service.compile(stress_circuit());
  EXPECT_TRUE(handle.ok());
  const auto response = service.refgen(handle.value(), {spec, {}});
  EXPECT_TRUE(response.ok()) << response.status().to_string();
  return fingerprint(response.value());
}

TEST(ServiceStress, OneHandleManySpecsManyThreadsBitIdenticalToSerial) {
  const std::string expected_full = serial_refgen(spec_full());
  const std::string expected_mid = serial_refgen(spec_mid());
  // Distinct specs genuinely differ — the assertion below is not vacuous.
  ASSERT_NE(expected_full, expected_mid);

  const Service service;
  const auto compiled = service.compile(stress_circuit(), "ladder-8");
  ASSERT_TRUE(compiled.ok());
  const CircuitHandle handle = compiled.value();

  // One options set per spec: with response caching on, each spec is
  // computed exactly once — by whichever thread arrives first, on a COLD
  // evaluator (the entry is fresh) — and every other thread receives the
  // memoized copy. Bit-identity to the serial path is therefore exact.
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const bool full = (t + round) % 2 == 0;
        const auto response = service.refgen(handle, {full ? spec_full() : spec_mid(), {}});
        if (!response.ok() ||
            fingerprint(response.value()) != (full ? expected_full : expected_mid)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = service.cache_stats(handle);
  ASSERT_TRUE(stats.ok());
  // Exactly two computations happened; everything else hit the cache.
  EXPECT_EQ(stats.value().misses, 2u);
  EXPECT_EQ(stats.value().hits,
            static_cast<std::uint64_t>(kThreads * kRounds) - 2u);
  EXPECT_EQ(stats.value().evictions, 0u);
  EXPECT_EQ(stats.value().entries, 2u);
}

TEST(ServiceStress, ManyHandlesConcurrentlyBitIdenticalToSerial) {
  const std::string expected = serial_refgen(spec_full());
  const Service service;
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Each thread compiles its own handle and queries it — the
      // many-independent-clients shape.
      const auto handle = service.compile(stress_circuit());
      if (!handle.ok()) {
        failures.fetch_add(1);
        return;
      }
      const auto response = service.refgen(handle.value(), {spec_full(), {}});
      if (!response.ok() || fingerprint(response.value()) != expected) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServiceStress, MixedSweepAndRefgenOnOneHandle) {
  const Service service;
  const auto compiled = service.compile(stress_circuit());
  ASSERT_TRUE(compiled.ok());
  const CircuitHandle handle = compiled.value();

  SweepRequest sweep;
  sweep.spec = spec_full();
  sweep.f_start_hz = 1.0;
  sweep.f_stop_hz = 1e6;
  sweep.points_per_decade = 3;
  const auto sweep_baseline = service.sweep(handle, sweep);
  ASSERT_TRUE(sweep_baseline.ok());
  const auto refgen_baseline = service.refgen(handle, {spec_full(), {}});
  ASSERT_TRUE(refgen_baseline.ok());

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round) {
        if ((t + round) % 2 == 0) {
          const auto response = service.sweep(handle, sweep);
          if (!response.ok() ||
              response.value().points.size() != sweep_baseline.value().points.size()) {
            failures.fetch_add(1);
            continue;
          }
          for (std::size_t i = 0; i < response.value().points.size(); ++i) {
            if (response.value().points[i].value != sweep_baseline.value().points[i].value) {
              failures.fetch_add(1);
              break;
            }
          }
        } else {
          const auto response = service.refgen(handle, {spec_full(), {}});
          if (!response.ok() || fingerprint(response.value()) !=
                                    fingerprint(refgen_baseline.value())) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// The LRU satellite: max_cached_responses bounds each per-spec response
// cache, evicting least-recently-used entries, with the counters exposed
// through CacheStats.
TEST(ServiceCacheBound, LruEvictionAndCounters) {
  ServiceOptions options;
  options.max_cached_responses = 2;
  const Service service(options);
  const auto compiled = service.compile(stress_circuit());
  ASSERT_TRUE(compiled.ok());
  const CircuitHandle handle = compiled.value();

  auto request_with_sigma = [&](int sigma) {
    RefgenRequest request{spec_full(), {}};
    request.options.sigma = sigma;
    return request;
  };

  // A, B, C with capacity 2: C's insert evicts A (least recently used).
  ASSERT_TRUE(service.refgen(handle, request_with_sigma(5)).ok());  // A: miss
  ASSERT_TRUE(service.refgen(handle, request_with_sigma(6)).ok());  // B: miss
  ASSERT_TRUE(service.refgen(handle, request_with_sigma(7)).ok());  // C: miss, evicts A
  auto stats = service.cache_stats(handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().misses, 3u);
  EXPECT_EQ(stats.value().hits, 0u);
  EXPECT_EQ(stats.value().evictions, 1u);
  EXPECT_EQ(stats.value().entries, 2u);

  // A again: recomputed (it was evicted) and reinserted, evicting B.
  const auto a_again = service.refgen(handle, request_with_sigma(5));
  ASSERT_TRUE(a_again.ok());
  EXPECT_FALSE(a_again.value().from_cache);
  // C again: still resident.
  const auto c_again = service.refgen(handle, request_with_sigma(7));
  ASSERT_TRUE(c_again.ok());
  EXPECT_TRUE(c_again.value().from_cache);

  stats = service.cache_stats(handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().misses, 4u);
  EXPECT_EQ(stats.value().hits, 1u);
  EXPECT_EQ(stats.value().evictions, 2u);
  EXPECT_EQ(stats.value().entries, 2u);

  // Unbounded mode (0) never evicts — the pre-LRU behavior stays available.
  ServiceOptions unbounded;
  unbounded.max_cached_responses = 0;
  const Service open_service(unbounded);
  const auto open_handle = open_service.compile(stress_circuit());
  ASSERT_TRUE(open_handle.ok());
  for (int sigma = 4; sigma < 10; ++sigma) {
    ASSERT_TRUE(open_service.refgen(open_handle.value(), request_with_sigma(sigma)).ok());
  }
  const auto open_stats = open_service.cache_stats(open_handle.value());
  ASSERT_TRUE(open_stats.ok());
  EXPECT_EQ(open_stats.value().evictions, 0u);
  EXPECT_EQ(open_stats.value().entries, 6u);
}

}  // namespace
}  // namespace symref::api
