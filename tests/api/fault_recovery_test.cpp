// Fault-injection recovery: every injected fault yields a typed Status,
// recovery paths (degradation ladder, retry/backoff, deadline, shed-load,
// reference store) engage, and handle caches stay usable afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/jobs.h"
#include "api/protocol.h"
#include "api/serialize.h"
#include "api/service.h"
#include "circuits/ua741.h"
#include "netlist/writer.h"
#include "support/fault_injection.h"

namespace symref::api {
namespace {

constexpr const char* kRcNetlist = R"(
.title two-pole rc
R1 in  n1 1k
C1 n1  0  100n
R2 n1  out 10k
C2 out 0  10n
)";

AnyRequest rc_refgen() {
  AnyRequest request;
  request.type = AnyRequest::Type::kRefgen;
  request.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  return request;
}

CircuitHandle compile(const Service& service, const std::string& netlist) {
  auto compiled = service.compile_netlist(netlist);
  EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
  return compiled.take();
}

/// RC ladder big enough that its reference run takes hundreds of
/// milliseconds — deadline tests need a job that reliably outlives a
/// tens-of-milliseconds budget on any machine.
std::string ladder_netlist(int stages) {
  std::string text = ".title rc ladder\n";
  std::string prev = "in";
  for (int i = 0; i < stages; ++i) {
    const std::string node = "n" + std::to_string(i);
    text += "R" + std::to_string(i) + " " + prev + " " + node + " 1k\n";
    text += "C" + std::to_string(i) + " " + node + " 0 1n\n";
    prev = node;
  }
  text += "Rload " + prev + " out 1k\nCload out 0 1n\n";
  return text;
}

/// Response JSON with wall-clock fields removed — everything else must be
/// bit-identical between a clean run and a fault-injected one.
Json strip_timing(const Json& value) {
  if (!value.is_object()) return value;
  Json out = Json::object();
  for (const auto& [key, member] : value.members()) {
    if (key == "seconds" || key == "engine_seconds") continue;
    out.set(key, strip_timing(member));
  }
  return out;
}

std::uint64_t injected_count(const char* site) {
  for (const auto& stats : support::FaultInjector::instance().stats()) {
    if (stats.site == site) return stats.injected;
  }
  return 0;
}

/// Process-global injector: every test starts and ends disarmed.
class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { support::FaultInjector::instance().reset(); }
  void TearDown() override { support::FaultInjector::instance().reset(); }
};

TEST_F(FaultRecoveryTest, LuPivotFaultsFallBackToFreshFactorizationsBitIdentically) {
  const Service service;
  // Clean run first: the baseline reference.
  const CircuitHandle clean_handle = compile(service, kRcNetlist);
  auto clean = service.refgen(clean_handle, {rc_refgen().refgen});
  ASSERT_TRUE(clean.ok()) << clean.status().to_string();

  // Same request with every plan replay refused: each point falls back to a
  // fresh factorization, which re-selects the same pivots — the result must
  // be bit-identical, just slower.
  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_pivot:1"));
  const CircuitHandle faulty_handle = compile(service, kRcNetlist);
  auto faulty = service.refgen(faulty_handle, {rc_refgen().refgen});
  ASSERT_TRUE(faulty.ok()) << faulty.status().to_string();
  EXPECT_GT(injected_count("lu_pivot"), 0u);
  EXPECT_EQ(strip_timing(to_json(clean.value())).dump(),
            strip_timing(to_json(faulty.value())).dump());

  auto engine = service.engine_stats(faulty_handle);
  ASSERT_TRUE(engine.ok());
  EXPECT_GT(engine.value().fresh_factorizations, 0u);
  EXPECT_EQ(engine.value().degraded_responses, 0u);

  // Caches stay healthy once the fault clears: repeat is a cache hit.
  support::FaultInjector::instance().reset();
  auto repeat = service.refgen(faulty_handle, {rc_refgen().refgen});
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().from_cache);
}

TEST_F(FaultRecoveryTest, LuAllocFaultIsTypedUnavailableAndHandleRecovers) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_alloc:1"));
  auto failed = service.refgen(handle, {rc_refgen().refgen});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  support::FaultInjector::instance().reset();
  auto recovered = service.refgen(handle, {rc_refgen().refgen});
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(recovered.value().result.complete);
}

constexpr const char* kDiodeNetlist = R"(
.title forward-biased diode with an rc probe tap
.model nd d is=1e-14
V1 in 0 dc 5
R1 in d 1k
D1 d 0 nd
R2 d m 1k
C2 m 0 1n
)";

TEST_F(FaultRecoveryTest, NewtonStepFaultsFallBackToFreshFactorizationsAndOpStillConverges) {
  const Service service;
  // Clean baseline: the bias solves at compile time through ONE shared plan.
  const CircuitHandle clean = compile(service, kDiodeNetlist);
  auto clean_op = service.op(clean, {});
  ASSERT_TRUE(clean_op.ok()) << clean_op.status().to_string();
  EXPECT_EQ(clean_op.value().result.fresh_factorizations, 1u);

  // Every Newton plan replay refused: each iterate falls back to a fresh
  // factorization through the degradation ladder, and the solve must still
  // land on the same operating point — slower, not degraded, not diverged.
  ASSERT_TRUE(support::FaultInjector::instance().configure("newton_step:1"));
  const CircuitHandle faulty = compile(service, kDiodeNetlist);
  auto faulty_op = service.op(faulty, {});
  ASSERT_TRUE(faulty_op.ok()) << faulty_op.status().to_string();
  EXPECT_GT(injected_count("newton_step"), 0u);

  const dc::OpResult& result = faulty_op.value().result;
  EXPECT_GT(result.fresh_factorizations, 1u);
  EXPECT_FALSE(result.degraded);
  EXPECT_LT(result.max_residual, 1e-9);
  EXPECT_NEAR(result.voltage_of("d"), clean_op.value().result.voltage_of("d"), 1e-9);
  EXPECT_NEAR(result.voltage_of("in"), 5.0, 1e-12);

  auto engine = service.engine_stats(faulty);
  ASSERT_TRUE(engine.ok());
  EXPECT_GT(engine.value().fresh_factorizations, 1u);
  EXPECT_EQ(engine.value().op_solves, 1u);
  EXPECT_GT(engine.value().newton_iterations, 0u);

  // The linearized AC side is untouched by the Newton faults: the handle
  // serves analyses (and repeat .op calls come from the stored bias).
  support::FaultInjector::instance().reset();
  auto repeat = service.op(faulty, {});
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().from_cache);
  auto ac = service.refgen(faulty, {mna::TransferSpec::voltage_gain("d", "m"), {},
                                    /*auto_linearize=*/true});
  ASSERT_TRUE(ac.ok()) << ac.status().to_string();
  EXPECT_TRUE(ac.value().result.complete);
}

TEST_F(FaultRecoveryTest, IntermittentNewtonStepFaultsAreRiddenOutDeterministically) {
  // Half the replays refused with a fixed seed: chaos that reproduces. The
  // solve converges with a fresh-factor count strictly between the clean 1
  // and the all-refused iteration count.
  ASSERT_TRUE(support::FaultInjector::instance().configure("newton_step:0.5:11"));
  const Service service;
  const CircuitHandle handle = compile(service, kDiodeNetlist);
  auto op = service.op(handle, {});
  ASSERT_TRUE(op.ok()) << op.status().to_string();
  EXPECT_GT(op.value().result.fresh_factorizations, 1u);
  EXPECT_LT(op.value().result.fresh_factorizations,
            static_cast<std::uint64_t>(op.value().result.newton_iterations));
  EXPECT_LT(op.value().result.max_residual, 1e-9);
}

TEST_F(FaultRecoveryTest, JsonParseFaultIsTypedParseError) {
  ASSERT_TRUE(support::FaultInjector::instance().configure("json_parse:1"));
  auto parsed = Json::parse("{\"valid\": true}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  support::FaultInjector::instance().reset();
  EXPECT_TRUE(Json::parse("{\"valid\": true}").ok());
}

TEST_F(FaultRecoveryTest, WorkQueueFaultExhaustsRetriesWithTypedUnavailable) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  JobManager jobs(service, 1);
  ASSERT_TRUE(support::FaultInjector::instance().configure("work_queue:1"));

  SubmitOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 1.0;
  const JobId id = jobs.submit(handle, rc_refgen(), std::move(options));
  auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(injected_count("work_queue"), 3u);  // one per attempt
  auto info = jobs.poll(id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().attempts, 3);

  // The manager (and the handle) keep working once the fault clears.
  support::FaultInjector::instance().reset();
  auto recovered = jobs.wait(jobs.submit(handle, rc_refgen()));
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().status.ok()) << recovered.value().status.to_string();
}

TEST_F(FaultRecoveryTest, RetryRidesOutIntermittentWorkQueueFaults) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  JobManager jobs(service, 1);
  // Half the attempts fail, deterministically (fixed seed). With 20
  // attempts the fault cannot survive the retry budget.
  ASSERT_TRUE(support::FaultInjector::instance().configure("work_queue:0.5:11"));
  SubmitOptions options;
  options.retry.max_attempts = 20;
  options.retry.initial_backoff_ms = 1.0;
  options.retry.max_backoff_ms = 4.0;
  const JobId id = jobs.submit(handle, rc_refgen(), std::move(options));
  auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().status.ok()) << outcome.value().status.to_string();
  EXPECT_TRUE(outcome.value().refgen.result.complete);
}

TEST_F(FaultRecoveryTest, QueuedJobDeadlineExpiresTyped) {
  const Service service;
  const CircuitHandle rc = compile(service, kRcNetlist);
  const CircuitHandle big = compile(service, ladder_netlist(600));
  JobManager jobs(service, 1);

  AnyRequest blocker;
  blocker.type = AnyRequest::Type::kRefgen;
  blocker.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  const JobId running = jobs.submit(big, std::move(blocker));

  // Queued behind the ladder job with a 10ms budget: expires before running.
  SubmitOptions options;
  options.deadline_ms = 10.0;
  const JobId queued = jobs.submit(rc, rc_refgen(), std::move(options));
  auto outcome = jobs.wait(queued);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kDeadlineExceeded);

  auto blocker_outcome = jobs.wait(running);
  ASSERT_TRUE(blocker_outcome.ok());
  EXPECT_TRUE(blocker_outcome.value().status.ok());
}

TEST_F(FaultRecoveryTest, RunningJobDeadlineTripsTheEngineCheckpoint) {
  const Service service;
  const CircuitHandle big = compile(service, ladder_netlist(600));
  JobManager jobs(service, 1);
  AnyRequest request;
  request.type = AnyRequest::Type::kRefgen;
  request.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  SubmitOptions options;
  options.deadline_ms = 25.0;  // far below the ladder's >500ms reference run
  const JobId id = jobs.submit(big, std::move(request), std::move(options));
  auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kDeadlineExceeded);

  // The handle is not poisoned: the same request completes without deadline.
  AnyRequest again;
  again.type = AnyRequest::Type::kRefgen;
  again.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  auto clean = jobs.wait(jobs.submit(big, std::move(again)));
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean.value().status.ok()) << clean.value().status.to_string();
}

TEST_F(FaultRecoveryTest, BoundedQueueShedsLoadAsOverloaded) {
  const Service service;
  const CircuitHandle rc = compile(service, kRcNetlist);
  const CircuitHandle big = compile(service, netlist::write_netlist(circuits::ua741()));
  JobManager jobs(service, 1, /*max_retained_jobs=*/64, /*max_queue_depth=*/1);

  AnyRequest blocker;
  blocker.type = AnyRequest::Type::kRefgen;
  blocker.refgen.spec = mna::TransferSpec::voltage_gain("inp", "vo", "inn");
  const JobId running = jobs.submit(big, std::move(blocker));
  // Give the worker a moment to pop the blocker off the queue.
  while (true) {
    auto info = jobs.poll(running);
    ASSERT_TRUE(info.ok());
    if (info.value().state != JobState::kQueued) break;
    std::this_thread::yield();
  }

  const JobId waiting = jobs.submit(rc, rc_refgen());  // fills the queue
  const JobId shed = jobs.submit(rc, rc_refgen());     // over the bound
  auto outcome = jobs.wait(shed);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kOverloaded);

  // Accepted work is unaffected by the shed job.
  auto accepted = jobs.wait(waiting);
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted.value().status.ok());
  auto blocker_outcome = jobs.wait(running);
  ASSERT_TRUE(blocker_outcome.ok());
  EXPECT_TRUE(blocker_outcome.value().status.ok());
}

// --- Reference store through the protocol layer -----------------------------

namespace fs = std::filesystem;

std::vector<std::string> run_session(protocol::ServerCore& core, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  {
    protocol::Session session(core, std::make_shared<protocol::IostreamTransport>(in, out));
    session.serve();
  }
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

Json find_reply(const std::vector<std::string>& lines, int id) {
  for (const std::string& line : lines) {
    auto parsed = Json::parse(line);
    if (!parsed.ok()) continue;
    const Json* found = parsed.value().find("id");
    if (found != nullptr && found->is_number() && found->as_int() == id) {
      return parsed.take();
    }
  }
  return Json();
}

TEST_F(FaultRecoveryTest, StoreReplaysByteIdenticalAcrossServerCores) {
  const fs::path dir = fs::path(::testing::TempDir()) / "fault_recovery_store";
  fs::remove_all(dir);

  const std::string script =
      std::string(R"({"id":1,"method":"compile","params":{"netlist":)") +
      Json(std::string(kRcNetlist)).dump() + R"(}})" +
      "\n"
      R"({"id":2,"method":"submit","params":{"circuit_id":"c1","request":{"type":"refgen","spec":{"in":"in","out":"out"}}}})"
      "\n"
      R"({"id":3,"method":"wait","params":{"job_id":"j1"}})"
      "\n";

  protocol::ServerOptions options;
  options.workers = 1;
  options.store_dir = dir.string();

  // First core computes and persists.
  std::string first_result;
  {
    protocol::ServerCore core(options);
    ASSERT_NE(core.store(), nullptr);
    ASSERT_TRUE(core.store()->ok()) << core.store()->error();
    const auto lines = run_session(core, script);
    const Json submit = find_reply(lines, 2);
    ASSERT_TRUE(submit.find("result") != nullptr);
    EXPECT_TRUE(submit.find("result")->find("stored") == nullptr);
    const Json waited = find_reply(lines, 3);
    ASSERT_TRUE(waited.find("result") != nullptr);
    ASSERT_TRUE(waited.find("result")->find("result") != nullptr);
    first_result = waited.find("result")->find("result")->dump();
  }

  // Second core (a "restarted daemon") replays from the store, byte for
  // byte, and announces the hit in the submit reply.
  {
    protocol::ServerCore core(options);
    const auto lines = run_session(core, script);
    const Json submit = find_reply(lines, 2);
    ASSERT_TRUE(submit.find("result") != nullptr);
    const Json* stored = submit.find("result")->find("stored");
    ASSERT_TRUE(stored != nullptr);
    EXPECT_TRUE(stored->as_bool());
    const Json waited = find_reply(lines, 3);
    ASSERT_TRUE(waited.find("result") != nullptr);
    ASSERT_TRUE(waited.find("result")->find("result") != nullptr);
    EXPECT_EQ(waited.find("result")->find("result")->dump(), first_result);
    EXPECT_GT(core.store()->stats().hits, 0u);
  }

  // Different request parameters miss the store (distinct key).
  {
    protocol::ServerCore core(options);
    const std::string other =
        std::string(R"({"id":1,"method":"compile","params":{"netlist":)") +
        Json(std::string(kRcNetlist)).dump() + R"(}})" +
        "\n"
        R"({"id":2,"method":"submit","params":{"circuit_id":"c1","request":{"type":"refgen","spec":{"in":"in","out":"out"},"options":{"sigma":8}}}})"
        "\n"
        R"({"id":3,"method":"wait","params":{"job_id":"j1"}})"
        "\n";
    const auto lines = run_session(core, other);
    const Json submit = find_reply(lines, 2);
    ASSERT_TRUE(submit.find("result") != nullptr);
    EXPECT_TRUE(submit.find("result")->find("stored") == nullptr);
  }
  fs::remove_all(dir);
}

TEST_F(FaultRecoveryTest, ThreadCountDoesNotChangeTheStoreKey) {
  const fs::path dir = fs::path(::testing::TempDir()) / "fault_recovery_store_threads";
  fs::remove_all(dir);
  protocol::ServerOptions options;
  options.workers = 1;
  options.store_dir = dir.string();

  const auto script_with_threads = [&](int threads) {
    return std::string(R"({"id":1,"method":"compile","params":{"netlist":)") +
           Json(std::string(kRcNetlist)).dump() + R"(}})" +
           "\n"
           R"({"id":2,"method":"submit","params":{"circuit_id":"c1","request":{"type":"refgen","spec":{"in":"in","out":"out"},"options":{"threads":)" +
           std::to_string(threads) + R"(}}}})" +
           "\n"
           R"({"id":3,"method":"wait","params":{"job_id":"j1"}})"
           "\n";
  };
  {
    protocol::ServerCore core(options);
    run_session(core, script_with_threads(1));
  }
  {
    protocol::ServerCore core(options);
    const auto lines = run_session(core, script_with_threads(2));
    const Json submit = find_reply(lines, 2);
    ASSERT_TRUE(submit.find("result") != nullptr);
    const Json* stored = submit.find("result")->find("stored");
    ASSERT_TRUE(stored != nullptr) << "thread count leaked into the store key";
    EXPECT_TRUE(stored->as_bool());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace symref::api
