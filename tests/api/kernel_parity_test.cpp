// Replay-kernel parity at the service boundary: every request type must
// return BIT-IDENTICAL responses under ReplayKernel::kScalar and kBatched,
// the degradation-ladder counters of engine_stats must agree (including
// under injected lu_pivot faults — the REFGEN_FAULT=lu_pivot scenario), and
// the kernel choice must stay out of the response-cache key.
#include <gtest/gtest.h>

#include <string>

#include "api/serialize.h"
#include "api/service.h"
#include "support/fault_injection.h"

namespace symref::api {
namespace {

/// RC ladder with enough stages that refgen runs real interpolation batches
/// (the batched kernel's SoA groups actually fill).
std::string ladder_netlist(int stages) {
  std::string text = ".title rc ladder\n";
  std::string prev = "in";
  for (int i = 0; i < stages; ++i) {
    const std::string node = "n" + std::to_string(i);
    text += "R" + std::to_string(i) + " " + prev + " " + node + " 1k\n";
    text += "C" + std::to_string(i) + " " + node + " 0 1n\n";
    prev = node;
  }
  text += "Rload " + prev + " out 1k\nCload out 0 1n\n";
  return text;
}

constexpr const char* kParamNetlist = R"(
.title parameterized ladder
.param r=1k c=100n
R1 in n1 {r}
C1 n1 0 {c}
R2 n1 n2 {r}
C2 n2 0 {c}
R3 n2 out {r}
C3 out 0 {c}
)";

CircuitHandle compile(const Service& service, const std::string& netlist) {
  auto compiled = service.compile_netlist(netlist);
  EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
  return compiled.take();
}

/// Response JSON minus wall-clock fields — everything else must match.
Json strip_timing(const Json& value) {
  if (value.is_object()) {
    Json out = Json::object();
    for (const auto& [key, member] : value.members()) {
      if (key == "seconds" || key == "engine_seconds") continue;
      out.set(key, strip_timing(member));
    }
    return out;
  }
  if (value.is_array()) {
    Json out = Json::array();
    for (const Json& item : value.items()) out.push_back(strip_timing(item));
    return out;
  }
  return value;
}

mna::TransferSpec ladder_spec() { return mna::TransferSpec::voltage_gain("in", "out"); }

/// Process-global injector: every test starts and ends disarmed.
class KernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override { support::FaultInjector::instance().reset(); }
  void TearDown() override { support::FaultInjector::instance().reset(); }
};

TEST_F(KernelParityTest, RefgenResponseAndEngineStatsMatch) {
  const std::string netlist = ladder_netlist(12);
  RefgenRequest scalar_request{ladder_spec(), {}};
  scalar_request.options.kernel = sparse::ReplayKernel::kScalar;
  RefgenRequest batched_request = scalar_request;
  batched_request.options.kernel = sparse::ReplayKernel::kBatched;

  const Service scalar_service;
  const CircuitHandle scalar_handle = compile(scalar_service, netlist);
  const auto scalar = scalar_service.refgen(scalar_handle, scalar_request);
  ASSERT_TRUE(scalar.ok()) << scalar.status().to_string();

  const Service batched_service;
  const CircuitHandle batched_handle = compile(batched_service, netlist);
  const auto batched = batched_service.refgen(batched_handle, batched_request);
  ASSERT_TRUE(batched.ok()) << batched.status().to_string();

  EXPECT_EQ(strip_timing(to_json(scalar.value())).dump(),
            strip_timing(to_json(batched.value())).dump());

  const auto scalar_stats = scalar_service.engine_stats(scalar_handle);
  const auto batched_stats = batched_service.engine_stats(batched_handle);
  ASSERT_TRUE(scalar_stats.ok());
  ASSERT_TRUE(batched_stats.ok());
  EXPECT_EQ(scalar_stats.value().fresh_factorizations,
            batched_stats.value().fresh_factorizations);
  EXPECT_EQ(scalar_stats.value().pivot_escalations, batched_stats.value().pivot_escalations);
  EXPECT_EQ(scalar_stats.value().degraded_responses, batched_stats.value().degraded_responses);
  EXPECT_EQ(scalar_stats.value().supernodes, batched_stats.value().supernodes);
  EXPECT_GT(batched_stats.value().supernodes, 0u);
  // The lane counter is the one legitimate difference: it counts points
  // actually routed through SoA lanes.
  EXPECT_EQ(scalar_stats.value().batched_lanes, 0u);
  EXPECT_GT(batched_stats.value().batched_lanes, 0u);
}

TEST_F(KernelParityTest, SweepResponsesMatchAtEveryThreadCount) {
  const std::string netlist = ladder_netlist(10);
  for (const int threads : {1, 3}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    SweepRequest scalar_request;
    scalar_request.spec = ladder_spec();
    scalar_request.f_start_hz = 10.0;
    scalar_request.f_stop_hz = 1e8;
    scalar_request.points_per_decade = 12;
    scalar_request.threads = threads;
    scalar_request.kernel = sparse::ReplayKernel::kScalar;
    SweepRequest batched_request = scalar_request;
    batched_request.kernel = sparse::ReplayKernel::kBatched;

    const Service scalar_service;
    const auto scalar = scalar_service.sweep(compile(scalar_service, netlist), scalar_request);
    ASSERT_TRUE(scalar.ok()) << scalar.status().to_string();
    const Service batched_service;
    const auto batched =
        batched_service.sweep(compile(batched_service, netlist), batched_request);
    ASSERT_TRUE(batched.ok()) << batched.status().to_string();
    EXPECT_EQ(strip_timing(to_json(scalar.value())).dump(),
              strip_timing(to_json(batched.value())).dump());
  }
}

TEST_F(KernelParityTest, ParamSweepResponsesAndPlanEconomicsMatch) {
  ParamSweepRequest scalar_request;
  scalar_request.spec = ladder_spec();
  scalar_request.mode = ParamSweepRequest::Mode::kGrid;
  scalar_request.axes = {{"r", 500.0, 2000.0, 5, false}, {"c", 50e-9, 200e-9, 3, true}};
  scalar_request.f_start_hz = 10.0;
  scalar_request.f_stop_hz = 1e6;
  scalar_request.points_per_decade = 4;
  scalar_request.kernel = sparse::ReplayKernel::kScalar;
  ParamSweepRequest batched_request = scalar_request;
  batched_request.kernel = sparse::ReplayKernel::kBatched;

  const Service scalar_service;
  const auto scalar =
      scalar_service.param_sweep(compile(scalar_service, kParamNetlist), scalar_request);
  ASSERT_TRUE(scalar.ok()) << scalar.status().to_string();
  const Service batched_service;
  const auto batched =
      batched_service.param_sweep(compile(batched_service, kParamNetlist), batched_request);
  ASSERT_TRUE(batched.ok()) << batched.status().to_string();

  EXPECT_EQ(strip_timing(to_json(scalar.value())).dump(),
            strip_timing(to_json(batched.value())).dump());
  // The headline plan-reuse economics must not change with the kernel.
  EXPECT_EQ(scalar.value().result.fresh_factorizations,
            batched.value().result.fresh_factorizations);
}

TEST_F(KernelParityTest, InjectedLuPivotFaultsKeepKernelsIdentical) {
  // REFGEN_FAULT=lu_pivot scenario: every replay refused, every point falls
  // back through the degradation ladder. Both kernels draw the fault site
  // once per point, so responses AND the ladder counters stay identical.
  const std::string netlist = ladder_netlist(8);
  RefgenRequest scalar_request{ladder_spec(), {}};
  scalar_request.options.kernel = sparse::ReplayKernel::kScalar;
  RefgenRequest batched_request = scalar_request;
  batched_request.options.kernel = sparse::ReplayKernel::kBatched;

  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_pivot:1"));
  const Service scalar_service;
  const CircuitHandle scalar_handle = compile(scalar_service, netlist);
  const auto scalar = scalar_service.refgen(scalar_handle, scalar_request);
  ASSERT_TRUE(scalar.ok()) << scalar.status().to_string();
  support::FaultInjector::instance().reset();

  ASSERT_TRUE(support::FaultInjector::instance().configure("lu_pivot:1"));
  const Service batched_service;
  const CircuitHandle batched_handle = compile(batched_service, netlist);
  const auto batched = batched_service.refgen(batched_handle, batched_request);
  ASSERT_TRUE(batched.ok()) << batched.status().to_string();
  support::FaultInjector::instance().reset();

  EXPECT_EQ(strip_timing(to_json(scalar.value())).dump(),
            strip_timing(to_json(batched.value())).dump());
  const auto scalar_stats = scalar_service.engine_stats(scalar_handle);
  const auto batched_stats = batched_service.engine_stats(batched_handle);
  ASSERT_TRUE(scalar_stats.ok());
  ASSERT_TRUE(batched_stats.ok());
  EXPECT_GT(scalar_stats.value().fresh_factorizations, 0u);
  EXPECT_EQ(scalar_stats.value().fresh_factorizations,
            batched_stats.value().fresh_factorizations);
  EXPECT_EQ(scalar_stats.value().pivot_escalations, batched_stats.value().pivot_escalations);
  EXPECT_EQ(scalar_stats.value().degraded_responses, batched_stats.value().degraded_responses);
}

TEST_F(KernelParityTest, KernelIsNotPartOfTheResponseCacheKey) {
  // Bit-identical results mean a batched request may be served from a
  // response the scalar kernel computed (and vice versa) — like threads.
  const Service service;
  const CircuitHandle handle = compile(service, ladder_netlist(6));
  RefgenRequest scalar_request{ladder_spec(), {}};
  scalar_request.options.kernel = sparse::ReplayKernel::kScalar;
  const auto cold = service.refgen(handle, scalar_request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.value().from_cache);

  RefgenRequest batched_request = scalar_request;
  batched_request.options.kernel = sparse::ReplayKernel::kBatched;
  const auto warm = service.refgen(handle, batched_request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  RefgenResponse replayed = warm.value();
  replayed.from_cache = cold.value().from_cache;  // compare payloads, not provenance
  EXPECT_EQ(strip_timing(to_json(cold.value())).dump(),
            strip_timing(to_json(replayed)).dump());
}

}  // namespace
}  // namespace symref::api
