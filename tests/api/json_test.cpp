// Minimal JSON value: build/dump/parse round trips and strict-parse errors.
#include "api/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace symref::api {
namespace {

TEST(Json, BuildAndDumpCompact) {
  Json out = Json::object();
  out.set("name", "ua741");
  out.set("ok", true);
  out.set("count", 3);
  Json list = Json::array();
  list.push_back(1.5);
  list.push_back(nullptr);
  out.set("values", std::move(list));
  EXPECT_EQ(out.dump(), R"({"name":"ua741","ok":true,"count":3,"values":[1.5,null]})");
}

TEST(Json, ObjectPreservesInsertionOrderAndReplaces) {
  Json out = Json::object();
  out.set("b", 1);
  out.set("a", 2);
  out.set("b", 3);  // replace in place, order kept
  EXPECT_EQ(out.dump(), R"({"b":3,"a":2})");
}

TEST(Json, NumbersRoundTripShortest) {
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(6.0).dump(), "6");
  EXPECT_EQ(Json(1e300).dump(), "1e+300");
  // 17 digits only when needed.
  const double precise = 0.1234567890123456789;
  const Json parsed = Json::parse(Json(precise).dump()).take();
  EXPECT_EQ(parsed.as_number(), precise);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringEscapes) {
  const Json value(std::string("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(value.dump(), R"("a\"b\\c\nd\te\u0001")");
  const Json back = Json::parse(value.dump()).take();
  EXPECT_EQ(back.as_string(), value.as_string());
}

TEST(Json, ParseDocument) {
  const auto result = Json::parse(R"(
    {"spec": {"in": "inp", "out": "vo"},
     "options": {"sigma": 6, "deflate": true},
     "grid": [1, 10.5, 1e3],
     "note": "uA"}
  )");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const Json& doc = result.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("spec")->find("in")->as_string(), "inp");
  EXPECT_EQ(doc.find("options")->find("sigma")->as_int(), 6);
  EXPECT_TRUE(doc.find("options")->find("deflate")->as_bool());
  ASSERT_EQ(doc.find("grid")->size(), 3u);
  EXPECT_EQ(doc.find("grid")->items()[2].as_number(), 1e3);
  EXPECT_EQ(doc.find("note")->as_string(), "uA");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, DumpPrettyReparses) {
  Json out = Json::object();
  out.set("a", Json::array().push_back(1).push_back(2));
  Json inner = Json::object();
  inner.set("k", "v");
  out.set("b", std::move(inner));
  const std::string pretty = out.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto reparsed = Json::parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().dump(), out.dump());
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  const auto result = Json::parse("{\n  \"a\": 1,\n  \"b\": bogus\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_EQ(result.status().location().line, 3);
  EXPECT_GT(result.status().location().column, 1);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "nul", "{\"a\" 1}", "{\"a\":1} extra", "\"unterminated",
        "01", "1.", "1e", "[1 2]", "{'a':1}", "\x01"}) {
    EXPECT_FALSE(Json::parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(Json, AccessorsAreTypeSafe) {
  const Json number(4.0);
  EXPECT_EQ(number.as_string(), "");
  EXPECT_TRUE(number.items().empty());
  EXPECT_TRUE(number.members().empty());
  EXPECT_EQ(number.find("x"), nullptr);
  EXPECT_EQ(number.size(), 0u);
  EXPECT_EQ(Json("text").as_number(7.0), 7.0);
}

}  // namespace
}  // namespace symref::api
