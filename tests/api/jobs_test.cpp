// api::JobManager: async submit/poll/wait/cancel/list semantics, the
// cooperative cancellation contract (queued and mid-iteration), and the
// promise that cancellation never poisons a handle's caches.
#include "api/jobs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/service.h"
#include "circuits/ua741.h"

namespace symref::api {
namespace {

constexpr const char* kRcNetlist = R"(
.title two-pole rc
R1 in  n1 1k
C1 n1  0  100n
R2 n1  out 10k
C2 out 0  10n
)";

AnyRequest rc_refgen() {
  AnyRequest request;
  request.type = AnyRequest::Type::kRefgen;
  request.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  return request;
}

CircuitHandle compile(const Service& service, const char* netlist) {
  auto compiled = service.compile_netlist(netlist);
  EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
  return compiled.take();
}

TEST(JobManager, SubmitWaitDeliversTheResponse) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  JobManager jobs(service, 1);

  const JobId id = jobs.submit(handle, rc_refgen());
  ASSERT_NE(id, 0u);
  const auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  ASSERT_TRUE(outcome.value().status.ok()) << outcome.value().status.to_string();
  EXPECT_EQ(outcome.value().type, AnyRequest::Type::kRefgen);
  EXPECT_TRUE(outcome.value().refgen.result.complete);

  const auto info = jobs.poll(id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, JobState::kDone);
  EXPECT_GT(info.value().iterations, 0);
  EXPECT_FALSE(info.value().cancel_requested);
}

TEST(JobManager, SimplifyJobDeliversCertifiedResponse) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  JobManager jobs(service, 1);

  AnyRequest request;
  request.type = AnyRequest::Type::kSimplify;
  request.simplify.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.simplify.options.f_start_hz = 10.0;
  request.simplify.options.f_stop_hz = 1e5;
  request.simplify.options.band_points = 5;

  const JobId id = jobs.submit(handle, std::move(request));
  const auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  ASSERT_TRUE(outcome.value().status.ok()) << outcome.value().status.to_string();
  EXPECT_EQ(outcome.value().type, AnyRequest::Type::kSimplify);
  const auto& result = outcome.value().simplify.result;
  EXPECT_LE(result.certificate.max_relative_error, 0.01);
  EXPECT_GT(result.kept_terms, 0u);
  EXPECT_EQ(to_json(outcome.value()).find("type")->as_string(), "simplify");
}

TEST(JobManager, ProgressAndDoneCallbacksFire) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  JobManager jobs(service, 1);

  std::atomic<int> progress_events{0};
  std::atomic<int> done_events{0};
  JobId done_id = 0;
  const JobId id = jobs.submit(
      handle, rc_refgen(),
      [&](const JobProgress& progress) {
        EXPECT_GT(progress.points, 0);
        progress_events.fetch_add(1);
      },
      [&](JobId job, const JobOutcome& outcome) {
        done_id = job;
        EXPECT_TRUE(outcome.status.ok());
        done_events.fetch_add(1);
      });
  const auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok());
  // wait() releases only after on_done returned — no race to tolerate.
  EXPECT_EQ(done_events.load(), 1);
  EXPECT_EQ(done_id, id);
  EXPECT_EQ(progress_events.load(),
            static_cast<int>(outcome.value().refgen.result.iterations.size()));
}

TEST(JobManager, UnknownIdsPollWaitAsNotFound) {
  const Service service;
  JobManager jobs(service, 1);
  EXPECT_EQ(jobs.poll(12345).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(jobs.wait(12345).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(jobs.cancel(12345));
}

TEST(JobManager, InvalidHandleCompletesAsInvalidArgument) {
  const Service service;
  JobManager jobs(service, 1);
  const JobId id = jobs.submit(CircuitHandle(), rc_refgen());
  const auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kInvalidArgument);
}

// A queued job cancelled before any worker picks it up completes as
// kCancelled immediately — deterministic: the single worker is parked
// inside a job whose observer blocks until the test releases it.
TEST(JobManager, CancelQueuedJobCompletesImmediately) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);
  JobManager jobs(service, 1);

  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  AnyRequest blocker = rc_refgen();
  blocker.refgen.options.on_iteration = [&](const refgen::IterationRecord&) {
    std::unique_lock<std::mutex> lock(mutex);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  const JobId blocking = jobs.submit(handle, blocker);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return started; }));
  }

  const JobId queued = jobs.submit(handle, rc_refgen());
  ASSERT_EQ(jobs.poll(queued).value().state, JobState::kQueued);
  EXPECT_TRUE(jobs.cancel(queued));
  const auto cancelled = jobs.wait(queued);  // already done: returns at once
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled.value().status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(jobs.poll(queued).value().cancel_requested);
  // Cancelling a done job reports false.
  EXPECT_FALSE(jobs.cancel(queued));

  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  const auto blocked_outcome = jobs.wait(blocking);
  ASSERT_TRUE(blocked_outcome.ok());
  EXPECT_TRUE(blocked_outcome.value().status.ok());
}

// The cancellation satellite: a job cancelled mid-iteration stops promptly
// with kCancelled, and the handle's caches serve subsequent requests
// untouched.
TEST(JobManager, CancelMidIterationStopsPromptlyAndKeepsCachesUsable) {
  const Service service;
  const auto compiled = service.compile(circuits::ua741(), "ua741");
  ASSERT_TRUE(compiled.ok());
  const CircuitHandle handle = compiled.value();
  JobManager jobs(service, 1);

  AnyRequest request;
  request.type = AnyRequest::Type::kRefgen;
  request.refgen.spec = circuits::ua741_gain_spec();

  // Cancel from inside the progress stream after the second iteration: the
  // engine observes the token at the next iteration boundary. The observer
  // blocks until the test has published the job id, so the cancel targets
  // the right job deterministically.
  std::atomic<int> iterations_seen{0};
  JobManager* manager = &jobs;
  std::mutex mutex;
  std::condition_variable cv;
  JobId self = 0;
  bool have_id = false;
  const JobId id = jobs.submit(handle, request, [&](const JobProgress& progress) {
    iterations_seen.fetch_add(1);
    if (progress.iteration == 1) {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return have_id; });
      const JobId target = self;
      lock.unlock();
      manager->cancel(target);
    }
  });
  {
    const std::lock_guard<std::mutex> lock(mutex);
    self = id;
    have_id = true;
  }
  cv.notify_all();

  const auto outcome = jobs.wait(id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kCancelled);
  // Stopped promptly: the checkpoint right after the cancelling iteration,
  // nowhere near the ~12 iterations a full µA741 run takes.
  EXPECT_LE(iterations_seen.load(), 3);

  // The handle still serves: the same request (fresh, uncancelled) runs to
  // completion on the warm spec entry, and so does a sweep.
  const auto direct = service.refgen(handle, {circuits::ua741_gain_spec(), {}});
  ASSERT_TRUE(direct.ok()) << direct.status().to_string();
  EXPECT_TRUE(direct.value().result.complete);
  SweepRequest sweep;
  sweep.spec = circuits::ua741_gain_spec();
  sweep.f_start_hz = 1.0;
  sweep.f_stop_hz = 1e6;
  sweep.points_per_decade = 3;
  EXPECT_TRUE(service.sweep(handle, sweep).ok());
}

// Sweep jobs observe the token per point (through AcSimulator::bode).
TEST(JobManager, CancelledSweepReportsCancelledAndSimulatorSurvives) {
  const Service service;
  const CircuitHandle handle = compile(service, kRcNetlist);

  SweepRequest request;
  request.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.f_start_hz = 1.0;
  request.f_stop_hz = 1e6;
  request.points_per_decade = 4;
  support::CancellationSource source;
  source.cancel();
  request.cancel = source.token();
  const auto cancelled = service.sweep(handle, request);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  request.cancel = support::CancellationToken();
  const auto clean = service.sweep(handle, request);
  ASSERT_TRUE(clean.ok()) << clean.status().to_string();
  EXPECT_EQ(clean.value().points.size(), 25u);
}

TEST(JobManager, ListShowsSubmitOrderAndDestructorCancelsQueuedJobs) {
  std::atomic<int> done_count{0};
  {
    const Service service;
    const CircuitHandle handle = compile(service, kRcNetlist);
    JobManager jobs(service, 1);
    std::vector<JobId> ids;
    for (int i = 0; i < 5; ++i) {
      AnyRequest request = rc_refgen();
      request.refgen.options.sigma = 5 + i;  // distinct work per job
      ids.push_back(jobs.submit(handle, request, {},
                                [&](JobId, const JobOutcome&) { done_count.fetch_add(1); }));
    }
    const auto listed = jobs.list();
    ASSERT_EQ(listed.size(), 5u);
    for (std::size_t i = 1; i < listed.size(); ++i) {
      EXPECT_LT(listed[i - 1].id, listed[i].id);
    }
  }  // ~JobManager: cancels queued jobs, joins workers
  // Every job completed exactly once — naturally or as cancelled.
  EXPECT_EQ(done_count.load(), 5);
}

}  // namespace
}  // namespace symref::api
