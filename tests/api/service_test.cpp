// api::Service facade: compile-once/query-many semantics, warm-handle
// caches, the structured error paths of the acceptance criteria (bad
// netlist, bad spec, singular system), batch, and the progress observer.
#include "api/service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "numeric/scaled.h"
#include "refgen/adaptive.h"

namespace symref::api {
namespace {

constexpr const char* kRcNetlist = R"(
.title two-pole rc
R1 in  n1 1k
C1 n1  0  100n
R2 n1  out 10k
C2 out 0  10n
)";

mna::TransferSpec rc_spec() { return mna::TransferSpec::voltage_gain("in", "out"); }

TEST(ServiceCompile, NetlistCompilesToValidHandle) {
  const Service service;
  const auto compiled = service.compile_netlist(kRcNetlist);
  ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();
  const CircuitHandle& handle = compiled.value();
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.name(), "two-pole rc");
  EXPECT_EQ(handle.circuit().element_count(), 4u);
  EXPECT_GT(handle.canonical().element_count(), 0u);
  EXPECT_EQ(handle.dim(), 3);
  EXPECT_EQ(handle.order_bound(), 2);
}

TEST(ServiceCompile, MalformedNetlistMapsToParseErrorWithPosition) {
  const Service service;
  // Line 3: the value token of C1 is garbage; its column is 10.
  const auto compiled = service.compile_netlist("R1 in out 1k\n* comment\nC1 out 0 bogus\n");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kParseError);
  EXPECT_EQ(compiled.status().location().line, 3);
  EXPECT_EQ(compiled.status().location().column, 10);
  EXPECT_NE(compiled.status().message().find("bogus"), std::string::npos);
}

TEST(ServiceCompile, EmptyHandleIsInvalidArgumentEverywhere) {
  const Service service;
  const CircuitHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(service.refgen(empty, {rc_spec(), {}}).status().code(),
            StatusCode::kInvalidArgument);
  SweepRequest sweep;
  sweep.spec = rc_spec();
  EXPECT_EQ(service.sweep(empty, sweep).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.poles_zeros(empty, {rc_spec(), {}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.batch(empty, {}).status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceRefgen, CompleteReferenceAndWarmCacheHit) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();

  const auto cold = service.refgen(handle, {rc_spec(), {}});
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_TRUE(cold.value().result.complete);
  EXPECT_FALSE(cold.value().from_cache);

  const auto warm = service.refgen(handle, {rc_spec(), {}});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  // A cache hit is the same response object: identical coefficients.
  const auto& a = cold.value().result.reference.denominator();
  const auto& b = warm.value().result.reference.denominator();
  ASSERT_EQ(a.order_bound(), b.order_bound());
  for (int i = 0; i <= a.order_bound(); ++i) {
    EXPECT_TRUE(a.at(i).value == b.at(i).value) << i;
  }
}

TEST(ServiceRefgen, WarmPlanReuseWithoutResponseCache) {
  ServiceOptions options;
  options.cache_responses = false;
  const Service service(options);
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();

  const auto cold = service.refgen(handle, {rc_spec(), {}});
  ASSERT_TRUE(cold.ok());
  const auto warm = service.refgen(handle, {rc_spec(), {}});
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm.value().from_cache);
  EXPECT_TRUE(warm.value().result.complete);
  // The warm run replays the cached factorization plan, so pivots may be
  // adopted instead of re-searched: values agree to interpolation accuracy
  // even if not bit-for-bit.
  const auto& a = cold.value().result.reference.denominator();
  const auto& b = warm.value().result.reference.denominator();
  ASSERT_EQ(a.order_bound(), b.order_bound());
  for (int i = 0; i <= a.order_bound(); ++i) {
    EXPECT_LT(numeric::relative_difference(a.at(i).value, b.at(i).value), 1e-6) << i;
  }
}

TEST(ServiceRefgen, BadSpecMapsToInvalidSpec) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();
  const auto response =
      service.refgen(handle, {mna::TransferSpec::voltage_gain("in", "no_such_node"), {}});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidSpec);
}

TEST(ServiceRefgen, SingularSystemMapsToSingularStatus) {
  const Service service;
  // "x"/"y" form a floating island: the admittance matrix is singular at
  // every scaling, so the engine gives up on the first iteration.
  const auto compiled = service.compile_netlist("R1 in 0 1k\nR2 x y 1k\n");
  ASSERT_TRUE(compiled.ok());
  const auto response = service.refgen(
      compiled.value(), {mna::TransferSpec::transimpedance("in", "x"), {}});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kSingularSystem);
}

TEST(ServiceSweep, WarmCacheAndPlanReuse) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();
  SweepRequest request;
  request.spec = rc_spec();
  request.f_start_hz = 1.0;
  request.f_stop_hz = 1e6;
  request.points_per_decade = 4;

  const auto cold = service.sweep(handle, request);
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_FALSE(cold.value().from_cache);
  EXPECT_EQ(cold.value().points.size(), 25u);

  const auto warm = service.sweep(handle, request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  ASSERT_EQ(warm.value().points.size(), cold.value().points.size());
  for (std::size_t i = 0; i < cold.value().points.size(); ++i) {
    EXPECT_EQ(cold.value().points[i].value, warm.value().points[i].value) << i;
  }

  // A different grid misses the response cache but still reuses the
  // simulator's factorization plan (no way to observe directly here beyond
  // correctness; the api bench measures the speedup).
  SweepRequest other = request;
  other.points_per_decade = 3;
  const auto replan = service.sweep(handle, other);
  ASSERT_TRUE(replan.ok());
  EXPECT_FALSE(replan.value().from_cache);
}

TEST(ServiceSweep, ErrorsMapToDistinctCodes) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();

  SweepRequest bad_spec;
  bad_spec.spec = mna::TransferSpec::voltage_gain("in", "nowhere");
  EXPECT_EQ(service.sweep(handle, bad_spec).status().code(), StatusCode::kInvalidSpec);

  SweepRequest bad_grid;
  bad_grid.spec = rc_spec();
  bad_grid.f_start_hz = -1.0;
  EXPECT_EQ(service.sweep(handle, bad_grid).status().code(), StatusCode::kInvalidArgument);

  const auto singular = service.compile_netlist("R1 in 0 1k\nR2 x y 1k\n");
  ASSERT_TRUE(singular.ok());
  SweepRequest on_island;
  on_island.spec = mna::TransferSpec::transimpedance("in", "x");
  EXPECT_EQ(service.sweep(singular.value(), on_island).status().code(),
            StatusCode::kSingularSystem);
}

TEST(ServicePolesZeros, UsesSharedRefgenCache) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();
  const auto reference = service.refgen(handle, {rc_spec(), {}});
  ASSERT_TRUE(reference.ok());

  const auto response = service.poles_zeros(handle, {rc_spec(), {}});
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_TRUE(response.value().from_cache);  // rode the refgen response
  EXPECT_TRUE(response.value().poles_converged);
  EXPECT_EQ(response.value().poles.size(), 2u);
  // Two real poles near 1/(R1 C1') and 1/(R2 C2) territory: both negative real.
  for (const auto& pole : response.value().poles) {
    EXPECT_LT(pole.real(), 0.0);
    EXPECT_NEAR(pole.imag(), 0.0, 1e-3 * std::abs(pole.real()));
  }
}

TEST(ServiceBatch, PerItemStatusAndResultsMatchSingleRequests) {
  const Service service;
  const CircuitHandle handle = service.compile(circuits::rc_ladder(8), "ladder-8").take();
  const auto spec = circuits::rc_ladder_spec(8);

  BatchRequest request;
  request.threads = 2;
  request.items.push_back({spec, {}});
  request.items.push_back({mna::TransferSpec::voltage_gain("in", "missing"), {}});
  refgen::AdaptiveOptions sigma8;
  sigma8.sigma = 8;
  request.items.push_back({spec, sigma8});

  const auto response = service.batch(handle, request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().items.size(), 3u);
  const auto& items = response.value().items;
  ASSERT_TRUE(items[0].status.ok()) << items[0].status.to_string();
  EXPECT_TRUE(items[0].response.result.complete);
  EXPECT_EQ(items[1].status.code(), StatusCode::kInvalidSpec);
  ASSERT_TRUE(items[2].status.ok());

  // Item 0 matches a standalone facade request on a fresh service.
  const Service fresh;
  const auto single =
      fresh.refgen(fresh.compile(circuits::rc_ladder(8)).take(), {spec, {}});
  ASSERT_TRUE(single.ok());
  const auto& a = single.value().result.reference.denominator();
  const auto& b = items[0].response.result.reference.denominator();
  ASSERT_EQ(a.order_bound(), b.order_bound());
  for (int i = 0; i <= a.order_bound(); ++i) {
    EXPECT_TRUE(a.at(i).value == b.at(i).value) << i;
  }
}

TEST(ServiceRefgen, ProgressObserverSeesEveryIteration) {
  const Service service;
  const CircuitHandle handle = service.compile(circuits::ua741(), "ua741").take();

  int observed = 0;
  int last_index = -1;
  RefgenRequest request{circuits::ua741_gain_spec(), {}};
  request.options.on_iteration = [&](const refgen::IterationRecord& record) {
    EXPECT_EQ(record.index, last_index + 1);
    last_index = record.index;
    ++observed;
  };
  const auto cold = service.refgen(handle, request);
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_EQ(static_cast<std::size_t>(observed), cold.value().result.iterations.size());
  EXPECT_GT(observed, 0);

  // Cache hit: the engine never runs, the observer stays silent, and the
  // observer itself is not part of the request fingerprint.
  observed = 0;
  const auto warm = service.refgen(handle, request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  EXPECT_EQ(observed, 0);
}

// --- Parameter sweeps -------------------------------------------------------

constexpr const char* kParamRcNetlist = R"(
.title parameterized rc
.param r=1k c=100n
R1 in out {r}
C1 out 0 {c}
)";

ParamSweepRequest rc_param_sweep() {
  ParamSweepRequest request;
  request.spec = rc_spec();
  request.mode = ParamSweepRequest::Mode::kGrid;
  request.axes = {{"r", 500.0, 2000.0, 4, false}};
  request.f_start_hz = 10.0;
  request.f_stop_hz = 1e5;
  request.points_per_decade = 2;
  return request;
}

TEST(ServiceParamSweep, GridSweepRunsAndCaches) {
  const Service service;
  const auto compiled = service.compile_netlist(kParamRcNetlist);
  ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();
  const CircuitHandle& handle = compiled.value();
  EXPECT_TRUE(handle.has_netlist_template());
  ASSERT_EQ(handle.parameter_names().size(), 2u);
  EXPECT_EQ(handle.parameter_names()[0], "r");

  const auto cold = service.param_sweep(handle, rc_param_sweep());
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_FALSE(cold.value().from_cache);
  EXPECT_EQ(cold.value().result.ok.size(), 4u);
  EXPECT_EQ(cold.value().result.fresh_factorizations, 1u);
  EXPECT_DOUBLE_EQ(cold.value().result.values[0], 500.0);

  // Identical request: memoized. Different threads: still the same entry
  // (threads are excluded from the fingerprint — results are bit-identical).
  ParamSweepRequest warm_request = rc_param_sweep();
  warm_request.threads = 8;
  const auto warm = service.param_sweep(handle, warm_request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);

  // A different grid is a different study.
  ParamSweepRequest other = rc_param_sweep();
  other.axes[0].count = 3;
  const auto miss = service.param_sweep(handle, other);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().from_cache);
}

TEST(ServiceParamSweep, MonteCarloIsSeedDeterministic) {
  const Service service;
  const auto compiled = service.compile_netlist(kParamRcNetlist);
  ASSERT_TRUE(compiled.ok());
  ParamSweepRequest request;
  request.spec = rc_spec();
  request.mode = ParamSweepRequest::Mode::kMonteCarlo;
  request.dists = {{"r", 1e3, 0.05, mna::ParamDist::Kind::kGaussian}};
  request.samples = 16;
  request.seed = 99;
  request.f_start_hz = 100.0;
  request.f_stop_hz = 1e4;
  request.points_per_decade = 1;

  const auto first = service.param_sweep(compiled.value(), request);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_TRUE(service.param_sweep(compiled.value(), request).value().from_cache);

  // Same seed on a FRESH handle: bit-identical study.
  const Service other_service;
  const auto fresh = other_service.param_sweep(
      other_service.compile_netlist(kParamRcNetlist).value(), request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(first.value().result.values, fresh.value().result.values);
  ASSERT_EQ(first.value().result.response.size(), fresh.value().result.response.size());
  for (std::size_t i = 0; i < first.value().result.response.size(); ++i) {
    EXPECT_EQ(first.value().result.response[i], fresh.value().result.response[i]);
  }
}

TEST(ServiceParamSweep, ErrorTaxonomy) {
  const Service service;
  const auto compiled = service.compile_netlist(kParamRcNetlist);
  ASSERT_TRUE(compiled.ok());
  const CircuitHandle& handle = compiled.value();

  // Programmatic handles have no template to re-elaborate.
  const auto programmatic = service.compile(circuits::ua741());
  ASSERT_TRUE(programmatic.ok());
  EXPECT_FALSE(programmatic.value().has_netlist_template());
  ParamSweepRequest request = rc_param_sweep();
  request.spec = circuits::ua741_gain_spec();
  const auto no_template = service.param_sweep(programmatic.value(), request);
  EXPECT_EQ(no_template.status().code(), StatusCode::kInvalidArgument);

  // Unknown parameter name.
  request = rc_param_sweep();
  request.axes[0].name = "nothere";
  EXPECT_EQ(service.param_sweep(handle, request).status().code(),
            StatusCode::kInvalidArgument);

  // Mode/field mismatch.
  request = rc_param_sweep();
  request.samples = 8;
  EXPECT_EQ(service.param_sweep(handle, request).status().code(),
            StatusCode::kInvalidArgument);

  // Bad spec -> kInvalidSpec.
  request = rc_param_sweep();
  request.spec = mna::TransferSpec::voltage_gain("in", "nosuch");
  EXPECT_EQ(service.param_sweep(handle, request).status().code(), StatusCode::kInvalidSpec);

  // Empty handle.
  EXPECT_EQ(service.param_sweep(CircuitHandle(), rc_param_sweep()).status().code(),
            StatusCode::kInvalidArgument);

  // Pre-cancelled token -> kCancelled.
  support::CancellationSource source;
  source.cancel();
  request = rc_param_sweep();
  request.cancel = source.token();
  EXPECT_EQ(service.param_sweep(handle, request).status().code(), StatusCode::kCancelled);
}

TEST(ServiceSimplify, WarmCacheHitAndEngineCounters) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();

  SimplifyRequest request;
  request.spec = rc_spec();
  request.options.error_budget = 0.01;
  request.options.f_start_hz = 10.0;
  request.options.f_stop_hz = 1e5;
  request.options.band_points = 7;

  const auto cold = service.simplify(handle, request);
  ASSERT_TRUE(cold.ok()) << cold.status().to_string();
  EXPECT_FALSE(cold.value().from_cache);
  const auto& result = cold.value().result;
  EXPECT_LE(result.certificate.max_relative_error, request.options.error_budget);
  EXPECT_GT(result.enumerated_terms, 0u);

  const auto stats = service.engine_stats(handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().simplify_term_evals, result.term_evals);
  EXPECT_EQ(stats.value().simplify_terms_dropped, result.terms_dropped);

  const auto warm = service.simplify(handle, request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().from_cache);
  EXPECT_EQ(warm.value().result.numerator_expression, result.numerator_expression);
  // A cache hit runs no engine: the counters must not move.
  const auto stats_after = service.engine_stats(handle);
  ASSERT_TRUE(stats_after.ok());
  EXPECT_EQ(stats_after.value().simplify_term_evals, result.term_evals);

  // A different budget is a different cache key.
  request.options.error_budget = 0.05;
  const auto other = service.simplify(handle, request);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other.value().from_cache);
}

TEST(ServiceSimplify, ErrorTaxonomy) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();

  // Empty handle.
  EXPECT_EQ(service.simplify(CircuitHandle(), {rc_spec(), {}}).status().code(),
            StatusCode::kInvalidArgument);

  // Unknown node -> kInvalidSpec.
  SimplifyRequest bad_node;
  bad_node.spec = mna::TransferSpec::voltage_gain("in", "nosuch");
  EXPECT_EQ(service.simplify(handle, bad_node).status().code(), StatusCode::kInvalidSpec);

  // A spec the term generators cannot represent (differential input) is a
  // spec problem too: symbolic::NonAdmissibleError -> kInvalidSpec.
  const auto ota = service.compile(circuits::ota_fig1());
  ASSERT_TRUE(ota.ok());
  SimplifyRequest differential;
  differential.spec = circuits::ota_fig1_gain_spec();
  EXPECT_EQ(service.simplify(ota.value(), differential).status().code(),
            StatusCode::kInvalidSpec);

  // Caps too tight to certify the budget: symbolic::TermEnumerationError ->
  // kIncomplete.
  SimplifyRequest starved;
  starved.spec = rc_spec();
  starved.options.error_budget = 1e-6;
  starved.options.f_start_hz = 10.0;
  starved.options.f_stop_hz = 1e5;
  starved.options.band_points = 5;
  starved.options.prune = false;
  starved.options.max_terms_per_coefficient = 1;
  EXPECT_EQ(service.simplify(handle, starved).status().code(), StatusCode::kIncomplete);

  // Pre-cancelled token -> kCancelled.
  support::CancellationSource source;
  source.cancel();
  SimplifyRequest cancelled;
  cancelled.spec = rc_spec();
  cancelled.options.engine.cancel = source.token();
  EXPECT_EQ(service.simplify(handle, cancelled).status().code(), StatusCode::kCancelled);
}

// --- Nonlinear handles: .op and the auto_linearize gate --------------------

constexpr const char* kDiodeNetlist = R"(
.title forward-biased diode
.model nd d is=1e-14
V1 in 0 dc 5
R1 in d 1k
D1 d 0 nd
R2 d m 1k
C2 m 0 1n
)";

TEST(ServiceOp, ServesTheCompiledBiasAndMarksRepeatsCached) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kDiodeNetlist).take();
  EXPECT_TRUE(handle.has_devices());

  const auto first = service.op(handle, {});
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_FALSE(first.value().from_cache);  // compile did the work, op reports it
  const dc::OpResult& op = first.value().result;
  EXPECT_GT(op.newton_iterations, 0);
  EXPECT_EQ(op.fresh_factorizations, 1u);  // one shared Newton plan
  EXPECT_LT(op.max_residual, 1e-9);
  EXPECT_NEAR(op.voltage_of("in"), 5.0, 1e-12);
  EXPECT_GT(op.voltage_of("d"), 0.4);  // forward-biased junction
  // No current flows into the open RC tap at DC.
  EXPECT_NEAR(op.voltage_of("m"), op.voltage_of("d"), 1e-9);

  const auto repeat = service.op(handle, {});
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().from_cache);

  auto stats = service.engine_stats(handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().op_solves, 1u);
  EXPECT_EQ(stats.value().newton_iterations,
            static_cast<std::uint64_t>(op.newton_iterations));
}

TEST(ServiceOp, LinearHandleIsInvalidArgument) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kRcNetlist).take();
  EXPECT_FALSE(handle.has_devices());
  const auto response = service.op(handle, {});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status().message().find("nonlinear devices"), std::string::npos);
}

TEST(ServiceOp, AutoLinearizeGatesEveryAcFamilyEntryPoint) {
  const Service service;
  const CircuitHandle handle = service.compile_netlist(kDiodeNetlist).take();
  const mna::TransferSpec spec = mna::TransferSpec::voltage_gain("d", "m");

  // Without the flag: fail closed, with an actionable message.
  const auto refused = service.refgen(handle, {spec, {}});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("auto_linearize"), std::string::npos);
  SweepRequest sweep;
  sweep.spec = spec;
  EXPECT_EQ(service.sweep(handle, sweep).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.poles_zeros(handle, {spec, {}}).status().code(),
            StatusCode::kInvalidArgument);
  SimplifyRequest simplify;
  simplify.spec = spec;
  EXPECT_EQ(service.simplify(handle, simplify).status().code(),
            StatusCode::kInvalidArgument);

  // With it: the request runs against the linearized small-signal circuit.
  const auto allowed = service.refgen(handle, {spec, {}, /*auto_linearize=*/true});
  ASSERT_TRUE(allowed.ok()) << allowed.status().to_string();
  EXPECT_TRUE(allowed.value().result.complete);

  // The flag is a no-op on linear handles (back-compat with every caller).
  const CircuitHandle rc = service.compile_netlist(kRcNetlist).take();
  const auto linear = service.refgen(rc, {rc_spec(), {}, /*auto_linearize=*/true});
  EXPECT_TRUE(linear.ok()) << linear.status().to_string();
}

}  // namespace
}  // namespace symref::api
