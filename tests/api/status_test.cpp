// Status/Result plumbing and the exception -> StatusCode mapping.
#include "api/status.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mna/errors.h"
#include "netlist/parser.h"
#include "sparse/lu.h"

namespace symref::api {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeMessageAndLocation) {
  const Status status =
      Status::error(StatusCode::kParseError, "bad card", SourceLocation{3, 7});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.message(), "bad card");
  EXPECT_EQ(status.location().line, 3);
  EXPECT_EQ(status.location().column, 7);
  EXPECT_EQ(status.to_string(), "parse_error: bad card (line 3, column 7)");
}

TEST(Status, CodeNamesAreStableTokens) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(status_code_name(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidSpec), "invalid_spec");
  EXPECT_STREQ(status_code_name(StatusCode::kSingularSystem), "singular_system");
  EXPECT_STREQ(status_code_name(StatusCode::kRefusedReplay), "refused_replay");
  EXPECT_STREQ(status_code_name(StatusCode::kIncomplete), "incomplete");
  EXPECT_STREQ(status_code_name(StatusCode::kIoError), "io_error");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(Result, ValueAndTake) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "payload");
  EXPECT_EQ(result.take(), "payload");
}

TEST(Result, ErrorPropagatesStatus) {
  const Result<int> result(Status::error(StatusCode::kSingularSystem, "no pivot"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSingularSystem);
}

/// Throw `error`, map it through status_from_current_exception.
template <typename E>
Status map_exception(const E& error) {
  try {
    throw error;
  } catch (...) {
    return status_from_current_exception();
  }
}

TEST(StatusFromException, ParseErrorKeepsPosition) {
  const Status status = map_exception(netlist::ParseError(12, 5, "unknown card 'Z1'"));
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.location().line, 12);
  EXPECT_EQ(status.location().column, 5);
  EXPECT_NE(status.message().find("unknown card"), std::string::npos);
}

TEST(StatusFromException, DistinctCodesPerFailureClass) {
  EXPECT_EQ(map_exception(mna::SpecError("bad node")).code(), StatusCode::kInvalidSpec);
  EXPECT_EQ(map_exception(mna::SingularSystemError("singular")).code(),
            StatusCode::kSingularSystem);
  EXPECT_EQ(map_exception(sparse::RefusedReplayError("refused")).code(),
            StatusCode::kRefusedReplay);
  EXPECT_EQ(map_exception(std::invalid_argument("bad arg")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(map_exception(std::runtime_error("boom")).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace symref::api
