// api::Registry: id assignment, lookup, eviction, id stability, and
// concurrent registration.
#include "api/registry.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "api/service.h"

namespace symref::api {
namespace {

constexpr const char* kRcNetlist = "R1 in out 1k\nC1 out 0 1u\n";

CircuitHandle compile(const Service& service, const char* name) {
  auto compiled = service.compile_netlist(kRcNetlist, name);
  EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
  return compiled.take();
}

TEST(Registry, AddAssignsSequentialIdsAndGetReturnsTheHandle) {
  const Service service;
  Registry registry;
  const std::string a = registry.add(compile(service, "first"));
  const std::string b = registry.add(compile(service, "second"));
  EXPECT_EQ(a, "c1");
  EXPECT_EQ(b, "c2");
  EXPECT_EQ(registry.size(), 2u);

  const auto found = registry.get(a);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().name(), "first");
  EXPECT_EQ(registry.get(b).value().name(), "second");
}

TEST(Registry, GetUnknownIdIsNotFound) {
  Registry registry;
  const auto missing = registry.get("c99");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(Registry, AddRejectsEmptyHandles) {
  Registry registry;
  EXPECT_EQ(registry.add(CircuitHandle()), "");
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, EvictRemovesAndNeverReusesIds) {
  const Service service;
  Registry registry;
  const std::string a = registry.add(compile(service, "first"));
  EXPECT_TRUE(registry.evict(a));
  EXPECT_FALSE(registry.evict(a));
  EXPECT_EQ(registry.get(a).status().code(), StatusCode::kNotFound);
  // A later add gets a fresh id — a stale "c1" cannot alias a new circuit.
  const std::string b = registry.add(compile(service, "second"));
  EXPECT_EQ(b, "c2");
}

TEST(Registry, ListPreservesInsertionOrder) {
  const Service service;
  Registry registry;
  registry.add(compile(service, "a"));
  registry.add(compile(service, "b"));
  registry.add(compile(service, "c"));
  registry.evict("c2");
  const auto entries = registry.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, "c1");
  EXPECT_EQ(entries[1].id, "c3");
}

TEST(Registry, ConcurrentAddsGetDistinctIds) {
  const Service service;
  const CircuitHandle handle = compile(service, "shared");
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::vector<std::string>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(registry.add(handle));
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<std::string> unique;
  for (const auto& batch : ids) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(registry.size(), unique.size());
}

}  // namespace
}  // namespace symref::api
