// JSON wire mapping: encode shapes, strict request decoding, round trips.
#include "api/serialize.h"

#include <gtest/gtest.h>

#include <string>

#include "api/service.h"

namespace symref::api {
namespace {

TEST(SerializeStatus, OkAndErrorShapes) {
  EXPECT_EQ(to_json(Status()).dump(), R"({"code":"ok"})");
  const Status error =
      Status::error(StatusCode::kParseError, "bad card", SourceLocation{3, 7});
  EXPECT_EQ(to_json(error).dump(),
            R"({"code":"parse_error","message":"bad card","line":3,"column":7})");
}

TEST(SerializeSpec, RoundTrip) {
  const auto spec = mna::TransferSpec::transimpedance("inp", "vo", "inn", "ref");
  const auto parsed = spec_from_json(to_json(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().kind, spec.kind);
  EXPECT_EQ(parsed.value().in_pos, "inp");
  EXPECT_EQ(parsed.value().in_neg, "inn");
  EXPECT_EQ(parsed.value().out_pos, "vo");
  EXPECT_EQ(parsed.value().out_neg, "ref");
}

TEST(SerializeSpec, StrictDecoding) {
  EXPECT_EQ(spec_from_json(Json::parse(R"({"in":"a"})").take()).status().code(),
            StatusCode::kInvalidArgument);  // missing "out"
  EXPECT_EQ(
      spec_from_json(Json::parse(R"({"in":"a","out":"b","typo":1})").take()).status().code(),
      StatusCode::kInvalidArgument);  // unknown key
  EXPECT_EQ(spec_from_json(Json::parse(R"({"in":"a","out":"b","kind":"nonsense"})").take())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(spec_from_json(Json(3.0)).status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeOptions, RoundTripNonDefaults) {
  refgen::AdaptiveOptions options;
  options.sigma = 9;
  options.tuning_r = -0.5;
  options.use_deflation = false;
  options.initial_f = 2.5e9;
  options.threads = 4;
  const auto parsed = options_from_json(to_json(options));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().sigma, 9);
  EXPECT_EQ(parsed.value().tuning_r, -0.5);
  EXPECT_FALSE(parsed.value().use_deflation);
  EXPECT_EQ(parsed.value().initial_f, 2.5e9);
  EXPECT_EQ(parsed.value().threads, 4);
  // Untouched fields keep their defaults.
  EXPECT_EQ(parsed.value().no_progress_limit, 3);
}

TEST(SerializeRequest, ParsesEveryType) {
  const auto refgen_req = request_from_json(
      Json::parse(R"({"type":"refgen","spec":{"in":"a","out":"b"},"options":{"sigma":7}})")
          .take());
  ASSERT_TRUE(refgen_req.ok()) << refgen_req.status().to_string();
  EXPECT_EQ(refgen_req.value().type, AnyRequest::Type::kRefgen);
  EXPECT_EQ(refgen_req.value().refgen.options.sigma, 7);

  const auto sweep_req = request_from_json(
      Json::parse(
          R"({"type":"sweep","spec":{"in":"a","out":"b"},"f_start_hz":10,"f_stop_hz":1e6,"points_per_decade":5})")
          .take());
  ASSERT_TRUE(sweep_req.ok());
  EXPECT_EQ(sweep_req.value().type, AnyRequest::Type::kSweep);
  EXPECT_EQ(sweep_req.value().sweep.f_start_hz, 10.0);
  EXPECT_EQ(sweep_req.value().sweep.points_per_decade, 5);

  const auto pz_req = request_from_json(
      Json::parse(R"({"type":"poles_zeros","spec":{"in":"a","out":"b"}})").take());
  ASSERT_TRUE(pz_req.ok());
  EXPECT_EQ(pz_req.value().type, AnyRequest::Type::kPolesZeros);

  EXPECT_EQ(request_from_json(Json::parse(R"({"type":"bogus"})").take()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(request_from_json(Json::parse(R"({"type":"refgen"})").take()).status().code(),
            StatusCode::kInvalidArgument);  // missing spec
}

TEST(SerializeRequest, SessionAcceptsObjectOrArray) {
  const auto one = requests_from_json(
      Json::parse(R"({"type":"poles_zeros","spec":{"in":"a","out":"b"}})").take());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().size(), 1u);

  const auto many = requests_from_json(
      Json::parse(R"([{"type":"refgen","spec":{"in":"a","out":"b"}},
                      {"type":"sweep","spec":{"in":"a","out":"b"}}])")
          .take());
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(many.value().size(), 2u);
  EXPECT_EQ(many.value()[1].type, AnyRequest::Type::kSweep);
}

TEST(SerializeRequest, SimplifyRoundTrip) {
  AnyRequest request;
  request.type = AnyRequest::Type::kSimplify;
  request.simplify.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.simplify.options.error_budget = 0.02;
  request.simplify.options.f_start_hz = 5.0;
  request.simplify.options.f_stop_hz = 5e4;
  request.simplify.options.band_points = 11;
  request.simplify.options.prune = false;
  request.simplify.options.prune_share = 0.25;
  request.simplify.options.max_terms_per_coefficient = 1234;
  request.simplify.options.max_queue = 9999;
  request.simplify.options.coefficient_skip_factor = 1e-4;
  request.simplify.options.engine.sigma = 8;

  const auto parsed = request_from_json(to_json(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().type, AnyRequest::Type::kSimplify);
  const auto& options = parsed.value().simplify.options;
  EXPECT_EQ(options.error_budget, 0.02);
  EXPECT_EQ(options.f_start_hz, 5.0);
  EXPECT_EQ(options.f_stop_hz, 5e4);
  EXPECT_EQ(options.band_points, 11);
  EXPECT_FALSE(options.prune);
  EXPECT_EQ(options.prune_share, 0.25);
  EXPECT_EQ(options.max_terms_per_coefficient, 1234u);
  EXPECT_EQ(options.max_queue, 9999u);
  EXPECT_EQ(options.coefficient_skip_factor, 1e-4);
  EXPECT_EQ(options.engine.sigma, 8);
  EXPECT_EQ(parsed.value().simplify.spec.out_pos, "out");
}

TEST(SerializeRequest, SimplifyStrictness) {
  // Minimal form: spec only, everything else defaulted.
  const auto minimal = request_from_json(
      Json::parse(R"({"type":"simplify","spec":{"in":"a","out":"b"}})").take());
  ASSERT_TRUE(minimal.ok()) << minimal.status().to_string();
  EXPECT_EQ(minimal.value().simplify.options.error_budget, 0.01);

  // Unknown keys are rejected, not ignored.
  EXPECT_EQ(request_from_json(
                Json::parse(
                    R"({"type":"simplify","spec":{"in":"a","out":"b"},"bogus_knob":1})")
                    .take())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Non-positive caps are rejected.
  EXPECT_EQ(request_from_json(
                Json::parse(
                    R"({"type":"simplify","spec":{"in":"a","out":"b"},"max_terms":0})")
                    .take())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeResponse, SimplifyPayloadShape) {
  const Service service;
  const CircuitHandle handle =
      service.compile_netlist("R1 in n1 1k\nC1 n1 0 100n\nR2 n1 out 10k\nC2 out 0 10n\n")
          .take();
  SimplifyRequest request;
  request.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.options.f_start_hz = 10.0;
  request.options.f_stop_hz = 1e5;
  request.options.band_points = 5;
  const auto response = service.simplify(handle, request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();

  const Json payload = to_json(response.value());
  EXPECT_EQ(payload.find("type")->as_string(), "simplify");
  EXPECT_EQ(payload.find("status")->find("code")->as_string(), "ok");
  const Json* certificate = payload.find("certificate");
  ASSERT_NE(certificate, nullptr);
  EXPECT_EQ(certificate->find("points")->size(), 5u);
  // Certificate errors are hex-float strings: bit-exact across the wire
  // (the daemon-vs-CLI byte compare rides on this).
  EXPECT_EQ(certificate->find("max_relative_error")->as_string().substr(0, 2), "0x");
  const Json* terms = payload.find("denominator_terms");
  ASSERT_NE(terms, nullptr);
  ASSERT_GT(terms->size(), 0u);
  const Json& term = terms->items()[0];
  EXPECT_TRUE(term.find("symbols")->is_array());
  EXPECT_EQ(term.find("value")->find("mantissa")->as_string().substr(0, 2), "0x");

  const auto reparsed = Json::parse(payload.dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().dump(), payload.dump());
}

TEST(SerializeResponse, RefgenPayloadShape) {
  const Service service;
  const CircuitHandle handle = service
                                   .compile_netlist("R1 in out 1k\nC1 out 0 1u\n")
                                   .take();
  const auto response =
      service.refgen(handle, {mna::TransferSpec::voltage_gain("in", "out"), {}});
  ASSERT_TRUE(response.ok()) << response.status().to_string();

  const Json payload = to_json(response.value());
  EXPECT_EQ(payload.find("type")->as_string(), "refgen");
  EXPECT_EQ(payload.find("status")->find("code")->as_string(), "ok");
  EXPECT_TRUE(payload.find("complete")->as_bool());
  const Json* denominator = payload.find("reference")->find("denominator");
  ASSERT_NE(denominator, nullptr);
  EXPECT_EQ(denominator->find("coefficients")->size(),
            static_cast<std::size_t>(denominator->find("order_bound")->as_int()) + 1);
  // Coefficient values carry a bit-exact hex mantissa + binary exponent.
  const Json& c0 = denominator->find("coefficients")->items()[0];
  EXPECT_EQ(c0.find("value")->find("mantissa")->as_string().substr(0, 2), "0x");
  EXPECT_TRUE(c0.find("value")->find("exp2")->is_number());
  EXPECT_EQ(c0.find("status")->as_string(), "interpolated");

  // The document survives a dump/parse cycle unchanged.
  const auto reparsed = Json::parse(payload.dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().dump(), payload.dump());
}

TEST(SerializeRequest, ParamSweepGridRoundTrip) {
  AnyRequest request;
  request.type = AnyRequest::Type::kParamSweep;
  request.param_sweep.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.param_sweep.mode = ParamSweepRequest::Mode::kGrid;
  request.param_sweep.axes = {{"r1", 1e3, 1e4, 5, true}, {"c1", 1e-12, 4e-12, 4, false}};
  request.param_sweep.f_start_hz = 10.0;
  request.param_sweep.f_stop_hz = 1e7;
  request.param_sweep.points_per_decade = 3;
  request.param_sweep.threads = 4;

  const auto parsed = request_from_json(to_json(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const ParamSweepRequest& round = parsed.value().param_sweep;
  ASSERT_EQ(parsed.value().type, AnyRequest::Type::kParamSweep);
  EXPECT_EQ(round.mode, ParamSweepRequest::Mode::kGrid);
  ASSERT_EQ(round.axes.size(), 2u);
  EXPECT_EQ(round.axes[0].name, "r1");
  EXPECT_DOUBLE_EQ(round.axes[0].from, 1e3);
  EXPECT_DOUBLE_EQ(round.axes[0].to, 1e4);
  EXPECT_EQ(round.axes[0].count, 5);
  EXPECT_TRUE(round.axes[0].log_scale);
  EXPECT_FALSE(round.axes[1].log_scale);
  EXPECT_DOUBLE_EQ(round.f_start_hz, 10.0);
  EXPECT_EQ(round.points_per_decade, 3);
  EXPECT_EQ(round.threads, 4);
}

TEST(SerializeRequest, ParamSweepMonteCarloRoundTrip) {
  AnyRequest request;
  request.type = AnyRequest::Type::kParamSweep;
  request.param_sweep.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.param_sweep.mode = ParamSweepRequest::Mode::kMonteCarlo;
  request.param_sweep.dists = {{"gm", 1e-3, 0.05, mna::ParamDist::Kind::kGaussian},
                               {"cl", 1e-11, 0.1, mna::ParamDist::Kind::kUniform}};
  request.param_sweep.samples = 256;
  request.param_sweep.seed = 424242;

  const auto parsed = request_from_json(to_json(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const ParamSweepRequest& round = parsed.value().param_sweep;
  EXPECT_EQ(round.mode, ParamSweepRequest::Mode::kMonteCarlo);
  ASSERT_EQ(round.dists.size(), 2u);
  EXPECT_EQ(round.dists[0].name, "gm");
  EXPECT_EQ(round.dists[0].kind, mna::ParamDist::Kind::kGaussian);
  EXPECT_EQ(round.dists[1].kind, mna::ParamDist::Kind::kUniform);
  EXPECT_DOUBLE_EQ(round.dists[1].rel_sigma, 0.1);
  EXPECT_EQ(round.samples, 256);
  EXPECT_EQ(round.seed, 424242u);
}

TEST(SerializeRequest, ParamSweepStrictness) {
  // Unknown keys, bad modes, bad dists and bad seeds are all rejected.
  auto parse = [](const char* text) {
    const auto json = Json::parse(text);
    EXPECT_TRUE(json.ok());
    return request_from_json(json.value());
  };
  EXPECT_FALSE(parse(R"({"type":"param_sweep"})").ok());  // no spec/params
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "mode":"bogus","params":[{"name":"r","from":1,"to":2,"count":2}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "params":[{"name":"r","from":1,"to":2,"count":2,"zzz":1}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "mode":"monte_carlo","params":[{"name":"r","nominal":1,"rel_sigma":0.1,
    "dist":"exotic"}],"samples":4})")
                   .ok());
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "mode":"monte_carlo","params":[{"name":"r","nominal":1,"rel_sigma":0.1}],
    "samples":4,"seed":-1})")
                   .ok());
  EXPECT_TRUE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "params":[{"name":"r","from":1,"to":2,"count":2}]})")
                  .ok());  // grid is the default mode
  // Range/nominal fields are required — a forgotten "from" must not
  // silently sweep from 0.
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "params":[{"name":"r","to":2,"count":2}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "params":[{"name":"r","from":1,"to":2}]})")
                   .ok());
  EXPECT_FALSE(parse(R"({"type":"param_sweep","spec":{"in":"a","out":"b"},
    "mode":"monte_carlo","params":[{"name":"r","rel_sigma":0.1}],"samples":4})")
                   .ok());
}

TEST(SerializeResponse, ParamSweepCarriesHexFloatPoints) {
  ParamSweepResponse response;
  response.result.names = {"r"};
  response.result.frequencies_hz = {1.0, 10.0};
  response.result.values = {1e3, 2e3};
  response.result.response = {{0.5, -0.25}, {0.1, 0.0}, {0.4, -0.2}, {0.05, 0.0}};
  response.result.ok = {1, 1};
  response.result.fresh_factorizations = 1;

  const Json payload = to_json(response);
  EXPECT_EQ(payload.find("type")->as_string(), "param_sweep");
  EXPECT_EQ(payload.find("fresh_factorizations")->as_number(), 1.0);
  ASSERT_EQ(payload.find("samples")->size(), 2u);
  const Json& sample = payload.find("samples")->items()[0];
  EXPECT_DOUBLE_EQ(sample.find("values")->items()[0].as_number(), 1e3);
  EXPECT_TRUE(sample.find("ok")->as_bool());
  const Json& point = sample.find("response")->items()[0];
  EXPECT_EQ(point.find("real")->as_string(), "0x1p-1");
  EXPECT_EQ(point.find("imag")->as_string(), "-0x1p-2");
  EXPECT_TRUE(point.find("magnitude_db")->is_number());
}

TEST(SerializeRequest, OpRoundTripAndStrictness) {
  AnyRequest request;
  request.type = AnyRequest::Type::kOp;
  request.op.threads = 4;
  const auto parsed = request_from_json(to_json(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().type, AnyRequest::Type::kOp);
  EXPECT_EQ(parsed.value().op.threads, 4);

  // Minimal form: just the type.
  const auto minimal = request_from_json(Json::parse(R"({"type":"op"})").take());
  ASSERT_TRUE(minimal.ok()) << minimal.status().to_string();
  EXPECT_EQ(minimal.value().op.threads, 1);

  // An op request has no spec or options; unknown keys are rejected.
  EXPECT_EQ(request_from_json(Json::parse(R"({"type":"op","spec":{"in":"a","out":"b"}})").take())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeRequest, AutoLinearizeRoundTripsOnAcFamilyRequests) {
  AnyRequest request;
  request.type = AnyRequest::Type::kRefgen;
  request.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.refgen.auto_linearize = true;
  const auto parsed = request_from_json(to_json(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().refgen.auto_linearize);

  // Omitted on the wire -> false, so device-bearing handles fail closed.
  const auto bare = request_from_json(
      Json::parse(R"({"type":"refgen","spec":{"in":"a","out":"b"}})").take());
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare.value().refgen.auto_linearize);
}

TEST(SerializeResponse, OpPayloadShape) {
  const Service service;
  const CircuitHandle handle =
      service
          .compile_netlist(
              ".model nd d is=1e-14\nV1 in 0 dc 5\nR1 in d 1k\nD1 d 0 nd\n")
          .take();
  const auto response = service.op(handle, {});
  ASSERT_TRUE(response.ok()) << response.status().to_string();

  const Json payload = to_json(response.value());
  EXPECT_EQ(payload.find("type")->as_string(), "op");
  EXPECT_EQ(payload.find("status")->find("code")->as_string(), "ok");
  EXPECT_GT(payload.find("newton_iterations")->as_int(), 0);
  EXPECT_EQ(payload.find("fresh_factorizations")->as_number(), 1.0);
  ASSERT_GT(payload.find("nodes")->size(), 0u);
  const Json& node = payload.find("nodes")->items()[0];
  // Voltages carry a bit-exact hex form next to the human-readable one —
  // the 1-vs-8-thread byte compare in the CLI smoke rides on this.
  const std::string v = node.find("v")->as_string();
  EXPECT_TRUE(v.rfind("0x", 0) == 0 || v.rfind("-0x", 0) == 0) << v;
  ASSERT_EQ(payload.find("devices")->size(), 1u);
  EXPECT_EQ(payload.find("devices")->items()[0].find("kind")->as_string(), "diode");

  const auto reparsed = Json::parse(payload.dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().dump(), payload.dump());
}

TEST(SerializeResponse, ErrorEnvelope) {
  const Json payload = error_response(
      "sweep", Status::error(StatusCode::kSingularSystem, "no pivot"));
  EXPECT_EQ(payload.find("type")->as_string(), "sweep");
  EXPECT_EQ(payload.find("status")->find("code")->as_string(), "singular_system");
  EXPECT_EQ(payload.find("points"), nullptr);
}

}  // namespace
}  // namespace symref::api
