// api::protocol: the line-delimited JSON session contract — method
// dispatch, error replies, the progress/done event stream, and the
// acceptance-criteria scenario: several concurrent sessions on one core
// whose per-job results are bit-identical to direct api::Service calls.
#include "api/protocol.h"

#include <gtest/gtest.h>

#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/serialize.h"
#include "circuits/ua741.h"
#include "netlist/writer.h"

namespace symref::api::protocol {
namespace {

/// Run one scripted session over string streams; returns the output lines.
std::vector<std::string> run_session(ServerCore& core, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  {
    Session session(core, std::make_shared<IostreamTransport>(in, out));
    session.serve();
  }
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

/// Parse a line; fails the test on malformed output.
Json parse_line(const std::string& line) {
  auto parsed = Json::parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? parsed.take() : Json();
}

/// First reply line (has an "id") with the given id; null Json when absent.
Json find_reply(const std::vector<std::string>& lines, int id) {
  for (const std::string& line : lines) {
    Json message = parse_line(line);
    const Json* found = message.find("id");
    if (found != nullptr && found->is_number() && found->as_int() == id) return message;
  }
  return Json();
}

std::string quote(const std::string& text) {
  Json wrapper(text);
  return wrapper.dump();
}

constexpr const char* kRcNetlist = "R1 in out 1k\nC1 out 0 1u\n";

TEST(ProtocolSession, CompileSubmitWaitLifecycle) {
  ServerCore core;
  const std::string script =
      std::string(R"({"id":1,"method":"compile","params":{"netlist":)") +
      quote(kRcNetlist) + R"(,"name":"rc"}})" +
      "\n"
      R"({"id":2,"method":"submit","params":{"circuit_id":"c1","request":{"type":"refgen","spec":{"in":"in","out":"out"}},"progress":true}})"
      "\n"
      R"({"id":3,"method":"wait","params":{"job_id":"j1"}})"
      "\n"
      R"({"id":4,"method":"poll","params":{"job_id":"j1"}})"
      "\n"
      R"({"id":5,"method":"stats","params":{"circuit_id":"c1"}})"
      "\n"
      R"({"id":6,"method":"list"})"
      "\n";
  const auto lines = run_session(core, script);

  const Json compiled = find_reply(lines, 1);
  ASSERT_TRUE(compiled.find("result") != nullptr) << "no compile reply";
  EXPECT_EQ(compiled.find("result")->find("circuit_id")->as_string(), "c1");
  EXPECT_EQ(compiled.find("result")->find("name")->as_string(), "rc");

  const Json submitted = find_reply(lines, 2);
  ASSERT_TRUE(submitted.find("result") != nullptr);
  EXPECT_EQ(submitted.find("result")->find("job_id")->as_string(), "j1");

  // Progress events streamed before the job completed.
  int progress_events = 0;
  bool done_event = false;
  for (const std::string& line : lines) {
    const Json message = parse_line(line);
    const Json* event = message.find("event");
    if (event == nullptr) continue;
    if (event->as_string() == "progress") {
      EXPECT_EQ(message.find("job_id")->as_string(), "j1");
      EXPECT_TRUE(message.find("iteration") != nullptr);
      EXPECT_TRUE(message.find("purpose") != nullptr);
      ++progress_events;
    } else if (event->as_string() == "done") {
      EXPECT_EQ(message.find("job_id")->as_string(), "j1");
      ASSERT_TRUE(message.find("result") != nullptr);
      EXPECT_EQ(message.find("result")->find("status")->find("code")->as_string(), "ok");
      done_event = true;
    }
  }
  EXPECT_GT(progress_events, 0);
  EXPECT_TRUE(done_event);

  const Json waited = find_reply(lines, 3);
  ASSERT_TRUE(waited.find("result") != nullptr);
  const Json* wait_result = waited.find("result");
  EXPECT_EQ(wait_result->find("state")->as_string(), "done");
  ASSERT_TRUE(wait_result->find("result") != nullptr);
  EXPECT_TRUE(wait_result->find("result")->find("complete")->as_bool());

  const Json polled = find_reply(lines, 4);
  ASSERT_TRUE(polled.find("result") != nullptr);
  EXPECT_EQ(polled.find("result")->find("state")->as_string(), "done");

  const Json stats = find_reply(lines, 5);
  ASSERT_TRUE(stats.find("result") != nullptr);
  EXPECT_TRUE(stats.find("result")->find("hits") != nullptr);

  const Json listed = find_reply(lines, 6);
  ASSERT_TRUE(listed.find("result") != nullptr);
  EXPECT_EQ(listed.find("result")->find("circuits")->size(), 1u);
  EXPECT_EQ(listed.find("result")->find("jobs")->size(), 1u);
}

TEST(ProtocolSession, ErrorsComeBackStructured) {
  ServerCore core;
  const std::string script =
      "this is not json\n"
      R"({"id":1,"method":"frobnicate"})"
      "\n"
      R"({"id":2,"method":"submit","params":{"circuit_id":"c9","request":{"type":"refgen","spec":{"in":"a","out":"b"}}}})"
      "\n"
      R"({"id":3,"method":"poll","params":{"job_id":"zzz"}})"
      "\n"
      R"({"id":4,"method":"cancel","params":{"job_id":"j42"}})"
      "\n"
      R"({"id":5,"method":"compile","params":{"netlist":"C1 a 0 bogus\n"}})"
      "\n";
  const auto lines = run_session(core, script);
  ASSERT_EQ(lines.size(), 6u);

  const Json malformed = parse_line(lines[0]);
  ASSERT_TRUE(malformed.find("error") != nullptr);
  EXPECT_EQ(malformed.find("error")->find("code")->as_string(), "parse_error");
  EXPECT_TRUE(malformed.find("id")->is_null());

  EXPECT_EQ(find_reply(lines, 1).find("error")->find("code")->as_string(),
            "invalid_argument");
  EXPECT_EQ(find_reply(lines, 2).find("error")->find("code")->as_string(), "not_found");
  EXPECT_EQ(find_reply(lines, 3).find("error")->find("code")->as_string(),
            "invalid_argument");
  // cancel of an unknown-but-well-formed id is a result, not an error.
  const Json cancel = find_reply(lines, 4);
  ASSERT_TRUE(cancel.find("result") != nullptr);
  EXPECT_FALSE(cancel.find("result")->find("cancelled")->as_bool(true));
  // Netlist parse errors keep their source position on the wire.
  const Json compile = find_reply(lines, 5);
  ASSERT_TRUE(compile.find("error") != nullptr);
  EXPECT_EQ(compile.find("error")->find("code")->as_string(), "parse_error");
  EXPECT_TRUE(compile.find("error")->find("line") != nullptr);
}

TEST(ProtocolSession, ShutdownStopsEverySession) {
  ServerCore core;
  const auto lines = run_session(core, R"({"id":1,"method":"shutdown"})"
                                       "\n"
                                       R"({"id":2,"method":"list"})"
                                       "\n");
  // The session stops after the shutdown reply; the list never runs.
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(core.shutdown_requested());
  // A new session on the same core exits immediately.
  EXPECT_TRUE(run_session(core, R"({"id":1,"method":"list"})"
                                "\n")
                  .empty());
}

// request_shutdown must release wait()-blocked session threads by
// cancelling live jobs — otherwise a daemon with a long job in flight
// cannot exit until the job completes naturally.
TEST(ProtocolSession, ShutdownCancelsLiveJobs) {
  ServerOptions options;
  options.workers = 1;  // the second submit must stay queued deterministically
  ServerCore core(options);
  const auto compiled = core.service().compile_netlist(kRcNetlist);
  ASSERT_TRUE(compiled.ok());

  // Park the job's engine inside its observer until the test releases it,
  // so the job is deterministically running when shutdown arrives.
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  AnyRequest request;
  request.type = AnyRequest::Type::kRefgen;
  request.refgen.spec = mna::TransferSpec::voltage_gain("in", "out");
  request.refgen.options.on_iteration = [&](const refgen::IterationRecord&) {
    std::unique_lock<std::mutex> lock(mutex);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  const JobId running = core.jobs().submit(compiled.value(), request);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return started; }));
  }
  const JobId queued = core.jobs().submit(compiled.value(), request);

  core.request_shutdown();
  // The queued job is already complete (cancelled without running).
  const auto queued_outcome = core.jobs().wait(queued);
  ASSERT_TRUE(queued_outcome.ok());
  EXPECT_EQ(queued_outcome.value().status.code(), StatusCode::kCancelled);
  // The running job's token is tripped; once its observer returns it stops
  // at the next iteration boundary instead of running to completion.
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  const auto running_outcome = core.jobs().wait(running);
  ASSERT_TRUE(running_outcome.ok());
  EXPECT_EQ(running_outcome.value().status.code(), StatusCode::kCancelled);
}

TEST(ProtocolSession, EvictMakesCircuitUnaddressable) {
  ServerCore core;
  const std::string script =
      std::string(R"({"id":1,"method":"compile","params":{"netlist":)") +
      quote(kRcNetlist) + "}}\n" +
      R"({"id":2,"method":"evict","params":{"circuit_id":"c1"}})"
      "\n"
      R"({"id":3,"method":"submit","params":{"circuit_id":"c1","request":{"type":"refgen","spec":{"in":"in","out":"out"}}}})"
      "\n";
  const auto lines = run_session(core, script);
  EXPECT_TRUE(find_reply(lines, 2).find("result")->find("evicted")->as_bool());
  EXPECT_EQ(find_reply(lines, 3).find("error")->find("code")->as_string(), "not_found");
}

TEST(ProtocolJobIds, TokenRoundTrip) {
  EXPECT_EQ(job_id_token(7), "j7");
  const auto parsed = parse_job_id("j7");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), 7u);
  EXPECT_FALSE(parse_job_id("7").ok());
  EXPECT_FALSE(parse_job_id("j").ok());
  EXPECT_FALSE(parse_job_id("jx7").ok());
  EXPECT_FALSE(parse_job_id("j123456789012345678901").ok());
}

// The acceptance scenario, in-process: four sessions drive one core
// concurrently (a compile + refgen job each on the µA741) and every
// session's result is bit-identical to a direct api::Service call.
//
// The scripted client reacts to its own replies (circuit and job ids are
// core-global, so a blind script cannot predict them): step n+1 is
// generated after the reply to step n arrived — exactly how a remote
// client behaves.
class ScriptedClient : public LineTransport {
 public:
  explicit ScriptedClient(std::string netlist) : netlist_(std::move(netlist)) {}

  bool read_line(std::string* line) override {
    switch (step_++) {
      case 0: {
        Json params = Json::object();
        params.set("netlist", netlist_);
        *line = request(1, "compile", std::move(params));
        return true;
      }
      case 1: {
        // circuits::ua741_gain_spec(): differential input inp/inn, output vo.
        Json spec = Json::object();
        spec.set("in", "inp");
        spec.set("in_neg", "inn");
        spec.set("out", "vo");
        Json refgen = Json::object();
        refgen.set("type", "refgen");
        refgen.set("spec", std::move(spec));
        Json params = Json::object();
        params.set("circuit_id", circuit_id_);
        params.set("request", std::move(refgen));
        *line = request(2, "submit", std::move(params));
        return true;
      }
      case 2: {
        Json params = Json::object();
        params.set("job_id", job_id_);
        *line = request(3, "wait", std::move(params));
        return true;
      }
      default: return false;  // EOF ends the session
    }
  }

  bool write_line(const std::string& line) override {
    // Serialized by the session's writer mutex; replies arrive on the
    // session's own reader thread, so the ids consumed by read_line are
    // written by the same thread that reads them.
    auto parsed = Json::parse(line);
    if (!parsed.ok()) return true;
    const Json& message = parsed.value();
    const Json* id = message.find("id");
    const Json* result = message.find("result");
    if (id == nullptr || result == nullptr) return true;  // event or error
    if (id->as_int() == 1) {
      const Json* circuit = result->find("circuit_id");
      if (circuit != nullptr) circuit_id_ = circuit->as_string();
    } else if (id->as_int() == 2) {
      const Json* job = result->find("job_id");
      if (job != nullptr) job_id_ = job->as_string();
    } else if (id->as_int() == 3) {
      const Json* payload = result->find("result");
      if (payload != nullptr) wait_result_ = *payload;
    }
    return true;
  }

  [[nodiscard]] const Json& wait_result() const { return wait_result_; }

 private:
  static std::string request(int id, const char* method, Json params) {
    Json out = Json::object();
    out.set("id", id);
    out.set("method", method);
    out.set("params", std::move(params));
    return out.dump();
  }

  std::string netlist_;
  int step_ = 0;
  std::string circuit_id_;
  std::string job_id_;
  Json wait_result_;
};

TEST(ProtocolConcurrency, FourSessionsBitIdenticalToDirectService) {
  const std::string netlist = netlist::write_netlist(circuits::ua741());

  // Direct facade reference: the payload a lone api::Service caller gets.
  const Service direct;
  const auto handle = direct.compile_netlist(netlist);
  ASSERT_TRUE(handle.ok());
  const auto reference = direct.refgen(handle.value(), {circuits::ua741_gain_spec(), {}});
  ASSERT_TRUE(reference.ok()) << reference.status().to_string();
  const std::string expected =
      to_json(reference.value().result.reference).dump();

  ServerCore core;
  constexpr int kSessions = 4;
  std::vector<std::shared_ptr<ScriptedClient>> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(std::make_shared<ScriptedClient>(netlist));
  }
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&core, client = clients[static_cast<std::size_t>(i)]] {
      Session session(core, client);
      session.serve();
    });
  }
  for (std::thread& thread : threads) thread.join();

  // All four circuits registered, all four jobs done.
  EXPECT_EQ(core.registry().size(), 4u);
  for (const std::shared_ptr<ScriptedClient>& client : clients) {
    const Json& result = client->wait_result();
    ASSERT_TRUE(result.find("status") != nullptr) << "session got no wait result";
    EXPECT_EQ(result.find("status")->find("code")->as_string(), "ok");
    ASSERT_TRUE(result.find("reference") != nullptr);
    // Bit-identical: the serialized reference (hex-float mantissas) matches
    // the direct facade payload byte for byte.
    EXPECT_EQ(result.find("reference")->dump(), expected);
  }
}

}  // namespace
}  // namespace symref::api::protocol
