// Symbolic determinants vs numeric LU — the library's strongest oracle.
#include "symbolic/det.h"

#include <gtest/gtest.h>

#include <complex>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "sparse/dense.h"
#include "support/random.h"
#include "symbolic/errors.h"

namespace symref::symbolic {
namespace {

using Complex = std::complex<double>;

TEST(SymbolicDet, RejectsNonCanonical) {
  netlist::Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_THROW(SymbolicNodalMatrix{c}, std::invalid_argument);
}

TEST(SymbolicDet, TwoNodeByHand) {
  // G1 a-0, G2 a-b, C1 b-0: det = (g1+g2)(g2+sc1) - g2^2
  //                             = g1 g2 + s(g1+g2)c1 ... expanded by hand:
  //                             = g1 g2 + g2^2 + s c1 g1 + s c1 g2 - g2^2.
  netlist::Circuit c;
  c.add_conductance("g1", "a", "0", 2.0);
  c.add_conductance("g2", "a", "b", 3.0);
  c.add_capacitor("c1", "b", "0", 5.0);
  const SymbolicNodalMatrix matrix(c);
  ASSERT_EQ(matrix.dim(), 2);
  Expression det = symbolic_determinant(matrix);
  det.canonicalize();
  const auto poly = det.coefficients(matrix.symbols());
  EXPECT_NEAR(poly.coeff(0).to_double(), 2.0 * 3.0, 1e-12);        // g1 g2
  EXPECT_NEAR(poly.coeff(1).to_double(), (2.0 + 3.0) * 5.0, 1e-12); // (g1+g2)c1
}

TEST(SymbolicDet, LadderDeterminantStructure) {
  // RC ladder n=2: the input node has no conductive path to ground (only
  // R1 toward the chain), so det(G) = 0 — the s^0 coefficient vanishes
  // structurally. Higher coefficients are nonzero.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(2));
  const SymbolicNodalMatrix matrix(ladder);
  const Expression det = symbolic_determinant(matrix);
  const auto poly = det.coefficients(matrix.symbols());
  EXPECT_EQ(poly.degree(), 2);
  EXPECT_TRUE(poly.coeff(0).is_zero());
  EXPECT_FALSE(poly.coeff(1).is_zero());
  EXPECT_FALSE(poly.coeff(2).is_zero());
}

TEST(SymbolicDet, MatchesNumericDeterminantAtRandomPoints) {
  support::Rng rng(21);
  for (const int n : {2, 3, 4, 5}) {
    const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(n));
    const SymbolicNodalMatrix matrix(ladder);
    const mna::NodalSystem system(ladder);
    const Expression det = symbolic_determinant(matrix);
    for (int trial = 0; trial < 3; ++trial) {
      const Complex s(rng.uniform(-1e6, 1e6), rng.uniform(1e5, 1e7));
      sparse::DenseLu lu;
      ASSERT_TRUE(lu.factor(system.matrix(s, 1.0, 1.0)));
      const Complex expected = lu.determinant().to_complex();
      const Complex actual = det.evaluate(matrix.symbols(), s).to_complex();
      EXPECT_LT(std::abs(actual - expected), 1e-9 * std::abs(expected))
          << "n=" << n << " trial " << trial;
    }
  }
}

TEST(SymbolicDet, OtaDeterminantMatchesNumeric) {
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const mna::NodalSystem system(ota);
  const Expression det = symbolic_determinant(matrix);
  const Complex s(1e5, 2e6);
  sparse::DenseLu lu;
  ASSERT_TRUE(lu.factor(system.matrix(s, 1.0, 1.0)));
  const Complex expected = lu.determinant().to_complex();
  const Complex actual = det.evaluate(matrix.symbols(), s).to_complex();
  EXPECT_LT(std::abs(actual - expected), 1e-8 * std::abs(expected));
}

TEST(SymbolicDet, CofactorMatchesDeletedMinor) {
  // 3-node ladder: cofactor C_{0,1} against a hand-deleted dense minor.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3, 1.0, 1.0));
  const SymbolicNodalMatrix matrix(ladder);
  const mna::NodalSystem system(ladder);
  const Complex s(0.5, 1.5);
  const Expression cof = symbolic_cofactor(matrix, 0, 1);
  // Build the dense matrix, delete row 0 / col 1, factor.
  const auto full = system.matrix(s, 1.0, 1.0).compress();
  const int n = system.dim();
  std::vector<Complex> minor;
  for (int r = 1; r < n; ++r) {
    for (int c2 = 0; c2 < n; ++c2) {
      if (c2 == 1) continue;
      minor.push_back(full.at(r, c2));
    }
  }
  sparse::DenseLu lu;
  ASSERT_TRUE(lu.factor(std::move(minor), n - 1));
  const Complex expected = -lu.determinant().to_complex();  // (-1)^(0+1)
  const Complex actual = cof.evaluate(matrix.symbols(), s).to_complex();
  EXPECT_LT(std::abs(actual - expected), 1e-10 * std::abs(expected));
}

TEST(SymbolicTransfer, MatchesCofactorEvaluatorSamples) {
  // The symbolic N and D must equal the numeric cofactor samples for both
  // spec kinds — this ties the symbolic substrate to the engine's path.
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const mna::NodalSystem system(ota);
  for (const auto kind : {mna::TransferSpec::Kind::VoltageGain,
                          mna::TransferSpec::Kind::Transimpedance}) {
    mna::TransferSpec spec = circuits::ota_fig1_gain_spec();
    spec.kind = kind;
    const SymbolicTransfer transfer = symbolic_transfer(matrix, spec);
    const mna::CofactorEvaluator evaluator(system, spec);
    const Complex s(3e4, 8e5);
    const auto sample = evaluator.evaluate(s, 1.0, 1.0);
    ASSERT_TRUE(sample.ok);
    const Complex n_sym = transfer.numerator.evaluate(matrix.symbols(), s).to_complex();
    const Complex d_sym = transfer.denominator.evaluate(matrix.symbols(), s).to_complex();
    const Complex n_num = sample.numerator.to_complex();
    const Complex d_num = sample.denominator.to_complex();
    EXPECT_LT(std::abs(n_sym - n_num), 1e-8 * std::abs(n_num));
    EXPECT_LT(std::abs(d_sym - d_num), 1e-8 * std::abs(d_num));
  }
}

TEST(SymbolicDet, EntryExpression) {
  netlist::Circuit c;
  c.add_conductance("g1", "a", "0", 2.0);
  c.add_capacitor("c1", "a", "0", 3.0);
  const SymbolicNodalMatrix matrix(c);
  const Expression entry = matrix.entry_expression(0, 0);
  EXPECT_EQ(entry.term_count(), 2u);
  const auto poly = entry.coefficients(matrix.symbols());
  EXPECT_NEAR(poly.coeff(0).to_double(), 2.0, 1e-15);
  EXPECT_NEAR(poly.coeff(1).to_double(), 3.0, 1e-15);
}

TEST(SymbolicDet, TooLargeMatrixRejected) {
  // Construction admits up to the SDG generators' 64-column mask...
  netlist::Circuit big;
  for (int i = 0; i < 70; ++i) {
    big.add_conductance("g" + std::to_string(i), "n" + std::to_string(i), "0", 1.0);
  }
  EXPECT_THROW(SymbolicNodalMatrix{big}, NonAdmissibleError);
}

TEST(SymbolicDet, FullExpansionRejectsLargeMatrices) {
  // ...but the exponential full expansion keeps its own ~20-node cap.
  netlist::Circuit mid;
  for (int i = 0; i < 25; ++i) {
    mid.add_conductance("g" + std::to_string(i), "n" + std::to_string(i), "0", 1.0);
  }
  const SymbolicNodalMatrix matrix(mid);
  EXPECT_EQ(matrix.dim(), 25);
  EXPECT_THROW(symbolic_determinant(matrix), NonAdmissibleError);
  EXPECT_THROW(symbolic_cofactor(matrix, 0, 0), NonAdmissibleError);
}

}  // namespace
}  // namespace symref::symbolic
