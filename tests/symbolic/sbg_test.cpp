// SBG: prune negligible elements against the numerical reference.
#include "symbolic/sbg.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "mna/ac.h"
#include "refgen/adaptive.h"

namespace symref::symbolic {
namespace {

/// A divider whose transfer is dominated by two elements; the tiny parasitic
/// branches are textbook SBG removal candidates.
netlist::Circuit divider_with_parasitics() {
  netlist::Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_resistor("r2", "out", "0", 1e3);
  c.add_resistor("rpar", "in", "out", 1e9);    // negligible parallel path
  c.add_capacitor("cpar", "out", "0", 1e-18);  // far-away pole
  c.add_capacitor("cmain", "out", "0", 1e-9);  // the real pole
  return c;
}

TEST(Sbg, RemovesNegligibleElements) {
  const netlist::Circuit circuit = divider_with_parasitics();
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(circuit, spec);
  ASSERT_TRUE(reference.complete);

  SbgOptions options;
  options.epsilon = 0.01;
  options.f_start_hz = 1e2;
  options.f_stop_hz = 1e7;
  const SbgResult result =
      simplify_before_generation(circuit, spec, reference.reference, options);

  EXPECT_LT(result.remaining_elements, result.original_elements);
  EXPECT_EQ(result.simplified.find_element("rpar"), nullptr);   // opened
  EXPECT_EQ(result.simplified.find_element("cpar"), nullptr);   // opened
  EXPECT_NE(result.simplified.find_element("r1"), nullptr);     // load-bearing
  EXPECT_NE(result.simplified.find_element("cmain"), nullptr);  // sets the pole
  EXPECT_LE(result.final_error, options.epsilon);
}

TEST(Sbg, ErrorBoundRespectedAcrossBand) {
  const netlist::Circuit circuit = divider_with_parasitics();
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(circuit, spec);
  SbgOptions options;
  options.epsilon = 0.02;
  options.f_start_hz = 1e2;
  options.f_stop_hz = 1e7;
  const SbgResult result =
      simplify_before_generation(circuit, spec, reference.reference, options);

  const mna::AcSimulator sim(result.simplified);
  for (const double f : {1e2, 1e3, 1e5, 1e6, 1e7}) {
    const auto h_ref = reference.reference.transfer_at_hz(f);
    const auto h_simplified = sim.transfer(spec, f);
    EXPECT_LT(std::abs(h_simplified - h_ref) / std::abs(h_ref), options.epsilon * 1.5)
        << f;
  }
}

TEST(Sbg, TightEpsilonRemovesNothingEssential) {
  netlist::Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(c, spec);
  SbgOptions options;
  options.epsilon = 1e-6;
  options.f_start_hz = 1e3;
  options.f_stop_hz = 1e6;  // around the pole: both elements matter
  const SbgResult result = simplify_before_generation(c, spec, reference.reference, options);
  EXPECT_EQ(result.remaining_elements, 2u);
  EXPECT_TRUE(result.actions.empty());
}

TEST(Sbg, ShortActionMergesSeriesResistance) {
  // Series parasitic resistance of 1 milliohm in a 2k path: shorting it is
  // the preferred simplification.
  netlist::Circuit c;
  c.add_resistor("r1", "in", "x", 1e3);
  c.add_resistor("rpar", "x", "out", 1e-3);
  c.add_resistor("r2", "out", "0", 1e3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(c, spec);
  ASSERT_TRUE(reference.complete);
  SbgOptions options;
  options.epsilon = 0.01;
  options.f_start_hz = 1e2;
  options.f_stop_hz = 1e6;
  const SbgResult result = simplify_before_generation(c, spec, reference.reference, options);
  bool shorted = false;
  for (const auto& action : result.actions) {
    if (action.element == "rpar" && action.op == SbgAction::Op::Short) shorted = true;
  }
  EXPECT_TRUE(shorted);
}

TEST(Sbg, PortNodesNeverMergedAway) {
  // An element directly across in-out must not be shorted even if doing so
  // would "simplify" the circuit.
  netlist::Circuit c;
  c.add_resistor("r1", "in", "out", 10.0);
  c.add_resistor("r2", "out", "0", 1e3);
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(c, spec);
  SbgOptions options;
  options.epsilon = 0.05;
  options.f_start_hz = 1e2;
  options.f_stop_hz = 1e4;
  const SbgResult result = simplify_before_generation(c, spec, reference.reference, options);
  for (const auto& action : result.actions) {
    EXPECT_FALSE(action.element == "r1" && action.op == SbgAction::Op::Short);
  }
  EXPECT_TRUE(result.simplified.find_node("in").has_value());
  EXPECT_TRUE(result.simplified.find_node("out").has_value());
}

TEST(Sbg, LadderParasiticSweep) {
  // Ladder with per-stage parasitic resistors 6 decades up: all parasitics
  // pruned, the backbone survives.
  netlist::Circuit c = circuits::rc_ladder(3);
  c.add_resistor("rp1", "n1", "0", 1e9);
  c.add_resistor("rp2", "n2", "0", 1e9);
  c.add_resistor("rp3", "n3", "0", 1e9);
  const auto spec = circuits::rc_ladder_spec(3);
  const refgen::AdaptiveResult reference = refgen::generate_reference(c, spec);
  ASSERT_TRUE(reference.complete);
  SbgOptions options;
  options.epsilon = 0.01;
  options.f_start_hz = 1e3;
  options.f_stop_hz = 1e6;
  const SbgResult result = simplify_before_generation(c, spec, reference.reference, options);
  EXPECT_EQ(result.simplified.find_element("rp1"), nullptr);
  EXPECT_EQ(result.simplified.find_element("rp2"), nullptr);
  EXPECT_EQ(result.simplified.find_element("rp3"), nullptr);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_NE(result.simplified.find_element("r" + std::to_string(i)), nullptr) << i;
    EXPECT_NE(result.simplified.find_element("c" + std::to_string(i)), nullptr) << i;
  }
}


TEST(Sbg, SensitivityScreeningMatchesBruteForce) {
  // With screening on, the same elements must be pruned from a canonical
  // circuit — the screen only skips elements that could never be removed.
  netlist::Circuit c;
  c.add_conductance("g1", "in", "out", 1e-3);
  c.add_conductance("g2", "out", "0", 1e-3);
  c.add_conductance("gpar", "in", "out", 1e-9);
  c.add_capacitor("cpar", "out", "0", 1e-18);
  c.add_capacitor("cmain", "out", "0", 1e-9);
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(c, spec);
  ASSERT_TRUE(reference.complete);

  SbgOptions brute;
  brute.epsilon = 0.01;
  brute.f_start_hz = 1e2;
  brute.f_stop_hz = 1e7;
  SbgOptions screened = brute;
  screened.sensitivity_screening = true;

  const SbgResult a = simplify_before_generation(c, spec, reference.reference, brute);
  const SbgResult b = simplify_before_generation(c, spec, reference.reference, screened);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].element, b.actions[i].element) << i;
    EXPECT_EQ(static_cast<int>(a.actions[i].op), static_cast<int>(b.actions[i].op)) << i;
  }
}

TEST(Sbg, ScreeningToleratesNonCanonicalCircuits) {
  // Resistor-based circuit: screening silently disabled, behaviour intact.
  netlist::Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_resistor("rpar", "in", "out", 1e9);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const refgen::AdaptiveResult reference = refgen::generate_reference(c, spec);
  SbgOptions options;
  options.epsilon = 0.01;
  options.f_start_hz = 1e2;
  options.f_stop_hz = 1e6;
  options.sensitivity_screening = true;
  const SbgResult result = simplify_before_generation(c, spec, reference.reference, options);
  EXPECT_EQ(result.simplified.find_element("rpar"), nullptr);
}

}  // namespace
}  // namespace symref::symbolic
