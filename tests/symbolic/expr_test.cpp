// Symbolic expression algebra.
#include "symbolic/expr.h"

#include <gtest/gtest.h>

namespace symref::symbolic {
namespace {

using numeric::ScaledDouble;

SymbolTable make_table() {
  SymbolTable table;
  table.add({"g1", 1e-3, false});
  table.add({"g2", 2e-3, false});
  table.add({"c1", 1e-12, true});
  table.add({"c2", 3e-12, true});
  return table;
}

Term term_of(double coeff, std::vector<int> symbols, int s_power) {
  Term t;
  t.coefficient = coeff;
  t.symbols = std::move(symbols);
  t.s_power = s_power;
  return t;
}

TEST(SymbolTable, AddAndFind) {
  const SymbolTable table = make_table();
  EXPECT_EQ(table.size(), 4);
  EXPECT_EQ(table.find("c1"), 2);
  EXPECT_EQ(table.find("zz"), -1);
  EXPECT_TRUE(table.at(2).is_capacitor);
  EXPECT_FALSE(table.at(0).is_capacitor);
}

TEST(Term, ValueAndMagnitude) {
  const SymbolTable table = make_table();
  const Term t = term_of(-2.0, {0, 2}, 1);  // -2 * g1 * c1
  EXPECT_NEAR(t.value(table).to_double(), -2.0 * 1e-3 * 1e-12, 1e-25);
  EXPECT_NEAR(t.magnitude(table).to_double(), 2e-15, 1e-25);
}

TEST(Term, ToStringShowsSymbols) {
  const SymbolTable table = make_table();
  const Term t = term_of(1.0, {0, 3}, 1);
  EXPECT_EQ(t.to_string(table), "+g1*c2");
  EXPECT_EQ(term_of(-1.0, {}, 0).to_string(table), "-1");
}

TEST(Expression, CanonicalizeMergesAndCancels) {
  Expression e;
  e.add_term(term_of(1.0, {0, 1}, 0));
  e.add_term(term_of(2.0, {1, 0}, 0));   // same product, different order
  e.add_term(term_of(-3.0, {0, 1}, 0));  // cancels the sum exactly
  e.canonicalize();
  EXPECT_TRUE(e.is_zero());
}

TEST(Expression, AdditionAndSubtraction) {
  Expression a(term_of(1.0, {0}, 0));
  Expression b(term_of(4.0, {1}, 0));
  Expression sum = a + b;
  EXPECT_EQ(sum.term_count(), 2u);
  Expression diff = sum - b;
  diff.canonicalize();
  ASSERT_EQ(diff.term_count(), 1u);
  EXPECT_EQ(diff.terms()[0].symbols, std::vector<int>{0});
}

TEST(Expression, MultiplicationCombinesPowers) {
  // (g1 + s c1)(g2 + s c2) = g1 g2 + s(g1 c2 + g2 c1) + s^2 c1 c2
  Expression left;
  left.add_term(term_of(1.0, {0}, 0));
  left.add_term(term_of(1.0, {2}, 1));
  Expression right;
  right.add_term(term_of(1.0, {1}, 0));
  right.add_term(term_of(1.0, {3}, 1));
  Expression product = left * right;
  product.canonicalize();
  EXPECT_EQ(product.term_count(), 4u);

  const SymbolTable table = make_table();
  const auto poly = product.coefficients(table);
  EXPECT_EQ(poly.degree(), 2);
  EXPECT_NEAR(poly.coeff(0).to_double(), 1e-3 * 2e-3, 1e-18);
  EXPECT_NEAR(poly.coeff(1).to_double(), 1e-3 * 3e-12 + 2e-3 * 1e-12, 1e-24);
  EXPECT_NEAR(poly.coeff(2).to_double(), 1e-12 * 3e-12, 1e-36);
}

TEST(Expression, EvaluateMatchesPolynomial) {
  const SymbolTable table = make_table();
  Expression e;
  e.add_term(term_of(1.0, {0}, 0));      // g1
  e.add_term(term_of(-1.0, {2}, 1));     // -s c1
  const std::complex<double> s(0.0, 1e9);
  const auto value = e.evaluate(table, s);
  const std::complex<double> expected(1e-3, -1e9 * 1e-12 * 1.0);
  EXPECT_LT(std::abs(value.to_complex() - expected), 1e-12);
}

TEST(Expression, NegationFlipsAllSigns) {
  Expression e;
  e.add_term(term_of(2.0, {0}, 0));
  e.add_term(term_of(-3.0, {1}, 0));
  const Expression n = -e;
  EXPECT_DOUBLE_EQ(n.terms()[0].coefficient, -2.0);
  EXPECT_DOUBLE_EQ(n.terms()[1].coefficient, 3.0);
}

TEST(Expression, ToStringTruncatesLongSums) {
  Expression e;
  for (int i = 0; i < 30; ++i) e.add_term(term_of(1.0, {i % 4}, 0));
  const SymbolTable table = make_table();
  const std::string text = e.to_string(table, 5);
  EXPECT_NE(text.find("..."), std::string::npos);
}

TEST(Expression, CoefficientsOfZeroExpression) {
  Expression e;
  const SymbolTable table = make_table();
  EXPECT_TRUE(e.coefficients(table).is_zero());
  EXPECT_EQ(e.to_string(table), "0");
}

TEST(Expression, SPowerSeparatesCoefficients) {
  Expression e;
  e.add_term(term_of(1.0, {2}, 1));
  e.add_term(term_of(1.0, {3}, 1));
  const SymbolTable table = make_table();
  const auto poly = e.coefficients(table);
  EXPECT_TRUE(poly.coeff(0).is_zero());
  EXPECT_NEAR(poly.coeff(1).to_double(), 4e-12, 1e-24);
}

}  // namespace
}  // namespace symref::symbolic
