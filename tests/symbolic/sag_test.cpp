// SAG pruning: complete expansion, then drop insignificant terms.
#include "symbolic/sag.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "symbolic/det.h"
#include "symbolic/sdg.h"

namespace symref::symbolic {
namespace {

using numeric::ScaledDouble;

TEST(Sag, PrunedExpressionKeepsCoefficientsWithinEpsilon) {
  const auto ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const Expression full = symbolic_determinant(matrix);

  SagOptions options;
  options.epsilon = 1e-2;
  const SagResult result = prune_expression(full, matrix.symbols(), options);
  EXPECT_LT(result.retained_terms, result.original_terms);
  EXPECT_LE(result.worst_error, options.epsilon);

  const auto exact = full.coefficients(matrix.symbols());
  const auto pruned = result.simplified.coefficients(matrix.symbols());
  for (int k = 0; k <= exact.degree(); ++k) {
    const ScaledDouble e = exact.coeff(static_cast<std::size_t>(k));
    if (e.is_zero()) continue;
    EXPECT_LT(numeric::relative_difference(e, pruned.coeff(static_cast<std::size_t>(k))),
              options.epsilon * 1.01)
        << k;
  }
}

TEST(Sag, TighterEpsilonKeepsMoreTerms) {
  const auto ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const Expression full = symbolic_determinant(matrix);

  SagOptions loose;
  loose.epsilon = 0.1;
  SagOptions tight;
  tight.epsilon = 1e-8;
  const SagResult a = prune_expression(full, matrix.symbols(), loose);
  const SagResult b = prune_expression(full, matrix.symbols(), tight);
  EXPECT_LT(a.retained_terms, b.retained_terms);
}

TEST(Sag, AgainstExternalReferenceFromEngine) {
  // The paper's setting: prune against the interpolated reference instead of
  // the exact sums.
  const auto ladder = circuits::rc_ladder(3);
  const auto canonical = netlist::canonicalize(ladder);
  const auto spec = mna::TransferSpec::transimpedance("in", "n3");
  const auto reference = refgen::generate_reference(ladder, spec);
  ASSERT_TRUE(reference.complete);

  const SymbolicNodalMatrix matrix(canonical);
  const Expression full = symbolic_determinant(matrix);
  SagOptions options;
  options.epsilon = 1e-3;
  const SagResult result = prune_expression_against(
      full, matrix.symbols(), reference.reference.denominator().polynomial(), options);
  EXPECT_GT(result.retained_terms, 0u);
  EXPECT_LE(result.worst_error, options.epsilon);
}

TEST(Sag, SdgReachesSagQuality) {
  // For the same epsilon, SDG's incremental stream must not need more terms
  // than SAG's optimal per-coefficient pruning by more than the duplicate
  // (cancelling) generation pairs.
  const auto ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const Expression full = symbolic_determinant(matrix);
  const auto exact = full.coefficients(matrix.symbols());

  const double epsilon = 1e-2;
  SagOptions sag_options;
  sag_options.epsilon = epsilon;
  const SagResult sag = prune_expression(full, matrix.symbols(), sag_options);

  std::size_t sdg_terms = 0;
  for (int k = 0; k <= exact.degree(); ++k) {
    if (exact.coeff(static_cast<std::size_t>(k)).is_zero()) continue;
    SdgOptions sdg_options;
    sdg_options.epsilon = epsilon;
    const auto result = generate_determinant_terms(
        matrix, k, exact.coeff(static_cast<std::size_t>(k)), sdg_options);
    EXPECT_TRUE(result.met) << k;
    sdg_terms += result.generated();
  }
  // SDG generates raw permutation terms (duplicates included), SAG counts
  // canonicalized ones; allow a generous factor.
  EXPECT_LE(sdg_terms, 6 * std::max<std::size_t>(sag.retained_terms, 1));
}

TEST(Sag, ZeroCoefficientKeepsNothing) {
  // Ladder determinant has p0 == 0 exactly: SAG must not retain terms that
  // only cancel each other.
  const auto ladder = netlist::canonicalize(circuits::rc_ladder(2));
  const SymbolicNodalMatrix matrix(ladder);
  const Expression full = symbolic_determinant(matrix);
  const auto exact = full.coefficients(matrix.symbols());
  ASSERT_TRUE(exact.coeff(0).is_zero());

  SagOptions options;
  options.epsilon = 1e-3;
  const SagResult result = prune_expression(full, matrix.symbols(), options);
  for (const Term& term : result.simplified.terms()) {
    EXPECT_GT(term.s_power, 0);
  }
}

TEST(Sag, EmptyExpression) {
  const SymbolTable table;
  const SagResult result = prune_expression(Expression{}, table);
  EXPECT_TRUE(result.simplified.is_zero());
  EXPECT_EQ(result.retained_terms, 0u);
  EXPECT_EQ(result.worst_error, 0.0);
}

}  // namespace
}  // namespace symref::symbolic
