// SDG magnitude-ordered term generation with eq. (3) error control.
#include "symbolic/sdg.h"

#include <gtest/gtest.h>

#include "circuits/ladder.h"
#include "circuits/ota.h"
#include "circuits/ua741.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"

namespace symref::symbolic {
namespace {

using numeric::ScaledDouble;

TEST(Sdg, TermsEmittedInDecreasingMagnitude) {
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  // Exact reference from the full expansion, then regenerate with epsilon 0
  // (never met) capped by max_terms -> full ordered stream.
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  SdgOptions options;
  options.epsilon = 0.0;
  options.max_terms = 100000;
  const SdgResult result =
      generate_determinant_terms(matrix, 2, oracle.coeff(2), options);
  ASSERT_GT(result.generated(), 4u);
  for (std::size_t i = 1; i < result.terms.size(); ++i) {
    EXPECT_GE(result.terms[i - 1].magnitude(matrix.symbols()).log10_abs(),
              result.terms[i].magnitude(matrix.symbols()).log10_abs() - 1e-9)
        << i;
  }
}

TEST(Sdg, ExhaustedStreamSumsToExactCoefficient) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const SymbolicNodalMatrix matrix(ladder);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  for (int k = 0; k <= 3; ++k) {
    SdgOptions options;
    options.epsilon = 0.0;  // force full enumeration
    const SdgResult result =
        generate_determinant_terms(matrix, k, oracle.coeff(static_cast<std::size_t>(k)),
                                   options);
    EXPECT_EQ(result.termination, "exhausted") << k;
    EXPECT_LT(numeric::relative_difference(result.accumulated,
                                           oracle.coeff(static_cast<std::size_t>(k))),
              1e-10)
        << k;
  }
}

TEST(Sdg, StopsEarlyWithLooseEpsilon) {
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());

  SdgOptions loose;
  loose.epsilon = 0.1;
  const SdgResult early = generate_determinant_terms(matrix, 2, oracle.coeff(2), loose);
  EXPECT_TRUE(early.met);
  EXPECT_EQ(early.termination, "met");
  EXPECT_LT(early.relative_error, 0.1);

  SdgOptions tight;
  tight.epsilon = 1e-9;
  const SdgResult late = generate_determinant_terms(matrix, 2, oracle.coeff(2), tight);
  EXPECT_GE(late.generated(), early.generated());
}

TEST(Sdg, EveryTermHasExactlyKCapacitors) {
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  SdgOptions options;
  options.epsilon = 1e-6;
  const SdgResult result = generate_determinant_terms(matrix, 2, oracle.coeff(2), options);
  for (const Term& term : result.terms) {
    int caps = 0;
    for (const int id : term.symbols) {
      if (matrix.symbols().at(id).is_capacitor) ++caps;
    }
    EXPECT_EQ(caps, 2);
    EXPECT_EQ(term.s_power, 2);
    EXPECT_EQ(term.symbols.size(), static_cast<std::size_t>(matrix.dim()));
  }
}

TEST(Sdg, ReferenceFromAdaptiveEngineDrivesStopRule) {
  // End-to-end: the numerical reference produced by the paper's algorithm
  // is exactly what eq. (3) needs. Use the transimpedance denominator
  // (= full determinant) so the oracle matches the engine output.
  const netlist::Circuit ladder = circuits::rc_ladder(4);
  const netlist::Circuit canonical = netlist::canonicalize(ladder);
  const auto spec = mna::TransferSpec::transimpedance("in", "n4");
  const refgen::AdaptiveResult reference = refgen::generate_reference(ladder, spec);
  ASSERT_TRUE(reference.complete);

  const SymbolicNodalMatrix matrix(canonical);
  SdgOptions options;
  options.epsilon = 1e-4;
  const SdgResult result = generate_determinant_terms(
      matrix, 2, reference.reference.denominator().at(2).value, options);
  EXPECT_TRUE(result.met) << result.termination;
  EXPECT_LT(result.relative_error, 1e-4);
}

TEST(Sdg, UniformLadderTermCounts) {
  // For the n=2 uniform ladder (all values 1), det = (g1+g2)(g2+sc2)... with
  // unit values; coefficient of s^2 (c1 c2 g1) has exactly one term after
  // cancellation, but term GENERATION enumerates signed duplicates too.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(2, 1.0, 1.0));
  const SymbolicNodalMatrix matrix(ladder);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  SdgOptions options;
  options.epsilon = 0.0;
  const SdgResult result = generate_determinant_terms(matrix, 2, oracle.coeff(2), options);
  EXPECT_EQ(result.termination, "exhausted");
  EXPECT_NEAR(result.accumulated.to_double(), oracle.coeff(2).to_double(), 1e-12);
}

TEST(Sdg, ZeroReferenceHandled) {
  // Asking for a coefficient beyond the true order: reference 0, generator
  // must terminate (cancelling terms or none at all).
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(2));
  const SymbolicNodalMatrix matrix(ladder);
  SdgOptions options;
  options.epsilon = 1e-3;
  const SdgResult result =
      generate_determinant_terms(matrix, 2 + 1, ScaledDouble(0.0), options);
  // k=3 exceeds the capacitor count: no term can have 3 caps.
  EXPECT_EQ(result.generated(), 0u);
  EXPECT_EQ(result.termination, "exhausted");
}

TEST(Sdg, MaxTermsCapRespected) {
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  SdgOptions options;
  options.epsilon = 0.0;
  options.max_terms = 3;
  const SdgResult result = generate_determinant_terms(matrix, 2, oracle.coeff(2), options);
  EXPECT_EQ(result.generated(), 3u);
  EXPECT_EQ(result.termination, "max_terms");
}


TEST(Sdg, FrontierPruningContinuesPastOverflow) {
  // A frontier cap small enough to overflow must PRUNE the weakest-bound
  // states and keep generating (flagging frontier_pruned) instead of
  // aborting — and must refuse to claim eq. (3) was met afterwards, since
  // pruned states could have carried mass.
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  SdgOptions options;
  options.epsilon = 0.0;  // never met: exhaust through repeated prunes
  options.max_queue = 8;
  const SdgResult result = generate_determinant_terms(matrix, 2, oracle.coeff(2), options);
  EXPECT_TRUE(result.frontier_pruned);
  EXPECT_EQ(result.termination, "queue_overflow");
  EXPECT_FALSE(result.met);
  EXPECT_GT(result.generated(), 0u);
  // The survivors still stream in decreasing magnitude.
  for (std::size_t i = 1; i < result.terms.size(); ++i) {
    EXPECT_GE(result.terms[i - 1].magnitude(matrix.symbols()).log10_abs(),
              result.terms[i].magnitude(matrix.symbols()).log10_abs() - 1e-9)
        << i;
  }
}

TEST(Sdg, UnprunedRunIsUnaffectedByLargeQueueCap) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const SymbolicNodalMatrix matrix(ladder);
  const auto oracle = symbolic_determinant(matrix).coefficients(matrix.symbols());
  SdgOptions roomy;
  roomy.epsilon = 0.0;
  roomy.max_queue = 1u << 20;
  const SdgResult result = generate_determinant_terms(matrix, 1, oracle.coeff(1), roomy);
  EXPECT_FALSE(result.frontier_pruned);
  EXPECT_EQ(result.termination, "exhausted");
  EXPECT_LT(numeric::relative_difference(result.accumulated, oracle.coeff(1)), 1e-10);
}

TEST(Sdg, Ua741TermStreamIsDeterministic) {
  // Two runs over the reduced ua741 (dim 22) must be identical term for
  // term — the generator's order is a pure function of the matrix, with no
  // dependence on allocation or iteration incidentals.
  circuits::Ua741Options reduced;
  reduced.base_resistance = false;
  reduced.substrate_caps = false;
  const netlist::Circuit amp = netlist::canonicalize(circuits::ua741(reduced));
  const auto spec = mna::TransferSpec::voltage_gain("inp", "vo");
  const refgen::AdaptiveResult reference = refgen::generate_reference(amp, spec);
  ASSERT_TRUE(reference.complete);
  const SymbolicNodalMatrix matrix(amp);

  SdgOptions options;
  options.epsilon = 0.05;
  const auto& num = reference.reference.numerator();
  const SdgResult first = generate_transfer_terms(matrix, spec, TransferSide::Numerator, 0,
                                                  num.at(0).value, options);
  const SdgResult second = generate_transfer_terms(matrix, spec, TransferSide::Numerator, 0,
                                                   num.at(0).value, options);
  EXPECT_TRUE(first.met) << first.termination;
  ASSERT_EQ(first.generated(), second.generated());
  EXPECT_GT(first.generated(), 100u);  // a real stream, not a toy
  EXPECT_EQ(first.accumulated.mantissa(), second.accumulated.mantissa());
  EXPECT_EQ(first.accumulated.exponent2(), second.accumulated.exponent2());
  for (std::size_t i = 0; i < first.terms.size(); ++i) {
    EXPECT_EQ(first.terms[i].symbols, second.terms[i].symbols) << i;
    EXPECT_EQ(first.terms[i].coefficient, second.terms[i].coefficient) << i;
  }
}

TEST(Sdg, CofactorTermsMatchSymbolicCofactor) {
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(3));
  const SymbolicNodalMatrix matrix(ladder);
  const int in_row = *matrix.row_of_node("in");
  const int out_row = *matrix.row_of_node("n3");
  const auto oracle =
      symbolic_cofactor(matrix, in_row, out_row).coefficients(matrix.symbols());
  for (int k = 0; k <= oracle.degree(); ++k) {
    SdgOptions options;
    options.epsilon = 0.0;  // exhaust
    const SdgResult result = generate_cofactor_terms(
        matrix, in_row, out_row, k, oracle.coeff(static_cast<std::size_t>(k)), options);
    EXPECT_EQ(result.termination, "exhausted") << k;
    EXPECT_LT(numeric::relative_difference(result.accumulated,
                                           oracle.coeff(static_cast<std::size_t>(k))),
              1e-10)
        << k;
  }
}

TEST(Sdg, CofactorSignsHandled) {
  // Pick a cofactor with odd row+col so the (-1)^(row+col) factor matters.
  const netlist::Circuit ladder = netlist::canonicalize(circuits::rc_ladder(2));
  const SymbolicNodalMatrix matrix(ladder);
  for (int row = 0; row < matrix.dim(); ++row) {
    for (int col = 0; col < matrix.dim(); ++col) {
      const auto oracle =
          symbolic_cofactor(matrix, row, col).coefficients(matrix.symbols());
      for (int k = 0; k <= oracle.degree(); ++k) {
        SdgOptions options;
        options.epsilon = 0.0;
        const SdgResult result = generate_cofactor_terms(
            matrix, row, col, k, oracle.coeff(static_cast<std::size_t>(k)), options);
        EXPECT_LT(numeric::relative_difference(result.accumulated,
                                               oracle.coeff(static_cast<std::size_t>(k))),
                  1e-10)
            << row << "," << col << " k=" << k;
      }
    }
  }
}

TEST(Sdg, TransferTermsSingleEnded) {
  // Full loop on a voltage-gain spec: numerator and denominator terms from
  // the engine's own references.
  const netlist::Circuit ladder = circuits::rc_ladder(3);
  const netlist::Circuit canonical = netlist::canonicalize(ladder);
  const auto spec = circuits::rc_ladder_spec(3);
  const auto reference = refgen::generate_reference(ladder, spec);
  ASSERT_TRUE(reference.complete);
  const SymbolicNodalMatrix matrix(canonical);

  SdgOptions options;
  options.epsilon = 1e-6;
  // Denominator: every known nonzero coefficient reachable by eq. (3).
  const auto& den = reference.reference.denominator();
  for (int k = 0; k <= den.order_bound(); ++k) {
    if (!den.at(k).known() || den.at(k).value.is_zero()) continue;
    const auto result = generate_transfer_terms(matrix, spec, TransferSide::Denominator,
                                                k, den.at(k).value, options);
    EXPECT_TRUE(result.met) << "den k=" << k << " " << result.termination;
  }
  // Numerator: the ladder's numerator is the conductance-path product (s^0).
  const auto& num = reference.reference.numerator();
  const auto result = generate_transfer_terms(matrix, spec, TransferSide::Numerator, 0,
                                              num.at(0).value, options);
  EXPECT_TRUE(result.met) << result.termination;
  EXPECT_EQ(result.generated(), 1u);  // exactly g1*g2*g3
}

TEST(Sdg, TransferTermsRejectDifferentialSpecs) {
  const netlist::Circuit ota = netlist::canonicalize(circuits::ota_fig1());
  const SymbolicNodalMatrix matrix(ota);
  const auto spec = circuits::ota_fig1_gain_spec();  // differential input
  EXPECT_THROW(generate_transfer_terms(matrix, spec, TransferSide::Numerator, 0,
                                       ScaledDouble(1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace symref::symbolic
