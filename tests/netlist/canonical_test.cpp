// Canonicalization to the homogeneous admittance class {G, C, VCCS}.
//
// The strongest check is electrical: the canonical circuit must present the
// same transfer function as the original (up to the documented O(1/Gbig)
// modeling error), verified through the full-MNA AC simulator.
#include "netlist/canonical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuits/filters.h"
#include "circuits/ladder.h"
#include "mna/ac.h"
#include "netlist/circuit.h"

namespace symref::netlist {
namespace {

double transfer_mismatch(const Circuit& a, const Circuit& b, const mna::TransferSpec& spec,
                         double freq) {
  const std::complex<double> ha = mna::AcSimulator(a).transfer(spec, freq);
  const std::complex<double> hb = mna::AcSimulator(b).transfer(spec, freq);
  return std::abs(ha - hb) / std::max(1e-30, std::abs(ha));
}

TEST(Canonical, DetectsCanonicalCircuits) {
  Circuit c;
  c.add_conductance("g1", "a", "0", 1e-3);
  c.add_capacitor("c1", "a", "0", 1e-12);
  c.add_vccs("gm1", "b", "0", "a", "0", 1e-3);
  EXPECT_TRUE(is_canonical(c));
  c.add_resistor("r1", "b", "0", 1e3);
  EXPECT_FALSE(is_canonical(c));
}

TEST(Canonical, ResistorBecomesConductance) {
  Circuit c;
  c.add_resistor("r1", "a", "b", 2e3);
  const Circuit out = canonicalize(c);
  ASSERT_TRUE(is_canonical(out));
  const Element* g = out.find_element("r1");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, ElementKind::Conductance);
  EXPECT_DOUBLE_EQ(g->value, 0.5e-3);
}

TEST(Canonical, NodeNamesPreserved) {
  Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_capacitor("c1", "out", "0", 1e-9);
  const Circuit out = canonicalize(c);
  EXPECT_EQ(*out.find_node("in"), *c.find_node("in"));
  EXPECT_EQ(*out.find_node("out"), *c.find_node("out"));
}

TEST(Canonical, InductorGyratorMatchesImpedance) {
  // Series RL lowpass: in -R- out -L- 0. |H| = 1/sqrt(1+(wR/L... )
  Circuit rl;
  rl.add_resistor("r1", "in", "out", 100.0);
  rl.add_inductor("l1", "out", "0", 1e-3);
  const Circuit canonical = canonicalize(rl);
  ASSERT_TRUE(is_canonical(canonical));
  EXPECT_NE(canonical.find_element("l1.gy1"), nullptr);
  EXPECT_NE(canonical.find_element("l1.gy2"), nullptr);
  EXPECT_NE(canonical.find_element("l1.cx"), nullptr);

  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  for (const double freq : {1e2, 1e4, 1e5, 1e6}) {
    EXPECT_LT(transfer_mismatch(rl, canonical, spec, freq), 1e-9) << freq;
  }
}

TEST(Canonical, VcvsBigGApproximation) {
  // Non-inverting amplifier-ish: E gain 10 buffering a divider.
  Circuit c;
  c.add_resistor("r1", "in", "x", 1e3);
  c.add_resistor("r2", "x", "0", 1e3);
  c.add_vcvs("e1", "out", "0", "x", "0", 10.0);
  c.add_resistor("rl", "out", "0", 1e3);
  const Circuit canonical = canonicalize(c);
  ASSERT_TRUE(is_canonical(canonical));
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  // Error is O(Gload/Gbig) ~ 1e-4 with the default Gbig = 1e4 * maxG.
  EXPECT_LT(transfer_mismatch(c, canonical, spec, 1e3), 1e-3);

  // A tighter Gbig tightens the match.
  CanonicalOptions options;
  options.vcvs_conductance = 1e6;
  const Circuit tight = canonicalize(c, options);
  EXPECT_LT(transfer_mismatch(c, tight, spec, 1e3), 1e-6);
}

TEST(Canonical, IdealOpampFollower) {
  Circuit c;
  c.add_resistor("r1", "in", "inp", 1e3);
  c.add_opamp("a1", "out", "inp", "out");  // unity follower
  c.add_resistor("rl", "out", "0", 1e3);
  const Circuit canonical = canonicalize(c);
  ASSERT_TRUE(is_canonical(canonical));
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  const std::complex<double> h = mna::AcSimulator(canonical).transfer(spec, 1e3);
  EXPECT_NEAR(std::abs(h), 1.0, 1e-3);  // follower gain 1 within 1/A0
}

TEST(Canonical, SallenKeyTransferPreserved) {
  const Circuit sk = circuits::sallen_key();
  const Circuit canonical = canonicalize(sk);
  ASSERT_TRUE(is_canonical(canonical));
  const auto spec = circuits::sallen_key_spec();
  for (const double freq : {1e2, 1e3, 1e4, 1e5}) {
    EXPECT_LT(transfer_mismatch(sk, canonical, spec, freq), 1e-3) << freq;
  }
}

TEST(Canonical, CccsThroughSenseConductance) {
  // F mirrors the current of sense source V1 (0 V) through R1 into R2.
  Circuit c;
  c.add_vsource("v1", "a", "0", 0.0);
  c.add_resistor("r1", "in", "a", 1e3);
  c.add_cccs("f1", "out", "0", "v1", 2.0);
  c.add_resistor("r2", "out", "0", 1e3);
  const Circuit canonical = canonicalize(c);
  ASSERT_TRUE(is_canonical(canonical));
  // i(r1) = vin/1k; i(f1) = 2 * that; v(out) = -i * 1k = -2 vin (sign per
  // SPICE F convention). Compare original vs canonical, not absolute signs.
  const auto spec = mna::TransferSpec::voltage_gain("in", "out");
  EXPECT_LT(transfer_mismatch(c, canonical, spec, 1e3), 1e-3);
}

TEST(Canonical, CcvsRejectedWithoutVoltageSourceBranch) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_cccs("f1", "out", "0", "r1", 2.0);  // controlling branch is not a V source
  c.add_resistor("r2", "out", "0", 1e3);
  EXPECT_THROW(canonicalize(c), std::invalid_argument);
}

TEST(Canonical, IndependentSourcesDroppedByDefault) {
  Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_isource("i1", "out", "0", 1e-3);
  c.add_resistor("r1", "in", "out", 1e3);
  const Circuit canonical = canonicalize(c);
  EXPECT_EQ(canonical.find_element("v1"), nullptr);
  EXPECT_EQ(canonical.find_element("i1"), nullptr);
  EXPECT_NE(canonical.find_element("r1"), nullptr);

  CanonicalOptions strict;
  strict.drop_independent_sources = false;
  EXPECT_THROW(canonicalize(c, strict), std::invalid_argument);
}

TEST(Canonical, IdempotentOnCanonicalCircuits) {
  Circuit c;
  c.add_conductance("g1", "a", "0", 1e-3);
  c.add_capacitor("c1", "a", "0", 1e-12);
  c.add_vccs("gm1", "b", "0", "a", "0", 2e-3);
  const Circuit once = canonicalize(c);
  const Circuit twice = canonicalize(once);
  EXPECT_EQ(once.element_count(), twice.element_count());
  for (const Element& e : once.elements()) {
    const Element* other = twice.find_element(e.name);
    ASSERT_NE(other, nullptr) << e.name;
    EXPECT_DOUBLE_EQ(other->value, e.value) << e.name;
  }
}

TEST(Canonical, GyratorConductanceOverride) {
  Circuit rl;
  rl.add_resistor("r1", "in", "out", 100.0);
  rl.add_inductor("l1", "out", "0", 1e-3);
  CanonicalOptions options;
  options.gyrator_conductance = 0.5;
  const Circuit canonical = canonicalize(rl, options);
  // C = L * gg^2 = 1e-3 * 0.25.
  EXPECT_DOUBLE_EQ(canonical.find_element("l1.cx")->value, 1e-3 * 0.25);
  EXPECT_DOUBLE_EQ(canonical.find_element("l1.gy1")->value, 0.5);
}

TEST(Canonical, RandomRcEquivalenceSweep) {
  // Property: canonicalization never changes the AC behaviour of R/C nets.
  symref::support::Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit c = circuits::random_rc(rng);
    const Circuit canonical = canonicalize(c);
    ASSERT_TRUE(is_canonical(canonical)) << trial;
    const auto spec = mna::TransferSpec::transimpedance("n1", "n3");
    for (const double f : {1e3, 1e6}) {
      const auto a = mna::AcSimulator(c).transfer(spec, f);
      const auto b = mna::AcSimulator(canonical).transfer(spec, f);
      EXPECT_LT(std::abs(a - b), 1e-9 * std::max(1.0, std::abs(a)))
          << "trial " << trial << " f " << f;
    }
  }
}

}  // namespace
}  // namespace symref::netlist
