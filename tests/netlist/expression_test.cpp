// Arithmetic parameter expression evaluator ({...} netlist values).
#include "netlist/expression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

namespace symref::netlist {
namespace {

/// Map-backed environment for the tests.
class MapEnv final : public ParamEnv {
 public:
  explicit MapEnv(std::map<std::string, double, std::less<>> values)
      : values_(std::move(values)) {}
  [[nodiscard]] const double* find(std::string_view name) const override {
    const auto it = values_.find(name);
    return it == values_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, double, std::less<>> values_;
};

double eval(std::string_view text,
            std::map<std::string, double, std::less<>> values = {}) {
  return evaluate_expression(text, MapEnv(std::move(values)));
}

TEST(Expression, LiteralsAndEngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(eval("42"), 42.0);
  EXPECT_DOUBLE_EQ(eval("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(eval("30p"), 30e-12);
  EXPECT_DOUBLE_EQ(eval("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(eval("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(eval("2e+3"), 2e3);
}

TEST(Expression, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(eval("-3 + 5"), 2.0);
  EXPECT_DOUBLE_EQ(eval("--4"), 4.0);
  EXPECT_DOUBLE_EQ(eval("2 ^ 10"), 1024.0);
  EXPECT_DOUBLE_EQ(eval("2 ^ 3 ^ 2"), 512.0);  // right-associative
  EXPECT_DOUBLE_EQ(eval("1k + 1meg / 1k"), 2000.0);
}

TEST(Expression, Parameters) {
  EXPECT_DOUBLE_EQ(eval("r * 2", {{"r", 1e3}}), 2e3);
  EXPECT_DOUBLE_EQ(eval("RC", {{"rc", 5.0}}), 5.0);  // lowercased lookup
}

TEST(Expression, Functions) {
  EXPECT_DOUBLE_EQ(eval("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("abs(-3)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("min(2, 3)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("max(2, 3)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 8)"), 256.0);
  EXPECT_DOUBLE_EQ(eval("exp(0)"), 1.0);
  EXPECT_DOUBLE_EQ(eval("ln(exp(1))"), 1.0);
  EXPECT_DOUBLE_EQ(eval("log(1000)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("log10(100)"), 2.0);
}

TEST(Expression, HyperbolicFunctions) {
  EXPECT_DOUBLE_EQ(eval("tanh(0)"), 0.0);
  EXPECT_DOUBLE_EQ(eval("tanh(1)"), std::tanh(1.0));
  EXPECT_DOUBLE_EQ(eval("sinh(0)"), 0.0);
  EXPECT_DOUBLE_EQ(eval("cosh(0)"), 1.0);
  // cosh^2 - sinh^2 == 1, evaluated inside the expression language itself.
  EXPECT_NEAR(eval("cosh(0.5)^2 - sinh(0.5)^2"), 1.0, 1e-12);
  // Device-style usage: thermal-voltage limiter around a .param value.
  EXPECT_DOUBLE_EQ(eval("vt * tanh(vd / vt)", {{"vt", 0.02585}, {"vd", 1.0}}),
                   0.02585 * std::tanh(1.0 / 0.02585));
}

TEST(Expression, HyperbolicErrorsCarryOffsets) {
  // Overflow in sinh/cosh is a positioned evaluation error, not an inf/nan
  // that silently poisons a component value downstream.
  try {
    eval("1 + sinh(1000)");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.offset(), 4u);  // the 's' of sinh
    EXPECT_NE(std::string(e.what()).find("'sinh' produced a non-finite value"),
              std::string::npos);
  }
  try {
    eval("2 * cosh(1000)");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("'cosh' produced a non-finite value"),
              std::string::npos);
  }
  // Arity errors point at the call, with the usual one-argument message.
  try {
    eval("tanh(1, 2)");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("'tanh' expects 1 argument"),
              std::string::npos);
  }
  EXPECT_THROW(eval("sinh()"), ExprError);
  EXPECT_THROW(eval("cosh(1, 2)"), ExprError);
}

TEST(Expression, ErrorsCarryOffsets) {
  try {
    eval("1 + bogus_name");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("undefined parameter 'bogus_name'"),
              std::string::npos);
  }
  try {
    eval("3 / 0");
    FAIL() << "expected ExprError";
  } catch (const ExprError& e) {
    EXPECT_EQ(e.offset(), 2u);  // the '/'
    EXPECT_NE(std::string(e.what()).find("division by zero"), std::string::npos);
  }
}

TEST(Expression, SyntaxErrorsRejected) {
  EXPECT_THROW(eval(""), ExprError);
  EXPECT_THROW(eval("1 +"), ExprError);
  EXPECT_THROW(eval("(1"), ExprError);
  EXPECT_THROW(eval("1 2"), ExprError);
  EXPECT_THROW(eval("1 & 2"), ExprError);
  EXPECT_THROW(eval("zzz(1)"), ExprError);
  EXPECT_THROW(eval("min(1)"), ExprError);
  EXPECT_THROW(eval("sqrt(1, 2)"), ExprError);
}

TEST(Expression, DomainAndOverflowErrorsRejected) {
  EXPECT_THROW(eval("sqrt(-1)"), ExprError);
  EXPECT_THROW(eval("ln(0)"), ExprError);
  EXPECT_THROW(eval("log(-5)"), ExprError);
  EXPECT_THROW(eval("10 ^ 400"), ExprError);      // non-finite power
  EXPECT_THROW(eval("1e308 * 1e308"), ExprError);  // non-finite result
}

}  // namespace
}  // namespace symref::netlist
