// Netlist serialization round-trips.
#include "netlist/writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "mna/ac.h"
#include "netlist/parser.h"

namespace symref::netlist {
namespace {

/// Electrical round-trip: write, re-parse, compare transfer functions.
void expect_electrical_round_trip(const Circuit& original, const mna::TransferSpec& spec) {
  const std::string text = write_netlist(original);
  const Circuit reparsed = parse_netlist(text);
  for (const double freq : {1e2, 1e4, 1e6}) {
    const std::complex<double> ha = mna::AcSimulator(original).transfer(spec, freq);
    const std::complex<double> hb = mna::AcSimulator(reparsed).transfer(spec, freq);
    EXPECT_LT(std::abs(ha - hb), 1e-6 * std::max(1.0, std::abs(ha)))
        << "freq " << freq << "\n" << text;
  }
}

TEST(Writer, PassiveRoundTrip) {
  Circuit c;
  c.add_resistor("r1", "in", "out", 1e3);
  c.add_capacitor("c1", "out", "0", 30e-12);
  c.add_inductor("l1", "out", "0", 1e-3);
  expect_electrical_round_trip(c, mna::TransferSpec::voltage_gain("in", "out"));
}

TEST(Writer, ConductanceWrittenAsResistor) {
  Circuit c;
  c.add_conductance("gl", "a", "0", 2e-3);
  const std::string text = write_netlist(c);
  EXPECT_NE(text.find("Rgl a 0 500"), std::string::npos) << text;
}

TEST(Writer, ControlledSourcesRoundTrip) {
  Circuit c;
  c.add_vccs("g1", "out", "0", "in", "0", 2e-3);
  c.add_resistor("rl", "out", "0", 1e3);
  c.add_resistor("rin", "in", "0", 1e6);
  expect_electrical_round_trip(c, mna::TransferSpec::voltage_gain("in", "out"));
}

TEST(Writer, VcvsRoundTrip) {
  Circuit c;
  c.add_vcvs("e1", "out", "0", "in", "0", 5.0);
  c.add_resistor("rl", "out", "0", 1e3);
  c.add_resistor("rin", "in", "0", 1e6);
  expect_electrical_round_trip(c, mna::TransferSpec::voltage_gain("in", "out"));
}

TEST(Writer, TitleAndEndEmitted) {
  Circuit c;
  c.title = "hello world";
  c.add_resistor("r1", "a", "0", 1.0);
  const std::string text = write_netlist(c);
  EXPECT_EQ(text.find(".title hello world"), 0u);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Writer, CardLetterPrefixAddedWhenMissing) {
  Circuit c;
  c.add_capacitor("q1.cpi", "a", "0", 1e-12);  // name starts with 'q'
  const std::string text = write_netlist(c);
  EXPECT_NE(text.find("Cq1.cpi"), std::string::npos) << text;
}

TEST(Writer, SourcesSerialized) {
  Circuit c;
  c.add_vsource("v1", "in", "0", 1.0);
  c.add_isource("i1", "out", "0", 2e-3);
  c.add_resistor("r1", "in", "out", 1e3);
  const std::string text = write_netlist(c);
  EXPECT_NE(text.find("v1 in 0 AC"), std::string::npos) << text;
  const Circuit reparsed = parse_netlist(text);
  EXPECT_DOUBLE_EQ(reparsed.find_element("v1")->value, 1.0);
  EXPECT_DOUBLE_EQ(reparsed.find_element("i1")->value, 2e-3);
}

}  // namespace
}  // namespace symref::netlist
