// SPICE-subset netlist parser.
#include "netlist/parser.h"

#include <gtest/gtest.h>

namespace symref::netlist {
namespace {

TEST(Parser, BasicElements) {
  const Circuit c = parse_netlist(R"(
R1 in out 1k
C1 out 0 30p
L1 out tail 10u
G1 o2 0 out 0 2m
E1 o3 0 out 0 10
V1 in 0 AC 1
I1 o2 0 AC 2m
)");
  EXPECT_EQ(c.element_count(), 7u);
  EXPECT_DOUBLE_EQ(c.find_element("R1")->value, 1e3);
  EXPECT_DOUBLE_EQ(c.find_element("C1")->value, 30e-12);
  EXPECT_DOUBLE_EQ(c.find_element("L1")->value, 10e-6);
  EXPECT_EQ(c.find_element("G1")->kind, ElementKind::Vccs);
  EXPECT_DOUBLE_EQ(c.find_element("G1")->value, 2e-3);
  EXPECT_EQ(c.find_element("E1")->kind, ElementKind::Vcvs);
  EXPECT_DOUBLE_EQ(c.find_element("V1")->value, 1.0);
  EXPECT_DOUBLE_EQ(c.find_element("I1")->value, 2e-3);
}

TEST(Parser, SourceDefaultsToUnitMagnitude) {
  const Circuit c = parse_netlist("V1 in 0\n");
  EXPECT_DOUBLE_EQ(c.find_element("V1")->value, 1.0);
}

TEST(Parser, CurrentControlledSources) {
  const Circuit c = parse_netlist(R"(
V1 a 0 0
F1 b 0 V1 5
H1 c 0 V1 2k
R1 b 0 1k
R2 c 0 1k
R3 a 0 1k
)");
  EXPECT_EQ(c.find_element("F1")->kind, ElementKind::Cccs);
  EXPECT_EQ(c.find_element("F1")->ctrl_branch, "V1");
  EXPECT_EQ(c.find_element("H1")->kind, ElementKind::Ccvs);
  EXPECT_DOUBLE_EQ(c.find_element("H1")->value, 2e3);
}

TEST(Parser, CommentsAndContinuations) {
  const Circuit c = parse_netlist(R"(
* full-line comment
# another comment
R1 a 0 1k ; trailing comment
C1 a
+ 0
+ 10p $ continued over three lines
)");
  EXPECT_EQ(c.element_count(), 2u);
  EXPECT_DOUBLE_EQ(c.find_element("C1")->value, 10e-12);
}

TEST(Parser, TitleDirective) {
  const Circuit c = parse_netlist(".title my amplifier\nR1 a 0 1k\n.end\n");
  EXPECT_EQ(c.title, "my amplifier");
}

TEST(Parser, EndStopsParsing) {
  const Circuit c = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 2k\n");
  EXPECT_EQ(c.element_count(), 1u);
}

TEST(Parser, OpampCard) {
  const Circuit c = parse_netlist("O1 out inp inn\n");
  const Element* op = c.find_element("O1");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->kind, ElementKind::IdealOpAmp);
}

TEST(Parser, BjtModelExpansion) {
  const Circuit c = parse_netlist(R"(
.model qn bjt gm=4m beta=200 ro=50k cpi=20p cmu=2p rb=100
Q1 c b e qn
)");
  // rb creates the internal base node; expansion yields rb, rpi, cpi, cmu,
  // gm, ro.
  EXPECT_NE(c.find_element("Q1.rb"), nullptr);
  EXPECT_NE(c.find_element("Q1.rpi"), nullptr);
  EXPECT_NE(c.find_element("Q1.cpi"), nullptr);
  EXPECT_NE(c.find_element("Q1.cmu"), nullptr);
  EXPECT_NE(c.find_element("Q1.gm"), nullptr);
  EXPECT_NE(c.find_element("Q1.ro"), nullptr);
  EXPECT_DOUBLE_EQ(c.find_element("Q1.gm")->value, 4e-3);
  EXPECT_DOUBLE_EQ(c.find_element("Q1.rpi")->value, 200.0 / 4e-3);
}

TEST(Parser, MosModelExpansion) {
  const Circuit c = parse_netlist(R"(
.model mn mos gm=1m gds=50u cgs=50f cgd=10f cdb=20f
M1 d g s mn
)");
  EXPECT_NE(c.find_element("M1.gm"), nullptr);
  EXPECT_NE(c.find_element("M1.gds"), nullptr);
  EXPECT_DOUBLE_EQ(c.find_element("M1.cgs")->value, 50e-15);
}

TEST(Parser, SubcircuitExpansion) {
  const Circuit c = parse_netlist(R"(
.subckt divider top bottom
R1 top mid 1k
R2 mid bottom 1k
.ends
X1 in out divider
X2 out 0 divider
)");
  EXPECT_EQ(c.element_count(), 4u);
  // Internal node "mid" is instance-prefixed; ports are mapped.
  EXPECT_NE(c.find_element("X1.R1"), nullptr);
  EXPECT_TRUE(c.find_node("X1.mid").has_value());
  EXPECT_TRUE(c.find_node("X2.mid").has_value());
  const Element* x1r1 = c.find_element("X1.R1");
  EXPECT_EQ(x1r1->node_pos, *c.find_node("in"));
}

TEST(Parser, NestedSubcircuitInstances) {
  const Circuit c = parse_netlist(R"(
.subckt leaf a b
R1 a b 1k
.ends
.subckt branch x y
X1 x mid leaf
X2 mid y leaf
.ends
X9 in 0 branch
)");
  EXPECT_EQ(c.element_count(), 2u);
  EXPECT_NE(c.find_element("X9.X1.R1"), nullptr);
  EXPECT_NE(c.find_element("X9.X2.R1"), nullptr);
  EXPECT_TRUE(c.find_node("X9.mid").has_value());
}

TEST(Parser, SubcircuitPortArityChecked) {
  EXPECT_THROW(parse_netlist(".subckt d a b\nR1 a b 1\n.ends\nX1 in d\n"), ParseError);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("R1 a 0 1k\nC1 a 0 zzz\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, ErrorsPointAtTheOffendingTokenColumn) {
  try {
    parse_netlist("R1 a 0 1k\nC1 a 0   zzz\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 10);  // 'zzz' starts at column 10
    EXPECT_NE(std::string(e.what()).find("line 2, column 10"), std::string::npos);
  }
}

TEST(Parser, ContinuationTokensKeepTheirPhysicalLine) {
  // The bad value arrives on the continuation's physical line 3, column 5.
  try {
    parse_netlist("R1 a 0 1k\nC1 a 0\n+   zzz\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 5);
  }
}

TEST(Parser, ModelParameterErrorsPointAtTheParameter) {
  try {
    parse_netlist(".model t1 bjt gm=1m oops beta=100\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 21);  // 'oops'
  }
}

TEST(Parser, UnknownCardRejected) {
  EXPECT_THROW(parse_netlist("Z1 a 0 1k\n"), ParseError);
}

TEST(Parser, UnknownModelRejected) {
  EXPECT_THROW(parse_netlist("Q1 c b e nomodel\n"), ParseError);
}

TEST(Parser, UnknownSubcircuitRejected) {
  EXPECT_THROW(parse_netlist("X1 a b nothing\n"), ParseError);
}

TEST(Parser, MissingEndsRejected) {
  EXPECT_THROW(parse_netlist(".subckt d a b\nR1 a b 1\n"), ParseError);
}

TEST(Parser, ContinuationWithoutPreviousLineRejected) {
  EXPECT_THROW(parse_netlist("+ R1 a 0 1k\n"), ParseError);
}

TEST(Parser, GroundVariantsInsideSubckt) {
  const Circuit c = parse_netlist(R"(
.subckt g1 a
R1 a gnd 1k
.ends
X1 in g1
)");
  const Element* r = c.find_element("X1.R1");
  EXPECT_EQ(r->node_neg, 0);  // gnd is global, never prefixed
}

TEST(Parser, LowercaseCardsAndNumericNodes) {
  const Circuit c = parse_netlist("r1 1 2 1k\nc1 2 0 1n\n");
  EXPECT_EQ(c.element_count(), 2u);
  EXPECT_TRUE(c.find_node("1").has_value());
  EXPECT_TRUE(c.find_node("2").has_value());
}

TEST(Parser, DcAndAcTokens) {
  const Circuit c = parse_netlist("V1 in 0 DC 5 AC 0.5\n");
  // The last numeric token wins as the AC magnitude.
  EXPECT_DOUBLE_EQ(c.find_element("V1")->value, 0.5);
}

TEST(Parser, NegativeTransconductance) {
  const Circuit c = parse_netlist("G1 a 0 b 0 -2m\n");
  EXPECT_DOUBLE_EQ(c.find_element("G1")->value, -2e-3);
}

TEST(Parser, DuplicateInstanceNamesRejected) {
  EXPECT_THROW(parse_netlist("R1 a 0 1k\nR1 b 0 2k\n"), std::invalid_argument);
}

TEST(Parser, SubcktUsesGlobalModels) {
  const Circuit c = parse_netlist(R"(
.model qn bjt gm=1m beta=100 cpi=1p
.subckt amp b c
Q1 c b 0 qn
.ends
X1 base coll amp
)");
  EXPECT_NE(c.find_element("X1.Q1.gm"), nullptr);
  EXPECT_DOUBLE_EQ(c.find_element("X1.Q1.gm")->value, 1e-3);
}

// --- .param + {expr} -------------------------------------------------------

TEST(Parser, ParamAndBraceExpressions) {
  const Circuit c = parse_netlist(R"(
.param rbase=1k n=3
.param rtop={rbase * n}
R1 a 0 {rtop}
R2 a 0 {rbase / 2}
C1 a 0 { 10p * (1 + n) }
)");
  EXPECT_DOUBLE_EQ(c.find_element("R1")->value, 3e3);
  EXPECT_DOUBLE_EQ(c.find_element("R2")->value, 500.0);
  EXPECT_DOUBLE_EQ(c.find_element("C1")->value, 40e-12);
}

TEST(Parser, ParamIsCaseInsensitive) {
  const Circuit c = parse_netlist(".param RVal=2k\nR1 a 0 {rval}\nR2 a 0 {RVAL}\n");
  EXPECT_DOUBLE_EQ(c.find_element("R1")->value, 2e3);
  EXPECT_DOUBLE_EQ(c.find_element("R2")->value, 2e3);
}

TEST(Parser, LaterParamRedefinitionWins) {
  const Circuit c = parse_netlist(".param r=1k\nR1 a 0 {r}\n.param r=2k\nR2 a 0 {r}\n");
  EXPECT_DOUBLE_EQ(c.find_element("R1")->value, 1e3);
  EXPECT_DOUBLE_EQ(c.find_element("R2")->value, 2e3);
}

TEST(Parser, SourceMagnitudeAcceptsExpressions) {
  const Circuit c = parse_netlist(".param a=2\nV1 in 0 AC {a/4}\n");
  EXPECT_DOUBLE_EQ(c.find_element("V1")->value, 0.5);
}

TEST(Parser, ModelParametersAcceptExpressions) {
  const Circuit c = parse_netlist(R"(
.param gm0=2m
.model qn bjt gm={gm0} beta=100 cpi={gm0 * 1n / 2m}
Q1 c b 0 qn
)");
  EXPECT_DOUBLE_EQ(c.find_element("Q1.gm")->value, 2e-3);
  EXPECT_DOUBLE_EQ(c.find_element("Q1.cpi")->value, 1e-9);
}

TEST(Parser, UndefinedParameterPointsIntoTheExpression) {
  try {
    parse_netlist("R1 a 0 1k\nC1 a 0 {2*cx}\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 11);  // 'cx' inside the braces
    EXPECT_NE(std::string(e.what()).find("undefined parameter 'cx'"), std::string::npos);
  }
}

TEST(Parser, DivisionByZeroPointsAtTheOperator) {
  try {
    parse_netlist("R1 a 0 {1/0}\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 10);  // the '/'
    EXPECT_NE(std::string(e.what()).find("division by zero"), std::string::npos);
  }
}

TEST(Parser, DivisionByZeroThroughParametersDiagnosed) {
  EXPECT_THROW(parse_netlist(".param g=0\nR1 a 0 {1/g}\n"), ParseError);
}

TEST(Parser, UnterminatedBraceRejected) {
  try {
    parse_netlist("R1 a 0 {1 + 2\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 8);  // the '{'
  }
}

TEST(Parser, MalformedParamCardRejected) {
  EXPECT_THROW(parse_netlist(".param\n"), ParseError);
  EXPECT_THROW(parse_netlist(".param novalue\n"), ParseError);
  EXPECT_THROW(parse_netlist(".param x=\n"), ParseError);
}

// --- Subcircuit parameters and scoping -------------------------------------

TEST(Parser, SubcktParameterDefaultsAndOverrides) {
  const Circuit c = parse_netlist(R"(
.subckt stage in out r=1k
R1 in out {r}
.ends
X1 a b stage
X2 b c stage r=5k
)");
  EXPECT_DOUBLE_EQ(c.find_element("X1.R1")->value, 1e3);
  EXPECT_DOUBLE_EQ(c.find_element("X2.R1")->value, 5e3);
}

TEST(Parser, SubcktDefaultsMayDeriveFromEarlierParameters) {
  // rout's default references gm — including a per-instance override of gm.
  const Circuit c = parse_netlist(R"(
.subckt ota in out gm=1m rout={2/gm}
G1 out 0 in 0 {gm}
R1 out 0 {rout}
.ends
X1 a b ota
X2 b c ota gm=4m
)");
  EXPECT_DOUBLE_EQ(c.find_element("X1.R1")->value, 2000.0);
  EXPECT_DOUBLE_EQ(c.find_element("X2.R1")->value, 500.0);
}

TEST(Parser, InstanceOverridesEvaluateInTheCallerScope) {
  const Circuit c = parse_netlist(R"(
.param rmain=8k
.subckt stage a b r=1k
R1 a b {r}
.ends
X1 in out stage r={rmain/2}
)");
  EXPECT_DOUBLE_EQ(c.find_element("X1.R1")->value, 4e3);
}

TEST(Parser, InstanceParameterShadowsGlobal) {
  const Circuit c = parse_netlist(R"(
.param r=1k
.subckt stage a b r=2k
R1 a b {r}
.ends
X1 in out stage
Rtop in 0 {r}
)");
  EXPECT_DOUBLE_EQ(c.find_element("X1.R1")->value, 2e3);  // subckt default shadows
  EXPECT_DOUBLE_EQ(c.find_element("Rtop")->value, 1e3);   // global untouched
}

TEST(Parser, BodyParamShadowsInItsScopeOnly) {
  const Circuit c = parse_netlist(R"(
.param c=1p
.subckt filt a
.param c=5p
C1 a 0 {c}
.ends
X1 n1 filt
Cmain n1 0 {c}
)");
  EXPECT_DOUBLE_EQ(c.find_element("X1.C1")->value, 5e-12);
  EXPECT_DOUBLE_EQ(c.find_element("Cmain")->value, 1e-12);
}

TEST(Parser, SubcktBodySeesCallerParameters) {
  // Dynamic chain: the body resolves names through the instantiating scope.
  const Circuit c = parse_netlist(R"(
.param rglobal=7k
.subckt stage a b
R1 a b {rglobal}
.ends
X1 in out stage
)");
  EXPECT_DOUBLE_EQ(c.find_element("X1.R1")->value, 7e3);
}

TEST(Parser, UnknownInstanceParameterRejected) {
  try {
    parse_netlist(".subckt s a b r=1\nR1 a b {r}\n.ends\nX1 in out s q=2\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("has no parameter 'q'"), std::string::npos);
  }
}

TEST(Parser, PortAfterParameterDefaultRejected) {
  EXPECT_THROW(parse_netlist(".subckt s a r=1 b\n.ends\n"), ParseError);
}

// --- Nested definitions and recursion --------------------------------------

TEST(Parser, NestedSubcktDefinitionsAreLexicallyScoped) {
  const Circuit c = parse_netlist(R"(
.subckt outer a b
.subckt inner x y
R1 x y 1k
.ends
X1 a m inner
X2 m b inner
.ends
Xtop in out outer
)");
  EXPECT_EQ(c.element_count(), 2u);
  EXPECT_NE(c.find_element("Xtop.X1.R1"), nullptr);
  EXPECT_NE(c.find_element("Xtop.X2.R1"), nullptr);
  // `inner` is not visible at top level.
  EXPECT_THROW(parse_netlist(R"(
.subckt outer a b
.subckt inner x y
R1 x y 1k
.ends
X1 a b inner
.ends
X9 p q inner
)"),
               ParseError);
}

TEST(Parser, InnerDefinitionShadowsOuter) {
  const Circuit c = parse_netlist(R"(
.subckt leaf a
R1 a 0 1k
.ends
.subckt wrap b
.subckt leaf a
R1 a 0 9k
.ends
X1 b leaf
.ends
Xw n1 wrap
Xl n2 leaf
)");
  EXPECT_DOUBLE_EQ(c.find_element("Xw.X1.R1")->value, 9e3);  // inner definition
  EXPECT_DOUBLE_EQ(c.find_element("Xl.R1")->value, 1e3);     // outer definition
}

TEST(Parser, SelfRecursionDiagnosedCleanly) {
  try {
    parse_netlist(".subckt loop a\nX1 a loop\n.ends\nXtop in loop\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);  // the X card that closes the cycle
    EXPECT_NE(std::string(e.what()).find("recursive subcircuit instantiation"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("loop -> loop"), std::string::npos);
  }
}

TEST(Parser, MutualRecursionDiagnosedCleanly) {
  try {
    parse_netlist(R"(
.subckt a p
X1 p b
.ends
.subckt b p
X1 p a
.ends
Xtop in a
)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("a -> b -> a"), std::string::npos);
  }
}

TEST(Parser, EndInsideSubcktRejected) {
  EXPECT_THROW(parse_netlist(".subckt s a\nR1 a 0 1\n.end\n"), ParseError);
}

TEST(Parser, StrayEndsRejected) {
  EXPECT_THROW(parse_netlist("R1 a 0 1k\n.ends\n"), ParseError);
}

// --- NetlistTemplate: re-elaboration with overrides -------------------------

TEST(NetlistTemplate, ParameterNamesAndOverrides) {
  const NetlistTemplate tpl = parse_netlist_template(R"(
.param r=1k c=10p
R1 a 0 {r}
C1 a 0 {c}
)");
  ASSERT_TRUE(tpl.valid());
  ASSERT_EQ(tpl.parameter_names().size(), 2u);
  EXPECT_EQ(tpl.parameter_names()[0], "r");
  EXPECT_EQ(tpl.parameter_names()[1], "c");
  EXPECT_TRUE(tpl.has_parameter("R"));  // case-insensitive
  EXPECT_FALSE(tpl.has_parameter("x"));

  const Circuit nominal = tpl.elaborate();
  EXPECT_DOUBLE_EQ(nominal.find_element("R1")->value, 1e3);
  const Circuit swept = tpl.elaborate({{"r", 4.7e3}});
  EXPECT_DOUBLE_EQ(swept.find_element("R1")->value, 4.7e3);
  EXPECT_DOUBLE_EQ(swept.find_element("C1")->value, 10e-12);  // untouched
}

TEST(NetlistTemplate, OverridesPropagateThroughDerivedParameters) {
  const NetlistTemplate tpl = parse_netlist_template(R"(
.param r=1k
.param r2={2*r}
R1 a 0 {r2}
)");
  EXPECT_DOUBLE_EQ(tpl.elaborate().find_element("R1")->value, 2e3);
  EXPECT_DOUBLE_EQ(tpl.elaborate({{"r", 5e3}}).find_element("R1")->value, 10e3);
}

TEST(NetlistTemplate, UnknownOverrideRejected) {
  const NetlistTemplate tpl = parse_netlist_template(".param r=1\nR1 a 0 {r}\n");
  EXPECT_THROW((void)tpl.elaborate({{"nope", 1.0}}), std::invalid_argument);
}

TEST(NetlistTemplate, EmptyTemplateRejected) {
  const NetlistTemplate tpl;
  EXPECT_FALSE(tpl.valid());
  EXPECT_THROW((void)tpl.elaborate(), std::invalid_argument);
}

TEST(NetlistTemplate, ElaborationIsRepeatable) {
  const NetlistTemplate tpl = parse_netlist_template(R"(
.param scale=1
.subckt cell a b r=1k
R1 a b {r * scale}
.ends
X1 in mid cell
X2 mid out cell r=2k
)");
  const Circuit a = tpl.elaborate();
  const Circuit b = tpl.elaborate();
  ASSERT_EQ(a.element_count(), b.element_count());
  for (std::size_t i = 0; i < a.element_count(); ++i) {
    EXPECT_EQ(a.elements()[i].name, b.elements()[i].name);
    EXPECT_EQ(a.elements()[i].value, b.elements()[i].value);
  }
}

}  // namespace
}  // namespace symref::netlist
