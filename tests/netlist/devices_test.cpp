// Hybrid-pi / MOS small-signal expansion.
#include "netlist/devices.h"

#include <gtest/gtest.h>

namespace symref::netlist {
namespace {

TEST(Devices, FromBiasTextbookValues) {
  // Ic = 1 mA, beta = 100, Va = 100 V, tau_f = 0.5 ns, cje = 1 pF.
  const BjtParams p = BjtParams::from_bias(1e-3, 100.0, 100.0, 0.5e-9, 1e-12, 0.5e-12);
  EXPECT_NEAR(p.gm, 1e-3 / 0.02585, 1e-6);
  EXPECT_NEAR(p.beta / p.gm, 100.0 * 0.02585 / 1e-3, 1e-6);  // r_pi = beta/gm = 2585 ohm
  EXPECT_NEAR(p.ro, 100.0 / 1e-3, 1e-6);
  EXPECT_NEAR(p.cpi, p.gm * 0.5e-9 + 1e-12, 1e-18);
  EXPECT_DOUBLE_EQ(p.cmu, 0.5e-12);
}

TEST(Devices, BjtFullExpansion) {
  Circuit c;
  BjtParams p;
  p.gm = 4e-3;
  p.beta = 200.0;
  p.ro = 50e3;
  p.rb = 100.0;
  p.cpi = 20e-12;
  p.cmu = 2e-12;
  p.ccs = 1e-12;
  expand_bjt(c, "q1", "coll", "base", "emit", p);

  ASSERT_NE(c.find_element("q1.rb"), nullptr);
  ASSERT_NE(c.find_element("q1.rpi"), nullptr);
  ASSERT_NE(c.find_element("q1.cpi"), nullptr);
  ASSERT_NE(c.find_element("q1.cmu"), nullptr);
  ASSERT_NE(c.find_element("q1.gm"), nullptr);
  ASSERT_NE(c.find_element("q1.ro"), nullptr);
  ASSERT_NE(c.find_element("q1.ccs"), nullptr);

  // rb isolates the intrinsic base node.
  const int bi = *c.find_node("q1.bi");
  EXPECT_EQ(c.find_element("q1.rpi")->node_pos, bi);
  EXPECT_EQ(c.find_element("q1.cmu")->node_pos, bi);
  EXPECT_EQ(c.find_element("q1.cmu")->node_neg, *c.find_node("coll"));
  // gm: collector-emitter output, intrinsic-base control.
  const Element* gm = c.find_element("q1.gm");
  EXPECT_EQ(gm->node_pos, *c.find_node("coll"));
  EXPECT_EQ(gm->node_neg, *c.find_node("emit"));
  EXPECT_EQ(gm->ctrl_pos, bi);
  // ccs goes to ground.
  EXPECT_EQ(c.find_element("q1.ccs")->node_neg, 0);
}

TEST(Devices, BjtWithoutRbUsesExternalBase) {
  Circuit c;
  BjtParams p;
  p.gm = 1e-3;
  p.beta = 100.0;
  p.cpi = 1e-12;
  expand_bjt(c, "q1", "c", "b", "e", p);
  EXPECT_EQ(c.find_element("q1.rb"), nullptr);
  EXPECT_FALSE(c.find_node("q1.bi").has_value());
  EXPECT_EQ(c.find_element("q1.cpi")->node_pos, *c.find_node("b"));
}

TEST(Devices, BjtZeroParamsOmitted) {
  Circuit c;
  BjtParams p;
  p.gm = 1e-3;  // only gm set (beta=0 -> no rpi)
  expand_bjt(c, "q1", "c", "b", "e", p);
  EXPECT_EQ(c.element_count(), 1u);
  EXPECT_NE(c.find_element("q1.gm"), nullptr);
}

TEST(Devices, MosExpansion) {
  Circuit c;
  MosParams p;
  p.gm = 2e-3;
  p.gds = 50e-6;
  p.cgs = 50e-15;
  p.cgd = 10e-15;
  p.cdb = 20e-15;
  expand_mos(c, "m1", "d", "g", "s", p);
  EXPECT_EQ(c.element_count(), 5u);
  const Element* gm = c.find_element("m1.gm");
  EXPECT_EQ(gm->node_pos, *c.find_node("d"));
  EXPECT_EQ(gm->ctrl_pos, *c.find_node("g"));
  EXPECT_EQ(gm->ctrl_neg, *c.find_node("s"));
  EXPECT_EQ(c.find_element("m1.cdb")->node_neg, 0);
}

TEST(Devices, DiodeConnectedBjtIsLegal) {
  // Base tied to collector (mirror input): the cmu capacitor degenerates to
  // a self-loop, which must be accepted and stamp to nothing.
  Circuit c;
  BjtParams p;
  p.gm = 1e-3;
  p.beta = 100.0;
  p.cpi = 1e-12;
  p.cmu = 0.5e-12;
  expand_bjt(c, "q8", "n1", "n1", "0", p);
  EXPECT_NE(c.find_element("q8.cmu"), nullptr);
  EXPECT_EQ(c.find_element("q8.cmu")->node_pos, c.find_element("q8.cmu")->node_neg);
}

}  // namespace
}  // namespace symref::netlist
