// Circuit graph: nodes, elements, editing operations, statistics.
#include "netlist/circuit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace symref::netlist {
namespace {

TEST(Circuit, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), 0);
  EXPECT_EQ(c.node("gnd"), 0);
  EXPECT_EQ(c.node("GND"), 0);
  EXPECT_EQ(c.node_count(), 1);
}

TEST(Circuit, NodeCreationIsIdempotent) {
  Circuit c;
  const int a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.node_count(), 2);
  EXPECT_EQ(c.unknown_count(), 1);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_FALSE(c.find_node("missing").has_value());
}

TEST(Circuit, AddElementsAndLookup) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_capacitor("c1", "a", "b", 1e-12);
  c.add_vccs("g1", "b", "0", "a", "0", 1e-3);
  EXPECT_EQ(c.element_count(), 3u);
  ASSERT_NE(c.find_element("c1"), nullptr);
  EXPECT_EQ(c.find_element("c1")->kind, ElementKind::Capacitor);
  EXPECT_EQ(c.find_element("nope"), nullptr);
}

TEST(Circuit, DuplicateNameRejected) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_THROW(c.add_capacitor("r1", "a", "0", 1e-12), std::invalid_argument);
}

TEST(Circuit, ZeroValuedPassivesRejected) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("r1", "a", "0", 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor("c1", "a", "0", 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_inductor("l1", "a", "0", 0.0), std::invalid_argument);
}

TEST(Circuit, NonFiniteValueRejected) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("r1", "a", "0", std::nan("")), std::invalid_argument);
}

TEST(Circuit, RemoveElement) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  EXPECT_TRUE(c.remove_element("r1"));
  EXPECT_FALSE(c.remove_element("r1"));
  EXPECT_EQ(c.element_count(), 0u);
}

TEST(Circuit, ShortElementMergesNodes) {
  Circuit c;
  c.add_resistor("r1", "a", "b", 1e3);
  c.add_resistor("r2", "b", "c", 2e3);
  c.add_capacitor("c1", "a", "0", 1e-12);
  ASSERT_TRUE(c.short_element("r1"));
  // r1 gone; all references to the higher-index node now point at the lower.
  EXPECT_EQ(c.element_count(), 2u);
  const Element* r2 = c.find_element("r2");
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->node_pos, *c.find_node("a"));
  // Name lookup of the merged node resolves to the survivor.
  EXPECT_EQ(*c.find_node("b"), *c.find_node("a"));
}

TEST(Circuit, ShortToGroundKeepsGround) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);
  c.add_capacitor("c1", "a", "b", 1e-12);
  ASSERT_TRUE(c.short_element("r1"));
  EXPECT_EQ(*c.find_node("a"), 0);
  const Element* c1 = c.find_element("c1");
  EXPECT_EQ(c1->node_pos, 0);
}

TEST(Circuit, ShortPreservesControlReferences) {
  Circuit c;
  c.add_vccs("g1", "out", "0", "x", "y", 1e-3);
  c.add_resistor("rxy", "x", "y", 10.0);
  ASSERT_TRUE(c.short_element("rxy"));
  const Element* g1 = c.find_element("g1");
  EXPECT_EQ(g1->ctrl_pos, g1->ctrl_neg);  // control pair collapsed together
}

TEST(Circuit, ConductanceStatistics) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1e3);        // 1e-3 S
  c.add_conductance("g1", "a", "0", 2e-3);    // 2e-3 S
  c.add_vccs("gm1", "b", "0", "a", "0", -5e-3);  // |gm| = 5e-3
  c.add_capacitor("c1", "b", "0", 1e-12);
  const auto conds = c.conductance_values();
  ASSERT_EQ(conds.size(), 3u);
  EXPECT_DOUBLE_EQ(conds[0], 1e-3);
  EXPECT_DOUBLE_EQ(conds[1], 2e-3);
  EXPECT_DOUBLE_EQ(conds[2], 5e-3);
  const auto caps = c.capacitor_values();
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_DOUBLE_EQ(caps[0], 1e-12);
}

TEST(Circuit, CountByKind) {
  Circuit c;
  c.add_resistor("r1", "a", "0", 1.0);
  c.add_resistor("r2", "b", "0", 2.0);
  c.add_capacitor("c1", "a", "b", 1e-12);
  EXPECT_EQ(c.count(ElementKind::Resistor), 2u);
  EXPECT_EQ(c.count(ElementKind::Capacitor), 1u);
  EXPECT_EQ(c.count(ElementKind::Inductor), 0u);
}

TEST(Circuit, SummaryMentionsCounts) {
  Circuit c;
  c.title = "test";
  c.add_resistor("r1", "a", "0", 1.0);
  const std::string summary = c.summary();
  EXPECT_NE(summary.find("test"), std::string::npos);
  EXPECT_NE(summary.find("resistor"), std::string::npos);
}

TEST(Circuit, OpampTerminals) {
  Circuit c;
  c.add_opamp("a1", "out", "inp", "inn");
  const Element* op = c.find_element("a1");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->kind, ElementKind::IdealOpAmp);
  EXPECT_TRUE(op->needs_branch_current());
  EXPECT_EQ(op->node_neg, 0);
}

}  // namespace
}  // namespace symref::netlist
