// Dense and sparse LU: solve, determinant, pivoting, plan reuse.
#include "sparse/lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "sparse/dense.h"
#include "support/random.h"

namespace symref::sparse {
namespace {

using Complex = std::complex<double>;

TripletMatrix random_matrix(support::Rng& rng, int n, double density) {
  TripletMatrix m(n);
  // Guarantee structural nonsingularity via a strong diagonal.
  for (int i = 0; i < n; ++i) {
    m.add(i, i, {rng.uniform(1.0, 2.0) * rng.sign(), rng.uniform(-0.5, 0.5)});
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      if (rng.next_double() < density) {
        m.add(r, c, {rng.uniform(-1, 1), rng.uniform(-1, 1)});
      }
    }
  }
  return m;
}

std::vector<Complex> random_vector(support::Rng& rng, int n) {
  std::vector<Complex> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

double residual_norm(const CompressedMatrix& a, const std::vector<Complex>& x,
                     const std::vector<Complex>& b) {
  std::vector<Complex> ax;
  a.multiply(x, ax);
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) worst = std::max(worst, std::abs(ax[i] - b[i]));
  return worst;
}

TEST(PermutationSign, CyclesAndIdentity) {
  EXPECT_EQ(permutation_sign({0, 1, 2}), 1);
  EXPECT_EQ(permutation_sign({1, 0, 2}), -1);
  EXPECT_EQ(permutation_sign({1, 2, 0}), 1);   // 3-cycle: even
  EXPECT_EQ(permutation_sign({3, 2, 1, 0}), 1); // two swaps
  EXPECT_EQ(permutation_sign({}), 1);
}

TEST(DenseLu, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  DenseLu lu;
  ASSERT_TRUE(lu.factor({Complex(2), Complex(1), Complex(1), Complex(3)}, 2));
  std::vector<Complex> b{{5.0, 0.0}, {10.0, 0.0}};
  lu.solve(b);
  EXPECT_LT(std::abs(b[0] - Complex(1.0, 0.0)), 1e-14);
  EXPECT_LT(std::abs(b[1] - Complex(3.0, 0.0)), 1e-14);
  EXPECT_NEAR(lu.determinant().real().to_double(), 5.0, 1e-12);
}

TEST(DenseLu, DeterminantWithPivotingSign) {
  // [0 1; 1 0]: det = -1, needs a row swap.
  DenseLu lu;
  ASSERT_TRUE(lu.factor({Complex(0), Complex(1), Complex(1), Complex(0)}, 2));
  EXPECT_NEAR(lu.determinant().real().to_double(), -1.0, 1e-15);
}

TEST(DenseLu, SingularDetected) {
  DenseLu lu;
  EXPECT_FALSE(lu.factor({Complex(1), Complex(2), Complex(2), Complex(4)}, 2));
  EXPECT_FALSE(lu.ok());
}

TEST(SparseLu, MatchesDenseOnRandomMatrices) {
  support::Rng rng(1234);
  for (const int n : {1, 2, 3, 5, 8, 13, 21, 34}) {
    const TripletMatrix m = random_matrix(rng, n, 0.3);
    SparseLu sparse;
    DenseLu dense;
    ASSERT_TRUE(sparse.factor(m)) << n;
    ASSERT_TRUE(dense.factor(m)) << n;

    const auto b = random_vector(rng, n);
    std::vector<Complex> xs = b;
    std::vector<Complex> xd = b;
    sparse.solve(xs);
    dense.solve(xd);
    for (int i = 0; i < n; ++i) {
      EXPECT_LT(std::abs(xs[static_cast<std::size_t>(i)] - xd[static_cast<std::size_t>(i)]),
                1e-9)
          << "n " << n << " i " << i;
    }

    const auto det_s = sparse.determinant();
    const auto det_d = dense.determinant();
    EXPECT_LT(std::abs(det_s.to_complex() - det_d.to_complex()),
              1e-9 * std::max(1.0, std::abs(det_d.to_complex())))
        << n;
  }
}

TEST(SparseLu, ResidualSmall) {
  support::Rng rng(99);
  const TripletMatrix m = random_matrix(rng, 40, 0.15);
  const CompressedMatrix c = m.compress();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  const auto b = random_vector(rng, 40);
  std::vector<Complex> x = b;
  lu.solve(x);
  EXPECT_LT(residual_norm(c, x, b), 1e-10);
}

TEST(SparseLu, DeterminantOfDiagonal) {
  TripletMatrix m(4);
  const Complex d[4] = {{2, 0}, {0, 3}, {-1, 0}, {0, -2}};
  for (int i = 0; i < 4; ++i) m.add(i, i, d[i]);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  const Complex expected = d[0] * d[1] * d[2] * d[3];
  EXPECT_LT(std::abs(lu.determinant().to_complex() - expected), 1e-12);
}

TEST(SparseLu, DeterminantBeyondDoubleRange) {
  // 100 diagonal entries of 1e-8: det = 1e-800, unrepresentable in double
  // but exact in the scaled domain.
  const int n = 100;
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) m.add(i, i, {1e-8, 0.0});
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  EXPECT_NEAR(lu.determinant().abs().log10_abs(), -800.0, 1e-6);
}

TEST(SparseLu, SingularMatrixRejected) {
  TripletMatrix m(3);
  m.add(0, 0, {1.0, 0.0});
  m.add(1, 1, {1.0, 0.0});
  // row 2 empty -> structurally singular
  SparseLu lu;
  EXPECT_FALSE(lu.factor(m));
  EXPECT_FALSE(lu.ok());
}

TEST(SparseLu, NumericallySingularRejected) {
  TripletMatrix m(2);
  m.add(0, 0, {1.0, 0.0});
  m.add(0, 1, {2.0, 0.0});
  m.add(1, 0, {2.0, 0.0});
  m.add(1, 1, {4.0, 0.0});
  SparseLu lu;
  EXPECT_FALSE(lu.factor(m));
}

TEST(SparseLu, PermutedIdentityTracksSign) {
  // Anti-diagonal identity of size 4: det = +1 (two transpositions).
  TripletMatrix m(4);
  for (int i = 0; i < 4; ++i) m.add(i, 3 - i, {1.0, 0.0});
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  EXPECT_NEAR(lu.determinant().real().to_double(), 1.0, 1e-15);

  TripletMatrix m3(3);
  for (int i = 0; i < 3; ++i) m3.add(i, 2 - i, {1.0, 0.0});
  SparseLu lu3;
  ASSERT_TRUE(lu3.factor(m3));
  EXPECT_NEAR(lu3.determinant().real().to_double(), -1.0, 1e-15);
}

TEST(SparseLu, TridiagonalFillInStaysLow) {
  const int n = 50;
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, {4.0, 0.0});
    if (i > 0) {
      m.add(i, i - 1, {-1.0, 0.0});
      m.add(i - 1, i, {-1.0, 0.0});
    }
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  // Markowitz on a tridiagonal matrix should produce (near-)zero fill.
  EXPECT_LE(lu.fill_in(), 5u);
}


TEST(SparseLu, RefactorMatchesFullFactor) {
  support::Rng rng(555);
  const int n = 30;
  const TripletMatrix base = random_matrix(rng, n, 0.2);
  const CompressedMatrix pattern = base.compress();

  SparseLu lu;
  ASSERT_TRUE(lu.factor(pattern));
  const Complex det_first = lu.determinant().to_complex();

  // Same pattern, perturbed values (same positions!): refactor must succeed
  // and match a from-scratch factorization.
  TripletMatrix perturbed(n);
  for (const Triplet& t : base.triplets()) {
    perturbed.add(t.row, t.col, t.value * Complex(1.1, -0.05));
  }
  const CompressedMatrix perturbed_c = perturbed.compress();
  ASSERT_EQ(perturbed_c.nonzeros(), pattern.nonzeros());
  ASSERT_TRUE(lu.refactor(perturbed_c));

  SparseLu fresh;
  ASSERT_TRUE(fresh.factor(perturbed_c));
  EXPECT_LT(std::abs(lu.determinant().to_complex() - fresh.determinant().to_complex()),
            1e-9 * std::abs(fresh.determinant().to_complex()));
  // And the solve agrees.
  const auto b = random_vector(rng, n);
  std::vector<Complex> x1 = b;
  std::vector<Complex> x2 = b;
  lu.solve(x1);
  fresh.solve(x2);
  for (int i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(x1[static_cast<std::size_t>(i)] - x2[static_cast<std::size_t>(i)]),
              1e-8);
  }
  // Determinant of the first matrix is untouched conceptually; sanity only.
  (void)det_first;
}

TEST(SparseLu, RefactorRejectsPatternChange) {
  support::Rng rng(556);
  const TripletMatrix a = random_matrix(rng, 10, 0.3);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  const TripletMatrix b = random_matrix(rng, 10, 0.5);  // different pattern
  if (b.compress().nonzeros() != a.compress().nonzeros()) {
    EXPECT_FALSE(lu.refactor(b.compress()));
  }
  const TripletMatrix c = random_matrix(rng, 12, 0.3);  // different dim
  EXPECT_FALSE(lu.refactor(c.compress()));
}

TEST(SparseLu, RefactorWithoutPriorFactorFails) {
  support::Rng rng(557);
  const TripletMatrix m = random_matrix(rng, 8, 0.3);
  SparseLu lu;
  EXPECT_FALSE(lu.refactor(m.compress()));
}

TEST(SparseLu, RequireRefactorThrowsTypedErrorOnRefusal) {
  support::Rng rng(558);
  const TripletMatrix a = random_matrix(rng, 10, 0.3);
  SparseLu lu;
  // No plan yet: strict replay must fail loudly.
  EXPECT_THROW(lu.require_refactor(a.compress()), RefusedReplayError);

  ASSERT_TRUE(lu.factor(a.compress()));
  // Same pattern replays fine.
  EXPECT_NO_THROW(lu.require_refactor(a.compress()));
  // Different dimension: the pattern check refuses, strictly.
  const TripletMatrix b = random_matrix(rng, 12, 0.3);
  EXPECT_THROW(lu.require_refactor(b.compress()), RefusedReplayError);
  // The plan survives the refusal: the original pattern still replays.
  EXPECT_NO_THROW(lu.require_refactor(a.compress()));
}

TEST(SparseLu, RefactorDetectsDegradedPivot) {
  // Diagonal matrix; zero out one diagonal value while keeping the pattern
  // impossible — instead make it numerically tiny: refactor must refuse.
  TripletMatrix m(3);
  m.add(0, 0, {1.0, 0.0});
  m.add(1, 1, {1.0, 0.0});
  m.add(2, 2, {1.0, 0.0});
  m.add(0, 1, {0.5, 0.0});
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));

  TripletMatrix degraded(3);
  degraded.add(0, 0, {1.0, 0.0});
  degraded.add(1, 1, {1e-30, 0.0});  // pivot collapses
  degraded.add(2, 2, {1.0, 0.0});
  degraded.add(0, 1, {1e20, 0.0});   // row max explodes
  EXPECT_FALSE(lu.refactor(degraded.compress()));
  // Full factor still handles it (picks a better pivot or reports singular
  // consistently).
  SparseLu fresh;
  EXPECT_TRUE(fresh.factor(degraded));
}

TEST(SparseLu, RefactorOnSameValuesIsBitIdentical) {
  // The numeric replay executes the exact operation sequence of the full
  // factorization, so re-factoring the SAME values must reproduce every
  // result bit-for-bit (this is what makes cached sweeps regression-free).
  support::Rng rng(321);
  const TripletMatrix m = random_matrix(rng, 25, 0.25);
  const CompressedMatrix c = m.compress();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(c));
  const Complex det_factor = lu.determinant().to_complex();
  const auto b = random_vector(rng, 25);
  std::vector<Complex> x_factor = b;
  lu.solve(x_factor);

  ASSERT_TRUE(lu.refactor(c));
  EXPECT_EQ(lu.determinant().to_complex(), det_factor);
  std::vector<Complex> x_refactor = b;
  lu.solve(x_refactor);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(x_refactor[static_cast<std::size_t>(i)], x_factor[static_cast<std::size_t>(i)]);
  }
}

// Plan reuse on the paper's actual matrices: evaluating the same circuit at
// a different sample point refactors against the cached plan and must agree
// with a from-scratch factorization to working precision. The engine always
// works on scaled matrices (paper §3.2), so evaluate at its first-scale
// heuristic (f = 1/mean(C), g = 1/mean(G)) where entries are balanced.
void expect_plan_reuse_agreement(const netlist::Circuit& circuit, const char* label) {
  const netlist::Circuit canonical = symref::netlist::canonicalize(circuit);
  const symref::mna::NodalSystem system(canonical);
  const auto caps = canonical.capacitor_values();
  const auto conds = canonical.conductance_values();
  auto mean = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return v.empty() ? 1.0 : sum / static_cast<double>(v.size());
  };
  const double f = 1.0 / mean(caps);
  const double g = 1.0 / mean(conds);
  const Complex s1(0.30901699437494745, 0.9510565162951535);
  const Complex s2(-0.80901699437494745, 0.5877852522924731);

  SparseLu lu;
  ASSERT_TRUE(lu.factor(system.matrix(s1, f, g))) << label;
  const CompressedMatrix a2 = system.matrix(s2, f, g).compress();
  ASSERT_TRUE(lu.refactor(a2)) << label;

  SparseLu fresh;
  ASSERT_TRUE(fresh.factor(a2)) << label;
  const Complex det_reused = lu.determinant().to_complex();
  const Complex det_fresh = fresh.determinant().to_complex();
  EXPECT_LT(std::abs(det_reused - det_fresh), 1e-12 * std::abs(det_fresh)) << label;

  std::vector<Complex> rhs(static_cast<std::size_t>(system.dim()));
  rhs[0] = 1.0;
  std::vector<Complex> x1 = rhs;
  std::vector<Complex> x2 = rhs;
  lu.solve(x1);
  fresh.solve(x2);
  double worst = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < x1.size(); ++i) {
    worst = std::max(worst, std::abs(x1[i] - x2[i]));
    scale = std::max(scale, std::abs(x2[i]));
  }
  EXPECT_LT(worst, 1e-12 * scale) << label;
}

TEST(SparseLu, PlanReuseAgreesOnLadderMatrix) {
  expect_plan_reuse_agreement(symref::circuits::rc_ladder(32), "rc_ladder(32)");
}

TEST(SparseLu, PlanReuseAgreesOnUa741Matrix) {
  expect_plan_reuse_agreement(symref::circuits::ua741(), "ua741");
}

TEST(SparseLu, DegradedPivotFallsBackToFullFactor) {
  // The caller contract: when refactor() refuses (pivot degraded), a fresh
  // factor() must recover, and the NEW plan must support further refactors.
  TripletMatrix base(3);
  base.add(0, 0, {1.0, 0.0});
  base.add(1, 1, {1.0, 0.0});
  base.add(2, 2, {1.0, 0.0});
  base.add(0, 1, {0.5, 0.0});
  SparseLu lu;
  ASSERT_TRUE(lu.factor(base));

  TripletMatrix degraded(3);
  degraded.add(0, 0, {1.0, 0.0});
  degraded.add(1, 1, {1e-30, 0.0});  // pivot collapses
  degraded.add(2, 2, {1.0, 0.0});
  degraded.add(0, 1, {1e20, 0.0});   // row max explodes
  const CompressedMatrix degraded_c = degraded.compress();
  EXPECT_FALSE(lu.refactor(degraded_c));
  EXPECT_FALSE(lu.ok());
  ASSERT_TRUE(lu.factor(degraded_c));
  EXPECT_TRUE(lu.ok());
  EXPECT_TRUE(lu.refactor(degraded_c));
  EXPECT_FALSE(lu.determinant().is_zero());
}

TEST(SparseLu, MinAbsPivotMeaningful) {
  // dim 0: the empty pivot product has no smallest factor -> +infinity.
  TripletMatrix empty(0);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(empty));
  EXPECT_TRUE(std::isinf(lu.min_abs_pivot()));

  TripletMatrix m(2);
  m.add(0, 0, {3.0, 0.0});
  m.add(1, 1, {0.25, 0.0});
  SparseLu lu2;
  ASSERT_TRUE(lu2.factor(m));
  EXPECT_NEAR(lu2.min_abs_pivot(), 0.25, 1e-15);
}

TEST(SparseLu, ClonesShareThePlanAndReplayIndependently) {
  // Copying a SparseLu clones only the numeric payload; the symbolic plan is
  // shared read-only. A clone's refactor must (a) match the original's
  // refactor bit for bit and (b) leave the original's numeric state — and
  // hence its determinant and solves — untouched. This is the per-thread
  // EvalContext contract of the batch evaluators.
  support::Rng rng(2026);
  const TripletMatrix m = random_matrix(rng, 20, 0.25);
  const CompressedMatrix c = m.compress();
  SparseLu original;
  ASSERT_TRUE(original.factor(c));
  ASSERT_TRUE(original.has_plan());
  const Complex det_original = original.determinant().to_complex();

  // Perturbed values on the same pattern.
  CompressedMatrix perturbed = c;
  for (auto& value : perturbed.values) value *= Complex(1.01, 0.002);

  SparseLu clone = original;  // shares the plan, owns its numeric arrays
  ASSERT_TRUE(clone.has_plan());
  ASSERT_TRUE(clone.refactor(perturbed));
  const Complex det_clone = clone.determinant().to_complex();

  // The original never saw the perturbed values.
  EXPECT_EQ(original.determinant().to_complex(), det_original);

  // A second clone replaying the same values agrees bit for bit, and the
  // original refactoring the perturbed values agrees with both.
  SparseLu other = original;
  ASSERT_TRUE(other.refactor(perturbed));
  EXPECT_EQ(other.determinant().to_complex(), det_clone);
  ASSERT_TRUE(original.refactor(perturbed));
  EXPECT_EQ(original.determinant().to_complex(), det_clone);
}

TEST(SparseLu, RefactorAfterRefusedRefactorNeedsNoFactor) {
  // A refused replay (degraded pivot) keeps the plan: a later refactor with
  // healthy values must succeed and depend only on (plan, values) — the
  // history independence that makes per-point evaluation order irrelevant.
  TripletMatrix m(3);
  m.add(0, 0, {1.0, 0.0});
  m.add(1, 1, {1.0, 0.0});
  m.add(2, 2, {1.0, 0.0});
  m.add(0, 1, {0.5, 0.0});
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  const Complex det_healthy = lu.determinant().to_complex();

  TripletMatrix degraded(3);
  degraded.add(0, 0, {1.0, 0.0});
  degraded.add(1, 1, {1e-30, 0.0});
  degraded.add(2, 2, {1.0, 0.0});
  degraded.add(0, 1, {1e20, 0.0});
  EXPECT_FALSE(lu.refactor(degraded.compress()));
  EXPECT_FALSE(lu.ok());
  EXPECT_TRUE(lu.has_plan());

  ASSERT_TRUE(lu.refactor(m.compress()));
  EXPECT_TRUE(lu.ok());
  EXPECT_EQ(lu.determinant().to_complex(), det_healthy);
}

// Parameterized sweep over sizes: solve + determinant sanity on circuit-like
// (diagonally dominant, sparse) matrices.
class SparseLuSweep : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuSweep, SolveAndDeterminantConsistent) {
  const int n = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(n) * 7919);
  const TripletMatrix m = random_matrix(rng, n, 4.0 / n);
  const CompressedMatrix c = m.compress();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  const auto b = random_vector(rng, n);
  std::vector<Complex> x = b;
  lu.solve(x);
  EXPECT_LT(residual_norm(c, x, b), 1e-9);
  EXPECT_FALSE(lu.determinant().is_zero());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace symref::sparse
