// Differential oracle suite for the batched supernodal replay kernel.
//
// The scalar SparseLu::refactor()/solve() path is the oracle; BatchedReplay
// (and every consumer selecting ReplayKernel::kBatched) must reproduce its
// results BIT FOR BIT — no tolerances anywhere in this file. Randomized
// matrices and circuits are generated deterministically from a seed alone
// (support::Rng is splitmix64-seeded xoshiro256**, bit-stable across
// platforms), so every failure here is replayable from the test name.
#include "sparse/batched.h"

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "circuits/ladder.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "sparse/lu.h"
#include "support/fault_injection.h"
#include "support/random.h"
#include "support/thread_pool.h"

namespace symref::sparse {
namespace {

using Complex = std::complex<double>;

/// Sparse circuit-like matrix (strong diagonal, ~4 off-diagonal entries per
/// row), deterministic in (rng state, n) alone.
TripletMatrix random_matrix(support::Rng& rng, int n, double density) {
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, {rng.uniform(1.0, 2.0) * rng.sign(), rng.uniform(-0.5, 0.5)});
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      if (rng.next_double() < density) {
        m.add(r, c, {rng.uniform(-1, 1), rng.uniform(-1, 1)});
      }
    }
  }
  return m;
}

std::vector<Complex> random_vector(support::Rng& rng, int n) {
  std::vector<Complex> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

/// Same pattern, independently perturbed values — one replay "lane".
CompressedMatrix perturb_values(support::Rng& rng, const CompressedMatrix& base) {
  CompressedMatrix out = base;
  for (auto& value : out.values) {
    value *= Complex(rng.uniform(0.9, 1.1), rng.uniform(-0.05, 0.05));
  }
  return out;
}

void expect_bitwise_equal(const numeric::ScaledComplex& a, const numeric::ScaledComplex& b) {
  EXPECT_EQ(a.mantissa(), b.mantissa());
  EXPECT_EQ(a.exponent2(), b.exponent2());
}

/// The core differential check: `width` perturbed value sets of one pattern,
/// replayed scalar (the oracle) and batched, must agree bit for bit on
/// acceptance, determinant, min-pivot, max-entry and every solve component.
void run_matrix_differential(std::uint64_t seed, int n, int width) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << " n=" << n << " width=" << width);
  support::Rng rng(seed);
  const TripletMatrix base = random_matrix(rng, n, 4.0 / n);
  const CompressedMatrix pattern = base.compress();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(pattern));
  const std::shared_ptr<const ReplayPlan> plan = lu.plan();
  ASSERT_NE(plan, nullptr);

  std::vector<CompressedMatrix> lanes;
  for (int l = 0; l < width; ++l) lanes.push_back(perturb_values(rng, pattern));
  const std::vector<Complex> b = random_vector(rng, n);

  // Scalar oracle, one lane at a time on a clone sharing the plan.
  struct Oracle {
    bool ok = false;
    numeric::ScaledComplex det;
    double min_pivot = 0.0;
    double max_entry = 0.0;
    std::vector<Complex> x;
  };
  std::vector<Oracle> oracle(static_cast<std::size_t>(width));
  for (int l = 0; l < width; ++l) {
    SparseLu clone = lu;
    Oracle& out = oracle[static_cast<std::size_t>(l)];
    out.ok = clone.refactor(lanes[static_cast<std::size_t>(l)]);
    if (!out.ok) continue;
    out.det = clone.determinant();
    out.min_pivot = clone.min_abs_pivot();
    out.max_entry = clone.max_abs_entry();
    out.x = b;
    clone.solve(out.x);
  }

  BatchedReplay replay;
  replay.bind(plan, width);
  ASSERT_TRUE(replay.pattern_matches(lanes.front()));
  ASSERT_EQ(replay.pattern_nonzeros(), pattern.values.size());
  for (std::size_t k = 0; k < pattern.values.size(); ++k) {
    for (int l = 0; l < width; ++l) {
      replay.values()[k * static_cast<std::size_t>(width) + static_cast<std::size_t>(l)] =
          lanes[static_cast<std::size_t>(l)].values[k];
    }
  }
  replay.replay(width);
  std::vector<Complex> rhs(static_cast<std::size_t>(n) * static_cast<std::size_t>(width));
  for (int r = 0; r < n; ++r) {
    for (int l = 0; l < width; ++l) {
      rhs[static_cast<std::size_t>(r) * static_cast<std::size_t>(width) +
          static_cast<std::size_t>(l)] = b[static_cast<std::size_t>(r)];
    }
  }
  replay.solve(rhs, width);

  for (int l = 0; l < width; ++l) {
    SCOPED_TRACE(::testing::Message() << "lane=" << l);
    const Oracle& expected = oracle[static_cast<std::size_t>(l)];
    ASSERT_EQ(replay.lane_ok(l), expected.ok);
    if (!expected.ok) continue;
    expect_bitwise_equal(replay.determinant(l), expected.det);
    EXPECT_EQ(replay.min_abs_pivot(l), expected.min_pivot);
    EXPECT_EQ(replay.max_abs_entry(l), expected.max_entry);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(rhs[static_cast<std::size_t>(r) * static_cast<std::size_t>(width) +
                    static_cast<std::size_t>(l)],
                expected.x[static_cast<std::size_t>(r)])
          << "r=" << r;
    }
  }
}

class ReplayDifferential : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReplayDifferential, BatchedMatchesScalarBitForBit) {
  const auto [n, width] = GetParam();
  // Two independent seeds per configuration; the seed derivation keeps every
  // (n, width) cell on its own reproducible stream.
  run_matrix_differential(0x5eedu + static_cast<std::uint64_t>(n) * 131u +
                              static_cast<std::uint64_t>(width),
                          n, width);
  run_matrix_differential(0xc0ffeeu + static_cast<std::uint64_t>(n) * 131u +
                              static_cast<std::uint64_t>(width),
                          n, width);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, ReplayDifferential,
    ::testing::Combine(::testing::Values(8, 16, 33, 64, 128, 512),
                       ::testing::Values(1, 3, 8, 33)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BatchedReplay, PartialGroupMatchesFullWidthLanes) {
  // active < width: only the filled lanes run; their bits must not depend on
  // the bound width or on how many lanes are active.
  support::Rng rng(777);
  const int n = 40;
  const TripletMatrix base = random_matrix(rng, n, 0.12);
  const CompressedMatrix pattern = base.compress();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(pattern));

  const CompressedMatrix lane0 = perturb_values(rng, pattern);
  const CompressedMatrix lane1 = perturb_values(rng, pattern);
  const std::vector<Complex> b = random_vector(rng, n);

  auto run = [&](int width, int active) {
    BatchedReplay replay;
    replay.bind(lu.plan(), width);
    const CompressedMatrix* mats[2] = {&lane0, &lane1};
    for (std::size_t k = 0; k < pattern.values.size(); ++k) {
      for (int l = 0; l < active; ++l) {
        replay.values()[k * static_cast<std::size_t>(width) + static_cast<std::size_t>(l)] =
            mats[l]->values[k];
      }
    }
    replay.replay(active);
    std::vector<Complex> rhs(static_cast<std::size_t>(n) * static_cast<std::size_t>(width));
    for (int r = 0; r < n; ++r) {
      for (int l = 0; l < active; ++l) {
        rhs[static_cast<std::size_t>(r) * static_cast<std::size_t>(width) +
            static_cast<std::size_t>(l)] = b[static_cast<std::size_t>(r)];
      }
    }
    replay.solve(rhs, active);
    std::vector<Complex> lane0_solution(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      lane0_solution[static_cast<std::size_t>(r)] =
          rhs[static_cast<std::size_t>(r) * static_cast<std::size_t>(width)];
    }
    EXPECT_TRUE(replay.lane_ok(0));
    return std::make_pair(replay.determinant(0), lane0_solution);
  };

  const auto [det_wide, x_wide] = run(8, 2);    // partial group, wide lanes
  const auto [det_tight, x_tight] = run(2, 2);  // exact-width group
  const auto [det_solo, x_solo] = run(1, 1);    // degenerate single lane
  expect_bitwise_equal(det_wide, det_tight);
  expect_bitwise_equal(det_wide, det_solo);
  EXPECT_EQ(x_wide, x_tight);
  EXPECT_EQ(x_wide, x_solo);
}

TEST(BatchedReplay, RefusedLaneMatchesScalarRefusalAndOthersSurvive) {
  // One lane's pivot collapses (the lu_test degradation pattern scaled up):
  // that lane must refuse exactly where the scalar replay refuses, while
  // every healthy lane's bits are unaffected by its garbage neighbor.
  support::Rng rng(4242);
  const int n = 24;
  const TripletMatrix base = random_matrix(rng, n, 0.15);
  const CompressedMatrix pattern = base.compress();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(pattern));

  CompressedMatrix healthy = perturb_values(rng, pattern);
  CompressedMatrix poisoned = healthy;
  // Collapse every value of one row-ish stretch towards zero while blowing
  // up another entry: the relaxed replay threshold must trip.
  for (std::size_t k = 0; k < poisoned.values.size(); ++k) {
    poisoned.values[k] *= (k % 7 == 0) ? Complex(1e30, 0.0) : Complex(1e-30, 0.0);
  }

  SparseLu scalar_healthy = lu;
  ASSERT_TRUE(scalar_healthy.refactor(healthy));
  SparseLu scalar_poisoned = lu;
  const bool poisoned_accepted = scalar_poisoned.refactor(poisoned);

  const int width = 3;
  BatchedReplay replay;
  replay.bind(lu.plan(), width);
  for (std::size_t k = 0; k < pattern.values.size(); ++k) {
    replay.values()[k * width + 0] = healthy.values[k];
    replay.values()[k * width + 1] = poisoned.values[k];
    replay.values()[k * width + 2] = healthy.values[k];
  }
  replay.replay(width);
  EXPECT_TRUE(replay.lane_ok(0));
  EXPECT_EQ(replay.lane_ok(1), poisoned_accepted);
  EXPECT_TRUE(replay.lane_ok(2));
  expect_bitwise_equal(replay.determinant(0), scalar_healthy.determinant());
  expect_bitwise_equal(replay.determinant(2), scalar_healthy.determinant());
}

// --- Evaluator-level differential: kernels, widths and thread counts --------

using mna::CofactorEvaluator;

void expect_samples_bitwise_equal(const std::vector<CofactorEvaluator::Sample>& a,
                                  const std::vector<CofactorEvaluator::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "point=" << i);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].degraded, b[i].degraded);
    if (!a[i].ok || !b[i].ok) continue;
    EXPECT_EQ(a[i].numerator.mantissa(), b[i].numerator.mantissa());
    EXPECT_EQ(a[i].numerator.exponent2(), b[i].numerator.exponent2());
    EXPECT_EQ(a[i].denominator.mantissa(), b[i].denominator.mantissa());
    EXPECT_EQ(a[i].denominator.exponent2(), b[i].denominator.exponent2());
    EXPECT_EQ(a[i].numerator_error, b[i].numerator_error);
    EXPECT_EQ(a[i].denominator_error, b[i].denominator_error);
  }
}

std::vector<Complex> probe_grid(int points) {
  // Unit-circle-ish scaled frequencies, the engine's working regime.
  std::vector<Complex> s;
  for (int k = 0; k < points; ++k) {
    const double t = 0.05 + 0.9 * static_cast<double>(k) / static_cast<double>(points);
    s.emplace_back(-0.1 * t, t);
  }
  return s;
}

TEST(EvaluatorDifferential, BatchMatchesScalarAcrossWidthsAndThreads) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    support::Rng rng(seed);
    circuits::RandomRcOptions options;
    options.nodes = 12;
    options.extra_resistors = 10;
    options.capacitors = 9;
    const netlist::Circuit circuit = circuits::random_rc(rng, options);
    const netlist::Circuit canonical = netlist::canonicalize(circuit);
    const mna::NodalSystem system(canonical);
    const mna::TransferSpec spec = mna::TransferSpec::voltage_gain("n1", "n12");
    const CofactorEvaluator evaluator(system, spec);

    const std::vector<Complex> points = probe_grid(37);
    const std::vector<CofactorEvaluator::Sample> oracle =
        evaluator.evaluate_batch(points, 1.0, 1.0);  // scalar, serial

    for (const int threads : {1, 2, 8}) {
      support::ThreadPool pool(threads);
      const std::vector<CofactorEvaluator::Sample> scalar_pooled =
          evaluator.evaluate_batch(points, 1.0, 1.0, &pool, ReplayKernel::kScalar);
      expect_samples_bitwise_equal(oracle, scalar_pooled);
      for (const int width : {1, 3, 8, 33}) {
        SCOPED_TRACE(::testing::Message() << "threads=" << threads << " width=" << width);
        const std::vector<CofactorEvaluator::Sample> batched =
            evaluator.evaluate_batch(points, 1.0, 1.0, &pool, ReplayKernel::kBatched, width);
        expect_samples_bitwise_equal(oracle, batched);
      }
    }
    EXPECT_GT(evaluator.batched_lane_count(), 0u);
  }
}

TEST(EvaluatorDifferential, PinnedBatchMatchesScalarWithEqualCounters) {
  // The parameter-sweep path: results AND the robustness counters
  // (fresh_factor_count / pivot_escalation_count) must be identical under
  // either kernel — the engine-stats half of the oracle contract.
  const netlist::Circuit circuit = circuits::rc_ladder(24);
  const netlist::Circuit canonical = netlist::canonicalize(circuit);
  const mna::NodalSystem system(canonical);
  const CofactorEvaluator base(system, circuits::rc_ladder_spec(24));
  const std::vector<Complex> points = probe_grid(41);
  (void)base.evaluate(points.front(), 1.0, 1.0);  // establish the pinned plan

  const CofactorEvaluator scalar_eval = base;
  const CofactorEvaluator batched_eval = base;
  const auto scalar_samples =
      scalar_eval.evaluate_pinned_batch(points, 1.0, 1.0, ReplayKernel::kScalar);
  const auto batched_samples =
      batched_eval.evaluate_pinned_batch(points, 1.0, 1.0, ReplayKernel::kBatched, 8);
  expect_samples_bitwise_equal(scalar_samples, batched_samples);
  EXPECT_EQ(scalar_eval.fresh_factor_count(), batched_eval.fresh_factor_count());
  EXPECT_EQ(scalar_eval.pivot_escalation_count(), batched_eval.pivot_escalation_count());
  EXPECT_EQ(scalar_eval.batched_lane_count(), 0u);
  EXPECT_EQ(batched_eval.batched_lane_count(), points.size());
  EXPECT_GT(batched_eval.supernode_count(), 0u);
}

/// Process-global fault injector: start and end disarmed.
class ReplayFaultParity : public ::testing::Test {
 protected:
  void SetUp() override { support::FaultInjector::instance().reset(); }
  void TearDown() override { support::FaultInjector::instance().reset(); }
};

TEST_F(ReplayFaultParity, InjectedPivotFaultsDrawIdenticallyUnderBothKernels) {
  // The "lu_pivot" site is consulted once per point under BOTH kernels (the
  // batched path draws once per active lane, in lane order). With a
  // probabilistic fault the two kernels therefore consume the same draw
  // stream, refuse the same points, fall back identically — results and
  // counters must match bit for bit.
  const netlist::Circuit circuit = circuits::rc_ladder(16);
  const netlist::Circuit canonical = netlist::canonicalize(circuit);
  const mna::NodalSystem system(canonical);
  const CofactorEvaluator base(system, circuits::rc_ladder_spec(16));
  const std::vector<Complex> points = probe_grid(29);
  (void)base.evaluate(points.front(), 1.0, 1.0);

  for (const char* config : {"lu_pivot:1", "lu_pivot:0.4:99"}) {
    SCOPED_TRACE(config);
    const CofactorEvaluator scalar_eval = base;
    const CofactorEvaluator batched_eval = base;

    ASSERT_TRUE(support::FaultInjector::instance().configure(config));
    const auto scalar_samples =
        scalar_eval.evaluate_pinned_batch(points, 1.0, 1.0, ReplayKernel::kScalar);
    support::FaultInjector::instance().reset();

    ASSERT_TRUE(support::FaultInjector::instance().configure(config));
    const auto batched_samples =
        batched_eval.evaluate_pinned_batch(points, 1.0, 1.0, ReplayKernel::kBatched, 8);
    support::FaultInjector::instance().reset();

    expect_samples_bitwise_equal(scalar_samples, batched_samples);
    EXPECT_EQ(scalar_eval.fresh_factor_count(), batched_eval.fresh_factor_count());
    EXPECT_EQ(scalar_eval.pivot_escalation_count(), batched_eval.pivot_escalation_count());
    EXPECT_GT(batched_eval.fresh_factor_count(), 0u);  // faults actually fired
  }
}

}  // namespace
}  // namespace symref::sparse
