// Triplet assembly and compressed storage.
#include "sparse/matrix.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace symref::sparse {
namespace {

using Complex = std::complex<double>;

TEST(TripletMatrix, AccumulatesDuplicates) {
  TripletMatrix m(3);
  m.add(0, 0, {1.0, 0.0});
  m.add(0, 0, {2.0, 1.0});
  m.add(1, 2, {-1.0, 0.0});
  const CompressedMatrix c = m.compress();
  EXPECT_EQ(c.nonzeros(), 2u);
  EXPECT_EQ(c.at(0, 0), Complex(3.0, 1.0));
  EXPECT_EQ(c.at(1, 2), Complex(-1.0, 0.0));
  EXPECT_EQ(c.at(2, 2), Complex(0.0, 0.0));
}

TEST(TripletMatrix, ExactCancellationDropsEntry) {
  TripletMatrix m(2);
  m.add(0, 1, {5.0, 0.0});
  m.add(0, 1, {-5.0, 0.0});
  const CompressedMatrix c = m.compress();
  EXPECT_EQ(c.nonzeros(), 0u);
}

TEST(TripletMatrix, ZeroValueIgnored) {
  TripletMatrix m(2);
  m.add(0, 0, {0.0, 0.0});
  EXPECT_EQ(m.entries(), 0u);
}

TEST(TripletMatrix, OutOfRangeThrows) {
  TripletMatrix m(2);
  EXPECT_THROW(m.add(2, 0, {1.0, 0.0}), std::out_of_range);
  EXPECT_THROW(m.add(0, -1, {1.0, 0.0}), std::out_of_range);
}

TEST(CompressedMatrix, RowsSortedByColumn) {
  TripletMatrix m(3);
  m.add(1, 2, {3.0, 0.0});
  m.add(1, 0, {1.0, 0.0});
  m.add(1, 1, {2.0, 0.0});
  const CompressedMatrix c = m.compress();
  ASSERT_EQ(c.row_start[1 + 1] - c.row_start[1], 3);
  EXPECT_EQ(c.cols[static_cast<std::size_t>(c.row_start[1])], 0);
  EXPECT_EQ(c.cols[static_cast<std::size_t>(c.row_start[1]) + 1], 1);
  EXPECT_EQ(c.cols[static_cast<std::size_t>(c.row_start[1]) + 2], 2);
}

TEST(CompressedMatrix, MultiplyMatchesDense) {
  TripletMatrix m(3);
  m.add(0, 0, {2.0, 0.0});
  m.add(0, 2, {0.0, 1.0});
  m.add(2, 1, {-1.0, 0.0});
  const CompressedMatrix c = m.compress();
  const std::vector<Complex> x{{1.0, 0.0}, {2.0, 0.0}, {0.0, 3.0}};
  std::vector<Complex> y;
  c.multiply(x, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], Complex(2.0, 0.0) + Complex(0.0, 1.0) * Complex(0.0, 3.0));
  EXPECT_EQ(y[1], Complex(0.0, 0.0));
  EXPECT_EQ(y[2], Complex(-2.0, 0.0));
}

TEST(PatternedMatrix, MergesDuplicatesIntoSortedPattern) {
  // Two stamps at (0,0) merge; rows come out column-sorted like compress().
  PatternedMatrix pattern(2, {{0, 0, 1.0, 0.0},
                              {0, 0, 2.0, 3.0},
                              {1, 1, 0.5, 0.0},
                              {1, 0, -0.5, 0.0},
                              {0, 1, 0.0, -3.0}});
  const CompressedMatrix& m = pattern.assemble(Complex(0.0, 2.0), 1.0, 1.0);
  EXPECT_EQ(m.dim, 2);
  EXPECT_EQ(m.nonzeros(), 4u);
  EXPECT_EQ(m.at(0, 0), Complex(3.0, 0.0) + Complex(0.0, 2.0) * 3.0);
  EXPECT_EQ(m.at(0, 1), Complex(0.0, 2.0) * -3.0);
  EXPECT_EQ(m.at(1, 0), Complex(-0.5, 0.0));
  EXPECT_EQ(m.at(1, 1), Complex(0.5, 0.0));
  const std::vector<int> cols_before = m.cols;

  // Re-assembly rewrites values only: the layout (and therefore any cached
  // factorization plan pointing at it) stays put, even where values become
  // exact zeros.
  const CompressedMatrix& again = pattern.assemble(Complex(0.0, 0.0), 1.0, 1.0);
  EXPECT_EQ(again.cols, cols_before);
  EXPECT_EQ(again.nonzeros(), 4u);
  EXPECT_EQ(again.at(0, 1), Complex(0.0, 0.0));  // structural zero is kept
  EXPECT_EQ(again.at(0, 0), Complex(3.0, 0.0));
}

TEST(PatternedMatrix, AppliesScaleFactors) {
  PatternedMatrix pattern(1, {{0, 0, 2.0, 5.0}});
  const double f = 1e9;
  const double g = 1e-2;
  const Complex s(0.25, -0.5);
  const CompressedMatrix& m = pattern.assemble(s, f, g);
  EXPECT_EQ(m.at(0, 0), g * 2.0 + s * (f * 5.0));
}

TEST(PatternedMatrix, RejectsNonFiniteStampsAtConstruction) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(PatternedMatrix(2, {{0, 0, nan, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PatternedMatrix(2, {{0, 0, 0.0, inf}}), std::invalid_argument);
  EXPECT_THROW(PatternedMatrix(2, {{0, 1, -inf, 0.0}}), std::invalid_argument);
  // Duplicate stamps whose merged sum is non-finite (inf + -inf) are caught
  // too — validation runs on the merged values.
  EXPECT_THROW(PatternedMatrix(2, {{0, 0, inf, 0.0}, {0, 0, -inf, 0.0}}),
               std::invalid_argument);
}

TEST(PatternedMatrix, RejectsNonFiniteStampsAtRebindWithoutMutating) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  PatternedMatrix pattern(2, {{0, 0, 2.0, 0.0}, {1, 1, 3.0, 1.0}});
  EXPECT_THROW(pattern.rebind(2, {{0, 0, nan, 0.0}, {1, 1, 4.0, 1.0}}),
               std::invalid_argument);
  // All-or-nothing: the matching finite stamp was not applied either.
  const CompressedMatrix& m = pattern.assemble(Complex(0.0, 0.0));
  EXPECT_EQ(m.at(0, 0), Complex(2.0, 0.0));
  EXPECT_EQ(m.at(1, 1), Complex(3.0, 0.0));
  // A clean rebind still works afterwards.
  EXPECT_TRUE(pattern.rebind(2, {{0, 0, 5.0, 0.0}, {1, 1, 6.0, 1.0}}));
  EXPECT_EQ(pattern.assemble(Complex(0.0, 0.0)).at(0, 0), Complex(5.0, 0.0));
}

}  // namespace
}  // namespace symref::sparse
