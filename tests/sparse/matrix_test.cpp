// Triplet assembly and compressed storage.
#include "sparse/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symref::sparse {
namespace {

using Complex = std::complex<double>;

TEST(TripletMatrix, AccumulatesDuplicates) {
  TripletMatrix m(3);
  m.add(0, 0, {1.0, 0.0});
  m.add(0, 0, {2.0, 1.0});
  m.add(1, 2, {-1.0, 0.0});
  const CompressedMatrix c = m.compress();
  EXPECT_EQ(c.nonzeros(), 2u);
  EXPECT_EQ(c.at(0, 0), Complex(3.0, 1.0));
  EXPECT_EQ(c.at(1, 2), Complex(-1.0, 0.0));
  EXPECT_EQ(c.at(2, 2), Complex(0.0, 0.0));
}

TEST(TripletMatrix, ExactCancellationDropsEntry) {
  TripletMatrix m(2);
  m.add(0, 1, {5.0, 0.0});
  m.add(0, 1, {-5.0, 0.0});
  const CompressedMatrix c = m.compress();
  EXPECT_EQ(c.nonzeros(), 0u);
}

TEST(TripletMatrix, ZeroValueIgnored) {
  TripletMatrix m(2);
  m.add(0, 0, {0.0, 0.0});
  EXPECT_EQ(m.entries(), 0u);
}

TEST(TripletMatrix, OutOfRangeThrows) {
  TripletMatrix m(2);
  EXPECT_THROW(m.add(2, 0, {1.0, 0.0}), std::out_of_range);
  EXPECT_THROW(m.add(0, -1, {1.0, 0.0}), std::out_of_range);
}

TEST(CompressedMatrix, RowsSortedByColumn) {
  TripletMatrix m(3);
  m.add(1, 2, {3.0, 0.0});
  m.add(1, 0, {1.0, 0.0});
  m.add(1, 1, {2.0, 0.0});
  const CompressedMatrix c = m.compress();
  ASSERT_EQ(c.row_start[1 + 1] - c.row_start[1], 3);
  EXPECT_EQ(c.cols[static_cast<std::size_t>(c.row_start[1])], 0);
  EXPECT_EQ(c.cols[static_cast<std::size_t>(c.row_start[1]) + 1], 1);
  EXPECT_EQ(c.cols[static_cast<std::size_t>(c.row_start[1]) + 2], 2);
}

TEST(CompressedMatrix, MultiplyMatchesDense) {
  TripletMatrix m(3);
  m.add(0, 0, {2.0, 0.0});
  m.add(0, 2, {0.0, 1.0});
  m.add(2, 1, {-1.0, 0.0});
  const CompressedMatrix c = m.compress();
  const std::vector<Complex> x{{1.0, 0.0}, {2.0, 0.0}, {0.0, 3.0}};
  std::vector<Complex> y;
  c.multiply(x, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], Complex(2.0, 0.0) + Complex(0.0, 1.0) * Complex(0.0, 3.0));
  EXPECT_EQ(y[1], Complex(0.0, 0.0));
  EXPECT_EQ(y[2], Complex(-2.0, 0.0));
}

}  // namespace
}  // namespace symref::sparse
