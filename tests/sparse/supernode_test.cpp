// Supernode partition properties of the recorded ReplayPlan.
//
// detect_supernodes() must produce a partition (every elimination step
// covered exactly once, in order) whose blocks satisfy the two structural
// invariants BatchedReplay's dense rank-k kernel relies on:
//   * U chain:  urow(i) == [i+1] ++ urow(i+1) for interior steps, so every
//     row's in-block targets are the contiguous steps after it and the
//     off-block tail indices are shared by the whole block;
//   * L fill:   ldeps(r) ends with [b .. r-1] — each block row depends on
//     ALL earlier block steps.
// The checks below recompute the invariants from the plan's flat arrays,
// never from the detector's own bookkeeping.
#include "sparse/lu.h"

#include <gtest/gtest.h>

#include <complex>
#include <memory>
#include <vector>

#include "circuits/ladder.h"
#include "circuits/ua741.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "support/random.h"

namespace symref::sparse {
namespace {

using Complex = std::complex<double>;

TripletMatrix random_matrix(support::Rng& rng, int n, double density) {
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, {rng.uniform(1.0, 2.0) * rng.sign(), rng.uniform(-0.5, 0.5)});
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r != c && rng.next_double() < density) {
        m.add(r, c, {rng.uniform(-1, 1), rng.uniform(-1, 1)});
      }
    }
  }
  return m;
}

/// U row of step i as an ascending step-target list.
std::vector<int> u_row(const ReplayPlan& plan, int i) {
  return {plan.u_steps.begin() + plan.u_start[static_cast<std::size_t>(i)],
          plan.u_steps.begin() + plan.u_start[static_cast<std::size_t>(i) + 1]};
}

/// L dependencies of step r as an ascending step list.
std::vector<int> l_deps(const ReplayPlan& plan, int r) {
  return {plan.l_steps.begin() + plan.l_start[static_cast<std::size_t>(r)],
          plan.l_steps.begin() + plan.l_start[static_cast<std::size_t>(r) + 1]};
}

/// Every step covered exactly once, blocks non-empty and in order.
void expect_valid_partition(const ReplayPlan& plan) {
  ASSERT_FALSE(plan.supernode_start.empty());
  EXPECT_EQ(plan.supernode_start.front(), 0);
  EXPECT_EQ(plan.supernode_start.back(), plan.dim);
  for (std::size_t s = 0; s + 1 < plan.supernode_start.size(); ++s) {
    EXPECT_LT(plan.supernode_start[s], plan.supernode_start[s + 1]) << "block " << s;
  }
  EXPECT_EQ(plan.supernode_count(),
            plan.supernode_start.empty() ? 0u : plan.supernode_start.size() - 1);
}

/// The structural invariants of every multi-step block.
void expect_block_invariants(const ReplayPlan& plan) {
  for (std::size_t s = 0; s + 1 < plan.supernode_start.size(); ++s) {
    const int b = plan.supernode_start[s];
    const int e = plan.supernode_start[s + 1];
    for (int i = b; i + 1 < e; ++i) {
      // urow(i) == [i+1] ++ urow(i+1): the U chain condition.
      const std::vector<int> row = u_row(plan, i);
      const std::vector<int> next = u_row(plan, i + 1);
      ASSERT_EQ(row.size(), next.size() + 1) << "block " << s << " step " << i;
      EXPECT_EQ(row.front(), i + 1) << "block " << s << " step " << i;
      for (std::size_t k = 0; k < next.size(); ++k) {
        EXPECT_EQ(row[k + 1], next[k]) << "block " << s << " step " << i << " pos " << k;
      }
    }
    for (int r = b + 1; r < e; ++r) {
      // ldeps(r) ends with [b .. r-1]: full in-block L fill.
      const std::vector<int> deps = l_deps(plan, r);
      const std::size_t in_block = static_cast<std::size_t>(r - b);
      ASSERT_GE(deps.size(), in_block) << "block " << s << " row " << r;
      for (std::size_t k = 0; k < in_block; ++k) {
        EXPECT_EQ(deps[deps.size() - in_block + k], b + static_cast<int>(k))
            << "block " << s << " row " << r;
      }
      // And everything before the suffix is strictly off-block.
      for (std::size_t k = 0; k + in_block < deps.size(); ++k) {
        EXPECT_LT(deps[k], b) << "block " << s << " row " << r;
      }
    }
  }
}

/// Greedy maximality: no block could have absorbed its successor's first
/// step (otherwise the detector under-merged and the dense kernel loses
/// lanes it was entitled to).
void expect_blocks_maximal(const ReplayPlan& plan) {
  for (std::size_t s = 0; s + 2 < plan.supernode_start.size(); ++s) {
    const int b = plan.supernode_start[s];
    const int e = plan.supernode_start[s + 1];
    const int last = e - 1;
    // Extending [b, e) by step e requires the U chain at `last` and the L
    // suffix at e; at least one must fail.
    const std::vector<int> row = u_row(plan, last);
    const std::vector<int> next = u_row(plan, e);
    bool chain_holds = row.size() == next.size() + 1 && !row.empty() && row.front() == e;
    if (chain_holds) {
      for (std::size_t k = 0; k < next.size(); ++k) {
        if (row[k + 1] != next[k]) {
          chain_holds = false;
          break;
        }
      }
    }
    bool l_suffix_holds = true;
    const std::vector<int> deps = l_deps(plan, e);
    const std::size_t in_block = static_cast<std::size_t>(e - b);
    if (deps.size() < in_block) {
      l_suffix_holds = false;
    } else {
      for (std::size_t k = 0; k < in_block; ++k) {
        if (deps[deps.size() - in_block + k] != b + static_cast<int>(k)) {
          l_suffix_holds = false;
          break;
        }
      }
    }
    EXPECT_FALSE(chain_holds && l_suffix_holds)
        << "blocks " << s << " and " << s + 1 << " should have merged";
  }
}

void expect_all_properties(const SparseLu& lu) {
  ASSERT_TRUE(lu.has_plan());
  const std::shared_ptr<const ReplayPlan> plan = lu.plan();
  expect_valid_partition(*plan);
  expect_block_invariants(*plan);
  expect_blocks_maximal(*plan);
}

TEST(Supernodes, DiagonalMatrixIsAllSingletons) {
  // No off-diagonal structure: the U chain never links two steps.
  const int n = 12;
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) m.add(i, i, {1.0 + i, 0.0});
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  EXPECT_EQ(lu.supernode_count(), static_cast<std::size_t>(n));
  expect_all_properties(lu);
}

TEST(Supernodes, DenseMatrixIsOneBlock) {
  support::Rng rng(7);
  const int n = 10;
  TripletMatrix m(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const double diag = r == c ? 4.0 : 0.0;
      m.add(r, c, {diag + rng.uniform(-1, 1), rng.uniform(-1, 1)});
    }
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  EXPECT_EQ(lu.supernode_count(), 1u);
  expect_all_properties(lu);
}

TEST(Supernodes, TridiagonalMergesOnlyTheTrailingCorner) {
  // Markowitz keeps a tridiagonal fill-free: urow(i) = {i+1} chains with
  // urow(i+1) = {i+2} only at the very end, where the final 2x2 corner IS
  // dense — so exactly the last two steps merge: n-1 supernodes.
  const int n = 20;
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) {
    m.add(i, i, {4.0, 0.0});
    if (i > 0) {
      m.add(i, i - 1, {-1.0, 0.0});
      m.add(i - 1, i, {-1.0, 0.0});
    }
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  EXPECT_EQ(lu.supernode_count(), static_cast<std::size_t>(n - 1));
  expect_all_properties(lu);
}

TEST(Supernodes, TrivialDimensions) {
  TripletMatrix empty(0);
  SparseLu lu0;
  ASSERT_TRUE(lu0.factor(empty));
  EXPECT_EQ(lu0.supernode_count(), 0u);

  TripletMatrix one(1);
  one.add(0, 0, {2.0, 0.0});
  SparseLu lu1;
  ASSERT_TRUE(lu1.factor(one));
  EXPECT_EQ(lu1.supernode_count(), 1u);
  expect_all_properties(lu1);
}

TEST(Supernodes, ArrowheadMatrixFormsTrailingBlock) {
  // Arrowhead (dense last row+column, diagonal elsewhere): elimination of
  // the diagonal steps fills nothing, and the trailing steps go dense. The
  // partition must stay valid and the invariants must hold whatever the
  // pivot order chose.
  const int n = 14;
  TripletMatrix m(n);
  for (int i = 0; i < n; ++i) m.add(i, i, {3.0 + i, 0.0});
  for (int i = 0; i + 1 < n; ++i) {
    m.add(n - 1, i, {0.5, 0.1});
    m.add(i, n - 1, {0.5, -0.1});
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(m));
  expect_all_properties(lu);
  EXPECT_LE(lu.supernode_count(), static_cast<std::size_t>(n));
}

TEST(Supernodes, RandomMatricesSatisfyAllInvariants) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    for (const int n : {8, 17, 33, 64, 120}) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " n=" << n);
      support::Rng rng(seed * 7919u + static_cast<std::uint64_t>(n));
      const TripletMatrix m = random_matrix(rng, n, 6.0 / n);
      SparseLu lu;
      ASSERT_TRUE(lu.factor(m));
      expect_all_properties(lu);
    }
  }
}

TEST(Supernodes, CircuitMatricesSatisfyAllInvariants) {
  for (const int stages : {8, 32, 96}) {
    SCOPED_TRACE(::testing::Message() << "ladder stages=" << stages);
    const netlist::Circuit circuit = circuits::rc_ladder(stages);
    const netlist::Circuit canonical = netlist::canonicalize(circuit);
    const mna::NodalSystem system(canonical);
    SparseLu lu;
    ASSERT_TRUE(lu.factor(system.matrix({0.3, 0.95}, 1e9, 1e-3)));
    expect_all_properties(lu);
  }
  const netlist::Circuit ua741 = netlist::canonicalize(circuits::ua741());
  const mna::NodalSystem system(ua741);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(system.matrix({0.3, 0.95}, 1.0, 1.0)));
  expect_all_properties(lu);
}

TEST(Supernodes, PartitionRoundTripsThroughReplay) {
  // Degenerate partitions must replay correctly: all-singleton (diagonal),
  // one-block (dense), and a mixed random pattern — refactor on the same
  // values is bit-identical to factor, whatever the partition looks like.
  support::Rng rng(31337);
  const auto check_roundtrip = [](const TripletMatrix& m) {
    const CompressedMatrix c = m.compress();
    SparseLu lu;
    ASSERT_TRUE(lu.factor(c));
    const std::complex<double> det = lu.determinant().to_complex();
    ASSERT_TRUE(lu.refactor(c));
    EXPECT_EQ(lu.determinant().to_complex(), det);
  };

  TripletMatrix diagonal(9);
  for (int i = 0; i < 9; ++i) diagonal.add(i, i, {1.5 + i, -0.25});
  check_roundtrip(diagonal);

  TripletMatrix dense(7);
  for (int r = 0; r < 7; ++r) {
    for (int c = 0; c < 7; ++c) {
      dense.add(r, c, {(r == c ? 5.0 : 0.0) + rng.uniform(-1, 1), rng.uniform(-1, 1)});
    }
  }
  check_roundtrip(dense);

  check_roundtrip(random_matrix(rng, 40, 0.15));
}

}  // namespace
}  // namespace symref::sparse
