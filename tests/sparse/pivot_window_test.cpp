// min_abs_pivot() and determinant() at the edges: trivial dimensions, and
// pivots outside the (2^-256, 2^256) deferred-scaling window of
// scaled_pivot_product — where the pivot product must fold into the
// extended-range ScaledComplex accumulator instead of multiplying through
// the double accumulator. The probe values 2^±300 sit outside that window
// but comfortably inside the ~1e±150 range where replay_abs is exact, so
// min_abs_pivot stays bit-exact while the determinant exercises the
// eagerly-normalized fold path.
#include "sparse/lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>

namespace symref::sparse {
namespace {

using Complex = std::complex<double>;

TripletMatrix diagonal(const std::vector<double>& values) {
  TripletMatrix m(static_cast<int>(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    m.add(static_cast<int>(i), static_cast<int>(i), Complex(values[i], 0.0));
  }
  return m;
}

TEST(PivotWindow, DimensionOneFactorAndRefactor) {
  SparseLu lu;
  ASSERT_TRUE(lu.factor(diagonal({3.5})));
  EXPECT_EQ(lu.min_abs_pivot(), 3.5);
  EXPECT_EQ(lu.determinant().real().to_double(), 3.5);
  EXPECT_EQ(lu.determinant().imag().to_double(), 0.0);

  // A replay with a new value recomputes both from the replayed pivot.
  ASSERT_TRUE(lu.refactor(diagonal({-0.25}).compress()));
  EXPECT_EQ(lu.min_abs_pivot(), 0.25);
  EXPECT_EQ(lu.determinant().real().to_double(), -0.25);
}

TEST(PivotWindow, DimensionZeroIsTheEmptyProduct) {
  SparseLu lu;
  ASSERT_TRUE(lu.factor(TripletMatrix(0)));
  // No pivots: the smallest-|pivot| query has no candidate (+infinity), and
  // the empty pivot product is exactly 1.
  EXPECT_EQ(lu.min_abs_pivot(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(lu.determinant().real().to_double(), 1.0);
  EXPECT_EQ(lu.determinant().imag().to_double(), 0.0);
}

TEST(PivotWindow, AllPivotsAboveTheWindowFoldExactly) {
  // Four pivots of 2^300: each factor is outside the window, so every
  // elementary product takes the normalized ScaledComplex step. The product
  // 2^1200 overflows double; the extended-range result is exact.
  const double big = std::ldexp(1.0, 300);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(diagonal({big, big, big, big})));
  EXPECT_EQ(lu.min_abs_pivot(), big);
  const numeric::ScaledComplex det = lu.determinant();
  EXPECT_EQ(det.real().mantissa(), 1.0);
  EXPECT_EQ(det.real().exponent2(), 1200);
  EXPECT_TRUE(det.imag().is_zero());
}

TEST(PivotWindow, AllPivotsBelowTheWindowFoldExactly) {
  // 2^-1200 underflows double to zero; the fold keeps every bit.
  const double tiny = std::ldexp(1.0, -300);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(diagonal({tiny, tiny, tiny, tiny})));
  EXPECT_EQ(lu.min_abs_pivot(), tiny);
  const numeric::ScaledComplex det = lu.determinant();
  EXPECT_EQ(det.real().mantissa(), 1.0);
  EXPECT_EQ(det.real().exponent2(), -1200);
}

TEST(PivotWindow, MixedPivotsCrossTheWindowInBothDirections) {
  // Alternating 2^300 / 2^-300 pivots drag the accumulator out both sides
  // of the window; the powers of two cancel exactly, leaving the one
  // in-window pivot as the determinant.
  const double big = std::ldexp(1.0, 300);
  const double tiny = std::ldexp(1.0, -300);
  SparseLu lu;
  ASSERT_TRUE(lu.factor(diagonal({big, tiny, big, tiny, 3.0})));
  EXPECT_EQ(lu.min_abs_pivot(), tiny);
  const numeric::ScaledComplex det = lu.determinant();
  EXPECT_EQ(det.real().to_double(), 3.0);
  EXPECT_TRUE(det.imag().is_zero());
}

TEST(PivotWindow, RefactorRecomputesAcrossTheWindowBoundary) {
  // The same plan replayed with values that moved from in-window to
  // out-of-window: min_abs_pivot and determinant are statistics of the
  // CURRENT pivots, not the planned ones.
  SparseLu lu;
  ASSERT_TRUE(lu.factor(diagonal({1.0, 2.0, 4.0})));
  EXPECT_EQ(lu.min_abs_pivot(), 1.0);
  EXPECT_EQ(lu.determinant().real().to_double(), 8.0);

  const double big = std::ldexp(1.0, 300);
  const double tiny = std::ldexp(1.0, -300);
  ASSERT_TRUE(lu.refactor(diagonal({big, tiny, 4.0}).compress()));
  EXPECT_EQ(lu.min_abs_pivot(), tiny);
  EXPECT_EQ(lu.determinant().real().to_double(), 4.0);
}

}  // namespace
}  // namespace symref::sparse
