// POSIX socket plumbing for the refgend protocol front ends.
//
// The api::protocol layer is transport-agnostic (LineTransport); this
// header supplies the OS-specific half the tools need: a LineTransport
// over a file descriptor, a localhost TCP listener, and a client dial.
// Tools-only on purpose — src/ stays free of platform headers.
#pragma once

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "api/protocol.h"
#include "support/fault_injection.h"

namespace symref::tools {

/// LineTransport over a socket fd. Owns the fd (closed on destruction).
/// Writes use MSG_NOSIGNAL so a vanished peer surfaces as a false return,
/// not SIGPIPE.
class FdTransport : public api::protocol::LineTransport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool read_line(std::string* line) override {
    for (;;) {
      const std::size_t newline = pending_.find('\n');
      if (newline != std::string::npos) {
        line->assign(pending_, 0, newline);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        pending_.erase(0, newline + 1);
        return true;
      }
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n > 0) {
        pending_.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      // EOF (or error): hand out a trailing unterminated line once.
      if (!pending_.empty()) {
        line->swap(pending_);
        pending_.clear();
        return true;
      }
      return false;
    }
  }

  bool write_line(const std::string& line) override {
    // Fault site "socket_io": a dropped write looks exactly like a vanished
    // peer, exercising the client's reconnect/retry path in chaos runs.
    if (support::fault("socket_io")) return false;
    std::string out = line;
    out.push_back('\n');
    const char* data = out.data();
    std::size_t left = out.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

 private:
  int fd_ = -1;
  std::string pending_;
};

/// Listening socket on 127.0.0.1:`port` (0 = ephemeral). Returns the fd and
/// stores the bound port in *bound_port; -1 on failure (*error explains).
inline int listen_on(int port, int* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    *error = std::string("bind/listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  socklen_t length = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &length);
  *bound_port = static_cast<int>(ntohs(addr.sin_port));
  return fd;
}

/// Accept with a timeout so the caller can poll a shutdown flag. Returns the
/// client fd, or -1 when the timeout elapsed / accept failed. On -1,
/// *error_number (when given) is 0 for a plain timeout and the errno of the
/// failed poll/accept otherwise — so the caller can tell "nothing arrived"
/// from a transient accept error worth logging and retrying.
inline int accept_client(int listen_fd, int timeout_ms, int* error_number = nullptr) {
  if (error_number != nullptr) *error_number = 0;
  pollfd waiter{listen_fd, POLLIN, 0};
  const int ready = ::poll(&waiter, 1, timeout_ms);
  if (ready == 0) return -1;
  if (ready < 0) {
    if (error_number != nullptr) *error_number = errno;
    return -1;
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0 && error_number != nullptr) *error_number = errno;
  return fd;
}

/// Connect to "host:port" (host defaults to 127.0.0.1 when the token is
/// just a port). Returns the fd, or -1 (*error explains).
inline int dial(const std::string& target, std::string* error) {
  std::string host = "127.0.0.1";
  std::string port = target;
  const std::size_t colon = target.rfind(':');
  if (colon != std::string::npos) {
    host = target.substr(0, colon);
    port = target.substr(colon + 1);
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int status = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &found);
  if (status != 0) {
    *error = "cannot resolve '" + target + "': " + gai_strerror(status);
    return -1;
  }
  int fd = -1;
  for (addrinfo* info = found; info != nullptr; info = info->ai_next) {
    fd = ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, info->ai_addr, info->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) *error = "cannot connect to '" + target + "': " + std::strerror(errno);
  return fd;
}

}  // namespace symref::tools
