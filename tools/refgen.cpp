// refgen: the reference generator as a production command-line service.
//
//   $ refgen my_amplifier.cir --in=vin --out=vout            # reference
//   $ refgen ua741.cir --in=inp --out=vo --sweep=1:1e8:10    # + AC sweep
//   $ refgen ua741.cir --in=inp --out=vo --poles --json=-    # + poles, JSON
//   $ refgen ua741.cir --requests=session.json --json=-      # JSON session
//
// Built entirely on api::Service: the netlist is compiled ONCE into a
// CircuitHandle, then every request of the session runs against that handle
// (sharing canonicalization, assembly patterns, and LU plans — ask for
// --sweep and --poles together and the symbolic work is not repeated).
// Errors come back as api::Status; no exception reaches main().
//
// Flags:
//   --in= --out= [--in-neg=] [--out-neg=]  transfer ports (node names)
//   --transimpedance                       H = V(out)/I(in) instead of V/V
//   --refgen                               reference request (default when
//                                          ports are given)
//   --sweep=f_start:f_stop[:pts_per_dec]   AC sweep request
//   --poles                                poles/zeros request
//   --requests=file.json                   JSON request session (see
//                                          docs/api.md; replaces flag-built
//                                          requests; '-' reads stdin)
//   --sigma= --max-iterations= --threads=  engine options for flag-built
//                                          requests
//   --json[=path|-]                        machine-readable output ('-' or
//                                          empty = stdout)
//   --emit-reference                       text reference format (io.h)
//   --progress                             iteration progress on stderr
//   --name=label                           handle label in the output
//
// Exit status: 0 all requests ok, 1 a request failed, 2 usage/input error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/serialize.h"
#include "api/service.h"
#include "refgen/io.h"
#include "support/cli.h"

namespace {

using symref::api::AnyRequest;
using symref::api::Json;
using symref::api::Status;

bool read_file(const std::string& path, std::string* out) {
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

/// "1:1e8" or "1:1e8:20" -> sweep parameters.
bool parse_sweep_range(const std::string& text, symref::api::SweepRequest* sweep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, ':')) parts.push_back(part);
  if (parts.size() != 2 && parts.size() != 3) return false;
  char* end = nullptr;
  sweep->f_start_hz = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str()) return false;
  sweep->f_stop_hz = std::strtod(parts[1].c_str(), &end);
  if (end == parts[1].c_str()) return false;
  if (parts.size() == 3) {
    sweep->points_per_decade = std::atoi(parts[2].c_str());
    if (sweep->points_per_decade <= 0) return false;
  }
  return true;
}

void print_usage() {
  std::fprintf(
      stderr,
      "usage: refgen <netlist-file> [--in=<node> --out=<node>] [requests] [options]\n"
      "  requests: [--refgen] [--sweep=f0:f1[:ppd]] [--poles] [--requests=file.json]\n"
      "  transfer: [--in-neg=<node>] [--out-neg=<node>] [--transimpedance]\n"
      "  engine:   [--sigma=N] [--max-iterations=N] [--threads=N]\n"
      "  output:   [--json[=path|-]] [--emit-reference] [--progress] [--name=label]\n");
}

/// Human-readable rendering of the successful responses.
void print_refgen_text(const symref::api::RefgenResponse& response, bool emit_reference) {
  const auto& result = response.result;
  std::fprintf(stderr, "engine: %s, %zu iterations, %d factorizations, %.1f ms%s\n",
               result.termination.c_str(), result.iterations.size(),
               result.total_evaluations, result.seconds * 1e3,
               response.from_cache ? " (cached)" : "");
  if (emit_reference) {
    symref::refgen::write_reference(std::cout, result.reference);
  } else {
    std::printf("%s", result.reference.describe(8).c_str());
  }
}

void print_sweep_text(const symref::api::SweepResponse& response) {
  std::printf("\nfreq[Hz]  |H|[dB]  phase[deg]\n");
  for (const auto& p : response.points) {
    std::printf("%9.3g  %8.3f  %9.3f\n", p.frequency_hz, p.magnitude_db, p.phase_deg);
  }
}

void print_poles_zeros_text(const symref::api::PolesZerosResponse& response) {
  std::printf("\npoles (rad/s):\n");
  for (const auto& p : response.poles) {
    std::printf("  %13.5g %+13.5g j\n", p.real(), p.imag());
  }
  std::printf("zeros (rad/s):\n");
  for (const auto& z : response.zeros) {
    std::printf("  %13.5g %+13.5g j\n", z.real(), z.imag());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(
      argc, argv,
      {"in", "out", "in-neg", "out-neg", "sigma", "max-iterations", "threads", "sweep",
       "requests", "json", "name"});
  if (args.positional().empty()) {
    print_usage();
    return 2;
  }

  std::string netlist_text;
  if (!read_file(args.positional().front(), &netlist_text)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", args.positional().front().c_str());
    return 2;
  }

  const bool json_mode = args.has("json");
  const bool progress = args.has("progress");

  // --- Build the request session --------------------------------------------
  std::vector<AnyRequest> requests;
  if (args.has("requests")) {
    std::string request_text;
    if (!read_file(args.get("requests", "-"), &request_text)) {
      std::fprintf(stderr, "error: cannot open requests file '%s'\n",
                   args.get("requests").c_str());
      return 2;
    }
    auto parsed_json = Json::parse(request_text);
    if (!parsed_json.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed_json.status().to_string().c_str());
      return 2;
    }
    auto parsed = symref::api::requests_from_json(parsed_json.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().to_string().c_str());
      return 2;
    }
    requests = parsed.take();
  } else {
    if (!args.has("in") || !args.has("out")) {
      print_usage();
      return 2;
    }
    symref::mna::TransferSpec spec;
    spec.kind = args.has("transimpedance")
                    ? symref::mna::TransferSpec::Kind::Transimpedance
                    : symref::mna::TransferSpec::Kind::VoltageGain;
    spec.in_pos = args.get("in");
    spec.in_neg = args.get("in-neg", "0");
    spec.out_pos = args.get("out");
    spec.out_neg = args.get("out-neg", "0");

    symref::refgen::AdaptiveOptions options;
    options.sigma = args.get_int("sigma", 6);
    options.max_iterations = args.get_int("max-iterations", 64);
    options.threads = args.get_int("threads", 1);

    const bool want_sweep = args.has("sweep");
    const bool want_poles = args.has("poles");
    if (args.has("refgen") || (!want_sweep && !want_poles)) {
      AnyRequest request;
      request.type = AnyRequest::Type::kRefgen;
      request.refgen = {spec, options};
      requests.push_back(std::move(request));
    }
    if (want_sweep) {
      AnyRequest request;
      request.type = AnyRequest::Type::kSweep;
      request.sweep.spec = spec;
      request.sweep.threads = options.threads;
      if (!parse_sweep_range(args.get("sweep"), &request.sweep)) {
        std::fprintf(stderr, "error: bad --sweep range '%s' (want f_start:f_stop[:ppd])\n",
                     args.get("sweep").c_str());
        return 2;
      }
      requests.push_back(std::move(request));
    }
    if (want_poles) {
      AnyRequest request;
      request.type = AnyRequest::Type::kPolesZeros;
      request.poles_zeros = {spec, options};
      requests.push_back(std::move(request));
    }
  }
  if (progress) {
    for (AnyRequest& request : requests) {
      auto observer = [](const symref::refgen::IterationRecord& record) {
        std::fprintf(stderr, "  iter %d (%s): f=%.3g g=%.3g points=%d den+%d num+%d\n",
                     record.index, symref::refgen::purpose_name(record.purpose),
                     record.f_scale, record.g_scale, record.points,
                     record.den_new_coefficients, record.num_new_coefficients);
      };
      if (request.type == AnyRequest::Type::kRefgen) {
        request.refgen.options.on_iteration = observer;
      } else if (request.type == AnyRequest::Type::kPolesZeros) {
        request.poles_zeros.options.on_iteration = observer;
      }
    }
  }

  // --- Compile once, serve the session --------------------------------------
  const symref::api::Service service;
  auto compiled = service.compile_netlist(netlist_text, args.get("name"));
  if (!compiled.ok()) {
    if (json_mode) {
      // Keep the documented envelope shape even on compile failure
      // ("circuit" is only present when compilation succeeded).
      Json output = Json::object();
      output.set("tool", "refgen");
      output.set("status", symref::api::to_json(compiled.status()));
      output.set("ok", false);
      output.set("responses", Json::array());
      std::printf("%s\n", output.dump(2).c_str());
    }
    std::fprintf(stderr, "error: %s\n", compiled.status().to_string().c_str());
    return 2;
  }
  const symref::api::CircuitHandle handle = compiled.take();
  if (!json_mode) std::fprintf(stderr, "%s\n", handle.summary().c_str());

  Json responses = Json::array();
  bool all_ok = true;
  for (const AnyRequest& request : requests) {
    Json payload;
    Status status;
    switch (request.type) {
      case AnyRequest::Type::kRefgen: {
        const auto response = service.refgen(handle, request.refgen);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_refgen_text(response.value(), args.has("emit-reference"));
        } else {
          payload = symref::api::error_response("refgen", status);
        }
        break;
      }
      case AnyRequest::Type::kSweep: {
        const auto response = service.sweep(handle, request.sweep);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_sweep_text(response.value());
        } else {
          payload = symref::api::error_response("sweep", status);
        }
        break;
      }
      case AnyRequest::Type::kPolesZeros: {
        const auto response = service.poles_zeros(handle, request.poles_zeros);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_poles_zeros_text(response.value());
        } else {
          payload = symref::api::error_response("poles_zeros", status);
        }
        break;
      }
    }
    if (!status.ok()) {
      all_ok = false;
      std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    }
    responses.push_back(std::move(payload));
  }

  if (json_mode) {
    Json circuit = Json::object();
    circuit.set("name", handle.name());
    circuit.set("summary", handle.summary());
    circuit.set("nodes", handle.circuit().node_count());
    circuit.set("elements", static_cast<double>(handle.circuit().element_count()));
    circuit.set("dim", handle.dim());
    circuit.set("order_bound", handle.order_bound());

    Json output = Json::object();
    output.set("tool", "refgen");
    output.set("status", symref::api::to_json(Status()));
    output.set("circuit", std::move(circuit));
    output.set("ok", all_ok);
    output.set("responses", std::move(responses));

    const std::string path = args.get("json", "-");
    const std::string text = output.dump(2);
    if (path == "-" || path.empty()) {
      std::printf("%s\n", text.c_str());
    } else {
      std::ofstream file(path);
      file << text << '\n';
      if (!file) {
        std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
        return 2;
      }
    }
  }
  return all_ok ? 0 : 1;
}
