// refgen: the reference generator as a production command-line service.
//
//   $ refgen my_amplifier.cir --in=vin --out=vout            # reference
//   $ refgen ua741.cir --in=inp --out=vo --sweep=1:1e8:10    # + AC sweep
//   $ refgen ua741.cir --in=inp --out=vo --poles --json=-    # + poles, JSON
//   $ refgen ua741.cir --requests=session.json --json=-      # JSON session
//   $ refgen ua741.cir --in=inp --out=vo --connect=7171      # via refgend
//
// Built entirely on api::Service: the netlist is compiled ONCE into a
// CircuitHandle, then every request of the session runs against that handle
// (sharing canonicalization, assembly patterns, and LU plans — ask for
// --sweep and --poles together and the symbolic work is not repeated).
// Errors come back as api::Status; no exception reaches main().
//
// With --connect the same session is executed remotely: the tool dials a
// refgend daemon, compiles the netlist there, submits every request as an
// asynchronous job, and waits for the results (identical payloads — the
// daemon runs the same facade).
//
// Flags:
//   --in= --out= [--in-neg=] [--out-neg=]  transfer ports (node names)
//   --transimpedance                       H = V(out)/I(in) instead of V/V
//   --refgen                               reference request (default when
//                                          ports are given)
//   --op                                   DC operating-point request (the
//                                          bias a device-bearing netlist is
//                                          linearized at; needs no ports)
//   --auto-linearize                       mark every AC-family request of
//                                          the session auto_linearize=true —
//                                          required for D/Q/M netlists
//   --sweep=f_start:f_stop[:pts_per_dec]   AC sweep request
//   --poles                                poles/zeros request
//   --sweep-param=name:from:to:count[:log][,name:...]
//                                          grid parameter sweep over the
//                                          netlist's .param symbols
//   --mc-param=name:nominal:rel_sigma[:uniform][,name:...]
//                                          Monte-Carlo parameter sweep
//   --mc-samples=N --seed=S                Monte-Carlo sample count / seed
//   --probe=f_start:f_stop[:pts_per_dec]   per-sample probe frequency grid
//                                          of a parameter sweep
//   --tran=tstop[:tstep[:method[:fixed]]]  transient analysis over [0, tstop]
//                                          (method: trap|bdf1|bdf2; "fixed"
//                                          disables the LTE step control;
//                                          needs no ports; runs the
//                                          large-signal netlist directly —
//                                          no --auto-linearize required)
//   --simplify                             reference-driven symbolic
//                                          simplification request
//   --error-budget=E                       simplify: certified max relative
//                                          error over the band (default 0.01)
//   --band=f_start:f_stop[:points]         simplify: log-spaced frequency
//                                          band (default 10:1e3:9)
//   --requests=file.json                   JSON request session (see
//                                          docs/api.md; replaces flag-built
//                                          requests; '-' reads stdin)
//   --sigma= --max-iterations= --threads=  engine options for flag-built
//                                          requests
//   --timeout=<seconds>                    cancel outstanding work after the
//                                          budget (exit code 9, local runs)
//   --connect=[host:]port                  run the session on a refgend
//                                          daemon instead of in-process
//   --retry=N                              with --connect: retry the dial
//                                          and io_error sessions up to N
//                                          extra times with exponential
//                                          backoff (default 0 = no retry)
//   --deadline-ms=N                        with --connect: per-request
//                                          deadline enforced by the daemon
//                                          (exit 13 when exceeded)
//   --json[=path|-]                        machine-readable output ('-' or
//                                          empty = stdout)
//   --emit-reference                       text reference format (io.h)
//   --progress                             iteration progress on stderr
//   --name=label                           handle label in the output
//
// Exit status: 0 all requests ok; 2 usage/input error; otherwise the class
// of the first failure: 3 parse_error, 4 invalid_spec, 5 invalid_argument,
// 6 singular_system, 7 refused_replay, 8 incomplete, 9 cancelled (e.g.
// --timeout), 10 not_found, 11 io_error, 12 internal, 13 deadline_exceeded,
// 14 overloaded, 15 unavailable, 16 no_convergence.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/serialize.h"
#include "api/service.h"
#include "numeric/units.h"
#include "refgen/io.h"
#include "support/cancellation.h"
#include "support/cli.h"
#include "transport_posix.h"

namespace {

using symref::api::AnyRequest;
using symref::api::Json;
using symref::api::Status;
using symref::api::StatusCode;

/// The documented exit-code contract (one code per StatusCode class).
int exit_code_for(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kParseError: return 3;
    case StatusCode::kInvalidSpec: return 4;
    case StatusCode::kInvalidArgument: return 5;
    case StatusCode::kSingularSystem: return 6;
    case StatusCode::kRefusedReplay: return 7;
    case StatusCode::kIncomplete: return 8;
    case StatusCode::kCancelled: return 9;
    case StatusCode::kNotFound: return 10;
    case StatusCode::kIoError: return 11;
    case StatusCode::kDeadlineExceeded: return 13;
    case StatusCode::kOverloaded: return 14;
    case StatusCode::kUnavailable: return 15;
    case StatusCode::kNoConvergence: return 16;
    case StatusCode::kInternal: return 12;
  }
  return 12;
}

/// Trips a CancellationSource once the budget elapses (--timeout). The
/// destructor releases the watchdog thread early on normal completion.
class Watchdog {
 public:
  Watchdog(double seconds, symref::support::CancellationSource source)
      : source_(std::move(source)), thread_([this, seconds] {
          std::unique_lock<std::mutex> lock(mutex_);
          if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                            [this] { return disarmed_; })) {
            source_.cancel();
          }
        }) {}
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  symref::support::CancellationSource source_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

bool read_file(const std::string& path, std::string* out) {
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

/// "1:1e8" or "1:1e8:20" -> sweep parameters.
bool parse_sweep_range(const std::string& text, symref::api::SweepRequest* sweep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, ':')) parts.push_back(part);
  if (parts.size() != 2 && parts.size() != 3) return false;
  char* end = nullptr;
  sweep->f_start_hz = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str()) return false;
  sweep->f_stop_hz = std::strtod(parts[1].c_str(), &end);
  if (end == parts[1].c_str()) return false;
  if (parts.size() == 3) {
    sweep->points_per_decade = std::atoi(parts[2].c_str());
    if (sweep->points_per_decade <= 0) return false;
  }
  return true;
}

/// "1m", "1m:5u", "1m:5u:bdf2" or "1m:5u:trap:fixed" -> transient request.
bool parse_tran(const std::string& text, symref::api::TransientRequest* tran) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, ':')) parts.push_back(part);
  if (parts.empty() || parts.size() > 4) return false;
  const auto tstop = symref::numeric::parse_engineering(parts[0]);
  if (!tstop) return false;
  tran->tstop = *tstop;
  if (parts.size() >= 2 && !parts[1].empty()) {
    const auto tstep = symref::numeric::parse_engineering(parts[1]);
    if (!tstep) return false;
    tran->tstep = *tstep;
  }
  if (parts.size() >= 3 && !parts[2].empty()) {
    try {
      tran->method = symref::transient::method_from_name(parts[2]);
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  if (parts.size() == 4) {
    if (parts[3] == "fixed") {
      tran->adaptive = false;
    } else if (parts[3] != "adaptive") {
      return false;
    }
  }
  return true;
}

/// "10:1e3" or "10:1e3:9" -> simplify band (third field = total points).
bool parse_band(const std::string& text, symref::api::SimplifyRequest* simplify) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, ':')) parts.push_back(part);
  if (parts.size() != 2 && parts.size() != 3) return false;
  char* end = nullptr;
  simplify->options.f_start_hz = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str()) return false;
  simplify->options.f_stop_hz = std::strtod(parts[1].c_str(), &end);
  if (end == parts[1].c_str()) return false;
  if (parts.size() == 3) {
    simplify->options.band_points = std::atoi(parts[2].c_str());
    if (simplify->options.band_points < 2) return false;
  }
  return true;
}

/// Split on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, sep)) parts.push_back(part);
  if (!text.empty() && text.back() == sep) parts.push_back("");
  return parts;
}

bool parse_value_token(const std::string& text, double* out) {
  const auto value = symref::numeric::parse_engineering(text);
  if (!value) return false;
  *out = *value;
  return true;
}

/// "r1:1k:10k:5[:log],c1:..." -> grid axes.
bool parse_grid_axes(const std::string& text, std::vector<symref::mna::ParamAxis>* axes) {
  for (const std::string& item : split(text, ',')) {
    const std::vector<std::string> fields = split(item, ':');
    if (fields.size() != 4 && fields.size() != 5) return false;
    symref::mna::ParamAxis axis;
    axis.name = fields[0];
    if (axis.name.empty()) return false;
    if (!parse_value_token(fields[1], &axis.from)) return false;
    if (!parse_value_token(fields[2], &axis.to)) return false;
    axis.count = std::atoi(fields[3].c_str());
    if (axis.count < 1) return false;
    if (fields.size() == 5) {
      if (fields[4] != "log" && fields[4] != "lin") return false;
      axis.log_scale = fields[4] == "log";
    }
    axes->push_back(std::move(axis));
  }
  return !axes->empty();
}

/// "gm:4m:0.05[:uniform],cc:30p:0.1" -> Monte-Carlo dimensions.
bool parse_mc_dists(const std::string& text, std::vector<symref::mna::ParamDist>* dists) {
  for (const std::string& item : split(text, ',')) {
    const std::vector<std::string> fields = split(item, ':');
    if (fields.size() != 3 && fields.size() != 4) return false;
    symref::mna::ParamDist dist;
    dist.name = fields[0];
    if (dist.name.empty()) return false;
    if (!parse_value_token(fields[1], &dist.nominal)) return false;
    if (!parse_value_token(fields[2], &dist.rel_sigma)) return false;
    if (fields.size() == 4) {
      if (fields[3] != "uniform" && fields[3] != "gaussian") return false;
      if (fields[3] == "uniform") dist.kind = symref::mna::ParamDist::Kind::kUniform;
    }
    dists->push_back(std::move(dist));
  }
  return !dists->empty();
}

void print_usage() {
  std::fprintf(
      stderr,
      "usage: refgen <netlist-file> [--in=<node> --out=<node>] [requests] [options]\n"
      "  requests: [--refgen] [--sweep=f0:f1[:ppd]] [--poles] [--requests=file.json]\n"
      "            [--op] [--tran=tstop[:tstep[:method[:fixed]]]]\n"
      "            [--simplify [--error-budget=E] [--band=f0:f1[:points]]]\n"
      "  param sweeps: [--sweep-param=name:from:to:count[:log],...]\n"
      "            [--mc-param=name:nominal:rel_sigma[:uniform],...]\n"
      "            [--mc-samples=N] [--seed=S] [--probe=f0:f1[:ppd]]\n"
      "  transfer: [--in-neg=<node>] [--out-neg=<node>] [--transimpedance]\n"
      "  engine:   [--sigma=N] [--max-iterations=N] [--threads=N] [--timeout=SECONDS]\n"
      "            [--kernel=scalar|batched] (replay kernel; results bit-identical)\n"
      "  devices:  [--auto-linearize] (required to run AC analyses on a netlist\n"
      "            with D/Q/M cards; they use the linearized small-signal circuit)\n"
      "  remote:   [--connect=[host:]port] [--retry=N] [--deadline-ms=N]\n"
      "            (drive a refgend daemon)\n"
      "  output:   [--json[=path|-]] [--emit-reference] [--progress] [--name=label]\n"
      "exit codes: 0 ok, 2 usage, 3 parse_error, 4 invalid_spec, 5 invalid_argument,\n"
      "  6 singular_system, 7 refused_replay, 8 incomplete, 9 cancelled,\n"
      "  10 not_found, 11 io_error, 12 internal, 13 deadline_exceeded,\n"
      "  14 overloaded, 15 unavailable, 16 no_convergence\n");
}

/// Human-readable rendering of the successful responses.
void print_refgen_text(const symref::api::RefgenResponse& response, bool emit_reference) {
  const auto& result = response.result;
  std::fprintf(stderr, "engine: %s, %zu iterations, %d factorizations, %.1f ms%s\n",
               result.termination.c_str(), result.iterations.size(),
               result.total_evaluations, result.seconds * 1e3,
               response.from_cache ? " (cached)" : "");
  if (emit_reference) {
    symref::refgen::write_reference(std::cout, result.reference);
  } else {
    std::printf("%s", result.reference.describe(8).c_str());
  }
}

void print_sweep_text(const symref::api::SweepResponse& response) {
  std::printf("\nfreq[Hz]  |H|[dB]  phase[deg]\n");
  for (const auto& p : response.points) {
    std::printf("%9.3g  %8.3f  %9.3f\n", p.frequency_hz, p.magnitude_db, p.phase_deg);
  }
}

void print_poles_zeros_text(const symref::api::PolesZerosResponse& response) {
  std::printf("\npoles (rad/s):\n");
  for (const auto& p : response.poles) {
    std::printf("  %13.5g %+13.5g j\n", p.real(), p.imag());
  }
  std::printf("zeros (rad/s):\n");
  for (const auto& z : response.zeros) {
    std::printf("  %13.5g %+13.5g j\n", z.real(), z.imag());
  }
}

void print_param_sweep_text(const symref::api::ParamSweepResponse& response) {
  const auto& result = response.result;
  const std::size_t width = result.names.size();
  const std::size_t points = result.frequencies_hz.size();
  const std::size_t samples = width == 0 ? 0 : result.values.size() / width;
  std::fprintf(stderr,
               "param sweep: %zu samples x %zu points, %llu fresh factorization%s, "
               "%.1f ms%s\n",
               samples, points,
               static_cast<unsigned long long>(result.fresh_factorizations),
               result.fresh_factorizations == 1 ? "" : "s", result.seconds * 1e3,
               response.from_cache ? " (cached)" : "");
  std::printf("\nsample  ");
  for (const std::string& name : result.names) std::printf("%12s", name.c_str());
  std::printf("  |H(f0)|[dB]  |H(f1)|[dB]\n");
  const std::size_t shown = samples < 16 ? samples : 16;
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("%6zu  ", i);
    for (std::size_t j = 0; j < width; ++j) {
      std::printf("%12.4g", result.values[i * width + j]);
    }
    const std::complex<double> first = result.response[i * points];
    const std::complex<double> last = result.response[i * points + points - 1];
    std::printf("  %11.3f  %11.3f%s\n", symref::mna::magnitude_db(first),
                symref::mna::magnitude_db(last), result.ok[i] ? "" : "  (failed)");
  }
  if (shown < samples) std::printf("   ... %zu more samples (use --json)\n", samples - shown);
}

void print_op_text(const symref::api::OpResponse& response) {
  const auto& result = response.result;
  std::fprintf(stderr,
               "op: %d Newton iterations (%d gmin steps, %d source steps), "
               "%llu fresh factorization%s, max residual %.3e A, %.1f ms%s\n",
               result.newton_iterations, result.gmin_steps, result.source_steps,
               static_cast<unsigned long long>(result.fresh_factorizations),
               result.fresh_factorizations == 1 ? "" : "s", result.max_residual,
               result.seconds * 1e3, response.from_cache ? " (cached)" : "");
  std::printf("\nnode voltages:\n");
  for (std::size_t i = 0; i < result.node_names.size(); ++i) {
    std::printf("  %-12s %14.6g V\n", result.node_names[i].c_str(),
                result.node_voltages[i]);
  }
  if (!result.branch_names.empty()) {
    std::printf("branch currents:\n");
    for (std::size_t i = 0; i < result.branch_names.size(); ++i) {
      std::printf("  %-12s %14.6g A\n", result.branch_names[i].c_str(),
                  result.branch_currents[i]);
    }
  }
  if (!result.devices.empty()) {
    std::printf("devices:\n");
    for (const symref::dc::OpDeviceInfo& device : result.devices) {
      std::printf("  %-10s %-6s", device.name.c_str(), device.kind.c_str());
      for (const auto& [key, value] : device.values) {
        std::printf("  %s=%.6g", key.c_str(), value);
      }
      std::printf("\n");
    }
  }
}

void print_transient_text(const symref::api::TransientResponse& response) {
  const auto& result = response.result;
  std::fprintf(stderr,
               "transient: %d steps (%d LTE rejections), %d step bucket%s, "
               "%llu fresh factorization%s, %d Newton iterations, %.1f ms%s%s\n",
               result.steps, result.lte_rejections, result.step_size_buckets,
               result.step_size_buckets == 1 ? "" : "s",
               static_cast<unsigned long long>(result.fresh_factorizations),
               result.fresh_factorizations == 1 ? "" : "s", result.newton_iterations,
               result.seconds * 1e3, result.degraded ? " (degraded)" : "",
               response.from_cache ? " (cached)" : "");
  const std::size_t columns =
      result.node_names.size() < 6 ? result.node_names.size() : std::size_t{6};
  std::printf("\n%-12s", "t[s]");
  for (std::size_t j = 0; j < columns; ++j) {
    std::printf("  %14s", ("v(" + result.node_names[j] + ")").c_str());
  }
  std::printf("\n");
  // Decimated table: at most ~32 rows, the final point always included.
  const std::size_t rows = result.times.size();
  const std::size_t stride = rows <= 33 ? 1 : (rows - 1 + 31) / 32;
  std::size_t last_printed = 0;
  for (std::size_t k = 0; k < rows; k += stride) {
    std::printf("%-12.5g", result.times[k]);
    for (std::size_t j = 0; j < columns; ++j) {
      std::printf("  %14.6g", result.states[k][j]);
    }
    std::printf("\n");
    last_printed = k;
  }
  if (rows > 0 && last_printed != rows - 1) {
    const std::size_t k = rows - 1;
    std::printf("%-12.5g", result.times[k]);
    for (std::size_t j = 0; j < columns; ++j) {
      std::printf("  %14.6g", result.states[k][j]);
    }
    std::printf("\n");
  }
  if (columns < result.node_names.size()) {
    std::printf("   ... %zu more nodes (use --json)\n", result.node_names.size() - columns);
  }
}

void print_simplify_text(const symref::api::SimplifyResponse& response) {
  const auto& result = response.result;
  std::fprintf(stderr,
               "simplify: %zu/%zu terms kept, %zu prune actions "
               "(%zu -> %zu elements), %llu evals, %.1f ms%s\n",
               result.kept_terms, result.enumerated_terms, result.prune_actions.size(),
               result.original_elements, result.reduced_elements,
               static_cast<unsigned long long>(result.term_evals), result.seconds * 1e3,
               response.from_cache ? " (cached)" : "");
  std::printf("\ncertificate: max rel error %.3e over [%g, %g] Hz (budget %.3e)\n",
              result.certificate.max_relative_error,
              result.certificate.frequencies_hz.empty()
                  ? 0.0
                  : result.certificate.frequencies_hz.front(),
              result.certificate.frequencies_hz.empty()
                  ? 0.0
                  : result.certificate.frequencies_hz.back(),
              result.certificate.error_budget);
  for (std::size_t i = 0; i < result.certificate.frequencies_hz.size(); ++i) {
    std::printf("  f=%10.4g Hz  rel_error=%.3e\n", result.certificate.frequencies_hz[i],
                result.certificate.relative_error[i]);
  }
  std::printf("\nnumerator   (%zu terms): %s\n", result.numerator_terms.size(),
              result.numerator_expression.c_str());
  std::printf("denominator (%zu terms): %s\n", result.denominator_terms.size(),
              result.denominator_expression.c_str());
}

void print_batch_text(const symref::api::BatchResponse& response) {
  std::printf("\nbatch: %zu items, %.1f ms\n", response.items.size(),
              response.seconds * 1e3);
  for (std::size_t i = 0; i < response.items.size(); ++i) {
    const auto& item = response.items[i];
    std::printf("  item %zu: %s\n", i,
                item.status.ok() ? item.response.result.termination.c_str()
                                 : item.status.to_string().c_str());
  }
}

/// Track the first failed status of the session (drives the exit code).
struct FailureTracker {
  Status first;
  void record(const Status& status) {
    if (!status.ok() && first.ok()) first = status;
  }
  [[nodiscard]] int exit_code() const {
    return first.ok() ? 0 : exit_code_for(first.code());
  }
};

// --- Remote execution against a refgend daemon (--connect) -----------------

/// One blocking RPC: write the request line, then read lines until our
/// reply arrives. Event lines encountered on the way are streamed to stderr
/// (progress) or ignored (done — the session uses "wait" replies instead).
Status remote_call(symref::tools::FdTransport& transport, int* next_id,
                   const std::string& method, Json params, bool progress, Json* result) {
  Json request = Json::object();
  const int id = (*next_id)++;
  request.set("id", id);
  request.set("method", method);
  request.set("params", std::move(params));
  if (!transport.write_line(request.dump())) {
    return Status::error(StatusCode::kIoError, "connection lost while sending " + method);
  }
  std::string line;
  while (transport.read_line(&line)) {
    auto parsed = Json::parse(line);
    if (!parsed.ok()) continue;  // not ours to diagnose
    const Json& message = parsed.value();
    if (const Json* event = message.find("event"); event != nullptr) {
      if (progress && event->as_string() == "progress") {
        std::fprintf(stderr, "  %s iter %d (%s): points=%d den+%d num+%d\n",
                     message.find("job_id") ? message.find("job_id")->as_string().c_str()
                                            : "?",
                     message.find("iteration") ? message.find("iteration")->as_int() : 0,
                     message.find("purpose") ? message.find("purpose")->as_string().c_str()
                                             : "?",
                     message.find("points") ? message.find("points")->as_int() : 0,
                     message.find("den_new_coefficients")
                         ? message.find("den_new_coefficients")->as_int()
                         : 0,
                     message.find("num_new_coefficients")
                         ? message.find("num_new_coefficients")->as_int()
                         : 0);
      }
      continue;
    }
    if (const Json* error = message.find("error"); error != nullptr) {
      const Json* code = error->find("code");
      const Json* text = error->find("message");
      return Status::error(
          symref::api::status_code_from_name(code ? code->as_string() : "internal"),
          method + ": " + (text ? text->as_string() : "remote error"));
    }
    if (const Json* payload = message.find("result"); payload != nullptr) {
      *result = *payload;
      return Status();
    }
  }
  return Status::error(StatusCode::kIoError, "connection closed before " + method + " reply");
}

/// Status embedded in a response payload ({"status": {"code": ...}}).
Status embedded_status(const Json& payload) {
  const Json* status = payload.find("status");
  const Json* code = status != nullptr ? status->find("code") : nullptr;
  if (code == nullptr) {
    return Status::error(StatusCode::kInternal, "response without a status");
  }
  const StatusCode parsed = symref::api::status_code_from_name(code->as_string());
  if (parsed == StatusCode::kOk) return Status();
  const Json* message = status->find("message");
  return Status::error(parsed, message != nullptr ? message->as_string() : "remote failure");
}

/// Backoff before retry attempt `k` (0-based): 100ms doubling, capped at
/// 2s, with a deterministic jitter factor in [0.5, 1.5) so a herd of
/// restarted clients does not re-dial in lockstep.
std::chrono::milliseconds retry_backoff(int k) {
  double delay_ms = 100.0;
  for (int i = 0; i < k && delay_ms < 2000.0; ++i) delay_ms *= 2.0;
  if (delay_ms > 2000.0) delay_ms = 2000.0;
  const auto mixed = static_cast<std::uint32_t>(k + 1) * 2654435761u;
  delay_ms *= 0.5 + static_cast<double>(mixed % 1024u) / 1024.0;
  return std::chrono::milliseconds(static_cast<long>(delay_ms));
}

/// Dial with up to `retries` extra attempts, backing off between failures —
/// rides out a daemon mid-restart.
int dial_with_retry(const std::string& target, int retries, std::string* error) {
  for (int attempt = 0;; ++attempt) {
    const int fd = symref::tools::dial(target, error);
    if (fd >= 0 || attempt >= retries) return fd;
    std::fprintf(stderr, "refgen: %s; retrying\n", error->c_str());
    std::this_thread::sleep_for(retry_backoff(attempt));
  }
}

int run_connected(const symref::support::CliArgs& args, const std::string& netlist_text,
                  const std::vector<AnyRequest>& requests, bool json_mode, bool progress) {
  std::string error;
  const int fd = dial_with_retry(args.get("connect"), args.get_int("retry", 0), &error);
  if (fd < 0) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  symref::tools::FdTransport transport(fd);
  int next_id = 1;

  Json compile_params = Json::object();
  compile_params.set("netlist", netlist_text);
  if (args.has("name")) compile_params.set("name", args.get("name"));
  Json circuit;
  Status status = remote_call(transport, &next_id, "compile", std::move(compile_params),
                              progress, &circuit);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return exit_code_for(status.code());
  }
  const Json* circuit_id = circuit.find("circuit_id");
  if (circuit_id == nullptr || !circuit_id->is_string()) {
    std::fprintf(stderr, "error: daemon compile reply without circuit_id\n");
    return exit_code_for(StatusCode::kInternal);
  }
  if (!json_mode) {
    std::fprintf(stderr, "compiled on daemon: %s (dim %d)\n",
                 circuit.find("name") ? circuit.find("name")->as_string().c_str() : "?",
                 circuit.find("dim") ? circuit.find("dim")->as_int() : 0);
  }

  FailureTracker failures;
  Json responses = Json::array();
  for (const AnyRequest& request : requests) {
    Json submit_params = Json::object();
    submit_params.set("circuit_id", circuit_id->as_string());
    submit_params.set("request", symref::api::to_json(request));
    if (progress) submit_params.set("progress", true);
    if (args.has("deadline-ms")) {
      submit_params.set("deadline_ms", args.get_double("deadline-ms", 0.0));
    }
    if (args.has("retry")) {
      // Server-side retry of transient failures mirrors the client dial
      // retries: N extra attempts = N+1 total.
      submit_params.set("max_attempts", args.get_int("retry", 0) + 1);
    }
    Json submitted;
    status = remote_call(transport, &next_id, "submit", std::move(submit_params), progress,
                         &submitted);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
      failures.record(status);
      responses.push_back(
          symref::api::error_response(symref::api::request_type_name(request.type), status));
      continue;
    }
    const Json* job_id = submitted.find("job_id");
    Json wait_params = Json::object();
    wait_params.set("job_id", job_id != nullptr ? job_id->as_string() : "");
    Json waited;
    status = remote_call(transport, &next_id, "wait", std::move(wait_params), progress,
                         &waited);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
      failures.record(status);
      responses.push_back(
          symref::api::error_response(symref::api::request_type_name(request.type), status));
      continue;
    }
    const Json* payload = waited.find("result");
    Json response = payload != nullptr ? *payload : Json::object();
    const Status job_status = embedded_status(response);
    failures.record(job_status);
    if (!json_mode) {
      std::fprintf(stderr, "%s %s: %s\n",
                   job_id != nullptr ? job_id->as_string().c_str() : "?",
                   symref::api::request_type_name(request.type),
                   job_status.ok() ? "ok" : job_status.to_string().c_str());
    }
    responses.push_back(std::move(response));
  }

  // This session's circuit is ephemeral: evict it so repeated --connect
  // invocations do not accumulate compiled circuits in the daemon's
  // registry. Best-effort — a lost connection already failed above.
  Json evicted;
  Json evict_params = Json::object();
  evict_params.set("circuit_id", circuit_id->as_string());
  (void)remote_call(transport, &next_id, "evict", std::move(evict_params), false, &evicted);

  if (json_mode) {
    Json output = Json::object();
    output.set("tool", "refgen");
    output.set("status", symref::api::to_json(Status()));
    output.set("connect", args.get("connect"));
    output.set("circuit", std::move(circuit));
    output.set("ok", failures.exit_code() == 0);
    output.set("responses", std::move(responses));
    std::printf("%s\n", output.dump(2).c_str());
  }
  return failures.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(
      argc, argv,
      {"in", "out", "in-neg", "out-neg", "sigma", "max-iterations", "threads", "kernel",
       "sweep", "sweep-param", "mc-param", "mc-samples", "seed", "probe", "requests", "json",
       "name", "timeout", "connect", "retry", "deadline-ms", "error-budget", "band", "tran"});
  if (args.positional().empty()) {
    print_usage();
    return 2;
  }

  std::string netlist_text;
  if (!read_file(args.positional().front(), &netlist_text)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", args.positional().front().c_str());
    return 2;
  }

  const bool json_mode = args.has("json");
  const bool progress = args.has("progress");

  // --- Build the request session --------------------------------------------
  std::vector<AnyRequest> requests;
  if (args.has("requests")) {
    std::string request_text;
    if (!read_file(args.get("requests", "-"), &request_text)) {
      std::fprintf(stderr, "error: cannot open requests file '%s'\n",
                   args.get("requests").c_str());
      return 2;
    }
    auto parsed_json = Json::parse(request_text);
    if (!parsed_json.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed_json.status().to_string().c_str());
      return 2;
    }
    auto parsed = symref::api::requests_from_json(parsed_json.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().to_string().c_str());
      return 2;
    }
    requests = parsed.take();
  } else {
    // --op and --tran need no transfer ports — an op-only or transient-only
    // session is legal on a bare deck; every other flag-built request needs
    // --in/--out.
    const bool want_op = args.has("op");
    const bool want_tran = args.has("tran");
    if (want_op) {
      AnyRequest request;
      request.type = AnyRequest::Type::kOp;
      request.op.threads = args.get_int("threads", 1);
      requests.push_back(std::move(request));
    }
    if (want_tran) {
      AnyRequest request;
      request.type = AnyRequest::Type::kTransient;
      request.transient.threads = args.get_int("threads", 1);
      if (!parse_tran(args.get("tran"), &request.transient)) {
        std::fprintf(stderr,
                     "error: bad --tran '%s' (want tstop[:tstep[:method[:fixed]]], "
                     "method trap|bdf1|bdf2)\n",
                     args.get("tran").c_str());
        return 2;
      }
      requests.push_back(std::move(request));
    }
    if (!args.has("in") || !args.has("out")) {
      if (!want_op && !want_tran) {
        print_usage();
        return 2;
      }
    } else {
      symref::mna::TransferSpec spec;
      spec.kind = args.has("transimpedance")
                      ? symref::mna::TransferSpec::Kind::Transimpedance
                      : symref::mna::TransferSpec::Kind::VoltageGain;
      spec.in_pos = args.get("in");
      spec.in_neg = args.get("in-neg", "0");
      spec.out_pos = args.get("out");
      spec.out_neg = args.get("out-neg", "0");

      symref::refgen::AdaptiveOptions options;
      options.sigma = args.get_int("sigma", 6);
      options.max_iterations = args.get_int("max-iterations", 64);
      options.threads = args.get_int("threads", 1);

      const bool want_sweep = args.has("sweep");
      const bool want_poles = args.has("poles");
      const bool want_param_sweep = args.has("sweep-param") || args.has("mc-param");
      const bool want_simplify = args.has("simplify");
      if (args.has("sweep-param") && args.has("mc-param")) {
        std::fprintf(stderr, "error: --sweep-param and --mc-param are mutually exclusive\n");
        return 2;
      }
      if (args.has("refgen") || (!want_sweep && !want_poles && !want_param_sweep &&
                                 !want_simplify && !want_op && !want_tran)) {
        AnyRequest request;
        request.type = AnyRequest::Type::kRefgen;
        request.refgen = {spec, options};
        requests.push_back(std::move(request));
      }
      if (want_sweep) {
        AnyRequest request;
        request.type = AnyRequest::Type::kSweep;
        request.sweep.spec = spec;
        request.sweep.threads = options.threads;
        if (!parse_sweep_range(args.get("sweep"), &request.sweep)) {
          std::fprintf(stderr, "error: bad --sweep range '%s' (want f_start:f_stop[:ppd])\n",
                       args.get("sweep").c_str());
          return 2;
        }
        requests.push_back(std::move(request));
      }
      if (want_poles) {
        AnyRequest request;
        request.type = AnyRequest::Type::kPolesZeros;
        request.poles_zeros = {spec, options};
        requests.push_back(std::move(request));
      }
      if (want_param_sweep) {
        AnyRequest request;
        request.type = AnyRequest::Type::kParamSweep;
        symref::api::ParamSweepRequest& sweep = request.param_sweep;
        sweep.spec = spec;
        sweep.threads = options.threads;
        if (args.has("sweep-param")) {
          sweep.mode = symref::api::ParamSweepRequest::Mode::kGrid;
          if (!parse_grid_axes(args.get("sweep-param"), &sweep.axes)) {
            std::fprintf(stderr,
                         "error: bad --sweep-param '%s' (want name:from:to:count[:log],...)\n",
                         args.get("sweep-param").c_str());
            return 2;
          }
        } else {
          sweep.mode = symref::api::ParamSweepRequest::Mode::kMonteCarlo;
          if (!parse_mc_dists(args.get("mc-param"), &sweep.dists)) {
            std::fprintf(
                stderr,
                "error: bad --mc-param '%s' (want name:nominal:rel_sigma[:uniform],...)\n",
                args.get("mc-param").c_str());
            return 2;
          }
          sweep.samples = args.get_int("mc-samples", 64);
          const double seed = args.get_double("seed", 0.0);
          if (seed < 0.0 || seed != static_cast<double>(static_cast<std::uint64_t>(seed))) {
            std::fprintf(stderr, "error: bad --seed '%s'\n", args.get("seed").c_str());
            return 2;
          }
          sweep.seed = static_cast<std::uint64_t>(seed);
        }
        if (args.has("probe")) {
          symref::api::SweepRequest probe;
          if (!parse_sweep_range(args.get("probe"), &probe)) {
            std::fprintf(stderr, "error: bad --probe range '%s' (want f_start:f_stop[:ppd])\n",
                         args.get("probe").c_str());
            return 2;
          }
          sweep.f_start_hz = probe.f_start_hz;
          sweep.f_stop_hz = probe.f_stop_hz;
          sweep.points_per_decade = probe.points_per_decade;
        }
        requests.push_back(std::move(request));
      }
      if (want_simplify) {
        AnyRequest request;
        request.type = AnyRequest::Type::kSimplify;
        request.simplify.spec = spec;
        request.simplify.options.engine = options;
        request.simplify.options.error_budget = args.get_double("error-budget", 0.01);
        if (request.simplify.options.error_budget <= 0.0) {
          std::fprintf(stderr, "error: bad --error-budget '%s' (want a value > 0)\n",
                       args.get("error-budget").c_str());
          return 2;
        }
        if (args.has("band") && !parse_band(args.get("band"), &request.simplify)) {
          std::fprintf(stderr,
                       "error: bad --band '%s' (want f_start:f_stop[:points], points >= 2)\n",
                       args.get("band").c_str());
          return 2;
        }
        requests.push_back(std::move(request));
    }
    }
  }
  // --kernel applies to every request of the session (including ones read
  // from a --requests file). Results are bit-identical either way, so the
  // override is safe — it only selects the replay implementation.
  if (args.has("kernel")) {
    const std::string kernel_name = args.get("kernel");
    symref::sparse::ReplayKernel kernel = symref::sparse::ReplayKernel::kScalar;
    if (kernel_name == "batched") {
      kernel = symref::sparse::ReplayKernel::kBatched;
    } else if (kernel_name != "scalar") {
      std::fprintf(stderr, "error: bad --kernel '%s' (want scalar or batched)\n",
                   kernel_name.c_str());
      return 2;
    }
    for (AnyRequest& request : requests) {
      switch (request.type) {
        case AnyRequest::Type::kRefgen: request.refgen.options.kernel = kernel; break;
        case AnyRequest::Type::kPolesZeros: request.poles_zeros.options.kernel = kernel; break;
        case AnyRequest::Type::kSweep: request.sweep.kernel = kernel; break;
        case AnyRequest::Type::kParamSweep: request.param_sweep.kernel = kernel; break;
        case AnyRequest::Type::kSimplify:
          request.simplify.options.engine.kernel = kernel;
          break;
        case AnyRequest::Type::kBatch:
          for (symref::api::RefgenRequest& item : request.batch.items) {
            item.options.kernel = kernel;
          }
          break;
        case AnyRequest::Type::kOp: break;       // bias is solved at compile
        case AnyRequest::Type::kTransient: break;  // serial time stepping
      }
    }
  }
  // --auto-linearize marks every AC-family request of the session (including
  // ones read from a --requests file) — the explicit opt-in a device-bearing
  // netlist requires before its linearized circuit is analyzed.
  if (args.has("auto-linearize")) {
    for (AnyRequest& request : requests) {
      switch (request.type) {
        case AnyRequest::Type::kRefgen: request.refgen.auto_linearize = true; break;
        case AnyRequest::Type::kSweep: request.sweep.auto_linearize = true; break;
        case AnyRequest::Type::kPolesZeros:
          request.poles_zeros.auto_linearize = true;
          break;
        case AnyRequest::Type::kParamSweep:
          request.param_sweep.auto_linearize = true;
          break;
        case AnyRequest::Type::kSimplify: request.simplify.auto_linearize = true; break;
        case AnyRequest::Type::kBatch:
          for (symref::api::RefgenRequest& item : request.batch.items) {
            item.auto_linearize = true;
          }
          break;
        case AnyRequest::Type::kOp: break;  // op serves the bias itself
        case AnyRequest::Type::kTransient:
          break;  // transient always runs the large-signal netlist
      }
    }
  }
  if (progress) {
    for (AnyRequest& request : requests) {
      auto observer = [](const symref::refgen::IterationRecord& record) {
        std::fprintf(stderr, "  iter %d (%s): f=%.3g g=%.3g points=%d den+%d num+%d\n",
                     record.index, symref::refgen::purpose_name(record.purpose),
                     record.f_scale, record.g_scale, record.points,
                     record.den_new_coefficients, record.num_new_coefficients);
      };
      if (request.type == AnyRequest::Type::kRefgen) {
        request.refgen.options.on_iteration = observer;
      } else if (request.type == AnyRequest::Type::kPolesZeros) {
        request.poles_zeros.options.on_iteration = observer;
      } else if (request.type == AnyRequest::Type::kSimplify) {
        request.simplify.options.engine.on_iteration = observer;
      }
    }
  }

  // --- Remote session (--connect): the daemon executes, we render -----------
  if (args.has("connect")) {
    // An io_error session (connection died mid-flight) is transient from
    // the client's seat: with --retry, re-dial and replay the whole session
    // — requests are idempotent (and store-backed daemons replay warm).
    const int retries = args.get_int("retry", 0);
    int code = 0;
    for (int attempt = 0;; ++attempt) {
      code = run_connected(args, netlist_text, requests, json_mode, progress);
      if (code != exit_code_for(StatusCode::kIoError) || attempt >= retries) break;
      std::fprintf(stderr, "refgen: session failed with io_error; retrying\n");
      std::this_thread::sleep_for(retry_backoff(attempt));
    }
    return code;
  }

  // --- Local --timeout: one cancellation source covers the whole session ----
  symref::support::CancellationSource timeout_source;
  std::unique_ptr<Watchdog> watchdog;
  if (args.has("timeout")) {
    const double seconds = args.get_double("timeout", 0.0);
    if (seconds <= 0.0) {
      std::fprintf(stderr, "error: bad --timeout '%s' (want seconds > 0)\n",
                   args.get("timeout").c_str());
      return 2;
    }
    const auto token = timeout_source.token();
    for (AnyRequest& request : requests) {
      switch (request.type) {
        case AnyRequest::Type::kRefgen: request.refgen.options.cancel = token; break;
        case AnyRequest::Type::kSweep: request.sweep.cancel = token; break;
        case AnyRequest::Type::kPolesZeros:
          request.poles_zeros.options.cancel = token;
          break;
        case AnyRequest::Type::kBatch:
          for (auto& item : request.batch.items) item.options.cancel = token;
          break;
        case AnyRequest::Type::kParamSweep: request.param_sweep.cancel = token; break;
        case AnyRequest::Type::kSimplify:
          request.simplify.options.engine.cancel = token;
          break;
        case AnyRequest::Type::kOp: request.op.cancel = token; break;
        case AnyRequest::Type::kTransient: request.transient.cancel = token; break;
      }
    }
    watchdog = std::make_unique<Watchdog>(seconds, timeout_source);
  }

  // --- Compile once, serve the session --------------------------------------
  const symref::api::Service service;
  auto compiled = service.compile_netlist(netlist_text, args.get("name"));
  if (!compiled.ok()) {
    if (json_mode) {
      // Keep the documented envelope shape even on compile failure
      // ("circuit" is only present when compilation succeeded).
      Json output = Json::object();
      output.set("tool", "refgen");
      output.set("status", symref::api::to_json(compiled.status()));
      output.set("ok", false);
      output.set("responses", Json::array());
      std::printf("%s\n", output.dump(2).c_str());
    }
    std::fprintf(stderr, "error: %s\n", compiled.status().to_string().c_str());
    return exit_code_for(compiled.status().code());
  }
  const symref::api::CircuitHandle handle = compiled.take();
  if (!json_mode) std::fprintf(stderr, "%s\n", handle.summary().c_str());

  FailureTracker failures;
  Json responses = Json::array();
  for (const AnyRequest& request : requests) {
    Json payload;
    Status status;
    switch (request.type) {
      case AnyRequest::Type::kRefgen: {
        const auto response = service.refgen(handle, request.refgen);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_refgen_text(response.value(), args.has("emit-reference"));
        } else {
          payload = symref::api::error_response("refgen", status);
        }
        break;
      }
      case AnyRequest::Type::kSweep: {
        const auto response = service.sweep(handle, request.sweep);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_sweep_text(response.value());
        } else {
          payload = symref::api::error_response("sweep", status);
        }
        break;
      }
      case AnyRequest::Type::kPolesZeros: {
        const auto response = service.poles_zeros(handle, request.poles_zeros);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_poles_zeros_text(response.value());
        } else {
          payload = symref::api::error_response("poles_zeros", status);
        }
        break;
      }
      case AnyRequest::Type::kBatch: {
        const auto response = service.batch(handle, request.batch);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_batch_text(response.value());
          // A batch call succeeds as a whole; surface the first item
          // failure for the exit code.
          for (const auto& item : response.value().items) failures.record(item.status);
        } else {
          payload = symref::api::error_response("batch", status);
        }
        break;
      }
      case AnyRequest::Type::kParamSweep: {
        const auto response = service.param_sweep(handle, request.param_sweep);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_param_sweep_text(response.value());
        } else {
          payload = symref::api::error_response("param_sweep", status);
        }
        break;
      }
      case AnyRequest::Type::kSimplify: {
        const auto response = service.simplify(handle, request.simplify);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_simplify_text(response.value());
        } else {
          payload = symref::api::error_response("simplify", status);
        }
        break;
      }
      case AnyRequest::Type::kOp: {
        const auto response = service.op(handle, request.op);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_op_text(response.value());
        } else {
          payload = symref::api::error_response("op", status);
        }
        break;
      }
      case AnyRequest::Type::kTransient: {
        const auto response = service.transient(handle, request.transient);
        status = response.status();
        if (response.ok()) {
          payload = symref::api::to_json(response.value());
          if (!json_mode) print_transient_text(response.value());
        } else {
          payload = symref::api::error_response("transient", status);
        }
        break;
      }
    }
    failures.record(status);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    }
    responses.push_back(std::move(payload));
  }

  if (json_mode) {
    Json circuit = Json::object();
    circuit.set("name", handle.name());
    circuit.set("summary", handle.summary());
    circuit.set("nodes", handle.circuit().node_count());
    circuit.set("elements", static_cast<double>(handle.circuit().element_count()));
    circuit.set("dim", handle.dim());
    circuit.set("order_bound", handle.order_bound());

    Json output = Json::object();
    output.set("tool", "refgen");
    output.set("status", symref::api::to_json(Status()));
    output.set("circuit", std::move(circuit));
    output.set("ok", failures.exit_code() == 0);
    output.set("responses", std::move(responses));

    const std::string path = args.get("json", "-");
    const std::string text = output.dump(2);
    if (path == "-" || path.empty()) {
      std::printf("%s\n", text.c_str());
    } else {
      std::ofstream file(path);
      file << text << '\n';
      if (!file) {
        std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
        return 2;
      }
    }
  }
  return failures.exit_code();
}
