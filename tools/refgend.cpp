// refgend: the reference-generation engine as a session daemon.
//
// Speaks the line-delimited JSON protocol of api/protocol.h (methods:
// compile, submit, poll, wait, cancel, list, evict, stats, shutdown;
// server-pushed progress/done events). Circuits compile once into a shared
// registry; every analysis runs as an asynchronous job on a fixed worker
// pool, so many clients (or one scripted session) share warm plan caches.
//
//   $ refgend                          # one session on stdin/stdout
//   $ refgend --listen=7171           # concurrent clients on 127.0.0.1:7171
//   $ refgend --listen=0              # ephemeral port (printed on stdout)
//
// Flags:
//   --workers=N     job worker lanes (default: hardware threads)
//   --listen=PORT   serve TCP on 127.0.0.1:PORT instead of stdio;
//                   prints "refgend: listening on 127.0.0.1:<port>" first
//   --max-cached=N  per-spec response-cache bound (default 64)
//   --max-queue=N   bound on jobs waiting for a worker (default unbounded);
//                   a submit that finds the queue full fails kOverloaded
//   --store=DIR     crash-safe reference store: completed responses persist
//                   to DIR and are replayed byte-identically across
//                   restarts (docs/api.md "Reference store")
//
// stdio mode serves exactly one session and exits at EOF or shutdown. TCP
// mode serves until any client sends shutdown or the process receives
// SIGTERM/SIGINT; either way the daemon stops accepting, drains in-flight
// jobs, unblocks every session, and exits cleanly. A scripted session, end
// to end (printf '%s\n' LINE... | refgend):
//
//   {"id":1,"method":"compile","params":{"netlist":"R1 in out 1k ..."}}
//   {"id":2,"method":"submit","params":{"circuit_id":"c1","request":
//      {"type":"refgen","spec":{"in":"in","out":"out"}},"progress":true}}
//   {"id":3,"method":"wait","params":{"job_id":"j1"}}
//   {"id":4,"method":"shutdown"}
#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/protocol.h"
#include "support/cli.h"
#include "support/fault_injection.h"
#include "transport_posix.h"

namespace {

using symref::api::protocol::ServerCore;
using symref::api::protocol::ServerOptions;
using symref::api::protocol::Session;

/// Set by the SIGTERM/SIGINT handler; polled by the accept loop. sigaction
/// is installed without SA_RESTART so a signal also interrupts a blocking
/// poll/accept promptly.
volatile std::sig_atomic_t g_signal_received = 0;

void on_terminate_signal(int signal_number) { g_signal_received = signal_number; }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = on_terminate_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let signals interrupt poll()
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

/// Wait (bounded) for every queued/running job to reach kDone, so a SIGTERM
/// shutdown never abandons accepted work mid-flight.
void drain_jobs(ServerCore& core, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point give_up = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool busy = false;
    for (const symref::api::JobInfo& info : core.jobs().list()) {
      if (info.state != symref::api::JobState::kDone) {
        busy = true;
        break;
      }
    }
    if (!busy) return;
    if (Clock::now() >= give_up) {
      std::fprintf(stderr, "refgend: drain timeout; cancelling remaining jobs\n");
      for (const symref::api::JobInfo& info : core.jobs().list()) core.jobs().cancel(info.id);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int serve_stdio(ServerCore& core) {
  auto transport =
      std::make_shared<symref::api::protocol::IostreamTransport>(std::cin, std::cout);
  Session session(core, std::move(transport));
  session.serve();
  return 0;
}

int serve_tcp(ServerCore& core, int port) {
  std::string error;
  int bound_port = 0;
  const int listen_fd = symref::tools::listen_on(port, &bound_port, &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "refgend: %s\n", error.c_str());
    return 2;
  }
  // Announce the bound port on stdout (scripts with --listen=0 parse it).
  std::printf("refgend: listening on 127.0.0.1:%d\n", bound_port);
  std::fflush(stdout);

  std::mutex clients_mutex;
  std::vector<int> client_fds;
  std::vector<std::thread> sessions;
  while (!core.shutdown_requested() && g_signal_received == 0) {
    int accept_errno = 0;
    const int fd =
        symref::tools::accept_client(listen_fd, /*timeout_ms=*/200, &accept_errno);
    if (fd < 0) {
      // EINTR (a signal — the loop condition decides), ECONNABORTED, EMFILE
      // and friends are all transient at this level: log non-timeouts and
      // keep serving. Only the loop conditions end the daemon.
      if (accept_errno != 0 && accept_errno != EINTR) {
        std::fprintf(stderr, "refgend: accept: %s (retrying)\n",
                     std::strerror(accept_errno));
      }
      continue;
    }
    if (symref::support::fault("socket_io")) {
      // Chaos mode: drop the freshly accepted connection, as a network
      // hiccup would. Clients with --retry reconnect and resume.
      ::close(fd);
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(clients_mutex);
      client_fds.push_back(fd);
    }
    sessions.emplace_back([&core, fd] {
      // The transport owns (and eventually closes) fd; the daemon only ever
      // shutdown(2)s it to break the read loop.
      Session session(core, std::make_shared<symref::tools::FdTransport>(fd));
      session.serve();
    });
  }
  ::close(listen_fd);
  if (g_signal_received != 0 && !core.shutdown_requested()) {
    // Graceful signal shutdown: finish accepted work, then stop sessions.
    std::fprintf(stderr, "refgend: signal %d: draining in-flight jobs\n",
                 static_cast<int>(g_signal_received));
    drain_jobs(core, /*timeout_ms=*/30000);
    core.request_shutdown();
  }
  // Unblock sessions parked in read_line so their threads can finish.
  {
    const std::lock_guard<std::mutex> lock(clients_mutex);
    for (const int fd : client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& session : sessions) session.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(
      argc, argv, {"workers", "listen", "max-cached", "max-queue", "store"});
  if (!args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: refgend [--workers=N] [--listen=PORT] [--max-cached=N] "
                 "[--max-queue=N] [--store=DIR]\n");
    return 2;
  }
  ServerOptions options;
  options.workers = args.get_int("workers", 0);
  const int max_cached = args.get_int("max-cached", 64);
  options.service.max_cached_responses =
      max_cached < 0 ? 0 : static_cast<std::size_t>(max_cached);
  const int max_queue = args.get_int("max-queue", 0);
  options.max_queue_depth = max_queue < 0 ? 0 : static_cast<std::size_t>(max_queue);
  options.store_dir = args.get("store");
  ServerCore core(options);
  if (symref::support::BlobStore* store = core.store();
      store != nullptr && !store->ok()) {
    std::fprintf(stderr, "refgend: store disabled: %s\n", store->error().c_str());
  }
  install_signal_handlers();
  if (args.has("listen")) return serve_tcp(core, args.get_int("listen", 0));
  return serve_stdio(core);
}
