// refgend: the reference-generation engine as a session daemon.
//
// Speaks the line-delimited JSON protocol of api/protocol.h (methods:
// compile, submit, poll, wait, cancel, list, evict, stats, shutdown;
// server-pushed progress/done events). Circuits compile once into a shared
// registry; every analysis runs as an asynchronous job on a fixed worker
// pool, so many clients (or one scripted session) share warm plan caches.
//
//   $ refgend                          # one session on stdin/stdout
//   $ refgend --listen=7171           # concurrent clients on 127.0.0.1:7171
//   $ refgend --listen=0              # ephemeral port (printed on stdout)
//
// Flags:
//   --workers=N     job worker lanes (default: hardware threads)
//   --listen=PORT   serve TCP on 127.0.0.1:PORT instead of stdio;
//                   prints "refgend: listening on 127.0.0.1:<port>" first
//   --max-cached=N  per-spec response-cache bound (default 64)
//
// stdio mode serves exactly one session and exits at EOF or shutdown. TCP
// mode serves until any client sends shutdown; the daemon then unblocks
// every session and exits cleanly. A scripted session, end to end
// (printf '%s\n' LINE... | refgend):
//
//   {"id":1,"method":"compile","params":{"netlist":"R1 in out 1k ..."}}
//   {"id":2,"method":"submit","params":{"circuit_id":"c1","request":
//      {"type":"refgen","spec":{"in":"in","out":"out"}},"progress":true}}
//   {"id":3,"method":"wait","params":{"job_id":"j1"}}
//   {"id":4,"method":"shutdown"}
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/protocol.h"
#include "support/cli.h"
#include "transport_posix.h"

namespace {

using symref::api::protocol::ServerCore;
using symref::api::protocol::ServerOptions;
using symref::api::protocol::Session;

int serve_stdio(ServerCore& core) {
  auto transport =
      std::make_shared<symref::api::protocol::IostreamTransport>(std::cin, std::cout);
  Session session(core, std::move(transport));
  session.serve();
  return 0;
}

int serve_tcp(ServerCore& core, int port) {
  std::string error;
  int bound_port = 0;
  const int listen_fd = symref::tools::listen_on(port, &bound_port, &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "refgend: %s\n", error.c_str());
    return 2;
  }
  // Announce the bound port on stdout (scripts with --listen=0 parse it).
  std::printf("refgend: listening on 127.0.0.1:%d\n", bound_port);
  std::fflush(stdout);

  std::mutex clients_mutex;
  std::vector<int> client_fds;
  std::vector<std::thread> sessions;
  while (!core.shutdown_requested()) {
    const int fd = symref::tools::accept_client(listen_fd, /*timeout_ms=*/200);
    if (fd < 0) continue;
    {
      const std::lock_guard<std::mutex> lock(clients_mutex);
      client_fds.push_back(fd);
    }
    sessions.emplace_back([&core, fd] {
      // The transport owns (and eventually closes) fd; the daemon only ever
      // shutdown(2)s it to break the read loop.
      Session session(core, std::make_shared<symref::tools::FdTransport>(fd));
      session.serve();
    });
  }
  ::close(listen_fd);
  // Unblock sessions parked in read_line so their threads can finish.
  {
    const std::lock_guard<std::mutex> lock(clients_mutex);
    for (const int fd : client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& session : sessions) session.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv, {"workers", "listen", "max-cached"});
  if (!args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: refgend [--workers=N] [--listen=PORT] [--max-cached=N]\n");
    return 2;
  }
  ServerOptions options;
  options.workers = args.get_int("workers", 0);
  const int max_cached = args.get_int("max-cached", 64);
  options.service.max_cached_responses =
      max_cached < 0 ? 0 : static_cast<std::size_t>(max_cached);
  ServerCore core(options);
  if (args.has("listen")) return serve_tcp(core, args.get_int("listen", 0));
  return serve_stdio(core);
}
