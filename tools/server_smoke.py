#!/usr/bin/env python3
"""Smoke-test the refgend daemon over stdio.

Usage: server_smoke.py <refgend> <refgen> <netlist>

Seven scenarios, all against the bundled netlist (the transient scenario
builds its own small nonlinear deck — the bundled models have no
time-varying sources):
  1. Four CONCURRENT stdio-scripted sessions (one refgend process each):
     compile + submit(progress) + wait + shutdown. Validates the JSON
     event-stream shape and that every session's reference payload is
     bit-identical to a direct api::Service run (tools/refgen --json).
  2. A cancellation session on a single-worker daemon: the second submitted
     job is cancelled while queued and must come back as "cancelled",
     while the first job still completes.
  3. Error replies: unknown circuit ids surface as not_found.
  4. A Monte-Carlo param_sweep job on the daemon at 8 worker threads whose
     sample payloads are byte-identical to a direct 1-thread refgen CLI run
     (the determinism contract of the sweep engine, over the wire).
  5. A simplify job (reference-driven symbolic simplification) on the
     daemon at 8 worker threads with the batched kernel, byte-identical to
     a direct 1-thread scalar refgen --simplify CLI run, certificate under
     budget. Runs on the reduced ua741_core.cir next to the netlist (the
     full model is not sparsely representable at a 1% budget).
  6. A transient job (nonlinear peak detector, fixed-step trapezoidal) on
     the daemon whose hex-float waveform points are byte-identical to a
     direct refgen --tran CLI run, with the step-bucket plan probe
     (fresh_factorizations == 3) asserted on both sides.
  7. Crash-safe reference store: a daemon with --store is killed with
     SIGKILL (no shutdown, no flush) right after its result lands on disk;
     a restarted daemon sharing the store dir must reply "stored": true
     with a result byte-identical to the pre-crash response. A corrupted
     store entry must be quarantined (<key>.corrupt) and recomputed.

Set REFGEN_CHAOS=1 to additionally run every store-scenario daemon plus a
retry session under low-probability injected faults (REFGEN_FAULT): results
must still come back ok and bit-identical to the clean baseline.
"""
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def lines_of(output):
    parsed = []
    for line in output.splitlines():
        line = line.strip()
        if not line:
            continue
        parsed.append(json.loads(line))  # every line must be valid JSON
    return parsed


def reply(messages, rpc_id):
    found = [m for m in messages if m.get("id") == rpc_id]
    assert found, f"no reply with id {rpc_id}: {messages}"
    assert "result" in found[0], f"reply {rpc_id} is an error: {found[0]}"
    return found[0]["result"]


def run_session(daemon, script, args=(), env=None):
    proc = subprocess.Popen(
        [daemon, *args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    out, err = proc.communicate("".join(json.dumps(m) + "\n" for m in script), timeout=120)
    assert proc.returncode == 0, f"refgend exited {proc.returncode}: {err}"
    return lines_of(out)


SPEC = {"in": "inp", "in_neg": "inn", "out": "vo"}


def main():
    daemon, refgen, netlist_path = sys.argv[1], sys.argv[2], sys.argv[3]
    netlist = open(netlist_path).read()

    # --- Direct facade baseline (bit-exact reference payload) --------------
    direct = subprocess.run(
        [refgen, netlist_path, "--in=inp", "--in-neg=inn", "--out=vo", "--json=-"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert direct.returncode == 0, direct.stderr
    baseline = json.loads(direct.stdout)["responses"][0]
    assert baseline["status"]["code"] == "ok" and baseline["complete"] is True
    expected_reference = json.dumps(baseline["reference"], sort_keys=True)

    # --- 1. Four concurrent stdio-scripted sessions ------------------------
    script = [
        {"id": 1, "method": "compile", "params": {"netlist": netlist, "name": "ua741"}},
        {
            "id": 2,
            "method": "submit",
            "params": {
                "circuit_id": "c1",
                "request": {"type": "refgen", "spec": SPEC},
                "progress": True,
            },
        },
        {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 4, "method": "shutdown"},
    ]
    procs = [
        subprocess.Popen(
            [daemon], stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        for _ in range(4)
    ]
    payload = "".join(json.dumps(m) + "\n" for m in script)
    outputs = []
    for proc in procs:  # all four daemons now run their job concurrently
        proc.stdin.write(payload)
        proc.stdin.close()
    for proc in procs:
        out = proc.stdout.read()
        proc.wait(timeout=120)
        assert proc.returncode == 0, proc.stderr.read()
        outputs.append(lines_of(out))

    for i, messages in enumerate(outputs):
        compiled = reply(messages, 1)
        assert compiled["circuit_id"] == "c1" and compiled["dim"] > 30, compiled
        assert reply(messages, 2)["job_id"] == "j1"

        progress = [m for m in messages if m.get("event") == "progress"]
        assert len(progress) > 3, f"session {i}: no progress stream"
        for event in progress:
            assert event["job_id"] == "j1"
            for key in ("iteration", "purpose", "points", "evaluations",
                        "num_new_coefficients", "den_new_coefficients"):
                assert key in event, f"progress event missing {key}: {event}"
        done = [m for m in messages if m.get("event") == "done"]
        assert len(done) == 1 and done[0]["result"]["status"]["code"] == "ok"

        waited = reply(messages, 3)
        assert waited["state"] == "done" and waited["iterations"] > 3
        result = waited["result"]
        assert result["complete"] is True
        got = json.dumps(result["reference"], sort_keys=True)
        assert got == expected_reference, f"session {i}: reference differs from direct run"
        assert reply(messages, 4) == {"ok": True}
    print(f"4 concurrent sessions OK: results bit-identical to the direct facade, "
          f"{len(progress)} progress events each")

    # --- 2. Cancellation: queued job cancelled on a 1-worker daemon --------
    # j1 is a serial 6-item batch (tens of ms), so j2 is still queued behind
    # it on the single worker when the cancel lands.
    long_batch = {
        "type": "batch",
        "threads": 1,
        "items": [{"spec": SPEC, "options": {"sigma": s}} for s in range(5, 11)],
    }
    cancel_script = [
        {"id": 1, "method": "compile", "params": {"netlist": netlist}},
        {"id": 2, "method": "submit",
         "params": {"circuit_id": "c1", "request": long_batch}},
        {"id": 3, "method": "submit",
         "params": {"circuit_id": "c1",
                    "request": {"type": "refgen", "spec": SPEC,
                                "options": {"sigma": 8}}}},
        {"id": 4, "method": "cancel", "params": {"job_id": "j2"}},
        {"id": 5, "method": "poll", "params": {"job_id": "j2"}},
        {"id": 6, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 7, "method": "shutdown"},
    ]
    messages = run_session(daemon, cancel_script, args=["--workers=1"])
    assert reply(messages, 4)["cancelled"] is True
    polled = reply(messages, 5)
    assert polled["state"] == "done" and polled["cancel_requested"] is True
    assert polled["result"]["status"]["code"] == "cancelled", polled
    assert reply(messages, 6)["result"]["status"]["code"] == "ok"
    print("cancel OK: queued job cancelled, first job completed")

    # --- 3. Errors are structured ------------------------------------------
    error_script = [
        {"id": 1, "method": "submit",
         "params": {"circuit_id": "c9", "request": {"type": "refgen", "spec": SPEC}}},
        {"id": 2, "method": "shutdown"},
    ]
    messages = run_session(daemon, error_script)
    errors = [m for m in messages if m.get("id") == 1]
    assert errors and errors[0]["error"]["code"] == "not_found", errors
    print("error path OK: unknown circuit_id -> not_found")

    # --- 4. param_sweep: daemon (8 threads) vs direct CLI (1 thread) --------
    # Hex-float sample payloads must be byte-identical: one shared symbolic
    # plan, counter-based Monte-Carlo draws, order-independent replays.
    direct = subprocess.run(
        [refgen, netlist_path, "--in=inp", "--in-neg=inn", "--out=vo",
         "--mc-param=ccomp:30p:0.1", "--mc-samples=32", "--seed=5",
         "--probe=1:1e6:2", "--threads=1", "--json=-"],
        capture_output=True, text=True, timeout=120,
    )
    assert direct.returncode == 0, direct.stderr
    direct_sweep = json.loads(direct.stdout)["responses"][0]
    assert direct_sweep["status"]["code"] == "ok", direct_sweep
    assert direct_sweep["fresh_factorizations"] == 1, direct_sweep["fresh_factorizations"]

    sweep_request = {
        "type": "param_sweep", "spec": SPEC, "mode": "monte_carlo",
        "params": [{"name": "ccomp", "nominal": 30e-12, "rel_sigma": 0.1}],
        "samples": 32, "seed": 5,
        "f_start_hz": 1.0, "f_stop_hz": 1e6, "points_per_decade": 2,
        "threads": 8,
    }
    sweep_script = [
        {"id": 1, "method": "compile", "params": {"netlist": netlist}},
        {"id": 2, "method": "submit",
         "params": {"circuit_id": "c1", "request": sweep_request}},
        {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 4, "method": "shutdown"},
    ]
    messages = run_session(daemon, sweep_script)
    result = reply(messages, 3)["result"]
    assert result["status"]["code"] == "ok", result
    assert result["fresh_factorizations"] == 1, result["fresh_factorizations"]
    assert len(result["samples"]) == 32
    got = json.dumps(result["samples"], sort_keys=True)
    want = json.dumps(direct_sweep["samples"], sort_keys=True)
    assert got == want, "daemon param_sweep differs from the direct 1-thread run"
    print("param_sweep OK: 32 MC samples on the daemon byte-identical to the "
          "direct run, one shared factorization plan")

    # --- 5. simplify: daemon (8 threads, batched) vs direct CLI (1 thread) --
    # The simplified model, its error certificate, and every hex-float term
    # value must be byte-identical across thread counts and replay kernels.
    core_path = os.path.join(os.path.dirname(netlist_path), "ua741_core.cir")
    core_netlist = open(core_path).read()
    direct = subprocess.run(
        [refgen, core_path, "--in=inp", "--out=vo", "--simplify",
         "--error-budget=0.01", "--band=10:1e3:9", "--threads=1",
         "--kernel=scalar", "--json=-"],
        capture_output=True, text=True, timeout=300,
    )
    assert direct.returncode == 0, direct.stderr
    direct_simplify = json.loads(direct.stdout)["responses"][0]
    assert direct_simplify["status"]["code"] == "ok", direct_simplify
    cert = direct_simplify["certificate"]
    assert float.fromhex(cert["max_relative_error"]) <= cert["error_budget"], cert
    assert direct_simplify["kept_terms"] < direct_simplify["enumerated_terms"]

    simplify_request = {
        "type": "simplify", "spec": {"in": "inp", "out": "vo"},
        "error_budget": 0.01, "f_start_hz": 10.0, "f_stop_hz": 1e3,
        "band_points": 9,
        "options": {"threads": 8, "kernel": "batched"},
    }
    simplify_script = [
        {"id": 1, "method": "compile", "params": {"netlist": core_netlist}},
        {"id": 2, "method": "submit",
         "params": {"circuit_id": "c1", "request": simplify_request}},
        {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 4, "method": "shutdown"},
    ]
    messages = run_session(daemon, simplify_script)
    result = reply(messages, 3)["result"]
    assert result["status"]["code"] == "ok", result
    scrub = ("seconds", "engine_seconds", "from_cache")
    got = json.dumps({k: v for k, v in result.items() if k not in scrub},
                     sort_keys=True)
    want = json.dumps({k: v for k, v in direct_simplify.items() if k not in scrub},
                      sort_keys=True)
    assert got == want, "daemon simplify differs from the direct 1-thread run"
    print(f"simplify OK: {result['kept_terms']} of "
          f"{result['enumerated_terms']} terms certified at 1% on the daemon, "
          f"byte-identical to the direct scalar run")

    # --- 6. transient: daemon vs direct CLI, byte-identical waveform --------
    # Serial time stepping with shared-nothing per-request solvers: the
    # daemon's hex-float point array must match the direct run byte for
    # byte, and both sides must report the step-bucket replay contract
    # (bias + consistent init + ONE bucket plan = 3 fresh factorizations).
    tran_netlist = (
        "* peak detector\n"
        ".model dfast d is=1e-14 n=1\n"
        "vin in 0 dc 0 sin(0 5 1k)\n"
        "rs in a 10\n"
        "d1 a out dfast\n"
        "c1 out 0 1u\n"
        "rbleed out 0 100k\n"
        ".end\n")
    with tempfile.NamedTemporaryFile(
            "w", suffix=".cir", delete=False) as handle:
        handle.write(tran_netlist)
        tran_path = handle.name
    try:
        direct = subprocess.run(
            [refgen, tran_path, "--tran=2m:4u:trap:fixed", "--threads=1",
             "--json=-"],
            capture_output=True, text=True, timeout=120,
        )
        assert direct.returncode == 0, direct.stderr
        direct_tran = json.loads(direct.stdout)["responses"][0]
        assert direct_tran["status"]["code"] == "ok", direct_tran
        assert direct_tran["fresh_factorizations"] == 3, direct_tran
        assert direct_tran["newton_iterations"] > direct_tran["steps"]

        tran_request = {"type": "transient", "tstop": 2e-3, "tstep": 4e-6,
                        "method": "trap", "adaptive": False, "threads": 8}
        tran_script = [
            {"id": 1, "method": "compile", "params": {"netlist": tran_netlist}},
            {"id": 2, "method": "submit",
             "params": {"circuit_id": "c1", "request": tran_request}},
            {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
            {"id": 4, "method": "shutdown"},
        ]
        messages = run_session(daemon, tran_script)
        result = reply(messages, 3)["result"]
        assert result["status"]["code"] == "ok", result
        assert result["steps"] == 500 and len(result["points"]) == 501, result
        assert result["step_size_buckets"] == 1
        assert result["fresh_factorizations"] == 3, result["fresh_factorizations"]
        got = json.dumps(result["points"], sort_keys=True)
        want = json.dumps(direct_tran["points"], sort_keys=True)
        assert got == want, "daemon transient differs from the direct CLI run"
        print(f"transient OK: {int(result['steps'])} steps on the daemon "
              f"byte-identical to the direct run, one bucket plan, "
              f"{result['newton_iterations']} Newton iterations")
    finally:
        os.unlink(tran_path)

    # --- 7. Crash-safe store: kill -9, restart, byte-identical replay ------
    chaos = bool(os.environ.get("REFGEN_CHAOS"))
    chaos_env = None
    if chaos:
        # Low-probability, seeded faults in the engine and the work queue.
        # lu_pivot faults fall back to fresh factorizations bit-identically;
        # work_queue faults are ridden out by the submit retry policy.
        chaos_env = dict(os.environ,
                         REFGEN_FAULT="lu_pivot:0.05:1,work_queue:0.05:2")
    store_dir = tempfile.mkdtemp(prefix="refgen_store_")
    try:
        store_args = [f"--store={store_dir}"]
        request = {"type": "refgen", "spec": SPEC}
        submit_params = {"circuit_id": "c1", "request": request}
        if chaos:
            submit_params["max_attempts"] = 10
        warm_script = [
            {"id": 1, "method": "compile", "params": {"netlist": netlist}},
            {"id": 2, "method": "submit", "params": submit_params},
            {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
        ]

        # First daemon: compute, let the result persist, then pull the plug
        # with SIGKILL — no shutdown handshake, no flush, a real crash.
        proc = subprocess.Popen(
            [daemon, *store_args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=chaos_env,
        )
        for message in warm_script:
            proc.stdin.write(json.dumps(message) + "\n")
        proc.stdin.flush()
        messages = []
        while not any(m.get("id") == 3 for m in messages):
            line = proc.stdout.readline()
            assert line, "daemon closed stdout before the wait reply"
            messages.append(json.loads(line))
        assert "stored" not in reply(messages, 2), "cold store must not replay"
        pre_crash = reply(messages, 3)["result"]
        assert pre_crash["status"]["code"] == "ok", pre_crash
        # Persistence runs in the job-completion callback; the entry is only
        # visible under its final name after fsync+rename, so once listed it
        # is durable and the crash cannot lose it.
        deadline = time.time() + 30
        entries = []
        while not entries:
            assert time.time() < deadline, "store entry never appeared on disk"
            entries = [f for f in os.listdir(store_dir)
                       if not f.endswith((".tmp", ".corrupt"))]
            time.sleep(0.01)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=120)
        assert proc.returncode == -signal.SIGKILL

        # Restarted daemon sharing the store dir: warm replay, byte-identical.
        messages = run_session(
            daemon, [*warm_script, {"id": 4, "method": "shutdown"}],
            args=store_args, env=chaos_env)
        assert reply(messages, 2).get("stored") is True, reply(messages, 2)
        replayed = reply(messages, 3)["result"]
        assert json.dumps(replayed, sort_keys=True) == \
            json.dumps(pre_crash, sort_keys=True), \
            "replayed result differs from the pre-crash response"

        # Corrupt the entry (flip the first payload byte, header intact):
        # the next daemon must quarantine it and recompute from scratch.
        entry_path = os.path.join(store_dir, entries[0])
        with open(entry_path, "r+b") as handle:
            handle.readline()
            position = handle.tell()
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ 0x01]))
        messages = run_session(
            daemon,
            [*warm_script,
             {"id": 4, "method": "stats", "params": {"circuit_id": "c1"}},
             {"id": 5, "method": "shutdown"}],
            args=store_args, env=chaos_env)
        assert "stored" not in reply(messages, 2), "corrupt entry must not replay"
        recomputed = reply(messages, 3)["result"]
        assert recomputed["status"]["code"] == "ok", recomputed
        assert recomputed["complete"] is True, recomputed
        if chaos:
            # A fresh factorization after an injected pivot refusal may pick
            # a different (equally valid) pivot order on this 45-dim matrix,
            # so exact bytes are only guaranteed for store REPLAYS. The
            # recompute must still be a complete, structurally identical
            # reference.
            want = json.loads(expected_reference)
            got = recomputed["reference"]
            assert len(got["denominator"]["coefficients"]) == \
                len(want["denominator"]["coefficients"]), recomputed
        else:
            assert json.dumps(recomputed["reference"], sort_keys=True) == \
                expected_reference, "recomputed reference differs from baseline"
        store_stats = reply(messages, 4)["store"]
        assert store_stats["corrupt_quarantined"] == 1, store_stats
        assert os.path.exists(entry_path + ".corrupt"), "quarantine file missing"
        print("store OK: kill -9 survived, restart replayed the pre-crash "
              "response byte-identically, corrupt entry quarantined + recomputed"
              + (" [chaos: REFGEN_FAULT active]" if chaos else ""))
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
