#!/usr/bin/env python3
"""Smoke-test the refgend daemon over stdio.

Usage: server_smoke.py <refgend> <refgen> <netlist>

Three scenarios, all against the bundled netlist:
  1. Four CONCURRENT stdio-scripted sessions (one refgend process each):
     compile + submit(progress) + wait + shutdown. Validates the JSON
     event-stream shape and that every session's reference payload is
     bit-identical to a direct api::Service run (tools/refgen --json).
  2. A cancellation session on a single-worker daemon: the second submitted
     job is cancelled while queued and must come back as "cancelled",
     while the first job still completes.
  3. Error replies: unknown circuit ids surface as not_found.
  4. A Monte-Carlo param_sweep job on the daemon at 8 worker threads whose
     sample payloads are byte-identical to a direct 1-thread refgen CLI run
     (the determinism contract of the sweep engine, over the wire).
"""
import json
import subprocess
import sys


def lines_of(output):
    parsed = []
    for line in output.splitlines():
        line = line.strip()
        if not line:
            continue
        parsed.append(json.loads(line))  # every line must be valid JSON
    return parsed


def reply(messages, rpc_id):
    found = [m for m in messages if m.get("id") == rpc_id]
    assert found, f"no reply with id {rpc_id}: {messages}"
    assert "result" in found[0], f"reply {rpc_id} is an error: {found[0]}"
    return found[0]["result"]


def run_session(daemon, script, args=()):
    proc = subprocess.Popen(
        [daemon, *args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    out, err = proc.communicate("".join(json.dumps(m) + "\n" for m in script), timeout=120)
    assert proc.returncode == 0, f"refgend exited {proc.returncode}: {err}"
    return lines_of(out)


SPEC = {"in": "inp", "in_neg": "inn", "out": "vo"}


def main():
    daemon, refgen, netlist_path = sys.argv[1], sys.argv[2], sys.argv[3]
    netlist = open(netlist_path).read()

    # --- Direct facade baseline (bit-exact reference payload) --------------
    direct = subprocess.run(
        [refgen, netlist_path, "--in=inp", "--in-neg=inn", "--out=vo", "--json=-"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert direct.returncode == 0, direct.stderr
    baseline = json.loads(direct.stdout)["responses"][0]
    assert baseline["status"]["code"] == "ok" and baseline["complete"] is True
    expected_reference = json.dumps(baseline["reference"], sort_keys=True)

    # --- 1. Four concurrent stdio-scripted sessions ------------------------
    script = [
        {"id": 1, "method": "compile", "params": {"netlist": netlist, "name": "ua741"}},
        {
            "id": 2,
            "method": "submit",
            "params": {
                "circuit_id": "c1",
                "request": {"type": "refgen", "spec": SPEC},
                "progress": True,
            },
        },
        {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 4, "method": "shutdown"},
    ]
    procs = [
        subprocess.Popen(
            [daemon], stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        for _ in range(4)
    ]
    payload = "".join(json.dumps(m) + "\n" for m in script)
    outputs = []
    for proc in procs:  # all four daemons now run their job concurrently
        proc.stdin.write(payload)
        proc.stdin.close()
    for proc in procs:
        out = proc.stdout.read()
        proc.wait(timeout=120)
        assert proc.returncode == 0, proc.stderr.read()
        outputs.append(lines_of(out))

    for i, messages in enumerate(outputs):
        compiled = reply(messages, 1)
        assert compiled["circuit_id"] == "c1" and compiled["dim"] > 30, compiled
        assert reply(messages, 2)["job_id"] == "j1"

        progress = [m for m in messages if m.get("event") == "progress"]
        assert len(progress) > 3, f"session {i}: no progress stream"
        for event in progress:
            assert event["job_id"] == "j1"
            for key in ("iteration", "purpose", "points", "evaluations",
                        "num_new_coefficients", "den_new_coefficients"):
                assert key in event, f"progress event missing {key}: {event}"
        done = [m for m in messages if m.get("event") == "done"]
        assert len(done) == 1 and done[0]["result"]["status"]["code"] == "ok"

        waited = reply(messages, 3)
        assert waited["state"] == "done" and waited["iterations"] > 3
        result = waited["result"]
        assert result["complete"] is True
        got = json.dumps(result["reference"], sort_keys=True)
        assert got == expected_reference, f"session {i}: reference differs from direct run"
        assert reply(messages, 4) == {"ok": True}
    print(f"4 concurrent sessions OK: results bit-identical to the direct facade, "
          f"{len(progress)} progress events each")

    # --- 2. Cancellation: queued job cancelled on a 1-worker daemon --------
    # j1 is a serial 6-item batch (tens of ms), so j2 is still queued behind
    # it on the single worker when the cancel lands.
    long_batch = {
        "type": "batch",
        "threads": 1,
        "items": [{"spec": SPEC, "options": {"sigma": s}} for s in range(5, 11)],
    }
    cancel_script = [
        {"id": 1, "method": "compile", "params": {"netlist": netlist}},
        {"id": 2, "method": "submit",
         "params": {"circuit_id": "c1", "request": long_batch}},
        {"id": 3, "method": "submit",
         "params": {"circuit_id": "c1",
                    "request": {"type": "refgen", "spec": SPEC,
                                "options": {"sigma": 8}}}},
        {"id": 4, "method": "cancel", "params": {"job_id": "j2"}},
        {"id": 5, "method": "poll", "params": {"job_id": "j2"}},
        {"id": 6, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 7, "method": "shutdown"},
    ]
    messages = run_session(daemon, cancel_script, args=["--workers=1"])
    assert reply(messages, 4)["cancelled"] is True
    polled = reply(messages, 5)
    assert polled["state"] == "done" and polled["cancel_requested"] is True
    assert polled["result"]["status"]["code"] == "cancelled", polled
    assert reply(messages, 6)["result"]["status"]["code"] == "ok"
    print("cancel OK: queued job cancelled, first job completed")

    # --- 3. Errors are structured ------------------------------------------
    error_script = [
        {"id": 1, "method": "submit",
         "params": {"circuit_id": "c9", "request": {"type": "refgen", "spec": SPEC}}},
        {"id": 2, "method": "shutdown"},
    ]
    messages = run_session(daemon, error_script)
    errors = [m for m in messages if m.get("id") == 1]
    assert errors and errors[0]["error"]["code"] == "not_found", errors
    print("error path OK: unknown circuit_id -> not_found")

    # --- 4. param_sweep: daemon (8 threads) vs direct CLI (1 thread) --------
    # Hex-float sample payloads must be byte-identical: one shared symbolic
    # plan, counter-based Monte-Carlo draws, order-independent replays.
    direct = subprocess.run(
        [refgen, netlist_path, "--in=inp", "--in-neg=inn", "--out=vo",
         "--mc-param=ccomp:30p:0.1", "--mc-samples=32", "--seed=5",
         "--probe=1:1e6:2", "--threads=1", "--json=-"],
        capture_output=True, text=True, timeout=120,
    )
    assert direct.returncode == 0, direct.stderr
    direct_sweep = json.loads(direct.stdout)["responses"][0]
    assert direct_sweep["status"]["code"] == "ok", direct_sweep
    assert direct_sweep["fresh_factorizations"] == 1, direct_sweep["fresh_factorizations"]

    sweep_request = {
        "type": "param_sweep", "spec": SPEC, "mode": "monte_carlo",
        "params": [{"name": "ccomp", "nominal": 30e-12, "rel_sigma": 0.1}],
        "samples": 32, "seed": 5,
        "f_start_hz": 1.0, "f_stop_hz": 1e6, "points_per_decade": 2,
        "threads": 8,
    }
    sweep_script = [
        {"id": 1, "method": "compile", "params": {"netlist": netlist}},
        {"id": 2, "method": "submit",
         "params": {"circuit_id": "c1", "request": sweep_request}},
        {"id": 3, "method": "wait", "params": {"job_id": "j1"}},
        {"id": 4, "method": "shutdown"},
    ]
    messages = run_session(daemon, sweep_script)
    result = reply(messages, 3)["result"]
    assert result["status"]["code"] == "ok", result
    assert result["fresh_factorizations"] == 1, result["fresh_factorizations"]
    assert len(result["samples"]) == 32
    got = json.dumps(result["samples"], sort_keys=True)
    want = json.dumps(direct_sweep["samples"], sort_keys=True)
    assert got == want, "daemon param_sweep differs from the direct 1-thread run"
    print("param_sweep OK: 32 MC samples on the daemon byte-identical to the "
          "direct run, one shared factorization plan")


if __name__ == "__main__":
    main()
