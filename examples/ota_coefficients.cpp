// The paper's Table 1 scenario as an API walkthrough: why plain unit-circle
// interpolation fails on integrated circuits, and what scaling does.
//
//   $ ./ota_coefficients [--sigma=6]
//
// Runs three ways of computing the positive-feedback OTA's voltage-gain
// coefficients: no scaling, one fixed scaling, and the full adaptive engine,
// then cross-checks the adaptive result against the exact symbolic
// determinant expansion (tractable at this size).
#include <cstdio>

#include "api/service.h"
#include "circuits/ota.h"
#include "mna/nodal.h"
#include "netlist/canonical.h"
#include "refgen/adaptive.h"
#include "refgen/naive.h"
#include "support/cli.h"
#include "symbolic/det.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv);

  const auto ota = symref::circuits::ota_fig1();
  const auto canonical = symref::netlist::canonicalize(ota);
  const symref::mna::NodalSystem system(canonical);
  const auto spec = symref::circuits::ota_fig1_gain_spec();

  std::printf("%s\n", ota.summary().c_str());
  std::printf("order estimate (capacitor count): %d; graph-aware bound: %d\n\n",
              symref::circuits::kOtaFig1OrderEstimate, system.order_bound());

  symref::refgen::BaselineOptions baseline;
  baseline.sigma = args.get_int("sigma", 6);
  baseline.points = symref::circuits::kOtaFig1OrderEstimate + 1;

  const auto naive = symref::refgen::naive_interpolation(system, spec, baseline);
  std::printf("unit circle, no scaling : %d of %d denominator coefficients valid\n",
              naive.denominator_region.width(), naive.points);

  const auto fixed =
      symref::refgen::fixed_scale_interpolation(system, spec, 1e9, 1.0, baseline);
  std::printf("frequency scale 1e9     : %d of %d valid (region %s)\n",
              fixed.denominator_region.width(), fixed.points,
              fixed.denominator_region.to_string().c_str());

  symref::refgen::AdaptiveOptions options;
  options.sigma = baseline.sigma;
  const symref::api::Service service;
  const auto compiled = service.compile(ota, "ota");
  const auto adaptive_response =
      compiled.ok() ? service.refgen(compiled.value(), {spec, options})
                    : symref::api::Result<symref::api::RefgenResponse>(compiled.status());
  if (!adaptive_response.ok()) {
    std::fprintf(stderr, "refgen failed: %s\n",
                 adaptive_response.status().to_string().c_str());
    return 1;
  }
  const auto& adaptive = adaptive_response.value().result;
  std::printf("adaptive scaling        : complete=%s in %zu iterations\n\n",
              adaptive.complete ? "yes" : "no", adaptive.iterations.size());

  // Exact cross-check: symbolic cofactor expansion at the design point.
  const symref::symbolic::SymbolicNodalMatrix matrix(canonical);
  const auto transfer = symref::symbolic::symbolic_transfer(matrix, spec);
  const auto exact_den = transfer.denominator.coefficients(matrix.symbols());

  std::printf("denominator: adaptive engine vs exact symbolic expansion\n");
  std::printf("  %-4s %-16s %-16s %s\n", "s^i", "adaptive", "exact", "rel diff");
  const auto& den = adaptive.reference.denominator();
  for (int i = 0; i <= den.order_bound(); ++i) {
    const auto exact = exact_den.coeff(static_cast<std::size_t>(i));
    std::printf("  %-4d %-16s %-16s %.2e\n", i, den.at(i).value.to_string(6).c_str(),
                exact.to_string(6).c_str(),
                symref::numeric::relative_difference(den.at(i).value, exact));
  }
  return 0;
}
