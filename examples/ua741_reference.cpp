// The paper's flagship example: numerical reference generation for the
// µA741 operational amplifier's open-loop voltage gain.
//
//   $ ./ua741_reference [--sigma=6] [--no-deflation] [--trace] [--live]
//
// Prints the adaptive schedule (scale factors, valid regions, point counts),
// the assembled coefficient set spanning hundreds of decades, and the
// Fig. 2-style validation against a direct AC analysis. Runs through the
// api::Service facade; --live streams the schedule via the facade's
// iteration-progress observer while the engine works instead of after it.
#include <cstdio>

#include "api/service.h"
#include "circuits/ua741.h"
#include "refgen/validate.h"
#include "support/cli.h"
#include "support/log.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv);
  if (args.has("trace")) {
    symref::support::set_log_level(symref::support::LogLevel::Debug);
  }

  const symref::api::Service service;
  const auto compiled = service.compile(symref::circuits::ua741(), "ua741");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return 1;
  }
  const symref::api::CircuitHandle& handle = compiled.value();
  const auto spec = symref::circuits::ua741_gain_spec();
  std::printf("%s\n\n", handle.summary().c_str());

  symref::refgen::AdaptiveOptions options;
  options.sigma = args.get_int("sigma", 6);
  options.use_deflation = !args.has("no-deflation");
  if (args.has("live")) {
    options.on_iteration = [](const symref::refgen::IterationRecord& it) {
      std::printf("  live it%-2d %-10s f=%-11.4g g=%-11.4g points=%-3d (+%d den, +%d num)\n",
                  it.index, symref::refgen::purpose_name(it.purpose), it.f_scale, it.g_scale,
                  it.points, it.den_new_coefficients, it.num_new_coefficients);
    };
  }

  const auto response = service.refgen(handle, {spec, options});
  if (!response.ok()) {
    std::fprintf(stderr, "refgen failed: %s\n", response.status().to_string().c_str());
    return 1;
  }
  const auto& result = response.value().result;
  std::printf("termination: %s, %.1f ms, %d matrix factorizations\n\n",
              result.termination.c_str(), result.seconds * 1e3,
              result.total_evaluations);

  std::printf("schedule:\n");
  for (const auto& it : result.iterations) {
    std::printf("  it%-2d %-10s f=%-11.4g g=%-11.4g points=%-3d den %s  (+%d den, +%d num)\n",
                it.index, symref::refgen::purpose_name(it.purpose), it.f_scale, it.g_scale,
                it.points, it.den_region.to_string().c_str(), it.den_new_coefficients,
                it.num_new_coefficients);
  }

  const auto& den = result.reference.denominator();
  std::printf("\ndenominator: %d coefficients, s^0 = %s ... s^%d = %s\n",
              den.order_bound() + 1, den.at(0).value.to_string(6).c_str(),
              den.effective_order(),
              den.at(den.effective_order()).value.to_string(6).c_str());
  std::printf("total spread: %.0f decades (the paper's spans 1e-90 .. 1e-522)\n",
              den.at(0).value.log10_abs() -
                  den.at(den.effective_order()).value.log10_abs());

  const auto comparison =
      symref::refgen::compare_bode(result.reference, handle.circuit(), spec, 1.0, 100e6, 3);
  std::printf("\nFig. 2 check: max %.2e dB / %.2e deg deviation from the AC simulator\n",
              comparison.max_magnitude_error_db, comparison.max_phase_error_deg);
  double crossover = comparison.points.back().frequency_hz;
  for (const auto& p : comparison.points) {
    if (p.simulated_db < 0.0) {
      crossover = p.frequency_hz;
      break;
    }
  }
  std::printf("DC gain %.1f dB, unity-gain crossover near %.2g Hz (classic 741: ~1 MHz)\n",
              comparison.points.front().simulated_db, crossover);
  return 0;
}
