// Command-line reference generator: the library as a tool.
//
//   $ ./refgen_cli my_amplifier.cir --in=vin --out=vout [--in-neg=0]
//                  [--out-neg=0] [--transimpedance] [--sigma=6]
//                  [--bode] [--poles] [--emit-reference]
//
// Reads a SPICE-subset netlist from a file, runs the adaptive scaling
// engine, and prints the coefficients (optionally a Bode table, the poles/
// zeros, or the machine-readable reference format of refgen/io.h).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "mna/transfer.h"
#include "netlist/parser.h"
#include "numeric/roots.h"
#include "refgen/adaptive.h"
#include "refgen/io.h"
#include "refgen/validate.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv);
  if (args.positional().empty() || !args.has("in") || !args.has("out")) {
    std::fprintf(stderr,
                 "usage: refgen_cli <netlist-file> --in=<node> --out=<node>\n"
                 "       [--in-neg=<node>] [--out-neg=<node>] [--transimpedance]\n"
                 "       [--sigma=<digits>] [--bode] [--poles] [--emit-reference]\n");
    return 2;
  }

  std::ifstream file(args.positional().front());
  if (!file) {
    std::fprintf(stderr, "error: cannot open '%s'\n", args.positional().front().c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  symref::netlist::Circuit circuit;
  try {
    circuit = symref::netlist::parse_netlist(buffer.str());
  } catch (const symref::netlist::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "%s\n", circuit.summary().c_str());

  symref::mna::TransferSpec spec;
  spec.kind = args.has("transimpedance") ? symref::mna::TransferSpec::Kind::Transimpedance
                                         : symref::mna::TransferSpec::Kind::VoltageGain;
  spec.in_pos = args.get("in");
  spec.in_neg = args.get("in-neg", "0");
  spec.out_pos = args.get("out");
  spec.out_neg = args.get("out-neg", "0");

  symref::refgen::AdaptiveOptions options;
  options.sigma = args.get_int("sigma", 6);

  symref::refgen::AdaptiveResult result;
  try {
    result = symref::refgen::generate_reference(circuit, spec, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "engine: %s, %zu iterations, %d factorizations, %.1f ms\n",
               result.termination.c_str(), result.iterations.size(),
               result.total_evaluations, result.seconds * 1e3);
  if (!result.complete) return 1;

  if (args.has("emit-reference")) {
    symref::refgen::write_reference(std::cout, result.reference);
  } else {
    std::printf("%s", result.reference.describe(8).c_str());
  }

  if (args.has("bode")) {
    std::printf("\nfreq[Hz]  |H|[dB]  phase[deg]\n");
    for (const auto& p : result.reference.bode(1.0, 1e9, 3)) {
      std::printf("%9.3g  %8.3f  %9.3f\n", p.frequency_hz, p.magnitude_db, p.phase_deg);
    }
  }
  if (args.has("poles")) {
    const auto poles =
        symref::numeric::find_roots(result.reference.denominator().polynomial());
    std::printf("\npoles (rad/s):\n");
    for (const auto& p : poles.roots) {
      std::printf("  %13.5g %+13.5g j\n", p.real(), p.imag());
    }
    const auto zeros =
        symref::numeric::find_roots(result.reference.numerator().polynomial());
    std::printf("zeros (rad/s):\n");
    for (const auto& z : zeros.roots) {
      std::printf("  %13.5g %+13.5g j\n", z.real(), z.imag());
    }
  }
  return 0;
}
