// Poles and zeros from the interpolated coefficients (library extension).
//
//   $ ./poles_zeros
//
// Once the adaptive engine has produced exact numerator/denominator
// coefficients — even when they span hundreds of decades — their roots are
// the circuit's zeros and poles. Served through the facade: the
// PolesZerosRequest generates (or reuses) the reference and runs the
// Aberth-Ehrlich finder on a variable-scaled copy, so the dynamic range
// costs nothing.
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <complex>

#include "api/service.h"
#include "circuits/ua741.h"

int main() {
  const symref::api::Service service;
  const auto compiled = service.compile(symref::circuits::ua741(), "ua741");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return 1;
  }

  const auto response = service.poles_zeros(compiled.value(),
                                            {symref::circuits::ua741_gain_spec(), {}});
  if (!response.ok()) {
    std::fprintf(stderr, "poles_zeros failed: %s\n", response.status().to_string().c_str());
    return 1;
  }
  const auto& pz = response.value();
  std::printf("%zu poles (converged=%s), %zu zeros (converged=%s)\n\n", pz.poles.size(),
              pz.poles_converged ? "yes" : "no", pz.zeros.size(),
              pz.zeros_converged ? "yes" : "no");

  std::printf("dominant poles (Hz):\n");
  const std::size_t show = std::min<std::size_t>(pz.poles.size(), 10);
  for (std::size_t i = 0; i < show; ++i) {
    const auto p = pz.poles[i] / (2.0 * M_PI);
    std::printf("  p%-2zu  %12.4g %+12.4g j   |p| = %.4g\n", i, p.real(), p.imag(),
                std::abs(p));
  }
  std::printf("\nThe dominant pole (Miller compensation, ~5-10 Hz on a classic 741) and\n");
  std::printf("the unity-gain bandwidth pole cluster are read straight off the\n");
  std::printf("interpolated denominator — no eigenanalysis of the full MNA needed.\n");
  return 0;
}
