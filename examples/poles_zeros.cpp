// Poles and zeros from the interpolated coefficients (library extension).
//
//   $ ./poles_zeros
//
// Once the adaptive engine has produced exact numerator/denominator
// coefficients — even when they span hundreds of decades — their roots are
// the circuit's zeros and poles. The Aberth-Ehrlich finder runs on a
// variable-scaled copy, so the dynamic range costs nothing.
#include <cstdio>

#include <algorithm>

#include "circuits/ua741.h"
#include "numeric/roots.h"
#include "refgen/adaptive.h"

int main() {
  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  const auto result = symref::refgen::generate_reference(ua, spec);
  std::printf("reference: %s\n\n", result.termination.c_str());

  const auto poles = symref::numeric::find_roots(result.reference.denominator().polynomial());
  const auto zeros = symref::numeric::find_roots(result.reference.numerator().polynomial());
  std::printf("%zu poles (converged=%s), %zu zeros (converged=%s)\n\n", poles.roots.size(),
              poles.converged ? "yes" : "no", zeros.roots.size(),
              zeros.converged ? "yes" : "no");

  std::printf("dominant poles (Hz):\n");
  const std::size_t show = std::min<std::size_t>(poles.roots.size(), 10);
  for (std::size_t i = 0; i < show; ++i) {
    const auto p = poles.roots[i] / (2.0 * M_PI);
    std::printf("  p%-2zu  %12.4g %+12.4g j   |p| = %.4g\n", i, p.real(), p.imag(),
                std::abs(p));
  }
  std::printf("\nThe dominant pole (Miller compensation, ~5-10 Hz on a classic 741) and\n");
  std::printf("the unity-gain bandwidth pole cluster are read straight off the\n");
  std::printf("interpolated denominator — no eigenanalysis of the full MNA needed.\n");
  return 0;
}
