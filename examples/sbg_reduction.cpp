// Simplification Before Generation on the µA741.
//
//   $ ./sbg_reduction [--eps=0.05] [--fstart=10] [--fstop=1e6] [--max=40]
//
// Uses the interpolated numerical reference as the paper prescribes ("most
// accurate error control criteria compare a numerical evaluation of the
// simplified expression with a numerical estimate of the complete (exact)
// expression"): elements are opened/shorted greedily while the worst-case
// relative transfer error on the band stays below eps. The simplified
// netlist is printed in SPICE form.
#include <cstdio>

#include "circuits/ua741.h"
#include "netlist/writer.h"
#include "api/service.h"
#include "support/cli.h"
#include "symbolic/sbg.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv);

  const auto ua = symref::circuits::ua741();
  const auto spec = symref::circuits::ua741_gain_spec();
  std::printf("original: %s\n", ua.summary().c_str());

  const symref::api::Service service;
  const auto compiled = service.compile(ua, "ua741");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return 1;
  }
  const auto ref_response = service.refgen(compiled.value(), {spec, {}});
  if (!ref_response.ok()) {
    std::fprintf(stderr, "refgen failed: %s\n", ref_response.status().to_string().c_str());
    return 1;
  }
  const auto& reference = ref_response.value().result;
  std::printf("reference: %s\n\n", reference.termination.c_str());

  symref::symbolic::SbgOptions options;
  options.epsilon = args.get_double("eps", 0.05);
  options.f_start_hz = args.get_double("fstart", 10.0);
  options.f_stop_hz = args.get_double("fstop", 1e6);
  options.points_per_decade = 1;
  options.max_removals = static_cast<std::size_t>(args.get_int("max", 40));

  const auto result =
      symref::symbolic::simplify_before_generation(ua, spec, reference.reference, options);

  std::printf("removed %zu of %zu elements (eps=%.2g on %.3g..%.3g Hz):\n",
              result.actions.size(), result.original_elements, options.epsilon,
              options.f_start_hz, options.f_stop_hz);
  for (const auto& action : result.actions) {
    std::printf("  %-6s %-12s (error after: %.2e)\n",
                action.op == symref::symbolic::SbgAction::Op::Open ? "open" : "short",
                action.element.c_str(), action.error_after);
  }
  std::printf("\nsimplified: %s\n", result.simplified.summary().c_str());
  std::printf("\n--- simplified netlist ---\n%s",
              symref::netlist::write_netlist(result.simplified).c_str());
  return 0;
}
