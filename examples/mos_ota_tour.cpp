// CMOS OTA design tour: references, poles, sensitivities.
//
//   $ ./mos_ota_tour [--cl=2p] [--cc=1p] [--rz=0]
//
// Walks the two-stage Miller OTA through the full toolbox: adaptive
// reference generation, pole extraction (dominant pole, non-dominant pole,
// the Miller RHP zero and its cancellation by a nulling resistor), and the
// adjoint sensitivity ranking that tells a designer which elements actually
// set the response.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/service.h"
#include "circuits/mos_ota.h"
#include "mna/ac.h"
#include "mna/sensitivity.h"
#include "netlist/canonical.h"
#include "numeric/roots.h"
#include "refgen/adaptive.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv);
  symref::circuits::MosOtaOptions options;
  options.load_capacitance = args.get_double("cl", 2e-12);
  options.compensation_capacitance = args.get_double("cc", 1e-12);
  options.nulling_resistance = args.get_double("rz", 0.0);

  const auto ota = symref::circuits::two_stage_miller_ota(options);
  const auto spec = symref::circuits::two_stage_miller_ota_spec();
  std::printf("%s\n", ota.summary().c_str());

  const symref::api::Service service;
  const auto compiled = service.compile(ota, "mos-ota");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return 1;
  }
  const auto response = service.refgen(compiled.value(), {spec, {}});
  if (!response.ok()) {
    std::fprintf(stderr, "refgen failed: %s\n", response.status().to_string().c_str());
    return 1;
  }
  const auto& result = response.value().result;
  std::printf("reference: %s (%d factorizations, %.1f ms)\n\n",
              result.termination.c_str(), result.total_evaluations,
              result.seconds * 1e3);

  const symref::mna::AcSimulator sim(ota);
  std::printf("DC gain: %.1f dB\n", symref::mna::magnitude_db(sim.transfer(spec, 1.0)));

  const auto poles =
      symref::numeric::find_roots(result.reference.denominator().polynomial());
  std::printf("\npoles (Hz):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(poles.roots.size(), 5); ++i) {
    const auto p = poles.roots[i] / (2.0 * M_PI);
    std::printf("  p%zu  %12.4g %+12.4g j\n", i, p.real(), p.imag());
  }
  const auto zeros =
      symref::numeric::find_roots(result.reference.numerator().polynomial());
  std::printf("zeros (Hz):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(zeros.roots.size(), 3); ++i) {
    const auto z = zeros.roots[i] / (2.0 * M_PI);
    std::printf("  z%zu  %12.4g %+12.4g j   (%s half-plane)\n", i, z.real(), z.imag(),
                z.real() > 0 ? "right" : "left");
  }
  std::printf("(the Miller RHP zero sits near gm6/Cc; a nulling resistor --rz moves it)\n");

  // Adjoint sensitivity ranking at the unity-gain region.
  const auto canonical = symref::netlist::canonicalize(ota);
  auto ranking = symref::mna::band_sensitivities(canonical, spec, 1e3, 1e8, 1);
  std::sort(ranking.begin(), ranking.end(), [](const auto& a, const auto& b) {
    return std::abs(a.normalized) > std::abs(b.normalized);
  });
  std::printf("\nmost influential elements across 1kHz..100MHz (|y dH/dy / H|):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(ranking.size(), 8); ++i) {
    std::printf("  %-12s %.3g\n", ranking[i].element.c_str(),
                std::abs(ranking[i].normalized));
  }
  return 0;
}
