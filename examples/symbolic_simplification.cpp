// Simplification During Generation, end to end (the paper's motivation).
//
//   $ ./symbolic_simplification [--eps=0.01] [--coefficient=2]
//
// 1. Generate the numerical reference for the OTA's determinant with the
//    adaptive engine.
// 2. Feed each coefficient's reference to the SDG generator, which emits
//    symbolic terms in decreasing magnitude until eq. (3) is met.
// 3. Print the dominant terms — the human-readable simplified expression.
#include <cstdio>

#include "api/service.h"
#include "circuits/ota.h"
#include "netlist/canonical.h"
#include "support/cli.h"
#include "symbolic/det.h"
#include "symbolic/sdg.h"

int main(int argc, char** argv) {
  const symref::support::CliArgs args(argc, argv);
  const double eps = args.get_double("eps", 0.01);

  const auto ota = symref::circuits::ota_fig1();
  const auto canonical = symref::netlist::canonicalize(ota);
  const symref::symbolic::SymbolicNodalMatrix matrix(canonical);

  // Transimpedance denominator == the full determinant the SDG expands.
  const auto spec = symref::mna::TransferSpec::transimpedance("inp", "vo", "inn");
  const symref::api::Service service;
  const auto compiled = service.compile(ota, "ota");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return 1;
  }
  const auto ref_response = service.refgen(compiled.value(), {spec, {}});
  if (!ref_response.ok()) {
    std::fprintf(stderr, "refgen failed: %s\n", ref_response.status().to_string().c_str());
    return 1;
  }
  const auto& reference = ref_response.value().result;
  std::printf("reference: %s (%d matrix factorizations)\n\n",
              reference.termination.c_str(), reference.total_evaluations);

  const auto& den = reference.reference.denominator();
  for (int k = 0; k <= den.order_bound(); ++k) {
    if (!den.at(k).known() || den.at(k).value.is_zero()) continue;
    symref::symbolic::SdgOptions options;
    options.epsilon = eps;
    const auto result =
        symref::symbolic::generate_determinant_terms(matrix, k, den.at(k).value, options);

    std::printf("coefficient of s^%d  (reference %s):\n", k,
                den.at(k).value.to_string(5).c_str());
    std::printf("  %zu term(s) reach eps=%.0e (%s), residual error %.1e\n",
                result.generated(), eps, result.termination.c_str(),
                result.relative_error);
    const std::size_t show = std::min<std::size_t>(result.terms.size(), 6);
    for (std::size_t t = 0; t < show; ++t) {
      std::printf("    %-40s = %s\n",
                  result.terms[t].to_string(matrix.symbols()).c_str(),
                  result.terms[t].value(matrix.symbols()).to_string(4).c_str());
    }
    if (result.terms.size() > show) {
      std::printf("    ... %zu more\n", result.terms.size() - show);
    }
    std::printf("\n");
  }

  std::printf("Reading: with an accurate reference, eq. (3) stops the generation after\n");
  std::printf("the few dominant terms — the simplified symbolic formula a designer reads.\n");
  return 0;
}
