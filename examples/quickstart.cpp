// Quickstart: generate the numerical reference for a small filter.
//
//   $ ./quickstart
//
// Builds a two-pole RC filter, runs the adaptive scaling engine through the
// service facade, prints the exact transfer-function coefficients and
// validates them against a direct AC analysis. This is the whole public API
// in ~40 lines:
//
//   api::Service / CircuitHandle       - compile once, query many times
//   mna::TransferSpec                  - pick the network function
//   api::RefgenRequest                 - the paper's algorithm
//   refgen::compare_bode               - sanity check vs an AC simulation
#include <cstdio>

#include "api/service.h"
#include "refgen/validate.h"

int main() {
  // Compile a SPICE-style netlist into an immutable circuit handle. Errors
  // come back as api::Status — no exceptions to catch.
  const symref::api::Service service;
  const auto compiled = service.compile_netlist(R"(
.title quickstart two-pole RC
R1 in  n1 1k
C1 n1  0  100n
R2 n1  out 10k
C2 out 0  10n
)");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().to_string().c_str());
    return 1;
  }
  const symref::api::CircuitHandle& handle = compiled.value();

  // Voltage gain from "in" to "out", default engine options.
  const auto spec = symref::mna::TransferSpec::voltage_gain("in", "out");
  const auto response = service.refgen(handle, {spec, {}});
  if (!response.ok()) {
    std::fprintf(stderr, "refgen failed: %s\n", response.status().to_string().c_str());
    return 1;
  }
  const auto& result = response.value().result;
  std::printf("engine: %s in %zu interpolation(s), %d matrix factorizations\n\n",
              result.termination.c_str(), result.iterations.size(),
              result.total_evaluations);

  // The numerical reference: exact coefficients of N(s)/D(s).
  std::printf("%s\n", result.reference.describe(8).c_str());

  // Validate against a direct MNA AC analysis over six decades.
  const auto comparison =
      symref::refgen::compare_bode(result.reference, handle.circuit(), spec, 1.0, 1e6, 4);
  std::printf("max deviation from AC analysis: %.2e dB magnitude, %.2e deg phase\n",
              comparison.max_magnitude_error_db, comparison.max_phase_error_deg);

  // Use the reference like a transfer function.
  std::printf("gain at 1 kHz: %.3f dB\n",
              symref::mna::magnitude_db(result.reference.transfer_at_hz(1e3)));

  // A second identical request is served from the handle's response cache.
  const auto warm = service.refgen(handle, {spec, {}});
  std::printf("second request from_cache=%s\n",
              warm.ok() && warm.value().from_cache ? "true" : "false");
  return 0;
}
