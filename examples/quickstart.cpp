// Quickstart: generate the numerical reference for a small filter.
//
//   $ ./quickstart
//
// Builds a two-pole RC filter, runs the adaptive scaling engine, prints the
// exact transfer-function coefficients and validates them against a direct
// AC analysis. This is the whole public API in ~40 lines:
//
//   netlist::Circuit / parse_netlist   - describe the circuit
//   mna::TransferSpec                  - pick the network function
//   refgen::generate_reference         - the paper's algorithm
//   refgen::compare_bode               - sanity check vs an AC simulation
#include <cstdio>

#include "mna/transfer.h"
#include "netlist/parser.h"
#include "refgen/adaptive.h"
#include "refgen/validate.h"

int main() {
  // A two-stage RC lowpass, written as a SPICE-style netlist.
  const auto circuit = symref::netlist::parse_netlist(R"(
.title quickstart two-pole RC
R1 in  n1 1k
C1 n1  0  100n
R2 n1  out 10k
C2 out 0  10n
)");

  // Voltage gain from "in" to "out".
  const auto spec = symref::mna::TransferSpec::voltage_gain("in", "out");

  // Run the adaptive-scaling interpolation (Garcia-Vargas et al., DATE'97).
  const auto result = symref::refgen::generate_reference(circuit, spec);
  std::printf("engine: %s in %zu interpolation(s), %d matrix factorizations\n\n",
              result.termination.c_str(), result.iterations.size(),
              result.total_evaluations);

  // The numerical reference: exact coefficients of N(s)/D(s).
  std::printf("%s\n", result.reference.describe(8).c_str());

  // Validate against a direct MNA AC analysis over six decades.
  const auto comparison =
      symref::refgen::compare_bode(result.reference, circuit, spec, 1.0, 1e6, 4);
  std::printf("max deviation from AC analysis: %.2e dB magnitude, %.2e deg phase\n",
              comparison.max_magnitude_error_db, comparison.max_phase_error_deg);

  // Use the reference like a transfer function.
  std::printf("gain at 1 kHz: %.3f dB\n",
              symref::mna::magnitude_db(result.reference.transfer_at_hz(1e3)));
  return 0;
}
