#include "refgen/io.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace symref::refgen {

namespace {

const char* status_token(CoefficientStatus status) {
  switch (status) {
    case CoefficientStatus::Unknown: return "unknown";
    case CoefficientStatus::Interpolated: return "interpolated";
    case CoefficientStatus::ZeroTail: return "zero";
  }
  return "unknown";
}

CoefficientStatus parse_status(const std::string& token) {
  if (token == "interpolated") return CoefficientStatus::Interpolated;
  if (token == "zero") return CoefficientStatus::ZeroTail;
  if (token == "unknown") return CoefficientStatus::Unknown;
  throw std::runtime_error("read_reference: bad status token '" + token + "'");
}

void write_polynomial(std::ostream& os, const char* label, const PolynomialReference& poly) {
  os << label << ' ' << poly.order_bound() << '\n';
  char buffer[128];
  for (int i = 0; i <= poly.order_bound(); ++i) {
    const Coefficient& c = poly.at(i);
    std::snprintf(buffer, sizeof(buffer), "%d %a %" PRId64 " %s %.17g\n", i,
                  c.value.mantissa(), static_cast<std::int64_t>(c.value.exponent2()),
                  status_token(c.status), c.relative_accuracy);
    os << buffer;
  }
}

PolynomialReference read_polynomial(std::istream& is, const char* expected_label) {
  std::string label;
  int order_bound = 0;
  if (!(is >> label >> order_bound) || label != expected_label || order_bound < 0) {
    throw std::runtime_error("read_reference: expected '" + std::string(expected_label) +
                             " <order>' header");
  }
  PolynomialReference poly(order_bound);
  for (int i = 0; i <= order_bound; ++i) {
    int index = 0;
    std::string mantissa_token;
    std::int64_t exponent = 0;
    std::string status;
    double accuracy = 1.0;
    if (!(is >> index >> mantissa_token >> exponent >> status >> accuracy) || index != i) {
      throw std::runtime_error("read_reference: malformed coefficient line " +
                               std::to_string(i));
    }
    double mantissa = 0.0;
    if (std::sscanf(mantissa_token.c_str(), "%la", &mantissa) != 1) {
      throw std::runtime_error("read_reference: bad mantissa '" + mantissa_token + "'");
    }
    Coefficient& c = poly.at(i);
    c.value = numeric::ScaledDouble::from_mantissa_exp(mantissa, exponent);
    c.status = parse_status(status);
    c.relative_accuracy = accuracy;
  }
  return poly;
}

}  // namespace

void write_reference(std::ostream& os, const NumericalReference& reference) {
  os << "symref-reference v1\n";
  write_polynomial(os, "numerator", reference.numerator());
  write_polynomial(os, "denominator", reference.denominator());
  os << "end\n";
}

std::string write_reference(const NumericalReference& reference) {
  std::ostringstream os;
  write_reference(os, reference);
  return os.str();
}

NumericalReference read_reference(std::istream& is) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != "symref-reference" || version != "v1") {
    throw std::runtime_error("read_reference: missing 'symref-reference v1' header");
  }
  PolynomialReference numerator = read_polynomial(is, "numerator");
  PolynomialReference denominator = read_polynomial(is, "denominator");
  std::string tail;
  if (!(is >> tail) || tail != "end") {
    throw std::runtime_error("read_reference: missing 'end' marker");
  }
  return NumericalReference(std::move(numerator), std::move(denominator));
}

NumericalReference read_reference(const std::string& text) {
  std::istringstream is(text);
  return read_reference(is);
}

}  // namespace symref::refgen
