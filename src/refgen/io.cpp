#include "refgen/io.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace symref::refgen {

namespace {

CoefficientStatus parse_status(const std::string& token) {
  if (token == "interpolated") return CoefficientStatus::Interpolated;
  if (token == "zero") return CoefficientStatus::ZeroTail;
  if (token == "unknown") return CoefficientStatus::Unknown;
  throw std::runtime_error("read_reference: bad status token '" + token + "'");
}

void write_polynomial(std::ostream& os, const char* label, const PolynomialReference& poly) {
  os << label << ' ' << poly.order_bound() << '\n';
  char buffer[128];
  for (int i = 0; i <= poly.order_bound(); ++i) {
    const Coefficient& c = poly.at(i);
    // Both doubles as hex floats: bit-exact, and %a/%la round-trip inf, nan
    // and subnormals (which "%g" + operator>> do not).
    std::snprintf(buffer, sizeof(buffer), "%d %a %" PRId64 " %s %a\n", i,
                  c.value.mantissa(), static_cast<std::int64_t>(c.value.exponent2()),
                  coefficient_status_name(c.status), c.relative_accuracy);
    os << buffer;
  }
}

PolynomialReference read_polynomial(std::istream& is, const char* expected_label) {
  std::string label;
  int order_bound = 0;
  if (!(is >> label >> order_bound) || label != expected_label || order_bound < 0) {
    throw std::runtime_error("read_reference: expected '" + std::string(expected_label) +
                             " <order>' header");
  }
  // No circuit this library can factor produces a million coefficients; a
  // larger header is a corrupt/hostile file, not a reference (and would
  // otherwise drive a giant allocation before the first line fails).
  constexpr int kMaxOrderBound = 1 << 20;
  if (order_bound > kMaxOrderBound) {
    throw std::runtime_error("read_reference: implausible order bound " +
                             std::to_string(order_bound));
  }
  PolynomialReference poly(order_bound);
  for (int i = 0; i <= order_bound; ++i) {
    int index = 0;
    std::string mantissa_token;
    std::int64_t exponent = 0;
    std::string status;
    std::string accuracy_token;
    if (!(is >> index >> mantissa_token >> exponent >> status >> accuracy_token) ||
        index != i) {
      throw std::runtime_error("read_reference: malformed coefficient line " +
                               std::to_string(i));
    }
    double mantissa = 0.0;
    if (std::sscanf(mantissa_token.c_str(), "%la", &mantissa) != 1) {
      throw std::runtime_error("read_reference: bad mantissa '" + mantissa_token + "'");
    }
    // A ScaledDouble mantissa is finite by construction ([1, 2) or 0); a
    // non-finite token means the file is corrupt, and normalizing it would
    // silently fabricate a value.
    if (!std::isfinite(mantissa)) {
      throw std::runtime_error("read_reference: non-finite mantissa '" + mantissa_token + "'");
    }
    // strtod semantics: parses hex floats, decimals (legacy v1 files), and
    // the inf/nan tokens an accuracy field may legitimately carry.
    double accuracy = 1.0;
    if (std::sscanf(accuracy_token.c_str(), "%la", &accuracy) != 1) {
      throw std::runtime_error("read_reference: bad accuracy '" + accuracy_token + "'");
    }
    Coefficient& c = poly.at(i);
    c.value = numeric::ScaledDouble::from_mantissa_exp(mantissa, exponent);
    c.status = parse_status(status);
    c.relative_accuracy = accuracy;
  }
  return poly;
}

}  // namespace

void write_reference(std::ostream& os, const NumericalReference& reference) {
  // v2: the accuracy field is a hex float (%a) instead of v1's %.17g, so
  // inf/nan/subnormal accuracies round-trip bit-exactly.
  os << "symref-reference v2\n";
  write_polynomial(os, "numerator", reference.numerator());
  write_polynomial(os, "denominator", reference.denominator());
  os << "end\n";
}

std::string write_reference(const NumericalReference& reference) {
  std::ostringstream os;
  write_reference(os, reference);
  return os.str();
}

NumericalReference read_reference(std::istream& is) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != "symref-reference" ||
      (version != "v1" && version != "v2")) {
    throw std::runtime_error("read_reference: missing 'symref-reference v1/v2' header");
  }
  PolynomialReference numerator = read_polynomial(is, "numerator");
  PolynomialReference denominator = read_polynomial(is, "denominator");
  std::string tail;
  if (!(is >> tail) || tail != "end") {
    throw std::runtime_error("read_reference: missing 'end' marker");
  }
  return NumericalReference(std::move(numerator), std::move(denominator));
}

NumericalReference read_reference(const std::string& text) {
  std::istringstream is(text);
  return read_reference(is);
}

}  // namespace symref::refgen
