// Multi-circuit / multi-transfer reference generation.
//
// Batch workloads — every transfer function of one chip, a corner sweep over
// component tolerances, the population of a circuit-sizing optimizer (the
// DSSA-style flows in PAPERS.md evaluate thousands of candidate circuits) —
// run many *independent* adaptive-scaling jobs. The runner executes them
// shared-nothing: each job canonicalizes its own circuit copy, builds its
// own NodalSystem and engine, and runs serially on one lane, so jobs never
// contend on anything and the results are identical to running each job
// alone (and identical at every thread count).
#pragma once

#include <string>
#include <vector>

#include "api/status.h"
#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "refgen/adaptive.h"

namespace symref::refgen {

/// One independent reference-generation job.
struct BatchJob {
  netlist::Circuit circuit;
  mna::TransferSpec spec;
  AdaptiveOptions options;
  /// Optional caller tag carried through to the result (reports, tables).
  std::string label;
};

/// Result of one job, in job order.
struct BatchResult {
  std::string label;
  AdaptiveResult result;
  /// Job outcome with the same error taxonomy as single api requests
  /// (kInvalidSpec, kSingularSystem, kIncomplete, ...). When not ok,
  /// `result` holds whatever the engine produced before failing (default
  /// when the job threw before running). Other jobs are unaffected.
  api::Status status;

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

class BatchRunner {
 public:
  /// `threads` <= 0 picks the hardware thread count.
  explicit BatchRunner(int threads = 0);

  /// Run every job; results come back in job order regardless of which lane
  /// ran them. Outer parallelism owns the lanes: each job runs with
  /// options.threads forced to 1 (nested pools would only oversubscribe).
  [[nodiscard]] std::vector<BatchResult> run(const std::vector<BatchJob>& jobs) const;

 private:
  int threads_;
};

}  // namespace symref::refgen
