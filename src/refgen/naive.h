// Baseline interpolators (paper §2.2 and §3, Tables 1a/1b).
//
//  * naive_interpolation        — points on the raw unit circle, no scaling.
//    For integrated circuits almost every recovered coefficient drowns in
//    round-off noise (Table 1a): the imaginary parts, which should cancel
//    exactly, come out as large as most real parts.
//  * fixed_scale_interpolation  — one user-chosen frequency/conductance
//    scale pair (Table 1b used f = 1e9). A single scaling exposes only the
//    coefficients within ~13-sigma decades of the scaled maximum; for
//    polynomials beyond ~10th order no single factor can expose all of them
//    (paper §3.1), which is what the adaptive engine solves.
#pragma once

#include <complex>
#include <vector>

#include "interp/region.h"
#include "mna/nodal.h"
#include "mna/transfer.h"
#include "numeric/scaled.h"

namespace symref::refgen {

struct BaselineOptions {
  /// Number of interpolation points; 0 = order bound + 1.
  int points = 0;
  /// Significant digits for the validity floor (eq. (12)).
  int sigma = 6;
  double noise_decades = 13.0;
  /// Halve the evaluations using P(conj s) = conj P(s).
  bool conjugate_symmetry = true;
};

/// Result of one single-scaling interpolation of N and D.
struct BaselineResult {
  double f_scale = 1.0;
  double g_scale = 1.0;
  int points = 0;
  int evaluations = 0;
  bool ok = false;

  /// Raw normalized coefficients, complex — Table 1a prints the imaginary
  /// parts as evidence of round-off noise.
  std::vector<numeric::ScaledComplex> numerator_normalized;
  std::vector<numeric::ScaledComplex> denominator_normalized;

  /// Denormalized real parts (divide by f^i g^(deg-i)).
  std::vector<numeric::ScaledDouble> numerator_denormalized;
  std::vector<numeric::ScaledDouble> denominator_denormalized;

  interp::ValidRegion numerator_region;
  interp::ValidRegion denominator_region;
};

/// Table 1a baseline: unit circle, f = g = 1.
BaselineResult naive_interpolation(const mna::NodalSystem& system,
                                   const mna::TransferSpec& spec,
                                   const BaselineOptions& options = {});

/// Table 1b baseline: fixed scale factors chosen by the caller.
BaselineResult fixed_scale_interpolation(const mna::NodalSystem& system,
                                         const mna::TransferSpec& spec, double f_scale,
                                         double g_scale, const BaselineOptions& options = {});

/// Denormalize one coefficient: p_i = p'_i / (f^i * g^(degree - i)).
numeric::ScaledDouble denormalize_coefficient(const numeric::ScaledDouble& normalized,
                                              int index, int degree, double f_scale,
                                              double g_scale);

/// Normalize one coefficient: p'_i = p_i * f^i * g^(degree - i).
numeric::ScaledDouble normalize_coefficient(const numeric::ScaledDouble& denormalized,
                                            int index, int degree, double f_scale,
                                            double g_scale);

}  // namespace symref::refgen
