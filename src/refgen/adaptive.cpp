#include "refgen/adaptive.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "interp/interpolator.h"
#include "interp/order.h"
#include "netlist/canonical.h"
#include "numeric/stats.h"
#include "refgen/naive.h"
#include "support/log.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace symref::refgen {

using interp::KnownCoefficient;
using interp::UnitCircleSampler;
using interp::ValidRegion;
using numeric::ScaledComplex;
using numeric::ScaledDouble;

const char* purpose_name(IterationPurpose purpose) noexcept {
  switch (purpose) {
    case IterationPurpose::Initial: return "initial";
    case IterationPurpose::Upward: return "upward";
    case IterationPurpose::Downward: return "downward";
    case IterationPurpose::GapRepair: return "gap-repair";
  }
  return "?";
}

namespace {

/// Book-keeping for one polynomial (numerator or denominator).
struct PolyTracker {
  int degree = 0;  // homogeneity degree (denormalization exponent)
  PolynomialReference ref;

  [[nodiscard]] int bound() const noexcept { return ref.order_bound(); }
  [[nodiscard]] bool complete() const noexcept { return ref.complete(); }

  [[nodiscard]] int lowest_unknown() const noexcept {
    for (int i = 0; i <= bound(); ++i) {
      if (!ref.at(i).known()) return i;
    }
    return -1;
  }
  [[nodiscard]] int highest_unknown() const noexcept {
    for (int i = bound(); i >= 0; --i) {
      if (!ref.at(i).known()) return i;
    }
    return -1;
  }
  /// Highest/lowest index with an actually interpolated value (zero-tail
  /// markings have no iteration record to anchor a new scaling on).
  [[nodiscard]] int highest_interpolated() const noexcept {
    for (int i = bound(); i >= 0; --i) {
      if (ref.at(i).status == CoefficientStatus::Interpolated) return i;
    }
    return -1;
  }
  [[nodiscard]] int lowest_interpolated() const noexcept {
    for (int i = 0; i <= bound(); ++i) {
      if (ref.at(i).status == CoefficientStatus::Interpolated) return i;
    }
    return -1;
  }
  /// k of eq. (17): length of the known run p_0..p_{k-1}.
  [[nodiscard]] int known_low_run() const noexcept {
    const int low = lowest_unknown();
    return low < 0 ? bound() + 1 : low;
  }

  /// All known nonzero coefficients normalized to the given scaling, for
  /// the eq. (17) subtraction, together with the worst-case absolute noise
  /// that subtracting them injects.
  [[nodiscard]] std::pair<std::vector<KnownCoefficient>, ScaledDouble> known_normalized(
      double f, double g) const {
    std::vector<KnownCoefficient> known;
    ScaledDouble noise(0.0);
    for (int i = 0; i <= bound(); ++i) {
      const Coefficient& c = ref.at(i);
      if (!c.known() || c.value.is_zero()) continue;
      const ScaledDouble normalized = normalize_coefficient(c.value, i, degree, f, g);
      const ScaledDouble this_noise =
          normalized.abs() * ScaledDouble(c.relative_accuracy);
      if (this_noise > noise) noise = this_noise;
      known.push_back({i, normalized});
    }
    return {std::move(known), noise};
  }

  void mark_zero_tail(int from, int to) {
    for (int i = std::max(0, from); i <= std::min(to, bound()); ++i) {
      Coefficient& c = ref.at(i);
      if (!c.known()) {
        c.value = ScaledDouble(0.0);
        c.status = CoefficientStatus::ZeroTail;
        c.relative_accuracy = 1.0;
      }
    }
  }
};

/// Tilt factor from eq. (14)/(15): q^(anchor-m) = (|p_m|/|p_anchor|) * 10^decades,
/// evaluated on the anchor iteration's region (indices are residual-space,
/// but only differences enter).
double tilt_factor(const ValidRegion& region, const std::vector<ScaledComplex>& normalized,
                   bool upward, double decades) {
  const int anchor = upward ? region.end : region.begin;
  const int peak = region.max_index;
  if (anchor != peak && anchor >= 0 &&
      anchor < static_cast<int>(normalized.size())) {
    const ScaledDouble p_anchor = normalized[static_cast<std::size_t>(anchor)].real().abs();
    if (!p_anchor.is_zero()) {
      const double log_q = ((region.max_value / p_anchor).log10_abs() + decades) /
                           static_cast<double>(anchor - peak);
      return std::pow(10.0, log_q);
    }
  }
  // Degenerate profile (peak on the region edge): move one full validity
  // window per step.
  const double per_index = decades / std::max(1, region.width());
  return std::pow(10.0, upward ? per_index : -per_index);
}

}  // namespace

AdaptiveScalingEngine::AdaptiveScalingEngine(const mna::NodalSystem& system,
                                             const mna::TransferSpec& spec,
                                             AdaptiveOptions options,
                                             const mna::CofactorEvaluator* evaluator)
    : system_(system), spec_(spec), options_(std::move(options)), external_evaluator_(evaluator) {}

std::pair<double, double> AdaptiveScalingEngine::initial_scales() const {
  double f = options_.initial_f;
  double g = options_.initial_g;
  if (f <= 0.0) {
    const std::vector<double> caps = system_.circuit().capacitor_values();
    const double typical = options_.geometric_mean_heuristic ? numeric::geometric_mean(caps)
                                                             : numeric::mean(caps);
    f = typical > 0.0 ? 1.0 / typical : 1.0;
  }
  if (g <= 0.0) {
    const std::vector<double> conds = system_.circuit().conductance_values();
    const double typical = options_.geometric_mean_heuristic
                               ? numeric::geometric_mean(conds)
                               : numeric::mean(conds);
    g = typical > 0.0 ? 1.0 / typical : 1.0;
  }
  return {f, g};
}

AdaptiveResult AdaptiveScalingEngine::run() {
  support::Timer total_timer;
  AdaptiveResult result;

  // A caller-provided evaluator keeps its assembly pattern and LU plan warm
  // across runs (the api::Service handle cache); otherwise build a local one.
  std::optional<mna::CofactorEvaluator> local_evaluator;
  if (external_evaluator_ == nullptr) local_evaluator.emplace(system_, spec_);
  const mna::CofactorEvaluator& evaluator =
      external_evaluator_ != nullptr ? *external_evaluator_ : *local_evaluator;
  const int circuit_bound = system_.order_bound();

  // One pool for the whole run (workers persist across iterations). The
  // samples of an iteration are the parallel unit; everything downstream
  // (IDFT, region logic) runs on the caller in index order.
  std::unique_ptr<support::ThreadPool> pool;
  if (options_.threads != 1) pool = std::make_unique<support::ThreadPool>(options_.threads);

  PolyTracker num;
  num.degree = evaluator.numerator_degree();
  num.ref = PolynomialReference(std::min(circuit_bound, num.degree));
  PolyTracker den;
  den.degree = evaluator.denominator_degree();
  den.ref = PolynomialReference(std::min(circuit_bound, den.degree));
  result.numerator_degree = num.degree;
  result.denominator_degree = den.degree;

  auto [f, g] = initial_scales();
  IterationPurpose purpose = IterationPurpose::Initial;
  double pending_q = 1.0;
  // Consecutive failed attempts per direction; each failure escalates the
  // next tilt, `no_progress_limit` failures declare the span negligible.
  int fails_up = 0;
  int fails_down = 0;
  // Gap-repair state: successive attempts walk the binary fractions of the
  // log-interpolation between the bracketing scalings (1/2, 1/4, 3/4, ...),
  // so repeated failures refine the search instead of repeating eq. (16)'s
  // midpoint. A gap that survives all attempts is declared negligible —
  // §3.1: such coefficients "might never be above the error level".
  long gap_key = -1;  // driver flag * large + gap index
  int gap_attempt = 0;
  constexpr int kGapAttemptLimit = 7;
  static constexpr double kGapFractions[kGapAttemptLimit] = {0.5,   0.25,  0.75, 0.125,
                                                             0.375, 0.625, 0.875};

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.cancel.cancelled()) {
      result.termination = "cancelled";
      break;
    }
    support::Timer iteration_timer;
    IterationRecord record;
    record.index = iter;
    record.purpose = purpose;
    record.f_scale = f;
    record.g_scale = g;
    record.q = pending_q;

    // --- Deflation setup (eq. (17)) per polynomial ------------------------
    // Deflation pays off only when extending upward: the subtracted knowns
    // are then far below the target window, so their (sigma-digit) error
    // cannot bury it. Downward/gap windows sit below the dominant knowns,
    // where the subtraction noise would shrink the valid region to nothing;
    // those run as plain interpolations (the paper's §3.3 example applies
    // eq. (17) on its upward march only).
    const bool deflate =
        options_.use_deflation && iter > 0 && purpose == IterationPurpose::Upward;
    auto shift_of = [&](const PolyTracker& poly) {
      return deflate && !poly.complete() ? poly.known_low_run() : 0;
    };
    auto span_of = [&](const PolyTracker& poly) {
      if (poly.complete()) return 0;
      const int high = deflate ? poly.highest_unknown() : poly.bound();
      return high - shift_of(poly) + 1;
    };
    record.num_shift = shift_of(num);
    record.den_shift = shift_of(den);
    const int base_points = std::max({span_of(num), span_of(den), 1});

    // --- Sample both polynomials at the unit-circle points ----------------
    // If a sample lands on (or near) a pole of the scaled system — a
    // natural frequency exactly on the unit circle — its evaluation error
    // explodes. Adding a point shifts every angle, so retry with K+1.
    std::vector<ScaledComplex> num_unique;
    std::vector<ScaledComplex> den_unique;
    ScaledDouble num_eval_noise(0.0);
    ScaledDouble den_eval_noise(0.0);
    int points = base_points;
    bool singular = false;
    std::uint64_t attempt_degraded = 0;
    constexpr int kMaxPointRetries = 3;
    constexpr double kSampleErrorRetryThreshold = 1e-6;
    for (int attempt = 0; attempt <= kMaxPointRetries; ++attempt) {
      points = base_points + attempt;
      const UnitCircleSampler sampler(points, options_.conjugate_symmetry);
      num_unique.clear();
      den_unique.clear();
      num_eval_noise = ScaledDouble(0.0);
      den_eval_noise = ScaledDouble(0.0);
      singular = false;
      attempt_degraded = 0;
      double worst_proxy = 0.0;
      // The whole point batch evaluates in parallel (independent replays of
      // one shared plan, bit-identical at any thread count); the noise and
      // retry accounting below walks the results in point order. On a
      // singular iteration the batch still evaluates every point (the
      // scan stops at the first failure) — the tilt hunt rarely produces
      // one, and per-point independence is what buys the parallelism.
      const auto batch = evaluator.evaluate_batch(sampler.evaluation_points(), f, g, pool.get(),
                                                  options_.kernel);
      for (const auto& sample : batch) {
        if (!sample.ok) {
          singular = true;
          break;
        }
        // Degradation-ladder samples are accepted (their error proxies
        // already reflect the worse pivots) but tallied per attempt so the
        // response can carry the `degraded` flag instead of failing hard
        // (only the accepted attempt's tally lands in the result).
        if (sample.degraded) ++attempt_degraded;
        num_unique.push_back(sample.numerator);
        den_unique.push_back(sample.denominator);
        // Absolute evaluation error of this sample; the IDFT averages
        // sample errors, so the worst one bounds the coefficient noise.
        // (Only the denominator error drives the near-pole retry: a tiny
        // port voltage inflates the numerator proxy legitimately, and the
        // noise floor — not resampling — is the right response to that.)
        worst_proxy = std::max(worst_proxy, sample.denominator_error);
        num_eval_noise =
            std::max(num_eval_noise,
                     sample.numerator.abs() * ScaledDouble(sample.numerator_error));
        den_eval_noise =
            std::max(den_eval_noise,
                     sample.denominator.abs() * ScaledDouble(sample.denominator_error));
        ++record.evaluations;
      }
      if (!singular && worst_proxy <= kSampleErrorRetryThreshold) break;
      if (attempt == kMaxPointRetries) break;  // keep the last attempt
    }
    record.points = points;
    if (!singular && attempt_degraded > 0) {
      result.degraded_points += attempt_degraded;
      result.degraded = true;
    }
    record.deflated = deflate && base_points < std::max(num.bound(), den.bound()) + 1;
    record.num_evaluation_noise = num_eval_noise;
    record.den_evaluation_noise = den_eval_noise;
    // Rebuild the sampler that produced the accepted samples (deterministic
    // for a given point count), for the expansion/deflation below.
    const UnitCircleSampler sampler(points, options_.conjugate_symmetry);
    if (singular && iter == 0) {
      // Singular at the heuristic scaling: the circuit itself is
      // ill-posed (floating section, zero-admittance cut). Give up.
      result.termination = "singular_system";
      record.seconds = iteration_timer.seconds();
      result.iterations.push_back(std::move(record));
      if (options_.on_iteration) options_.on_iteration(result.iterations.back());
      break;
    }
    // A singular system deep into a hunt just means the tilt pushed the
    // matrix beyond factorability — treat it as a no-progress window (the
    // regions stay empty) and let the failure accounting decide.
    result.total_evaluations += record.evaluations;

    // --- Recover coefficients, extract regions, absorb new values ---------
    auto process = [&](PolyTracker& poly, const std::vector<ScaledComplex>& unique,
                       int shift, const ScaledDouble& eval_noise,
                       std::vector<ScaledComplex>& normalized_out,
                       ValidRegion& region_out, ScaledDouble& noise_out,
                       int& new_count_out) {
      if (poly.complete()) return;
      std::vector<ScaledComplex> samples = unique;
      ScaledDouble noise(0.0);
      if (deflate) {
        auto [known, subtraction_noise] = poly.known_normalized(f, g);
        noise = subtraction_noise;
        if (!known.empty() || shift > 0) {
          // Every sample deflates independently (eq. (17) is per-point), so
          // the subtraction parallelizes like the evaluations themselves;
          // per-slot writes keep the result identical at any thread count.
          auto deflate_range = [&](std::size_t begin, std::size_t end, int) {
            for (std::size_t k = begin; k < end; ++k) {
              samples[k] = interp::deflate_sample(samples[k], sampler.evaluation_points()[k],
                                                  known, shift);
            }
          };
          if (pool) {
            pool->parallel_for(samples.size(), deflate_range);
          } else {
            deflate_range(0, samples.size(), 0);
          }
        }
      }
      noise_out = noise;
      const std::vector<ScaledComplex> coeffs =
          interp::coefficients_from_samples(sampler.expand(samples));
      normalized_out = coeffs;
      const std::vector<ScaledDouble> magnitudes = interp::real_magnitudes(coeffs);
      interp::RegionOptions region_options;
      region_options.sigma = options_.sigma;
      region_options.noise_decades = options_.noise_decades;
      // The acceptance floor must clear two noise sources beyond the IDFT's
      // own round-off: the eq. (17) subtraction error (full sigma margin)
      // and the matrix-evaluation error (2-decade margin; demanding sigma
      // digits against it would reject coefficients the paper's own 6-digit
      // criterion accepts).
      const ScaledDouble eval_floor_contribution =
          eval_noise * ScaledDouble(std::pow(10.0, 2.0 - options_.sigma));
      region_options.external_noise = std::max(noise, eval_floor_contribution);
      const ValidRegion region = interp::find_valid_region(magnitudes, region_options);
      region_out = region;

      if (region.max_value.is_zero()) {
        // Identically zero samples: with no deflation this means the whole
        // polynomial is zero (an all-zero numerator, say).
        if (!deflate) poly.mark_zero_tail(0, poly.bound());
        return;
      }
      if (region.empty()) return;

      // Absolute error of every recovered coefficient: transform round-off
      // plus subtraction noise plus evaluation noise.
      const ScaledDouble absolute_error =
          region.max_value * ScaledDouble(std::pow(10.0, -options_.noise_decades)) +
          noise + eval_noise;
      for (int i = region.begin; i <= region.end; ++i) {
        const int index = i + shift;
        if (index > poly.bound()) continue;
        const ScaledDouble normalized = coeffs[static_cast<std::size_t>(i)].real();
        const ScaledDouble value =
            denormalize_coefficient(normalized, index, poly.degree, f, g);
        Coefficient& slot = poly.ref.at(index);
        if (!slot.known()) {
          slot.value = value;
          slot.status = CoefficientStatus::Interpolated;
          slot.iteration = iter;
          double accuracy = 1.0;
          if (!normalized.is_zero()) {
            accuracy = std::min(1.0, (absolute_error / normalized.abs()).to_double());
          }
          slot.relative_accuracy = std::max(accuracy, 1e-16);
          ++new_count_out;
        } else if (slot.status == CoefficientStatus::Interpolated) {
          const double mismatch = numeric::relative_difference(slot.value, value);
          record.max_overlap_mismatch = std::max(record.max_overlap_mismatch, mismatch);
        }
      }
    };

    if (!singular) {
      process(num, num_unique, record.num_shift, num_eval_noise, record.num_normalized,
              record.num_region, record.num_subtraction_noise,
              record.num_new_coefficients);
      process(den, den_unique, record.den_shift, den_eval_noise, record.den_normalized,
              record.den_region, record.den_subtraction_noise,
              record.den_new_coefficients);
    }

    record.seconds = iteration_timer.seconds();
    result.iterations.push_back(std::move(record));
    const IterationRecord& last = result.iterations.back();
    if (options_.on_iteration) options_.on_iteration(last);

    const bool driver_is_den = !den.complete();
    PolyTracker& driver = driver_is_den ? den : num;
    const int driver_new =
        driver_is_den ? last.den_new_coefficients : last.num_new_coefficients;

    SYMREF_DEBUG("adaptive iter " << iter << " (" << purpose_name(last.purpose)
                                  << ") f=" << f << " g=" << g << " pts=" << last.points
                                  << " den " << last.den_region.to_string() << " +"
                                  << last.den_new_coefficients << " num +"
                                  << last.num_new_coefficients);

    if (num.complete() && den.complete()) {
      result.complete = true;
      result.termination = "complete";
      break;
    }
    if (driver.highest_interpolated() < 0) {
      // Nothing recovered at all — the scaling is catastrophically off.
      result.termination = "no_valid_region";
      break;
    }

    // --- Failure accounting and negligible-span detection ------------------
    if (last.purpose == IterationPurpose::Downward) {
      fails_down = driver_new == 0 ? fails_down + 1 : 0;
    } else if (last.purpose == IterationPurpose::Upward) {
      fails_up = driver_new == 0 ? fails_up + 1 : 0;
    }
    if (fails_down >= options_.no_progress_limit) {
      driver.mark_zero_tail(0, driver.lowest_interpolated() - 1);
      fails_down = 0;
    }
    if (fails_up >= options_.no_progress_limit) {
      driver.mark_zero_tail(driver.highest_interpolated() + 1, driver.bound());
      fails_up = 0;
    }
    if (num.complete() && den.complete()) {
      result.complete = true;
      result.termination = "complete";
      break;
    }

    // --- Choose the next move: anchor on the region bordering the target ---
    // Downward first (cheap: few points under deflation), then upward, then
    // interior gaps. The new scaling is always derived from the iteration
    // whose region is adjacent to the unknown span, so the engine never
    // re-traverses known territory.
    const int low_unknown = driver.lowest_unknown();
    const int high_unknown = driver.highest_unknown();
    const int low_interp = driver.lowest_interpolated();
    const int high_interp = driver.highest_interpolated();

    const bool go_down = low_unknown >= 0 && low_unknown < low_interp;
    const bool go_up = !go_down && high_unknown > high_interp;
    const bool go_gap = !go_down && !go_up && low_unknown >= 0;

    if (go_gap) {
      // eq. (16), generalized: log-interpolate between the scale factors of
      // the iterations bracketing the gap. The first attempt is eq. (16)'s
      // geometric mean (t = 1/2); failed attempts walk the binary fractions
      // to refine the search.
      const long key = (driver_is_den ? 1000000L : 2000000L) + low_unknown;
      if (key != gap_key) {
        gap_key = key;
        gap_attempt = 0;
      }
      if (gap_attempt >= kGapAttemptLimit) {
        // Unobservable at every window between the brackets: negligible at
        // working precision (§3.1). Mark the interior run and move on.
        int run_end = low_unknown;
        while (run_end < driver.bound() && !driver.ref.at(run_end + 1).known()) ++run_end;
        SYMREF_DEBUG("adaptive: gap " << low_unknown << ".." << run_end
                                      << " declared negligible after " << gap_attempt
                                      << " attempts");
        driver.mark_zero_tail(low_unknown, run_end);
        gap_key = -1;
        continue;
      }
      int below_iter = -1;
      int above_iter = -1;
      for (int i = low_unknown - 1; i >= 0; --i) {
        if (driver.ref.at(i).status == CoefficientStatus::Interpolated) {
          below_iter = driver.ref.at(i).iteration;
          break;
        }
      }
      for (int i = low_unknown + 1; i <= driver.bound(); ++i) {
        if (driver.ref.at(i).status == CoefficientStatus::Interpolated) {
          above_iter = driver.ref.at(i).iteration;
          break;
        }
      }
      if (below_iter < 0 || above_iter < 0) {
        result.termination = "gap_unresolved";
        break;
      }
      const IterationRecord& r1 = result.iterations[static_cast<std::size_t>(below_iter)];
      const IterationRecord& r2 = result.iterations[static_cast<std::size_t>(above_iter)];
      const double t = kGapFractions[gap_attempt];
      ++gap_attempt;
      const double f_new = std::pow(r1.f_scale, 1.0 - t) * std::pow(r2.f_scale, t);
      const double g_new = std::pow(r1.g_scale, 1.0 - t) * std::pow(r2.g_scale, t);
      pending_q = (f_new / g_new) / (f / g);
      f = f_new;
      g = g_new;
      purpose = IterationPurpose::GapRepair;
      continue;
    }
    gap_key = -1;  // left gap mode: reset the attempt ladder

    // Anchor iteration: produced the known coefficient adjacent to the span.
    const int anchor_index = go_down ? low_interp : high_interp;
    const int anchor_iter = driver.ref.at(anchor_index).iteration;
    const IterationRecord& anchor =
        result.iterations[static_cast<std::size_t>(anchor_iter)];
    const ValidRegion& anchor_region = driver_is_den ? anchor.den_region : anchor.num_region;
    const std::vector<ScaledComplex>& anchor_normalized =
        driver_is_den ? anchor.den_normalized : anchor.num_normalized;

    const double decades = options_.noise_decades + options_.tuning_r;
    double q = tilt_factor(anchor_region, anchor_normalized, go_up, decades);
    // Escalate past windows that produced nothing (noise-buried residuals).
    const int fails = go_up ? fails_up : fails_down;
    if (fails > 0) q = std::pow(q, 1.0 + fails);

    purpose = go_up ? IterationPurpose::Upward : IterationPurpose::Downward;
    pending_q = q;
    double f_new = anchor.f_scale;
    double g_new = anchor.g_scale;
    if (options_.simultaneous_scaling) {
      const double root = std::sqrt(q);
      f_new *= root;
      g_new /= root;
    } else {
      f_new *= q;
    }
    f = f_new;
    g = g_new;
  }

  if (result.termination.empty()) result.termination = "max_iterations";
  result.reference = NumericalReference(std::move(num.ref), std::move(den.ref));
  result.complete = result.reference.complete();
  if (result.complete && result.termination == "max_iterations") {
    result.termination = "complete";
  }
  result.seconds = total_timer.seconds();
  return result;
}

AdaptiveResult generate_reference(const netlist::Circuit& circuit,
                                  const mna::TransferSpec& spec,
                                  const AdaptiveOptions& options) {
  const netlist::Circuit canonical = netlist::canonicalize(circuit);
  const mna::NodalSystem system(canonical);
  AdaptiveScalingEngine engine(system, spec, options);
  return engine.run();
}

}  // namespace symref::refgen
