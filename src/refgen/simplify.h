// Reference-driven symbolic simplification: the paper's loop, closed.
//
// The numerical reference exists so that symbolic simplification can be
// error-controlled (paper §1). This engine does exactly that, end to end,
// for one transfer spec over a user-supplied frequency band:
//
//   1. Baseline: sample the exact transfer H(jw) over the band through the
//      plan-replay evaluator (one symbolic LU plan, batched kernels).
//   2. Prune (SBG stage): rank every open/short candidate by the numeric
//      band error of its value-surrogate trial — each trial is a rebind +
//      pinned replay of the SAME plan (pattern-preserving value edits:
//      value -> 0 opens, value * 1e12 shorts) — then greedily accept
//      candidates while the cumulative band error stays inside the prune
//      share of the budget. The accepted actions are applied for real
//      (remove_element / short_element) and the exact prune error is
//      re-measured; actions are rolled back from the worst end if the
//      surrogate underestimated.
//   3. Reference: run the adaptive-scaling engine on the reduced circuit —
//      the per-coefficient references eq. (3) needs.
//   4. Enumerate (SDG stage): per retained coefficient, generate terms in
//      magnitude order until the eq. (3) stop rule meets a per-coefficient
//      epsilon derived from the coefficient's band weight and the budget
//      headroom left after pruning. Coefficients whose band weight is
//      negligible are dropped wholesale.
//   5. Certify + drop (SAG stage): evaluate the term model over the band
//      against the ORIGINAL baseline; greedily drop terms in ascending
//      band influence while the certified max relative error stays under
//      the budget. The final certificate is recomputed from scratch, so
//      the reported envelope is exactly what an independent re-evaluation
//      of the returned terms reproduces.
//
// Determinism: the baseline and trial replays are bit-identical at every
// thread count and kernel by the evaluator's oracle contract; every ranking
// trial is a pure function of its candidate; all accumulation runs serially
// in fixed order. Results are therefore bit-identical across
// threads = 1..N and kScalar/kBatched.
//
// Failure taxonomy: a spec the generators cannot represent (differential,
// > 64 nodes) throws symbolic::NonAdmissibleError (api: invalid_spec);
// a band/budget the enumeration cannot certify within its caps throws
// symbolic::TermEnumerationError (api: incomplete).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mna/nodal.h"
#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "numeric/scaled.h"
#include "refgen/adaptive.h"
#include "support/thread_pool.h"

namespace symref::refgen {

struct SimplifyOptions {
  /// Certified max relative error allowed over the band.
  double error_budget = 0.01;
  /// Log-spaced band grid, inclusive of both endpoints.
  double f_start_hz = 10.0;
  double f_stop_hz = 1e3;
  int band_points = 9;
  /// Run the replay-ranked circuit pruning stage (SBG) before enumeration.
  bool prune = true;
  /// Fraction of the error budget the pruning stage may consume; the rest
  /// stays as enumeration headroom (tight pruning buys little once the
  /// matrix is enumerable, while enumeration epsilons scale with what is
  /// left, so the split favors the generators).
  double prune_share = 0.35;
  /// Per-coefficient SDG caps (see SdgOptions).
  std::size_t max_terms_per_coefficient = 200000;
  std::size_t max_queue = 2000000;
  /// Coefficients whose band weight is below `skip * error_budget` are
  /// dropped wholesale (their cost lands in the certificate like any other
  /// model error).
  double coefficient_skip_factor = 1e-3;
  /// Reference generation on the reduced circuit; `engine.threads`,
  /// `engine.kernel` and `engine.cancel` also drive the replay trials of
  /// the pruning/certification stages. As everywhere else, threads and
  /// kernel never influence results.
  AdaptiveOptions engine;
};

/// One factored product of the simplified transfer function.
struct SimplifiedTerm {
  /// Permutation/stamp sign (+-1, occasionally +-2 after merges).
  double coefficient = 1.0;
  /// Element names whose values multiply into the product.
  std::vector<std::string> symbols;
  /// Power of s (the term belongs to coefficient s^s_power).
  int s_power = 0;
  /// Signed design-point value of the whole product.
  numeric::ScaledDouble value;
};

/// A circuit reduction the pruning stage committed.
struct SimplifyPruneAction {
  std::string element;
  std::string op;  // "open" | "short"
  /// Cumulative surrogate band error after accepting this action.
  double error_after = 0.0;
};

/// Numeric proof: per-band-point relative error of the returned model
/// against the original circuit's replayed response.
struct ErrorCertificate {
  std::vector<double> frequencies_hz;
  std::vector<double> relative_error;
  double max_relative_error = 0.0;
  double error_budget = 0.0;
};

struct SimplifyResult {
  std::vector<SimplifiedTerm> numerator_terms;
  std::vector<SimplifiedTerm> denominator_terms;
  /// Readable factored forms (truncated to the leading terms).
  std::string numerator_expression;
  std::string denominator_expression;
  ErrorCertificate certificate;
  std::vector<SimplifyPruneAction> prune_actions;
  /// Reduced-circuit shape after pruning.
  int reduced_dim = 0;
  std::size_t reduced_elements = 0;
  std::size_t original_elements = 0;
  /// Term accounting: SDG generated `enumerated_terms`; the drop stage kept
  /// `kept_terms` of them (numerator + denominator).
  std::size_t enumerated_terms = 0;
  std::size_t kept_terms = 0;
  std::uint64_t terms_dropped = 0;
  /// Band-point evaluations spent ranking candidates and trialing drops —
  /// the daemon's simplify_term_evals counter.
  std::uint64_t term_evals = 0;
  /// Fresh (non-replay) factorizations the ranking evaluators ran beyond
  /// the baseline's own — the plan-reuse probe (0 when every trial replayed
  /// the one shared symbolic plan).
  std::uint64_t ranking_fresh_factorizations = 0;
  double seconds = 0.0;
};

/// Simplify `spec` on `canonical` (a canonicalized circuit) against the
/// replayed response of `system` (built over the same circuit).
///
/// `evaluator` (optional) is a caller-owned warm CofactorEvaluator over the
/// same system/spec — api::Service passes its per-spec handle so the
/// baseline reuses the cached LU plan. Non-reentrant like every evaluator
/// user; callers serialize runs sharing one. When null, a throwaway
/// evaluator is built.
SimplifyResult simplify_transfer(const netlist::Circuit& canonical,
                                 const mna::NodalSystem& system,
                                 const mna::TransferSpec& spec,
                                 const SimplifyOptions& options = {},
                                 const mna::CofactorEvaluator* evaluator = nullptr);

/// Convenience wrapper: canonicalize + build the nodal system + run.
SimplifyResult simplify_transfer(const netlist::Circuit& circuit,
                                 const mna::TransferSpec& spec,
                                 const SimplifyOptions& options = {});

}  // namespace symref::refgen
