// Plain-text serialization of numerical references.
//
// Downstream symbolic tools are typically separate processes; this format
// lets them consume the references without linking the engine. One line per
// coefficient:
//
//   symref-reference v2
//   numerator <order_bound>
//   0 <mantissa_hex> <exp2> <status> <accuracy_hex>
//   ...
//   denominator <order_bound>
//   ...
//   end
//
// Mantissas and accuracies are serialized as hex doubles (%a), so the
// round-trip is bit-exact (including inf/nan/subnormal accuracies); the
// binary exponent keeps the extended range intact. The reader also accepts
// v1 files, whose accuracy field was decimal (%.17g).
#pragma once

#include <iosfwd>
#include <string>

#include "refgen/reference.h"

namespace symref::refgen {

/// Serialize to the text format above.
void write_reference(std::ostream& os, const NumericalReference& reference);
std::string write_reference(const NumericalReference& reference);

/// Parse the text format; throws std::runtime_error on malformed input.
NumericalReference read_reference(std::istream& is);
NumericalReference read_reference(const std::string& text);

}  // namespace symref::refgen
