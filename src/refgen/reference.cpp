#include "refgen/reference.h"

#include <cmath>
#include <sstream>

namespace symref::refgen {

using numeric::ScaledComplex;
using numeric::ScaledDouble;

const char* coefficient_status_name(CoefficientStatus status) noexcept {
  switch (status) {
    case CoefficientStatus::Unknown: return "unknown";
    case CoefficientStatus::Interpolated: return "interpolated";
    case CoefficientStatus::ZeroTail: return "zero";
  }
  return "unknown";
}

int PolynomialReference::effective_order() const noexcept {
  for (int i = order_bound(); i >= 0; --i) {
    const Coefficient& c = coefficients_[static_cast<std::size_t>(i)];
    if (c.known() && !c.value.is_zero() && c.status != CoefficientStatus::ZeroTail) return i;
  }
  return -1;
}

bool PolynomialReference::complete() const noexcept {
  for (const Coefficient& c : coefficients_) {
    if (!c.known()) return false;
  }
  return !coefficients_.empty();
}

int PolynomialReference::known_count() const noexcept {
  int count = 0;
  for (const Coefficient& c : coefficients_) {
    if (c.known()) ++count;
  }
  return count;
}

numeric::Polynomial<ScaledDouble> PolynomialReference::polynomial() const {
  std::vector<ScaledDouble> coeffs(coefficients_.size());
  for (std::size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i].known()) coeffs[i] = coefficients_[i].value;
  }
  return numeric::Polynomial<ScaledDouble>(std::move(coeffs));
}

std::complex<double> NumericalReference::transfer(std::complex<double> s) const {
  const ScaledComplex n = numeric::eval_scaled(numerator_.polynomial(), s);
  const ScaledComplex d = numeric::eval_scaled(denominator_.polynomial(), s);
  if (d.is_zero()) return {HUGE_VAL, 0.0};
  return (n / d).to_complex();
}

std::complex<double> NumericalReference::transfer_at_hz(double frequency_hz) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return transfer(std::complex<double>(0.0, kTwoPi * frequency_hz));
}

std::vector<mna::BodePoint> NumericalReference::bode(double f_start_hz, double f_stop_hz,
                                                     int points_per_decade) const {
  const std::vector<double> grid =
      mna::log_frequency_grid(f_start_hz, f_stop_hz, points_per_decade);
  std::vector<mna::BodePoint> points;
  points.reserve(grid.size());
  double previous_phase = 0.0;
  bool first = true;
  for (const double f : grid) {
    mna::BodePoint p;
    p.frequency_hz = f;
    p.value = transfer_at_hz(f);
    p.magnitude_db = mna::magnitude_db(p.value);
    double phase = mna::phase_deg(p.value);
    if (!first) {
      while (phase - previous_phase > 180.0) phase -= 360.0;
      while (phase - previous_phase < -180.0) phase += 360.0;
    }
    p.phase_deg = phase;
    previous_phase = phase;
    first = false;
    points.push_back(p);
  }
  return points;
}

namespace {
const char* status_tag(CoefficientStatus status) {
  switch (status) {
    case CoefficientStatus::Unknown: return "?";
    case CoefficientStatus::Interpolated: return "ok";
    case CoefficientStatus::ZeroTail: return "zero";
  }
  return "?";
}
}  // namespace

std::string NumericalReference::describe(int significant_digits) const {
  std::ostringstream os;
  const auto dump = [&](const char* label, const PolynomialReference& poly) {
    os << label << " (order bound " << poly.order_bound() << ", effective "
       << poly.effective_order() << "):\n";
    for (int i = 0; i <= poly.order_bound(); ++i) {
      const Coefficient& c = poly.at(i);
      os << "  s^" << i << "  " << c.value.to_string(significant_digits) << "  ["
         << status_tag(c.status) << "]\n";
    }
  };
  dump("numerator", numerator_);
  dump("denominator", denominator_);
  return os.str();
}

}  // namespace symref::refgen
