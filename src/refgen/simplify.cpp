#include "refgen/simplify.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numbers>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mna/errors.h"
#include "netlist/canonical.h"
#include "support/cancellation.h"
#include "symbolic/det.h"
#include "symbolic/errors.h"
#include "symbolic/sdg.h"

namespace symref::refgen {
namespace {

using numeric::ScaledComplex;
using numeric::ScaledDouble;
using Complex = std::complex<double>;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Surrogate factor for short trials: multiplying a conductance by 1e12
/// makes it ~12 decades stiffer than anything else in the matrix while
/// keeping the stamp pattern (and hence the replayable LU plan) intact.
constexpr double kShortSurrogate = 1e12;

void check_cancel(const support::CancellationToken& cancel) {
  if (cancel.cancelled()) throw support::CancelledError();
}

std::vector<double> band_grid(const SimplifyOptions& options) {
  if (!(options.f_start_hz > 0.0) || !(options.f_stop_hz >= options.f_start_hz) ||
      !std::isfinite(options.f_stop_hz)) {
    throw std::invalid_argument(
        "simplify_transfer: band must satisfy 0 < f_start <= f_stop (finite)");
  }
  if (options.band_points < 1) {
    throw std::invalid_argument("simplify_transfer: band needs at least one point");
  }
  std::vector<double> freqs;
  freqs.reserve(static_cast<std::size_t>(options.band_points));
  if (options.band_points == 1 || options.f_stop_hz == options.f_start_hz) {
    freqs.push_back(options.f_start_hz);
    return freqs;
  }
  const double step =
      std::log10(options.f_stop_hz / options.f_start_hz) / (options.band_points - 1);
  for (int i = 0; i < options.band_points; ++i) {
    freqs.push_back(options.f_start_hz * std::pow(10.0, step * i));
  }
  freqs.back() = options.f_stop_hz;
  return freqs;
}

std::vector<Complex> to_s_points(const std::vector<double>& freqs) {
  std::vector<Complex> s;
  s.reserve(freqs.size());
  for (const double f : freqs) s.emplace_back(0.0, 2.0 * std::numbers::pi * f);
  return s;
}

std::optional<ScaledComplex> sample_ratio(const mna::CofactorEvaluator::Sample& sample) {
  if (!sample.ok || sample.denominator.is_zero()) return std::nullopt;
  return sample.numerator / sample.denominator;
}

/// Max relative band error of `trial` transfer samples against the baseline
/// responses; infinity when any point is singular.
double band_error(const std::vector<mna::CofactorEvaluator::Sample>& trial,
                  const std::vector<ScaledComplex>& baseline) {
  double worst = 0.0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const auto h = sample_ratio(trial[i]);
    if (!h) return kInf;
    const ScaledDouble scale = baseline[i].abs();
    if (scale.is_zero()) return kInf;
    worst = std::max(worst, ((*h - baseline[i]).abs() / scale).to_double());
  }
  return worst;
}

struct PruneCandidate {
  std::string element;
  bool open = true;
  double surrogate = 0.0;
  double error = kInf;
};

/// Nodes whose identity the spec depends on: merging two of them (or losing
/// one) changes the question being asked, so short candidates across two
/// protected nodes are never tried.
std::set<int> protected_nodes(const netlist::Circuit& canonical,
                              const mna::TransferSpec& spec) {
  std::set<int> nodes = {0};
  for (const std::string* name : {&spec.in_pos, &spec.in_neg, &spec.out_pos, &spec.out_neg}) {
    const auto index = canonical.find_node(*name);
    if (index) nodes.insert(*index);
  }
  return nodes;
}

std::vector<PruneCandidate> make_candidates(const netlist::Circuit& canonical,
                                            const std::set<int>& keep_nodes) {
  std::vector<PruneCandidate> candidates;
  for (const netlist::Element& e : canonical.elements()) {
    if (e.value == 0.0) continue;
    candidates.push_back({e.name, /*open=*/true, 0.0, kInf});
    // Short trials only for conductances: a capacitor's surrogate admittance
    // jw*C*K is band-dependent and a VCCS has no "short" notion. Opens are
    // offered for every kind.
    if (e.kind == netlist::ElementKind::Conductance && e.node_pos != e.node_neg &&
        !(keep_nodes.count(e.node_pos) && keep_nodes.count(e.node_neg))) {
      candidates.push_back({e.name, /*open=*/false, e.value * kShortSurrogate, kInf});
    }
  }
  return candidates;
}

/// Band error of one pattern-preserving value-surrogate trial: copy the
/// circuit, overwrite the candidate's value, rebind the lane evaluator onto
/// the new system and replay the pinned plan over the band. A pure function
/// of (plan, candidate) — which is what keeps the parallel ranking
/// bit-identical at every thread count.
double surrogate_error(const netlist::Circuit& base, const PruneCandidate& candidate,
                       mna::CofactorEvaluator& lane, const std::vector<Complex>& s_points,
                       const std::vector<ScaledComplex>& baseline,
                       sparse::ReplayKernel kernel) {
  netlist::Circuit trial = base;
  trial.set_element_value(candidate.element, candidate.open ? 0.0 : candidate.surrogate);
  const mna::NodalSystem system(trial);
  lane.rebind(system);
  return band_error(lane.evaluate_pinned_batch(s_points, 1.0, 1.0, kernel), baseline);
}

/// Apply the first `count` accepted actions for real and drop elements whose
/// stamp vanished: node merges can leave two-terminal self-loops (net-zero
/// stamps) and VCCS with collapsed sense pairs; their symbols would only
/// feed cancelling term pairs to the generators.
netlist::Circuit reduce_circuit(const netlist::Circuit& canonical,
                                const std::vector<SimplifyPruneAction>& actions,
                                std::size_t count) {
  netlist::Circuit reduced = canonical;
  for (std::size_t i = 0; i < count; ++i) {
    if (actions[i].op == "open") {
      reduced.remove_element(actions[i].element);
    } else {
      reduced.short_element(actions[i].element);
    }
  }
  std::vector<std::string> dead;
  for (const netlist::Element& e : reduced.elements()) {
    const bool loop = e.node_pos == e.node_neg;
    const bool dead_sense =
        e.kind == netlist::ElementKind::Vccs && e.ctrl_pos == e.ctrl_neg;
    if (loop || dead_sense) dead.push_back(e.name);
  }
  for (const std::string& name : dead) reduced.remove_element(name);
  return reduced;
}

/// One enumerated term with its precomputed band contributions.
struct ModelTerm {
  symbolic::Term term;
  ScaledDouble value;                  // signed design-point product value
  std::vector<ScaledComplex> contrib;  // value * (jw_i)^s_power per band point
};

/// (jw)^k for every band point and every power up to `max_power`.
std::vector<std::vector<ScaledComplex>> jw_powers(const std::vector<double>& freqs,
                                                  int max_power) {
  std::vector<std::vector<ScaledComplex>> powers(
      static_cast<std::size_t>(max_power) + 1,
      std::vector<ScaledComplex>(freqs.size()));
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const ScaledComplex jw(Complex(0.0, 2.0 * std::numbers::pi * freqs[i]));
    ScaledComplex acc(1.0);
    for (int k = 0; k <= max_power; ++k) {
      powers[static_cast<std::size_t>(k)][i] = acc;
      acc *= jw;
    }
  }
  return powers;
}

struct SideState {
  symbolic::TransferSide side = symbolic::TransferSide::Numerator;
  const PolynomialReference* reference = nullptr;
  std::vector<int> retained;      // coefficient indices to enumerate
  std::vector<double> weights;    // band weight per retained coefficient
  std::vector<ModelTerm> terms;   // enumerated terms (all retained k)
  std::vector<char> kept;         // per-term keep flag after the drop stage
  std::vector<ScaledComplex> sum; // current model value per band point
};

const char* side_name(symbolic::TransferSide side) {
  return side == symbolic::TransferSide::Numerator ? "numerator" : "denominator";
}

/// Band weight of coefficient k: max over band points of its share of the
/// side polynomial, |c_k| w^k / |side(jw)|. A relative error eps on c_k
/// moves the side value by at most eps * weight at every point.
std::vector<double> coefficient_weights(const PolynomialReference& reference,
                                        const std::vector<int>& ks,
                                        const std::vector<ScaledComplex>& side_values,
                                        const std::vector<double>& freqs,
                                        const std::vector<std::vector<ScaledComplex>>& powers) {
  std::vector<double> weights(ks.size(), 0.0);
  for (std::size_t j = 0; j < ks.size(); ++j) {
    const int k = ks[j];
    const ScaledDouble magnitude = reference.at(k).value.abs();
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      const ScaledDouble scale = side_values[i].abs();
      if (scale.is_zero()) continue;
      const ScaledDouble share =
          magnitude * powers[static_cast<std::size_t>(k)][i].abs() / scale;
      weights[j] = std::max(weights[j], share.to_double());
    }
  }
  return weights;
}

}  // namespace

SimplifyResult simplify_transfer(const netlist::Circuit& canonical,
                                 const mna::NodalSystem& system,
                                 const mna::TransferSpec& spec,
                                 const SimplifyOptions& options,
                                 const mna::CofactorEvaluator* evaluator) {
  const auto started = std::chrono::steady_clock::now();
  if (!(options.error_budget > 0.0) || !std::isfinite(options.error_budget)) {
    throw std::invalid_argument("simplify_transfer: error_budget must be positive");
  }
  if (!(options.prune_share > 0.0) || options.prune_share >= 1.0) {
    throw std::invalid_argument("simplify_transfer: prune_share must be in (0, 1)");
  }
  const std::vector<double> freqs = band_grid(options);
  const std::vector<Complex> s_points = to_s_points(freqs);
  const std::size_t points = freqs.size();
  const support::CancellationToken& cancel = options.engine.cancel;
  const sparse::ReplayKernel kernel = options.engine.kernel;

  SimplifyResult result;
  result.certificate.frequencies_hz = freqs;
  result.certificate.error_budget = options.error_budget;
  result.original_elements = canonical.element_count();

  support::ThreadPool pool(options.engine.threads);

  // ---- 1. Baseline: the exact response the certificate is sworn against.
  std::optional<mna::CofactorEvaluator> own_evaluator;
  if (evaluator == nullptr) {
    own_evaluator.emplace(system, spec);
    evaluator = &*own_evaluator;
  }
  std::vector<ScaledComplex> baseline(points);
  {
    const auto samples = evaluator->evaluate_batch(s_points, 1.0, 1.0, &pool, kernel);
    for (std::size_t i = 0; i < points; ++i) {
      const auto h = sample_ratio(samples[i]);
      if (!h) {
        throw mna::SingularSystemError(
            "simplify_transfer: baseline response is singular at " +
            std::to_string(freqs[i]) + " Hz");
      }
      baseline[i] = *h;
    }
  }
  check_cancel(cancel);

  // ---- 2. Replay-ranked pruning (the SBG stage).
  const std::uint64_t plan_baseline_count = evaluator->fresh_factor_count();
  std::vector<SimplifyPruneAction> accepted;
  const double prune_budget = options.prune_share * options.error_budget;
  if (options.prune) {
    std::vector<PruneCandidate> candidates =
        make_candidates(canonical, protected_nodes(canonical, spec));
    {
      std::vector<mna::CofactorEvaluator> lanes(
          static_cast<std::size_t>(pool.size()), *evaluator);
      pool.parallel_for(candidates.size(), [&](std::size_t begin, std::size_t end, int lane) {
        for (std::size_t i = begin; i < end; ++i) {
          if (cancel.cancelled()) return;
          candidates[i].error =
              surrogate_error(canonical, candidates[i], lanes[static_cast<std::size_t>(lane)],
                              s_points, baseline, kernel);
        }
      });
      for (const auto& lane : lanes) {
        result.ranking_fresh_factorizations +=
            lane.fresh_factor_count() - plan_baseline_count;
      }
    }
    check_cancel(cancel);
    result.term_evals += candidates.size() * points;

    // Greedy cumulative walk, cheapest candidate first. Ties break on the
    // (element, op) key so the walk order never depends on sort internals.
    std::sort(candidates.begin(), candidates.end(),
              [](const PruneCandidate& a, const PruneCandidate& b) {
                if (a.error != b.error) return a.error < b.error;
                if (a.element != b.element) return a.element < b.element;
                return a.open < b.open;
              });
    netlist::Circuit cumulative = canonical;
    mna::CofactorEvaluator walk(*evaluator);
    std::set<std::string> actioned;
    for (const PruneCandidate& candidate : candidates) {
      if (candidate.error > prune_budget) break;  // sorted: nothing later fits alone
      if (actioned.count(candidate.element)) continue;
      check_cancel(cancel);
      netlist::Circuit trial = cumulative;
      trial.set_element_value(candidate.element,
                              candidate.open ? 0.0 : candidate.surrogate);
      const mna::NodalSystem trial_system(trial);
      walk.rebind(trial_system);
      const double error =
          band_error(walk.evaluate_pinned_batch(s_points, 1.0, 1.0, kernel), baseline);
      result.term_evals += points;
      if (error <= prune_budget) {
        cumulative = std::move(trial);
        actioned.insert(candidate.element);
        accepted.push_back({candidate.element, candidate.open ? "open" : "short", error});
      }
    }
    result.ranking_fresh_factorizations +=
        walk.fresh_factor_count() - plan_baseline_count;
  }

  // Apply the accepted actions for real and measure the EXACT prune error;
  // the surrogate walk can underestimate (a true short merges nodes, the
  // surrogate only stiffens a value), so roll actions back from the worst
  // end until the measurement fits the prune share.
  std::size_t keep_actions = accepted.size();
  double prune_error = 0.0;
  while (keep_actions > 0) {
    check_cancel(cancel);
    const netlist::Circuit probe = reduce_circuit(canonical, accepted, keep_actions);
    bool fits = false;
    try {
      const mna::NodalSystem probe_system(probe);
      const mna::CofactorEvaluator probe_evaluator(probe_system, spec);
      prune_error = band_error(
          probe_evaluator.evaluate_batch(s_points, 1.0, 1.0, &pool, kernel), baseline);
      result.term_evals += points;
      fits = prune_error <= prune_budget;
    } catch (const std::exception&) {
      fits = false;  // reduction broke the spec's ports; back off
    }
    if (fits) break;
    --keep_actions;
    prune_error = 0.0;
  }
  accepted.resize(keep_actions);
  result.prune_actions = accepted;

  const netlist::Circuit reduced = reduce_circuit(canonical, accepted, keep_actions);
  const mna::NodalSystem reduced_system(reduced);
  const mna::CofactorEvaluator reduced_evaluator(reduced_system, spec);
  result.reduced_dim = reduced_system.dim();
  result.reduced_elements = reduced.element_count();

  // ---- 3. Numerical reference of the reduced circuit (eq. (3) inputs).
  AdaptiveScalingEngine engine(reduced_system, spec, options.engine, &reduced_evaluator);
  const AdaptiveResult reference_run = engine.run();
  if (reference_run.termination == "cancelled") throw support::CancelledError();

  // ---- 4. SDG enumeration with band-weighted epsilon allocation.
  const symbolic::SymbolicNodalMatrix matrix(reduced);
  const double headroom = options.error_budget - prune_error;
  if (!(headroom > 0.0)) {
    throw symbolic::TermEnumerationError(
        "simplify_transfer: pruning consumed the whole error budget");
  }

  SideState sides[2];
  sides[0].side = symbolic::TransferSide::Numerator;
  sides[0].reference = &reference_run.reference.numerator();
  sides[1].side = symbolic::TransferSide::Denominator;
  sides[1].reference = &reference_run.reference.denominator();

  int max_power = 0;
  for (const SideState& s : sides) max_power = std::max(max_power, s.reference->order_bound());
  const auto powers = jw_powers(freqs, max_power);

  for (SideState& s : sides) {
    // Side value over the band from every known coefficient.
    std::vector<ScaledComplex> side_values(points);
    std::vector<int> known;
    for (int k = 0; k <= s.reference->order_bound(); ++k) {
      const Coefficient& c = s.reference->at(k);
      if (c.status != CoefficientStatus::Interpolated || c.value.is_zero()) continue;
      known.push_back(k);
      for (std::size_t i = 0; i < points; ++i) {
        side_values[i] += ScaledComplex(c.value) * powers[static_cast<std::size_t>(k)][i];
      }
    }
    if (known.empty()) {
      throw symbolic::TermEnumerationError(
          std::string("simplify_transfer: ") + side_name(s.side) +
          " reference has no usable coefficients on the band (reference termination: " +
          reference_run.termination + ")");
    }
    const std::vector<double> weights =
        coefficient_weights(*s.reference, known, side_values, freqs, powers);
    const double skip_below = options.coefficient_skip_factor * options.error_budget;
    for (std::size_t j = 0; j < known.size(); ++j) {
      if (weights[j] < skip_below) continue;  // negligible on this band
      s.retained.push_back(known[j]);
      s.weights.push_back(weights[j]);
    }
    if (s.retained.empty()) {
      throw symbolic::TermEnumerationError(
          std::string("simplify_transfer: every ") + side_name(s.side) +
          " coefficient is negligible on the band — nothing to enumerate");
    }
  }

  // Each side gets a share of the headroom; within a side, coefficient k may
  // move the side value by eps_k * weight_k, so eps_k = share / (R * W_k)
  // keeps the total model error inside the share. Coefficients whose eps
  // caps at 0.3 (negligible band weight) consume almost none of the share;
  // a second pass hands their slack to the expensive coefficients, which is
  // where enumeration effort actually goes.
  for (SideState& s : sides) {
    const double share = 0.45 * headroom;
    const double count = static_cast<double>(s.retained.size());
    std::vector<double> epsilons(s.retained.size());
    double capped_cost = 0.0;
    double uncapped = 0.0;
    for (std::size_t j = 0; j < s.retained.size(); ++j) {
      epsilons[j] = std::clamp(share / (count * s.weights[j]), 1e-12, 0.3);
      if (epsilons[j] >= 0.3) {
        capped_cost += 0.3 * s.weights[j];
      } else {
        uncapped += 1.0;
      }
    }
    if (uncapped > 0.0 && capped_cost < share) {
      for (std::size_t j = 0; j < s.retained.size(); ++j) {
        if (epsilons[j] >= 0.3) continue;
        epsilons[j] = std::clamp((share - capped_cost) / (uncapped * s.weights[j]), 1e-12, 0.3);
      }
    }
    std::string unmet;
    for (std::size_t j = 0; j < s.retained.size(); ++j) {
      check_cancel(cancel);
      const int k = s.retained[j];
      symbolic::SdgOptions sdg;
      sdg.epsilon = epsilons[j];
      sdg.max_terms = options.max_terms_per_coefficient;
      sdg.max_queue = options.max_queue;
      const symbolic::SdgResult generated = symbolic::generate_transfer_terms(
          matrix, spec, s.side, k, s.reference->at(k).value, sdg);
      if (std::getenv("SIMPLIFY_DEBUG")) {
        std::fprintf(stderr,
                     "[simplify] %s k=%d w=%.3e eps=%.3e -> %zu terms %s err=%.3e ref=%.6e\n",
                     side_name(s.side), k, s.weights[j], sdg.epsilon,
                     generated.generated(), generated.termination.c_str(),
                     generated.relative_error, s.reference->at(k).value.to_double());
      }
      result.enumerated_terms += generated.generated();
      if (!generated.met) {
        unmet += (unmet.empty() ? "" : ", ") + std::string("s^") + std::to_string(k) + " (" +
                 generated.termination + ", err " + std::to_string(generated.relative_error) +
                 ")";
      }
      for (const symbolic::Term& term : generated.terms) {
        ModelTerm entry;
        entry.term = term;
        entry.value = term.value(matrix.symbols());
        entry.contrib.resize(points);
        for (std::size_t i = 0; i < points; ++i) {
          entry.contrib[i] =
              ScaledComplex(entry.value) * powers[static_cast<std::size_t>(k)][i];
        }
        s.terms.push_back(std::move(entry));
      }
    }
    // Unmet coefficients are not fatal by themselves — the certificate below
    // is the ground truth — but remember them for the error message.
    if (!unmet.empty() && s.terms.empty()) {
      throw symbolic::TermEnumerationError(
          std::string("simplify_transfer: ") + side_name(s.side) +
          " enumeration produced no terms; unmet coefficients: " + unmet);
    }
  }

  // ---- 5. Certificate against the ORIGINAL baseline + greedy term drops.
  for (SideState& s : sides) {
    s.kept.assign(s.terms.size(), 1);
    s.sum.assign(points, ScaledComplex());
    for (const ModelTerm& t : s.terms) {
      for (std::size_t i = 0; i < points; ++i) s.sum[i] += t.contrib[i];
    }
  }
  auto certificate_errors = [&](const std::vector<ScaledComplex>& num,
                                const std::vector<ScaledComplex>& den) {
    std::vector<double> errors(points, kInf);
    for (std::size_t i = 0; i < points; ++i) {
      if (den[i].is_zero() || baseline[i].is_zero()) return errors;
      const ScaledComplex model = num[i] / den[i];
      errors[i] = ((model - baseline[i]).abs() / baseline[i].abs()).to_double();
    }
    return errors;
  };
  auto fresh_sums = [&](const SideState& s) {
    std::vector<ScaledComplex> sum(points);
    for (std::size_t t = 0; t < s.terms.size(); ++t) {
      if (!s.kept[t]) continue;
      for (std::size_t i = 0; i < points; ++i) sum[i] += s.terms[t].contrib[i];
    }
    return sum;
  };
  auto max_error = [](const std::vector<double>& errors) {
    double worst = 0.0;
    for (const double e : errors) worst = std::max(worst, e);
    return worst;
  };

  std::vector<double> errors = certificate_errors(sides[0].sum, sides[1].sum);
  if (std::getenv("SIMPLIFY_DEBUG")) {
    for (std::size_t i = 0; i < points; ++i) {
      std::fprintf(stderr, "[simplify] f=%.3e |H|=%.3e |N~|=%.3e |D~|=%.3e err=%.3e\n",
                   freqs[i], baseline[i].abs().to_double(),
                   sides[0].sum[i].abs().to_double(), sides[1].sum[i].abs().to_double(),
                   errors[i]);
    }
    std::fprintf(stderr, "[simplify] prune_error=%.3e actions=%zu reduced_dim=%d ref=%s\n",
                 prune_error, accepted.size(), result.reduced_dim,
                 reference_run.termination.c_str());
  }
  result.term_evals += points;
  if (max_error(errors) > options.error_budget) {
    throw symbolic::TermEnumerationError(
        "simplify_transfer: enumerated model misses the error budget (" +
        std::to_string(max_error(errors)) + " > " +
        std::to_string(options.error_budget) +
        " over the band) — the generators could not certify this band/budget; "
        "widen the budget, narrow the band, or raise the enumeration caps");
  }

  // Drop order: ascending initial band influence, ties broken by (side,
  // index) — fully deterministic.
  struct DropEntry {
    double influence;
    int side;
    std::size_t index;
  };
  std::vector<DropEntry> drop_order;
  for (int sd = 0; sd < 2; ++sd) {
    const SideState& s = sides[sd];
    for (std::size_t t = 0; t < s.terms.size(); ++t) {
      double influence = 0.0;
      for (std::size_t i = 0; i < points; ++i) {
        const ScaledDouble scale = s.sum[i].abs();
        if (scale.is_zero()) {
          influence = kInf;
          break;
        }
        influence = std::max(influence, (s.terms[t].contrib[i].abs() / scale).to_double());
      }
      drop_order.push_back({influence, sd, t});
    }
  }
  std::sort(drop_order.begin(), drop_order.end(), [](const DropEntry& a, const DropEntry& b) {
    if (a.influence != b.influence) return a.influence < b.influence;
    if (a.side != b.side) return a.side < b.side;
    return a.index < b.index;
  });

  std::vector<DropEntry> dropped;
  std::vector<ScaledComplex> trial_sum(points);
  for (const DropEntry& entry : drop_order) {
    if (entry.influence > 2.0 * options.error_budget) break;  // cannot possibly fit
    SideState& s = sides[entry.side];
    for (std::size_t i = 0; i < points; ++i) {
      trial_sum[i] = s.sum[i] - s.terms[entry.index].contrib[i];
    }
    const std::vector<double> trial_errors =
        entry.side == 0 ? certificate_errors(trial_sum, sides[1].sum)
                        : certificate_errors(sides[0].sum, trial_sum);
    result.term_evals += points;
    if (max_error(trial_errors) <= options.error_budget) {
      s.kept[entry.index] = 0;
      s.sum = trial_sum;
      dropped.push_back(entry);
    }
  }

  // The greedy walk updated the sums incrementally; recompute the final
  // certificate from scratch so the reported envelope is exactly what an
  // independent re-evaluation of the returned terms yields. If float drift
  // pushed a borderline commit over the line, restore drops until it fits
  // (terminates: with zero drops the fresh certificate passed above).
  while (true) {
    sides[0].sum = fresh_sums(sides[0]);
    sides[1].sum = fresh_sums(sides[1]);
    errors = certificate_errors(sides[0].sum, sides[1].sum);
    if (max_error(errors) <= options.error_budget || dropped.empty()) break;
    const DropEntry& restore = dropped.back();
    sides[restore.side].kept[restore.index] = 1;
    dropped.pop_back();
  }

  // ---- 6. Package the result.
  result.certificate.relative_error = errors;
  result.certificate.max_relative_error = max_error(errors);
  for (int sd = 0; sd < 2; ++sd) {
    SideState& s = sides[sd];
    auto& out = sd == 0 ? result.numerator_terms : result.denominator_terms;
    symbolic::Expression expression;
    for (std::size_t t = 0; t < s.terms.size(); ++t) {
      if (!s.kept[t]) continue;
      const symbolic::Term& term = s.terms[t].term;
      SimplifiedTerm simplified;
      simplified.coefficient = term.coefficient;
      for (const int id : term.symbols) {
        simplified.symbols.push_back(matrix.symbols().at(id).name);
      }
      simplified.s_power = term.s_power;
      simplified.value = s.terms[t].value;
      out.push_back(std::move(simplified));
      expression.add_term(term);
    }
    auto& text = sd == 0 ? result.numerator_expression : result.denominator_expression;
    text = expression.to_string(matrix.symbols(), 24);
  }
  result.kept_terms = result.numerator_terms.size() + result.denominator_terms.size();
  result.terms_dropped = result.enumerated_terms - result.kept_terms;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return result;
}

SimplifyResult simplify_transfer(const netlist::Circuit& circuit,
                                 const mna::TransferSpec& spec,
                                 const SimplifyOptions& options) {
  const netlist::Circuit canonical = netlist::canonicalize(circuit);
  const mna::NodalSystem system(canonical);
  return simplify_transfer(canonical, system, spec, options, nullptr);
}

}  // namespace symref::refgen
