#include "refgen/naive.h"

#include "interp/interpolator.h"
#include "interp/order.h"

namespace symref::refgen {

using numeric::ScaledComplex;
using numeric::ScaledDouble;

ScaledDouble denormalize_coefficient(const ScaledDouble& normalized, int index, int degree,
                                     double f_scale, double g_scale) {
  const ScaledDouble f_power = ScaledDouble::pow(ScaledDouble(f_scale), index);
  const ScaledDouble g_power = ScaledDouble::pow(ScaledDouble(g_scale), degree - index);
  return normalized / (f_power * g_power);
}

ScaledDouble normalize_coefficient(const ScaledDouble& denormalized, int index, int degree,
                                   double f_scale, double g_scale) {
  const ScaledDouble f_power = ScaledDouble::pow(ScaledDouble(f_scale), index);
  const ScaledDouble g_power = ScaledDouble::pow(ScaledDouble(g_scale), degree - index);
  return denormalized * f_power * g_power;
}

BaselineResult fixed_scale_interpolation(const mna::NodalSystem& system,
                                         const mna::TransferSpec& spec, double f_scale,
                                         double g_scale, const BaselineOptions& options) {
  BaselineResult result;
  result.f_scale = f_scale;
  result.g_scale = g_scale;

  const mna::CofactorEvaluator evaluator(system, spec);
  const int bound = system.order_bound();
  const int points = options.points > 0 ? options.points : bound + 1;
  result.points = points;

  const interp::UnitCircleSampler sampler(points, options.conjugate_symmetry);
  std::vector<ScaledComplex> num_unique;
  std::vector<ScaledComplex> den_unique;
  num_unique.reserve(sampler.evaluation_points().size());
  den_unique.reserve(sampler.evaluation_points().size());
  for (const std::complex<double>& s_hat : sampler.evaluation_points()) {
    const auto sample = evaluator.evaluate(s_hat, f_scale, g_scale);
    if (!sample.ok) return result;  // singular: report !ok
    num_unique.push_back(sample.numerator);
    den_unique.push_back(sample.denominator);
    ++result.evaluations;
  }

  result.numerator_normalized =
      interp::coefficients_from_samples(sampler.expand(num_unique));
  result.denominator_normalized =
      interp::coefficients_from_samples(sampler.expand(den_unique));

  const interp::RegionOptions region_options{options.sigma, options.noise_decades};
  const auto num_magnitudes = interp::real_magnitudes(result.numerator_normalized);
  const auto den_magnitudes = interp::real_magnitudes(result.denominator_normalized);
  result.numerator_region = interp::find_valid_region(num_magnitudes, region_options);
  result.denominator_region = interp::find_valid_region(den_magnitudes, region_options);

  const int num_degree = evaluator.numerator_degree();
  const int den_degree = evaluator.denominator_degree();
  result.numerator_denormalized.resize(result.numerator_normalized.size());
  result.denominator_denormalized.resize(result.denominator_normalized.size());
  for (std::size_t i = 0; i < result.numerator_normalized.size(); ++i) {
    result.numerator_denormalized[i] = denormalize_coefficient(
        result.numerator_normalized[i].real(), static_cast<int>(i), num_degree, f_scale,
        g_scale);
  }
  for (std::size_t i = 0; i < result.denominator_normalized.size(); ++i) {
    result.denominator_denormalized[i] = denormalize_coefficient(
        result.denominator_normalized[i].real(), static_cast<int>(i), den_degree, f_scale,
        g_scale);
  }
  result.ok = true;
  return result;
}

BaselineResult naive_interpolation(const mna::NodalSystem& system,
                                   const mna::TransferSpec& spec,
                                   const BaselineOptions& options) {
  return fixed_scale_interpolation(system, spec, 1.0, 1.0, options);
}

}  // namespace symref::refgen
