#include "refgen/batch.h"

#include "support/thread_pool.h"

namespace symref::refgen {

BatchRunner::BatchRunner(int threads) : threads_(threads) {}

std::vector<BatchResult> BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  std::vector<BatchResult> results(jobs.size());
  if (jobs.empty()) return results;

  support::ThreadPool pool(threads_);
  pool.parallel_for(jobs.size(), [&](std::size_t begin, std::size_t end, int /*lane*/) {
    for (std::size_t i = begin; i < end; ++i) {
      const BatchJob& job = jobs[i];
      BatchResult& out = results[i];
      out.label = job.label;
      AdaptiveOptions options = job.options;
      options.threads = 1;
      try {
        out.result = generate_reference(job.circuit, job.spec, options);
        if (!out.result.complete) {
          const api::StatusCode code = out.result.termination == "singular_system"
                                           ? api::StatusCode::kSingularSystem
                                           : api::StatusCode::kIncomplete;
          out.status = api::Status::error(
              code, "adaptive engine terminated: " + out.result.termination);
        }
      } catch (...) {
        out.status = api::status_from_current_exception();
      }
    }
  });
  return results;
}

}  // namespace symref::refgen
