// The paper's contribution: adaptive-scaling polynomial interpolation.
//
// A single (f, g) scaling exposes only the coefficients within
// ~(noise_decades - sigma) decades of the scaled profile's peak (its "valid
// region", eq. (12)). The engine chains interpolations:
//
//   1. First scaling from element-value means: f = 1/mean(C), g = 1/mean(G)
//      (§3.2) — heuristically the widest region.
//   2. To reach higher powers of s, re-tilt by q from eq. (14):
//         q^(e-m) = (|p_m| / |p_e|) * 10^(13+r)
//      where m is the last region's peak index, e its upper end and r a
//      tuning factor; then f' = f*sqrt(q), g' = g/sqrt(q) (eq. (13),
//      simultaneous scaling keeps both factors below ~1e18, §3.2).
//   3. For lower powers, the mirrored eq. (15) with the region's lower end.
//   4. If a gap of invalid coefficients remains between two regions, retry
//      with the geometric-mean scale factors of the bracketing
//      interpolations (eq. (16)).
//   5. Once a low run p_0..p_{k-1} and the coefficients above the highest
//      unknown are known, later interpolations run on the deflated
//      polynomial (eq. (17)) with only l-k+1 points (§3.3).
//
// Numerator and denominator share every factorization; the scaling schedule
// is driven by the denominator until it completes, then by the numerator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "interp/region.h"
#include "mna/nodal.h"
#include "mna/transfer.h"
#include "numeric/scaled.h"
#include "refgen/reference.h"
#include "support/cancellation.h"

namespace symref::refgen {

struct IterationRecord;

/// Iteration-progress observer: called on the engine's thread immediately
/// after each interpolation iteration is recorded (the record is final).
/// Long-running observers stall the engine; do not mutate engine state from
/// the callback. Response caches short-circuit whole runs, so an observer
/// sees no iterations on a cache hit.
using ProgressObserver = std::function<void(const IterationRecord&)>;

struct AdaptiveOptions {
  /// Significant digits demanded of each coefficient (eq. (12) floor).
  int sigma = 6;
  /// Working-precision decades (~13 for IEEE double through a DFT).
  double noise_decades = 13.0;
  /// Tuning factor r of eqs. (14)/(15). 0 = adjacent regions just touch;
  /// negative values increase overlap (safer), positive speed up coverage.
  double tuning_r = 0.0;
  int max_iterations = 64;
  /// Apply eq. (17) deflation from the second interpolation on.
  bool use_deflation = true;
  /// Halve evaluations using P(conj s) = conj P(s).
  bool conjugate_symmetry = true;
  /// Split the tilt between f and g (eq. (13)). When false, the entire tilt
  /// goes into f (single-factor scaling — the §3.2 ablation; factors can
  /// then exceed 1e18 and lose accuracy).
  bool simultaneous_scaling = true;
  /// Use geometric instead of arithmetic means in the first-scale heuristic.
  bool geometric_mean_heuristic = false;
  /// Override the first scale factors (0 = use the heuristic).
  double initial_f = 0.0;
  double initial_g = 0.0;
  /// Consecutive no-progress iterations in one direction before the
  /// remaining coefficients there are declared negligible/zero. Each failed
  /// attempt escalates the tilt, so `limit` failures mean the coefficients
  /// sit more than `limit` full validity windows beyond every observable
  /// region — at working precision they are indistinguishable from zero
  /// (§3.1: such coefficients "would not be possible to calculate
  /// correctly"; §3.3 neglects them).
  int no_progress_limit = 3;
  /// Worker lanes for the per-iteration sample batch (the LU evaluations —
  /// the dominant cost). 1 = serial; <= 0 picks the hardware thread count.
  /// Results are bit-identical at every setting: samples are independent
  /// replays of one shared factorization plan, written into per-point slots
  /// (see CofactorEvaluator::evaluate_batch).
  int threads = 1;
  /// Numeric replay kernel for the per-iteration sample batch: kScalar
  /// replays one point at a time, kBatched runs SoA supernodal lanes (see
  /// sparse/batched.h). Bit-identical results by the oracle contract, so —
  /// like threads — never part of any request fingerprint.
  sparse::ReplayKernel kernel = sparse::ReplayKernel::kScalar;
  /// Iteration-progress hook (see ProgressObserver above). Not part of any
  /// request fingerprint: two requests differing only here are identical.
  ProgressObserver on_iteration;
  /// Cooperative cancellation checkpoint, polled once per interpolation
  /// iteration. A cancelled run() returns promptly with whatever is known
  /// so far and termination == "cancelled" (complete stays false); the
  /// evaluator's caches remain valid for later runs. Like on_iteration,
  /// not part of any request fingerprint.
  support::CancellationToken cancel;
};

enum class IterationPurpose { Initial, Upward, Downward, GapRepair };

const char* purpose_name(IterationPurpose purpose) noexcept;

/// Everything one interpolation produced — the bench harnesses print these
/// records as the paper's Tables 2 and 3.
struct IterationRecord {
  int index = 0;
  IterationPurpose purpose = IterationPurpose::Initial;
  double f_scale = 1.0;
  double g_scale = 1.0;
  double q = 1.0;  // tilt applied relative to the previous iteration
  int points = 0;
  int evaluations = 0;
  bool deflated = false;
  int num_shift = 0;  // residual index offset (eq. (17) k) per polynomial
  int den_shift = 0;
  /// Normalized residual coefficients; entry i corresponds to s^(i+shift).
  std::vector<numeric::ScaledComplex> num_normalized;
  std::vector<numeric::ScaledComplex> den_normalized;
  /// Regions in residual index space.
  interp::ValidRegion num_region;
  interp::ValidRegion den_region;
  /// Estimated absolute noise injected by the eq. (17) subtraction of known
  /// coefficients (limits how deep the residual's valid region can reach).
  numeric::ScaledDouble num_subtraction_noise;
  numeric::ScaledDouble den_subtraction_noise;
  /// Estimated absolute noise from the matrix evaluations themselves
  /// (LU round-off amplified by entry spread; see CofactorEvaluator::Sample).
  numeric::ScaledDouble num_evaluation_noise;
  numeric::ScaledDouble den_evaluation_noise;
  int num_new_coefficients = 0;
  int den_new_coefficients = 0;
  /// Worst relative disagreement on re-computed (overlap) coefficients.
  double max_overlap_mismatch = 0.0;
  double seconds = 0.0;
};

struct AdaptiveResult {
  NumericalReference reference;
  std::vector<IterationRecord> iterations;
  bool complete = false;
  int total_evaluations = 0;
  double seconds = 0.0;
  std::string termination;  // "complete", "max_iterations", ...
  /// Homogeneity degrees used for (de)normalization (eq. (11) exponents).
  int numerator_degree = 0;
  int denominator_degree = 0;
  /// Degradation-ladder accounting (see CofactorEvaluator::Sample): the
  /// run finished, but `degraded_points` of its accepted samples required
  /// an escalated pivot threshold. `degraded` is the caller-facing summary
  /// flag — a usable result whose pivot-quality guarantee is weakened.
  std::uint64_t degraded_points = 0;
  bool degraded = false;
};

class AdaptiveScalingEngine {
 public:
  /// The system/spec must outlive the engine. One run() per engine.
  ///
  /// `evaluator` (optional) is a caller-owned CofactorEvaluator built over
  /// the SAME system and spec: its cached assembly pattern and LU plan then
  /// survive across engine runs — the warm-handle path of api::Service. The
  /// evaluator is non-reentrant, so the caller must serialize runs that
  /// share one. When null, run() builds its own throwaway evaluator.
  AdaptiveScalingEngine(const mna::NodalSystem& system, const mna::TransferSpec& spec,
                        AdaptiveOptions options = {},
                        const mna::CofactorEvaluator* evaluator = nullptr);

  /// First-interpolation scale factors (heuristic or overrides).
  [[nodiscard]] std::pair<double, double> initial_scales() const;

  /// Observer invoked after every iteration (see ProgressObserver). May be
  /// set once before run(); replaces any observer carried in the options.
  void set_progress_observer(ProgressObserver observer) {
    options_.on_iteration = std::move(observer);
  }

  AdaptiveResult run();

 private:
  const mna::NodalSystem& system_;
  const mna::TransferSpec& spec_;
  AdaptiveOptions options_;
  const mna::CofactorEvaluator* external_evaluator_ = nullptr;
};

/// Convenience wrapper: canonicalize + build the nodal system + run.
/// Returns the result together with the canonical circuit's order bound.
AdaptiveResult generate_reference(const netlist::Circuit& circuit,
                                  const mna::TransferSpec& spec,
                                  const AdaptiveOptions& options = {});

}  // namespace symref::refgen
