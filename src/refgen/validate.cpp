#include "refgen/validate.h"

#include <cmath>

namespace symref::refgen {

BodeComparison compare_bode(const NumericalReference& reference,
                            const netlist::Circuit& circuit, const mna::TransferSpec& spec,
                            double f_start_hz, double f_stop_hz, int points_per_decade) {
  const mna::AcSimulator simulator(circuit);
  const std::vector<mna::BodePoint> simulated =
      simulator.bode(spec, f_start_hz, f_stop_hz, points_per_decade);
  const std::vector<mna::BodePoint> interpolated =
      reference.bode(f_start_hz, f_stop_hz, points_per_decade);

  BodeComparison comparison;
  comparison.points.reserve(simulated.size());
  for (std::size_t i = 0; i < simulated.size() && i < interpolated.size(); ++i) {
    BodeComparisonPoint p;
    p.frequency_hz = simulated[i].frequency_hz;
    p.simulated_db = simulated[i].magnitude_db;
    p.interpolated_db = interpolated[i].magnitude_db;
    p.simulated_phase_deg = simulated[i].phase_deg;
    p.interpolated_phase_deg = interpolated[i].phase_deg;
    comparison.points.push_back(p);

    comparison.max_magnitude_error_db = std::max(
        comparison.max_magnitude_error_db, std::fabs(p.simulated_db - p.interpolated_db));
    // Compare phases modulo 360 (unwrap offsets can differ between sweeps).
    double dphi = std::fabs(p.simulated_phase_deg - p.interpolated_phase_deg);
    dphi = std::fmod(dphi, 360.0);
    if (dphi > 180.0) dphi = 360.0 - dphi;
    comparison.max_phase_error_deg = std::max(comparison.max_phase_error_deg, dphi);
  }
  return comparison;
}

double relative_transfer_error(const NumericalReference& reference,
                               const netlist::Circuit& circuit, const mna::TransferSpec& spec,
                               std::complex<double> s) {
  const mna::AcSimulator simulator(circuit);
  const std::complex<double> simulated = simulator.transfer_s(spec, s);
  const std::complex<double> interpolated = reference.transfer(s);
  const double scale = std::abs(simulated);
  if (scale == 0.0) return std::abs(interpolated);
  return std::abs(interpolated - simulated) / scale;
}

}  // namespace symref::refgen
