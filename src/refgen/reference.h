// The numerical reference: exact network-function coefficients at the
// design point, the quantity SDG/SBG error control needs (paper eq. (3)).
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "mna/ac.h"
#include "numeric/polynomial.h"
#include "numeric/scaled.h"

namespace symref::refgen {

/// How a coefficient became known.
enum class CoefficientStatus {
  Unknown,     // never rose above the error floor; value unreliable
  Interpolated,// inside a valid region of some interpolation
  ZeroTail,    // proven zero: beyond the detected true order
};

/// Stable serialization token ("unknown", "interpolated", "zero") — shared
/// by the reference text format (refgen/io.h) and the api JSON payloads.
const char* coefficient_status_name(CoefficientStatus status) noexcept;

struct Coefficient {
  numeric::ScaledDouble value;  // denormalized (true) value
  CoefficientStatus status = CoefficientStatus::Unknown;
  int iteration = -1;  // which interpolation produced it (-1: none)
  /// Estimated relative error at acceptance: (interpolation round-off +
  /// deflation subtraction noise) / |value|. Used to bound the noise that
  /// subtracting this coefficient injects into later deflated
  /// interpolations (eq. (17)).
  double relative_accuracy = 1.0;

  [[nodiscard]] bool known() const noexcept { return status != CoefficientStatus::Unknown; }
};

/// One polynomial (numerator or denominator) of the network function.
class PolynomialReference {
 public:
  PolynomialReference() = default;
  explicit PolynomialReference(int order_bound)
      : coefficients_(static_cast<std::size_t>(order_bound) + 1) {}

  [[nodiscard]] int order_bound() const noexcept {
    return static_cast<int>(coefficients_.size()) - 1;
  }
  /// Highest index whose value is known and nonzero (-1 for all-zero).
  [[nodiscard]] int effective_order() const noexcept;

  [[nodiscard]] const Coefficient& at(int index) const {
    return coefficients_.at(static_cast<std::size_t>(index));
  }
  Coefficient& at(int index) { return coefficients_.at(static_cast<std::size_t>(index)); }

  [[nodiscard]] std::size_t size() const noexcept { return coefficients_.size(); }
  [[nodiscard]] bool complete() const noexcept;
  [[nodiscard]] int known_count() const noexcept;

  /// Known coefficients as a polynomial (unknown indices contribute 0).
  [[nodiscard]] numeric::Polynomial<numeric::ScaledDouble> polynomial() const;

 private:
  std::vector<Coefficient> coefficients_;
};

/// Full reference for one transfer function.
class NumericalReference {
 public:
  NumericalReference() = default;
  NumericalReference(PolynomialReference numerator, PolynomialReference denominator)
      : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {}

  [[nodiscard]] const PolynomialReference& numerator() const noexcept { return numerator_; }
  [[nodiscard]] const PolynomialReference& denominator() const noexcept { return denominator_; }
  PolynomialReference& numerator() noexcept { return numerator_; }
  PolynomialReference& denominator() noexcept { return denominator_; }

  [[nodiscard]] bool complete() const noexcept {
    return numerator_.complete() && denominator_.complete();
  }

  /// H(s) from the interpolated coefficients; overflow-safe scaled Horner.
  [[nodiscard]] std::complex<double> transfer(std::complex<double> s) const;

  /// H(j*2*pi*f).
  [[nodiscard]] std::complex<double> transfer_at_hz(double frequency_hz) const;

  /// Bode sweep from the coefficients (same conventions as AcSimulator).
  [[nodiscard]] std::vector<mna::BodePoint> bode(double f_start_hz, double f_stop_hz,
                                                 int points_per_decade = 10) const;

  /// Per-coefficient report for logs/tables.
  [[nodiscard]] std::string describe(int significant_digits = 6) const;

 private:
  PolynomialReference numerator_;
  PolynomialReference denominator_;
};

}  // namespace symref::refgen
