// Validation of interpolated references against direct AC analysis.
//
// This is the paper's Fig. 2 experiment: evaluate the transfer function from
// the interpolated coefficients across a frequency sweep and compare with an
// "electrical simulator" (here: mna::AcSimulator, a direct complex MNA solve
// per point — exactly what a SPICE AC analysis computes).
#pragma once

#include <vector>

#include "mna/ac.h"
#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "refgen/reference.h"

namespace symref::refgen {

struct BodeComparisonPoint {
  double frequency_hz = 0.0;
  double interpolated_db = 0.0;
  double simulated_db = 0.0;
  double interpolated_phase_deg = 0.0;
  double simulated_phase_deg = 0.0;
};

struct BodeComparison {
  std::vector<BodeComparisonPoint> points;
  double max_magnitude_error_db = 0.0;
  double max_phase_error_deg = 0.0;
};

/// Sweep both paths over [f_start, f_stop]. The circuit passed here should
/// be the same one the reference was generated from (the original,
/// pre-canonicalization netlist is fine: AcSimulator handles all elements).
BodeComparison compare_bode(const NumericalReference& reference,
                            const netlist::Circuit& circuit, const mna::TransferSpec& spec,
                            double f_start_hz, double f_stop_hz, int points_per_decade = 10);

/// Pointwise relative error |H_ref(s) - H_sim(s)| / |H_sim(s)| at one
/// complex frequency (used by property tests on random circuits).
double relative_transfer_error(const NumericalReference& reference,
                               const netlist::Circuit& circuit, const mna::TransferSpec& spec,
                               std::complex<double> s);

}  // namespace symref::refgen
