#include "sparse/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace symref::sparse {

namespace {

/// NaN/Inf stamps are rejected at assembly/rebind time: a non-finite value
/// would otherwise ride silently through the LU replay (every pivot check
/// compares magnitudes, and NaN comparisons are false) and poison the
/// result. Throwing std::invalid_argument surfaces as a typed Status at the
/// facade instead.
void require_finite_stamp(const PatternStamp& stamp) {
  if (std::isfinite(stamp.conductance) && std::isfinite(stamp.capacitance)) return;
  throw std::invalid_argument("PatternedMatrix: non-finite stamp value at (" +
                              std::to_string(stamp.row) + ", " + std::to_string(stamp.col) +
                              ")");
}

}  // namespace

std::complex<double> CompressedMatrix::at(int r, int c) const noexcept {
  if (r < 0 || r >= dim) return {};
  const int begin = row_start[static_cast<std::size_t>(r)];
  const int end = row_start[static_cast<std::size_t>(r) + 1];
  const auto first = cols.begin() + begin;
  const auto last = cols.begin() + end;
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return {};
  return values[static_cast<std::size_t>(it - cols.begin())];
}

void CompressedMatrix::multiply(const std::vector<std::complex<double>>& x,
                                std::vector<std::complex<double>>& y) const {
  assert(static_cast<int>(x.size()) == dim);
  y.assign(static_cast<std::size_t>(dim), {});
  for (int r = 0; r < dim; ++r) {
    std::complex<double> acc;
    for (int k = row_start[static_cast<std::size_t>(r)];
         k < row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += values[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(cols[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

PatternedMatrix::PatternedMatrix(int dim, std::vector<PatternStamp> stamps) {
  std::sort(stamps.begin(), stamps.end(), [](const PatternStamp& a, const PatternStamp& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  matrix_.dim = dim;
  matrix_.row_start.assign(static_cast<std::size_t>(dim) + 1, 0);
  std::size_t i = 0;
  while (i < stamps.size()) {
    PatternStamp merged = stamps[i];
    std::size_t j = i + 1;
    while (j < stamps.size() && stamps[j].row == merged.row && stamps[j].col == merged.col) {
      merged.conductance += stamps[j].conductance;
      merged.capacitance += stamps[j].capacitance;
      ++j;
    }
    require_finite_stamp(merged);
    matrix_.cols.push_back(merged.col);
    conductance_.push_back(merged.conductance);
    capacitance_.push_back(merged.capacitance);
    ++matrix_.row_start[static_cast<std::size_t>(merged.row) + 1];
    i = j;
  }
  for (int r = 0; r < dim; ++r) {
    matrix_.row_start[static_cast<std::size_t>(r) + 1] +=
        matrix_.row_start[static_cast<std::size_t>(r)];
  }
  matrix_.values.assign(matrix_.cols.size(), {});
}

bool PatternedMatrix::rebind(int dim, std::vector<PatternStamp> stamps) {
  if (dim != matrix_.dim) return false;
  std::sort(stamps.begin(), stamps.end(), [](const PatternStamp& a, const PatternStamp& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // First pass: verify the merged positions reproduce the cached layout
  // exactly, without touching the value arrays (rebind must be all-or-
  // nothing so a failed attempt leaves a usable matrix behind). Stamp
  // values are validated here too, BEFORE any mutation, for the same
  // all-or-nothing guarantee.
  for (const PatternStamp& stamp : stamps) require_finite_stamp(stamp);
  std::size_t k = 0;
  std::size_t i = 0;
  while (i < stamps.size()) {
    std::size_t j = i + 1;
    while (j < stamps.size() && stamps[j].row == stamps[i].row &&
           stamps[j].col == stamps[i].col) {
      ++j;
    }
    if (k >= matrix_.cols.size() || matrix_.cols[k] != stamps[i].col ||
        k < static_cast<std::size_t>(matrix_.row_start[static_cast<std::size_t>(stamps[i].row)]) ||
        k >= static_cast<std::size_t>(
                 matrix_.row_start[static_cast<std::size_t>(stamps[i].row) + 1])) {
      return false;
    }
    ++k;
    i = j;
  }
  if (k != matrix_.cols.size()) return false;

  // Second pass: rewrite the base values in place.
  k = 0;
  i = 0;
  while (i < stamps.size()) {
    PatternStamp merged = stamps[i];
    std::size_t j = i + 1;
    while (j < stamps.size() && stamps[j].row == merged.row && stamps[j].col == merged.col) {
      merged.conductance += stamps[j].conductance;
      merged.capacitance += stamps[j].capacitance;
      ++j;
    }
    conductance_[k] = merged.conductance;
    capacitance_[k] = merged.capacitance;
    ++k;
    i = j;
  }
  return true;
}

const CompressedMatrix& PatternedMatrix::assemble(std::complex<double> s, double f_scale,
                                                  double g_scale) {
  for (std::size_t k = 0; k < matrix_.values.size(); ++k) {
    matrix_.values[k] = g_scale * conductance_[k] + s * (f_scale * capacitance_[k]);
  }
  return matrix_;
}

void PatternedMatrix::assemble_batch(std::complex<double>* dest, std::size_t stride,
                                     const std::complex<double>* s, int lanes, double f_scale,
                                     double g_scale) const {
  // k-major with an inner lane loop: the base conductance/capacitance loads
  // and the f_scale product amortize across all lanes of the batch. The per
  // (k, lane) expression matches assemble() exactly (bit-identity contract).
  for (std::size_t k = 0; k < matrix_.values.size(); ++k) {
    const double g = g_scale * conductance_[k];
    const double c = f_scale * capacitance_[k];
    std::complex<double>* lane_dest = dest + k * stride;
    for (int l = 0; l < lanes; ++l) {
      lane_dest[l] = g + s[l] * c;
    }
  }
}

void TripletMatrix::add(int row, int col, std::complex<double> value) {
  if (row < 0 || row >= dim_ || col < 0 || col >= dim_) {
    throw std::out_of_range("TripletMatrix::add: index outside matrix");
  }
  if (value == std::complex<double>()) return;
  triplets_.push_back({row, col, value});
}

CompressedMatrix TripletMatrix::compress() const {
  CompressedMatrix out;
  out.dim = dim_;
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  out.row_start.assign(static_cast<std::size_t>(dim_) + 1, 0);
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i + 1;
    std::complex<double> sum = sorted[i].value;
    while (j < sorted.size() && sorted[j].row == sorted[i].row && sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    if (sum != std::complex<double>()) {
      out.cols.push_back(sorted[i].col);
      out.values.push_back(sum);
      ++out.row_start[static_cast<std::size_t>(sorted[i].row) + 1];
    }
    i = j;
  }
  for (int r = 0; r < dim_; ++r) {
    out.row_start[static_cast<std::size_t>(r) + 1] += out.row_start[static_cast<std::size_t>(r)];
  }
  return out;
}

}  // namespace symref::sparse
