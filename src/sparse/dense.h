// Dense complex LU with partial pivoting.
//
// Serves as the validation oracle for the sparse Markowitz factorization and
// as the solver for small systems where sparse bookkeeping is overhead.
#pragma once

#include <complex>
#include <vector>

#include "numeric/scaled.h"
#include "sparse/matrix.h"

namespace symref::sparse {

class DenseLu {
 public:
  /// Factor a dense row-major matrix (dim x dim). Returns false when a pivot
  /// column is exactly zero (structurally or numerically singular).
  bool factor(std::vector<std::complex<double>> matrix, int dim);

  /// Factor from triplet assembly.
  bool factor(const TripletMatrix& matrix);

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Solve A x = b; b is overwritten with x. Requires ok().
  void solve(std::vector<std::complex<double>>& rhs) const;

  /// det(A) as an extended-range value (pivot product * permutation sign).
  [[nodiscard]] numeric::ScaledComplex determinant() const;

 private:
  int dim_ = 0;
  bool ok_ = false;
  int permutation_sign_ = 1;
  std::vector<std::complex<double>> lu_;  // combined L (unit diag) and U
  std::vector<int> row_perm_;             // pivot row order
};

}  // namespace symref::sparse
