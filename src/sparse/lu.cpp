#include "sparse/lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <new>
#include <utility>

#include "support/fault_injection.h"

namespace symref::sparse {

namespace {

using Complex = std::complex<double>;

/// Bounded Markowitz search: only this many least-populated active columns
/// are examined before falling back to a full scan (which is needed only
/// when none of the candidates holds a numerically acceptable pivot).
constexpr int kCandidateColumns = 4;

/// One entry of a row of the active submatrix during symbolic analysis.
struct ActiveEntry {
  int col = 0;
  Complex value;
};

}  // namespace

int permutation_sign(const std::vector<int>& order) {
  const std::size_t n = order.size();
  std::vector<bool> visited(n, false);
  int sign = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    std::size_t cycle_length = 0;
    std::size_t j = i;
    while (!visited[j]) {
      visited[j] = true;
      assert(order[j] >= 0 && static_cast<std::size_t>(order[j]) < n);
      j = static_cast<std::size_t>(order[j]);
      ++cycle_length;
    }
    if (cycle_length % 2 == 0) sign = -sign;
  }
  return sign;
}

bool SparseLu::factor(const TripletMatrix& matrix, const SparseLuOptions& options) {
  return factor(matrix.compress(), options);
}

bool SparseLu::factor(const CompressedMatrix& matrix, const SparseLuOptions& options) {
  return analyze_and_factor(matrix, options);
}

bool SparseLu::analyze_and_factor(const CompressedMatrix& matrix,
                                  const SparseLuOptions& options) {
  // Fault site "lu_alloc": the symbolic analysis is the allocation-heavy
  // path (plan vectors sized by fill-in); an injected bad_alloc exercises
  // the facade's kUnavailable mapping and the JobManager retry path.
  if (support::fault("lu_alloc")) throw std::bad_alloc();
  const int n = matrix.dim;
  dim_ = n;
  ok_ = false;
  max_abs_entry_ = 0.0;
  // A fresh plan per factor(): clones of this instance may still replay the
  // old one, so it is never mutated in place (copy-on-factor).
  plan_.reset();
  auto plan = std::make_shared<ReplayPlan>();
  plan->dim = n;
  plan->row_order.assign(static_cast<std::size_t>(n), -1);
  plan->col_order.assign(static_cast<std::size_t>(n), -1);
  plan->col_step.assign(static_cast<std::size_t>(n), -1);
  pivots_.assign(static_cast<std::size_t>(n), Complex{});

  // Active submatrix: unordered row vectors plus per-column row lists. The
  // column lists are append-only (rows detached by pivoting are skipped via
  // row_active), and exact active counts are kept separately for the
  // Markowitz costs. Duplicates cannot arise: a row is appended to a column
  // list only when the scatter stamp proves the entry is new.
  std::vector<std::vector<ActiveEntry>> rows(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> col_rows(static_cast<std::size_t>(n));
  std::vector<int> col_count(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < n; ++r) {
    const int begin = matrix.row_start[static_cast<std::size_t>(r)];
    const int end = matrix.row_start[static_cast<std::size_t>(r) + 1];
    rows[static_cast<std::size_t>(r)].reserve(static_cast<std::size_t>(end - begin));
    for (int k = begin; k < end; ++k) {
      const int c = matrix.cols[static_cast<std::size_t>(k)];
      const Complex v = matrix.values[static_cast<std::size_t>(k)];
      max_abs_entry_ = std::max(max_abs_entry_, std::abs(v));
      rows[static_cast<std::size_t>(r)].push_back({c, v});
      col_rows[static_cast<std::size_t>(c)].push_back(r);
      ++col_count[static_cast<std::size_t>(c)];
    }
  }

  std::vector<char> row_active(static_cast<std::size_t>(n), 1);
  std::vector<char> col_active(static_cast<std::size_t>(n), 1);
  std::vector<int> row_step(static_cast<std::size_t>(n), -1);
  // Scatter workspace: stamp[col] == epoch marks presence, pos[col] is the
  // entry's index inside the row vector being updated.
  std::vector<int> stamp(static_cast<std::size_t>(n), -1);
  std::vector<int> pos(static_cast<std::size_t>(n), 0);
  int epoch = 0;

  // Per-step payload harvested into the flat plan after elimination.
  std::vector<std::vector<ActiveEntry>> urows(static_cast<std::size_t>(n));
  std::vector<std::vector<std::pair<int, Complex>>> lops(static_cast<std::size_t>(n));

  for (int step = 0; step < n; ++step) {
    // --- Pivot selection: minimum Markowitz cost among numerically
    // acceptable entries of the candidate columns; ties broken by larger
    // magnitude. Candidates are the least-populated active columns — the
    // classical observation (Markowitz, Sparse1.3) that the best pivot
    // almost always lives in a near-singleton column, so scanning the whole
    // active submatrix every step is wasted work.
    int pivot_row = -1;
    int pivot_col = -1;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    double best_magnitude = 0.0;

    auto search_column = [&](int c) {
      const std::uint64_t count = static_cast<std::uint64_t>(col_count[static_cast<std::size_t>(c)]);
      for (const int r : col_rows[static_cast<std::size_t>(c)]) {
        if (!row_active[static_cast<std::size_t>(r)]) continue;
        const auto& row = rows[static_cast<std::size_t>(r)];
        double row_max = 0.0;
        Complex value;
        for (const ActiveEntry& entry : row) {
          row_max = std::max(row_max, std::abs(entry.value));
          if (entry.col == c) value = entry.value;
        }
        const double magnitude = std::abs(value);
        if (magnitude <= options.singularity_tolerance ||
            magnitude < options.pivot_threshold * row_max) {
          continue;
        }
        const std::uint64_t cost = (row.size() - 1) * (count - 1);
        if (cost < best_cost || (cost == best_cost && magnitude > best_magnitude)) {
          best_cost = cost;
          best_magnitude = magnitude;
          pivot_row = r;
          pivot_col = c;
        }
      }
    };

    // Gather the kCandidateColumns least-populated active columns.
    int candidates[kCandidateColumns];
    int candidate_count = 0;
    for (int c = 0; c < n; ++c) {
      if (!col_active[static_cast<std::size_t>(c)] || col_count[static_cast<std::size_t>(c)] == 0) {
        continue;
      }
      int at = candidate_count < kCandidateColumns ? candidate_count : kCandidateColumns;
      // Insertion-sort by active count; the worst candidate falls off.
      while (at > 0 && col_count[static_cast<std::size_t>(candidates[at - 1])] >
                           col_count[static_cast<std::size_t>(c)]) {
        if (at < kCandidateColumns) candidates[at] = candidates[at - 1];
        --at;
      }
      if (at < kCandidateColumns) candidates[at] = c;
      if (candidate_count < kCandidateColumns) ++candidate_count;
    }
    for (int i = 0; i < candidate_count; ++i) search_column(candidates[i]);

    if (pivot_row < 0) {
      // None of the candidates holds an acceptable pivot: widen to the full
      // scan before declaring the matrix (numerically) singular.
      for (int c = 0; c < n; ++c) {
        if (col_active[static_cast<std::size_t>(c)] && col_count[static_cast<std::size_t>(c)] > 0) {
          search_column(c);
        }
      }
      if (pivot_row < 0) return false;
    }

    plan->row_order[static_cast<std::size_t>(step)] = pivot_row;
    plan->col_order[static_cast<std::size_t>(step)] = pivot_col;
    plan->col_step[static_cast<std::size_t>(pivot_col)] = step;
    row_step[static_cast<std::size_t>(pivot_row)] = step;
    row_active[static_cast<std::size_t>(pivot_row)] = 0;
    col_active[static_cast<std::size_t>(pivot_col)] = 0;

    // Freeze the pivot row as U row `step` (pivot entry kept separately).
    auto& prow = rows[static_cast<std::size_t>(pivot_row)];
    auto& urow = urows[static_cast<std::size_t>(step)];
    urow.reserve(prow.size() - 1);
    Complex pivot;
    for (const ActiveEntry& entry : prow) {
      --col_count[static_cast<std::size_t>(entry.col)];
      if (entry.col == pivot_col) {
        pivot = entry.value;
      } else {
        urow.push_back(entry);
      }
    }
    pivots_[static_cast<std::size_t>(step)] = pivot;
    prow.clear();
    prow.shrink_to_fit();

    // Eliminate pivot_col from every remaining row that contains it.
    auto& lrow = lops[static_cast<std::size_t>(step)];
    for (const int r : col_rows[static_cast<std::size_t>(pivot_col)]) {
      if (!row_active[static_cast<std::size_t>(r)]) continue;
      auto& row = rows[static_cast<std::size_t>(r)];
      ++epoch;
      for (std::size_t i = 0; i < row.size(); ++i) {
        stamp[static_cast<std::size_t>(row[i].col)] = epoch;
        pos[static_cast<std::size_t>(row[i].col)] = static_cast<int>(i);
      }
      const int at = pos[static_cast<std::size_t>(pivot_col)];
      const Complex multiplier = replay_div(row[static_cast<std::size_t>(at)].value, pivot);
      // Remove the eliminated entry (swap-pop keeps the scatter consistent).
      if (static_cast<std::size_t>(at) + 1 != row.size()) {
        row[static_cast<std::size_t>(at)] = row.back();
        pos[static_cast<std::size_t>(row[static_cast<std::size_t>(at)].col)] = at;
      }
      row.pop_back();
      --col_count[static_cast<std::size_t>(pivot_col)];
      lrow.emplace_back(r, multiplier);
      for (const ActiveEntry& entry : urow) {
        if (stamp[static_cast<std::size_t>(entry.col)] == epoch) {
          row[static_cast<std::size_t>(pos[static_cast<std::size_t>(entry.col)])].value -=
              multiplier * entry.value;
        } else {
          stamp[static_cast<std::size_t>(entry.col)] = epoch;
          pos[static_cast<std::size_t>(entry.col)] = static_cast<int>(row.size());
          row.push_back({entry.col, -multiplier * entry.value});
          col_rows[static_cast<std::size_t>(entry.col)].push_back(r);
          ++col_count[static_cast<std::size_t>(entry.col)];
          ++plan->fill_in;
        }
      }
    }
    col_rows[static_cast<std::size_t>(pivot_col)].clear();
  }

  plan->permutation_sign =
      permutation_sign(plan->row_order) * permutation_sign(plan->col_order);

  // --- Harvest the flat plan -------------------------------------------------
  plan->pattern_row_start = matrix.row_start;
  plan->pattern_cols = matrix.cols;
  plan->a_dest.resize(matrix.cols.size());
  for (std::size_t k = 0; k < matrix.cols.size(); ++k) {
    plan->a_dest[k] = plan->col_step[static_cast<std::size_t>(matrix.cols[k])];
  }

  // L bucketed by row-step; iterating steps in ascending order leaves each
  // row's dependencies sorted, which the replay and solve() rely on.
  plan->l_start.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int step = 0; step < n; ++step) {
    for (const auto& [r, multiplier] : lops[static_cast<std::size_t>(step)]) {
      ++plan->l_start[static_cast<std::size_t>(row_step[static_cast<std::size_t>(r)]) + 1];
    }
  }
  for (int i = 0; i < n; ++i) {
    plan->l_start[static_cast<std::size_t>(i) + 1] += plan->l_start[static_cast<std::size_t>(i)];
  }
  plan->l_steps.resize(static_cast<std::size_t>(plan->l_start[static_cast<std::size_t>(n)]));
  l_values_.resize(plan->l_steps.size());
  std::vector<int> cursor(plan->l_start.begin(), plan->l_start.end() - 1);
  for (int step = 0; step < n; ++step) {
    for (const auto& [r, multiplier] : lops[static_cast<std::size_t>(step)]) {
      const int i = row_step[static_cast<std::size_t>(r)];
      const int at = cursor[static_cast<std::size_t>(i)]++;
      plan->l_steps[static_cast<std::size_t>(at)] = step;
      l_values_[static_cast<std::size_t>(at)] = multiplier;
    }
  }

  // U rows are normalized to ascending step order. This is value-safe even
  // though the elimination froze them in its own order: within one dep row
  // every replay update targets a DISTINCT workspace slot, so reordering a
  // row permutes independent operations and every per-slot accumulation
  // sequence — hence every computed value — is unchanged. The normalization
  // buys two things: the triangular solves get a fixed deterministic
  // accumulation order, and supernode detection below reduces to prefix
  // comparisons on sorted rows.
  plan->u_start.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int step = 0; step < n; ++step) {
    plan->u_start[static_cast<std::size_t>(step) + 1] =
        plan->u_start[static_cast<std::size_t>(step)] +
        static_cast<int>(urows[static_cast<std::size_t>(step)].size());
  }
  plan->u_steps.resize(static_cast<std::size_t>(plan->u_start[static_cast<std::size_t>(n)]));
  u_values_.resize(plan->u_steps.size());
  std::vector<std::pair<int, Complex>> sorted_row;
  for (int step = 0; step < n; ++step) {
    sorted_row.clear();
    for (const ActiveEntry& entry : urows[static_cast<std::size_t>(step)]) {
      sorted_row.emplace_back(plan->col_step[static_cast<std::size_t>(entry.col)], entry.value);
    }
    std::sort(sorted_row.begin(), sorted_row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    int at = plan->u_start[static_cast<std::size_t>(step)];
    for (const auto& [u_step, value] : sorted_row) {
      plan->u_steps[static_cast<std::size_t>(at)] = u_step;
      u_values_[static_cast<std::size_t>(at)] = value;
      ++at;
    }
  }

  detect_supernodes(*plan);

  plan_ = std::move(plan);
  ok_ = true;
  return true;
}

void SparseLu::detect_supernodes(ReplayPlan& plan) {
  const int n = plan.dim;
  plan.supernode_start.clear();
  plan.supernode_start.push_back(0);
  if (n == 0) return;

  // urow(i) == [i+1] ++ urow(i+1), element-wise on the ascending-step rows.
  auto u_chains = [&](int i) {
    const int begin_i = plan.u_start[static_cast<std::size_t>(i)];
    const int len_i = plan.u_start[static_cast<std::size_t>(i) + 1] - begin_i;
    const int begin_next = plan.u_start[static_cast<std::size_t>(i) + 1];
    const int len_next = plan.u_start[static_cast<std::size_t>(i) + 2] - begin_next;
    if (len_i != len_next + 1) return false;
    if (plan.u_steps[static_cast<std::size_t>(begin_i)] != i + 1) return false;
    for (int t = 0; t < len_next; ++t) {
      if (plan.u_steps[static_cast<std::size_t>(begin_i + 1 + t)] !=
          plan.u_steps[static_cast<std::size_t>(begin_next + t)]) {
        return false;
      }
    }
    return true;
  };

  // ldeps(r) ends with [b .. r-1] (the dep list is ascending by
  // construction, so the block deps — if all present — are its suffix).
  auto l_has_block_suffix = [&](int r, int b) {
    const int count = r - b;
    const int begin = plan.l_start[static_cast<std::size_t>(r)];
    const int len = plan.l_start[static_cast<std::size_t>(r) + 1] - begin;
    if (len < count) return false;
    for (int t = 0; t < count; ++t) {
      if (plan.l_steps[static_cast<std::size_t>(begin + len - count + t)] != b + t) return false;
    }
    return true;
  };

  int block_begin = 0;
  for (int i = 0; i < n; ++i) {
    const bool extend = i + 1 < n && u_chains(i) && l_has_block_suffix(i + 1, block_begin);
    if (!extend) {
      plan.supernode_start.push_back(i + 1);
      block_begin = i + 1;
    }
  }
}

void SparseLu::require_refactor(const CompressedMatrix& matrix, const SparseLuOptions& options) {
  if (!plan_) throw RefusedReplayError("SparseLu: replay required but no plan recorded");
  if (!refactor(matrix, options)) {
    throw RefusedReplayError(
        "SparseLu: plan replay refused (pattern changed or reused pivot degraded)");
  }
}

bool SparseLu::refactor(const CompressedMatrix& matrix, const SparseLuOptions& options) {
  if (!plan_ || matrix.dim != plan_->dim || matrix.row_start != plan_->pattern_row_start ||
      matrix.cols != plan_->pattern_cols) {
    return false;  // no plan or pattern changed: need a full factor()
  }
  // Fault site "lu_pivot": pretend a reused pivot degraded. The caller's
  // fallback (fresh factor through the degradation ladder) re-selects the
  // same pivots on a healthy matrix, so results stay bit-identical — which
  // is exactly what the recovery tests assert.
  if (support::fault("lu_pivot")) return false;
  const ReplayPlan& plan = *plan_;
  const int n = plan.dim;
  dim_ = n;
  max_abs_entry_ = 0.0;
  for (const Complex& v : matrix.values) {
    max_abs_entry_ = std::max(max_abs_entry_, replay_abs(v));
  }
  l_values_.resize(plan.l_steps.size());
  u_values_.resize(plan.u_steps.size());
  pivots_.resize(static_cast<std::size_t>(n));

  // Up-looking replay: each row-step clears its pattern slots in the dense
  // workspace, scatters the row of A, applies the recorded updates of the
  // earlier steps in order, and gathers the surviving values back into the
  // flat U storage. The operation sequence matches analyze_and_factor()
  // exactly, so the numeric results agree bit-for-bit. Everything read from
  // the plan is const — a replay touches only this instance's numeric
  // payload, which is what lets clones sharing one plan run in parallel.
  work_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int k = plan.l_start[static_cast<std::size_t>(i)]; k < plan.l_start[static_cast<std::size_t>(i) + 1]; ++k) {
      work_[static_cast<std::size_t>(plan.l_steps[static_cast<std::size_t>(k)])] = Complex{};
    }
    for (int k = plan.u_start[static_cast<std::size_t>(i)]; k < plan.u_start[static_cast<std::size_t>(i) + 1]; ++k) {
      work_[static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)])] = Complex{};
    }
    work_[static_cast<std::size_t>(i)] = Complex{};

    const int r = plan.row_order[static_cast<std::size_t>(i)];
    for (int k = plan.pattern_row_start[static_cast<std::size_t>(r)];
         k < plan.pattern_row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      work_[static_cast<std::size_t>(plan.a_dest[static_cast<std::size_t>(k)])] =
          matrix.values[static_cast<std::size_t>(k)];
    }

    for (int k = plan.l_start[static_cast<std::size_t>(i)]; k < plan.l_start[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = plan.l_steps[static_cast<std::size_t>(k)];
      const Complex multiplier =
          replay_div(work_[static_cast<std::size_t>(j)], pivots_[static_cast<std::size_t>(j)]);
      l_values_[static_cast<std::size_t>(k)] = multiplier;
      for (int t = plan.u_start[static_cast<std::size_t>(j)]; t < plan.u_start[static_cast<std::size_t>(j) + 1]; ++t) {
        work_[static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(t)])] -=
            replay_mul(multiplier, u_values_[static_cast<std::size_t>(t)]);
      }
    }

    // Pivot acceptance against the replayed active row (pivot + U part),
    // with a relaxed threshold: this pivot position was not re-searched.
    const Complex pivot = work_[static_cast<std::size_t>(i)];
    const double pivot_magnitude = replay_abs(pivot);
    double row_max = pivot_magnitude;
    for (int k = plan.u_start[static_cast<std::size_t>(i)]; k < plan.u_start[static_cast<std::size_t>(i) + 1]; ++k) {
      row_max = std::max(
          row_max, replay_abs(work_[static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)])]));
    }
    if (pivot_magnitude <= options.singularity_tolerance ||
        pivot_magnitude < kReplayRelaxedThresholdScale * options.pivot_threshold * row_max) {
      ok_ = false;
      return false;
    }
    pivots_[static_cast<std::size_t>(i)] = pivot;
    for (int k = plan.u_start[static_cast<std::size_t>(i)]; k < plan.u_start[static_cast<std::size_t>(i) + 1]; ++k) {
      u_values_[static_cast<std::size_t>(k)] =
          work_[static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)])];
    }
  }
  // Permutation, pattern and sign are unchanged by construction.
  ok_ = true;
  return true;
}

void SparseLu::solve(std::vector<Complex>& rhs) const {
  assert(ok_ && plan_);
  assert(static_cast<int>(rhs.size()) == dim_);
  if (!ok_ || !plan_) return;  // defined no-op in release builds
  const ReplayPlan& plan = *plan_;
  const int n = dim_;

  // Forward substitution L y = P b, then in-place back substitution
  // U z = y; both run on the flat per-row storage.
  work_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Complex acc = rhs[static_cast<std::size_t>(plan.row_order[static_cast<std::size_t>(i)])];
    for (int k = plan.l_start[static_cast<std::size_t>(i)]; k < plan.l_start[static_cast<std::size_t>(i) + 1]; ++k) {
      acc -= replay_mul(l_values_[static_cast<std::size_t>(k)],
                        work_[static_cast<std::size_t>(plan.l_steps[static_cast<std::size_t>(k)])]);
    }
    work_[static_cast<std::size_t>(i)] = acc;
  }
  for (int i = n - 1; i >= 0; --i) {
    Complex acc = work_[static_cast<std::size_t>(i)];
    for (int k = plan.u_start[static_cast<std::size_t>(i)]; k < plan.u_start[static_cast<std::size_t>(i) + 1]; ++k) {
      assert(plan.u_steps[static_cast<std::size_t>(k)] > i);
      acc -= replay_mul(u_values_[static_cast<std::size_t>(k)],
                        work_[static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)])]);
    }
    work_[static_cast<std::size_t>(i)] = replay_div(acc, pivots_[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < n; ++i) {
    rhs[static_cast<std::size_t>(plan.col_order[static_cast<std::size_t>(i)])] =
        work_[static_cast<std::size_t>(i)];
  }
}

double SparseLu::min_abs_pivot() const noexcept {
  assert(ok_);
  if (!ok_) return 0.0;
  if (dim_ == 0) return std::numeric_limits<double>::infinity();
  double smallest = std::numeric_limits<double>::infinity();
  for (const Complex& pivot : pivots_) {
    smallest = std::min(smallest, replay_abs(pivot));
  }
  return smallest;
}

numeric::ScaledComplex SparseLu::determinant() const {
  if (!ok_) return numeric::ScaledComplex();
  return numeric::scaled_pivot_product(pivots_.data(), pivots_.size(), 1,
                                       static_cast<double>(plan_->permutation_sign));
}

}  // namespace symref::sparse
