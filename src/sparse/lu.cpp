#include "sparse/lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace symref::sparse {

namespace {
using Complex = std::complex<double>;
}  // namespace

int permutation_sign(const std::vector<int>& order) {
  const std::size_t n = order.size();
  std::vector<bool> visited(n, false);
  int sign = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    std::size_t cycle_length = 0;
    std::size_t j = i;
    while (!visited[j]) {
      visited[j] = true;
      assert(order[j] >= 0 && static_cast<std::size_t>(order[j]) < n);
      j = static_cast<std::size_t>(order[j]);
      ++cycle_length;
    }
    if (cycle_length % 2 == 0) sign = -sign;
  }
  return sign;
}

bool SparseLu::factor(const TripletMatrix& matrix, const SparseLuOptions& options) {
  return factor(matrix.compress(), options);
}

bool SparseLu::factor(const CompressedMatrix& matrix, const SparseLuOptions& options) {
  const int n = matrix.dim;
  dim_ = n;
  ok_ = false;
  fill_in_ = 0;
  row_order_.assign(static_cast<std::size_t>(n), -1);
  col_order_.assign(static_cast<std::size_t>(n), -1);
  col_step_.assign(static_cast<std::size_t>(n), -1);
  pivots_.assign(static_cast<std::size_t>(n), Complex{});
  lower_ops_.assign(static_cast<std::size_t>(n), {});
  upper_rows_.assign(static_cast<std::size_t>(n), {});

  // Active submatrix in a dynamic row-hash / column-set structure.
  std::vector<std::unordered_map<int, Complex>> rows(static_cast<std::size_t>(n));
  std::vector<std::unordered_set<int>> col_rows(static_cast<std::size_t>(n));
  const std::size_t original_nnz = matrix.nonzeros();
  max_abs_entry_ = 0.0;
  for (int r = 0; r < n; ++r) {
    for (int k = matrix.row_start[static_cast<std::size_t>(r)];
         k < matrix.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = matrix.cols[static_cast<std::size_t>(k)];
      const Complex v = matrix.values[static_cast<std::size_t>(k)];
      const double magnitude = std::abs(v);
      if (magnitude <= options.singularity_tolerance) continue;
      max_abs_entry_ = std::max(max_abs_entry_, magnitude);
      rows[static_cast<std::size_t>(r)].emplace(c, v);
      col_rows[static_cast<std::size_t>(c)].insert(r);
    }
  }

  std::vector<bool> row_active(static_cast<std::size_t>(n), true);
  std::vector<bool> col_active(static_cast<std::size_t>(n), true);

  for (int step = 0; step < n; ++step) {
    // --- Pivot selection: minimum Markowitz cost among numerically
    // acceptable entries; ties broken by larger magnitude.
    int pivot_row = -1;
    int pivot_col = -1;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    double best_magnitude = 0.0;

    for (int r = 0; r < n; ++r) {
      if (!row_active[static_cast<std::size_t>(r)]) continue;
      const auto& row = rows[static_cast<std::size_t>(r)];
      if (row.empty()) continue;
      double row_max = 0.0;
      for (const auto& [c, v] : row) row_max = std::max(row_max, std::abs(v));
      if (row_max == 0.0) continue;
      const double accept = options.pivot_threshold * row_max;
      const std::uint64_t row_count = row.size();
      for (const auto& [c, v] : row) {
        const double magnitude = std::abs(v);
        if (magnitude < accept || magnitude <= options.singularity_tolerance) continue;
        const std::uint64_t col_count = col_rows[static_cast<std::size_t>(c)].size();
        const std::uint64_t cost = (row_count - 1) * (col_count - 1);
        if (cost < best_cost || (cost == best_cost && magnitude > best_magnitude)) {
          best_cost = cost;
          best_magnitude = magnitude;
          pivot_row = r;
          pivot_col = c;
        }
      }
    }

    if (pivot_row < 0) {
      // No acceptable pivot anywhere: matrix is (numerically) singular.
      return false;
    }

    row_order_[static_cast<std::size_t>(step)] = pivot_row;
    col_order_[static_cast<std::size_t>(step)] = pivot_col;
    col_step_[static_cast<std::size_t>(pivot_col)] = step;

    auto& prow = rows[static_cast<std::size_t>(pivot_row)];
    const Complex pivot = prow.at(pivot_col);
    pivots_[static_cast<std::size_t>(step)] = pivot;

    // Freeze the pivot row as U row `step` (pivot entry kept separately).
    auto& urow = upper_rows_[static_cast<std::size_t>(step)];
    urow.reserve(prow.size() - 1);
    for (const auto& [c, v] : prow) {
      if (c != pivot_col) urow.push_back({c, v});
    }

    // Detach pivot row/column from the active structure.
    row_active[static_cast<std::size_t>(pivot_row)] = false;
    col_active[static_cast<std::size_t>(pivot_col)] = false;
    for (const auto& [c, v] : prow) {
      col_rows[static_cast<std::size_t>(c)].erase(pivot_row);
    }

    // Eliminate pivot_col from every remaining row that contains it.
    auto& pcol_rows = col_rows[static_cast<std::size_t>(pivot_col)];
    auto& lops = lower_ops_[static_cast<std::size_t>(step)];
    lops.reserve(pcol_rows.size());
    for (const int r : pcol_rows) {
      auto& row = rows[static_cast<std::size_t>(r)];
      const auto it = row.find(pivot_col);
      assert(it != row.end());
      const Complex multiplier = it->second / pivot;
      row.erase(it);
      lops.push_back({r, multiplier});
      for (const auto& [c, v] : urow) {
        auto [slot, inserted] = row.try_emplace(c, Complex{});
        if (inserted) {
          col_rows[static_cast<std::size_t>(c)].insert(r);
          ++fill_in_;
        }
        slot->second -= multiplier * v;
      }
    }
    pcol_rows.clear();
  }

  permutation_sign_ = permutation_sign(row_order_) * permutation_sign(col_order_);
  ok_ = true;
  pattern_dim_ = n;
  pattern_nonzeros_ = original_nnz;
  return true;
}

void SparseLu::solve(std::vector<Complex>& rhs) const {
  assert(ok_);
  assert(static_cast<int>(rhs.size()) == dim_);
  const int n = dim_;

  // Forward pass replays the elimination on the right-hand side:
  // y[step] is the pivot-row value once all earlier steps have updated it.
  std::vector<Complex> y(static_cast<std::size_t>(n));
  for (int step = 0; step < n; ++step) {
    const Complex value = rhs[static_cast<std::size_t>(row_order_[static_cast<std::size_t>(step)])];
    y[static_cast<std::size_t>(step)] = value;
    if (value == Complex{}) continue;
    for (const Entry& op : lower_ops_[static_cast<std::size_t>(step)]) {
      rhs[static_cast<std::size_t>(op.index)] -= op.value * value;
    }
  }

  // Back substitution over U; z[step] is the unknown for column
  // col_order_[step], and every U entry references a later step.
  std::vector<Complex> z(static_cast<std::size_t>(n));
  for (int step = n - 1; step >= 0; --step) {
    Complex acc = y[static_cast<std::size_t>(step)];
    for (const Entry& entry : upper_rows_[static_cast<std::size_t>(step)]) {
      const int target_step = col_step_[static_cast<std::size_t>(entry.index)];
      assert(target_step > step);
      acc -= entry.value * z[static_cast<std::size_t>(target_step)];
    }
    z[static_cast<std::size_t>(step)] = acc / pivots_[static_cast<std::size_t>(step)];
  }

  for (int step = 0; step < n; ++step) {
    rhs[static_cast<std::size_t>(col_order_[static_cast<std::size_t>(step)])] =
        z[static_cast<std::size_t>(step)];
  }
}

bool SparseLu::refactor(const CompressedMatrix& matrix, const SparseLuOptions& options) {
  if (!ok_ || matrix.dim != pattern_dim_ || matrix.nonzeros() != pattern_nonzeros_) {
    return false;  // no prior plan or pattern changed: need a full factor()
  }
  const int n = matrix.dim;

  std::vector<std::unordered_map<int, Complex>> rows(static_cast<std::size_t>(n));
  std::vector<std::unordered_set<int>> col_rows(static_cast<std::size_t>(n));
  max_abs_entry_ = 0.0;
  for (int r = 0; r < n; ++r) {
    for (int k = matrix.row_start[static_cast<std::size_t>(r)];
         k < matrix.row_start[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = matrix.cols[static_cast<std::size_t>(k)];
      const Complex v = matrix.values[static_cast<std::size_t>(k)];
      const double magnitude = std::abs(v);
      if (magnitude <= options.singularity_tolerance) continue;
      max_abs_entry_ = std::max(max_abs_entry_, magnitude);
      rows[static_cast<std::size_t>(r)].emplace(c, v);
      col_rows[static_cast<std::size_t>(c)].insert(r);
    }
  }

  // Numeric elimination along the stored pivot order. Pivots are accepted
  // with a relaxed threshold (we did not search for the best one); a pivot
  // that degraded too much signals the caller to re-run the full factor().
  constexpr double kRelaxedThresholdScale = 1e-5;
  for (int step = 0; step < n; ++step) {
    const int pivot_row = row_order_[static_cast<std::size_t>(step)];
    const int pivot_col = col_order_[static_cast<std::size_t>(step)];
    auto& prow = rows[static_cast<std::size_t>(pivot_row)];
    const auto pivot_it = prow.find(pivot_col);
    if (pivot_it == prow.end()) {
      ok_ = false;
      return false;  // structural change (exact cancellation created a zero)
    }
    const Complex pivot = pivot_it->second;
    double row_max = 0.0;
    for (const auto& [c, v] : prow) row_max = std::max(row_max, std::abs(v));
    if (std::abs(pivot) <= options.singularity_tolerance ||
        std::abs(pivot) < kRelaxedThresholdScale * options.pivot_threshold * row_max) {
      ok_ = false;
      return false;
    }
    pivots_[static_cast<std::size_t>(step)] = pivot;

    auto& urow = upper_rows_[static_cast<std::size_t>(step)];
    urow.clear();
    urow.reserve(prow.size() - 1);
    for (const auto& [c, v] : prow) {
      if (c != pivot_col) urow.push_back({c, v});
    }
    for (const auto& [c, v] : prow) {
      col_rows[static_cast<std::size_t>(c)].erase(pivot_row);
    }

    auto& pcol_rows = col_rows[static_cast<std::size_t>(pivot_col)];
    auto& lops = lower_ops_[static_cast<std::size_t>(step)];
    lops.clear();
    lops.reserve(pcol_rows.size());
    for (const int r : pcol_rows) {
      auto& row = rows[static_cast<std::size_t>(r)];
      const auto it = row.find(pivot_col);
      assert(it != row.end());
      const Complex multiplier = it->second / pivot;
      row.erase(it);
      lops.push_back({r, multiplier});
      for (const auto& [c, v] : urow) {
        auto [slot, inserted] = row.try_emplace(c, Complex{});
        if (inserted) col_rows[static_cast<std::size_t>(c)].insert(r);
        slot->second -= multiplier * v;
      }
    }
    pcol_rows.clear();
  }
  // Permutation and sign are unchanged by construction.
  ok_ = true;
  return true;
}

double SparseLu::min_abs_pivot() const noexcept {
  double smallest = 0.0;
  for (const Complex& pivot : pivots_) {
    const double magnitude = std::abs(pivot);
    if (smallest == 0.0 || magnitude < smallest) smallest = magnitude;
  }
  return smallest;
}

numeric::ScaledComplex SparseLu::determinant() const {
  if (!ok_) return numeric::ScaledComplex();
  numeric::ScaledComplex det(Complex(static_cast<double>(permutation_sign_), 0.0));
  for (const Complex& pivot : pivots_) det *= numeric::ScaledComplex(pivot);
  return det;
}

}  // namespace sparse
