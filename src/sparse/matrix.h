// Triplet (COO) assembly matrix for MNA stamping.
//
// Element stamps accumulate duplicate (row, col) contributions; compress()
// merges them into a deterministic column-sorted row structure consumed by
// the LU factorizations.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace symref::sparse {

struct Triplet {
  int row = 0;
  int col = 0;
  std::complex<double> value;
};

/// Row-compressed view produced by TripletMatrix::compress().
struct CompressedMatrix {
  int dim = 0;
  /// row_start[i]..row_start[i+1] index into cols/values; cols sorted per row.
  std::vector<int> row_start;
  std::vector<int> cols;
  std::vector<std::complex<double>> values;

  [[nodiscard]] std::size_t nonzeros() const noexcept { return values.size(); }

  /// Entry (r, c); zero when not stored. O(log nnz(row)).
  [[nodiscard]] std::complex<double> at(int r, int c) const noexcept;

  /// Dense y = A*x (used by iterative-refinement and tests).
  void multiply(const std::vector<std::complex<double>>& x,
                std::vector<std::complex<double>>& y) const;
};

/// One structural stamp position of an admittance-like matrix whose values
/// are an affine function of the evaluation point:
/// value(s, f, g) = g * conductance + s * (f * capacitance).
/// (For full MNA assembly the same shape reads base + s * reactive with
/// f = g = 1.)
struct PatternStamp {
  int row = 0;
  int col = 0;
  double conductance = 0.0;
  double capacitance = 0.0;
};

/// On-the-fly lane assembly for BatchedReplay: the base value arrays plus
/// the per-lane frequency points, letting the replay's scatter compute
/// value(k, l) = g_scale * conductance[k] + s[l] * (f_scale * capacitance[k])
/// as it streams — the exact assemble_batch expression without ever
/// materializing the nnz-by-width value block.
struct LaneAssembly {
  const double* conductance = nullptr;  // per CSR position
  const double* capacitance = nullptr;  // per CSR position
  const std::complex<double>* s = nullptr;  // per lane
  double f_scale = 1.0;
  double g_scale = 1.0;
};

/// Pattern-cached assembly: the structural nonzero layout is computed once
/// from a stamp list (duplicates merged, rows sorted), and every assemble()
/// call rewrites only the value array of the cached CompressedMatrix — no
/// triplet allocation, sorting or compression on the per-sample path. The
/// fixed layout is what keeps SparseLu::refactor() applicable across an
/// entire frequency sweep or interpolation run.
class PatternedMatrix {
 public:
  PatternedMatrix() = default;
  PatternedMatrix(int dim, std::vector<PatternStamp> stamps);

  /// Rewrite the cached values for one (s, f, g) evaluation point and return
  /// the assembled matrix (pattern stable across calls).
  const CompressedMatrix& assemble(std::complex<double> s, double f_scale = 1.0,
                                   double g_scale = 1.0);

  /// Batched SoA assembly: for each lane l in [0, lanes), write
  /// dest[k * stride + l] = g_scale * conductance[k] + s[l] * (f_scale *
  /// capacitance[k]) for every CSR position k — the same expression as
  /// assemble(s[l], f_scale, g_scale), so each lane is bit-identical to a
  /// scalar assembly at its point. dest is typically
  /// BatchedReplay::values() with stride == its width.
  void assemble_batch(std::complex<double>* dest, std::size_t stride,
                      const std::complex<double>* s, int lanes, double f_scale = 1.0,
                      double g_scale = 1.0) const;

  /// Replace the base conductance/capacitance arrays from a NEW stamp list
  /// with the SAME merged structure — the per-sample path of parameter
  /// sweeps, where element values change but the topology does not. Returns
  /// true when every merged (row, col) position matched the cached layout
  /// (values rewritten in place, no allocation of a new pattern); false
  /// leaves the matrix untouched and the caller falls back to rebuilding
  /// (PatternedMatrix(dim, stamps)), after which a plan replay will refuse
  /// and trigger a fresh factorization.
  bool rebind(int dim, std::vector<PatternStamp> stamps);

  [[nodiscard]] const CompressedMatrix& matrix() const noexcept { return matrix_; }

  /// View for BatchedReplay's fused-assembly replay: lane l of CSR position
  /// k assembles to the same bits as assemble(s[l], f_scale, g_scale). The
  /// view borrows this matrix's arrays — keep it alive while in use.
  [[nodiscard]] LaneAssembly lane_assembly(const std::complex<double>* s, double f_scale = 1.0,
                                           double g_scale = 1.0) const noexcept {
    return {conductance_.data(), capacitance_.data(), s, f_scale, g_scale};
  }

 private:
  CompressedMatrix matrix_;
  std::vector<double> conductance_;  // aligned with matrix_.values
  std::vector<double> capacitance_;
};

class TripletMatrix {
 public:
  explicit TripletMatrix(int dim) : dim_(dim) {}

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t entries() const noexcept { return triplets_.size(); }
  [[nodiscard]] const std::vector<Triplet>& triplets() const noexcept { return triplets_; }

  /// Accumulate value at (row, col); indices must be within [0, dim).
  void add(int row, int col, std::complex<double> value);

  void clear() noexcept { triplets_.clear(); }

  /// Merge duplicates and sort columns within each row.
  [[nodiscard]] CompressedMatrix compress() const;

 private:
  int dim_;
  std::vector<Triplet> triplets_;
};

}  // namespace symref::sparse
