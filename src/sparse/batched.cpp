#include "sparse/batched.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/fault_injection.h"

namespace symref::sparse {

namespace {
using Complex = std::complex<double>;

// Lane-loop micro-kernels on split re/im planes. Each performs, per lane,
// exactly the scalar expression it is named for (see replay_mul/replay_div
// in lu.h) — written as plane arithmetic so the compiler emits packed
// mul/add/div over adjacent lanes instead of per-complex shuffles. The
// baseline target has no FMA, so products and sums round exactly like the
// scalar helpers and bit-identity per lane is preserved.

// mult = work[j] / pivot[j] (the replay_div conjugate formula per lane).
inline void lane_div(double* __restrict mr, double* __restrict mi, const double* __restrict ar,
                     const double* __restrict ai, const double* __restrict br,
                     const double* __restrict bi, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    const double den = br[l] * br[l] + bi[l] * bi[l];
    mr[l] = (ar[l] * br[l] + ai[l] * bi[l]) / den;
    mi[l] = (ai[l] * br[l] - ar[l] * bi[l]) / den;
  }
}

// work[i] = work[i] / pivot[i] — the in-place form the back substitution
// needs (numerator and destination are the same planes, so both parts are
// read before either is stored).
inline void lane_div_inplace(double* __restrict ar, double* __restrict ai,
                             const double* __restrict br, const double* __restrict bi,
                             std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    const double den = br[l] * br[l] + bi[l] * bi[l];
    const double re = (ar[l] * br[l] + ai[l] * bi[l]) / den;
    const double im = (ai[l] * br[l] - ar[l] * bi[l]) / den;
    ar[l] = re;
    ai[l] = im;
  }
}

// slot -= mult * uval (the replay_mul four-product formula per lane).
inline void lane_sub_mul(double* __restrict sr, double* __restrict si,
                         const double* __restrict mr, const double* __restrict mi,
                         const double* __restrict br, const double* __restrict bi,
                         std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    sr[l] -= mr[l] * br[l] - mi[l] * bi[l];
    si[l] -= mr[l] * bi[l] + mi[l] * br[l];
  }
}
}  // namespace

void BatchedReplay::bind(std::shared_ptr<const ReplayPlan> plan, int width) {
  assert(plan != nullptr);
  assert(width >= 1);
  if (plan_ == plan && width_ == width) return;  // hot path: keep the buffers
  plan_ = std::move(plan);
  width_ = width;
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t dim = static_cast<std::size_t>(plan_->dim);
  a_values_.assign(plan_->pattern_cols.size() * w, Complex{});
  l_re_.assign(plan_->l_steps.size() * w, 0.0);
  l_im_.assign(plan_->l_steps.size() * w, 0.0);
  u_re_.assign(plan_->u_steps.size() * w, 0.0);
  u_im_.assign(plan_->u_steps.size() * w, 0.0);
  pivot_re_.assign(dim * w, 0.0);
  pivot_im_.assign(dim * w, 0.0);
  work_re_.assign(dim * w, 0.0);
  work_im_.assign(dim * w, 0.0);
  row_norm_.assign(w, 0.0);
  entry_norm_.assign(w, 0.0);
  s_re_.assign(w, 0.0);
  s_im_.assign(w, 0.0);
  lane_ok_.assign(w, 0);
  max_abs_entry_.assign(w, 0.0);
}

bool BatchedReplay::pattern_matches(const CompressedMatrix& matrix) const {
  return plan_ != nullptr && matrix.dim == plan_->dim &&
         matrix.row_start == plan_->pattern_row_start && matrix.cols == plan_->pattern_cols;
}

void BatchedReplay::replay(int active, const SparseLuOptions& options) {
  replay_impl<false>(active, nullptr, options);
}

void BatchedReplay::replay(int active, const LaneAssembly& assembly, const SparseLuOptions& options) {
  replay_impl<true>(active, &assembly, options);
}

template <bool Fused>
void BatchedReplay::replay_impl(int active, const LaneAssembly* assembly,
                                const SparseLuOptions& options) {
  assert(plan_ != nullptr);
  assert(active >= 0 && active <= width_);
  const ReplayPlan& plan = *plan_;
  const std::size_t W = static_cast<std::size_t>(width_);
  const std::size_t A = static_cast<std::size_t>(active);

  // Fault site "lu_pivot": one draw per active lane in lane order — the
  // batched mirror of the scalar path's one draw per refactor() call. The
  // lane still streams through the elimination (loops stay uniform); its
  // results are simply never consumed.
  for (std::size_t l = 0; l < A; ++l) {
    lane_ok_[l] = support::fault("lu_pivot") ? 0 : 1;
  }

  // Largest |entry| per lane over the input values. Tracking the squared
  // magnitude and rooting once per lane equals the scalar max-of-replay_abs
  // scan bit for bit: a correctly rounded sqrt is monotone, so
  // max(sqrt(x_k)) == sqrt(max(x_k)). The fused path folds this scan into
  // the scatter below (every CSR position is scattered exactly once, and
  // max does not care about the visit order).
  double* const entry_norm = entry_norm_.data();
  std::fill(entry_norm_.begin(), entry_norm_.begin() + active, 0.0);
  if constexpr (!Fused) {
    const std::size_t nnz = plan.pattern_cols.size();
    for (std::size_t k = 0; k < nnz; ++k) {
      const Complex* lane_values = a_values_.data() + k * W;
      for (std::size_t l = 0; l < A; ++l) {
        const double re = lane_values[l].real();
        const double im = lane_values[l].imag();
        entry_norm[l] = std::max(entry_norm[l], re * re + im * im);
      }
    }
  } else {
    for (std::size_t l = 0; l < A; ++l) {
      s_re_[l] = assembly->s[l].real();
      s_im_[l] = assembly->s[l].imag();
    }
  }

  double* const wre = work_re_.data();
  double* const wim = work_im_.data();
  double* const lre = l_re_.data();
  double* const lim = l_im_.data();
  double* const ure = u_re_.data();
  double* const uim = u_im_.data();
  double* const pre = pivot_re_.data();
  double* const pim = pivot_im_.data();
  double* const row_norm = row_norm_.data();
  const Complex* const avalues = a_values_.data();

  // Up-looking replay, supernode by supernode. Per lane this executes the
  // EXACT operation sequence of SparseLu::refactor(): clear the row's
  // pattern slots, scatter the row of A, apply the earlier steps' updates in
  // ascending dep order, test the pivot, gather the surviving U row. The
  // supernode split only changes WHERE the indices come from (unit-stride
  // block targets + one shared tail list instead of per-entry loads), never
  // the per-slot arithmetic order — that is the whole bit-identity argument.
  const std::size_t blocks = plan.supernode_count();
  for (std::size_t s = 0; s < blocks; ++s) {
    const int block_begin = plan.supernode_start[s];
    const int block_end = plan.supernode_start[s + 1];
    // Shared U tail of the block: every block row's off-block targets.
    const int tail_begin = plan.u_start[static_cast<std::size_t>(block_end - 1)];
    const int tail_len = plan.u_start[static_cast<std::size_t>(block_end)] - tail_begin;
    const int* const tail_steps = plan.u_steps.data() + tail_begin;

    for (int i = block_begin; i < block_end; ++i) {
      const int l_begin = plan.l_start[static_cast<std::size_t>(i)];
      const int l_end = plan.l_start[static_cast<std::size_t>(i) + 1];
      const int u_begin = plan.u_start[static_cast<std::size_t>(i)];
      const int u_end = plan.u_start[static_cast<std::size_t>(i) + 1];
      // The dep list is ascending, so the in-block deps [block_begin .. i-1]
      // are exactly its suffix (supernode invariant).
      const int out_end = l_end - (i - block_begin);

      // Clear the row's pattern slots.
      for (int k = l_begin; k < l_end; ++k) {
        const std::size_t off =
            static_cast<std::size_t>(plan.l_steps[static_cast<std::size_t>(k)]) * W;
        for (std::size_t l = 0; l < A; ++l) {
          wre[off + l] = 0.0;
          wim[off + l] = 0.0;
        }
      }
      for (int k = u_begin; k < u_end; ++k) {
        const std::size_t off =
            static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)]) * W;
        for (std::size_t l = 0; l < A; ++l) {
          wre[off + l] = 0.0;
          wim[off + l] = 0.0;
        }
      }
      {
        const std::size_t off = static_cast<std::size_t>(i) * W;
        for (std::size_t l = 0; l < A; ++l) {
          wre[off + l] = 0.0;
          wim[off + l] = 0.0;
        }
      }

      // Scatter the row of A (deinterleave into the planes). The fused path
      // assembles each lane value right here instead of reading values().
      const int r = plan.row_order[static_cast<std::size_t>(i)];
      for (int k = plan.pattern_row_start[static_cast<std::size_t>(r)];
           k < plan.pattern_row_start[static_cast<std::size_t>(r) + 1]; ++k) {
        const std::size_t off =
            static_cast<std::size_t>(plan.a_dest[static_cast<std::size_t>(k)]) * W;
        if constexpr (Fused) {
          const double g = assembly->g_scale * assembly->conductance[static_cast<std::size_t>(k)];
          const double c = assembly->f_scale * assembly->capacitance[static_cast<std::size_t>(k)];
          const double* const sre = s_re_.data();
          const double* const sim = s_im_.data();
          for (std::size_t l = 0; l < A; ++l) {
            const double vre = g + sre[l] * c;
            const double vim = sim[l] * c;
            wre[off + l] = vre;
            wim[off + l] = vim;
            entry_norm[l] = std::max(entry_norm[l], vre * vre + vim * vim);
          }
        } else {
          const Complex* src = avalues + static_cast<std::size_t>(k) * W;
          for (std::size_t l = 0; l < A; ++l) {
            wre[off + l] = src[l].real();
            wim[off + l] = src[l].imag();
          }
        }
      }

      // Off-block updates: generic indexed walk.
      for (int k = l_begin; k < out_end; ++k) {
        const std::size_t j = static_cast<std::size_t>(plan.l_steps[static_cast<std::size_t>(k)]);
        const std::size_t mk = static_cast<std::size_t>(k) * W;
        lane_div(lre + mk, lim + mk, wre + j * W, wim + j * W, pre + j * W, pim + j * W, A);
        for (int t = plan.u_start[j]; t < plan.u_start[j + 1]; ++t) {
          const std::size_t off =
              static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(t)]) * W;
          const std::size_t uk = static_cast<std::size_t>(t) * W;
          lane_sub_mul(wre + off, wim + off, lre + mk, lim + mk, ure + uk, uim + uk, A);
        }
      }

      // In-block updates: the dense rank-k micro-kernel. Dep j's U row is
      // [j+1 .. block_end-1] ++ tail in storage order — unit-stride targets
      // for the block part, one shared index list for the tail.
      for (int j = block_begin; j < i; ++j) {
        const int k = out_end + (j - block_begin);
        const std::size_t jw = static_cast<std::size_t>(j) * W;
        const std::size_t mk = static_cast<std::size_t>(k) * W;
        lane_div(lre + mk, lim + mk, wre + jw, wim + jw, pre + jw, pim + jw, A);
        const std::size_t urow = static_cast<std::size_t>(plan.u_start[static_cast<std::size_t>(j)]) * W;
        const int block_targets = block_end - 1 - j;
        const std::size_t first_target = static_cast<std::size_t>(j + 1) * W;
        for (int t = 0; t < block_targets; ++t) {
          const std::size_t off = first_target + static_cast<std::size_t>(t) * W;
          const std::size_t uk = urow + static_cast<std::size_t>(t) * W;
          lane_sub_mul(wre + off, wim + off, lre + mk, lim + mk, ure + uk, uim + uk, A);
        }
        const std::size_t tail_vals = urow + static_cast<std::size_t>(block_targets) * W;
        for (int t = 0; t < tail_len; ++t) {
          const std::size_t off = static_cast<std::size_t>(tail_steps[t]) * W;
          const std::size_t uk = tail_vals + static_cast<std::size_t>(t) * W;
          lane_sub_mul(wre + off, wim + off, lre + mk, lim + mk, ure + uk, uim + uk, A);
        }
      }

      // Pivot acceptance per lane: same relaxed replay threshold as the
      // scalar path. The row maximum is accumulated over squared magnitudes
      // (one packed multiply-add per entry) and rooted once per lane — equal
      // to the scalar max-of-replay_abs scan because sqrt is monotone.
      const std::size_t iw = static_cast<std::size_t>(i) * W;
      for (std::size_t l = 0; l < A; ++l) {
        row_norm[l] = wre[iw + l] * wre[iw + l] + wim[iw + l] * wim[iw + l];
      }
      for (int k = u_begin; k < u_end; ++k) {
        const std::size_t off =
            static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)]) * W;
        for (std::size_t l = 0; l < A; ++l) {
          const double norm = wre[off + l] * wre[off + l] + wim[off + l] * wim[off + l];
          row_norm[l] = std::max(row_norm[l], norm);
        }
      }
      for (std::size_t l = 0; l < A; ++l) {
        const double pivot_magnitude =
            std::sqrt(wre[iw + l] * wre[iw + l] + wim[iw + l] * wim[iw + l]);
        const double row_max = std::sqrt(row_norm[l]);
        if (pivot_magnitude <= options.singularity_tolerance ||
            pivot_magnitude < kReplayRelaxedThresholdScale * options.pivot_threshold * row_max) {
          lane_ok_[l] = 0;
        }
        pre[iw + l] = wre[iw + l];
        pim[iw + l] = wim[iw + l];
      }
      for (int k = u_begin; k < u_end; ++k) {
        const std::size_t off =
            static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)]) * W;
        const std::size_t uk = static_cast<std::size_t>(k) * W;
        for (std::size_t l = 0; l < A; ++l) {
          ure[uk + l] = wre[off + l];
          uim[uk + l] = wim[off + l];
        }
      }
    }
  }

  for (std::size_t l = 0; l < A; ++l) max_abs_entry_[l] = std::sqrt(entry_norm[l]);
}

void BatchedReplay::solve(std::vector<Complex>& rhs, int active) const {
  assert(plan_ != nullptr);
  assert(active >= 0 && active <= width_);
  const ReplayPlan& plan = *plan_;
  const int n = plan.dim;
  assert(rhs.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(width_));
  const std::size_t W = static_cast<std::size_t>(width_);
  const std::size_t A = static_cast<std::size_t>(active);

  // Forward substitution L y = P b, then in-place back substitution
  // U z = y — the scalar solve() accumulation order per lane. The rhs stays
  // interleaved at the interface; it is deinterleaved into the work planes
  // on entry and reinterleaved by the final permutation scatter.
  double* const wre = work_re_.data();
  double* const wim = work_im_.data();
  const double* const lre = l_re_.data();
  const double* const lim = l_im_.data();
  const double* const ure = u_re_.data();
  const double* const uim = u_im_.data();
  const double* const pre = pivot_re_.data();
  const double* const pim = pivot_im_.data();
  for (int i = 0; i < n; ++i) {
    const std::size_t iw = static_cast<std::size_t>(i) * W;
    const Complex* src =
        rhs.data() + static_cast<std::size_t>(plan.row_order[static_cast<std::size_t>(i)]) * W;
    for (std::size_t l = 0; l < A; ++l) {
      wre[iw + l] = src[l].real();
      wim[iw + l] = src[l].imag();
    }
    for (int k = plan.l_start[static_cast<std::size_t>(i)];
         k < plan.l_start[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::size_t lk = static_cast<std::size_t>(k) * W;
      const std::size_t jw =
          static_cast<std::size_t>(plan.l_steps[static_cast<std::size_t>(k)]) * W;
      lane_sub_mul(wre + iw, wim + iw, lre + lk, lim + lk, wre + jw, wim + jw, A);
    }
  }
  for (int i = n - 1; i >= 0; --i) {
    const std::size_t iw = static_cast<std::size_t>(i) * W;
    for (int k = plan.u_start[static_cast<std::size_t>(i)];
         k < plan.u_start[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::size_t uk = static_cast<std::size_t>(k) * W;
      const std::size_t jw =
          static_cast<std::size_t>(plan.u_steps[static_cast<std::size_t>(k)]) * W;
      lane_sub_mul(wre + iw, wim + iw, ure + uk, uim + uk, wre + jw, wim + jw, A);
    }
    lane_div_inplace(wre + iw, wim + iw, pre + iw, pim + iw, A);
  }
  for (int i = 0; i < n; ++i) {
    const std::size_t iw = static_cast<std::size_t>(i) * W;
    Complex* dst =
        rhs.data() + static_cast<std::size_t>(plan.col_order[static_cast<std::size_t>(i)]) * W;
    for (std::size_t l = 0; l < A; ++l) {
      dst[l] = Complex(wre[iw + l], wim[iw + l]);
    }
  }
}

numeric::ScaledComplex BatchedReplay::determinant(int lane) const {
  assert(plan_ != nullptr);
  assert(lane >= 0 && lane < width_);
  const std::size_t W = static_cast<std::size_t>(width_);
  return numeric::scaled_pivot_product(pivot_re_.data() + lane, pivot_im_.data() + lane,
                                       static_cast<std::size_t>(plan_->dim), W,
                                       static_cast<double>(plan_->permutation_sign));
}

void BatchedReplay::min_abs_pivots(double* out, int active) const {
  assert(plan_ != nullptr);
  assert(active >= 0 && active <= width_);
  const std::size_t W = static_cast<std::size_t>(width_);
  const std::size_t A = static_cast<std::size_t>(active);
  const double* const pre = pivot_re_.data();
  const double* const pim = pivot_im_.data();
  for (std::size_t l = 0; l < A; ++l) out[l] = std::numeric_limits<double>::infinity();
  for (int i = 0; i < plan_->dim; ++i) {
    const std::size_t iw = static_cast<std::size_t>(i) * W;
    for (std::size_t l = 0; l < A; ++l) {
      const double norm = pre[iw + l] * pre[iw + l] + pim[iw + l] * pim[iw + l];
      out[l] = std::min(out[l], norm);
    }
  }
  for (std::size_t l = 0; l < A; ++l) out[l] = std::sqrt(out[l]);
}

void BatchedReplay::determinants(numeric::ScaledComplex* out, int active) const {
  assert(plan_ != nullptr);
  assert(active >= 0 && active <= width_);
  const std::size_t W = static_cast<std::size_t>(width_);
  const std::size_t A = static_cast<std::size_t>(active);
  const double* const pre = pivot_re_.data();
  const double* const pim = pivot_im_.data();
  const double sign = static_cast<double>(plan_->permutation_sign);
  // Same window as numeric::scaled_pivot_product; see there for the bounds.
  constexpr double kHigh = 0x1p256, kLow = 0x1p-256;
  std::vector<double> acc_re(A, sign), acc_im(A, 0.0), peak(A, 0.0);
  std::vector<std::int64_t> exponent(A, 0);
  std::vector<char> slow(A, 0);
  for (int i = 0; i < plan_->dim; ++i) {
    const std::size_t iw = static_cast<std::size_t>(i) * W;
    for (std::size_t l = 0; l < A; ++l) {
      const double vr = pre[iw + l];
      const double vi = pim[iw + l];
      const double vpeak = std::max(std::fabs(vr), std::fabs(vi));
      // Out-of-window factor: the scalar routine takes an eagerly
      // normalized step here; mark the lane for a scalar recompute (its
      // fast-path accumulator is garbage from now on) instead of breaking
      // the uniform loop.
      slow[l] |= static_cast<char>(!(vpeak > kLow && vpeak < kHigh));
      const double nr = acc_re[l] * vr - acc_im[l] * vi;
      const double ni = acc_re[l] * vi + acc_im[l] * vr;
      acc_re[l] = nr;
      acc_im[l] = ni;
      peak[l] = std::max(std::fabs(nr), std::fabs(ni));
    }
    for (std::size_t l = 0; l < A; ++l) {
      // Slow lanes are excluded: their accumulator is garbage (possibly
      // non-finite) and from_mantissa_exp requires finite input.
      if (slow[l] == 0 && !(peak[l] > kLow && peak[l] < kHigh)) {
        const numeric::ScaledComplex folded = numeric::ScaledComplex::from_mantissa_exp(
            std::complex<double>(acc_re[l], acc_im[l]), exponent[l]);
        acc_re[l] = folded.mantissa().real();
        acc_im[l] = folded.mantissa().imag();
        exponent[l] = folded.exponent2();
      }
    }
  }
  for (std::size_t l = 0; l < A; ++l) {
    out[l] = slow[l] != 0
                 ? numeric::scaled_pivot_product(pre + l, pim + l,
                                                 static_cast<std::size_t>(plan_->dim), W, sign)
                 : numeric::ScaledComplex::from_mantissa_exp(
                       std::complex<double>(acc_re[l], acc_im[l]), exponent[l]);
  }
}

double BatchedReplay::min_abs_pivot(int lane) const {
  assert(plan_ != nullptr);
  assert(lane >= 0 && lane < width_);
  const std::size_t W = static_cast<std::size_t>(width_);
  const std::size_t off = static_cast<std::size_t>(lane);
  // min over replay_abs == sqrt(min over |pivot|^2): sqrt is monotone.
  double smallest_norm = std::numeric_limits<double>::infinity();
  for (int i = 0; i < plan_->dim; ++i) {
    const double re = pivot_re_[static_cast<std::size_t>(i) * W + off];
    const double im = pivot_im_[static_cast<std::size_t>(i) * W + off];
    smallest_norm = std::min(smallest_norm, re * re + im * im);
  }
  return std::sqrt(smallest_norm);
}

}  // namespace symref::sparse
