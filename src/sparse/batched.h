// Batched supernodal replay of a recorded SparseLu plan.
//
// The reference generator's inner loop is "evaluate the SAME circuit at N
// nearby points": N frequency samples of one interpolation batch, N points
// of an AC sweep, N probe frequencies of one Monte-Carlo sample. The scalar
// path walks the plan once per point — per tiny update it pays the full
// index-load and loop overhead. BatchedReplay restores the arithmetic
// density: every numeric array is stored structure-of-arrays (position k of
// lane l lives at values[k * width + l]), so one pass through the plan's
// index structure drives `width` independent eliminations whose inner loops
// are contiguous, branch-free and SIMD-friendly.
//
// Supernodes (see ReplayPlan::supernode_start) are executed as small dense
// rank-k blocks: in-block updates use unit-stride workspace rows and the
// block's single shared tail index list instead of per-entry index loads.
//
// THE ORACLE CONTRACT. Per lane, the floating-point operation sequence is
// exactly the scalar SparseLu::refactor()/solve() sequence: same expression
// shapes, same per-slot accumulation order, same relaxed pivot-acceptance
// test. Results are therefore bit-identical to the scalar path — and, since
// each lane's sequence never depends on the lane count, the active count or
// any other lane's values, bit-identical across batch widths, batch
// groupings and thread counts. tests/sparse/replay_differential_test holds
// this contract against randomized circuits; any deviation is a bug here,
// not tolerance noise.
//
// Failure model: the scalar path abandons a replay at the first refused
// pivot; a batched lane instead records the refusal in lane_ok() and keeps
// streaming (its remaining values are garbage, which keeps the hot loops
// uniform). Callers fall back per refused lane exactly as they would after
// a scalar refactor() returning false. The "lu_pivot" fault site is
// consulted once per active lane (in lane order), mirroring the scalar
// path's one draw per refactor() call, so fault-injection recovery tests
// observe identical engine statistics under either kernel.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "numeric/scaled.h"
#include "sparse/lu.h"
#include "sparse/matrix.h"

namespace symref::sparse {

/// Engine-wide replay kernel selection, threaded from the public options
/// structs down to the evaluators. kScalar is the oracle (one point at a
/// time through SparseLu::refactor()); kBatched runs BatchedReplay lanes.
/// Results are bit-identical by contract, so the choice — like the thread
/// count — never participates in result cache keys.
enum class ReplayKernel {
  kScalar,
  kBatched,
};

/// Default SoA lane width for the batched consumers. Wide enough to amortize
/// the plan's index traffic across many points, small enough that the SoA
/// workspace (~ nnz * width * 16 bytes of values plus dim * width solve
/// slots) stays cache-resident for the circuit sizes the engine sweeps:
/// measured on ladder-1024/4096 and 32x32 grid meshes, width 16 beats both 8
/// (index traffic not yet amortized) and 32 (workspace falls out of L2).
/// Results never depend on it (see the oracle contract above).
inline constexpr int kDefaultBatchWidth = 16;

class BatchedReplay {
 public:
  BatchedReplay() = default;

  /// Bind to a plan with a fixed SoA lane width (>= 1), sizing the numeric
  /// payload. Rebinding to the same plan and width is a cheap no-op, so the
  /// per-batch path stays allocation-free.
  void bind(std::shared_ptr<const ReplayPlan> plan, int width);

  [[nodiscard]] bool bound() const noexcept { return plan_ != nullptr; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int dim() const noexcept { return plan_ ? plan_->dim : 0; }
  [[nodiscard]] const std::shared_ptr<const ReplayPlan>& plan() const noexcept { return plan_; }

  /// True when the matrix structure matches the bound plan's fingerprint —
  /// the caller-side analogue of refactor()'s pattern check. Lanes share
  /// one structure, so the check runs once per batch, not per lane.
  [[nodiscard]] bool pattern_matches(const CompressedMatrix& matrix) const;

  /// SoA input values of A: CSR position k of lane l at
  /// values()[k * width() + l]. Fill lanes [0, active) (e.g. via
  /// PatternedMatrix::assemble_batch), then call replay(active).
  [[nodiscard]] std::complex<double>* values() noexcept { return a_values_.data(); }
  [[nodiscard]] std::size_t pattern_nonzeros() const noexcept {
    return plan_ ? plan_->pattern_cols.size() : 0;
  }

  /// Replay lanes [0, active) through the plan in one pass. Per-lane
  /// success is reported by lane_ok(); a refused lane's factors are
  /// garbage and must not be consumed. Requires bound().
  void replay(int active, const SparseLuOptions& options = {});

  /// Fused-assembly replay: instead of reading pre-assembled values(), the
  /// scatter computes each lane value from the assembly view as it streams
  /// (and folds the max-|entry| scan into the same pass). Saves the full
  /// nnz-by-width value block round-trip per group. Bit-identical to
  /// assemble_batch + replay(): the per-(k, lane) value expression is the
  /// assemble_batch expression, and the entry maximum is order-independent.
  void replay(int active, const LaneAssembly& assembly, const SparseLuOptions& options = {});

  /// Whether lane's last replay() accepted every pivot.
  [[nodiscard]] bool lane_ok(int lane) const {
    return lane_ok_[static_cast<std::size_t>(lane)] != 0;
  }

  /// Batched triangular solves: rhs holds dim() SoA rows
  /// (rhs[r * width() + l]), overwritten with the solutions of lanes
  /// [0, active). Refused lanes produce garbage; skip them via lane_ok().
  void solve(std::vector<std::complex<double>>& rhs, int active) const;

  /// Per-lane factorization summaries, valid for lanes with lane_ok():
  /// determinant (extended-range pivot product, same accumulation order as
  /// SparseLu::determinant()), smallest |pivot|, and largest |entry| of the
  /// lane's input values.
  [[nodiscard]] numeric::ScaledComplex determinant(int lane) const;
  [[nodiscard]] double min_abs_pivot(int lane) const;

  /// min_abs_pivot for lanes [0, active) in one lane-inner pass over the
  /// pivot planes (same per-lane result, packed instead of strided).
  void min_abs_pivots(double* out, int active) const;

  /// determinant for lanes [0, active) in one lane-inner pass. Per lane this
  /// replays numeric::scaled_pivot_product exactly — the window tests that
  /// decide when to renormalize depend only on the lane's own accumulator
  /// and factors, so the fold schedule (and therefore every rounding) is
  /// identical to the scalar call; a lane that ever meets an out-of-window
  /// factor is simply recomputed through the scalar routine.
  void determinants(numeric::ScaledComplex* out, int active) const;
  [[nodiscard]] double max_abs_entry(int lane) const {
    return max_abs_entry_[static_cast<std::size_t>(lane)];
  }

 private:
  std::shared_ptr<const ReplayPlan> plan_;
  int width_ = 0;

  // --- SoA numeric payload (stride == width_, rewritten per replay) ---------
  // Input values stay interleaved complex (the assemble interface); the
  // factors and workspace are split into real/imaginary planes so the lane
  // loops are pure unit-stride double arithmetic — no shuffles, straight
  // packed mul/add/div/sqrt. The per-lane expression sequence is unchanged,
  // so the split is invisible to the oracle contract.
  std::vector<std::complex<double>> a_values_;
  std::vector<double> l_re_, l_im_;
  std::vector<double> u_re_, u_im_;
  std::vector<double> pivot_re_, pivot_im_;
  mutable std::vector<double> work_re_, work_im_;
  std::vector<double> row_norm_;  // per-lane |entry|^2 scratch for pivot tests
  std::vector<double> entry_norm_;    // per-lane max |a_kl|^2 scratch (fused assembly)
  std::vector<double> s_re_, s_im_;   // deinterleaved lane frequencies (fused assembly)
  std::vector<char> lane_ok_;
  std::vector<double> max_abs_entry_;

  template <bool Fused>
  void replay_impl(int active, const LaneAssembly* assembly, const SparseLuOptions& options);
};

}  // namespace symref::sparse
