#include "sparse/dense.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace symref::sparse {

bool DenseLu::factor(std::vector<std::complex<double>> matrix, int dim) {
  assert(static_cast<int>(matrix.size()) == dim * dim);
  dim_ = dim;
  lu_ = std::move(matrix);
  row_perm_.resize(static_cast<std::size_t>(dim));
  for (int i = 0; i < dim; ++i) row_perm_[static_cast<std::size_t>(i)] = i;
  permutation_sign_ = 1;
  ok_ = true;

  auto entry = [&](int r, int c) -> std::complex<double>& {
    return lu_[static_cast<std::size_t>(r) * static_cast<std::size_t>(dim_) +
               static_cast<std::size_t>(c)];
  };

  for (int k = 0; k < dim; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    int pivot_row = k;
    double best = std::abs(entry(k, k));
    for (int r = k + 1; r < dim; ++r) {
      const double mag = std::abs(entry(r, k));
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (best == 0.0) {
      ok_ = false;
      return false;
    }
    if (pivot_row != k) {
      for (int c = 0; c < dim; ++c) std::swap(entry(k, c), entry(pivot_row, c));
      std::swap(row_perm_[static_cast<std::size_t>(k)],
                row_perm_[static_cast<std::size_t>(pivot_row)]);
      permutation_sign_ = -permutation_sign_;
    }
    const std::complex<double> pivot = entry(k, k);
    for (int r = k + 1; r < dim; ++r) {
      const std::complex<double> factor = entry(r, k) / pivot;
      entry(r, k) = factor;
      if (factor == std::complex<double>()) continue;
      for (int c = k + 1; c < dim; ++c) entry(r, c) -= factor * entry(k, c);
    }
  }
  return true;
}

bool DenseLu::factor(const TripletMatrix& matrix) {
  const int dim = matrix.dim();
  std::vector<std::complex<double>> dense(static_cast<std::size_t>(dim) *
                                          static_cast<std::size_t>(dim));
  for (const Triplet& t : matrix.triplets()) {
    dense[static_cast<std::size_t>(t.row) * static_cast<std::size_t>(dim) +
          static_cast<std::size_t>(t.col)] += t.value;
  }
  return factor(std::move(dense), dim);
}

void DenseLu::solve(std::vector<std::complex<double>>& rhs) const {
  assert(ok_);
  assert(static_cast<int>(rhs.size()) == dim_);
  // Apply row permutation: y = P b.
  std::vector<std::complex<double>> y(static_cast<std::size_t>(dim_));
  for (int i = 0; i < dim_; ++i) {
    y[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(row_perm_[static_cast<std::size_t>(i)])];
  }
  const auto entry = [&](int r, int c) {
    return lu_[static_cast<std::size_t>(r) * static_cast<std::size_t>(dim_) +
               static_cast<std::size_t>(c)];
  };
  // Forward substitution with unit lower factor.
  for (int r = 1; r < dim_; ++r) {
    std::complex<double> acc = y[static_cast<std::size_t>(r)];
    for (int c = 0; c < r; ++c) acc -= entry(r, c) * y[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = acc;
  }
  // Back substitution with U.
  for (int r = dim_ - 1; r >= 0; --r) {
    std::complex<double> acc = y[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < dim_; ++c) acc -= entry(r, c) * y[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = acc / entry(r, r);
  }
  rhs = std::move(y);
}

numeric::ScaledComplex DenseLu::determinant() const {
  if (!ok_) return numeric::ScaledComplex();
  numeric::ScaledComplex det(std::complex<double>(permutation_sign_, 0.0));
  for (int k = 0; k < dim_; ++k) {
    det *= numeric::ScaledComplex(
        lu_[static_cast<std::size_t>(k) * static_cast<std::size_t>(dim_) +
            static_cast<std::size_t>(k)]);
  }
  return det;
}

}  // namespace symref::sparse
