// Sparse complex LU factorization split into a symbolic plan and a fast
// numeric replay.
//
// This is the workhorse behind the paper's eq. (7)-(10): every interpolation
// point costs one factorization of the (scaled) node-admittance matrix, one
// triangular solve for the output cofactors, and the determinant read off
// the pivot product. The paper notes the algorithm "has been implemented
// using sparse matrix techniques"; Markowitz ordering with threshold partial
// pivoting is the classical choice for circuit matrices (Kundert's Sparse1.3
// and SPICE use the same scheme).
//
// The interpolation engine evaluates the SAME circuit at dozens to hundreds
// of sample points, so the sparsity pattern never changes between
// factorizations. factor() therefore performs the expensive one-time work —
// Markowitz pivot ordering (bounded candidate search over the least-populated
// active columns) and the complete fill-in pattern — and stores the result as
// a flat CSR-like plan. refactor() replays only the numeric elimination
// through that plan with a dense scatter/gather workspace: no dynamic
// structures, no searching, no allocation on the repeated path. Both paths
// execute the identical floating-point operation sequence, so a refactor()
// is bit-for-bit equal to a fresh factor() that selects the same pivots.
//
// The determinant is returned as an extended-range ScaledComplex: the pivot
// product of a scaled 50-node matrix routinely leaves IEEE double range.
//
// Plan/workspace split for parallel replay: the symbolic plan is immutable
// once factor() succeeds and is held behind a shared_ptr, while the numeric
// payload (L/U values, pivots, scratch) is per instance. Copying a SparseLu
// therefore clones only the numeric workspace and SHARES the plan — the
// cheap per-thread clone the batch evaluators are built on. Any number of
// clones may refactor()/solve() concurrently; one instance is still
// single-threaded (solve() mutates its scratch workspace).
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "numeric/scaled.h"
#include "sparse/matrix.h"

namespace symref::sparse {

/// Thrown by require_refactor() when the plan replay is refused (structural
/// pattern changed or a reused pivot degraded). Callers that can fall back
/// use the bool-returning refactor() instead; callers that REQUIRE replay
/// semantics (bit-stable repeated evaluation against a pinned plan, e.g. a
/// server validating a warm handle) use the throwing form so the api layer
/// can report the distinct kRefusedReplay status code.
class RefusedReplayError : public std::runtime_error {
 public:
  explicit RefusedReplayError(const std::string& message) : std::runtime_error(message) {}
};

struct SparseLuOptions {
  /// Threshold partial pivoting: a candidate pivot must satisfy
  /// |a_ij| >= pivot_threshold * max_j' |a_ij'| within its active row.
  double pivot_threshold = 1e-3;
  /// A pivot with magnitude <= this is rejected as numerically zero.
  double singularity_tolerance = 0.0;
};

/// Pivots reused by a plan replay (scalar refactor() or a BatchedReplay
/// lane) were not re-searched, so they are accepted with a threshold this
/// much more permissive than the factor() one; a pivot degraded beyond it
/// refuses the replay and signals the caller to re-run the full factor().
/// Both replay paths MUST share this constant — the refusal decision is part
/// of the bit-identity contract between them.
inline constexpr double kReplayRelaxedThresholdScale = 1e-5;

/// Complex magnitude of the replay hot paths: sqrt(re^2 + im^2) compiles to
/// a handful of vectorizable instructions instead of a libm hypot call, and
/// the matrices this library factors are scaled admittance matrices whose
/// entries sit far inside the |z| < ~1e150 range where the squared form is
/// exact enough (it can differ from std::abs by an ulp, never overflow).
/// Scalar refactor() and BatchedReplay MUST share this function — pivot
/// refusal decisions and the min/max magnitude statistics are part of the
/// bit-identity contract between them.
inline double replay_abs(const std::complex<double>& z) noexcept {
  return std::sqrt(z.real() * z.real() + z.imag() * z.imag());
}

/// Complex multiply of the replay hot paths: the plain four-product formula
/// without the NaN-recovery branch GCC attaches to the builtin complex
/// multiply. Bitwise equal to operator* whenever the naive result is finite
/// (the recovery only rewrites NaN results); written out so the per-lane
/// loops of the batched kernel vectorize. Shared by scalar replay, batched
/// replay and both solve paths for the same bit-identity reason as
/// replay_abs.
inline std::complex<double> replay_mul(const std::complex<double>& a,
                                       const std::complex<double>& b) noexcept {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

/// Complex division of the factor/replay/solve hot paths: the direct
/// conjugate formula instead of the branchy Smith algorithm behind
/// operator/. The denominator |b|^2 stays in double range for any divisor
/// magnitude in ~(1e-150, 1e150) — comfortably true for pivots of scaled
/// admittance matrices (a pivot tiny enough to underflow here would long
/// since have been refused or escalated). Every elimination and solve MUST
/// divide through this one function: factor() and refactor() are bit-equal
/// because they execute identical arithmetic, and scalar/batched replays
/// likewise.
inline std::complex<double> replay_div(const std::complex<double>& a,
                                       const std::complex<double>& b) noexcept {
  const double den = b.real() * b.real() + b.imag() * b.imag();
  return {(a.real() * b.real() + a.imag() * b.imag()) / den,
          (a.imag() * b.real() - a.real() * b.imag()) / den};
}

/// The one-time symbolic work of SparseLu::factor(): pivot order, fill-in
/// pattern, scatter plan and supernode partition. Immutable once recorded
/// and shared read-only (shared_ptr) between a SparseLu, its clones and any
/// BatchedReplay bound to it — every replay consumer walks the same flat
/// arrays, which is what makes scalar and batched replays bit-identical by
/// construction (identical per-slot operation sequences).
///
/// Everything is expressed in STEP space (elimination order), not original
/// row/column indices: step i eliminates original row row_order[i] and
/// column col_order[i].
struct ReplayPlan {
  int dim = 0;
  std::size_t fill_in = 0;
  int permutation_sign = 1;
  std::vector<int> row_order;  // step -> original pivot row
  std::vector<int> col_order;  // step -> original pivot column
  std::vector<int> col_step;   // original column -> step
  /// Structural fingerprint of A for the refactor() pattern check.
  std::vector<int> pattern_row_start;
  std::vector<int> pattern_cols;
  /// CSR position k of A -> column-step workspace slot (scatter plan).
  std::vector<int> a_dest;
  /// L (unit lower) stored by row-step: for row i, steps j < i in ascending
  /// order with the multipliers. U stored by row-step: steps k > i in
  /// ascending step order with the row values; pivots kept separately.
  /// (Ascending U order is safe: within one dep row every update hits a
  /// distinct workspace slot, so the per-slot accumulation sequence — and
  /// hence every replayed value — is order-independent across the row.)
  std::vector<int> l_start;
  std::vector<int> l_steps;
  std::vector<int> u_start;
  std::vector<int> u_steps;
  /// Supernode partition of the step range: supernode s covers steps
  /// [supernode_start[s], supernode_start[s+1]). A supernode is a maximal
  /// run of steps whose fill-in forms a dense diagonal block with a shared
  /// off-block row structure:
  ///   * U chain: urow(i) == [i+1] ++ urow(i+1) for every interior step, so
  ///     urow(j) == [j+1 .. e-1] ++ urow(e-1) — the in-block targets are the
  ///     contiguous steps after j and the tail indices are shared by every
  ///     row of the block;
  ///   * L fill: ldeps(r) ends with [b .. r-1] — every block row depends on
  ///     ALL earlier block steps.
  /// Batched replay executes such a block as a small dense rank-k kernel
  /// (unit-stride targets, one shared tail index list) with the exact scalar
  /// operation order. Degenerate cases: a diagonal pattern yields dim
  /// singleton supernodes and a dense matrix one; a tridiagonal yields
  /// dim - 1 (only its trailing 2x2 corner — genuinely dense — merges).
  std::vector<int> supernode_start;

  [[nodiscard]] std::size_t supernode_count() const noexcept {
    return supernode_start.empty() ? 0 : supernode_start.size() - 1;
  }
};

class SparseLu {
 public:
  /// Factor the matrix; returns false when singular (no acceptable pivot).
  /// Also records the symbolic plan (pivot order + fill pattern) consumed by
  /// refactor().
  bool factor(const TripletMatrix& matrix, const SparseLuOptions& options = {});
  bool factor(const CompressedMatrix& matrix, const SparseLuOptions& options = {});

  /// Re-factor a matrix with the SAME sparsity pattern using the plan of the
  /// last successful factor() — no Markowitz search, no new fill, just a
  /// flat numeric replay of the elimination (the classic create/factor split
  /// of SPICE and the analyze/factor split of KLU). Returns false when a
  /// reused pivot is numerically unacceptable (caller should fall back to a
  /// fresh factor()) or when the structural pattern differs; the pattern
  /// check is exact (row/column structure, not just the nonzero count).
  /// The plan survives a refused refactor(), so another refactor() with
  /// acceptable values may follow without an intervening factor() — each
  /// replay depends only on (plan, input values), never on previous numeric
  /// state. That history independence is what makes per-point evaluation
  /// order (and hence thread count) irrelevant to the results.
  bool refactor(const CompressedMatrix& matrix, const SparseLuOptions& options = {});

  /// refactor() that throws RefusedReplayError instead of returning false —
  /// for callers whose contract is "replay the pinned plan or fail loudly".
  void require_refactor(const CompressedMatrix& matrix, const SparseLuOptions& options = {});

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// True when a successful factor() has recorded a symbolic plan (possibly
  /// shared with clones of this instance). refactor() requires it.
  [[nodiscard]] bool has_plan() const noexcept { return plan_ != nullptr; }

  /// The recorded symbolic plan (nullptr before the first successful
  /// factor()). Shared read-only — the handle a BatchedReplay binds to.
  [[nodiscard]] std::shared_ptr<const ReplayPlan> plan() const noexcept { return plan_; }

  /// Fill-in created by elimination (entries in L+U beyond those of A).
  [[nodiscard]] std::size_t fill_in() const noexcept { return plan_ ? plan_->fill_in : 0; }

  /// Supernodes of the recorded plan (0 before the first factor()). Every
  /// step belongs to exactly one supernode; see ReplayPlan::supernode_start.
  [[nodiscard]] std::size_t supernode_count() const noexcept {
    return plan_ ? plan_->supernode_count() : 0;
  }

  /// Largest |entry| of the factored matrix and smallest |pivot| of U.
  /// Their ratio is a cheap proxy for the determinant's relative
  /// evaluation error (~eps * max_entry / min_pivot): perturbing one entry
  /// by delta changes det by delta * cofactor, and the largest cofactor is
  /// ~|det| / min_pivot.
  [[nodiscard]] double max_abs_entry() const noexcept { return max_abs_entry_; }

  /// Smallest |pivot| of U. Requires ok() (asserted, like solve()); returns
  /// 0.0 in release builds when nothing was factored, and +infinity for a
  /// dimension-0 system (the empty pivot product has no smallest factor).
  [[nodiscard]] double min_abs_pivot() const noexcept;

  /// Solve A x = b; rhs is overwritten with x. Requires ok(). Uses the
  /// instance's shared scratch workspace, so concurrent solve() calls on one
  /// SparseLu are not safe even though the method is const — the class is
  /// single-threaded by design (like the evaluators built on it).
  void solve(std::vector<std::complex<double>>& rhs) const;

  /// det(A) = sign(P) * sign(Q) * prod(pivots), extended range.
  [[nodiscard]] numeric::ScaledComplex determinant() const;

 private:
  bool analyze_and_factor(const CompressedMatrix& matrix, const SparseLuOptions& options);

  /// Partition the plan's steps into supernodes (see ReplayPlan). Pure
  /// structure analysis over the harvested L/U patterns; greedy maximal
  /// runs, O(total block area).
  static void detect_supernodes(ReplayPlan& plan);

  int dim_ = 0;
  bool ok_ = false;
  double max_abs_entry_ = 0.0;
  std::shared_ptr<const ReplayPlan> plan_;

  // --- Numeric payload (rewritten by every factor()/refactor()) -------------
  std::vector<std::complex<double>> l_values_;
  std::vector<std::complex<double>> u_values_;
  std::vector<std::complex<double>> pivots_;

  // --- Workspaces (persist to keep the repeated path allocation-free) -------
  mutable std::vector<std::complex<double>> work_;
};

/// Permutation parity: +1 for even, -1 for odd. `order[k]` must be a
/// permutation of 0..n-1 (checked with assertions in debug builds).
int permutation_sign(const std::vector<int>& order);

}  // namespace symref::sparse
