// Sparse complex LU factorization with Markowitz pivoting.
//
// This is the workhorse behind the paper's eq. (7)-(10): every interpolation
// point costs one factorization of the (scaled) node-admittance matrix, one
// triangular solve for the output cofactors, and the determinant read off
// the pivot product. The paper notes the algorithm "has been implemented
// using sparse matrix techniques"; Markowitz ordering with threshold partial
// pivoting is the classical choice for circuit matrices (Kundert's Sparse1.3
// and SPICE use the same scheme).
//
// The determinant is returned as an extended-range ScaledComplex: the pivot
// product of a scaled 50-node matrix routinely leaves IEEE double range.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "numeric/scaled.h"
#include "sparse/matrix.h"

namespace symref::sparse {

struct SparseLuOptions {
  /// Threshold partial pivoting: a candidate pivot must satisfy
  /// |a_ij| >= pivot_threshold * max_j' |a_ij'| within its active row.
  double pivot_threshold = 1e-3;
  /// Entries with magnitude <= this are treated as structural zeros.
  double singularity_tolerance = 0.0;
};

class SparseLu {
 public:
  /// Factor the matrix; returns false when singular (no acceptable pivot).
  bool factor(const TripletMatrix& matrix, const SparseLuOptions& options = {});
  bool factor(const CompressedMatrix& matrix, const SparseLuOptions& options = {});

  /// Re-factor a matrix with the SAME sparsity pattern using the pivot
  /// ORDER of the previous successful factor() — no Markowitz search, no
  /// new fill, just the numeric elimination (the classic SPICE
  /// "create/factor" split; interpolation evaluates the same circuit at
  /// many points, so the pattern never changes). Returns false when a
  /// reused pivot is numerically unacceptable (caller should fall back to
  /// a fresh factor()) or when the pattern differs.
  bool refactor(const CompressedMatrix& matrix, const SparseLuOptions& options = {});

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Fill-in created by elimination (entries in L+U beyond those of A).
  [[nodiscard]] std::size_t fill_in() const noexcept { return fill_in_; }

  /// Largest |entry| of the factored matrix and smallest |pivot| of U.
  /// Their ratio is a cheap proxy for the determinant's relative
  /// evaluation error (~eps * max_entry / min_pivot): perturbing one entry
  /// by delta changes det by delta * cofactor, and the largest cofactor is
  /// ~|det| / min_pivot.
  [[nodiscard]] double max_abs_entry() const noexcept { return max_abs_entry_; }
  [[nodiscard]] double min_abs_pivot() const noexcept;

  /// Solve A x = b; rhs is overwritten with x. Requires ok().
  void solve(std::vector<std::complex<double>>& rhs) const;

  /// det(A) = sign(P) * sign(Q) * prod(pivots), extended range.
  [[nodiscard]] numeric::ScaledComplex determinant() const;

 private:
  struct Entry {
    int index = 0;  // original row (L ops) or original column (U rows)
    std::complex<double> value;
  };

  int dim_ = 0;
  bool ok_ = false;
  std::size_t fill_in_ = 0;
  double max_abs_entry_ = 0.0;
  int permutation_sign_ = 1;
  std::vector<int> row_order_;   // step -> original pivot row
  std::vector<int> col_order_;   // step -> original pivot column
  std::vector<int> col_step_;    // original column -> step
  std::vector<std::complex<double>> pivots_;
  std::vector<std::vector<Entry>> lower_ops_;  // per step: rows updated and multipliers
  std::vector<std::vector<Entry>> upper_rows_; // per step: U row (original col ids), no pivot
  /// Pattern fingerprint of the last full factor(), for refactor() checks.
  std::size_t pattern_nonzeros_ = 0;
  int pattern_dim_ = 0;
};

/// Permutation parity: +1 for even, -1 for odd. `order[k]` must be a
/// permutation of 0..n-1 (checked with assertions in debug builds).
int permutation_sign(const std::vector<int>& order);

}  // namespace symref::sparse
