#include "symbolic/sbg.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <optional>
#include <set>

#include "mna/ac.h"
#include "mna/sensitivity.h"
#include "netlist/canonical.h"
#include "support/log.h"

namespace symref::symbolic {

namespace {

/// Worst-case relative error of `candidate`'s transfer function against the
/// reference values on the grid; nullopt when the candidate cannot be
/// simulated (singular system).
std::optional<double> worst_error(const netlist::Circuit& candidate,
                                  const mna::TransferSpec& spec,
                                  const std::vector<double>& grid,
                                  const std::vector<std::complex<double>>& reference_values) {
  const mna::AcSimulator simulator(candidate);
  double worst = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::complex<double> value;
    try {
      value = simulator.transfer(spec, grid[i]);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    const double scale = std::abs(reference_values[i]);
    const double error = scale > 0.0 ? std::abs(value - reference_values[i]) / scale
                                     : std::abs(value);
    worst = std::max(worst, error);
  }
  return worst;
}

/// Shorting an element that bridges two distinct spec nodes would destroy
/// the port definition; skip those candidates.
bool short_would_merge_ports(const netlist::Circuit& circuit, const netlist::Element& element,
                             const mna::TransferSpec& spec) {
  const auto resolve = [&](const std::string& name) {
    const auto node = circuit.find_node(name);
    return node ? *node : -1;
  };
  const int ports[4] = {resolve(spec.in_pos), resolve(spec.in_neg), resolve(spec.out_pos),
                        resolve(spec.out_neg)};
  const int a = element.node_pos;
  const int b = element.node_neg;
  if (a == b) return false;
  bool a_is_port = false;
  bool b_is_port = false;
  for (const int p : ports) {
    if (p == a) a_is_port = true;
    if (p == b) b_is_port = true;
  }
  return a_is_port && b_is_port;
}

}  // namespace

SbgResult simplify_before_generation(const netlist::Circuit& circuit,
                                     const mna::TransferSpec& spec,
                                     const refgen::NumericalReference& reference,
                                     const SbgOptions& options) {
  SbgResult result;
  result.simplified = circuit;
  result.original_elements = circuit.element_count();

  const std::vector<double> grid =
      mna::log_frequency_grid(options.f_start_hz, options.f_stop_hz, options.points_per_decade);
  std::vector<std::complex<double>> reference_values;
  reference_values.reserve(grid.size());
  for (const double f : grid) reference_values.push_back(reference.transfer_at_hz(f));

  // Optional adjoint pre-screening: elements whose first-order influence on
  // H already exceeds the budget can never be removed — skip trialing them.
  std::set<std::string> never_trial;
  if (options.sensitivity_screening && netlist::is_canonical(circuit)) {
    try {
      const auto band = mna::band_sensitivities(circuit, spec, options.f_start_hz,
                                                options.f_stop_hz,
                                                options.points_per_decade);
      for (const auto& s : band) {
        if (std::abs(s.normalized) > options.screening_factor * options.epsilon) {
          never_trial.insert(s.element);
        }
      }
      SYMREF_DEBUG("sbg: sensitivity screening excluded " << never_trial.size() << " of "
                                                          << band.size() << " elements");
    } catch (const std::exception& e) {
      SYMREF_WARN("sbg: sensitivity screening unavailable: " << e.what());
    }
  }

  while (result.actions.size() < options.max_removals) {
    double best_error = std::numeric_limits<double>::infinity();
    std::string best_element;
    SbgAction::Op best_op = SbgAction::Op::Open;
    netlist::Circuit best_circuit;

    for (const netlist::Element& element : result.simplified.elements()) {
      if (never_trial.count(element.name) != 0) continue;
      // Try opening.
      {
        netlist::Circuit candidate = result.simplified;
        candidate.remove_element(element.name);
        const auto error = worst_error(candidate, spec, grid, reference_values);
        if (error && *error < best_error) {
          best_error = *error;
          best_element = element.name;
          best_op = SbgAction::Op::Open;
          best_circuit = std::move(candidate);
        }
      }
      // Try shorting two-terminal passives (shorting controlled sources has
      // no physical meaning in this simplification).
      const bool shortable = element.kind == netlist::ElementKind::Resistor ||
                             element.kind == netlist::ElementKind::Conductance ||
                             element.kind == netlist::ElementKind::Capacitor ||
                             element.kind == netlist::ElementKind::Inductor;
      if (shortable && !short_would_merge_ports(result.simplified, element, spec)) {
        netlist::Circuit candidate = result.simplified;
        candidate.short_element(element.name);
        const auto error = worst_error(candidate, spec, grid, reference_values);
        if (error && *error < best_error) {
          best_error = *error;
          best_element = element.name;
          best_op = SbgAction::Op::Short;
          best_circuit = std::move(candidate);
        }
      }
    }

    if (best_element.empty() || best_error > options.epsilon) break;

    SYMREF_DEBUG("sbg: " << (best_op == SbgAction::Op::Open ? "open " : "short ")
                         << best_element << " (error " << best_error << ")");
    result.simplified = std::move(best_circuit);
    result.actions.push_back({best_element, best_op, best_error});
    result.final_error = best_error;
  }

  result.remaining_elements = result.simplified.element_count();
  return result;
}

}  // namespace symref::symbolic
