// Exact symbolic determinants and cofactors of the nodal admittance matrix.
//
// For small circuits the full symbolic determinant is tractable (memoized
// Laplace expansion over column subsets, O(2^n * n) subproblems) and serves
// two roles:
//  * validation oracle — its design-point coefficients must match the
//    adaptive interpolation engine exactly (up to round-off), which is the
//    strongest correctness test this library has;
//  * SAG-style symbolic output — the term lists the SDG generator produces
//    incrementally can be compared against the complete expansion.
#pragma once

#include <optional>
#include <vector>

#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "symbolic/expr.h"

namespace symref::symbolic {

/// One admittance atom stamped at a matrix position: +/- symbol.
struct MatrixAtom {
  int symbol = 0;
  double sign = 1.0;
};

/// The nodal admittance matrix with symbolic entries.
class SymbolicNodalMatrix {
 public:
  /// Build from a canonical circuit ({G, C, VCCS}); one symbol per element.
  /// Throws std::invalid_argument for non-canonical circuits.
  explicit SymbolicNodalMatrix(const netlist::Circuit& circuit);

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }
  [[nodiscard]] const std::vector<MatrixAtom>& entry(int row, int col) const {
    return entries_.at(static_cast<std::size_t>(row) * static_cast<std::size_t>(dim_) +
                       static_cast<std::size_t>(col));
  }

  /// Matrix row index of a named node (ground/unknown -> nullopt).
  [[nodiscard]] std::optional<int> row_of_node(std::string_view name) const;

  /// Entry as a (sum-of-atoms) expression.
  [[nodiscard]] Expression entry_expression(int row, int col) const;

 private:
  int dim_ = 0;
  SymbolTable symbols_;
  std::vector<std::vector<MatrixAtom>> entries_;
  std::vector<int> node_to_row_;
  const netlist::Circuit* circuit_ = nullptr;

  friend class DeterminantExpander;
};

/// Full symbolic determinant. Practical up to ~14 nodes.
Expression symbolic_determinant(const SymbolicNodalMatrix& matrix);

/// Signed cofactor C_{row,col} = (-1)^(row+col) * minor(row, col).
Expression symbolic_cofactor(const SymbolicNodalMatrix& matrix, int row, int col);

/// Symbolic numerator/denominator for a transfer spec, in Lin's cofactor
/// form (the same quantities the interpolation engine samples numerically):
///   voltage gain:   N = sum of 4 signed cross cofactors, D likewise at the
///                   input; transimpedance: D = full determinant.
struct SymbolicTransfer {
  Expression numerator;
  Expression denominator;
};
SymbolicTransfer symbolic_transfer(const SymbolicNodalMatrix& matrix,
                                   const mna::TransferSpec& spec);

}  // namespace symref::symbolic
