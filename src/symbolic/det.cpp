#include "symbolic/det.h"

#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "netlist/canonical.h"
#include "symbolic/errors.h"

namespace symref::symbolic {

using netlist::Element;
using netlist::ElementKind;

SymbolicNodalMatrix::SymbolicNodalMatrix(const netlist::Circuit& circuit)
    : circuit_(&circuit) {
  if (!netlist::is_canonical(circuit)) {
    throw std::invalid_argument(
        "SymbolicNodalMatrix: circuit is not canonical; run netlist::canonicalize first");
  }
  std::vector<bool> active(static_cast<std::size_t>(circuit.node_count()), false);
  for (const Element& e : circuit.elements()) {
    active[static_cast<std::size_t>(e.node_pos)] = true;
    active[static_cast<std::size_t>(e.node_neg)] = true;
    if (e.ctrl_pos >= 0) active[static_cast<std::size_t>(e.ctrl_pos)] = true;
    if (e.ctrl_neg >= 0) active[static_cast<std::size_t>(e.ctrl_neg)] = true;
  }
  node_to_row_.assign(static_cast<std::size_t>(circuit.node_count()), -1);
  int next = 0;
  for (int n = 1; n < circuit.node_count(); ++n) {
    if (active[static_cast<std::size_t>(n)]) node_to_row_[static_cast<std::size_t>(n)] = next++;
  }
  dim_ = next;
  // The matrix itself is only O(dim^2) entry lists; the binding limit is the
  // 64-bit column masks of the best-first SDG generator. The exponential
  // full-expansion routines below enforce their own, much tighter cap.
  if (dim_ > 64) {
    throw NonAdmissibleError(
        "SymbolicNodalMatrix: " + std::to_string(dim_) +
        " rows exceed the generators' 64-column search mask");
  }
  entries_.assign(static_cast<std::size_t>(dim_) * static_cast<std::size_t>(dim_), {});

  auto row_of = [&](int node) { return node_to_row_[static_cast<std::size_t>(node)]; };
  auto stamp = [&](int r, int c, int symbol, double sign) {
    if (r < 0 || c < 0) return;
    entries_[static_cast<std::size_t>(r) * static_cast<std::size_t>(dim_) +
             static_cast<std::size_t>(c)]
        .push_back({symbol, sign});
  };

  for (const Element& e : circuit.elements()) {
    const int id = symbols_.add({e.name, e.value, e.kind == ElementKind::Capacitor});
    const int ra = row_of(e.node_pos);
    const int rb = row_of(e.node_neg);
    switch (e.kind) {
      case ElementKind::Conductance:
      case ElementKind::Capacitor:
        stamp(ra, ra, id, 1.0);
        stamp(rb, rb, id, 1.0);
        stamp(ra, rb, id, -1.0);
        stamp(rb, ra, id, -1.0);
        break;
      case ElementKind::Vccs: {
        const int rc = row_of(e.ctrl_pos);
        const int rd = row_of(e.ctrl_neg);
        stamp(ra, rc, id, 1.0);
        stamp(ra, rd, id, -1.0);
        stamp(rb, rc, id, -1.0);
        stamp(rb, rd, id, 1.0);
        break;
      }
      default:
        break;  // unreachable: canonicality enforced above
    }
  }
}

std::optional<int> SymbolicNodalMatrix::row_of_node(std::string_view name) const {
  const auto node = circuit_->find_node(name);
  if (!node || *node == 0) return std::nullopt;
  const int row = node_to_row_[static_cast<std::size_t>(*node)];
  return row < 0 ? std::nullopt : std::optional<int>(row);
}

Expression SymbolicNodalMatrix::entry_expression(int row, int col) const {
  Expression out;
  for (const MatrixAtom& atom : entry(row, col)) {
    Term term;
    term.coefficient = atom.sign;
    term.symbols = {atom.symbol};
    term.s_power = symbols_.at(atom.symbol).is_capacitor ? 1 : 0;
    out.add_term(std::move(term));
  }
  out.canonicalize();
  return out;
}

namespace {

/// Memoized Laplace expansion over the rows in `rows` and the columns in the
/// current bitmask. The memo key is the column mask (the row position is
/// implied by its popcount).
class DeterminantExpander {
 public:
  DeterminantExpander(const SymbolicNodalMatrix& matrix, std::vector<int> rows)
      : matrix_(matrix), rows_(std::move(rows)) {}

  Expression run(std::uint32_t colmask) { return expand(0, colmask); }

 private:
  Expression expand(std::size_t position, std::uint32_t colmask) {
    if (position == rows_.size()) {
      Expression one;
      Term unit;
      unit.coefficient = 1.0;
      one.add_term(std::move(unit));
      return one;
    }
    const auto memo = memo_.find(colmask);
    if (memo != memo_.end()) return memo->second;

    Expression result;
    const int row = rows_[position];
    int column_position = 0;  // rank of the column inside the mask: sign alternation
    for (int col = 0; col < matrix_.dim(); ++col) {
      const std::uint32_t bit = 1u << col;
      if (!(colmask & bit)) continue;
      const double parity = (column_position % 2 == 0) ? 1.0 : -1.0;
      ++column_position;
      const auto& atoms = matrix_.entry(row, col);
      if (atoms.empty()) continue;
      const Expression sub = expand(position + 1, colmask & ~bit);
      if (sub.is_zero()) continue;
      Expression entry;
      for (const MatrixAtom& atom : atoms) {
        Term term;
        term.coefficient = atom.sign * parity;
        term.symbols = {atom.symbol};
        term.s_power = matrix_.symbols().at(atom.symbol).is_capacitor ? 1 : 0;
        entry.add_term(std::move(term));
      }
      result += entry * sub;
    }
    memo_.emplace(colmask, result);
    return result;
  }

  const SymbolicNodalMatrix& matrix_;
  std::vector<int> rows_;
  std::unordered_map<std::uint32_t, Expression> memo_;
};

std::vector<int> all_rows_except(int dim, int skip) {
  std::vector<int> rows;
  rows.reserve(static_cast<std::size_t>(dim));
  for (int r = 0; r < dim; ++r) {
    if (r != skip) rows.push_back(r);
  }
  return rows;
}

/// The memoized Laplace expansion is exponential in dim; beyond ~20 rows the
/// complete expression is out of reach — that workload belongs to the
/// best-first SDG generator instead.
void require_expandable(const SymbolicNodalMatrix& matrix, const char* who) {
  if (matrix.dim() > 20) {
    throw NonAdmissibleError(std::string(who) + ": full symbolic expansion limited to " +
                             "20 nodes (matrix has " + std::to_string(matrix.dim()) +
                             "); use the SDG generators for larger circuits");
  }
}

}  // namespace

Expression symbolic_determinant(const SymbolicNodalMatrix& matrix) {
  require_expandable(matrix, "symbolic_determinant");
  const std::uint32_t full = (1u << matrix.dim()) - 1u;
  DeterminantExpander expander(matrix, all_rows_except(matrix.dim(), -1));
  Expression det = expander.run(full);
  det.canonicalize();
  return det;
}

Expression symbolic_cofactor(const SymbolicNodalMatrix& matrix, int row, int col) {
  if (row < 0 || col < 0 || row >= matrix.dim() || col >= matrix.dim()) {
    throw std::out_of_range("symbolic_cofactor: index outside matrix");
  }
  require_expandable(matrix, "symbolic_cofactor");
  const std::uint32_t full = (1u << matrix.dim()) - 1u;
  DeterminantExpander expander(matrix, all_rows_except(matrix.dim(), row));
  Expression minor = expander.run(full & ~(1u << col));
  minor.canonicalize();
  if ((row + col) % 2 != 0) minor = -minor;
  return minor;
}

SymbolicTransfer symbolic_transfer(const SymbolicNodalMatrix& matrix,
                                   const mna::TransferSpec& spec) {
  auto row_or_ground = [&](const std::string& name) -> int {
    const auto row = matrix.row_of_node(name);
    return row ? *row : -1;
  };
  const int ip = row_or_ground(spec.in_pos);
  const int in = row_or_ground(spec.in_neg);
  const int op = row_or_ground(spec.out_pos);
  const int on = row_or_ground(spec.out_neg);

  // V_x * det = sum_j J_j * C_{j,x}; ground indices contribute nothing.
  auto cofactor_sum = [&](int x) {
    Expression sum;
    if (x < 0) return sum;  // ground output: voltage identically zero
    if (ip >= 0) sum += symbolic_cofactor(matrix, ip, x);
    if (in >= 0) sum -= symbolic_cofactor(matrix, in, x);
    return sum;
  };

  SymbolicTransfer transfer;
  transfer.numerator = cofactor_sum(op) - cofactor_sum(on);
  if (spec.kind == mna::TransferSpec::Kind::VoltageGain) {
    transfer.denominator = cofactor_sum(ip) - cofactor_sum(in);
  } else {
    transfer.denominator = symbolic_determinant(matrix);
  }
  return transfer;
}

}  // namespace symref::symbolic
