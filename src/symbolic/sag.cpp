#include "symbolic/sag.h"

#include <algorithm>
#include <map>
#include <vector>

namespace symref::symbolic {

using numeric::ScaledDouble;

namespace {

SagResult prune(const Expression& full, const SymbolTable& table,
                const numeric::Polynomial<ScaledDouble>& reference, bool use_reference,
                const SagOptions& options) {
  SagResult result;
  result.original_terms = full.term_count();

  // Group term indices by power of s.
  std::map<int, std::vector<std::size_t>> by_power;
  for (std::size_t i = 0; i < full.terms().size(); ++i) {
    by_power[full.terms()[i].s_power].push_back(i);
  }

  Expression kept;
  for (auto& [power, indices] : by_power) {
    // Target value for this coefficient.
    ScaledDouble target;
    if (use_reference) {
      if (power > reference.degree()) continue;  // beyond the reference: drop
      target = reference.coeff(static_cast<std::size_t>(power));
    } else {
      for (const std::size_t i : indices) target += full.terms()[i].value(table);
    }

    // Largest-magnitude first.
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return full.terms()[b].magnitude(table) < full.terms()[a].magnitude(table);
    });

    ScaledDouble accumulated;
    double error = target.is_zero() ? 0.0 : 1.0;
    std::size_t taken = 0;
    for (const std::size_t i : indices) {
      if (error < options.epsilon) break;
      kept.add_term(full.terms()[i]);
      accumulated += full.terms()[i].value(table);
      ++taken;
      if (!target.is_zero()) {
        error = ((target - accumulated).abs() / target.abs()).to_double();
      } else {
        error = accumulated.is_zero() ? 0.0 : 1.0;
      }
    }
    result.retained_terms += taken;
    result.worst_error = std::max(result.worst_error, std::min(error, 1.0));
  }

  kept.canonicalize();
  result.simplified = std::move(kept);
  return result;
}

}  // namespace

SagResult prune_expression(const Expression& full, const SymbolTable& table,
                           const SagOptions& options) {
  return prune(full, table, numeric::Polynomial<ScaledDouble>{}, false, options);
}

SagResult prune_expression_against(const Expression& full, const SymbolTable& table,
                                   const numeric::Polynomial<ScaledDouble>& reference,
                                   const SagOptions& options) {
  return prune(full, table, reference, true, options);
}

}  // namespace symref::symbolic
