// Simplification Before Generation (SBG).
//
// The paper (§1): "SBG takes place in the network under analysis, replacing
// those elements (or subcircuits), whose contribution (appropriately
// measured) to the network function is negligible, with a zero-admittance
// [open] or zero-impedance [short] element. ... most accurate error control
// criteria compare a numerical evaluation of the simplified expression with
// a numerical estimate of the complete (exact) expression."
//
// This pass implements that loop: the "numerical estimate of the complete
// expression" is the NumericalReference from the adaptive engine, evaluated
// on a frequency grid; candidates are greedily opened/shorted while the
// worst-case relative transfer error stays below epsilon.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mna/transfer.h"
#include "netlist/circuit.h"
#include "refgen/reference.h"

namespace symref::symbolic {

struct SbgOptions {
  /// Maximum allowed max-relative error of the simplified transfer function.
  double epsilon = 0.05;
  /// Error-check grid (log spaced). Choose it to cover the band of interest.
  double f_start_hz = 1.0;
  double f_stop_hz = 100e6;
  int points_per_decade = 2;
  std::size_t max_removals = static_cast<std::size_t>(-1);
  /// Pre-screen candidates with adjoint band sensitivities (two solves per
  /// frequency for ALL elements) and only trial-remove the low-influence
  /// tail: elements whose |y dH/dy / H| exceeds ~epsilon cannot be removed
  /// anyway. Requires a canonical circuit; silently disabled otherwise.
  bool sensitivity_screening = false;
  /// Screening threshold multiplier: elements with band sensitivity above
  /// screening_factor * epsilon are never trialed.
  double screening_factor = 10.0;
};

struct SbgAction {
  std::string element;
  enum class Op { Open, Short } op = Op::Open;
  /// Worst-case relative error after committing this action.
  double error_after = 0.0;
};

struct SbgResult {
  netlist::Circuit simplified;
  std::vector<SbgAction> actions;
  double final_error = 0.0;
  std::size_t original_elements = 0;
  std::size_t remaining_elements = 0;
};

/// Greedy SBG against the interpolated reference.
SbgResult simplify_before_generation(const netlist::Circuit& circuit,
                                     const mna::TransferSpec& spec,
                                     const refgen::NumericalReference& reference,
                                     const SbgOptions& options = {});

}  // namespace symref::symbolic
