#include "symbolic/expr.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace symref::symbolic {

using numeric::ScaledComplex;
using numeric::ScaledDouble;

int SymbolTable::add(Symbol symbol) {
  symbols_.push_back(std::move(symbol));
  return static_cast<int>(symbols_.size()) - 1;
}

int SymbolTable::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

ScaledDouble Term::value(const SymbolTable& table) const {
  ScaledDouble product(coefficient);
  for (const int id : symbols) product *= ScaledDouble(table.at(id).value);
  return product;
}

ScaledDouble Term::magnitude(const SymbolTable& table) const { return value(table).abs(); }

std::string Term::to_string(const SymbolTable& table) const {
  std::ostringstream os;
  os << (coefficient < 0 ? "-" : "+");
  if (std::fabs(coefficient) != 1.0) os << std::fabs(coefficient) << "*";
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (i > 0) os << "*";
    os << table.at(symbols[i]).name;
  }
  if (symbols.empty()) os << "1";
  return os.str();
}

void Expression::add_term(Term term) {
  if (term.coefficient == 0.0) return;
  std::sort(term.symbols.begin(), term.symbols.end());
  terms_.push_back(std::move(term));
}

Expression& Expression::operator+=(const Expression& rhs) {
  terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  canonicalize();
  return *this;
}

Expression& Expression::operator-=(const Expression& rhs) {
  Expression negated = -rhs;
  return *this += negated;
}

Expression Expression::operator-() const {
  Expression out = *this;
  for (Term& term : out.terms_) term.coefficient = -term.coefficient;
  return out;
}

Expression operator*(const Expression& a, const Expression& b) {
  Expression out;
  out.terms_.reserve(a.terms_.size() * b.terms_.size());
  for (const Term& ta : a.terms_) {
    for (const Term& tb : b.terms_) {
      Term product;
      product.coefficient = ta.coefficient * tb.coefficient;
      product.symbols = ta.symbols;
      product.symbols.insert(product.symbols.end(), tb.symbols.begin(), tb.symbols.end());
      std::sort(product.symbols.begin(), product.symbols.end());
      product.s_power = ta.s_power + tb.s_power;
      out.terms_.push_back(std::move(product));
    }
  }
  out.canonicalize();
  return out;
}

void Expression::canonicalize() {
  for (Term& term : terms_) std::sort(term.symbols.begin(), term.symbols.end());
  std::sort(terms_.begin(), terms_.end(), [](const Term& a, const Term& b) {
    if (a.s_power != b.s_power) return a.s_power < b.s_power;
    return a.symbols < b.symbols;
  });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (Term& term : terms_) {
    if (!merged.empty() && merged.back().symbols == term.symbols &&
        merged.back().s_power == term.s_power) {
      merged.back().coefficient += term.coefficient;
    } else {
      merged.push_back(std::move(term));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coefficient == 0.0; }),
               merged.end());
  terms_ = std::move(merged);
}

numeric::Polynomial<ScaledDouble> Expression::coefficients(const SymbolTable& table) const {
  int max_power = -1;
  for (const Term& term : terms_) max_power = std::max(max_power, term.s_power);
  if (max_power < 0) return numeric::Polynomial<ScaledDouble>{};
  std::vector<ScaledDouble> coeffs(static_cast<std::size_t>(max_power) + 1);
  for (const Term& term : terms_) {
    coeffs[static_cast<std::size_t>(term.s_power)] += term.value(table);
  }
  return numeric::Polynomial<ScaledDouble>(std::move(coeffs));
}

ScaledComplex Expression::evaluate(const SymbolTable& table, std::complex<double> s) const {
  return numeric::eval_scaled(coefficients(table), s);
}

std::string Expression::to_string(const SymbolTable& table, std::size_t max_terms) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const Term& term : terms_) {
    if (shown++ >= max_terms) {
      os << " ... (+" << terms_.size() - max_terms << " terms)";
      break;
    }
    if (shown > 1) os << ' ';
    os << term.to_string(table);
    if (term.s_power > 0) os << "*s^" << term.s_power;
  }
  if (terms_.empty()) os << "0";
  return os.str();
}

}  // namespace symref::symbolic
