#include "symbolic/sdg.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "symbolic/errors.h"

namespace symref::symbolic {

using numeric::ScaledDouble;

namespace {

struct SearchState {
  int position = 0;            // index into the row list
  std::uint64_t used_cols = 0; // columns already taken (absolute indices)
  int caps = 0;                // capacitor atoms chosen so far
  double sign = 1.0;           // permutation parity * atom signs
  double log_magnitude = 0.0;  // log10 of |partial product|
  double bound = 0.0;          // log10 upper bound on any completion
  /// Last link of this state's atom chain in the path arena (-1 = root).
  /// Keeping the chosen symbols out of line keeps the state POD-sized, so
  /// multi-million-state frontiers stay in the hundreds of megabytes.
  std::int32_t path = -1;
};

/// One link of a state's atom chain: the symbol chosen at this level plus
/// the parent link. Links are append-only for the lifetime of one search;
/// completed terms reconstruct their symbol list by walking the chain.
struct PathLink {
  std::int32_t parent = -1;
  std::int32_t symbol = 0;
};

struct BoundOrder {
  bool operator()(const SearchState& a, const SearchState& b) const noexcept {
    // Max-heap on the admissible bound; equal bounds prefer the deeper
    // state, so near-flat frontiers (common on large matrices, where many
    // atoms share a value) drive toward completions instead of stalling in
    // breadth. Neither tweak affects the output order: a completed product
    // still pops only once no open state can beat its exact magnitude.
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.position < b.position;
  }
};

/// Best-first generation over the (sub)matrix given by `rows` x the columns
/// in `allowed_cols` — the determinant itself or any minor of it.
SdgResult run_search(const SymbolicNodalMatrix& matrix, std::vector<int> rows,
                     std::uint64_t allowed_cols, double base_sign, int k,
                     const ScaledDouble& reference, const SdgOptions& options) {
  SdgResult result;
  result.reference = reference;
  const std::size_t levels = rows.size();

  // Capacitor-aware admissible bound. A term of coefficient k must place
  // exactly k capacitor atoms, each typically ~10 decades below the
  // conductance atoms sharing its row — a bound that ignores this admits
  // astronomically many cap-free prefixes and the frontier explodes before
  // a single k>=1 product completes (the failure mode on >15-row amplifier
  // matrices). Instead, bound the completion of a state at `position` that
  // still owes `c` capacitors by the DP
  //
  //   B[pos][c] = max( gmax[pos] + B[pos+1][c],  cmax[pos] + B[pos+1][c-1] )
  //
  // where gmax/cmax are the per-row log10 maxima over conductance/capacitor
  // atoms in the allowed columns. B charges the k mandatory capacitor
  // placements to the rows where they hurt least; it is still admissible
  // (column exclusivity is relaxed) but tracks real completions closely.
  const double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> row_gmax_log(levels, kNegInf);
  std::vector<double> row_cmax_log(levels, kNegInf);
  for (std::size_t level = 0; level < levels; ++level) {
    const int row = rows[level];
    for (int col = 0; col < matrix.dim(); ++col) {
      if (!(allowed_cols & (std::uint64_t{1} << col))) continue;
      for (const MatrixAtom& atom : matrix.entry(row, col)) {
        const Symbol& symbol = matrix.symbols().at(atom.symbol);
        const double value = std::fabs(symbol.value);
        if (value <= 0.0) continue;
        double& slot = symbol.is_capacitor ? row_cmax_log[level] : row_gmax_log[level];
        slot = std::max(slot, std::log10(value));
      }
    }
  }
  // bound_dp[pos * (k+1) + c]: best log10 completion from row `pos` with `c`
  // capacitor atoms still to place; -inf when infeasible.
  const std::size_t caps_slots = static_cast<std::size_t>(k) + 1;
  std::vector<double> bound_dp((levels + 1) * caps_slots, kNegInf);
  bound_dp[levels * caps_slots] = 0.0;
  for (std::size_t level = levels; level-- > 0;) {
    for (std::size_t c = 0; c < caps_slots; ++c) {
      double best = kNegInf;
      const double take_g = bound_dp[(level + 1) * caps_slots + c];
      if (row_gmax_log[level] != kNegInf && take_g != kNegInf) {
        best = row_gmax_log[level] + take_g;
      }
      if (c > 0 && row_cmax_log[level] != kNegInf) {
        const double take_c = bound_dp[(level + 1) * caps_slots + (c - 1)];
        if (take_c != kNegInf) best = std::max(best, row_cmax_log[level] + take_c);
      }
      bound_dp[level * caps_slots + c] = best;
    }
  }
  auto suffix_bound = [&](int position, int caps_needed) {
    return bound_dp[static_cast<std::size_t>(position) * caps_slots +
                    static_cast<std::size_t>(caps_needed)];
  };

  // Explicit binary heap (push_heap/pop_heap) instead of priority_queue so
  // the overflow policy below can restructure the container in place.
  std::vector<SearchState> frontier;
  std::vector<PathLink> arena;
  if (suffix_bound(0, k) != kNegInf) {
    SearchState root;
    root.bound = suffix_bound(0, k);
    frontier.push_back(root);
  }

  ScaledDouble accumulated(0.0);
  const ScaledDouble target = reference.abs();
  auto error_now = [&]() {
    if (target.is_zero()) return accumulated.is_zero() ? 0.0 : 1.0;
    return ((reference - accumulated).abs() / target).to_double();
  };

  const BoundOrder order;
  while (!frontier.empty()) {
    if (frontier.size() > options.max_queue) {
      // Discard the weakest-bound half and keep generating on the strong
      // half. Everything above the discarded bound still streams out exact
      // and in order; if the stop rule fires up there, the overflow cost
      // the search nothing. Only an un-met end reports "queue_overflow".
      const std::size_t keep = options.max_queue / 2;
      std::nth_element(frontier.begin(), frontier.begin() + static_cast<std::ptrdiff_t>(keep),
                       frontier.end(),
                       [&](const SearchState& a, const SearchState& b) { return order(b, a); });
      frontier.resize(keep);
      std::make_heap(frontier.begin(), frontier.end(), order);
      result.frontier_pruned = true;
    }
    std::pop_heap(frontier.begin(), frontier.end(), order);
    SearchState state = frontier.back();
    frontier.pop_back();

    if (state.position == static_cast<int>(levels)) {
      // Completed permutation product. Only products with exactly k
      // capacitor atoms belong to coefficient k.
      if (state.caps != k) continue;
      Term term;
      term.coefficient = base_sign * state.sign;
      for (std::int32_t link = state.path; link != -1;
           link = arena[static_cast<std::size_t>(link)].parent) {
        term.symbols.push_back(static_cast<int>(arena[static_cast<std::size_t>(link)].symbol));
      }
      std::sort(term.symbols.begin(), term.symbols.end());
      term.s_power = k;
      accumulated += term.value(matrix.symbols());
      result.terms.push_back(std::move(term));

      result.relative_error = error_now();
      if (result.relative_error < options.epsilon) {
        result.met = true;
        result.termination = "met";
        break;
      }
      if (result.terms.size() >= options.max_terms) {
        result.termination = "max_terms";
        break;
      }
      continue;
    }

    // Feasibility pruning on the capacitor count.
    const int caps_needed = k - state.caps;
    if (caps_needed < 0) continue;
    if (suffix_bound(state.position, caps_needed) == kNegInf) continue;

    const int row = rows[static_cast<std::size_t>(state.position)];
    for (int col = 0; col < matrix.dim(); ++col) {
      const std::uint64_t bit = std::uint64_t{1} << col;
      if (!(allowed_cols & bit) || (state.used_cols & bit)) continue;
      // Permutation parity: inversions added by assigning column `col` at
      // this level equal the number of already-used columns above `col`
      // (relative order within the allowed set is what matters, and used
      // is a subset of allowed).
      const int inversions =
          std::popcount(state.used_cols & ~((bit << 1) - std::uint64_t{1}));
      const double parity = (inversions % 2 == 0) ? 1.0 : -1.0;
      for (const MatrixAtom& atom : matrix.entry(row, col)) {
        const Symbol& symbol = matrix.symbols().at(atom.symbol);
        if (symbol.value == 0.0) continue;
        if (symbol.is_capacitor && state.caps + 1 > k) continue;
        const int child_caps = state.caps + (symbol.is_capacitor ? 1 : 0);
        const double tail = suffix_bound(state.position + 1, k - child_caps);
        if (tail == kNegInf) continue;  // cannot reach exactly k capacitors
        SearchState child;
        child.position = state.position + 1;
        child.used_cols = state.used_cols | bit;
        child.caps = child_caps;
        // The symbol's own sign is applied at evaluation time (Term::value
        // multiplies the signed design-point values), so the coefficient
        // carries only the permutation parity and the stamp sign.
        child.sign = state.sign * parity * atom.sign;
        child.log_magnitude = state.log_magnitude + std::log10(std::fabs(symbol.value));
        child.bound = child.log_magnitude + tail;
        arena.push_back(PathLink{state.path, static_cast<std::int32_t>(atom.symbol)});
        child.path = static_cast<std::int32_t>(arena.size()) - 1;
        frontier.push_back(child);
        std::push_heap(frontier.begin(), frontier.end(), order);
      }
    }
  }

  if (result.termination.empty()) {
    if (result.frontier_pruned) {
      // The tail was cut and the stop rule never fired above the cut: the
      // stream is incomplete below the discarded bound.
      result.termination = "queue_overflow";
    } else {
      // Frontier exhausted: every term was generated; the sum is exact.
      result.termination = "exhausted";
    }
    result.relative_error = error_now();
    result.met = !result.frontier_pruned && result.relative_error < options.epsilon;
  }
  result.accumulated = accumulated;
  return result;
}

std::vector<int> all_rows(int dim, int skip) {
  std::vector<int> rows;
  rows.reserve(static_cast<std::size_t>(dim));
  for (int r = 0; r < dim; ++r) {
    if (r != skip) rows.push_back(r);
  }
  return rows;
}

/// Bitmask of every column; the search mask is 64 bits wide, so matrices
/// beyond 64 rows are outside what the generator admits.
std::uint64_t full_mask(const SymbolicNodalMatrix& matrix, const char* who) {
  if (matrix.dim() > 64) {
    throw NonAdmissibleError(std::string(who) + ": nodal matrix dimension " +
                             std::to_string(matrix.dim()) +
                             " exceeds the 64-column search mask");
  }
  if (matrix.dim() == 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << matrix.dim()) - std::uint64_t{1};
}

}  // namespace

SdgResult generate_determinant_terms(const SymbolicNodalMatrix& matrix, int k,
                                     const ScaledDouble& reference,
                                     const SdgOptions& options) {
  const std::uint64_t full = full_mask(matrix, "generate_determinant_terms");
  return run_search(matrix, all_rows(matrix.dim(), -1), full, 1.0, k, reference, options);
}

SdgResult generate_cofactor_terms(const SymbolicNodalMatrix& matrix, int row, int col,
                                  int k, const ScaledDouble& reference,
                                  const SdgOptions& options) {
  if (row < 0 || col < 0 || row >= matrix.dim() || col >= matrix.dim()) {
    throw std::out_of_range("generate_cofactor_terms: index outside matrix");
  }
  const std::uint64_t allowed =
      full_mask(matrix, "generate_cofactor_terms") & ~(std::uint64_t{1} << col);
  const double base_sign = ((row + col) % 2 == 0) ? 1.0 : -1.0;
  return run_search(matrix, all_rows(matrix.dim(), row), allowed, base_sign, k, reference,
                    options);
}

SdgResult generate_transfer_terms(const SymbolicNodalMatrix& matrix,
                                  const mna::TransferSpec& spec, TransferSide side, int k,
                                  const ScaledDouble& reference, const SdgOptions& options) {
  auto must_be_grounded = [&](const std::string& name, const char* what) {
    if (!matrix.row_of_node(name).has_value() && name != "0") {
      // row_of_node also returns nullopt for ground; distinguish via name.
      throw NonAdmissibleError(std::string("generate_transfer_terms: unknown ") + what +
                               " node '" + name + "'");
    }
  };
  if (spec.in_neg != "0" || spec.out_neg != "0") {
    throw NonAdmissibleError(
        "generate_transfer_terms: differential specs need four merged cofactor "
        "generators; ground in_neg/out_neg or use generate_cofactor_terms directly");
  }
  must_be_grounded(spec.in_pos, "input");
  must_be_grounded(spec.out_pos, "output");
  const int in_row = *matrix.row_of_node(spec.in_pos);

  if (side == TransferSide::Numerator) {
    const int out_row = *matrix.row_of_node(spec.out_pos);
    return generate_cofactor_terms(matrix, in_row, out_row, k, reference, options);
  }
  if (spec.kind == mna::TransferSpec::Kind::VoltageGain) {
    return generate_cofactor_terms(matrix, in_row, in_row, k, reference, options);
  }
  return generate_determinant_terms(matrix, k, reference, options);
}

}  // namespace symref::symbolic
