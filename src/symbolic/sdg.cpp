#include "symbolic/sdg.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace symref::symbolic {

using numeric::ScaledDouble;

namespace {

struct SearchState {
  int position = 0;            // index into the row list
  std::uint32_t used_cols = 0; // columns already taken (absolute indices)
  int caps = 0;                // capacitor atoms chosen so far
  double sign = 1.0;           // permutation parity * atom signs
  double log_magnitude = 0.0;  // log10 of |partial product|
  double bound = 0.0;          // log10 upper bound on any completion
  std::vector<int> symbols;    // chosen symbol ids
};

struct BoundOrder {
  bool operator()(const SearchState& a, const SearchState& b) const noexcept {
    return a.bound < b.bound;  // max-heap on the admissible bound
  }
};

/// Best-first generation over the (sub)matrix given by `rows` x the columns
/// in `allowed_cols` — the determinant itself or any minor of it.
SdgResult run_search(const SymbolicNodalMatrix& matrix, const std::vector<int>& rows,
                     std::uint32_t allowed_cols, double base_sign, int k,
                     const ScaledDouble& reference, const SdgOptions& options) {
  SdgResult result;
  result.reference = reference;
  const std::size_t levels = rows.size();

  // Per-row admissible bound: log10 of the largest |atom value| among the
  // allowed columns; suffix sums bound any completion. Also track which rows
  // can still contribute capacitor atoms, to prune states that cannot reach
  // exactly k capacitors.
  std::vector<double> row_max_log(levels, -std::numeric_limits<double>::infinity());
  std::vector<bool> row_has_cap(levels, false);
  for (std::size_t level = 0; level < levels; ++level) {
    const int row = rows[level];
    for (int col = 0; col < matrix.dim(); ++col) {
      if (!(allowed_cols & (1u << col))) continue;
      for (const MatrixAtom& atom : matrix.entry(row, col)) {
        const double value = std::fabs(matrix.symbols().at(atom.symbol).value);
        if (value <= 0.0) continue;
        row_max_log[level] = std::max(row_max_log[level], std::log10(value));
        if (matrix.symbols().at(atom.symbol).is_capacitor) row_has_cap[level] = true;
      }
    }
  }
  std::vector<double> suffix_bound(levels + 1, 0.0);
  std::vector<int> rows_with_cap_suffix(levels + 1, 0);
  for (std::size_t level = levels; level-- > 0;) {
    suffix_bound[level] = suffix_bound[level + 1] + row_max_log[level];
    rows_with_cap_suffix[level] =
        rows_with_cap_suffix[level + 1] + (row_has_cap[level] ? 1 : 0);
  }

  std::priority_queue<SearchState, std::vector<SearchState>, BoundOrder> frontier;
  {
    SearchState root;
    root.bound = suffix_bound[0];
    frontier.push(std::move(root));
  }

  ScaledDouble accumulated(0.0);
  const ScaledDouble target = reference.abs();
  auto error_now = [&]() {
    if (target.is_zero()) return accumulated.is_zero() ? 0.0 : 1.0;
    return ((reference - accumulated).abs() / target).to_double();
  };

  while (!frontier.empty()) {
    if (frontier.size() > options.max_queue) {
      result.termination = "queue_overflow";
      break;
    }
    SearchState state = frontier.top();
    frontier.pop();

    if (state.position == static_cast<int>(levels)) {
      // Completed permutation product. Only products with exactly k
      // capacitor atoms belong to coefficient k.
      if (state.caps != k) continue;
      Term term;
      term.coefficient = base_sign * state.sign;
      term.symbols = state.symbols;
      std::sort(term.symbols.begin(), term.symbols.end());
      term.s_power = k;
      accumulated += term.value(matrix.symbols());
      result.terms.push_back(std::move(term));

      result.relative_error = error_now();
      if (result.relative_error < options.epsilon) {
        result.met = true;
        result.termination = "met";
        break;
      }
      if (result.terms.size() >= options.max_terms) {
        result.termination = "max_terms";
        break;
      }
      continue;
    }

    // Feasibility pruning on the capacitor count.
    const int caps_needed = k - state.caps;
    if (caps_needed < 0) continue;
    if (caps_needed > rows_with_cap_suffix[static_cast<std::size_t>(state.position)]) {
      continue;
    }

    const int row = rows[static_cast<std::size_t>(state.position)];
    for (int col = 0; col < matrix.dim(); ++col) {
      const std::uint32_t bit = 1u << col;
      if (!(allowed_cols & bit) || (state.used_cols & bit)) continue;
      // Permutation parity: inversions added by assigning column `col` at
      // this level equal the number of already-used columns above `col`
      // (relative order within the allowed set is what matters, and used
      // is a subset of allowed).
      const int inversions = std::popcount(state.used_cols & ~((bit << 1) - 1u));
      const double parity = (inversions % 2 == 0) ? 1.0 : -1.0;
      for (const MatrixAtom& atom : matrix.entry(row, col)) {
        const Symbol& symbol = matrix.symbols().at(atom.symbol);
        if (symbol.value == 0.0) continue;
        if (symbol.is_capacitor && state.caps + 1 > k) continue;
        SearchState child;
        child.position = state.position + 1;
        child.used_cols = state.used_cols | bit;
        child.caps = state.caps + (symbol.is_capacitor ? 1 : 0);
        // The symbol's own sign is applied at evaluation time (Term::value
        // multiplies the signed design-point values), so the coefficient
        // carries only the permutation parity and the stamp sign.
        child.sign = state.sign * parity * atom.sign;
        child.log_magnitude = state.log_magnitude + std::log10(std::fabs(symbol.value));
        child.bound =
            child.log_magnitude + suffix_bound[static_cast<std::size_t>(child.position)];
        child.symbols = state.symbols;
        child.symbols.push_back(atom.symbol);
        frontier.push(std::move(child));
      }
    }
  }

  if (result.termination.empty()) {
    // Frontier exhausted: every term was generated; the sum is exact.
    result.termination = "exhausted";
    result.relative_error = error_now();
    result.met = result.relative_error < options.epsilon;
  }
  result.accumulated = accumulated;
  return result;
}

std::vector<int> all_rows(int dim, int skip) {
  std::vector<int> rows;
  rows.reserve(static_cast<std::size_t>(dim));
  for (int r = 0; r < dim; ++r) {
    if (r != skip) rows.push_back(r);
  }
  return rows;
}

}  // namespace

SdgResult generate_determinant_terms(const SymbolicNodalMatrix& matrix, int k,
                                     const ScaledDouble& reference,
                                     const SdgOptions& options) {
  const std::uint32_t full = (1u << matrix.dim()) - 1u;
  return run_search(matrix, all_rows(matrix.dim(), -1), full, 1.0, k, reference, options);
}

SdgResult generate_cofactor_terms(const SymbolicNodalMatrix& matrix, int row, int col,
                                  int k, const ScaledDouble& reference,
                                  const SdgOptions& options) {
  if (row < 0 || col < 0 || row >= matrix.dim() || col >= matrix.dim()) {
    throw std::out_of_range("generate_cofactor_terms: index outside matrix");
  }
  const std::uint32_t allowed = ((1u << matrix.dim()) - 1u) & ~(1u << col);
  const double base_sign = ((row + col) % 2 == 0) ? 1.0 : -1.0;
  return run_search(matrix, all_rows(matrix.dim(), row), allowed, base_sign, k, reference,
                    options);
}

SdgResult generate_transfer_terms(const SymbolicNodalMatrix& matrix,
                                  const mna::TransferSpec& spec, TransferSide side, int k,
                                  const ScaledDouble& reference, const SdgOptions& options) {
  auto must_be_grounded = [&](const std::string& name, const char* what) {
    if (!matrix.row_of_node(name).has_value() && name != "0") {
      // row_of_node also returns nullopt for ground; distinguish via name.
      throw std::invalid_argument(std::string("generate_transfer_terms: unknown ") + what +
                                  " node '" + name + "'");
    }
  };
  if (spec.in_neg != "0" || spec.out_neg != "0") {
    throw std::invalid_argument(
        "generate_transfer_terms: differential specs need four merged cofactor "
        "generators; ground in_neg/out_neg or use generate_cofactor_terms directly");
  }
  must_be_grounded(spec.in_pos, "input");
  must_be_grounded(spec.out_pos, "output");
  const int in_row = *matrix.row_of_node(spec.in_pos);

  if (side == TransferSide::Numerator) {
    const int out_row = *matrix.row_of_node(spec.out_pos);
    return generate_cofactor_terms(matrix, in_row, out_row, k, reference, options);
  }
  if (spec.kind == mna::TransferSpec::Kind::VoltageGain) {
    return generate_cofactor_terms(matrix, in_row, in_row, k, reference, options);
  }
  return generate_determinant_terms(matrix, k, reference, options);
}

}  // namespace symref::symbolic
