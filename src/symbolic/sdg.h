// Simplification During Generation (SDG).
//
// Refs. [2]-[4] of the paper generate the symbolic terms of each
// network-function coefficient strictly in decreasing order of design-point
// magnitude, stopping when the accumulated sum reproduces the coefficient's
// numerical reference to within epsilon (paper eq. (3)):
//
//   | h_k(x0) - sum_{l=1..P} h_kl(x0) |  <  eps_k * | h_k(x0) |
//
// That reference h_k(x0) is exactly what the adaptive interpolation engine
// produces — this module is the consumer that motivates the whole paper.
//
// The generator here is a best-first (A*-style) search over determinant
// expansions: states assign one matrix row at a time to an unused column and
// one admittance atom of that entry; the priority is the partial product's
// magnitude times an admissible bound (product of per-row maxima), so
// completed terms pop in exactly decreasing magnitude order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "numeric/scaled.h"
#include "symbolic/det.h"
#include "symbolic/expr.h"

namespace symref::symbolic {

struct SdgOptions {
  /// eq. (3) error-control parameter eps_k.
  double epsilon = 1e-3;
  std::size_t max_terms = 200000;
  /// Search-frontier cap. When the frontier outgrows it, the weakest-bound
  /// half is discarded and generation continues on the strong half: the
  /// stream stays exact and magnitude-ordered down to the discarded bound,
  /// below which terms may be missing (frontier_pruned records this). A
  /// search that ends un-met after pruning reports "queue_overflow".
  std::size_t max_queue = 2000000;
};

struct SdgResult {
  /// Terms in generation order (non-increasing design-point magnitude).
  std::vector<Term> terms;
  /// Signed partial sum of the generated terms at the design point.
  numeric::ScaledDouble accumulated;
  /// The reference h_k(x0) the stop rule compared against.
  numeric::ScaledDouble reference;
  /// |reference - accumulated| / |reference| when the generator stopped.
  double relative_error = 1.0;
  bool met = false;
  std::string termination;  // "met", "exhausted", "max_terms", "queue_overflow"
  /// True when the frontier cap forced the weakest-bound states to be
  /// discarded at least once; terms below the discarded bound may be
  /// missing from the stream (harmless when the stop rule met above it).
  bool frontier_pruned = false;

  [[nodiscard]] std::size_t generated() const noexcept { return terms.size(); }
};

/// Generate the magnitude-ordered terms of determinant coefficient k (the
/// coefficient of s^k) until eq. (3) holds against `reference`.
SdgResult generate_determinant_terms(const SymbolicNodalMatrix& matrix, int k,
                                     const numeric::ScaledDouble& reference,
                                     const SdgOptions& options = {});

/// Same generator over the signed cofactor C_{row,col} =
/// (-1)^(row+col) * minor(row, col). With Lin's formulation the numerator of
/// a (grounded) transfer function is exactly such a cofactor, so SDG covers
/// both sides of eq. (1).
SdgResult generate_cofactor_terms(const SymbolicNodalMatrix& matrix, int row, int col,
                                  int k, const numeric::ScaledDouble& reference,
                                  const SdgOptions& options = {});

/// Convenience front-end for single-ended transfer specs (in_neg and
/// out_neg grounded): numerator terms come from C_{in,out}; denominator
/// terms from C_{in,in} (VoltageGain) or the full determinant
/// (Transimpedance). Throws std::invalid_argument for differential specs —
/// their N/D are sums of four cofactors, which this generator does not
/// merge.
enum class TransferSide { Numerator, Denominator };
SdgResult generate_transfer_terms(const SymbolicNodalMatrix& matrix,
                                  const mna::TransferSpec& spec, TransferSide side, int k,
                                  const numeric::ScaledDouble& reference,
                                  const SdgOptions& options = {});

}  // namespace symref::symbolic
