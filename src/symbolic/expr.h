// Symbolic sum-of-products expression engine.
//
// Symbolic analysis of the paper's class represents each network-function
// coefficient as a sum of terms, each term a signed product of element
// admittance symbols (transconductances/conductances and capacitances; the
// capacitor count of a term is its power of s). This module provides the
// term/expression algebra, the symbol table binding symbols to design-point
// values, and evaluation — the machinery SDG/SBG operate on.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "numeric/polynomial.h"
#include "numeric/scaled.h"

namespace symref::symbolic {

/// One admittance symbol: a conductance-like value (g, gm) or a capacitance
/// (which carries one power of s).
struct Symbol {
  std::string name;
  double value = 0.0;
  bool is_capacitor = false;
};

class SymbolTable {
 public:
  /// Register a symbol; returns its id. Duplicate names get distinct ids.
  int add(Symbol symbol);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(symbols_.size()); }
  [[nodiscard]] const Symbol& at(int id) const { return symbols_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int find(std::string_view name) const noexcept;  // -1 if absent

 private:
  std::vector<Symbol> symbols_;
};

/// A signed product of symbols. `s_power` equals the number of capacitor
/// symbols in the product and is stored to avoid re-deriving it.
struct Term {
  double coefficient = 1.0;      // sign and integer multiplicity
  std::vector<int> symbols;      // sorted ids, repetition allowed
  int s_power = 0;

  /// Design-point magnitude |coefficient * prod(values)| as extended-range.
  [[nodiscard]] numeric::ScaledDouble magnitude(const SymbolTable& table) const;
  /// Signed design-point value.
  [[nodiscard]] numeric::ScaledDouble value(const SymbolTable& table) const;

  [[nodiscard]] std::string to_string(const SymbolTable& table) const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.coefficient == b.coefficient && a.symbols == b.symbols;
  }
};

/// Sum of terms.
class Expression {
 public:
  Expression() = default;
  explicit Expression(Term term) { terms_.push_back(std::move(term)); }

  [[nodiscard]] bool is_zero() const noexcept { return terms_.empty(); }
  [[nodiscard]] std::size_t term_count() const noexcept { return terms_.size(); }
  [[nodiscard]] const std::vector<Term>& terms() const noexcept { return terms_; }

  void add_term(Term term);

  Expression& operator+=(const Expression& rhs);
  Expression& operator-=(const Expression& rhs);
  friend Expression operator+(Expression a, const Expression& b) { return a += b; }
  friend Expression operator-(Expression a, const Expression& b) { return a -= b; }
  friend Expression operator*(const Expression& a, const Expression& b);

  Expression operator-() const;

  /// Merge identical products, drop zero terms, sort deterministically
  /// (by s-power, then symbol lists).
  void canonicalize();

  /// Exact polynomial in s at the design point: coefficient k is the signed
  /// sum over terms with s_power == k.
  [[nodiscard]] numeric::Polynomial<numeric::ScaledDouble> coefficients(
      const SymbolTable& table) const;

  /// Value at complex s and the design point.
  [[nodiscard]] numeric::ScaledComplex evaluate(const SymbolTable& table,
                                                std::complex<double> s) const;

  [[nodiscard]] std::string to_string(const SymbolTable& table, std::size_t max_terms = 24) const;

 private:
  std::vector<Term> terms_;
};

}  // namespace symref::symbolic
