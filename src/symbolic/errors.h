// Typed errors for the symbolic layer (SBG/SDG/SAG + the simplify engine).
//
// The api layer maps these onto its wire Status taxonomy in
// status_from_current_exception(): NonAdmissibleError -> kInvalidSpec
// (the request asked for something the generators cannot represent),
// TermEnumerationError -> kIncomplete (the generators ran but could not
// meet the eq. (3) stop rule within their resource caps).
#pragma once

#include <stdexcept>
#include <string>

namespace symref::symbolic {

/// The spec/graph is outside what the symbolic generators admit: a
/// differential transfer spec (N/D are sums of four cofactors the
/// generator does not merge), an unknown port node, or a nodal matrix
/// wider than the 64-column search mask.
class NonAdmissibleError : public std::invalid_argument {
 public:
  explicit NonAdmissibleError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Term enumeration terminated without meeting the eq. (3) error target:
/// the best-first stream hit max_terms / the queue cap, or produced an
/// empty term set against a nonzero reference coefficient.
class TermEnumerationError : public std::runtime_error {
 public:
  explicit TermEnumerationError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace symref::symbolic
