// Simplification After Generation (SAG).
//
// The classical approach the paper's §1 contrasts against: generate the
// COMPLETE symbolic expression first, then drop insignificant terms. It is
// "constrained to low and medium complexity circuits (below about 50
// symbols)" because the full expression is exponential — but inside that
// envelope it gives the optimal simplification for a given error budget,
// which makes it the quality yardstick for SDG in this library's tests.
//
// Pruning keeps the largest-|value| terms of each coefficient until the
// retained sum reproduces the full coefficient within epsilon — the same
// error criterion as eq. (3), evaluated against the exact expansion (or,
// via `prune_expression_against`, an external numerical reference such as
// the adaptive engine's output).
#pragma once

#include <cstddef>

#include "numeric/polynomial.h"
#include "numeric/scaled.h"
#include "symbolic/expr.h"

namespace symref::symbolic {

struct SagOptions {
  /// Per-coefficient relative error allowed after pruning (eq. (3) eps_k).
  double epsilon = 1e-3;
};

struct SagResult {
  Expression simplified;
  std::size_t original_terms = 0;
  std::size_t retained_terms = 0;
  /// Worst per-coefficient relative error actually incurred.
  double worst_error = 0.0;
};

/// Prune `full` against its own exact coefficient sums.
SagResult prune_expression(const Expression& full, const SymbolTable& table,
                           const SagOptions& options = {});

/// Prune against externally supplied coefficient references (index = power
/// of s) — e.g. the adaptive engine's numerical reference. Terms of powers
/// beyond the reference polynomial are dropped outright.
SagResult prune_expression_against(const Expression& full, const SymbolTable& table,
                                   const numeric::Polynomial<numeric::ScaledDouble>& reference,
                                   const SagOptions& options = {});

}  // namespace symref::symbolic
