#include "api/status.h"

#include <exception>
#include <new>
#include <stdexcept>

#include "dc/newton.h"
#include "mna/errors.h"
#include "netlist/parser.h"
#include "sparse/lu.h"
#include "support/cancellation.h"
#include "symbolic/errors.h"
#include "transient/transient.h"

namespace symref::api {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kInvalidSpec: return "invalid_spec";
    case StatusCode::kSingularSystem: return "singular_system";
    case StatusCode::kRefusedReplay: return "refused_replay";
    case StatusCode::kIncomplete: return "incomplete";
    case StatusCode::kNoConvergence: return "no_convergence";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "internal";
}

StatusCode status_code_from_name(std::string_view name) noexcept {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kInvalidSpec, StatusCode::kSingularSystem, StatusCode::kRefusedReplay,
        StatusCode::kIncomplete, StatusCode::kNoConvergence, StatusCode::kCancelled, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kDeadlineExceeded, StatusCode::kOverloaded,
        StatusCode::kUnavailable}) {
    if (name == status_code_name(code)) return code;
  }
  return StatusCode::kInternal;
}

bool status_is_transient(StatusCode code) noexcept {
  return code == StatusCode::kUnavailable || code == StatusCode::kOverloaded ||
         code == StatusCode::kIoError;
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = status_code_name(code_);
  out += ": ";
  out += message_;
  if (location_.known()) {
    out += " (line " + std::to_string(location_.line);
    if (location_.column > 0) out += ", column " + std::to_string(location_.column);
    out += ")";
  }
  return out;
}

Status status_from_current_exception() noexcept {
  try {
    throw;
  } catch (const netlist::ParseError& e) {
    return Status::error(StatusCode::kParseError, e.what(), {e.line(), e.column()});
  } catch (const mna::SpecError& e) {
    return Status::error(StatusCode::kInvalidSpec, e.what());
  } catch (const mna::SingularSystemError& e) {
    return Status::error(StatusCode::kSingularSystem, e.what());
  } catch (const sparse::RefusedReplayError& e) {
    return Status::error(StatusCode::kRefusedReplay, e.what());
  } catch (const dc::NoConvergenceError& e) {
    return Status::error(StatusCode::kNoConvergence, e.what());
  } catch (const transient::NoConvergenceError& e) {
    return Status::error(StatusCode::kNoConvergence, e.what());
  } catch (const support::CancelledError& e) {
    return Status::error(StatusCode::kCancelled, e.what());
  } catch (const symbolic::NonAdmissibleError& e) {
    // Before std::invalid_argument (its base): a non-admissible spec/graph
    // is a spec problem, not a generic bad argument.
    return Status::error(StatusCode::kInvalidSpec, e.what());
  } catch (const symbolic::TermEnumerationError& e) {
    return Status::error(StatusCode::kIncomplete, e.what());
  } catch (const std::invalid_argument& e) {
    return Status::error(StatusCode::kInvalidArgument, e.what());
  } catch (const std::bad_alloc& e) {
    return Status::error(StatusCode::kUnavailable, std::string("allocation failed: ") + e.what());
  } catch (const std::exception& e) {
    return Status::error(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status::error(StatusCode::kInternal, "unknown error");
  }
}

}  // namespace symref::api
